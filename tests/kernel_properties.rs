//! Exact-equality pins for every kernel path over the full ν range.
//!
//! The fused, parallel and batched kernels regroup the staged butterfly
//! schedule but never change any per-element expression or evaluation
//! order, so their results must match the staged reference **bit for
//! bit** — not merely to tolerance. These tests pin that contract for
//! ν = 1..=20 across:
//!
//! * serial fused (`fmmp_in_place_fused` / `fwht_in_place_fused`),
//! * span-parallel fused (`par_fmmp_in_place_fused` /
//!   `par_fwht_in_place_fused`) and the per-stage parallel path,
//! * the column-blocked batched apply (`fmmp_batch_in_place` /
//!   `fwht_batch_in_place`) at several column counts,
//! * every available SIMD dispatch (scalar / AVX2 / AVX-512): forcing any
//!   ISA must reproduce the scalar staged reference bit for bit, both at
//!   the whole-transform level and for the raw fibre lane kernels on
//!   odd-length tails that straddle the vector width.

use std::sync::{Mutex, MutexGuard};

use qs_matvec::fmmp::fmmp_in_place;
use qs_matvec::fused::{radix2_lanes, radix4_lanes, radix8_lanes, MixButterfly};
use qs_matvec::fwht::fwht_in_place;
use qs_matvec::parallel::{
    par_fmmp_in_place, par_fmmp_in_place_fused, par_fwht_in_place, par_fwht_in_place_fused,
};
use qs_matvec::{fmmp_batch_in_place, fwht_batch_in_place, Isa};

const P: f64 = 0.013;

/// The process-wide SIMD dispatch is shared state; tests that force an
/// ISA serialise on this lock and restore auto-detection before release.
static ISA_LOCK: Mutex<()> = Mutex::new(());

fn isa_lock() -> MutexGuard<'static, ()> {
    ISA_LOCK.lock().unwrap_or_else(|e| e.into_inner())
}

/// Every ISA the current CPU + build can actually run (scalar is always
/// first, so the reference below is always computed).
fn available_isas() -> Vec<Isa> {
    [Isa::Scalar, Isa::Avx2, Isa::Avx512]
        .into_iter()
        .filter(|isa| isa.available())
        .collect()
}

/// Deterministic, sign-mixed, non-uniform probe vector: exercises
/// cancellation paths a positive vector would miss.
fn probe_vector(n: usize, seed: u64) -> Vec<f64> {
    let mut state = seed.wrapping_mul(0x9E3779B97F4A7C15).max(1);
    (0..n)
        .map(|_| {
            // SplitMix64 step; map to (-2, 2) with full mantissa variety.
            state = state.wrapping_add(0x9E3779B97F4A7C15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
            z ^= z >> 31;
            (z as f64 / u64::MAX as f64) * 4.0 - 2.0
        })
        .collect()
}

fn assert_bits_equal(a: &[f64], b: &[f64], what: &str) {
    for (i, (x, y)) in a.iter().zip(b).enumerate() {
        assert_eq!(
            x.to_bits(),
            y.to_bits(),
            "{what}: element {i} differs ({x:e} vs {y:e})"
        );
    }
}

#[test]
fn fmmp_serial_and_parallel_paths_are_bit_identical_for_nu_1_to_20() {
    for nu in 1..=20u32 {
        let n = 1usize << nu;
        let v = probe_vector(n, u64::from(nu));

        let mut reference = v.clone();
        fmmp_in_place(&mut reference, P);

        let mut fused = v.clone();
        qs_matvec::fmmp_in_place_fused(&mut fused, P);
        assert_bits_equal(&reference, &fused, &format!("fmmp fused ν={nu}"));

        let mut par = v.clone();
        par_fmmp_in_place(&mut par, P);
        assert_bits_equal(&reference, &par, &format!("fmmp par-staged ν={nu}"));

        let mut par_fused = v.clone();
        par_fmmp_in_place_fused(&mut par_fused, P);
        assert_bits_equal(&reference, &par_fused, &format!("fmmp par-fused ν={nu}"));
    }
}

#[test]
fn fwht_serial_and_parallel_paths_are_bit_identical_for_nu_1_to_20() {
    for nu in 1..=20u32 {
        let n = 1usize << nu;
        let v = probe_vector(n, 1000 + u64::from(nu));

        let mut reference = v.clone();
        fwht_in_place(&mut reference);

        let mut fused = v.clone();
        qs_matvec::fwht_in_place_fused(&mut fused);
        assert_bits_equal(&reference, &fused, &format!("fwht fused ν={nu}"));

        let mut par = v.clone();
        par_fwht_in_place(&mut par);
        assert_bits_equal(&reference, &par, &format!("fwht par-staged ν={nu}"));

        let mut par_fused = v.clone();
        par_fwht_in_place_fused(&mut par_fused);
        assert_bits_equal(&reference, &par_fused, &format!("fwht par-fused ν={nu}"));
    }
}

#[test]
fn batched_apply_is_bit_identical_to_column_by_column_for_nu_1_to_20() {
    // Full ν sweep at a small column count, plus wider slabs at moderate ν
    // (keeps the test under control: ν=20 × 8 columns is a 64 MiB slab).
    for nu in 1..=20u32 {
        let k = if nu <= 14 { 3 } else { 2 };
        check_batch(nu, k);
    }
    for k in [1usize, 2, 3, 8] {
        check_batch(12, k);
    }
}

#[test]
fn every_path_matches_the_scalar_reference_under_every_isa_for_nu_1_to_20() {
    let _guard = isa_lock();
    let isas = available_isas();
    for nu in 1..=20u32 {
        let n = 1usize << nu;
        let v = probe_vector(n, 31_000 + u64::from(nu));
        let w = probe_vector(n, 47_000 + u64::from(nu));

        // The pinned truth: the staged reference under forced-scalar
        // dispatch. Every (ISA × path) cell must reproduce it exactly.
        qs_matvec::simd::force(Isa::Scalar).expect("scalar is always available");
        let mut fmmp_ref = v.clone();
        fmmp_in_place(&mut fmmp_ref, P);
        let mut fwht_ref = w.clone();
        fwht_in_place(&mut fwht_ref);

        for &isa in &isas {
            qs_matvec::simd::force(isa).expect("available() said yes");
            let tag = |path: &str| format!("{path} ν={nu} isa={}", isa.name());

            let mut staged = v.clone();
            fmmp_in_place(&mut staged, P);
            assert_bits_equal(&fmmp_ref, &staged, &tag("fmmp staged"));

            let mut fused = v.clone();
            qs_matvec::fmmp_in_place_fused(&mut fused, P);
            assert_bits_equal(&fmmp_ref, &fused, &tag("fmmp fused"));

            let mut par = v.clone();
            par_fmmp_in_place(&mut par, P);
            assert_bits_equal(&fmmp_ref, &par, &tag("fmmp par-staged"));

            let mut par_fused = v.clone();
            par_fmmp_in_place_fused(&mut par_fused, P);
            assert_bits_equal(&fmmp_ref, &par_fused, &tag("fmmp par-fused"));

            let mut fwht_fused = w.clone();
            qs_matvec::fwht_in_place_fused(&mut fwht_fused);
            assert_bits_equal(&fwht_ref, &fwht_fused, &tag("fwht fused"));

            let mut fwht_par = w.clone();
            par_fwht_in_place_fused(&mut fwht_par);
            assert_bits_equal(&fwht_ref, &fwht_par, &tag("fwht par-fused"));

            // Batched apply: bounded at two columns so the ν sweep stays
            // within a reasonable memory/runtime budget.
            if nu <= 14 {
                let k = 2usize;
                let mut slab = Vec::with_capacity(n * k);
                for j in 0..k {
                    slab.extend_from_slice(&probe_vector(n, 59_000 + u64::from(nu) * 8 + j as u64));
                }
                let mut expected = slab.clone();
                qs_matvec::simd::force(Isa::Scalar).expect("scalar is always available");
                for col in expected.chunks_exact_mut(n) {
                    fmmp_in_place(col, P);
                }
                qs_matvec::simd::force(isa).expect("available() said yes");
                fmmp_batch_in_place(&mut slab, k, P);
                assert_bits_equal(&expected, &slab, &tag("fmmp batch"));
            }
        }
    }
    qs_matvec::simd::reset_auto();
}

/// Lengths chosen to straddle the 4-lane (AVX2) and 8-lane (AVX-512)
/// widths: empty, sub-width, exact multiples, and every off-by-one around
/// them, so the SIMD main body + scalar tail split is exercised in full.
const TAIL_LENGTHS: [usize; 19] = [
    0, 1, 2, 3, 4, 5, 6, 7, 8, 9, 15, 16, 17, 31, 32, 33, 63, 64, 67,
];

#[test]
fn lane_kernels_are_bit_identical_across_isas_on_odd_tails() {
    let _guard = isa_lock();
    let bf = MixButterfly::new(P);
    for &len in &TAIL_LENGTHS {
        let fibres: Vec<Vec<f64>> = (0..8)
            .map(|j| probe_vector(len.max(1), 83_000 + len as u64 * 8 + j)[..len].to_vec())
            .collect();

        // Scalar truth for each radix kernel.
        qs_matvec::simd::force(Isa::Scalar).expect("scalar is always available");
        let scalar2 = {
            let mut f: Vec<Vec<f64>> = fibres[..2].to_vec();
            let (a, b) = f.split_at_mut(1);
            radix2_lanes(&mut a[0], &mut b[0], bf);
            f
        };
        let scalar4 = {
            let mut f: Vec<Vec<f64>> = fibres[..4].to_vec();
            let [f0, f1, f2, f3] = f.as_mut_slice() else {
                unreachable!()
            };
            radix4_lanes(f0, f1, f2, f3, bf);
            f
        };
        let scalar8 = {
            let mut f: Vec<Vec<f64>> = fibres.clone();
            let [f0, f1, f2, f3, f4, f5, f6, f7] = f.as_mut_slice() else {
                unreachable!()
            };
            radix8_lanes(f0, f1, f2, f3, f4, f5, f6, f7, bf);
            f
        };

        for isa in available_isas() {
            qs_matvec::simd::force(isa).expect("available() said yes");
            let tag = |r: u32| format!("radix{r} lanes len={len} isa={}", isa.name());

            let mut f = fibres[..2].to_vec();
            let (a, b) = f.split_at_mut(1);
            radix2_lanes(&mut a[0], &mut b[0], bf);
            for (got, want) in f.iter().zip(&scalar2) {
                assert_bits_equal(want, got, &tag(2));
            }

            let mut f = fibres[..4].to_vec();
            let [f0, f1, f2, f3] = f.as_mut_slice() else {
                unreachable!()
            };
            radix4_lanes(f0, f1, f2, f3, bf);
            for (got, want) in f.iter().zip(&scalar4) {
                assert_bits_equal(want, got, &tag(4));
            }

            let mut f = fibres.clone();
            let [f0, f1, f2, f3, f4, f5, f6, f7] = f.as_mut_slice() else {
                unreachable!()
            };
            radix8_lanes(f0, f1, f2, f3, f4, f5, f6, f7, bf);
            for (got, want) in f.iter().zip(&scalar8) {
                assert_bits_equal(want, got, &tag(8));
            }
        }
    }
    qs_matvec::simd::reset_auto();
}

#[test]
fn block_compaction_is_bit_identical_per_engine_and_isa() {
    // Adaptive block compaction reorders which slab slot a column lives
    // in — never the per-element arithmetic — so a compacting block run
    // must reproduce the forced-full-width run bit for bit on every
    // engine (staged / fused / parallel) under every SIMD dispatch.
    use qs_matvec::{Fmmp, LinearOperator, ParFmmp};
    use quasispecies::{block_power_iteration_in, PowerOptions, Workspace};

    let _guard = isa_lock();
    let nu = 8u32;
    let n = 1usize << nu;
    let k = 4usize;
    // Staggered starts: the dominant eigenvector of the mutation-only
    // operator Q is uniform; perturbations spanning decades make the
    // columns freeze at well-separated iterations so compaction fires.
    let mut starts = Vec::with_capacity(n * k);
    for s in 0..k {
        let eps = 10f64.powi(-3 * (k - 1 - s) as i32);
        let noise = probe_vector(n, 91_000 + s as u64);
        starts.extend(noise.iter().map(|&z| 1.0 + eps * z));
    }
    let opts = |threshold: f64| PowerOptions {
        tol: 1e-12,
        compact_threshold: threshold,
        ..Default::default()
    };

    let engines: Vec<(&str, Box<dyn LinearOperator>)> = vec![
        ("fmmp-staged", Box::new(Fmmp::new(nu, 0.1))),
        ("fmmp-fused", Box::new(Fmmp::fused(nu, 0.1))),
        ("par-staged", Box::new(ParFmmp::new(nu, 0.1))),
        ("par-fused", Box::new(ParFmmp::fused(nu, 0.1))),
    ];
    let mut ws = Workspace::new();
    for isa in available_isas() {
        qs_matvec::simd::force(isa).expect("available() said yes");
        for (engine, op) in &engines {
            let tag = format!("engine={engine} isa={}", isa.name());
            let full = block_power_iteration_in(op.as_ref(), &starts, &opts(0.0), &mut ws);
            let compacted = block_power_iteration_in(op.as_ref(), &starts, &opts(0.75), &mut ws);
            assert_eq!(full.compactions, 0, "{tag}: threshold 0 must not compact");
            assert!(
                compacted.compactions > 0,
                "{tag}: staggered freezes must trigger compaction"
            );
            assert!(
                compacted.matvec_columns < full.matvec_columns,
                "{tag}: compaction must apply fewer matvec-columns"
            );
            for (c, (fo, co)) in full.columns.iter().zip(&compacted.columns).enumerate() {
                assert_eq!(fo.lambda.to_bits(), co.lambda.to_bits(), "{tag} col {c}");
                assert_eq!(
                    fo.residual.to_bits(),
                    co.residual.to_bits(),
                    "{tag} col {c}"
                );
                assert_eq!(fo.iterations, co.iterations, "{tag} col {c}");
                assert_eq!(fo.converged, co.converged, "{tag} col {c}");
                assert_bits_equal(&fo.vector, &co.vector, &format!("{tag} col {c} vector"));
            }
        }
    }
    qs_matvec::simd::reset_auto();
}

fn check_batch(nu: u32, k: usize) {
    let n = 1usize << nu;
    let mut slab = Vec::with_capacity(n * k);
    for j in 0..k {
        slab.extend_from_slice(&probe_vector(n, 7_000 + u64::from(nu) * 16 + j as u64));
    }

    let mut expected = slab.clone();
    for col in expected.chunks_exact_mut(n) {
        fmmp_in_place(col, P);
    }
    let mut batched = slab.clone();
    fmmp_batch_in_place(&mut batched, k, P);
    assert_bits_equal(&expected, &batched, &format!("fmmp batch ν={nu} k={k}"));

    let mut expected = slab.clone();
    for col in expected.chunks_exact_mut(n) {
        fwht_in_place(col);
    }
    fwht_batch_in_place(&mut slab, k);
    assert_bits_equal(&expected, &slab, &format!("fwht batch ν={nu} k={k}"));
}
