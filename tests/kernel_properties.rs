//! Exact-equality pins for every kernel path over the full ν range.
//!
//! The fused, parallel and batched kernels regroup the staged butterfly
//! schedule but never change any per-element expression or evaluation
//! order, so their results must match the staged reference **bit for
//! bit** — not merely to tolerance. These tests pin that contract for
//! ν = 1..=20 across:
//!
//! * serial fused (`fmmp_in_place_fused` / `fwht_in_place_fused`),
//! * span-parallel fused (`par_fmmp_in_place_fused` /
//!   `par_fwht_in_place_fused`) and the per-stage parallel path,
//! * the column-blocked batched apply (`fmmp_batch_in_place` /
//!   `fwht_batch_in_place`) at several column counts.

use qs_matvec::fmmp::fmmp_in_place;
use qs_matvec::fwht::fwht_in_place;
use qs_matvec::parallel::{
    par_fmmp_in_place, par_fmmp_in_place_fused, par_fwht_in_place, par_fwht_in_place_fused,
};
use qs_matvec::{fmmp_batch_in_place, fwht_batch_in_place};

const P: f64 = 0.013;

/// Deterministic, sign-mixed, non-uniform probe vector: exercises
/// cancellation paths a positive vector would miss.
fn probe_vector(n: usize, seed: u64) -> Vec<f64> {
    let mut state = seed.wrapping_mul(0x9E3779B97F4A7C15).max(1);
    (0..n)
        .map(|_| {
            // SplitMix64 step; map to (-2, 2) with full mantissa variety.
            state = state.wrapping_add(0x9E3779B97F4A7C15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
            z ^= z >> 31;
            (z as f64 / u64::MAX as f64) * 4.0 - 2.0
        })
        .collect()
}

fn assert_bits_equal(a: &[f64], b: &[f64], what: &str) {
    for (i, (x, y)) in a.iter().zip(b).enumerate() {
        assert_eq!(
            x.to_bits(),
            y.to_bits(),
            "{what}: element {i} differs ({x:e} vs {y:e})"
        );
    }
}

#[test]
fn fmmp_serial_and_parallel_paths_are_bit_identical_for_nu_1_to_20() {
    for nu in 1..=20u32 {
        let n = 1usize << nu;
        let v = probe_vector(n, u64::from(nu));

        let mut reference = v.clone();
        fmmp_in_place(&mut reference, P);

        let mut fused = v.clone();
        qs_matvec::fmmp_in_place_fused(&mut fused, P);
        assert_bits_equal(&reference, &fused, &format!("fmmp fused ν={nu}"));

        let mut par = v.clone();
        par_fmmp_in_place(&mut par, P);
        assert_bits_equal(&reference, &par, &format!("fmmp par-staged ν={nu}"));

        let mut par_fused = v.clone();
        par_fmmp_in_place_fused(&mut par_fused, P);
        assert_bits_equal(&reference, &par_fused, &format!("fmmp par-fused ν={nu}"));
    }
}

#[test]
fn fwht_serial_and_parallel_paths_are_bit_identical_for_nu_1_to_20() {
    for nu in 1..=20u32 {
        let n = 1usize << nu;
        let v = probe_vector(n, 1000 + u64::from(nu));

        let mut reference = v.clone();
        fwht_in_place(&mut reference);

        let mut fused = v.clone();
        qs_matvec::fwht_in_place_fused(&mut fused);
        assert_bits_equal(&reference, &fused, &format!("fwht fused ν={nu}"));

        let mut par = v.clone();
        par_fwht_in_place(&mut par);
        assert_bits_equal(&reference, &par, &format!("fwht par-staged ν={nu}"));

        let mut par_fused = v.clone();
        par_fwht_in_place_fused(&mut par_fused);
        assert_bits_equal(&reference, &par_fused, &format!("fwht par-fused ν={nu}"));
    }
}

#[test]
fn batched_apply_is_bit_identical_to_column_by_column_for_nu_1_to_20() {
    // Full ν sweep at a small column count, plus wider slabs at moderate ν
    // (keeps the test under control: ν=20 × 8 columns is a 64 MiB slab).
    for nu in 1..=20u32 {
        let k = if nu <= 14 { 3 } else { 2 };
        check_batch(nu, k);
    }
    for k in [1usize, 2, 3, 8] {
        check_batch(12, k);
    }
}

fn check_batch(nu: u32, k: usize) {
    let n = 1usize << nu;
    let mut slab = Vec::with_capacity(n * k);
    for j in 0..k {
        slab.extend_from_slice(&probe_vector(n, 7_000 + u64::from(nu) * 16 + j as u64));
    }

    let mut expected = slab.clone();
    for col in expected.chunks_exact_mut(n) {
        fmmp_in_place(col, P);
    }
    let mut batched = slab.clone();
    fmmp_batch_in_place(&mut batched, k, P);
    assert_bits_equal(&expected, &batched, &format!("fmmp batch ν={nu} k={k}"));

    let mut expected = slab.clone();
    for col in expected.chunks_exact_mut(n) {
        fwht_in_place(col);
    }
    fwht_batch_in_place(&mut slab, k);
    assert_bits_equal(&expected, &slab, &format!("fwht batch ν={nu} k={k}"));
}
