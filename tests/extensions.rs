//! Integration tests for the features that extend the paper: RQI with
//! MINRES inner solves, spectral-gap diagnostics, NK and multiplicative
//! landscapes, full-solver threshold scans, and the Wright–Fisher
//! finite-population simulator.

use qs_landscape::{Landscape, Multiplicative, Nk, Random, SinglePeak};
use qs_matvec::{Fmmp, Formulation, WOperator};
use qs_stochastic::{WrightFisher, WrightFisherOptions};
use quasispecies::{
    rayleigh_quotient_iteration, scan_full, solve, solve_kronecker, spectral_gap, summarize,
    Method, RqiOptions, SolverConfig, SpectralGapOptions,
};

#[test]
fn rqi_solver_method_cross_checks_on_nk_landscape() {
    // A rugged NK landscape: no structure for any reduction; RQI and PI
    // must agree through completely different numerical paths.
    // Rugged NK landscapes have a small spectral gap (PI needs ~400
    // iterations here), which is exactly where RQI's cubic convergence
    // pays off — but it also means the warm-up must be long enough to pin
    // the Rayleigh quotient to λ₀ rather than the nearby λ₁.
    let landscape = Nk::new(9, 4, 12);
    let pi = solve(0.01, &landscape, &SolverConfig::default()).unwrap();
    let rqi = solve(
        0.01,
        &landscape,
        &SolverConfig {
            method: Method::Rqi { warmup: 50 },
            tol: 1e-11,
            ..Default::default()
        },
    )
    .unwrap();
    assert!((pi.lambda - rqi.lambda).abs() < 1e-8);
    for (a, b) in pi.concentrations.iter().zip(&rqi.concentrations) {
        assert!((a - b).abs() < 1e-7);
    }
    // The payoff on a small-gap instance: far fewer operator applications.
    assert!(
        rqi.stats.matvecs < pi.stats.matvecs,
        "RQI {} !< PI {}",
        rqi.stats.matvecs,
        pi.stats.matvecs
    );
}

#[test]
fn multiplicative_landscape_solves_by_both_routes() {
    // Multiplicative fitness is a Kronecker landscape: the §5.2 factorised
    // route and the monolithic route must agree.
    let p = 0.01;
    let landscape = Multiplicative::new(2.0, vec![0.9, 0.85, 0.95, 0.8, 0.9, 0.88]);
    let kron = solve_kronecker(p, &landscape.to_kronecker(), &SolverConfig::default()).unwrap();
    let full = solve(
        p,
        &landscape,
        &SolverConfig {
            tol: 1e-14,
            ..Default::default()
        },
    )
    .unwrap();
    assert!((kron.lambda - full.lambda).abs() < 1e-10);
    for i in 0..landscape.len() as u64 {
        assert!((kron.concentration(i) - full.concentration(i)).abs() < 1e-9);
    }
}

#[test]
fn multiplicative_error_class_case_matches_reduced() {
    // Uniform deleterious multiplicative fitness IS an error-class
    // landscape (f_i = base·(1−s)^{w(i)}): three independent solvers, one
    // answer.
    let nu = 10u32;
    let p = 0.02;
    let s = 0.15;
    let landscape = Multiplicative::uniform_deleterious(nu, 2.0, s);
    assert!(landscape.is_error_class());
    let phi: Vec<f64> = (0..=nu).map(|k| 2.0 * (1.0 - s).powi(k as i32)).collect();
    let reduced = quasispecies::solve_error_class(nu, p, &phi);
    let full = solve(
        p,
        &landscape,
        &SolverConfig {
            tol: 1e-14,
            ..Default::default()
        },
    )
    .unwrap();
    let kron = solve_kronecker(p, &landscape.to_kronecker(), &SolverConfig::default()).unwrap();
    assert!((reduced.lambda - full.lambda).abs() < 1e-10);
    assert!((kron.lambda - full.lambda).abs() < 1e-10);
    let gamma = full.error_class_concentrations();
    for ((a, b), c) in reduced
        .classes
        .iter()
        .zip(&gamma)
        .zip(&kron.class_concentrations())
    {
        assert!((a - b).abs() < 1e-9);
        assert!((b - c).abs() < 1e-9);
    }
}

#[test]
fn spectral_gap_explains_convergence_across_landscapes() {
    for seed in [3u64, 14] {
        let nu = 8u32;
        let p = 0.02;
        let landscape = Random::new(nu, 5.0, 1.0, seed);
        let w = WOperator::from_landscape(Fmmp::new(nu, p), &landscape, Formulation::Symmetric);
        let start: Vec<f64> = landscape.materialize().iter().map(|f| f.sqrt()).collect();
        let gap = spectral_gap(&w, &start, &SpectralGapOptions::default());
        assert!(gap.ratio > 0.0 && gap.ratio < 1.0);
        // λ₀ from the gap estimator equals the solver's.
        let qs = solve(p, &landscape, &SolverConfig::default()).unwrap();
        assert!((gap.lambda0 - qs.lambda).abs() < 1e-8);
    }
}

#[test]
fn population_summary_is_consistent_with_distribution() {
    let landscape = SinglePeak::new(9, 2.0, 1.0);
    let qs = solve(0.02, &landscape, &SolverConfig::default()).unwrap();
    let s = summarize(&qs);
    assert_eq!(s.consensus, 0);
    // Mutational load equals Σ_k k·[Γ_k].
    let gamma = qs.error_class_concentrations();
    let load_from_classes: f64 = gamma.iter().enumerate().map(|(k, &g)| k as f64 * g).sum();
    assert!((s.mutational_load - load_from_classes).abs() < 1e-10);
    assert!(s.diversity <= 2.0 * s.mutational_load + 1e-12);
}

#[test]
fn full_threshold_scan_on_rugged_landscape_shows_decay() {
    let landscape = Nk::new(9, 3, 77);
    let ps: Vec<f64> = vec![0.002, 0.01, 0.05, 0.15, 0.35, 0.5];
    let scan = scan_full(&landscape, &ps, &SolverConfig::default()).unwrap();
    // Monotone-ish decay of order with p; exactly 0 at p = 1/2.
    assert!(scan.order[0] > scan.order[scan.order.len() - 2]);
    assert!(
        scan.order.last().unwrap().abs() < 1e-9,
        "order at p = 1/2 must vanish"
    );
}

#[test]
fn wright_fisher_converges_to_spectral_solution() {
    let nu = 5u32;
    let p = 0.03;
    let landscape = SinglePeak::new(nu, 2.0, 1.0);
    let det = solve(p, &landscape, &SolverConfig::default()).unwrap();
    let mut wf = WrightFisher::new(
        &landscape,
        WrightFisherOptions {
            population: 30_000,
            p,
            seed: 21,
            back_mutation: true,
        },
    );
    let est = wf.stationary_estimate(150, 250);
    for (i, (&a, &b)) in est.iter().zip(&det.concentrations).enumerate() {
        assert!(
            (a - b).abs() < 0.02,
            "sequence {i}: stochastic {a:.4} vs deterministic {b:.4}"
        );
    }
}

#[test]
fn rqi_standalone_matches_method_enum_path() {
    let nu = 7u32;
    let p = 0.02;
    let landscape = Random::new(nu, 5.0, 1.0, 88);
    let w = WOperator::from_landscape(Fmmp::new(nu, p), &landscape, Formulation::Symmetric);
    let start: Vec<f64> = landscape.materialize().iter().map(|f| f.sqrt()).collect();
    let direct = rayleigh_quotient_iteration(&w, &start, &RqiOptions::default()).unwrap();
    let via_solver = solve(
        p,
        &landscape,
        &SolverConfig {
            method: Method::Rqi { warmup: 10 },
            tol: 1e-12,
            ..Default::default()
        },
    )
    .unwrap();
    assert!((direct.lambda - via_solver.lambda).abs() < 1e-9);
}
