//! End-to-end integration tests: the same physical answer must emerge from
//! every independent route through the workspace — the full-size spectral
//! solver, the Section 5.1 exact reduction, the Section 5.2 Kronecker
//! factorisation, and direct integration of Eigen's ODE dynamics.

use qs_landscape::{ErrorClass, Kronecker, Landscape, Random, SinglePeak};
use qs_matvec::Fmmp;
use qs_ode::{integrate_to_steady_state, ReplicatorFlow, SteadyStateOptions};
use quasispecies::{solve, solve_error_class, solve_kronecker, Engine, Method, SolverConfig};

#[test]
fn four_routes_to_the_same_quasispecies() {
    // Single-peak landscape is simultaneously: a general landscape (full
    // solver), an error-class landscape (§5.1), and the ODE's stationary
    // state. All three must agree.
    let nu = 8u32;
    let p = 0.015;
    let landscape = SinglePeak::new(nu, 2.0, 1.0);

    let full = solve(
        p,
        &landscape,
        &SolverConfig {
            tol: 1e-14,
            ..Default::default()
        },
    )
    .unwrap();

    let ec = ErrorClass::single_peak(nu, 2.0, 1.0);
    let reduced = solve_error_class(nu, p, ec.phi());

    let flow = ReplicatorFlow::new(Fmmp::new(nu, p), landscape.materialize());
    let mut x0 = vec![0.0; landscape.len()];
    x0[0] = 1.0;
    let ode = integrate_to_steady_state(&flow, &x0, &SteadyStateOptions::default());
    assert!(ode.converged);

    // Eigenvalues agree across all routes.
    assert!((full.lambda - reduced.lambda).abs() < 1e-10);
    assert!((full.lambda - ode.mean_fitness).abs() < 1e-9);

    // Concentrations agree pointwise.
    for i in 0..landscape.len() as u64 {
        let a = full.concentration(i);
        let b = reduced.concentration(i);
        let c = ode.x[i as usize];
        assert!((a - b).abs() < 1e-10, "full vs reduced at {i}");
        assert!((a - c).abs() < 1e-9, "full vs ODE at {i}");
    }
}

#[test]
fn kronecker_route_agrees_with_full_solver() {
    let p = 0.02;
    let landscape = Kronecker::new(vec![
        vec![2.0, 1.0, 1.1, 0.9],
        vec![1.4, 1.0, 1.2, 0.8],
        vec![1.5, 1.0],
    ]); // ν = 5
    let kron = solve_kronecker(p, &landscape, &SolverConfig::default()).unwrap();
    let full = solve(
        p,
        &landscape,
        &SolverConfig {
            tol: 1e-14,
            ..Default::default()
        },
    )
    .unwrap();
    assert!((kron.lambda - full.lambda).abs() < 1e-10);
    let gamma_kron = kron.class_concentrations();
    let gamma_full = full.error_class_concentrations();
    for (a, b) in gamma_kron.iter().zip(&gamma_full) {
        assert!((a - b).abs() < 1e-9);
    }
}

#[test]
fn lanczos_and_power_and_ode_agree_on_random_landscape() {
    let nu = 9u32;
    let p = 0.01;
    let landscape = Random::new(nu, 5.0, 1.0, 777);

    let pi = solve(p, &landscape, &SolverConfig::default()).unwrap();
    let lz = solve(
        p,
        &landscape,
        &SolverConfig {
            method: Method::Lanczos { subspace: 70 },
            ..Default::default()
        },
    )
    .unwrap();
    assert!((pi.lambda - lz.lambda).abs() < 1e-9);

    let flow = ReplicatorFlow::new(Fmmp::new(nu, p), landscape.materialize());
    let uniform = vec![1.0 / landscape.len() as f64; landscape.len()];
    let ode = integrate_to_steady_state(&flow, &uniform, &SteadyStateOptions::default());
    assert!(ode.converged);
    assert!((pi.lambda - ode.mean_fitness).abs() < 1e-8);
    for (a, b) in pi.concentrations.iter().zip(&ode.x) {
        assert!((a - b).abs() < 1e-8);
    }
}

#[test]
fn reduced_solver_handles_figure1_scale_instantly() {
    // Figure 1 needs ν = 20 across ~50 error rates; the reduction makes
    // each point O(ν³). Run the whole left panel here to keep it covered
    // by `cargo test`.
    let nu = 20u32;
    let phi = ErrorClass::single_peak(nu, 2.0, 1.0);
    let t0 = std::time::Instant::now();
    let ps: Vec<f64> = (1..=45).map(|i| i as f64 * 0.002).collect();
    let scan = quasispecies::scan_error_classes(nu, phi.phi(), &ps);
    assert!(
        t0.elapsed().as_secs_f64() < 30.0,
        "reduction should be near-instant"
    );
    // Ordered at small p, uniform-ish at large p.
    assert!(scan.classes[0][0] > 0.85);
    let last = scan.classes.last().unwrap();
    assert!(last[0] < 1e-4);
    // Each profile is a probability distribution over classes.
    for c in &scan.classes {
        let s: f64 = c.iter().sum();
        assert!((s - 1.0).abs() < 1e-10);
        assert!(c.iter().all(|&v| v >= -1e-15));
    }
}

#[test]
fn general_engine_matrix_agreement_spot_check() {
    // One (ν, p, landscape) instance, every engine, bitwise-close results.
    let nu = 6u32;
    let p = 0.05;
    let landscape = Random::new(nu, 5.0, 1.0, 31);
    let configs = [
        Engine::Fmmp,
        Engine::FmmpParallel,
        Engine::Xmvp { d_max: nu },
        Engine::Smvp,
        Engine::Kronecker,
    ];
    let reference = solve(p, &landscape, &SolverConfig::default()).unwrap();
    for engine in configs {
        let qs = solve(
            p,
            &landscape,
            &SolverConfig {
                engine,
                ..Default::default()
            },
        )
        .unwrap();
        assert!((qs.lambda - reference.lambda).abs() < 1e-10, "{engine:?}");
        for (a, b) in qs.concentrations.iter().zip(&reference.concentrations) {
            assert!((a - b).abs() < 1e-9, "{engine:?}");
        }
    }
}
