//! Warm-start continuation correctness: a warm-started sweep must agree
//! with the cold sweep to within a small multiple of the shared residual
//! tolerance — across methods and landscapes, including the `p = 1/2`
//! grid endpoint where the mutation matrix degenerates to rank one.
//!
//! The contract under test (see `SolveRequest` docs): warm starts change
//! the iterate *path*, never the answer. Same tolerance in, eigenvalues
//! within `10·tol`, concentrations within `10·tol` per entry.

use quasispecies::{LandscapeSpec, Method, Scheduling, SolveRequest, SolveResult};

const TOL: f64 = 1e-10;

fn run(landscape: LandscapeSpec, ps: &[f64], method: Method, warm_start: bool) -> SolveResult {
    let request = SolveRequest {
        landscape,
        ps: ps.to_vec(),
        method,
        tol: TOL,
        max_iter: 400_000,
        scheduling: Scheduling {
            parallel: false,
            warm_start,
            compact: true,
        },
    };
    request.run().expect("sweep solves")
}

fn assert_agreement(cold: &SolveResult, warm: &SolveResult, label: &str) {
    assert_eq!(cold.points.len(), warm.points.len());
    for (c, w) in cold.points.iter().zip(&warm.points) {
        assert_eq!(c.p, w.p, "{label}: same grid back");
        assert!(c.solution.stats.converged, "{label}: cold converged");
        assert!(w.solution.stats.converged, "{label}: warm converged");
        assert!(
            w.solution.stats.residual <= TOL,
            "{label}: warm residual {} must meet the same tolerance",
            w.solution.stats.residual
        );
        let dl = (c.solution.lambda - w.solution.lambda).abs();
        assert!(
            dl <= 10.0 * TOL,
            "{label}: lambda disagreement {dl:e} at p={}",
            c.p
        );
        for (i, (&a, &b)) in c
            .solution
            .concentrations
            .iter()
            .zip(&w.solution.concentrations)
            .enumerate()
        {
            assert!(
                (a - b).abs() <= 10.0 * TOL,
                "{label}: concentration {i} differs by {:e} at p={}",
                (a - b).abs(),
                c.p
            );
        }
    }
}

fn landscapes() -> Vec<(&'static str, LandscapeSpec)> {
    vec![
        (
            "single-peak",
            LandscapeSpec::SinglePeak {
                nu: 8,
                f0: 4.0,
                f_rest: 1.0,
            },
        ),
        (
            "random",
            LandscapeSpec::Random {
                nu: 8,
                c: 5.0,
                sigma: 1.0,
                seed: 42,
            },
        ),
        (
            "error-class",
            LandscapeSpec::ErrorClass {
                nu: 8,
                phi: vec![3.0, 1.8, 1.2, 1.0, 1.0, 1.0, 1.0, 1.0, 1.0],
            },
        ),
    ]
}

#[test]
fn warm_sweeps_agree_with_cold_sweeps_across_landscapes() {
    let ps: Vec<f64> = (0..9).map(|i| 0.004 + 0.006 * i as f64).collect();
    for (label, landscape) in landscapes() {
        let cold = run(landscape.clone(), &ps, Method::Power, false);
        let warm = run(landscape, &ps, Method::Power, true);
        assert_agreement(&cold, &warm, label);
        assert!(
            warm.points
                .iter()
                .any(|pt| pt.solution.stats.warm_start.is_some()),
            "{label}: the continuation ladder must actually warm-start columns"
        );
    }
}

#[test]
fn the_half_rate_endpoint_survives_warm_continuation() {
    // p = 1/2 is the valid upper edge of the rate domain: Q becomes the
    // uniform rank-one mutator and the quasispecies delocalises. The
    // continuation ladder solves endpoints cold and interpolates inward,
    // so the degenerate edge must neither fail nor contaminate its
    // neighbours.
    let ps = [0.01, 0.1, 0.2, 0.3, 0.4, 0.5];
    let (label, landscape) = landscapes().remove(0);
    let cold = run(landscape.clone(), &ps, Method::Power, false);
    let warm = run(landscape, &ps, Method::Power, true);
    assert_agreement(&cold, &warm, label);
    let edge = warm.points.iter().find(|pt| pt.p == 0.5).unwrap();
    assert!(edge.solution.stats.converged);
}

#[test]
fn non_power_methods_accept_and_ignore_warm_start_scheduling() {
    // Lanczos and RQI have no continuation path; `warm_start: true` must
    // be accepted and produce exactly the cold per-point behaviour.
    let ps = [0.01, 0.02, 0.03, 0.04];
    let landscape = LandscapeSpec::SinglePeak {
        nu: 7,
        f0: 4.0,
        f_rest: 1.0,
    };
    for method in [Method::Lanczos { subspace: 24 }, Method::Rqi { warmup: 5 }] {
        let cold = run(landscape.clone(), &ps, method, false);
        let warm = run(landscape.clone(), &ps, method, true);
        for (c, w) in cold.points.iter().zip(&warm.points) {
            assert_eq!(c.solution.lambda, w.solution.lambda, "bit-identical");
            assert_eq!(c.solution.concentrations, w.solution.concentrations);
            assert!(w.solution.stats.warm_start.is_none());
        }
    }
}

#[test]
fn faulted_recovery_solves_stay_cold_and_agree_with_the_warm_sweep() {
    // The recovery ladder (DESIGN.md §7) must never be handed a
    // nearly-converged warm seed: a faulted solve restarts from the cold
    // generic start, heals, and still lands on the same answer a warm
    // continuation sweep reports.
    use qs_fault::{FaultPlan, FaultyOp};
    use qs_matvec::{Fmmp, LinearOperator};
    use quasispecies::{solve_with_q_operator, SolverConfig};

    let ps = [0.008, 0.012, 0.016, 0.02, 0.024];
    let (label, landscape) = landscapes().remove(0);
    let warm = run(landscape.clone(), &ps, Method::Power, true);

    let built = landscape.build().expect("buildable landscape");
    let config = SolverConfig {
        tol: TOL,
        max_iter: 400_000,
        ..Default::default()
    };
    let plan = FaultPlan::transient_nan(3);
    for (w, &p) in warm.points.iter().zip(&ps) {
        let op: Box<dyn LinearOperator> = Box::new(FaultyOp::new(Fmmp::new(built.nu(), p), &plan));
        let healed = solve_with_q_operator(op, built.as_ref(), &config).expect("healed solve");
        assert!(
            healed.stats.converged,
            "{label}: p={p} heals to convergence"
        );
        assert!(
            healed.stats.warm_start.is_none(),
            "{label}: recovery-ladder restarts are cold starts"
        );
        assert!(
            healed.stats.recovered_from.is_some(),
            "{label}: the injected fault must actually trip the ladder"
        );
        let dl = (healed.lambda - w.solution.lambda).abs();
        assert!(
            dl <= 10.0 * TOL,
            "{label}: faulted cold recovery disagrees with the warm sweep by {dl:e} at p={p}"
        );
    }
}

#[test]
fn compaction_keeps_warm_sweeps_bit_identical_and_cheaper() {
    // Scheduling.compact only changes how many matvec-columns the block
    // loop pays — never the per-column iterate sequence. A warm sweep
    // with compaction must reproduce the uncompacted sweep bit for bit
    // while applying strictly fewer matvec-columns.
    let ps: Vec<f64> = (0..12).map(|i| 0.004 + 0.004 * i as f64).collect();
    let landscape = LandscapeSpec::Random {
        nu: 8,
        c: 5.0,
        sigma: 1.0,
        seed: 42,
    };
    let solve = |compact: bool| -> SolveResult {
        SolveRequest {
            landscape: landscape.clone(),
            ps: ps.clone(),
            method: Method::Power,
            tol: TOL,
            max_iter: 400_000,
            scheduling: Scheduling {
                parallel: false,
                warm_start: true,
                compact,
            },
        }
        .run()
        .expect("sweep solves")
    };
    let full = solve(false);
    let compacted = solve(true);
    for (f, c) in full.points.iter().zip(&compacted.points) {
        assert_eq!(f.solution.lambda, c.solution.lambda, "bit-identical lambda");
        assert_eq!(f.solution.concentrations, c.solution.concentrations);
        assert_eq!(f.solution.stats.iterations, c.solution.stats.iterations);
    }
    assert_eq!(full.block.compactions, 0, "compact=false never compacts");
    assert_eq!(full.block.matvec_columns_saved, 0);
    assert!(
        compacted.block.compactions > 0,
        "staggered convergence must trigger at least one compaction"
    );
    assert!(
        compacted.block.matvec_columns < full.block.matvec_columns,
        "compaction must pay fewer matvec-columns ({} vs {})",
        compacted.block.matvec_columns,
        full.block.matvec_columns
    );
    assert_eq!(
        compacted.block.matvec_columns + compacted.block.matvec_columns_saved,
        full.block.matvec_columns,
        "saved + applied must equal the fixed-width bill"
    );
}

#[test]
fn repeat_warm_runs_are_deterministic() {
    let ps: Vec<f64> = (0..8).map(|i| 0.005 + 0.005 * i as f64).collect();
    let landscape = LandscapeSpec::SinglePeak {
        nu: 8,
        f0: 4.0,
        f_rest: 1.0,
    };
    let a = run(landscape.clone(), &ps, Method::Power, true);
    let b = run(landscape, &ps, Method::Power, true);
    for (x, y) in a.points.iter().zip(&b.points) {
        assert_eq!(x.solution.lambda, y.solution.lambda);
        assert_eq!(x.solution.concentrations, y.solution.concentrations);
        assert_eq!(
            x.solution.stats.iterations, y.solution.stats.iterations,
            "same seeds, same path"
        );
    }
}
