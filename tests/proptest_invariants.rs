//! Property-based tests (proptest) on the cross-crate invariants of the
//! quasispecies machinery: for *arbitrary* valid error rates, landscapes
//! and mutation factors, the algebraic identities the paper's fast
//! algorithms rest on must hold.

use proptest::prelude::*;
use qs_landscape::{Landscape, Tabulated};
use qs_linalg::DenseMatrix;
use qs_matvec::{
    convert_eigenvector, fmmp::fmmp_in_place, Fmmp, Formulation, Fwht, KroneckerOp, LinearOperator,
    ParFmmp, QShiftInvert, ShiftedOp, WOperator, Xmvp,
};
use qs_mutation::{is_column_stochastic, MutationModel, PerSite, SiteProcess, Uniform};

fn max_diff(a: &[f64], b: &[f64]) -> f64 {
    a.iter()
        .zip(b)
        .fold(0.0f64, |m, (&x, &y)| m.max((x - y).abs()))
}

/// Strategy: a valid error rate in the open-ish interval (0, 1/2].
fn error_rate() -> impl Strategy<Value = f64> {
    (1u32..=500).prop_map(|i| i as f64 / 1000.0)
}

/// Strategy: a vector of `n` values in [lo, hi).
fn vec_in(n: usize, lo: f64, hi: f64) -> impl Strategy<Value = Vec<f64>> {
    proptest::collection::vec(lo..hi, n)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Fmmp == Xmvp(ν) == dense Q·v for arbitrary p and input vectors
    /// (the equivalence of paper Section 2.1 and of [10]).
    #[test]
    fn fmmp_equals_xmvp_equals_dense(p in error_rate(), x in vec_in(64, -10.0, 10.0)) {
        let nu = 6u32;
        let dense = Uniform::new(nu, p).dense();
        let want = dense.matvec(&x);
        let mut fm = x.clone();
        fmmp_in_place(&mut fm, p);
        prop_assert!(max_diff(&want, &fm) < 1e-11);
        let xm = Xmvp::exact(nu, p).apply(&x);
        prop_assert!(max_diff(&want, &xm) < 1e-11);
    }

    /// Column stochasticity survives the fast product: 1ᵀ(Qv) = 1ᵀv.
    #[test]
    fn mass_conservation(p in error_rate(), x in vec_in(256, 0.0, 1.0)) {
        let before = qs_linalg::sum(&x);
        let mut v = x;
        fmmp_in_place(&mut v, p);
        prop_assert!((qs_linalg::sum(&v) - before).abs() < 1e-10);
    }

    /// Lemma 2: W maps error-class vectors to error-class vectors, for
    /// arbitrary error-class landscapes and class-valued inputs.
    #[test]
    fn lemma2_invariance(
        p in error_rate(),
        phi in vec_in(7, 0.1, 5.0),
        class_vals in vec_in(7, -3.0, 3.0),
    ) {
        let nu = 6u32;
        let landscape = Tabulated::from_fn(nu, |i| phi[i.count_ones() as usize]);
        let w = WOperator::from_landscape(Fmmp::new(nu, p), &landscape, Formulation::Right);
        let v: Vec<f64> = (0..64u64).map(|i| class_vals[i.count_ones() as usize]).collect();
        let wv = w.apply(&v);
        for k in 0..=nu {
            let rep = wv[qs_bitseq::representative(k) as usize];
            for j in qs_bitseq::ErrorClassIter::new(nu, k) {
                prop_assert!((wv[j as usize] - rep).abs() < 1e-10,
                    "class {} not constant", k);
            }
        }
    }

    /// The Kronecker product of column-stochastic 2×2 factors is column
    /// stochastic (the closure property of paper Section 2.2), and the
    /// fast chain product agrees with the dense one.
    #[test]
    fn stochastic_closure_and_fast_chain(
        rates in proptest::collection::vec((0.0..1.0f64, 0.0..1.0f64), 5),
        x in vec_in(32, -1.0, 1.0),
    ) {
        let sites: Vec<SiteProcess> =
            rates.iter().map(|&(a, b)| SiteProcess::new(a, b)).collect();
        let model = PerSite::new(sites);
        let dense = model.dense();
        prop_assert!(is_column_stochastic(&dense, 1e-10));
        let op = KroneckerOp::from_model(&model);
        prop_assert!(max_diff(&dense.matvec(&x), &op.apply(&x)) < 1e-11);
    }

    /// Eigenvector formulation conversions are exact inverses for any
    /// positive fitness diagonal (paper Eqs. 3–5 conversions).
    #[test]
    fn formulation_conversion_round_trip(
        f in vec_in(16, 0.05, 10.0),
        x in vec_in(16, -5.0, 5.0),
    ) {
        for from in [Formulation::Right, Formulation::Symmetric, Formulation::Left] {
            for to in [Formulation::Right, Formulation::Symmetric, Formulation::Left] {
                let there = convert_eigenvector(from, to, &x, &f);
                let back = convert_eigenvector(to, from, &there, &f);
                prop_assert!(max_diff(&x, &back) < 1e-9);
            }
        }
    }

    /// The reduced mutation matrix rows sum to 1 for any valid (ν, p) —
    /// a molecule mutates into *some* class with certainty (Eq. 14).
    #[test]
    fn reduced_matrix_row_stochastic(p in error_rate(), nu in 2u32..24) {
        let m = qs_mutation::reduced::reduced_matrix(nu, p);
        for d in 0..=nu as usize {
            let s: f64 = m.row(d).iter().sum();
            prop_assert!((s - 1.0).abs() < 1e-11, "row {} sums to {}", d, s);
        }
    }

    /// Perron–Frobenius: the solved concentrations are a probability
    /// distribution for arbitrary tabulated landscapes.
    #[test]
    fn solver_output_is_distribution(
        p in error_rate(),
        f in vec_in(32, 0.2, 4.0),
    ) {
        let landscape = Tabulated::new(f);
        let qs = quasispecies::solve(p, &landscape, &quasispecies::SolverConfig::default())
            .expect("converged");
        prop_assert!(qs.concentrations.iter().all(|&c| c >= 0.0));
        let s: f64 = qs.concentrations.iter().sum();
        prop_assert!((s - 1.0).abs() < 1e-11);
        prop_assert!(qs.lambda > 0.0);
        prop_assert!(qs.lambda <= landscape.f_max() + 1e-10);
    }

    /// The FWHT-based eigendecomposition identity Q = V Λ V holds as an
    /// operator for arbitrary p (paper Section 2): applying
    /// V·Λ·V via two FWHTs equals Fmmp.
    #[test]
    fn spectral_identity_as_operator(p in error_rate(), x in vec_in(64, -2.0, 2.0)) {
        let nu = 6u32;
        let mut via_spectrum = x.clone();
        qs_matvec::fwht::fwht_in_place(&mut via_spectrum);
        let scale = 0.5f64.powi(nu as i32);
        for (i, v) in via_spectrum.iter_mut().enumerate() {
            *v *= scale * (1.0 - 2.0 * p).powi((i as u64).count_ones() as i32);
        }
        qs_matvec::fwht::fwht_in_place(&mut via_spectrum);
        let mut via_fmmp = x;
        fmmp_in_place(&mut via_fmmp, p);
        prop_assert!(max_diff(&via_spectrum, &via_fmmp) < 1e-10);
    }

    /// Grouped factors: (A⊗B)(C⊗D) = AC⊗BD drives §5.2; check it on
    /// random stochastic-ish 2×2 blocks through the dense path.
    #[test]
    fn mixed_product_formula(
        a in vec_in(4, 0.0, 1.0),
        b in vec_in(4, 0.0, 1.0),
        c in vec_in(4, 0.0, 1.0),
        d in vec_in(4, 0.0, 1.0),
    ) {
        let m = |v: &Vec<f64>| DenseMatrix::from_vec(2, 2, v.clone());
        let (a, b, c, d) = (m(&a), m(&b), m(&c), m(&d));
        let lhs = a.kron(&b).matmul(&c.kron(&d));
        let rhs = a.matmul(&c).kron(&b.matmul(&d));
        prop_assert!(lhs.max_abs_diff(&rhs) < 1e-12);
    }

    /// The FWHT shift-invert product really inverts (Q − µI) for random
    /// admissible shifts below the spectrum (paper Section 3).
    #[test]
    fn shift_invert_round_trip(p in error_rate_open(), mu in -2.0..-0.01f64, x in vec_in(64, -1.0, 1.0)) {
        let nu = 6u32;
        let op = qs_matvec::QShiftInvert::new(nu, p, mu);
        let mut w = op.apply(&x);
        // Apply (Q − µI) back via Fmmp.
        let w_copy = w.clone();
        fmmp_in_place(&mut w, p);
        for (wi, &ci) in w.iter_mut().zip(&w_copy) {
            *wi -= mu * ci;
        }
        prop_assert!(max_diff(&w, &x) < 1e-9);
    }

    /// MINRES solves random symmetric diagonally-dominant systems to the
    /// LU answer (the inner kernel of the RQI extension).
    #[test]
    fn minres_matches_lu(entries in vec_in(36, -1.0, 1.0), rhs in vec_in(6, -2.0, 2.0)) {
        let n = 6usize;
        let mut a = DenseMatrix::zeros(n, n);
        for i in 0..n {
            for j in i..n {
                let v = entries[i * n + j];
                a[(i, j)] = v;
                a[(j, i)] = v;
            }
            a[(i, i)] += n as f64; // well conditioned
        }
        struct DenseOp(DenseMatrix);
        impl LinearOperator for DenseOp {
            fn len(&self) -> usize { self.0.rows() }
            fn apply_into(&self, x: &[f64], y: &mut [f64]) { self.0.matvec_into(x, y); }
        }
        let direct = qs_linalg::Lu::new(&a).unwrap().solve(&rhs);
        let out = quasispecies::minres(
            &DenseOp(a),
            &rhs,
            &quasispecies::MinresOptions {
                tol: 1e-12,
                max_iter: 200,
                ..Default::default()
            },
        )
        .unwrap();
        prop_assert!(out.converged);
        prop_assert!(max_diff(&direct, &out.x) < 1e-8);
    }

    /// The resolution pyramid always refines consistently and conserves
    /// mass, for solver output on arbitrary tabulated landscapes.
    #[test]
    fn pyramid_conserves_mass(p in error_rate(), f in vec_in(32, 0.2, 4.0)) {
        let landscape = Tabulated::new(f);
        let qs = quasispecies::solve(p, &landscape, &quasispecies::SolverConfig::default())
            .expect("converged");
        let pyr = quasispecies::Pyramid::new(&qs);
        for l in 0..pyr.num_levels() {
            let s: f64 = pyr.level(l).iter().sum();
            prop_assert!((s - 1.0).abs() < 1e-11);
        }
    }

    /// The column-blocked batched apply is **bit-identical** to a
    /// column-by-column `apply_in_place` loop for every operator that
    /// specialises `apply_batch`, at arbitrary ν and column counts — the
    /// batching contract of the fused-kernel layout rewrite.
    #[test]
    fn apply_batch_matches_columnwise_exactly(
        p in error_rate_open(),
        nu in 1u32..=16,
        k_idx in 0usize..4,
        seed in any::<u64>(),
    ) {
        let k = [1usize, 2, 3, 8][k_idx];
        let n = 1usize << nu;
        let slab0 = pseudorandom_slab(n * k, seed);
        let fitness: Vec<f64> = (0..n)
            .map(|i| 0.5 + (i as f64 * 0.37).sin().abs())
            .collect();
        let ops: Vec<Box<dyn LinearOperator>> = vec![
            Box::new(Fmmp::new(nu, p)),
            Box::new(Fmmp::fused(nu, p)),
            Box::new(ParFmmp::fused(nu, p)),
            Box::new(Fwht::new(nu)),
            Box::new(QShiftInvert::new(nu, p, -0.5)),
            Box::new(ShiftedOp::new(Fmmp::fused(nu, p), 0.25)),
            Box::new(WOperator::new(
                Fmmp::fused(nu, p),
                fitness,
                Formulation::Right,
            )),
        ];
        for op in &ops {
            let mut expected = slab0.clone();
            for col in expected.chunks_exact_mut(n) {
                op.apply_in_place(col);
            }
            let mut batched = slab0.clone();
            op.apply_batch(&mut batched);
            for (i, (a, b)) in expected.iter().zip(&batched).enumerate() {
                prop_assert_eq!(
                    a.to_bits(),
                    b.to_bits(),
                    "element {} differs (ν={}, k={})",
                    i,
                    nu,
                    k
                );
            }
        }
    }

    /// Fault budgets are charged once per **column**: a batched apply
    /// through `FaultyOp` is bit-identical to the same columns applied one
    /// at a time, and consumes the same number of strikes — fault
    /// schedules must not depend on whether the caller batches.
    #[test]
    fn faulty_op_batch_charges_budgets_once_per_column(
        p in error_rate(),
        period in 1u64..5,
        seed in any::<u64>(),
    ) {
        use qs_fault::{FaultPlan, FaultyOp};
        let nu = 6u32;
        let n = 64usize;
        let k = 3usize;
        let plan = FaultPlan::perturb_every(period, 0.25);
        let slab0 = pseudorandom_slab(n * k, seed);

        let columnwise = FaultyOp::new(Fmmp::new(nu, p), &plan);
        let mut expected = slab0.clone();
        for col in expected.chunks_exact_mut(n) {
            columnwise.apply_in_place(col);
        }

        let batched = FaultyOp::new(Fmmp::new(nu, p), &plan);
        let mut got = slab0;
        batched.apply_batch(&mut got);

        prop_assert_eq!(columnwise.matvecs(), batched.matvecs());
        prop_assert_eq!(batched.matvecs(), k as u64);
        for (a, b) in expected.iter().zip(&got) {
            prop_assert_eq!(a.to_bits(), b.to_bits());
        }
    }
}

/// Staggered block starts for the mutation-only operator `Q`: its
/// dominant eigenvector is uniform, so column `s` starts at the
/// eigenvector plus a perturbation shrinking by three decades per
/// column — the columns freeze at well-separated iterations, which is
/// exactly the regime adaptive compaction exists for.
fn staggered_starts(n: usize, k: usize, seed: u64) -> Vec<f64> {
    let mut starts = Vec::with_capacity(n * k);
    for s in 0..k {
        let eps = 10f64.powi(-3 * (k - 1 - s) as i32);
        let noise = pseudorandom_slab(n, seed ^ (s as u64).wrapping_mul(0x9E3779B9));
        starts.extend(noise.iter().map(|&z| 1.0 + eps * z));
    }
    starts
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Adaptive block compaction is a pure cost optimisation: for
    /// arbitrary (ν, k, threshold, p), every per-column result of a
    /// compacting run is **bit-identical** to the forced-full-width run,
    /// and the matvec-column accounting closes exactly
    /// (`applied + saved = iterations·k`).
    #[test]
    fn block_compaction_is_bit_identical_for_arbitrary_shapes(
        p in (50u32..=490).prop_map(|i| i as f64 / 1000.0),
        nu in 3u32..=8,
        k_idx in 0usize..4,
        t_idx in 0usize..4,
        seed in any::<u64>(),
    ) {
        use quasispecies::{block_power_iteration, PowerOptions};
        let k = [2usize, 3, 4, 6][k_idx];
        let threshold = [0.25, 0.5, 0.75, 1.0][t_idx];
        let n = 1usize << nu;
        let starts = staggered_starts(n, k, seed);
        let opts = |th: f64| PowerOptions {
            tol: 1e-12,
            max_iter: 5_000,
            compact_threshold: th,
            ..Default::default()
        };
        let op = Fmmp::fused(nu, p);
        let full = block_power_iteration(&op, &starts, &opts(0.0));
        let compacted = block_power_iteration(&op, &starts, &opts(threshold));

        prop_assert_eq!(full.compactions, 0);
        prop_assert_eq!(full.matvec_columns_saved, 0);
        prop_assert_eq!(full.matvec_columns, full.iterations as u64 * k as u64);
        prop_assert_eq!(compacted.iterations, full.iterations);
        prop_assert_eq!(
            compacted.matvec_columns + compacted.matvec_columns_saved,
            compacted.iterations as u64 * k as u64,
            "accounting must close exactly"
        );
        prop_assert_eq!(compacted.best, full.best);
        for (c, (fo, co)) in full.columns.iter().zip(&compacted.columns).enumerate() {
            prop_assert_eq!(fo.lambda.to_bits(), co.lambda.to_bits(), "col {} lambda", c);
            prop_assert_eq!(fo.residual.to_bits(), co.residual.to_bits(), "col {} residual", c);
            prop_assert_eq!(fo.iterations, co.iterations, "col {} iterations", c);
            prop_assert_eq!(fo.converged, co.converged, "col {} converged", c);
            for (i, (a, b)) in fo.vector.iter().zip(&co.vector).enumerate() {
                prop_assert_eq!(a.to_bits(), b.to_bits(), "col {} element {}", c, i);
            }
        }
    }

    /// Edge: every column starts at the exact dominant eigenvector and
    /// freezes on the first step — compaction never fires (the slab is
    /// empty the moment it could) and the run pays exactly one
    /// matvec-column per column.
    #[test]
    fn block_compaction_noop_when_all_columns_converge_at_step_one(
        p in (50u32..=490).prop_map(|i| i as f64 / 1000.0),
        nu in 3u32..=8,
        k in 2usize..=6,
    ) {
        use quasispecies::{block_power_iteration, PowerOptions};
        let n = 1usize << nu;
        let starts = vec![1.0; n * k];
        let opts = PowerOptions {
            tol: 1e-12,
            max_iter: 5_000,
            compact_threshold: 0.75,
            ..Default::default()
        };
        let out = block_power_iteration(&Fmmp::fused(nu, p), &starts, &opts);
        prop_assert_eq!(out.iterations, 1);
        prop_assert_eq!(out.compactions, 0);
        prop_assert_eq!(out.matvec_columns, k as u64);
        prop_assert_eq!(out.matvec_columns_saved, 0);
        for col in &out.columns {
            prop_assert!(col.converged);
            prop_assert_eq!(col.iterations, 1);
        }
    }

    /// Edge: an unreachable tolerance means no column ever freezes early,
    /// so compaction has nothing to do — the run pays the full fixed-width
    /// bill and still matches the threshold-0 run bit for bit.
    #[test]
    fn block_compaction_noop_when_no_column_ever_converges(
        p in (50u32..=490).prop_map(|i| i as f64 / 1000.0),
        nu in 3u32..=7,
        k in 2usize..=4,
        seed in any::<u64>(),
    ) {
        use quasispecies::{block_power_iteration, PowerOptions};
        let n = 1usize << nu;
        // Sign-mixed noise, far from the dominant eigenvector: seven
        // steps cannot reach an exact fixed point (a column *at* the
        // eigenvector can measure a residual of exactly 0.0, which would
        // converge even against an unreachable tolerance).
        let starts = pseudorandom_slab(n * k, seed);
        let max_iter = 7usize;
        let opts = |th: f64| PowerOptions {
            tol: 1e-300,
            max_iter,
            compact_threshold: th,
            ..Default::default()
        };
        let op = Fmmp::fused(nu, p);
        let full = block_power_iteration(&op, &starts, &opts(0.0));
        let compacted = block_power_iteration(&op, &starts, &opts(0.75));
        for out in [&full, &compacted] {
            prop_assert_eq!(out.iterations, max_iter);
            prop_assert_eq!(out.compactions, 0, "no freeze, no compaction");
            prop_assert_eq!(out.matvec_columns, (max_iter * k) as u64);
            prop_assert_eq!(out.matvec_columns_saved, 0);
            for col in &out.columns {
                prop_assert!(!col.converged);
                prop_assert_eq!(col.iterations, max_iter);
            }
        }
        for (fo, co) in full.columns.iter().zip(&compacted.columns) {
            prop_assert_eq!(fo.lambda.to_bits(), co.lambda.to_bits());
            for (a, b) in fo.vector.iter().zip(&co.vector) {
                prop_assert_eq!(a.to_bits(), b.to_bits());
            }
        }
    }
}

/// Deterministic SplitMix64-filled slab in (-2, 2): sign-mixed inputs
/// exercise cancellation paths a positive vector would miss.
fn pseudorandom_slab(len: usize, seed: u64) -> Vec<f64> {
    let mut state = seed;
    (0..len)
        .map(|_| {
            state = state.wrapping_add(0x9E3779B97F4A7C15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
            z ^= z >> 31;
            (z as f64 / u64::MAX as f64) * 4.0 - 2.0
        })
        .collect()
}

/// Error rates strictly inside (0, 1/2) — shift-invert needs `p < 1/2`.
fn error_rate_open() -> impl Strategy<Value = f64> {
    (1u32..=490).prop_map(|i| i as f64 / 1000.0)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Decoding an arbitrarily truncated or bit-flipped checkpoint
    /// snapshot is a typed [`CheckpointError`] — never a panic, never
    /// silently-wrong data. This is the crash model's foundation: a torn
    /// `write(2)` can leave any prefix (or any bit-rot) on disk, and the
    /// loader must classify all of it as damage.
    #[test]
    fn snapshot_decoder_survives_random_truncation_and_bit_flips(
        cut in 0usize..4096,
        flip_at in 0usize..4096,
        flip_bit in 0u8..8,
        seed in any::<u64>(),
    ) {
        use quasispecies::{CheckpointError, Snapshot};
        let snap = Snapshot {
            problem: seed ^ 0xABCD,
            iteration: 17,
            matvecs: 23,
            rung: 0,
            method: "power".into(),
            shift: 0.25,
            tol: 1e-13,
            stall_best: f64::INFINITY,
            stall_count: 0,
            residual_history: vec![1.0, 0.1, 0.01],
            iterate: pseudorandom_slab(32, seed),
            block: None,
        };
        let bytes = snap.encode().unwrap();
        // Round-trip sanity: the undamaged frame decodes.
        prop_assert_eq!(Snapshot::decode(&bytes).unwrap().iteration, 17);

        // Truncation to any proper prefix: typed error, never Ok.
        let cut = cut % bytes.len();
        prop_assert!(Snapshot::decode(&bytes[..cut]).is_err());

        // A single flipped bit anywhere in the frame: typed error (the
        // trailing FNV-1a checksum covers every byte before it, and a
        // flip inside the checksum itself mismatches the payload).
        let mut flipped = bytes.clone();
        let at = flip_at % flipped.len();
        flipped[at] ^= 1 << flip_bit;
        let err = Snapshot::decode(&flipped).unwrap_err();
        prop_assert!(!matches!(err, CheckpointError::Io { .. }));
    }
}
