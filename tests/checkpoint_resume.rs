//! The durability contract, end-to-end through the library API:
//!
//! 1. an interrupted power solve, resumed from its checkpoint directory,
//!    is **bit-identical** to the uninterrupted run;
//! 2. interrupted Krylov solves warm-restart from the snapshotted Ritz
//!    iterate and still converge to the same eigenpair;
//! 3. corrupt, truncated or foreign snapshots surface as typed
//!    [`CheckpointError`]s — never a panic, never silent bad data;
//! 4. a `deadline` budget degrades to a flagged best-so-far result
//!    (`Ok`, `stats.deadline_expired`), never an error or a hang, and an
//!    unexpired deadline never perturbs the answer.

use qs_landscape::{Random, SinglePeak};
use quasispecies::{
    load_latest, resume_durable, solve, solve_durable, CheckpointConfig, CheckpointError, Method,
    SolveError, SolverConfig,
};
use std::path::PathBuf;
use std::time::{Duration, Instant};

/// A fresh per-test checkpoint directory under the system temp dir.
fn temp_ckpt_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("qs_ckpt_it_{}_{}", tag, std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn assert_bit_identical(a: &quasispecies::Quasispecies, b: &quasispecies::Quasispecies) {
    assert_eq!(
        a.lambda.to_bits(),
        b.lambda.to_bits(),
        "λ must match in bits"
    );
    assert_eq!(a.concentrations.len(), b.concentrations.len());
    for (i, (x, y)) in a.concentrations.iter().zip(&b.concentrations).enumerate() {
        assert_eq!(x.to_bits(), y.to_bits(), "concentration {i} differs");
    }
}

#[test]
fn interrupted_power_solve_resumes_bit_identically() {
    let landscape = SinglePeak::new(8, 2.0, 1.0);
    let p = 0.01;
    let full = SolverConfig::default();
    let reference = solve(p, &landscape, &full).unwrap();
    assert!(
        reference.stats.iterations > 8,
        "interruption point too late"
    );

    let dir = temp_ckpt_dir("power_bitident");
    let mut ckpt = CheckpointConfig::new(&dir);
    ckpt.every_iterations = 4;

    // "Crash" after 8 iterations: the budget-exhausted run errors, but
    // its snapshots survive on disk exactly as a SIGKILL would leave
    // them (every write is tmp+rename-atomic).
    let interrupted = solve_durable(
        p,
        &landscape,
        &SolverConfig {
            max_iter: 8,
            ..full
        },
        &ckpt,
    );
    assert!(
        matches!(interrupted, Err(SolveError::NotConverged { .. })),
        "8 iterations must not be enough: {interrupted:?}"
    );

    let resumed = resume_durable(p, &landscape, &full, &ckpt).unwrap();
    assert_bit_identical(&reference, &resumed);
    assert_eq!(reference.stats.iterations, resumed.stats.iterations);
    assert!(resumed.stats.converged && !resumed.stats.degraded);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn interrupted_lanczos_warm_restarts_to_the_same_eigenpair() {
    // A Krylov budget too small to converge cold: each resume cycle
    // warm-restarts from the snapshotted Ritz vector (restarted Lanczos)
    // and must eventually reach the same eigenpair the power method finds.
    let landscape = Random::new(8, 5.0, 1.0, 11);
    let p = 0.02;
    let reference = solve(p, &landscape, &SolverConfig::default()).unwrap();

    let config = SolverConfig {
        method: Method::Lanczos { subspace: 6 },
        tol: 1e-12,
        ..Default::default()
    };
    let dir = temp_ckpt_dir("lanczos_warm");
    let mut ckpt = CheckpointConfig::new(&dir);
    ckpt.every_iterations = 1;

    let mut outcome = solve_durable(p, &landscape, &config, &ckpt);
    let mut cycles = 0;
    while outcome.is_err() && cycles < 20 {
        match &outcome {
            Err(SolveError::NotConverged { .. }) => {}
            other => panic!("only honest budget exhaustion expected, got {other:?}"),
        }
        outcome = resume_durable(p, &landscape, &config, &ckpt);
        cycles += 1;
    }
    let qs = outcome.expect("restarted Lanczos never converged");
    assert!(cycles > 0, "subspace 6 should not converge cold");
    assert!(
        (qs.lambda - reference.lambda).abs() < 1e-9,
        "λ {} vs reference {}",
        qs.lambda,
        reference.lambda
    );
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn resume_without_snapshots_is_a_typed_error() {
    let landscape = SinglePeak::new(6, 2.0, 1.0);
    let dir = temp_ckpt_dir("no_snapshots");
    let ckpt = CheckpointConfig::new(&dir);
    match resume_durable(0.01, &landscape, &SolverConfig::default(), &ckpt) {
        Err(SolveError::Checkpoint(CheckpointError::NoCheckpoint { dir: d })) => {
            assert_eq!(d, dir);
        }
        other => panic!("expected NoCheckpoint, got {other:?}"),
    }
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn resume_rejects_snapshots_from_a_different_problem() {
    let landscape = SinglePeak::new(6, 2.0, 1.0);
    let dir = temp_ckpt_dir("problem_mismatch");
    let mut ckpt = CheckpointConfig::new(&dir);
    ckpt.every_iterations = 2;
    solve_durable(0.01, &landscape, &SolverConfig::default(), &ckpt).unwrap();

    // Same directory, different error rate: the problem hash differs.
    match resume_durable(0.02, &landscape, &SolverConfig::default(), &ckpt) {
        Err(SolveError::Checkpoint(CheckpointError::ProblemMismatch { expected, found })) => {
            assert_ne!(expected, found);
        }
        other => panic!("expected ProblemMismatch, got {other:?}"),
    }
    // A different tolerance changes the replayed bit stream too.
    let tighter = SolverConfig {
        tol: 1e-10,
        ..Default::default()
    };
    assert!(matches!(
        resume_durable(0.01, &landscape, &tighter, &ckpt),
        Err(SolveError::Checkpoint(
            CheckpointError::ProblemMismatch { .. }
        ))
    ));
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn corrupt_and_truncated_snapshots_are_typed_errors() {
    let landscape = SinglePeak::new(6, 2.0, 1.0);
    let dir = temp_ckpt_dir("corruption");
    let mut ckpt = CheckpointConfig::new(&dir);
    ckpt.every_iterations = 2;
    solve_durable(0.01, &landscape, &SolverConfig::default(), &ckpt).unwrap();

    let slots: Vec<PathBuf> = std::fs::read_dir(&dir)
        .unwrap()
        .map(|e| e.unwrap().path())
        .collect();
    assert!(
        (1..=2).contains(&slots.len()),
        "double buffering keeps at most two slots, found {slots:?}"
    );
    let pristine: Vec<Vec<u8>> = slots.iter().map(|s| std::fs::read(s).unwrap()).collect();

    // Flip one payload byte in every slot: checksum (or header) rejection.
    for (slot, bytes) in slots.iter().zip(&pristine) {
        let mut bad = bytes.clone();
        let mid = bad.len() / 2;
        bad[mid] ^= 0x40;
        std::fs::write(slot, &bad).unwrap();
    }
    let err = load_latest(&dir, 0).unwrap_err();
    assert!(
        matches!(
            err,
            CheckpointError::ChecksumMismatch
                | CheckpointError::Malformed { .. }
                | CheckpointError::BadMagic
                | CheckpointError::UnsupportedVersion { .. }
        ),
        "unexpected error class: {err:?}"
    );
    assert!(matches!(
        resume_durable(0.01, &landscape, &SolverConfig::default(), &ckpt),
        Err(SolveError::Checkpoint(_))
    ));

    // Truncate every slot to a torn prefix: typed rejection again.
    for (slot, bytes) in slots.iter().zip(&pristine) {
        std::fs::write(slot, &bytes[..bytes.len() / 3]).unwrap();
    }
    assert!(load_latest(&dir, 0).is_err());

    // Near-empty files hit the too-short guard.
    for slot in &slots {
        std::fs::write(slot, [0u8; 3]).unwrap();
    }
    assert!(matches!(
        load_latest(&dir, 0),
        Err(CheckpointError::TooShort { .. })
    ));

    // One good slot among corrupt ones is still a successful load: this
    // is exactly the torn-write/last-good double-buffer story.
    std::fs::write(&slots[0], &pristine[0]).unwrap();
    let problem = quasispecies::Snapshot::decode(&pristine[0])
        .unwrap()
        .problem;
    let snap = load_latest(&dir, problem).unwrap();
    assert!(snap.is_some(), "last-good slot must win over torn slots");
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn expired_deadline_degrades_to_flagged_best_so_far() {
    let landscape = SinglePeak::new(10, 2.0, 1.0);
    let config = SolverConfig {
        tol: 1e-15,
        deadline: Some(Instant::now()),
        ..Default::default()
    };
    let qs = solve(0.01, &landscape, &config).expect("deadline expiry must not be an error");
    assert!(qs.stats.deadline_expired);
    assert!(qs.stats.degraded && !qs.stats.converged);
    assert_eq!(qs.stats.recovered_from.as_deref(), Some("deadline_expired"));
    let sum: f64 = qs.concentrations.iter().sum();
    assert!((sum - 1.0).abs() < 1e-9, "still a valid distribution");
    assert!(qs.concentrations.iter().all(|c| c.is_finite() && *c >= 0.0));
}

#[test]
fn unexpired_deadline_never_perturbs_the_answer() {
    let landscape = SinglePeak::new(8, 2.0, 1.0);
    let plain = solve(0.01, &landscape, &SolverConfig::default()).unwrap();
    let budgeted = solve(
        0.01,
        &landscape,
        &SolverConfig {
            deadline: Some(Instant::now() + Duration::from_secs(3600)),
            ..Default::default()
        },
    )
    .unwrap();
    assert_bit_identical(&plain, &budgeted);
    assert!(!budgeted.stats.deadline_expired);
}
