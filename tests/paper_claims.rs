//! Quantitative claims lifted from the paper's text, verified as tests.
//! Each test cites the claim it checks.

use qs_landscape::{ErrorClass, Landscape, Random};
use qs_matvec::{conservative_shift, Fmmp, LinearOperator, Xmvp};
use quasispecies::{detect_pmax, solve, Engine, ShiftStrategy, SolverConfig};

/// §1.1 / Figure 1: "An ordered stationary distribution results up to
/// p_max ≈ 0.035" for ν = 20, single peak with f₀ = 2.
#[test]
fn error_threshold_at_0_035_for_nu_20() {
    let phi = ErrorClass::single_peak(20, 2.0, 1.0);
    let pmax = detect_pmax(20, phi.phi(), 0.005, 0.1, 1e-3, 40).unwrap();
    assert!((pmax - 0.035).abs() < 0.005, "p_max = {pmax}");
}

/// §1.1: "random replication as exact solution of the ODE system is
/// obtained only for p = 0.5" — at p = 1/2 the stationary distribution is
/// exactly uniform for any landscape.
#[test]
fn p_half_gives_exact_uniformity() {
    let nu = 8u32;
    let landscape = Random::new(nu, 5.0, 1.0, 5);
    let qs = solve(0.5, &landscape, &SolverConfig::default()).unwrap();
    let u = 1.0 / landscape.len() as f64;
    for &c in &qs.concentrations {
        assert!((c - u).abs() < 1e-10);
    }
}

/// §2 (Lemma 1 context): Fmmp costs Θ(N log₂ N) — verified through the
/// operation-count model rather than wall clock (robust in CI).
#[test]
fn fmmp_flops_are_n_log_n() {
    for nu in [10u32, 15, 20] {
        let f = Fmmp::new(nu, 0.01).flops_estimate();
        let n = (1u64 << nu) as f64;
        assert!((f / (n * nu as f64) - 3.0).abs() < 1e-12);
    }
}

/// §2.1: "our new implicit matrix vector product Fmmp with the full
/// information of the matrix W is asymptotically even faster than the
/// approximative matrix vector product Xmvp(d_max) with the coarsest
/// approximation d_max = 1" — Θ(N·log₂N) vs Θ(N·(ν+1)).
#[test]
fn fmmp_cheaper_than_coarsest_xmvp() {
    for nu in [12u32, 18, 24] {
        let fmmp = Fmmp::new(nu, 0.01).flops_estimate();
        let xmvp1 = Xmvp::new(nu.min(20), 0.01, 1).flops_estimate();
        if nu <= 20 {
            // Same ν: Fmmp's 3·N·ν vs Xmvp(1)'s N·(ν+1) — constants put
            // them in the same decade; the paper's point is asymptotic
            // equality of order with *better* accuracy, and in practice
            // Fmmp wins on memory-access pattern. Check the orders match.
            let ratio = fmmp / xmvp1;
            assert!(ratio < 4.0, "ν={nu}: ratio {ratio}");
        }
    }
}

/// §4: Xmvp(5) "has been shown to yield an approximation error around
/// 1e-10" at p = 0.01 — our reproduction: concentrations from
/// Pi(Xmvp(5)) at τ = 1e-10 match exact ones to ~1e-8 or better.
#[test]
fn xmvp5_accuracy_band() {
    let nu = 10u32;
    let landscape = Random::new(nu, 5.0, 1.0, 11);
    let exact = solve(0.01, &landscape, &SolverConfig::default()).unwrap();
    let approx = solve(
        0.01,
        &landscape,
        &SolverConfig {
            engine: Engine::Xmvp { d_max: 5 },
            tol: 1e-10,
            ..Default::default()
        },
    )
    .unwrap();
    let max_err = exact
        .concentrations
        .iter()
        .zip(&approx.concentrations)
        .fold(0.0f64, |m, (&a, &b)| m.max((a - b).abs()));
    assert!(max_err < 1e-7, "max error {max_err}");
    assert!(
        max_err > 1e-14,
        "suspiciously exact — d_max=5 must truncate something"
    );
}

/// §3: the conservative shift µ = (1−2p)^ν·f_min yields "a clearly
/// measurable reduction of the number of iterations of about ten percent
/// and more for the random landscapes we considered".
#[test]
fn shift_saves_about_ten_percent_of_iterations() {
    let nu = 12u32;
    let p = 0.01;
    let mut savings = Vec::new();
    for seed in [1u64, 2, 3] {
        let landscape = Random::new(nu, 5.0, 1.0, seed);
        let base = SolverConfig {
            tol: 1e-12,
            ..Default::default()
        };
        let shifted = solve(p, &landscape, &base).unwrap().stats.iterations;
        let plain = solve(
            p,
            &landscape,
            &SolverConfig {
                shift: ShiftStrategy::None,
                ..base
            },
        )
        .unwrap()
        .stats
        .iterations;
        savings.push((plain as f64 - shifted as f64) / plain as f64);
    }
    let mean = savings.iter().sum::<f64>() / savings.len() as f64;
    assert!(
        mean > 0.05,
        "mean saving {mean:.3} below the paper's ~10% band"
    );
}

/// §3: the derived spectral bounds λ₀ ≤ f_max and λ_min ≥ (1−2p)^ν·f_min
/// hold on random landscapes (checked against the solved λ₀ and the shift).
#[test]
fn spectral_bounds_hold() {
    let nu = 9u32;
    let p = 0.03;
    let landscape = Random::new(nu, 5.0, 1.0, 99);
    let qs = solve(p, &landscape, &SolverConfig::default()).unwrap();
    assert!(qs.lambda <= landscape.f_max() + 1e-12);
    let mu = conservative_shift(nu, p, landscape.f_min());
    assert!(mu > 0.0 && mu < qs.lambda);
}

/// §5.1: for Hamming-distance landscapes "it is sufficient to solve a
/// (ν+1)×(ν+1) eigenproblem to get the exact eigenvector of the full N×N
/// eigenproblem" — exactness, not approximation, against the full solver.
#[test]
fn reduction_is_exact_not_approximate() {
    let nu = 11u32;
    let p = 0.025;
    let phi: Vec<f64> = (0..=nu).map(|k| 1.0 + (-(k as f64) / 3.0).exp()).collect();
    let reduced = quasispecies::solve_error_class(nu, p, &phi);
    let ec = ErrorClass::new(nu, phi);
    let full = solve(
        p,
        &ec,
        &SolverConfig {
            tol: 1e-14,
            ..Default::default()
        },
    )
    .unwrap();
    assert!((reduced.lambda - full.lambda).abs() < 1e-11);
    let gf = full.error_class_concentrations();
    for (a, b) in reduced.classes.iter().zip(&gf) {
        assert!((a - b).abs() < 1e-10);
    }
}

/// §1.1: W satisfies Perron–Frobenius, so "this nonnegativity property is
/// guaranteed" — the solver must never emit negative concentrations.
#[test]
fn concentrations_are_nonnegative_everywhere() {
    for seed in 0..5u64 {
        let landscape = Random::new(8, 5.0, 1.0, seed);
        for &p in &[0.001, 0.05, 0.3, 0.5] {
            let qs = solve(p, &landscape, &SolverConfig::default()).unwrap();
            assert!(qs.concentrations.iter().all(|&c| c >= 0.0));
            let s: f64 = qs.concentrations.iter().sum();
            assert!((s - 1.0).abs() < 1e-12);
        }
    }
}

/// Figure 4's reference curve N²/(N·log₂N): our cost models reproduce the
/// paper's ≈2·10⁷ speedup scale at ν = 25 within an order of magnitude
/// (the paper's number also includes the GPU's parallel advantage).
#[test]
fn speedup_reference_scale_at_nu_25() {
    let r = {
        let n = (1u64 << 25) as f64;
        n * n / (n * 25.0)
    };
    // N/ν at ν = 25 is ≈ 1.34e6; the paper's 2e7 adds the ~15× parallel
    // hardware factor on top. Check the algorithmic factor alone.
    assert!((r - 1.342e6).abs() / r < 1e-3);
}
