//! The robustness contract, swept: under every canned fault plan and a
//! band of seeded random plans, across every eigensolver method, `solve`
//! must finish in exactly one of three ways —
//!
//! 1. `Ok` non-degraded: the recovery ladder healed the breakdown and the
//!    result meets tolerance;
//! 2. `Ok` degraded: a best-so-far iterate, still a valid (finite,
//!    non-negative, Σ = 1) distribution, flagged `stats.degraded`;
//! 3. a typed [`SolveError`].
//!
//! A panic anywhere is a test failure: the whole point of the harness is
//! that injected faults surface as data, not aborts.

use qs_distributed::{DistributedFmmp, RetryPolicy};
use qs_fault::{FaultPlan, FaultyOp, PlanExchangeFault};
use qs_landscape::{Landscape, SinglePeak, Tabulated};
use qs_matvec::{Fmmp, LinearOperator};
use quasispecies::{solve_with_q_operator, Method, SolveError, SolverConfig};

const NU: u32 = 6;
const P: f64 = 0.01;

/// Build the faulted `Q` operator a plan asks for: matvec rules wrap the
/// serial engine in a [`FaultyOp`]; exchange rules run the simulated
/// distributed engine with the plan as its fault hook.
fn faulted_q(plan: &FaultPlan) -> Box<dyn LinearOperator> {
    if plan.exchange.is_empty() {
        Box::new(FaultyOp::new(Fmmp::new(NU, P), plan))
    } else {
        Box::new(DistributedFmmp::with_faults(
            NU,
            P,
            4,
            Box::new(PlanExchangeFault::new(plan)),
            RetryPolicy::default(),
        ))
    }
}

fn methods() -> [Method; 3] {
    [
        Method::Power,
        Method::Lanczos { subspace: 24 },
        Method::Rqi { warmup: 5 },
    ]
}

/// The single outcome check every sweep case funnels through.
fn assert_contract(label: &str, outcome: Result<quasispecies::Quasispecies, SolveError>) {
    match outcome {
        Ok(qs) => {
            let sum: f64 = qs.concentrations.iter().sum();
            assert!(
                qs.concentrations.iter().all(|c| c.is_finite() && *c >= 0.0),
                "{label}: concentrations must be finite and non-negative"
            );
            assert!(
                (sum - 1.0).abs() < 1e-9,
                "{label}: concentrations must sum to 1, got {sum}"
            );
            assert!(qs.lambda.is_finite(), "{label}: λ must be finite");
            if !qs.stats.degraded {
                assert!(
                    qs.stats.converged,
                    "{label}: a non-degraded Ok must be converged"
                );
            }
        }
        // Typed failures are acceptable outcomes; the match is exhaustive
        // so a new variant forces this test to take a position on it.
        Err(SolveError::NotConverged { .. })
        | Err(SolveError::NumericalBreakdown { .. })
        | Err(SolveError::InvalidConfig { .. })
        | Err(SolveError::DimensionMismatch { .. }) => {}
        // Fault plans here never configure checkpointing, so checkpoint
        // I/O or decode damage would mean the solver invented a snapshot.
        Err(e @ SolveError::Checkpoint(_)) => {
            panic!("checkpoint error without checkpointing configured: {e}")
        }
    }
}

#[test]
fn every_canned_plan_upholds_the_contract_across_methods() {
    let landscape = SinglePeak::new(NU, 2.0, 1.0);
    for (name, plan) in FaultPlan::canned() {
        for method in methods() {
            let config = SolverConfig {
                method,
                // Keep persistently-faulted runs fast; budget exhaustion
                // is itself a legal (typed) outcome.
                max_iter: 20_000,
                ..Default::default()
            };
            let label = format!("{name}/{method:?}");
            assert_contract(
                &label,
                solve_with_q_operator(faulted_q(&plan), &landscape, &config),
            );
        }
    }
}

#[test]
fn seeded_random_plans_uphold_the_contract() {
    let landscape = SinglePeak::new(NU, 2.0, 1.0);
    for seed in 0..12u64 {
        let plan = FaultPlan::seeded(seed);
        let config = SolverConfig {
            max_iter: 20_000,
            ..Default::default()
        };
        assert_contract(
            &format!("seeded({seed})"),
            solve_with_q_operator(faulted_q(&plan), &landscape, &config),
        );
    }
}

#[test]
fn recovery_off_surfaces_the_breakdown_instead() {
    let landscape = SinglePeak::new(NU, 2.0, 1.0);
    let config = SolverConfig {
        recover: false,
        ..Default::default()
    };
    let out = solve_with_q_operator(faulted_q(&FaultPlan::permanent_nan(0)), &landscape, &config);
    assert!(
        matches!(
            out,
            Err(SolveError::NumericalBreakdown {
                kind: "non_finite_iterate",
                ..
            })
        ),
        "got {out:?}"
    );
}

#[test]
fn flat_landscape_lanczos_breakdown_is_typed_or_healed() {
    // f ≡ const makes W = c·Q, whose dominant eigenvector is the paper
    // start itself: the Krylov subspace collapses after one vector. The
    // breakdown guardrail must turn that into a typed error or a valid
    // (possibly recovered) result — never a panic.
    let landscape = Tabulated::new(vec![1.0; 1 << NU]);
    for subspace in [2usize, 24] {
        let config = SolverConfig {
            method: Method::Lanczos { subspace },
            ..Default::default()
        };
        let out = solve_with_q_operator(Box::new(Fmmp::new(NU, P)), &landscape, &config);
        assert_contract(&format!("flat/lanczos({subspace})"), out);
    }
}

#[test]
fn transient_faults_heal_back_to_the_reference_answer() {
    // A single soft error must not change the converged answer: the
    // recovered solve agrees with the clean solve to solver tolerance.
    let landscape = SinglePeak::new(NU, 2.0, 1.0);
    let config = SolverConfig::default();
    let clean = solve_with_q_operator(Box::new(Fmmp::new(NU, P)), &landscape, &config)
        .expect("clean solve");
    for plan in [FaultPlan::transient_nan(3), FaultPlan::transient_inf(2)] {
        let healed =
            solve_with_q_operator(faulted_q(&plan), &landscape, &config).expect("healed solve");
        assert!(healed.stats.converged && !healed.stats.degraded);
        assert_eq!(
            healed.stats.recovered_from.as_deref(),
            Some("non_finite_iterate")
        );
        assert!(
            (healed.lambda - clean.lambda).abs() < 1e-10,
            "λ {} vs clean {}",
            healed.lambda,
            clean.lambda
        );
        for (a, b) in healed.concentrations.iter().zip(&clean.concentrations) {
            assert!((a - b).abs() < 1e-9);
        }
    }
}

#[test]
fn example_plan_files_parse_and_run() {
    // The shipped example plans stay loadable and honour the contract.
    let dir = concat!(env!("CARGO_MANIFEST_DIR"), "/examples/fault_plans");
    let landscape = SinglePeak::new(NU, 2.0, 1.0);
    let mut seen = 0;
    for entry in std::fs::read_dir(dir).expect("examples/fault_plans exists") {
        let path = entry.expect("dir entry").path();
        if path.extension().and_then(|e| e.to_str()) != Some("json") {
            continue;
        }
        seen += 1;
        let text = std::fs::read_to_string(&path).expect("readable plan");
        let plan =
            FaultPlan::from_json(&text).unwrap_or_else(|e| panic!("{}: {e}", path.display()));
        let config = SolverConfig {
            max_iter: 20_000,
            ..Default::default()
        };
        assert_contract(
            &format!("{}", path.display()),
            solve_with_q_operator(faulted_q(&plan), &landscape, &config),
        );
    }
    assert!(
        seen >= 2,
        "expected at least two example plans, found {seen}"
    );
}

#[test]
fn dimension_checks_still_fire_through_the_wrapper() {
    // The wrapper must not mask the solver's own input validation.
    let landscape = SinglePeak::new(NU + 1, 2.0, 1.0);
    let out = solve_with_q_operator(
        faulted_q(&FaultPlan::transient_nan(0)),
        &landscape,
        &SolverConfig::default(),
    );
    assert!(matches!(out, Err(SolveError::DimensionMismatch { .. })));
    let _ = landscape.len();
}
