//! Telemetry smoke test for the zero-allocation solve hot path.
//!
//! Every `solve_probed` run must end its event stream with a
//! `SolveAllocation` bookkeeping event; for the Fmmp engine family under
//! the default power method, the reported pool-miss byte count must be
//! **zero** — the warmed `Workspace` covers the whole iteration working
//! set (iterate, image, residual), so a non-zero value means a fresh
//! allocation crept back onto the per-solve critical path.

use qs_landscape::{Random, SinglePeak};
use quasispecies::{solve_probed, Engine, RecordingProbe, SolverConfig, SolverEvent};

fn alloc_events(rec: &RecordingProbe) -> Vec<u64> {
    rec.events()
        .iter()
        .filter_map(|e| match e {
            SolverEvent::SolveAllocation { bytes } => Some(*bytes),
            _ => None,
        })
        .collect()
}

#[test]
fn fmmp_engines_solve_without_allocating_past_warmup() {
    let landscape = SinglePeak::new(10, 2.0, 1.0);
    for engine in [
        Engine::Fmmp,
        Engine::FmmpFused,
        Engine::FmmpParallel,
        Engine::FmmpParallelFused,
    ] {
        let cfg = SolverConfig {
            engine,
            ..Default::default()
        };
        let mut rec = RecordingProbe::new();
        let qs = solve_probed(0.01, &landscape, &cfg, &mut rec).unwrap();
        assert!(qs.stats.converged);
        let allocs = alloc_events(&rec);
        assert_eq!(
            allocs.len(),
            1,
            "{:?}: expected exactly one solve_allocation event",
            engine
        );
        assert_eq!(
            allocs[0], 0,
            "{:?}: solve allocated {} bytes past warm-up",
            engine, allocs[0]
        );
    }
}

#[test]
fn warmed_block_sweep_runs_allocation_free_with_and_without_compaction() {
    // The compacting block path draws every buffer — the column slab,
    // its image, the owner/position/status/iteration index maps and the
    // per-column λ/residual records — from the workspace pool, so a
    // warmed repeat sweep must never miss the pool, whichever way the
    // compaction knob is set.
    use quasispecies::{LandscapeSpec, Method, Scheduling, SolveRequest, Workspace};

    for compact in [true, false] {
        let request = SolveRequest {
            landscape: LandscapeSpec::SinglePeak {
                nu: 9,
                f0: 4.0,
                f_rest: 1.0,
            },
            ps: (0..6).map(|i| 0.005 + 0.005 * i as f64).collect(),
            method: Method::Power,
            tol: 1e-11,
            max_iter: 200_000,
            scheduling: Scheduling {
                parallel: false,
                warm_start: true,
                compact,
            },
        };
        let mut ws = Workspace::new();
        let first = request.run_in(&mut ws).unwrap();
        first.recycle(&mut ws);
        ws.mark();
        let second = request.run_in(&mut ws).unwrap();
        assert_eq!(
            ws.bytes_since_mark(),
            0,
            "compact={compact}: warmed block sweep missed the pool"
        );
        assert!(second.points.iter().all(|p| p.solution.stats.converged));
        if compact {
            assert!(
                second.block.matvec_columns_saved > 0,
                "the zero-alloc gate must cover a run where compaction engaged"
            );
        }
        second.recycle(&mut ws);
    }
}

#[test]
fn allocation_event_rides_after_the_terminal_event() {
    let landscape = Random::new(8, 5.0, 1.0, 11);
    let mut rec = RecordingProbe::new();
    let qs = solve_probed(0.02, &landscape, &SolverConfig::default(), &mut rec).unwrap();
    assert!(qs.stats.converged);
    // The terminal marker is still discoverable behind the bookkeeping.
    assert!(matches!(
        rec.terminal(),
        Some(SolverEvent::Converged { .. })
    ));
    assert!(matches!(
        rec.events().last(),
        Some(SolverEvent::SolveAllocation { .. })
    ));
}
