//! Workspace umbrella crate: re-exports every public crate of the
//! quasispecies solver workspace so the root-level integration tests and
//! examples can exercise the full stack through one dependency.
//!
//! Library users should depend on the individual crates
//! ([`quasispecies`], [`qs_matvec`], …) directly; this crate only exists
//! to anchor `tests/` and `examples/` at the workspace root.

pub use qs_bitseq;
pub use qs_distributed;
pub use qs_landscape;
pub use qs_linalg;
pub use qs_matvec;
pub use qs_mutation;
pub use qs_ode;
pub use qs_stochastic;
pub use qs_telemetry;
pub use quasispecies;
