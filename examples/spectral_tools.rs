//! The spectral toolbox beyond plain power iteration.
//!
//! Demonstrates the pieces of paper Section 3 that go past `Pi(Fmmp)`:
//!
//! * the conservative shift `µ = (1−2p)^ν·f_min` and its measured
//!   iteration saving,
//! * the spectral gap `λ₁/λ₀` (the convergence rate itself), estimated by
//!   deflated power iteration, with the predicted-vs-actual iteration
//!   count,
//! * the FWHT-based shift-and-invert product `(Q−µI)^{-1}` and inverse
//!   iteration for an interior eigenvector of `Q`,
//! * Rayleigh-quotient iteration with MINRES inner solves on the full
//!   `W` — the paper's sketched future-work method, converging cubically.
//!
//! Run with: `cargo run --release --example spectral_tools`

use qs_landscape::{Landscape, Random};
use qs_matvec::{conservative_shift, Fmmp, Formulation, LinearOperator, QShiftInvert, WOperator};
use quasispecies::{
    power_iteration, rayleigh_quotient_iteration, solve, spectral_gap, PowerOptions, RqiOptions,
    ShiftStrategy, SolverConfig, SpectralGapOptions,
};

fn main() {
    let nu = 12u32;
    let p = 0.01;
    let landscape = Random::new(nu, 5.0, 1.0, 321);

    // 1. Shifted vs plain power iteration.
    let shifted = solve(p, &landscape, &SolverConfig::default()).unwrap();
    let plain = solve(
        p,
        &landscape,
        &SolverConfig {
            shift: ShiftStrategy::None,
            ..Default::default()
        },
    )
    .unwrap();
    let mu = conservative_shift(nu, p, landscape.f_min());
    println!("ν = {nu}, p = {p}, random landscape:");
    println!("  conservative shift µ = (1−2p)^ν·f_min = {mu:.6}");
    println!(
        "  Pi iterations: {} plain → {} shifted ({:.0}% saved; paper: ~10% and more)",
        plain.stats.iterations,
        shifted.stats.iterations,
        100.0 * (plain.stats.iterations - shifted.stats.iterations) as f64
            / plain.stats.iterations as f64
    );

    // 2. Spectral gap and predicted iteration count.
    let w_sym = WOperator::from_landscape(Fmmp::new(nu, p), &landscape, Formulation::Symmetric);
    let start: Vec<f64> = landscape.materialize().iter().map(|f| f.sqrt()).collect();
    let gap = spectral_gap(&w_sym, &start, &SpectralGapOptions::default());
    println!(
        "\n  spectrum: λ₀ = {:.6}, λ₁ = {:.6}, ratio λ₁/λ₀ = {:.4}",
        gap.lambda0, gap.lambda1, gap.ratio
    );
    println!(
        "  predicted Pi iterations to 1e-12: {} plain, {} shifted (actual: {} / {})",
        gap.predicted_iterations(1e-12, 0.0),
        gap.predicted_iterations(1e-12, mu),
        plain.stats.iterations,
        shifted.stats.iterations
    );

    // 3. Interior eigenvector of Q via the FWHT shift-invert product.
    //    Target the eigenvalue (1−2p)^3 of Q (multiplicity C(ν,3)).
    let target = (1.0 - 2.0 * p).powi(3);
    let op = QShiftInvert::new(nu, p, target * 0.999_9);
    let mut v: Vec<f64> = (0..1usize << nu)
        .map(|i| ((i % 17) as f64 - 8.0) / 8.0)
        .collect();
    for _ in 0..30 {
        op.apply_in_place(&mut v);
        let norm = qs_linalg::norm_l2(&v);
        for x in &mut v {
            *x /= norm;
        }
    }
    // Rayleigh quotient under Q confirms the targeted interior eigenvalue.
    let mut qv = v.clone();
    qs_matvec::fmmp::fmmp_in_place(&mut qv, p);
    let rho = qs_linalg::dot(&v, &qv);
    println!("\n  inverse iteration on (Q−µI)^(-1) targeted (1−2p)³ = {target:.8}: ρ = {rho:.8}");

    // 4. RQI on the full W with MINRES inner solves.
    let rqi = rayleigh_quotient_iteration(&w_sym, &start, &RqiOptions::default())
        .expect("default RQI options are valid");
    let pi_ref = power_iteration(
        &w_sym,
        &start,
        &PowerOptions {
            tol: 1e-12,
            ..Default::default()
        },
    );
    println!(
        "\n  RQI (the paper's sketched shift-and-invert method): λ₀ = {:.10}",
        rqi.lambda
    );
    println!(
        "  {} outer steps, {} total matvecs — vs {} power-iteration matvecs (same answer to {:.1e})",
        rqi.outer_iterations,
        rqi.matvecs,
        pi_ref.matvecs,
        (rqi.lambda - pi_ref.lambda).abs()
    );
}
