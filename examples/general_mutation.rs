//! Beyond the uniform error rate (paper Section 2.2): position-dependent,
//! asymmetric, and group-correlated mutation processes — and the 4-letter
//! RNA alphabet — all through the same fast Kronecker-chain machinery.
//!
//! The classical quasispecies model assumes one error rate `p` for every
//! site; the paper's algorithms only need `Q = ⊗ Q_{G_t}` with
//! column-stochastic factors. This example solves three such models:
//!
//! 1. per-site rates with transition/transversion-style asymmetry,
//! 2. a correlated two-site group (a 4×4 factor where double mutations
//!    are likelier than independence allows),
//! 3. a 4-letter (RNA) alphabet with Jukes–Cantor site processes.
//!
//! Run with: `cargo run --release --example general_mutation`

use qs_landscape::{Landscape, Tabulated};
use qs_linalg::DenseMatrix;
use qs_mutation::{Grouped, MutationModel, PerSite, SiteProcess};
use quasispecies::{solve_with_model, SolverConfig};

fn main() {
    let nu = 10u32;
    let n = 1usize << nu;
    // Single-peak fitness for all three binary cases.
    let landscape = Tabulated::from_fn(nu, |i| if i == 0 { 2.0 } else { 1.0 });

    // 1. Per-site asymmetric rates: 5' positions mutate more, and 1→0
    //    ("deamination-like") flips are twice as likely as 0→1.
    let sites: Vec<SiteProcess> = (0..nu)
        .map(|s| {
            let base = 0.002 + 0.002 * s as f64;
            SiteProcess::new(base, 2.0 * base)
        })
        .collect();
    let per_site = PerSite::new(sites);
    let qs = solve_with_model(&per_site, &landscape, &SolverConfig::default()).unwrap();
    println!("1. per-site asymmetric rates (ν = {nu}):");
    println!(
        "   λ₀ = {:.8}, master concentration {:.4}",
        qs.lambda,
        qs.concentration(0)
    );
    println!("   (Q is no longer symmetric — impossible for earlier error-class methods)");

    // 2. One correlated pair + eight independent sites.
    let mut pair = DenseMatrix::zeros(4, 4);
    for j in 0..4usize {
        pair[(j, j)] = 0.985;
        pair[(j ^ 3, j)] = 0.009; // correlated double flip beats singles
        pair[(j ^ 1, j)] = 0.003;
        pair[(j ^ 2, j)] = 0.003;
    }
    let mut factors = vec![pair];
    for _ in 0..8 {
        factors.push(SiteProcess::symmetric(0.004).factor());
    }
    let grouped = Grouped::new(factors);
    assert_eq!(grouped.len(), n);
    let qs = solve_with_model(&grouped, &landscape, &SolverConfig::default()).unwrap();
    println!("\n2. correlated two-site group (paper Eq. 11, g = (2,1,…,1)):");
    println!(
        "   λ₀ = {:.8}, master concentration {:.4}",
        qs.lambda,
        qs.concentration(0)
    );
    let gamma = qs.error_class_concentrations();
    println!(
        "   [Γ₀] {:.3e}, [Γ₁] {:.3e}, [Γ₂] {:.3e}  (double mutants boosted by the correlation)",
        gamma[0], gamma[1], gamma[2]
    );

    // 3. Four-letter RNA alphabet: 6 positions over {A,C,G,U}, dimension
    //    4⁶ = 4096; Jukes–Cantor site processes.
    let e = 0.004;
    let jc = DenseMatrix::from_fn(4, 4, |i, j| if i == j { 1.0 - 3.0 * e } else { e });
    let rna = Grouped::new(vec![jc; 6]);
    let rna_landscape = Tabulated::from_fn(12, |i| if i == 0 { 2.0 } else { 1.0 });
    assert_eq!(rna.len(), rna_landscape.len());
    let qs = solve_with_model(&rna, &rna_landscape, &SolverConfig::default()).unwrap();
    println!("\n3. four-letter RNA alphabet, 6 positions (4⁶ = 4096 sequences):");
    println!(
        "   λ₀ = {:.8}, master (AAAAAA) concentration {:.4}",
        qs.lambda,
        qs.concentration(0)
    );
    println!("   (the Section 5.2 extension: factors of dimension 4 instead of 2)");
}
