//! Chain length ν = 100 — "by far out of reach of any of the currently
//! available computational technology" for the monolithic problem
//! (N = 2¹⁰⁰), solved in seconds through the Kronecker-landscape
//! decomposition of paper Section 5.2.
//!
//! The landscape factorises as F = ⊗ F_{G_t} (here ten 10-bit factors);
//! the mixed product formula decouples W = Q·F into ten independent 2¹⁰
//! subproblems, each solved with Pi(Fmmp). The eigenvector stays implicit
//! (10·1024 stored values instead of 2¹⁰⁰) but supports exact queries:
//! individual concentrations, cumulative error-class concentrations, and
//! per-class min/max — the probes the paper proposes for studying the
//! error threshold at realistic viral chain lengths.
//!
//! Run with: `cargo run --release --example long_chain_kronecker`

use qs_landscape::{Kronecker, Landscape};
use quasispecies::{solve_kronecker, SolverConfig};

fn main() {
    // Each 10-bit factor: a locally fittest "sub-master" plus mild ruggedness.
    let factor: Vec<f64> = (0..1024u64)
        .map(|d| {
            if d == 0 {
                1.8
            } else {
                1.0 + ((d * 2654435761) % 97) as f64 / 1000.0
            }
        })
        .collect();
    let landscape = Kronecker::uniform(10, factor);
    println!(
        "Kronecker landscape: ν = {} (N = 2^{} sequences), {} stored fitness values",
        landscape.nu(),
        landscape.nu(),
        landscape.stored_values()
    );

    let t0 = std::time::Instant::now();
    let qs = solve_kronecker(0.002, &landscape, &SolverConfig::default())
        .expect("factor solves converged");
    println!(
        "solved in {:.3} s: λ₀ = {:.8} (product of {} factor eigenvalues)",
        t0.elapsed().as_secs_f64(),
        qs.lambda,
        qs.factor_lambdas.len()
    );
    println!(
        "implicit eigenvector: {} stored values instead of 2^100",
        qs.stored_values()
    );

    // The global master sequence (all factor digits 0).
    let master = qs.concentration_digits(&[0; 10]);
    println!("\nmaster-sequence concentration: {master:.4e}");

    // Exact cumulative error-class concentrations for all 101 classes.
    let gamma = qs.class_concentrations();
    println!("first error classes (of {}):", gamma.len());
    for (k, g) in gamma.iter().take(8).enumerate() {
        println!("  [Γ_{k:<3}] = {g:.4e}");
    }
    let peak = gamma
        .iter()
        .enumerate()
        .max_by(|a, b| a.1.total_cmp(b.1))
        .unwrap();
    println!("most populated class: Γ_{} with {:.4}", peak.0, peak.1);

    // Per-class concentration ranges: the paper's cheap error-threshold probe.
    let mm = qs.class_min_max();
    println!("\nper-class concentration ranges (ordered phase ⇒ wide spread):");
    for k in [0usize, 1, 5, 50, 100] {
        let (lo, hi) = mm[k];
        println!(
            "  Γ_{k:<3}: min {lo:.3e}  max {hi:.3e}  (ratio {:.2e})",
            hi / lo.max(1e-300)
        );
    }
    let total: f64 = gamma.iter().sum();
    println!("\nΣ[Γ_k] = {total:.12} (must be 1)");
}
