//! The error-threshold phenomenon (paper Figure 1), as an ASCII plot.
//!
//! Sweeps the error rate `p` for ν = 20 on the single-peak landscape and
//! on the linear landscape through the *exact* (ν+1)×(ν+1) reduction of
//! paper Section 5.1, then locates `p_max` by bisection. The single peak
//! shows the sudden collapse into random replication at `p_max ≈ 0.035`;
//! the linear landscape melts smoothly.
//!
//! Run with: `cargo run --release --example error_threshold`

use qs_landscape::ErrorClass;
use quasispecies::{detect_pmax, scan_error_classes, ThresholdScan};

fn ascii_panel(title: &str, scan: &ThresholdScan) {
    println!("\n{title}");
    println!("  [Γ₀] (master class concentration) vs p:");
    let width = 64usize;
    for (i, &p) in scan.ps.iter().enumerate() {
        let g0 = scan.classes[i][0];
        let bar = (g0 * width as f64).round() as usize;
        println!(
            "  p={p:>6.4} |{}{}| {g0:.4e}",
            "█".repeat(bar),
            " ".repeat(width - bar)
        );
    }
}

fn main() {
    let nu = 20u32;
    let ps: Vec<f64> = (1..=30).map(|i| i as f64 * 0.003).collect();

    let single_peak = ErrorClass::single_peak(nu, 2.0, 1.0);
    let linear = ErrorClass::linear(nu, 2.0, 1.0);

    let sp_scan = scan_error_classes(nu, single_peak.phi(), &ps);
    let lin_scan = scan_error_classes(nu, linear.phi(), &ps);

    ascii_panel(
        "single-peak landscape (f₀ = 2, rest 1): sharp error threshold",
        &sp_scan,
    );
    ascii_panel(
        "linear landscape (f₀ = 2 → f_ν = 1): smooth transition",
        &lin_scan,
    );

    match detect_pmax(nu, single_peak.phi(), 0.005, 0.1, 1e-3, 40) {
        Some(pmax) => println!(
            "\ndetected error threshold for the single peak: p_max ≈ {pmax:.4} (paper: ≈ 0.035)"
        ),
        None => println!("\nno threshold detected (unexpected)"),
    }
    println!(
        "RNA viruses replicate near this critical rate; pushing p past p_max with \
         mutagenic drugs collapses the population into random replication — the \
         antiviral strategy motivating the model (paper Section 1.1)."
    );
}
