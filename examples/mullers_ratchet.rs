//! Muller's ratchet in finite quasispecies populations.
//!
//! The paper's finite-population reference (Nowak & Schuster \[11\]) is
//! titled "*Error thresholds of replication in finite populations —
//! mutation frequencies and the onset of Muller's ratchet*". This example
//! shows the ratchet itself: with **one-way** (irreversible, deleterious)
//! mutation and a small population, the class of least-loaded genomes is
//! lost to sampling noise again and again — each loss an irreversible
//! "click" — while a large population under the same parameters keeps its
//! best class indefinitely.
//!
//! Run with: `cargo run --release --example mullers_ratchet`

use qs_landscape::Multiplicative;
use qs_stochastic::{WrightFisher, WrightFisherOptions};

fn main() {
    let nu = 20u32;
    let s = 0.02; // selection coefficient per deleterious mutation
    let p = 0.02; // one-way per-site mutation rate
    let landscape = Multiplicative::uniform_deleterious(nu, 1.0, s);

    println!("Muller's ratchet: ν = {nu}, s = {s}, one-way p = {p}");
    println!("least-loaded class over time (a click = irreversible loss of the best class):\n");

    let mut populations: Vec<(usize, WrightFisher)> = [50usize, 500, 20_000]
        .into_iter()
        .map(|m| {
            (
                m,
                WrightFisher::new(
                    &landscape,
                    WrightFisherOptions {
                        population: m,
                        p,
                        seed: 2026,
                        back_mutation: false,
                    },
                ),
            )
        })
        .collect();

    println!("{:>6} {:>8} {:>8} {:>8}", "gen", "M=50", "M=500", "M=20000");
    for checkpoint in (0..=10).map(|c| c * 60u64) {
        print!("{checkpoint:>6}");
        for (_, wf) in &mut populations {
            while wf.generation() < checkpoint {
                wf.step();
            }
            print!(" {:>8}", wf.least_loaded_class());
        }
        println!();
    }

    // Classical ratchet theory: the best class holds n₀ ≈ M·e^{−U/s}
    // individuals (U = ν·p the genomic rate). Here U/s = 20, so n₀ < 1 for
    // every M shown — the ratchet is inevitable — but the *click rate*
    // falls steeply with M, which is exactly what the table shows.
    let u_rate = nu as f64 * p;
    println!(
        "\nU/s = {:.0}: the best class holds ~M·e^(-U/s) = M·{:.1e} individuals, so every",
        u_rate / s,
        (-u_rate / s).exp()
    );
    println!("population here clicks eventually — but the smallest clicks many times faster.");
    println!("Raise s (or lower p) until M·e^(-U/s) ≫ 1 and large populations hold the line");
    println!("(see qs-stochastic's `large_population_resists_the_ratchet` test).");
    for (m, wf) in &populations {
        let gamma = wf.class_concentrations();
        let peak = gamma
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.total_cmp(b.1))
            .unwrap();
        println!(
            "  M = {m:>6}: best class Γ_{}, modal class Γ_{} ({:.2})",
            wf.least_loaded_class(),
            peak.0,
            peak.1
        );
    }
}
