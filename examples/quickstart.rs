//! Quickstart: compute a quasispecies in a dozen lines.
//!
//! Solves Eigen's model for chain length ν = 12 (N = 4096 sequences) on
//! the classic single-peak landscape and prints what a virologist would
//! look at first: the dominant eigenvalue (mean stationary fitness), the
//! master-sequence concentration, and the error-class profile.
//!
//! Run with: `cargo run --release --example quickstart`

use qs_landscape::SinglePeak;
use quasispecies::{solve, SolverConfig};

fn main() {
    let nu = 12u32;
    let p = 0.01; // per-site error rate
    let landscape = SinglePeak::new(nu, 2.0, 1.0);

    // Default config: Pi(Fmmp) with the paper's conservative shift.
    let qs = solve(p, &landscape, &SolverConfig::default()).expect("solver converged");

    println!("quasispecies for ν = {nu}, p = {p}, single-peak landscape (σ = 2):");
    println!("  λ₀ (mean stationary fitness) = {:.10}", qs.lambda);
    println!(
        "  solved by {}/{} in {} iterations, residual {:.2e}",
        qs.stats.engine, qs.stats.method, qs.stats.iterations, qs.stats.residual
    );
    println!(
        "  master sequence {} holds {:.4}% of the population",
        qs_bitseq::to_bit_string(qs.dominant_sequence(), nu),
        100.0 * qs.concentration(0)
    );
    println!(
        "  population entropy: {:.4} nats (uniform would be {:.4})",
        qs.entropy(),
        nu as f64 * std::f64::consts::LN_2
    );

    println!("\n  cumulative error-class concentrations:");
    for (k, gamma) in qs.error_class_concentrations().iter().enumerate() {
        let bar_len = (gamma * 60.0).round() as usize;
        println!("    Γ_{k:<3} {gamma:>10.3e}  {}", "█".repeat(bar_len));
    }
}
