//! Cross-validation of the spectral solver against Eigen's original ODE
//! dynamics (paper Eq. 1).
//!
//! The quasispecies is *defined* as the stationary distribution of the
//! replicator–mutator ODE system; the eigenvector of `W = Q·F` is a
//! mathematical shortcut to it. This example runs both routes — direct
//! integration of the dynamics (RK4 with the fast Fmmp flow) and the
//! shifted power iteration — and compares the results, then shows the
//! transient the eigenvector cannot give: how long the population takes
//! to reach mutation–selection balance.
//!
//! Run with: `cargo run --release --example ode_crosscheck`

use qs_landscape::{Landscape, Random};
use qs_matvec::Fmmp;
use qs_ode::{integrate_to_steady_state, ReplicatorFlow, SteadyStateOptions};
use quasispecies::{solve, SolverConfig};

fn main() {
    let nu = 10u32;
    let p = 0.01;
    let landscape = Random::new(nu, 5.0, 1.0, 2024);
    let n = landscape.len();

    // Route 1: spectral (the paper's solver).
    let t0 = std::time::Instant::now();
    let spectral = solve(p, &landscape, &SolverConfig::default()).unwrap();
    let t_spectral = t0.elapsed().as_secs_f64();

    // Route 2: integrate the dynamics from the paper's initial condition
    // x₀ = 1 (pure master population).
    let flow = ReplicatorFlow::new(Fmmp::new(nu, p), landscape.materialize());
    let mut x0 = vec![0.0; n];
    x0[0] = 1.0;
    let t0 = std::time::Instant::now();
    let dynamic = integrate_to_steady_state(
        &flow,
        &x0,
        &SteadyStateOptions {
            tol: 1e-12,
            ..Default::default()
        },
    );
    let t_ode = t0.elapsed().as_secs_f64();
    assert!(dynamic.converged, "dynamics failed to settle");

    let max_diff = spectral
        .concentrations
        .iter()
        .zip(&dynamic.x)
        .fold(0.0f64, |m, (&a, &b)| m.max((a - b).abs()));
    println!("ν = {nu}, p = {p}, random landscape (c = 5, σ = 1):");
    println!(
        "  spectral solver : λ₀ = {:.10}  ({t_spectral:.3} s)",
        spectral.lambda
    );
    println!(
        "  ODE steady state: Φ∞ = {:.10}  ({t_ode:.3} s, t = {:.1} model time)",
        dynamic.mean_fitness, dynamic.t
    );
    println!("  max |x_spectral − x_ode| = {max_diff:.2e}");
    println!("  (two independent code paths; agreement validates both)");

    // The transient: track mean fitness on the way to balance.
    println!("\napproach to mutation–selection balance from a pure master population:");
    let mut x = x0;
    let mut t = 0.0;
    for _ in 0..8 {
        x = qs_ode::integrate_rk4(
            &flow,
            &x,
            &qs_ode::Rk4Options {
                step: 0.05,
                t_end: 1.0,
            },
            None,
        );
        let s = x.iter().sum::<f64>();
        for v in &mut x {
            *v /= s;
        }
        t += 1.0;
        println!(
            "  t = {t:>4.1}: Φ = {:.6}, master concentration {:.4}",
            flow.mean_fitness(&x),
            x[0]
        );
    }
    println!("  t → ∞ : Φ = {:.6} (= λ₀)", spectral.lambda);
}
