//! Finite populations vs the deterministic quasispecies.
//!
//! The eigenvector of `W = Q·F` is the *infinite*-population stationary
//! distribution. Real virus populations are finite, and finite-size noise
//! matters most exactly where the paper's application lives: near the
//! error threshold (Nowak & Schuster's finite-population threshold work is
//! the paper's reference \[11\]). This example runs the Wright–Fisher
//! process at increasing population sizes and watches the class profile
//! converge to the spectral solution, then shows the stochastic collapse
//! of the master class above the threshold.
//!
//! Run with: `cargo run --release --example finite_population`

use qs_landscape::SinglePeak;
use qs_stochastic::{WrightFisher, WrightFisherOptions};
use quasispecies::{solve, SolverConfig};

fn main() {
    let nu = 10u32;
    let p = 0.015;
    let landscape = SinglePeak::new(nu, 2.0, 1.0);

    let det = solve(p, &landscape, &SolverConfig::default()).unwrap();
    let det_gamma = det.error_class_concentrations();

    println!("ν = {nu}, p = {p}, single-peak landscape — [Γ₀] and [Γ₁]:");
    println!(
        "  deterministic (M = ∞): [Γ₀] = {:.4}, [Γ₁] = {:.4}",
        det_gamma[0], det_gamma[1]
    );

    for m in [100usize, 1_000, 10_000, 100_000] {
        let mut wf = WrightFisher::new(
            &landscape,
            WrightFisherOptions {
                population: m,
                p,
                seed: 7,
                back_mutation: true,
            },
        );
        let est = wf.stationary_estimate(200, 400);
        let gamma = qs_bitseq::accumulate_classes(&est);
        println!(
            "  Wright–Fisher M = {m:>6}: [Γ₀] = {:.4}, [Γ₁] = {:.4}   (|Δ[Γ₀]| = {:.4})",
            gamma[0],
            gamma[1],
            (gamma[0] - det_gamma[0]).abs()
        );
    }

    // Above the threshold: the master class collapses to sampling noise.
    let p_past = 0.08; // deterministic p_max ≈ 0.046 at ν = 10
    let mut wf = WrightFisher::new(
        &landscape,
        WrightFisherOptions {
            population: 10_000,
            p: p_past,
            seed: 9,
            back_mutation: true,
        },
    );
    wf.run(300);
    let gamma = wf.class_concentrations();
    let uniform_gamma0 = 1.0 / (1u64 << nu) as f64;
    println!(
        "\npast the error threshold (p = {p_past}): [Γ₀] = {:.2e} (uniform level {uniform_gamma0:.2e})",
        gamma[0]
    );
    println!("the quasispecies structure is gone — random replication, as the theory predicts.");
}
