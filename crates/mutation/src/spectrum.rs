//! Closed-form eigendecomposition of the uniform mutation matrix
//! (paper Section 2, after Rumschitzki \[12\]).
//!
//! `Q(ν) = V Λ V` with
//!
//! ```text
//! Λ_{ii} = (1−2p)^{d_H(i,0)},
//! V_{ij} = 2^{−ν/2} · (−1)^{(d_H(i,0)+d_H(j,0)−d_H(i,j))/2}
//!        = 2^{−ν/2} · (−1)^{popcount(i & j)},
//! ```
//!
//! i.e. `V` is the (normalised, symmetric, orthogonal) Hadamard matrix, so
//! multiplication by `V` is a fast Walsh–Hadamard transform. The eigenvalue
//! `(1−2p)^k` has multiplicity `C(ν,k)`; for `p < 1/2` all eigenvalues are
//! positive, hence `Q` is positive definite (and so is every
//! `F^{1/2} Q F^{1/2}`).

use crate::{MutationModel, Uniform};
use qs_linalg::DenseMatrix;

/// The eigenvalue of `Q(ν)` associated with index `i`: `(1−2p)^{w(i)}`.
#[inline]
pub fn eigenvalue(q: &Uniform, i: u64) -> f64 {
    (1.0 - 2.0 * q.p()).powi(i.count_ones() as i32)
}

/// All distinct eigenvalues `(1−2p)^k` for `k = 0..=ν`, paired with their
/// multiplicities `C(ν,k)`.
pub fn distinct_eigenvalues(q: &Uniform) -> Vec<(f64, u128)> {
    (0..=q.nu())
        .map(|k| {
            (
                (1.0 - 2.0 * q.p()).powi(k as i32),
                qs_bitseq::binomial(q.nu(), k),
            )
        })
        .collect()
}

/// Entry `(i, j)` of the eigenvector matrix `V(ν)`.
#[inline]
pub fn eigenvector_entry(nu: u32, i: u64, j: u64) -> f64 {
    // `% 2 == 0` rather than `u32::is_multiple_of`: the latter was only
    // stabilised in Rust 1.87 and the workspace MSRV is 1.85.
    let sign = if (i & j).count_ones() % 2 == 0 {
        1.0
    } else {
        -1.0
    };
    sign * 0.5f64.powi(nu as i32).sqrt()
}

/// Materialise `V(ν)` (for verification on small ν).
pub fn eigenvector_matrix(nu: u32) -> DenseMatrix {
    let n = qs_bitseq::dimension(nu);
    DenseMatrix::from_fn(n, n, |i, j| eigenvector_entry(nu, i as u64, j as u64))
}

/// Materialise `Λ(ν)` as a diagonal vector (for verification on small ν).
pub fn eigenvalue_diagonal(q: &Uniform) -> Vec<f64> {
    (0..q.len() as u64).map(|i| eigenvalue(q, i)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::MutationModel;

    #[test]
    fn v_is_orthogonal_and_symmetric() {
        for nu in 1..=5u32 {
            let v = eigenvector_matrix(nu);
            assert!(v.is_symmetric(0.0));
            let vv = v.matmul(&v);
            assert!(vv.max_abs_diff(&DenseMatrix::identity(1 << nu)) < 1e-13);
        }
    }

    #[test]
    fn decomposition_reconstructs_q() {
        // Q = V Λ V elementwise for small ν.
        for nu in 1..=5u32 {
            let q = Uniform::new(nu, 0.09);
            let v = eigenvector_matrix(nu);
            let lam = DenseMatrix::diagonal(&eigenvalue_diagonal(&q));
            let rebuilt = v.matmul(&lam).matmul(&v);
            assert!(
                rebuilt.max_abs_diff(&q.dense()) < 1e-13,
                "ν={nu}: V Λ V ≠ Q"
            );
        }
    }

    #[test]
    fn sign_formula_matches_paper_expression() {
        // (d_H(i,0)+d_H(j,0)−d_H(i,j))/2 == popcount(i & j).
        for i in 0..64u64 {
            for j in 0..64u64 {
                let paper = (i.count_ones() + j.count_ones() - (i ^ j).count_ones()) / 2;
                assert_eq!(paper, (i & j).count_ones());
            }
        }
    }

    #[test]
    fn multiplicities_sum_to_n() {
        let q = Uniform::new(12, 0.01);
        let total: u128 = distinct_eigenvalues(&q).iter().map(|&(_, m)| m).sum();
        assert_eq!(total, 1 << 12);
    }

    #[test]
    fn eigenvalues_positive_below_half() {
        let q = Uniform::new(10, 0.49);
        for (lam, _) in distinct_eigenvalues(&q) {
            assert!(lam > 0.0, "Q must be positive definite for p < 1/2");
        }
    }

    #[test]
    fn p_half_spectrum_collapses_to_rank_one() {
        // At the p = 1/2 endpoint, Q = V·diag(1, 0, …, 0)·V: the uniform
        // eigenvector survives with eigenvalue 1 and everything else is
        // annihilated. Legal input for Q products and for shift–invert
        // whenever the shift avoids {0, 1}.
        let q = Uniform::new(6, 0.5);
        let eigs = distinct_eigenvalues(&q);
        assert_eq!(eigs[0].0, 1.0);
        for (lam, _) in &eigs[1..] {
            assert_eq!(*lam, 0.0);
        }
    }

    #[test]
    fn lambda_min_matches_class_nu() {
        let q = Uniform::new(8, 0.03);
        let eigs = distinct_eigenvalues(&q);
        let min = eigs.iter().map(|&(l, _)| l).fold(f64::INFINITY, f64::min);
        assert!((min - q.lambda_min()).abs() < 1e-16);
    }

    #[test]
    fn eigenvalue_by_index_uses_weight() {
        let q = Uniform::new(6, 0.05);
        assert_eq!(eigenvalue(&q, 0), 1.0);
        let l1 = 1.0 - 2.0 * 0.05;
        assert!((eigenvalue(&q, 0b000100) - l1).abs() < 1e-16);
        assert!((eigenvalue(&q, 0b101010) - l1.powi(3)).abs() < 1e-16);
        let _ = q.len();
    }
}
