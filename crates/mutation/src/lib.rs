//! Mutation models `Q` for the quasispecies model.
//!
//! The classical model (paper Eq. 2) uses a uniform per-site error rate `p`:
//! `Q_{i,j} = p^{d_H(i,j)} (1−p)^{ν−d_H(i,j)}`. Its Kronecker-product
//! representation (paper Eq. 7)
//!
//! ```text
//! Q(ν) = ⊗_{t=1}^{ν} [[1−p, p], [p, 1−p]]
//! ```
//!
//! is what makes the whole paper work: it yields the `Θ(N log₂ N)` product
//! `Fmmp`, the closed-form eigendecomposition `Q = V Λ V`, and the spectral
//! shift. Section 2.2 generalises to arbitrary column-stochastic factors and
//! to grouped factors `Q = ⊗ Q_{G_t}` with `Q_{G_t} ∈ R^{2^{g_t}×2^{g_t}}`.
//!
//! This crate provides:
//!
//! * [`Uniform`] — the classical model, with closed-form entries, error-class
//!   values `QΓ_k = p^k (1−p)^{ν−k}`, spectrum, and inverse,
//! * [`PerSite`] — one independent (possibly asymmetric) 2×2 process per
//!   site,
//! * [`Grouped`] — arbitrary column-stochastic Kronecker factors of any
//!   dimension (covers the paper's `Q_{G_i}` groups *and* the 4-letter RNA
//!   alphabet extension mentioned in Section 5.2),
//! * [`reduced`] — the reduced `(ν+1)×(ν+1)` mutation matrix `QΓ` of paper
//!   Eq. 14 (with its sign typo corrected), used by the Section 5.1 solver,
//! * [`spectrum`] — the closed-form eigendecomposition of the uniform model.
//!
//! Convention: `Q` is **column stochastic** with `Q[(i, j)] = P(X_j → X_i)`;
//! for the symmetric uniform model this coincides with the row-stochastic
//! reading of Eq. 2.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod grouped;
mod per_site;
pub mod reduced;
pub mod spectrum;
mod uniform;

pub use grouped::Grouped;
pub use per_site::{PerSite, SiteProcess};
pub use uniform::Uniform;

use qs_linalg::DenseMatrix;

/// A mutation model with a Kronecker-factor representation
/// `Q = ⊗_t M_t` (factor `t = 0` addresses the most significant digits).
///
/// All factors must be column stochastic so that the generalised
/// quasispecies model (paper Section 2.2) remains valid; the Kronecker
/// product of column-stochastic matrices is column stochastic.
pub trait MutationModel: Send + Sync {
    /// Chain length `ν` (total bits; `N = 2^ν`). For non-binary alphabets
    /// this is `log₂` of the total dimension and need not be integral in
    /// spirit — the trait instead exposes [`MutationModel::len`] as the
    /// authoritative dimension, and `nu` only for binary-aligned models.
    fn nu(&self) -> u32;

    /// Total dimension `N = Π dim(M_t)`.
    fn len(&self) -> usize;

    /// Mutation models are never 0-dimensional.
    fn is_empty(&self) -> bool {
        false
    }

    /// The Kronecker factor chain, most significant group first. Factors are
    /// small (`2×2` per site, `2^{g_t}` per group), so returning owned
    /// matrices is cheap relative to any use of them.
    fn factors(&self) -> Vec<DenseMatrix>;

    /// Entry `Q[(i, j)] = P(X_j → X_i)`, computed through the factor chain
    /// by mixed-radix digit decomposition. `O(g)` per entry.
    fn entry(&self, i: u64, j: u64) -> f64 {
        let factors = self.factors();
        let mut remaining = self.len() as u64;
        let (mut i, mut j) = (i, j);
        debug_assert!(i < remaining && j < remaining);
        let mut q = 1.0;
        for m in &factors {
            let r = m.rows() as u64;
            remaining /= r;
            let di = (i / remaining) as usize;
            let dj = (j / remaining) as usize;
            i %= remaining;
            j %= remaining;
            q *= m[(di, dj)];
        }
        q
    }

    /// Materialise the dense `N×N` matrix (verification / small problems).
    fn dense(&self) -> DenseMatrix {
        let factors = self.factors();
        let mut acc = DenseMatrix::identity(1);
        for m in &factors {
            acc = acc.kron(m);
        }
        acc
    }

    /// Is the model symmetric (`Q = Qᵀ`)? True iff every factor is
    /// symmetric.
    fn is_symmetric(&self) -> bool {
        self.factors().iter().all(|m| m.is_symmetric(0.0))
    }
}

impl<M: MutationModel + ?Sized> MutationModel for &M {
    fn nu(&self) -> u32 {
        (**self).nu()
    }
    fn len(&self) -> usize {
        (**self).len()
    }
    fn factors(&self) -> Vec<DenseMatrix> {
        (**self).factors()
    }
    fn entry(&self, i: u64, j: u64) -> f64 {
        (**self).entry(i, j)
    }
    fn is_symmetric(&self) -> bool {
        (**self).is_symmetric()
    }
}

/// Check that a matrix is column stochastic to tolerance `tol`:
/// all entries non-negative and every column summing to 1.
pub fn is_column_stochastic(m: &DenseMatrix, tol: f64) -> bool {
    if m.rows() != m.cols() {
        return false;
    }
    let nonneg = (0..m.rows()).all(|i| m.row(i).iter().all(|&v| v >= -tol));
    nonneg && m.column_sums().iter().all(|&s| (s - 1.0).abs() <= tol)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn column_stochastic_check() {
        let q = DenseMatrix::from_vec(2, 2, vec![0.9, 0.1, 0.1, 0.9]);
        assert!(is_column_stochastic(&q, 1e-15));
        let bad = DenseMatrix::from_vec(2, 2, vec![0.9, 0.2, 0.1, 0.9]);
        assert!(!is_column_stochastic(&bad, 1e-15));
        let neg = DenseMatrix::from_vec(2, 2, vec![1.1, 0.1, -0.1, 0.9]);
        assert!(!is_column_stochastic(&neg, 1e-15));
        let rect = DenseMatrix::zeros(2, 3);
        assert!(!is_column_stochastic(&rect, 1.0));
    }

    #[test]
    fn kronecker_of_stochastic_is_stochastic() {
        // The closure property Section 2.2 relies on.
        let a = DenseMatrix::from_vec(2, 2, vec![0.7, 0.2, 0.3, 0.8]);
        let b = DenseMatrix::from_vec(2, 2, vec![0.6, 0.5, 0.4, 0.5]);
        assert!(is_column_stochastic(&a.kron(&b), 1e-14));
    }

    #[test]
    fn trait_entry_matches_dense_through_reference() {
        let u = Uniform::new(3, 0.05);
        let m: &dyn MutationModel = &u;
        let dense = m.dense();
        for i in 0..8 {
            for j in 0..8 {
                assert!((m.entry(i, j) - dense[(i as usize, j as usize)]).abs() < 1e-15);
            }
        }
    }
}
