//! Grouped Kronecker-factor mutation models (paper Eq. 11) and general
//! mixed-radix alphabets.

use crate::{is_column_stochastic, MutationModel};
use qs_linalg::DenseMatrix;

/// A mutation model `Q = ⊗_{t=1}^{g} Q_{G_t}` with arbitrary
/// column-stochastic factors (paper Eq. 11).
///
/// Each factor models a *group* of mutually dependent positions; positions
/// in different groups mutate independently. The paper restricts factors to
/// dimension `2^{g_t}`, but nothing in the algorithms requires that: this
/// type accepts any factor dimensions `r_t ≥ 2`, which directly provides the
/// 4-letter RNA alphabet extension of Section 5.2 (`r_t = 4` per position).
///
/// Factor `t = 0` addresses the most significant digits of the mixed-radix
/// index.
#[derive(Debug, Clone, PartialEq)]
pub struct Grouped {
    factors: Vec<DenseMatrix>,
    len: usize,
}

impl Grouped {
    /// Create from explicit factors.
    ///
    /// # Panics
    ///
    /// Panics if `factors` is empty, any factor is not column stochastic to
    /// `1e-12`, or the total dimension overflows `usize`.
    pub fn new(factors: Vec<DenseMatrix>) -> Self {
        assert!(!factors.is_empty(), "at least one factor required");
        let mut len = 1usize;
        for (t, f) in factors.iter().enumerate() {
            assert!(
                is_column_stochastic(f, 1e-12),
                "factor {t} is not column stochastic"
            );
            assert!(f.rows() >= 2, "factor {t} must have dimension at least 2");
            len = len
                .checked_mul(f.rows())
                .expect("total dimension overflows");
        }
        Grouped { factors, len }
    }

    /// A single-group model wrapping one stochastic matrix (no Kronecker
    /// structure; useful as a dense fallback and in tests).
    pub fn single(q: DenseMatrix) -> Self {
        Self::new(vec![q])
    }

    /// Group dimensions `r_1, …, r_g`.
    pub fn dims(&self) -> Vec<usize> {
        self.factors.iter().map(DenseMatrix::rows).collect()
    }

    /// Is every factor dimension a power of two (i.e. is the model binary-
    /// alphabet aligned)?
    pub fn is_binary_aligned(&self) -> bool {
        self.factors.iter().all(|f| f.rows().is_power_of_two())
    }
}

impl MutationModel for Grouped {
    fn nu(&self) -> u32 {
        assert!(
            self.len.is_power_of_two(),
            "nu is only defined for binary-aligned models; use len()"
        );
        self.len.trailing_zeros()
    }

    fn len(&self) -> usize {
        self.len
    }

    fn factors(&self) -> Vec<DenseMatrix> {
        self.factors.clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Uniform;

    fn stochastic2(a: f64, b: f64) -> DenseMatrix {
        // Columns [1-a, a] and [b, 1-b].
        DenseMatrix::from_vec(2, 2, vec![1.0 - a, b, a, 1.0 - b])
    }

    #[test]
    fn two_site_group_reproduces_uniform_when_factored() {
        // ⊗ of ν identical symmetric 2×2 factors == Uniform.
        let p = 0.08;
        let g = Grouped::new(vec![stochastic2(p, p); 3]);
        let uni = Uniform::new(3, p);
        assert!(g.dense().max_abs_diff(&uni.dense()) < 1e-15);
        assert_eq!(g.nu(), 3);
    }

    #[test]
    fn grouped_4x4_factor_models_dependent_pair() {
        // A 4×4 factor where a double mutation is *more* likely than
        // independent singles would give — impossible in the per-site model.
        let mut q4 = DenseMatrix::zeros(4, 4);
        for j in 0..4 {
            q4[(j, j)] = 0.9;
            q4[(j ^ 3, j)] = 0.08; // correlated double flip
            q4[(j ^ 1, j)] = 0.01;
            q4[(j ^ 2, j)] = 0.01;
        }
        let g = Grouped::new(vec![q4.clone(), q4]);
        assert_eq!(g.len(), 16);
        assert_eq!(g.nu(), 4);
        assert!(crate::is_column_stochastic(&g.dense(), 1e-13));
        // Double flip within group 0 (bits 3,2): from 0b0000 to 0b1100.
        assert!((g.entry(0b1100, 0b0000) - 0.08 * 0.9).abs() < 1e-15);
    }

    #[test]
    fn four_letter_alphabet_factor() {
        // Jukes–Cantor style 4-letter site: stay with prob 1-3e, move to any
        // other letter with prob e. Two sites → dimension 16 (not 2^ν-shaped
        // per site, but mixed-radix 4×4).
        let e = 0.02;
        let jc = DenseMatrix::from_fn(4, 4, |i, j| if i == j { 1.0 - 3.0 * e } else { e });
        let g = Grouped::new(vec![jc.clone(), jc]);
        assert_eq!(g.len(), 16);
        assert!(g.is_binary_aligned());
        // P(AA → CG) = e·e.
        assert!((g.entry(1, 2 * 4 + 3) - e * e).abs() < 1e-16);
    }

    #[test]
    fn mixed_radix_dimensions() {
        let e = 0.1;
        let f3 = DenseMatrix::from_fn(3, 3, |i, j| if i == j { 1.0 - 2.0 * e } else { e });
        let f2 = stochastic2(0.2, 0.3);
        let g = Grouped::new(vec![f3, f2]);
        assert_eq!(g.len(), 6);
        assert!(!g.is_binary_aligned());
        assert_eq!(g.dims(), vec![3, 2]);
        // entry() must agree with dense() in mixed radix too.
        let dense = g.dense();
        for i in 0..6u64 {
            for j in 0..6u64 {
                assert!((g.entry(i, j) - dense[(i as usize, j as usize)]).abs() < 1e-15);
            }
        }
    }

    #[test]
    #[should_panic(expected = "not column stochastic")]
    fn rejects_non_stochastic_factor() {
        let bad = DenseMatrix::from_vec(2, 2, vec![0.9, 0.3, 0.2, 0.7]);
        let _ = Grouped::new(vec![bad]);
    }

    #[test]
    #[should_panic(expected = "only defined for binary-aligned")]
    fn nu_rejects_non_binary_model() {
        let e = 0.1;
        let f3 = DenseMatrix::from_fn(3, 3, |i, j| if i == j { 1.0 - 2.0 * e } else { e });
        let _ = Grouped::new(vec![f3]).nu();
    }
}
