//! The reduced `(ν+1)×(ν+1)` mutation matrix `QΓ` of paper Section 5.1.
//!
//! `QΓ_{d,k}` is the probability that a *fixed* molecule from error class
//! `Γ_d` mutates into *some* molecule of error class `Γ_k`:
//!
//! ```text
//! QΓ_{d,k} = Σ_{j ∈ Γ_k} Q_{r_d, j}      (r_d any representative of Γ_d)
//! ```
//!
//! Paper Eq. 14 evaluates the sum combinatorially. As printed, the equation
//! carries an obvious typo (`(1−p)^{(k+d−2j)−ν}`); the correct exponent is
//! `ν − (k+d−2j)`, which is what this module implements: to move from
//! weight `d` to weight `k`, flip `a` of the `d` one-bits down and
//! `b = k−d+a` of the `ν−d` zero-bits up, giving
//!
//! ```text
//! QΓ_{d,k} = Σ_a C(d, a) · C(ν−d, k−d+a) · p^{a+b} · (1−p)^{ν−(a+b)}.
//! ```
//!
//! The unit tests verify this against brute-force row sums of the full `Q`.

use qs_linalg::DenseMatrix;

/// One entry `QΓ_{d,k}` of the reduced mutation matrix for chain length
/// `nu` and error rate `p`.
///
/// # Panics
///
/// Panics if `d > ν` or `k > ν`.
pub fn reduced_entry(nu: u32, p: f64, d: u32, k: u32) -> f64 {
    assert!(d <= nu && k <= nu, "class indices must not exceed ν");
    let mut total = 0.0f64;
    for a in 0..=d {
        // b one-bits gained among the ν−d zero positions.
        let Some(b) = (k + a).checked_sub(d) else {
            continue;
        };
        if b > nu - d {
            continue;
        }
        let flips = (a + b) as i32;
        total += qs_bitseq::binomial_f64(d, a)
            * qs_bitseq::binomial_f64(nu - d, b)
            * p.powi(flips)
            * (1.0 - p).powi(nu as i32 - flips);
    }
    total
}

/// The full reduced mutation matrix `QΓ ∈ R^{(ν+1)×(ν+1)}` with
/// `QΓ[(d, k)] = QΓ_{d,k}`.
///
/// Every row sums to 1 (a molecule mutates into *some* class with
/// certainty), i.e. `QΓ` is **row** stochastic — unlike the full `Q`, the
/// reduction is not symmetric because target classes have different sizes.
pub fn reduced_matrix(nu: u32, p: f64) -> DenseMatrix {
    let n = nu as usize + 1;
    DenseMatrix::from_fn(n, n, |d, k| reduced_entry(nu, p, d as u32, k as u32))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{MutationModel, Uniform};
    use qs_bitseq::{representative, ErrorClassIter};

    /// Brute force: Σ_{j ∈ Γ_k} Q_{rep(d), j} over the full matrix.
    fn brute_force_entry(nu: u32, p: f64, d: u32, k: u32) -> f64 {
        let q = Uniform::new(nu, p);
        let rep = representative(d);
        ErrorClassIter::new(nu, k).map(|j| q.entry(rep, j)).sum()
    }

    #[test]
    fn matches_brute_force_row_sums() {
        for nu in [3u32, 5, 8] {
            for &p in &[0.01, 0.1, 0.3] {
                for d in 0..=nu {
                    for k in 0..=nu {
                        let fast = reduced_entry(nu, p, d, k);
                        let brute = brute_force_entry(nu, p, d, k);
                        assert!(
                            (fast - brute).abs() < 1e-13,
                            "ν={nu} p={p} d={d} k={k}: {fast} vs {brute}"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn representative_choice_does_not_matter() {
        // QΓ_{d,k} must be the same for every member of Γ_d (the symmetry
        // Lemma 2 rests on).
        let (nu, p, d, k) = (6u32, 0.07, 3u32, 2u32);
        let q = Uniform::new(nu, p);
        let reference = reduced_entry(nu, p, d, k);
        for rep in ErrorClassIter::new(nu, d) {
            let s: f64 = ErrorClassIter::new(nu, k).map(|j| q.entry(rep, j)).sum();
            assert!((s - reference).abs() < 1e-13);
        }
    }

    #[test]
    fn rows_sum_to_one() {
        for nu in [4u32, 10, 20] {
            let m = reduced_matrix(nu, 0.05);
            for d in 0..=nu as usize {
                let s: f64 = m.row(d).iter().sum();
                assert!((s - 1.0).abs() < 1e-12, "row {d} sums to {s}");
            }
        }
    }

    #[test]
    fn diagonal_dominates_for_small_p() {
        let m = reduced_matrix(12, 0.001);
        for d in 0..=12usize {
            for k in 0..=12usize {
                if k != d {
                    assert!(m[(d, d)] > m[(d, k)]);
                }
            }
        }
    }

    #[test]
    fn zero_distance_entry_is_stay_probability() {
        // QΓ_{0,0} = (1-p)^ν: the master replicates error-free.
        let (nu, p) = (9u32, 0.04);
        assert!((reduced_entry(nu, p, 0, 0) - (1.0 - p).powi(nu as i32)).abs() < 1e-15);
        // QΓ_{0,k} = C(ν,k) p^k (1-p)^{ν-k}: binomial mutation from master.
        for k in 0..=nu {
            let expect =
                qs_bitseq::binomial_f64(nu, k) * p.powi(k as i32) * (1.0 - p).powi((nu - k) as i32);
            assert!((reduced_entry(nu, p, 0, k) - expect).abs() < 1e-14);
        }
    }

    #[test]
    fn detailed_balance_with_class_sizes() {
        // Symmetry of the full Q implies C(ν,d)·QΓ_{d,k} = C(ν,k)·QΓ_{k,d}.
        let (nu, p) = (10u32, 0.06);
        for d in 0..=nu {
            for k in 0..=nu {
                let lhs = qs_bitseq::binomial_f64(nu, d) * reduced_entry(nu, p, d, k);
                let rhs = qs_bitseq::binomial_f64(nu, k) * reduced_entry(nu, p, k, d);
                assert!((lhs - rhs).abs() < 1e-12 * lhs.abs().max(1e-30));
            }
        }
    }

    #[test]
    #[should_panic(expected = "must not exceed")]
    fn rejects_out_of_range_class() {
        let _ = reduced_entry(4, 0.1, 5, 0);
    }
}
