//! The classical uniform-error-rate mutation model.

use crate::MutationModel;
use qs_linalg::DenseMatrix;
use serde::{Deserialize, Serialize};

/// The uniform mutation model of paper Eq. 2: every site mutates
/// independently with the same probability `p ∈ (0, 1/2]`, giving
/// `Q_{i,j} = p^{d_H(i,j)} (1−p)^{ν−d_H(i,j)}`.
///
/// `Q` contains only `ν+1` distinct values `QΓ_k = p^k (1−p)^{ν−k}`; its
/// spectrum is `(1−2p)^k` with multiplicity `C(ν,k)` (see
/// [`crate::spectrum`]), so `Q` is symmetric positive definite for
/// `p < 1/2`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Uniform {
    nu: u32,
    p: f64,
}

impl Uniform {
    /// Create the uniform model for chain length `nu` and error rate `p`.
    ///
    /// # Panics
    ///
    /// Panics unless `0 < p ≤ 1/2` (the model's defined domain; the paper's
    /// spectral results additionally need `p < 1/2`, where `Q` is positive
    /// definite).
    pub fn new(nu: u32, p: f64) -> Self {
        let _ = qs_bitseq::dimension(nu);
        assert!(nu >= 1, "chain length must be at least 1");
        assert!(
            p.is_finite() && p > 0.0 && p <= 0.5,
            "error rate must satisfy 0 < p ≤ 1/2"
        );
        Uniform { nu, p }
    }

    /// The per-site error rate `p`.
    #[inline]
    pub fn p(&self) -> f64 {
        self.p
    }

    /// The distinct value `QΓ_k = p^k (1−p)^{ν−k}` shared by all entries
    /// with Hamming distance `k`.
    ///
    /// # Panics
    ///
    /// Panics if `k > ν`.
    pub fn class_value(&self, k: u32) -> f64 {
        assert!(k <= self.nu, "class index exceeds chain length");
        self.p.powi(k as i32) * (1.0 - self.p).powi((self.nu - k) as i32)
    }

    /// The single-site factor `[[1−p, p], [p, 1−p]]`.
    pub fn site_factor(&self) -> DenseMatrix {
        DenseMatrix::from_vec(2, 2, vec![1.0 - self.p, self.p, self.p, 1.0 - self.p])
    }

    /// The single-site factor of the *inverse* `Q(ν)^{-1}` (paper Eq. 12):
    /// `(1−2p)^{-1} · [[1−p, −p], [−p, 1−p]]`.
    ///
    /// # Panics
    ///
    /// Panics at `p = 1/2` where `Q` is singular.
    pub fn inverse_site_factor(&self) -> DenseMatrix {
        assert!(self.p < 0.5, "Q is singular at p = 1/2");
        let s = 1.0 / (1.0 - 2.0 * self.p);
        DenseMatrix::from_vec(
            2,
            2,
            vec![
                s * (1.0 - self.p),
                -s * self.p,
                -s * self.p,
                s * (1.0 - self.p),
            ],
        )
    }

    /// `‖Q^{-1}‖₁ = (1−2p)^{-ν}` — every absolute column sum of the inverse
    /// (paper Section 3), which bounds `λ_min(Q) ≥ (1−2p)^ν`.
    pub fn inverse_norm1(&self) -> f64 {
        (1.0 - 2.0 * self.p).powi(-(self.nu as i32))
    }

    /// The smallest eigenvalue `(1−2p)^ν` of `Q`.
    pub fn lambda_min(&self) -> f64 {
        (1.0 - 2.0 * self.p).powi(self.nu as i32)
    }
}

impl MutationModel for Uniform {
    fn nu(&self) -> u32 {
        self.nu
    }

    fn len(&self) -> usize {
        1usize << self.nu
    }

    fn factors(&self) -> Vec<DenseMatrix> {
        vec![self.site_factor(); self.nu as usize]
    }

    #[inline]
    fn entry(&self, i: u64, j: u64) -> f64 {
        debug_assert!(i < 1 << self.nu && j < 1 << self.nu);
        self.class_value((i ^ j).count_ones())
    }

    fn is_symmetric(&self) -> bool {
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::is_column_stochastic;

    #[test]
    fn entries_match_hamming_formula() {
        let q = Uniform::new(4, 0.1);
        for i in 0..16u64 {
            for j in 0..16u64 {
                let d = (i ^ j).count_ones();
                let expect = 0.1f64.powi(d as i32) * 0.9f64.powi(4 - d as i32);
                assert!((q.entry(i, j) - expect).abs() < 1e-16);
            }
        }
    }

    #[test]
    fn dense_matches_kronecker_recursion() {
        // Verify Eq. 8: Q(ν) = [[(1-p)Q(ν-1), pQ(ν-1)], [pQ(ν-1), (1-p)Q(ν-1)]].
        let p = 0.03;
        for nu in 2..=5u32 {
            let big = Uniform::new(nu, p).dense();
            let small = Uniform::new(nu - 1, p).dense();
            let half = 1usize << (nu - 1);
            for i in 0..half {
                for j in 0..half {
                    let s = small[(i, j)];
                    assert!((big[(i, j)] - (1.0 - p) * s).abs() < 1e-15);
                    assert!((big[(i, j + half)] - p * s).abs() < 1e-15);
                    assert!((big[(i + half, j)] - p * s).abs() < 1e-15);
                    assert!((big[(i + half, j + half)] - (1.0 - p) * s).abs() < 1e-15);
                }
            }
        }
    }

    #[test]
    fn dense_is_column_stochastic_and_symmetric() {
        let q = Uniform::new(5, 0.07).dense();
        assert!(is_column_stochastic(&q, 1e-13));
        assert!(q.is_symmetric(0.0));
    }

    #[test]
    fn class_values_sum_with_multiplicities_to_one() {
        let q = Uniform::new(10, 0.02);
        let total: f64 = (0..=10u32)
            .map(|k| qs_bitseq::binomial(10, k) as f64 * q.class_value(k))
            .sum();
        assert!((total - 1.0).abs() < 1e-13);
    }

    #[test]
    fn inverse_factor_inverts_site_factor() {
        let q = Uniform::new(3, 0.2);
        let prod = q.site_factor().matmul(&q.inverse_site_factor());
        assert!(prod.max_abs_diff(&DenseMatrix::identity(2)) < 1e-14);
    }

    #[test]
    fn inverse_norm_matches_dense_inverse() {
        // ‖Q^{-1}‖₁ = (1-2p)^{-ν}: check against an explicitly inverted Q.
        let q = Uniform::new(4, 0.1);
        let inv = qs_linalg::Lu::new(&q.dense()).unwrap().inverse();
        let max_col_sum = (0..16)
            .map(|j| (0..16).map(|i| inv[(i, j)].abs()).sum::<f64>())
            .fold(f64::NEG_INFINITY, f64::max);
        assert!((max_col_sum - q.inverse_norm1()).abs() < 1e-9);
    }

    #[test]
    fn p_half_is_allowed_but_not_invertible() {
        let q = Uniform::new(2, 0.5);
        assert_eq!(q.class_value(0), 0.25);
        assert_eq!(q.class_value(2), 0.25);
    }

    #[test]
    #[should_panic(expected = "0 < p")]
    fn rejects_zero_p() {
        let _ = Uniform::new(3, 0.0);
    }

    #[test]
    #[should_panic(expected = "singular")]
    fn inverse_rejects_p_half() {
        let _ = Uniform::new(2, 0.5).inverse_site_factor();
    }

    #[test]
    fn serde_round_trip() {
        let q = Uniform::new(20, 0.01);
        let back: Uniform = serde_json::from_str(&serde_json::to_string(&q).unwrap()).unwrap();
        assert_eq!(q, back);
    }
}
