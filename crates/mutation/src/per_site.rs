//! Per-site mutation processes (paper Section 2.2, first generalisation).

use crate::MutationModel;
use qs_linalg::DenseMatrix;
use serde::{Deserialize, Serialize};

/// An independent single-site mutation process with possibly asymmetric flip
/// probabilities: `p01 = P(0 → 1)` and `p10 = P(1 → 0)`.
///
/// Its factor matrix (column stochastic, column `j` = source state) is
///
/// ```text
/// [[1−p01,  p10 ],
///  [ p01 , 1−p10]]
/// ```
///
/// The uniform model's site process is the symmetric case `p01 = p10 = p`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SiteProcess {
    /// Probability of mutating 0 → 1 at this site.
    pub p01: f64,
    /// Probability of mutating 1 → 0 at this site.
    pub p10: f64,
}

impl SiteProcess {
    /// Symmetric process with rate `p`.
    ///
    /// # Panics
    ///
    /// Panics if `p ∉ [0, 1]`.
    pub fn symmetric(p: f64) -> Self {
        Self::new(p, p)
    }

    /// Asymmetric process.
    ///
    /// # Panics
    ///
    /// Panics if either probability lies outside `[0, 1]`.
    pub fn new(p01: f64, p10: f64) -> Self {
        assert!((0.0..=1.0).contains(&p01), "p01 must be a probability");
        assert!((0.0..=1.0).contains(&p10), "p10 must be a probability");
        SiteProcess { p01, p10 }
    }

    /// The 2×2 column-stochastic factor matrix.
    pub fn factor(&self) -> DenseMatrix {
        DenseMatrix::from_vec(
            2,
            2,
            vec![1.0 - self.p01, self.p10, self.p01, 1.0 - self.p10],
        )
    }
}

/// A mutation model composed of `ν` independent per-site processes
/// (paper Section 2.2: "there is actually no need for the single point
/// mutations to have the same properties").
///
/// Site `0` in the vector is the **most significant** bit of the sequence
/// index, consistent with the factor-ordering convention of the workspace.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PerSite {
    sites: Vec<SiteProcess>,
}

impl PerSite {
    /// Create from explicit per-site processes.
    ///
    /// # Panics
    ///
    /// Panics if `sites` is empty or longer than the supported chain length.
    pub fn new(sites: Vec<SiteProcess>) -> Self {
        assert!(!sites.is_empty(), "at least one site required");
        let _ = qs_bitseq::dimension(sites.len() as u32);
        PerSite { sites }
    }

    /// Symmetric per-site rates `p_s`.
    pub fn symmetric(rates: &[f64]) -> Self {
        Self::new(rates.iter().map(|&p| SiteProcess::symmetric(p)).collect())
    }

    /// Borrow the site processes.
    pub fn sites(&self) -> &[SiteProcess] {
        &self.sites
    }
}

impl MutationModel for PerSite {
    fn nu(&self) -> u32 {
        self.sites.len() as u32
    }

    fn len(&self) -> usize {
        1usize << self.sites.len()
    }

    fn factors(&self) -> Vec<DenseMatrix> {
        self.sites.iter().map(SiteProcess::factor).collect()
    }

    #[inline]
    fn entry(&self, i: u64, j: u64) -> f64 {
        let nu = self.sites.len() as u32;
        debug_assert!(i < 1 << nu && j < 1 << nu);
        let mut q = 1.0;
        for (s, proc) in self.sites.iter().enumerate() {
            let shift = nu - 1 - s as u32;
            let bi = (i >> shift & 1) as usize;
            let bj = (j >> shift & 1) as usize;
            q *= match (bi, bj) {
                (0, 0) => 1.0 - proc.p01,
                (1, 0) => proc.p01,
                (0, 1) => proc.p10,
                _ => 1.0 - proc.p10,
            };
        }
        q
    }

    fn is_symmetric(&self) -> bool {
        self.sites.iter().all(|s| s.p01 == s.p10)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{is_column_stochastic, Uniform};

    #[test]
    fn symmetric_per_site_matches_uniform() {
        let p = 0.04;
        let uni = Uniform::new(4, p);
        let per = PerSite::symmetric(&[p; 4]);
        for i in 0..16u64 {
            for j in 0..16u64 {
                assert!((uni.entry(i, j) - per.entry(i, j)).abs() < 1e-16);
            }
        }
        assert!(per.is_symmetric());
    }

    #[test]
    fn entry_matches_dense_for_asymmetric_sites() {
        let per = PerSite::new(vec![
            SiteProcess::new(0.1, 0.3),
            SiteProcess::new(0.02, 0.02),
            SiteProcess::new(0.4, 0.0),
        ]);
        let dense = per.dense();
        for i in 0..8u64 {
            for j in 0..8u64 {
                assert!(
                    (per.entry(i, j) - dense[(i as usize, j as usize)]).abs() < 1e-15,
                    "entry ({i},{j})"
                );
            }
        }
        assert!(!per.is_symmetric());
    }

    #[test]
    fn dense_is_column_stochastic() {
        let per = PerSite::new(vec![
            SiteProcess::new(0.25, 0.1),
            SiteProcess::new(0.0, 0.5),
            SiteProcess::new(0.33, 0.33),
            SiteProcess::new(1.0, 0.0),
        ]);
        assert!(is_column_stochastic(&per.dense(), 1e-13));
    }

    #[test]
    fn site_order_is_msb_first() {
        // Site 0 strongly biased: flipping the MSB must carry its rate.
        let per = PerSite::new(vec![SiteProcess::new(0.5, 0.5), SiteProcess::new(0.0, 0.0)]);
        // From state 00 (j=0) to state 10 (i=2): flip MSB only.
        assert!((per.entry(0b10, 0b00) - 0.5).abs() < 1e-16);
        // From 00 to 01: flip LSB, impossible here.
        assert_eq!(per.entry(0b01, 0b00), 0.0);
    }

    #[test]
    #[should_panic(expected = "at least one site")]
    fn rejects_empty() {
        let _ = PerSite::new(vec![]);
    }

    #[test]
    #[should_panic(expected = "probability")]
    fn rejects_invalid_probability() {
        let _ = SiteProcess::new(1.5, 0.0);
    }

    #[test]
    fn serde_round_trip() {
        let per = PerSite::symmetric(&[0.1, 0.2]);
        let back: PerSite = serde_json::from_str(&serde_json::to_string(&per).unwrap()).unwrap();
        assert_eq!(per, back);
    }
}
