//! End-to-end tests over a live listener: these exercise the acceptance
//! criteria of the serving layer — keep-alive connection reuse and
//! pipelining, coalesced batching with early full-batch dispatch,
//! bit-identical LRU-cached repeats, eigenvector warm starts, zero-alloc
//! steady state, error mapping, and a clean shutdown.

use std::io::{BufRead, BufReader, Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::sync::Arc;
use std::thread;
use std::time::{Duration, Instant};

use qs_server::{Server, ServerConfig};
use qs_telemetry::ServeCounters;

/// A parsed response: status line code, headers (lowercased names), body.
struct Response {
    status: u16,
    headers: Vec<(String, String)>,
    body: Vec<u8>,
}

impl Response {
    fn header(&self, name: &str) -> Option<&str> {
        self.headers
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, v)| v.as_str())
    }

    fn body_str(&self) -> &str {
        std::str::from_utf8(&self.body).expect("response body is UTF-8")
    }
}

fn request(addr: SocketAddr, method: &str, path: &str, body: &[u8]) -> Response {
    let mut stream = TcpStream::connect(addr).expect("connect to test server");
    stream
        .set_read_timeout(Some(Duration::from_secs(150)))
        .unwrap();
    let head = format!(
        "{method} {path} HTTP/1.1\r\nhost: test\r\ncontent-length: {}\r\nconnection: close\r\n\r\n",
        body.len()
    );
    stream.write_all(head.as_bytes()).unwrap();
    stream.write_all(body).unwrap();
    stream.flush().unwrap();
    let mut raw = Vec::new();
    stream.read_to_end(&mut raw).expect("read response");
    let split = raw
        .windows(4)
        .position(|w| w == b"\r\n\r\n")
        .expect("response has a head/body separator");
    let head = std::str::from_utf8(&raw[..split]).expect("head is UTF-8");
    let mut lines = head.split("\r\n");
    let status_line = lines.next().expect("status line");
    let status: u16 = status_line
        .split_whitespace()
        .nth(1)
        .expect("status code")
        .parse()
        .expect("numeric status");
    let headers = lines
        .filter_map(|line| line.split_once(':'))
        .map(|(n, v)| (n.trim().to_ascii_lowercase(), v.trim().to_string()))
        .collect();
    Response {
        status,
        headers,
        body: raw[split + 4..].to_vec(),
    }
}

/// A keep-alive client session: one TCP connection serving many
/// requests, responses framed by `Content-Length` (a `read_to_end`
/// helper would block forever on a connection the server keeps open).
struct Session {
    reader: BufReader<TcpStream>,
}

impl Session {
    fn connect(addr: SocketAddr) -> Session {
        let stream = TcpStream::connect(addr).expect("connect to test server");
        stream
            .set_read_timeout(Some(Duration::from_secs(150)))
            .unwrap();
        Session {
            reader: BufReader::new(stream),
        }
    }

    /// Write one request without reading the response (for pipelining).
    fn write_request(&mut self, method: &str, path: &str, body: &[u8], close: bool) {
        let connection = if close { "close" } else { "keep-alive" };
        let head = format!(
            "{method} {path} HTTP/1.1\r\nhost: test\r\ncontent-length: {}\r\n\
             connection: {connection}\r\n\r\n",
            body.len()
        );
        let stream = self.reader.get_mut();
        stream.write_all(head.as_bytes()).unwrap();
        stream.write_all(body).unwrap();
        stream.flush().unwrap();
    }

    /// Read one Content-Length-framed response.
    fn read_response(&mut self) -> Response {
        let mut status_line = String::new();
        self.reader
            .read_line(&mut status_line)
            .expect("status line");
        let status: u16 = status_line
            .split_whitespace()
            .nth(1)
            .expect("status code")
            .parse()
            .expect("numeric status");
        let mut headers = Vec::new();
        let mut content_length = 0usize;
        loop {
            let mut line = String::new();
            self.reader.read_line(&mut line).expect("header line");
            let line = line.trim_end();
            if line.is_empty() {
                break;
            }
            if let Some((n, v)) = line.split_once(':') {
                let (n, v) = (n.trim().to_ascii_lowercase(), v.trim().to_string());
                if n == "content-length" {
                    content_length = v.parse().expect("content-length value");
                }
                headers.push((n, v));
            }
        }
        let mut body = vec![0u8; content_length];
        self.reader.read_exact(&mut body).expect("response body");
        Response {
            status,
            headers,
            body,
        }
    }

    /// Request/response round trip on the live connection.
    fn request(&mut self, method: &str, path: &str, body: &[u8]) -> Response {
        self.write_request(method, path, body, false);
        self.read_response()
    }
}

/// Start a server with `config`, returning its address, counters, and
/// the join handle of the accept loop.
fn start(config: ServerConfig) -> (SocketAddr, Arc<ServeCounters>, thread::JoinHandle<()>) {
    let server = Server::bind(config).expect("bind test server");
    let addr = server.local_addr();
    let counters = server.counters();
    let handle = thread::spawn(move || server.run());
    (addr, counters, handle)
}

fn shutdown(addr: SocketAddr, handle: thread::JoinHandle<()>) {
    let resp = request(addr, "POST", "/shutdown", b"");
    assert_eq!(resp.status, 200);
    handle.join().expect("accept loop exits cleanly");
}

fn solve_body(p: f64) -> Vec<u8> {
    format!(
        "{{\"landscape\":{{\"kind\":\"single-peak\",\"nu\":6,\"f0\":4.0,\"f_rest\":1.0}},\
         \"p\":{p},\"method\":\"power\",\"tol\":1e-10}}"
    )
    .into_bytes()
}

#[test]
fn concurrent_requests_over_one_landscape_coalesce_into_one_engine_solve() {
    let (addr, counters, handle) = start(ServerConfig {
        workers: 1,
        coalesce_window: Duration::from_millis(200),
        ..Default::default()
    });

    // Eight concurrent requests, same (landscape, nu, method, tol),
    // distinct error rates: the acceptance criterion is ONE batched
    // engine run advancing all eight as columns.
    let ps: Vec<f64> = (1..=8).map(|i| 0.002 * i as f64).collect();
    let joins: Vec<_> = ps
        .iter()
        .map(|&p| thread::spawn(move || request(addr, "POST", "/solve", &solve_body(p))))
        .collect();
    for join in joins {
        let resp = join.join().unwrap();
        assert_eq!(resp.status, 200, "body: {}", resp.body_str());
        assert!(resp.body_str().contains("\"count\":1"));
        assert!(resp.body_str().contains("\"converged\":true"));
    }

    let s = counters.snapshot();
    assert_eq!(
        s.engine_solves, 1,
        "eight concurrent requests must share one engine run, got {s:?}"
    );
    assert!(
        s.max_batch >= 8,
        "the coalesced batch must carry all eight rates, got {s:?}"
    );
    assert_eq!(s.cache_misses, 8);
    assert_eq!(s.cache_hits, 0);

    // The batch counters are also visible on /metrics.
    let metrics = request(addr, "GET", "/metrics", b"");
    assert_eq!(metrics.status, 200);
    let text = metrics.body_str();
    assert!(text.contains("qs_engine_solves_total 1"), "{text}");
    assert!(text.contains("qs_max_batch 8"), "{text}");
    assert!(text.contains("qs_build_info{"), "{text}");
    assert!(text.contains("# trace:"), "{text}");

    shutdown(addr, handle);
}

#[test]
fn repeated_requests_are_served_from_cache_bit_identically() {
    let (addr, counters, handle) = start(ServerConfig {
        workers: 1,
        coalesce_window: Duration::from_millis(1),
        ..Default::default()
    });

    let first = request(addr, "POST", "/solve", &solve_body(0.01));
    assert_eq!(first.status, 200);
    assert_eq!(first.header("x-cache"), None, "first ask computes");

    let second = request(addr, "POST", "/solve", &solve_body(0.01));
    assert_eq!(second.status, 200);
    assert_eq!(
        second.header("x-cache"),
        Some("hit"),
        "repeat must be answered from the cache"
    );
    assert_eq!(
        first.body, second.body,
        "cached repeat must be byte-for-byte identical"
    );

    let s = counters.snapshot();
    assert_eq!(s.engine_solves, 1, "the repeat must not re-run the engine");
    assert_eq!(s.cache_hits, 1);

    shutdown(addr, handle);
}

#[test]
fn steady_state_serving_is_allocation_free() {
    let (addr, counters, handle) = start(ServerConfig {
        workers: 1,
        coalesce_window: Duration::from_millis(1),
        ..Default::default()
    });

    // Warm the single worker's workspace pool with a first solve of this
    // shape, then serve fresh (uncached) points of the same shape.
    let warm = request(addr, "POST", "/solve", &solve_body(0.011));
    assert_eq!(warm.status, 200);
    for i in 0..3 {
        let p = 0.013 + 0.001 * i as f64;
        let resp = request(addr, "POST", "/solve", &solve_body(p));
        assert_eq!(resp.status, 200);
    }

    let s = counters.snapshot();
    assert!(s.engine_solves >= 4, "each distinct point computes: {s:?}");
    assert_eq!(
        s.last_solve_pool_miss_bytes, 0,
        "steady-state solves must draw every buffer from the warmed pool, got {s:?}"
    );

    let metrics = request(addr, "GET", "/metrics", b"");
    assert!(
        metrics
            .body_str()
            .contains("qs_last_solve_pool_miss_bytes 0"),
        "{}",
        metrics.body_str()
    );

    shutdown(addr, handle);
}

#[test]
fn sweep_requests_batch_their_grid_and_mixed_repeats_partially_hit() {
    let (addr, counters, handle) = start(ServerConfig {
        workers: 1,
        coalesce_window: Duration::from_millis(1),
        ..Default::default()
    });

    let body = b"{\"landscape\":{\"kind\":\"single-peak\",\"nu\":5},\
                  \"ps\":[0.004,0.008,0.012],\"tol\":1e-10}";
    let resp = request(addr, "POST", "/solve", body);
    assert_eq!(resp.status, 200, "{}", resp.body_str());
    assert!(resp.body_str().contains("\"count\":3"));
    let s = counters.snapshot();
    assert_eq!(s.engine_solves, 1, "one grid = one batched run: {s:?}");
    assert_eq!(s.max_batch, 3);

    // A sweep overlapping the cached grid recomputes only the new point.
    let body2 = b"{\"landscape\":{\"kind\":\"single-peak\",\"nu\":5},\
                   \"ps\":[0.008,0.016],\"tol\":1e-10}";
    let resp2 = request(addr, "POST", "/solve", body2);
    assert_eq!(resp2.status, 200, "{}", resp2.body_str());
    let s = counters.snapshot();
    assert_eq!(s.cache_hits, 1, "{s:?}");
    assert_eq!(s.engine_solves, 2, "{s:?}");
    assert_eq!(
        s.batched_columns, 4,
        "second run must carry only the uncached rate: {s:?}"
    );

    shutdown(addr, handle);
}

#[test]
fn malformed_and_oversized_requests_map_to_400_with_details() {
    let (addr, counters, handle) = start(ServerConfig {
        workers: 1,
        ..Default::default()
    });

    let resp = request(addr, "POST", "/solve", b"{\"p\":0.01}");
    assert_eq!(resp.status, 400);
    assert!(resp.body_str().contains("landscape"), "{}", resp.body_str());

    let resp = request(
        addr,
        "POST",
        "/solve",
        b"{\"landscape\":{\"kind\":\"single-peak\",\"nu\":5},\"p\":0.7}",
    );
    assert_eq!(resp.status, 400, "p outside (0, 1/2] is rejected");

    let resp = request(
        addr,
        "POST",
        "/solve",
        b"{\"landscape\":{\"kind\":\"single-peak\",\"nu\":30},\"p\":0.01}",
    );
    assert_eq!(resp.status, 400, "nu above the server cap is rejected");
    assert!(resp.body_str().contains("too_large"), "{}", resp.body_str());

    let resp = request(addr, "GET", "/nope", b"");
    assert_eq!(resp.status, 404);

    assert!(counters.snapshot().errors >= 3);
    shutdown(addr, handle);
}

#[test]
fn healthz_answers_and_shutdown_drains_cleanly() {
    let (addr, _counters, handle) = start(ServerConfig {
        workers: 2,
        ..Default::default()
    });
    let resp = request(addr, "GET", "/healthz", b"");
    assert_eq!(resp.status, 200);
    assert_eq!(resp.body_str(), "{\"ok\":true}");
    // shutdown() asserts the accept loop joins, i.e. workers drained.
    shutdown(addr, handle);
}

#[test]
fn one_connection_serves_many_requests_and_answers_pipelined_in_order() {
    let (addr, counters, handle) = start(ServerConfig {
        workers: 1,
        coalesce_window: Duration::from_millis(1),
        ..Default::default()
    });

    // Sequential reuse: three different routes over one connection.
    let mut session = Session::connect(addr);
    let health = session.request("GET", "/healthz", b"");
    assert_eq!(health.status, 200);
    assert_eq!(health.header("connection"), Some("keep-alive"));
    let solved = session.request("POST", "/solve", &solve_body(0.01));
    assert_eq!(solved.status, 200, "{}", solved.body_str());
    let metrics = session.request("GET", "/metrics", b"");
    assert_eq!(metrics.status, 200);

    // Pipelining: write three solve requests back-to-back, then read the
    // three responses; they must arrive complete and in request order.
    let ps = [0.012, 0.014, 0.016];
    for &p in &ps {
        session.write_request("POST", "/solve", &solve_body(p), false);
    }
    for &p in &ps {
        let resp = session.read_response();
        assert_eq!(resp.status, 200, "{}", resp.body_str());
        assert!(
            resp.body_str().contains(&format!("\"p\":{p}")),
            "pipelined responses must keep request order: wanted p={p} in {}",
            resp.body_str()
        );
    }

    // `Connection: close` is honoured: the response says close and the
    // server ends the stream after it.
    session.write_request("GET", "/healthz", b"", true);
    let last = session.read_response();
    assert_eq!(last.header("connection"), Some("close"));
    let mut rest = Vec::new();
    session.reader.read_to_end(&mut rest).expect("stream ends");
    assert!(rest.is_empty(), "no bytes may follow a close response");

    assert_eq!(
        counters.snapshot().requests,
        4,
        "all four solves came over one connection"
    );
    shutdown(addr, handle);
}

#[test]
fn a_full_batch_dispatches_immediately_without_paying_the_coalesce_window() {
    // The window is far longer than the whole test is allowed to take:
    // the only way to pass is the early full-batch dispatch.
    let window = Duration::from_secs(5);
    let (addr, counters, handle) = start(ServerConfig {
        workers: 1,
        coalesce_window: window,
        max_batch: Some(8),
        ..Default::default()
    });

    let started = Instant::now();
    let ps: Vec<f64> = (1..=8).map(|i| 0.002 * i as f64).collect();
    let joins: Vec<_> = ps
        .iter()
        .map(|&p| thread::spawn(move || request(addr, "POST", "/solve", &solve_body(p))))
        .collect();
    for join in joins {
        let resp = join.join().unwrap();
        assert_eq!(resp.status, 200, "{}", resp.body_str());
    }
    let elapsed = started.elapsed();
    assert!(
        elapsed < window,
        "eight instant requests filled the batch and must not wait out \
         the {window:?} window, took {elapsed:?}"
    );

    let s = counters.snapshot();
    assert_eq!(s.engine_solves, 1, "the full batch is still one run: {s:?}");
    assert!(s.max_batch >= 8, "{s:?}");
    shutdown(addr, handle);
}

#[test]
fn result_cache_evicts_by_bytes_and_recency_not_insertion_order() {
    // Size the byte budget off a real response: it holds two encoded
    // fragments comfortably but never three. Warm starts are off so
    // every fragment is cold-shaped (no provenance object skewing the
    // sizes) — this test is about the byte cache alone.
    let probe = {
        let (addr, _counters, handle) = start(ServerConfig {
            workers: 1,
            coalesce_window: Duration::from_millis(1),
            warm_cache_bytes: 0,
            ..Default::default()
        });
        let resp = request(addr, "POST", "/solve", &solve_body(0.01));
        assert_eq!(resp.status, 200);
        shutdown(addr, handle);
        resp.body.len() as u64
    };

    let (addr, counters, handle) = start(ServerConfig {
        workers: 1,
        coalesce_window: Duration::from_millis(1),
        cache_bytes: 2 * probe,
        warm_cache_bytes: 0,
        ..Default::default()
    });
    let a = &solve_body(0.01);
    let b = &solve_body(0.02);
    let c = &solve_body(0.03);
    assert_eq!(request(addr, "POST", "/solve", a).status, 200); // cache: [A]
    assert_eq!(request(addr, "POST", "/solve", b).status, 200); // cache: [A, B]
                                                                // Touch A so B becomes the least recently used entry...
    assert_eq!(
        request(addr, "POST", "/solve", a).header("x-cache"),
        Some("hit")
    );
    // ...and C's insertion evicts B (FIFO would evict A instead).
    assert_eq!(request(addr, "POST", "/solve", c).status, 200);
    assert_eq!(
        request(addr, "POST", "/solve", a).header("x-cache"),
        Some("hit"),
        "recently used entry must survive the eviction"
    );
    let before_b = counters.snapshot().engine_solves;
    assert_eq!(request(addr, "POST", "/solve", b).header("x-cache"), None);
    let s = counters.snapshot();
    assert_eq!(
        s.engine_solves,
        before_b + 1,
        "evicted entry must recompute: {s:?}"
    );
    assert_eq!(s.engine_solves, 4, "A, B, C, then B again: {s:?}");
    assert!(s.cache_bytes > 0 && s.cache_bytes <= 2 * probe, "{s:?}");

    let metrics = request(addr, "GET", "/metrics", b"");
    assert!(
        metrics.body_str().contains("qs_cache_bytes "),
        "{}",
        metrics.body_str()
    );
    shutdown(addr, handle);
}

#[test]
fn nearby_points_warm_start_from_the_eigenvector_cache() {
    let (addr, counters, handle) = start(ServerConfig {
        workers: 1,
        coalesce_window: Duration::from_millis(1),
        ..Default::default()
    });

    // First point computes cold and deposits its eigenvector.
    let first = request(addr, "POST", "/solve", &solve_body(0.01));
    assert_eq!(first.status, 200, "{}", first.body_str());
    assert!(
        !first.body_str().contains("\"warm_start\""),
        "nothing to warm-start from yet: {}",
        first.body_str()
    );

    // A *different* nearby rate misses the byte cache but warm-starts
    // from the cached vector, and says so in its provenance.
    let second = request(addr, "POST", "/solve", &solve_body(0.011));
    assert_eq!(second.status, 200, "{}", second.body_str());
    assert!(
        second
            .body_str()
            .contains("\"warm_start\":{\"source\":\"cache\",\"from_p\":0.01,"),
        "near-miss must be seeded from the cached 0.01 vector: {}",
        second.body_str()
    );
    assert!(second.body_str().contains("\"converged\":true"));

    let s = counters.snapshot();
    assert_eq!(s.engine_solves, 2, "warm start still computes: {s:?}");
    assert_eq!(s.warm_hits, 1, "{s:?}");
    assert!(s.warm_seeded_columns >= 1, "{s:?}");
    assert!(s.warm_cache_bytes > 0, "{s:?}");

    let metrics = request(addr, "GET", "/metrics", b"");
    assert!(
        metrics.body_str().contains("qs_warm_hits_total 1"),
        "{}",
        metrics.body_str()
    );
    shutdown(addr, handle);
}

#[test]
fn warm_start_opt_out_stays_cold_and_skips_the_warm_cache() {
    let (addr, counters, handle) = start(ServerConfig {
        workers: 1,
        coalesce_window: Duration::from_millis(1),
        ..Default::default()
    });

    let cold_body = |p: f64| {
        format!(
            "{{\"landscape\":{{\"kind\":\"single-peak\",\"nu\":6,\"f0\":4.0,\"f_rest\":1.0}},\
             \"p\":{p},\"method\":\"power\",\"tol\":1e-10,\"warm_start\":false}}"
        )
        .into_bytes()
    };
    let first = request(addr, "POST", "/solve", &cold_body(0.01));
    assert_eq!(first.status, 200);
    let second = request(addr, "POST", "/solve", &cold_body(0.011));
    assert_eq!(second.status, 200);
    assert!(
        !second.body_str().contains("\"warm_start\""),
        "opted-out solves must stay cold: {}",
        second.body_str()
    );
    let s = counters.snapshot();
    assert_eq!(s.warm_hits, 0, "{s:?}");
    assert_eq!(s.warm_cache_bytes, 0, "opt-out must not populate: {s:?}");

    // Opting out does not fork the cache key: the same point asked
    // *with* warm starts re-serves the cold result's exact bytes.
    let repeat = request(addr, "POST", "/solve", &solve_body(0.01));
    assert_eq!(repeat.header("x-cache"), Some("hit"));
    assert_eq!(repeat.body, first.body, "one address space, same bytes");
    shutdown(addr, handle);
}

#[test]
fn faulted_solves_ignore_warm_seeds_and_recover_cold() {
    let (addr, counters, handle) = start(ServerConfig {
        workers: 1,
        coalesce_window: Duration::from_millis(1),
        fault_plan: Some(qs_fault::FaultPlan::transient_nan(3)),
        ..Default::default()
    });

    let first = request(addr, "POST", "/solve", &solve_body(0.01));
    assert_eq!(first.status, 200, "{}", first.body_str());
    assert!(first.body_str().contains("\"converged\":true"));

    // A nearby point on a faulted server must take the cold recovery
    // path: no warm provenance, and nothing deposited to warm from.
    let second = request(addr, "POST", "/solve", &solve_body(0.011));
    assert_eq!(second.status, 200, "{}", second.body_str());
    assert!(second.body_str().contains("\"converged\":true"));
    assert!(
        !second.body_str().contains("\"warm_start\""),
        "chaos runs must exercise the cold ladder: {}",
        second.body_str()
    );
    let s = counters.snapshot();
    assert_eq!(s.warm_hits, 0, "{s:?}");
    assert_eq!(s.warm_cache_bytes, 0, "{s:?}");
    shutdown(addr, handle);
}
