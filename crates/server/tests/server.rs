//! End-to-end tests over a live listener: these exercise the acceptance
//! criteria of the serving layer — coalesced batching, bit-identical
//! cached repeats, zero-alloc steady state, error mapping, and a clean
//! shutdown.

use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::sync::Arc;
use std::thread;
use std::time::Duration;

use qs_server::{Server, ServerConfig};
use qs_telemetry::ServeCounters;

/// A parsed response: status line code, headers (lowercased names), body.
struct Response {
    status: u16,
    headers: Vec<(String, String)>,
    body: Vec<u8>,
}

impl Response {
    fn header(&self, name: &str) -> Option<&str> {
        self.headers
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, v)| v.as_str())
    }

    fn body_str(&self) -> &str {
        std::str::from_utf8(&self.body).expect("response body is UTF-8")
    }
}

fn request(addr: SocketAddr, method: &str, path: &str, body: &[u8]) -> Response {
    let mut stream = TcpStream::connect(addr).expect("connect to test server");
    stream
        .set_read_timeout(Some(Duration::from_secs(150)))
        .unwrap();
    let head = format!(
        "{method} {path} HTTP/1.1\r\nhost: test\r\ncontent-length: {}\r\nconnection: close\r\n\r\n",
        body.len()
    );
    stream.write_all(head.as_bytes()).unwrap();
    stream.write_all(body).unwrap();
    stream.flush().unwrap();
    let mut raw = Vec::new();
    stream.read_to_end(&mut raw).expect("read response");
    let split = raw
        .windows(4)
        .position(|w| w == b"\r\n\r\n")
        .expect("response has a head/body separator");
    let head = std::str::from_utf8(&raw[..split]).expect("head is UTF-8");
    let mut lines = head.split("\r\n");
    let status_line = lines.next().expect("status line");
    let status: u16 = status_line
        .split_whitespace()
        .nth(1)
        .expect("status code")
        .parse()
        .expect("numeric status");
    let headers = lines
        .filter_map(|line| line.split_once(':'))
        .map(|(n, v)| (n.trim().to_ascii_lowercase(), v.trim().to_string()))
        .collect();
    Response {
        status,
        headers,
        body: raw[split + 4..].to_vec(),
    }
}

/// Start a server with `config`, returning its address, counters, and
/// the join handle of the accept loop.
fn start(config: ServerConfig) -> (SocketAddr, Arc<ServeCounters>, thread::JoinHandle<()>) {
    let server = Server::bind(config).expect("bind test server");
    let addr = server.local_addr();
    let counters = server.counters();
    let handle = thread::spawn(move || server.run());
    (addr, counters, handle)
}

fn shutdown(addr: SocketAddr, handle: thread::JoinHandle<()>) {
    let resp = request(addr, "POST", "/shutdown", b"");
    assert_eq!(resp.status, 200);
    handle.join().expect("accept loop exits cleanly");
}

fn solve_body(p: f64) -> Vec<u8> {
    format!(
        "{{\"landscape\":{{\"kind\":\"single-peak\",\"nu\":6,\"f0\":4.0,\"f_rest\":1.0}},\
         \"p\":{p},\"method\":\"power\",\"tol\":1e-10}}"
    )
    .into_bytes()
}

#[test]
fn concurrent_requests_over_one_landscape_coalesce_into_one_engine_solve() {
    let (addr, counters, handle) = start(ServerConfig {
        workers: 1,
        coalesce_window: Duration::from_millis(200),
        ..Default::default()
    });

    // Eight concurrent requests, same (landscape, nu, method, tol),
    // distinct error rates: the acceptance criterion is ONE batched
    // engine run advancing all eight as columns.
    let ps: Vec<f64> = (1..=8).map(|i| 0.002 * i as f64).collect();
    let joins: Vec<_> = ps
        .iter()
        .map(|&p| thread::spawn(move || request(addr, "POST", "/solve", &solve_body(p))))
        .collect();
    for join in joins {
        let resp = join.join().unwrap();
        assert_eq!(resp.status, 200, "body: {}", resp.body_str());
        assert!(resp.body_str().contains("\"count\":1"));
        assert!(resp.body_str().contains("\"converged\":true"));
    }

    let s = counters.snapshot();
    assert_eq!(
        s.engine_solves, 1,
        "eight concurrent requests must share one engine run, got {s:?}"
    );
    assert!(
        s.max_batch >= 8,
        "the coalesced batch must carry all eight rates, got {s:?}"
    );
    assert_eq!(s.cache_misses, 8);
    assert_eq!(s.cache_hits, 0);

    // The batch counters are also visible on /metrics.
    let metrics = request(addr, "GET", "/metrics", b"");
    assert_eq!(metrics.status, 200);
    let text = metrics.body_str();
    assert!(text.contains("qs_engine_solves_total 1"), "{text}");
    assert!(text.contains("qs_max_batch 8"), "{text}");
    assert!(text.contains("qs_build_info{"), "{text}");
    assert!(text.contains("# trace:"), "{text}");

    shutdown(addr, handle);
}

#[test]
fn repeated_requests_are_served_from_cache_bit_identically() {
    let (addr, counters, handle) = start(ServerConfig {
        workers: 1,
        coalesce_window: Duration::from_millis(1),
        ..Default::default()
    });

    let first = request(addr, "POST", "/solve", &solve_body(0.01));
    assert_eq!(first.status, 200);
    assert_eq!(first.header("x-cache"), None, "first ask computes");

    let second = request(addr, "POST", "/solve", &solve_body(0.01));
    assert_eq!(second.status, 200);
    assert_eq!(
        second.header("x-cache"),
        Some("hit"),
        "repeat must be answered from the cache"
    );
    assert_eq!(
        first.body, second.body,
        "cached repeat must be byte-for-byte identical"
    );

    let s = counters.snapshot();
    assert_eq!(s.engine_solves, 1, "the repeat must not re-run the engine");
    assert_eq!(s.cache_hits, 1);

    shutdown(addr, handle);
}

#[test]
fn steady_state_serving_is_allocation_free() {
    let (addr, counters, handle) = start(ServerConfig {
        workers: 1,
        coalesce_window: Duration::from_millis(1),
        ..Default::default()
    });

    // Warm the single worker's workspace pool with a first solve of this
    // shape, then serve fresh (uncached) points of the same shape.
    let warm = request(addr, "POST", "/solve", &solve_body(0.011));
    assert_eq!(warm.status, 200);
    for i in 0..3 {
        let p = 0.013 + 0.001 * i as f64;
        let resp = request(addr, "POST", "/solve", &solve_body(p));
        assert_eq!(resp.status, 200);
    }

    let s = counters.snapshot();
    assert!(s.engine_solves >= 4, "each distinct point computes: {s:?}");
    assert_eq!(
        s.last_solve_pool_miss_bytes, 0,
        "steady-state solves must draw every buffer from the warmed pool, got {s:?}"
    );

    let metrics = request(addr, "GET", "/metrics", b"");
    assert!(
        metrics
            .body_str()
            .contains("qs_last_solve_pool_miss_bytes 0"),
        "{}",
        metrics.body_str()
    );

    shutdown(addr, handle);
}

#[test]
fn sweep_requests_batch_their_grid_and_mixed_repeats_partially_hit() {
    let (addr, counters, handle) = start(ServerConfig {
        workers: 1,
        coalesce_window: Duration::from_millis(1),
        ..Default::default()
    });

    let body = b"{\"landscape\":{\"kind\":\"single-peak\",\"nu\":5},\
                  \"ps\":[0.004,0.008,0.012],\"tol\":1e-10}";
    let resp = request(addr, "POST", "/solve", body);
    assert_eq!(resp.status, 200, "{}", resp.body_str());
    assert!(resp.body_str().contains("\"count\":3"));
    let s = counters.snapshot();
    assert_eq!(s.engine_solves, 1, "one grid = one batched run: {s:?}");
    assert_eq!(s.max_batch, 3);

    // A sweep overlapping the cached grid recomputes only the new point.
    let body2 = b"{\"landscape\":{\"kind\":\"single-peak\",\"nu\":5},\
                   \"ps\":[0.008,0.016],\"tol\":1e-10}";
    let resp2 = request(addr, "POST", "/solve", body2);
    assert_eq!(resp2.status, 200, "{}", resp2.body_str());
    let s = counters.snapshot();
    assert_eq!(s.cache_hits, 1, "{s:?}");
    assert_eq!(s.engine_solves, 2, "{s:?}");
    assert_eq!(
        s.batched_columns, 4,
        "second run must carry only the uncached rate: {s:?}"
    );

    shutdown(addr, handle);
}

#[test]
fn malformed_and_oversized_requests_map_to_400_with_details() {
    let (addr, counters, handle) = start(ServerConfig {
        workers: 1,
        ..Default::default()
    });

    let resp = request(addr, "POST", "/solve", b"{\"p\":0.01}");
    assert_eq!(resp.status, 400);
    assert!(resp.body_str().contains("landscape"), "{}", resp.body_str());

    let resp = request(
        addr,
        "POST",
        "/solve",
        b"{\"landscape\":{\"kind\":\"single-peak\",\"nu\":5},\"p\":0.7}",
    );
    assert_eq!(resp.status, 400, "p outside (0, 1/2] is rejected");

    let resp = request(
        addr,
        "POST",
        "/solve",
        b"{\"landscape\":{\"kind\":\"single-peak\",\"nu\":30},\"p\":0.01}",
    );
    assert_eq!(resp.status, 400, "nu above the server cap is rejected");
    assert!(resp.body_str().contains("too_large"), "{}", resp.body_str());

    let resp = request(addr, "GET", "/nope", b"");
    assert_eq!(resp.status, 404);

    assert!(counters.snapshot().errors >= 3);
    shutdown(addr, handle);
}

#[test]
fn healthz_answers_and_shutdown_drains_cleanly() {
    let (addr, _counters, handle) = start(ServerConfig {
        workers: 2,
        ..Default::default()
    });
    let resp = request(addr, "GET", "/healthz", b"");
    assert_eq!(resp.status, 200);
    assert_eq!(resp.body_str(), "{\"ok\":true}");
    // shutdown() asserts the accept loop joins, i.e. workers drained.
    shutdown(addr, handle);
}
