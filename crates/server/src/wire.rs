//! The service's JSON wire format: untrusted-input request parsing and
//! **deterministic** response encoding.
//!
//! Parsing goes through `serde_json::Value` with explicit field lookups
//! so every malformed request becomes a `400` with a message naming the
//! offending field — never a panic and never a partially-defaulted
//! request the client didn't write.
//!
//! Encoding is hand-rolled into fixed field order with Rust's shortest
//! round-trip float form, because the result cache stores *encoded
//! bytes*: a cached point must re-serve the exact bytes it was first
//! answered with, so the encoder may not depend on map iteration order
//! or any other source of nondeterminism.

use std::fmt::Write as _;

use quasispecies::{LandscapeSpec, PointResult, Scheduling, SolveRequest, SolverConfig};
use serde_json::Value;

/// Parse a `POST /solve` body into a [`SolveRequest`].
///
/// Accepted shape (only `landscape` and `p`/`ps` are required):
///
/// ```json
/// {
///   "landscape": {"kind": "single-peak", "nu": 10, "f0": 2.0, "f_rest": 1.0},
///   "ps": [0.005, 0.01, 0.02],
///   "method": "power",
///   "tol": 1e-13,
///   "max_iter": 200000,
///   "parallel": false,
///   "warm_start": true
/// }
/// ```
///
/// `warm_start` (default `true`) lets the server seed the solve from
/// nearby converged eigenvectors; set it to `false` for bit-reproducible
/// cold computations. It is excluded from the cache key, so opting out
/// does not fork the result-cache address space.
///
/// `compact` (default `true`) lets batched block solves shrink their
/// active slab as columns converge. The per-column iterates are
/// bit-identical either way — compaction only changes how many
/// matvec-columns the run pays — so it too stays out of the cache key.
///
/// Landscape kinds mirror the CLI's `--landscape` vocabulary:
/// `single-peak` (`f0`, `f_rest`), `random` (`c`, `sigma`, `seed`),
/// `nk` (`k`, `seed`), `error-class` (`phi` array) and `tabulated`
/// (`fitness` array, `2^ν` entries). Methods: `power` (default,
/// batchable), `lanczos` (`subspace`), `rqi` (`warmup`).
pub fn parse_solve_request(body: &[u8]) -> Result<SolveRequest, String> {
    let v: Value = serde_json::from_slice(body).map_err(|e| format!("invalid JSON: {e}"))?;
    if !v.is_object() {
        return Err("request body must be a JSON object".into());
    }

    let landscape = parse_landscape(
        v.get("landscape")
            .ok_or("missing required field 'landscape'")?,
    )?;

    let ps: Vec<f64> = match (v.get("ps"), v.get("p")) {
        (Some(grid), None) => grid
            .as_array()
            .ok_or("'ps' must be an array of numbers")?
            .iter()
            .map(|x| x.as_f64().ok_or("'ps' must contain only numbers"))
            .collect::<Result<_, _>>()?,
        (None, Some(p)) => vec![p.as_f64().ok_or("'p' must be a number")?],
        (Some(_), Some(_)) => return Err("give either 'p' or 'ps', not both".into()),
        (None, None) => return Err("missing required field 'p' (or 'ps')".into()),
    };

    let method = match v.get("method").map(|m| m.as_str()) {
        None => quasispecies::Method::Power,
        Some(Some("power")) => quasispecies::Method::Power,
        Some(Some("lanczos")) => quasispecies::Method::Lanczos {
            subspace: opt_usize(&v, "subspace")?.unwrap_or(24),
        },
        Some(Some("rqi")) => quasispecies::Method::Rqi {
            warmup: opt_usize(&v, "warmup")?.unwrap_or(5),
        },
        Some(Some(other)) => return Err(format!("unknown method '{other}'")),
        Some(None) => return Err("'method' must be a string".into()),
    };

    let defaults = SolverConfig::default();
    let tol = match v.get("tol") {
        None => defaults.tol,
        Some(t) => t.as_f64().ok_or("'tol' must be a number")?,
    };
    let max_iter = opt_usize(&v, "max_iter")?.unwrap_or(defaults.max_iter);
    let parallel = match v.get("parallel") {
        None => false,
        Some(b) => b.as_bool().ok_or("'parallel' must be a boolean")?,
    };
    let warm_start = match v.get("warm_start") {
        None => true,
        Some(b) => b.as_bool().ok_or("'warm_start' must be a boolean")?,
    };
    let compact = match v.get("compact") {
        None => true,
        Some(b) => b.as_bool().ok_or("'compact' must be a boolean")?,
    };

    Ok(SolveRequest {
        landscape,
        ps,
        method,
        tol,
        max_iter,
        scheduling: Scheduling {
            parallel,
            warm_start,
            compact,
        },
    })
}

fn parse_landscape(l: &Value) -> Result<LandscapeSpec, String> {
    if !l.is_object() {
        return Err("'landscape' must be a JSON object".into());
    }
    let kind = match l.get("kind") {
        None => "single-peak",
        Some(k) => k.as_str().ok_or("'landscape.kind' must be a string")?,
    };
    let nu = |missing_ok: bool| -> Result<u32, String> {
        match l.get("nu") {
            Some(n) => n
                .as_u64()
                .and_then(|n| u32::try_from(n).ok())
                .ok_or_else(|| "'landscape.nu' must be a small non-negative integer".into()),
            None if missing_ok => Ok(0),
            None => Err("missing 'landscape.nu'".into()),
        }
    };
    Ok(match kind {
        "single-peak" => LandscapeSpec::SinglePeak {
            nu: nu(false)?,
            f0: opt_f64(l, "f0")?.unwrap_or(2.0),
            f_rest: opt_f64(l, "f_rest")?.unwrap_or(1.0),
        },
        "random" => LandscapeSpec::Random {
            nu: nu(false)?,
            c: opt_f64(l, "c")?.unwrap_or(5.0),
            sigma: opt_f64(l, "sigma")?.unwrap_or(1.0),
            seed: opt_u64(l, "seed")?.unwrap_or(42),
        },
        "nk" => LandscapeSpec::Nk {
            nu: nu(false)?,
            k: opt_u64(l, "k")?
                .map(|k| u32::try_from(k).map_err(|_| "'landscape.k' too large".to_string()))
                .transpose()?
                .unwrap_or(2),
            seed: opt_u64(l, "seed")?.unwrap_or(42),
        },
        "error-class" => LandscapeSpec::ErrorClass {
            nu: nu(false)?,
            phi: f64_array(l, "phi")?,
        },
        "tabulated" => LandscapeSpec::Tabulated {
            fitness: f64_array(l, "fitness")?,
        },
        other => return Err(format!("unknown landscape kind '{other}'")),
    })
}

fn opt_f64(v: &Value, field: &str) -> Result<Option<f64>, String> {
    match v.get(field) {
        None => Ok(None),
        Some(x) => x
            .as_f64()
            .map(Some)
            .ok_or_else(|| format!("'{field}' must be a number")),
    }
}

fn opt_u64(v: &Value, field: &str) -> Result<Option<u64>, String> {
    match v.get(field) {
        None => Ok(None),
        Some(x) => x
            .as_u64()
            .map(Some)
            .ok_or_else(|| format!("'{field}' must be a non-negative integer")),
    }
}

fn opt_usize(v: &Value, field: &str) -> Result<Option<usize>, String> {
    Ok(opt_u64(v, field)?.map(|n| n as usize))
}

fn f64_array(v: &Value, field: &str) -> Result<Vec<f64>, String> {
    v.get(field)
        .and_then(|a| a.as_array())
        .ok_or_else(|| format!("'{field}' must be an array of numbers"))?
        .iter()
        .map(|x| {
            x.as_f64()
                .ok_or_else(|| format!("'{field}' must contain only numbers"))
        })
        .collect()
}

/// Append `v` as a JSON number (shortest round-trip form; `null` for
/// non-finite values, which no healthy solve produces).
fn push_f64(s: &mut String, v: f64) {
    if v.is_finite() {
        let _ = write!(s, "{v}");
    } else {
        s.push_str("null");
    }
}

/// Append `text` as a JSON string literal with the mandatory escapes.
fn push_str_escaped(s: &mut String, text: &str) {
    s.push('"');
    for c in text.chars() {
        match c {
            '"' => s.push_str("\\\""),
            '\\' => s.push_str("\\\\"),
            '\n' => s.push_str("\\n"),
            '\r' => s.push_str("\\r"),
            '\t' => s.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(s, "\\u{:04x}", c as u32);
            }
            c => s.push(c),
        }
    }
    s.push('"');
}

/// Encode one answered point as the cacheable JSON fragment. Fixed field
/// order, no whitespace: the bytes this produces are stored in the
/// result cache and re-served verbatim, so repeats are bit-identical by
/// construction.
pub fn encode_point(point: &PointResult, nu: u32, batched: bool) -> String {
    let qs = &point.solution;
    let stats = &qs.stats;
    let mut s = String::with_capacity(256 + 24 * nu as usize);
    s.push_str("{\"p\":");
    push_f64(&mut s, point.p);
    let _ = write!(
        s,
        ",\"key\":\"{:016x}\",\"nu\":{nu},\"lambda\":",
        point.cache_key
    );
    push_f64(&mut s, qs.lambda);
    let _ = write!(
        s,
        ",\"iterations\":{},\"matvecs\":{},\"residual\":",
        stats.iterations, stats.matvecs
    );
    push_f64(&mut s, stats.residual);
    let _ = write!(
        s,
        ",\"converged\":{},\"degraded\":{},\"batched\":{batched},\"engine\":",
        stats.converged, stats.degraded
    );
    push_str_escaped(&mut s, &stats.engine);
    s.push_str(",\"method\":");
    push_str_escaped(&mut s, &stats.method);
    if let Some(kind) = &stats.recovered_from {
        s.push_str(",\"recovered_from\":");
        push_str_escaped(&mut s, kind);
    }
    if let Some(warm) = &stats.warm_start {
        s.push_str(",\"warm_start\":{\"source\":");
        push_str_escaped(&mut s, &warm.source);
        s.push_str(",\"from_p\":");
        push_f64(&mut s, warm.from_p);
        let _ = write!(s, ",\"iterations_saved\":{}}}", warm.iterations_saved);
    }
    s.push_str(",\"entropy\":");
    push_f64(&mut s, qs.entropy());
    s.push_str(",\"dominant_sequence\":");
    push_str_escaped(
        &mut s,
        &qs_bitseq::to_bit_string(qs.dominant_sequence(), nu),
    );
    s.push_str(",\"classes\":[");
    for (i, c) in qs.error_class_concentrations().iter().enumerate() {
        if i > 0 {
            s.push(',');
        }
        push_f64(&mut s, *c);
    }
    s.push_str("]}");
    s
}

/// A JSON error body: `{"error": ..., "detail": ...}`.
pub fn error_body(error: &str, detail: &str) -> Vec<u8> {
    let mut s = String::with_capacity(64 + detail.len());
    s.push_str("{\"error\":");
    push_str_escaped(&mut s, error);
    s.push_str(",\"detail\":");
    push_str_escaped(&mut s, detail);
    s.push('}');
    s.into_bytes()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn minimal_request_parses_with_defaults() {
        let req = parse_solve_request(br#"{"landscape":{"nu":8},"p":0.01}"#).unwrap();
        assert_eq!(req.ps, vec![0.01]);
        assert_eq!(req.landscape.kind(), "single-peak");
        assert_eq!(req.landscape.nu(), 8);
        assert_eq!(req.method, quasispecies::Method::Power);
        assert!(!req.scheduling.parallel);
        assert!(
            req.scheduling.warm_start,
            "warm starts are on unless opted out"
        );
        let defaults = SolverConfig::default();
        assert_eq!(req.tol, defaults.tol);
        assert_eq!(req.max_iter, defaults.max_iter);
    }

    #[test]
    fn full_request_round_trips_every_field() {
        let req = parse_solve_request(
            br#"{"landscape":{"kind":"random","nu":9,"c":4.0,"sigma":0.5,"seed":7},
                 "ps":[0.01,0.02],"method":"lanczos","subspace":16,
                 "tol":1e-10,"max_iter":5000,"parallel":true,"warm_start":false}"#,
        )
        .unwrap();
        assert_eq!(
            req.landscape,
            LandscapeSpec::Random {
                nu: 9,
                c: 4.0,
                sigma: 0.5,
                seed: 7
            }
        );
        assert_eq!(req.ps, vec![0.01, 0.02]);
        assert_eq!(req.method, quasispecies::Method::Lanczos { subspace: 16 });
        assert_eq!(req.tol, 1e-10);
        assert_eq!(req.max_iter, 5000);
        assert!(req.scheduling.parallel);
        assert!(!req.scheduling.warm_start);
    }

    #[test]
    fn malformed_requests_name_the_offending_field() {
        for (body, needle) in [
            (&br#"not json"#[..], "invalid JSON"),
            (br#"{"p":0.01}"#, "landscape"),
            (br#"{"landscape":{"nu":8}}"#, "'p'"),
            (
                br#"{"landscape":{"kind":"warped","nu":8},"p":0.01}"#,
                "warped",
            ),
            (br#"{"landscape":{"kind":"single-peak"},"p":0.01}"#, "nu"),
            (
                br#"{"landscape":{"nu":8},"p":0.01,"ps":[0.01]}"#,
                "not both",
            ),
            (br#"{"landscape":{"nu":8},"p":0.01,"method":"qr"}"#, "qr"),
            (br#"{"landscape":{"nu":8},"p":0.01,"tol":"tight"}"#, "tol"),
        ] {
            let err = parse_solve_request(body).unwrap_err();
            assert!(
                err.contains(needle),
                "error {err:?} should mention {needle:?}"
            );
        }
    }

    #[test]
    fn encoded_points_are_deterministic_and_parse_as_json() {
        let req = SolveRequest::single(
            LandscapeSpec::SinglePeak {
                nu: 6,
                f0: 2.0,
                f_rest: 1.0,
            },
            0.01,
        );
        let result = req.run().unwrap();
        let a = encode_point(&result.points[0], result.nu, result.batched);
        let b = encode_point(&result.points[0], result.nu, result.batched);
        assert_eq!(a, b, "encoding must be deterministic");
        let v: Value = serde_json::from_str(&a).unwrap();
        assert_eq!(v["nu"].as_u64().unwrap(), 6);
        assert!(v["converged"].as_bool().unwrap());
        assert!(v["lambda"].as_f64().unwrap() > 1.0);
        assert_eq!(v["classes"].as_array().unwrap().len(), 7);
        assert_eq!(v["key"].as_str().unwrap().len(), 16);
    }

    #[test]
    fn error_bodies_escape_details() {
        let body = error_body("bad_request", "a \"quoted\"\nthing");
        let v: Value = serde_json::from_slice(&body).unwrap();
        assert_eq!(v["error"].as_str().unwrap(), "bad_request");
        assert_eq!(v["detail"].as_str().unwrap(), "a \"quoted\"\nthing");
    }
}
