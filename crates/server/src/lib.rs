//! Quasispecies-as-a-service: an HTTP solve server with cross-request
//! batching and a content-addressed result cache.
//!
//! The server exposes the [`quasispecies::SolveRequest`] API boundary
//! over a small HTTP/1.1 surface:
//!
//! | route            | method | purpose                                    |
//! |------------------|--------|--------------------------------------------|
//! | `/solve`         | POST   | solve one request (one or many error rates)|
//! | `/metrics`       | GET    | serving counters + last engine trace digest|
//! | `/healthz`       | GET    | liveness probe                             |
//! | `/shutdown`      | POST   | graceful stop (drains workers)             |
//!
//! Three serving properties are load-bearing (and pinned by the
//! integration tests):
//!
//! - **coalescing** — concurrent `/solve` requests over the same
//!   (landscape, ν, method, tol) are merged into one batched block power
//!   iteration, their error rates becoming columns of a single engine
//!   run ([`scheduler`] module docs);
//! - **bit-identical repeats** — results are cached as encoded bytes
//!   under a content-addressed key, so re-asking for a point re-serves
//!   the exact same bytes;
//! - **zero-alloc steady state** — workers keep their [`Workspace`]
//!   pools warm across solves, so after warm-up the per-solve pool-miss
//!   byte counter on `/metrics` reads zero.
//!
//! Everything is `std`-only: plain [`TcpListener`], threads, mutexes and
//! condvars — no async runtime, no HTTP dependency to gate on.
//!
//! [`Workspace`]: quasispecies::Workspace

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::io;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{mpsc, Arc, Mutex};
use std::thread;
use std::time::Duration;

use qs_fault::FaultPlan;
use qs_telemetry::ServeCounters;
use quasispecies::FORMAT_VERSION;

pub mod http;
mod scheduler;
pub mod wire;

use scheduler::{Scheduler, ServeError};

/// Crate version for build-info records. `option_env!` (not `env!`) so
/// builds outside cargo — e.g. bare-rustc validation harnesses — still
/// compile; the fallback matches the workspace version.
pub(crate) const PKG_VERSION: &str = match option_env!("CARGO_PKG_VERSION") {
    Some(v) => v,
    None => "0.1.0",
};

/// Everything configurable about a [`Server`].
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Bind address; use port 0 to let the OS pick (tests do).
    pub addr: String,
    /// Solve worker threads, each owning a persistent workspace.
    pub workers: usize,
    /// How long the first request of a group waits for concurrent
    /// requests to coalesce before dispatching.
    pub coalesce_window: Duration,
    /// Largest accepted chain length ν; a solve costs Θ(2^ν · ν) per
    /// iteration, so this caps per-request work.
    pub max_nu: u32,
    /// Result-cache capacity in points (FIFO eviction).
    pub cache_capacity: usize,
    /// Optional fault-injection plan: when set, every solve runs through
    /// the chaos harness's [`FaultyOp`](qs_fault::FaultyOp) wrapper.
    pub fault_plan: Option<FaultPlan>,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            addr: "127.0.0.1:0".to_string(),
            workers: 2,
            coalesce_window: Duration::from_millis(25),
            max_nu: 22,
            cache_capacity: 4096,
            fault_plan: None,
        }
    }
}

/// A bound (but not yet running) solve server.
pub struct Server {
    listener: TcpListener,
    local_addr: SocketAddr,
    scheduler: Arc<Scheduler>,
    workers: Vec<thread::JoinHandle<()>>,
    stop: Arc<AtomicBool>,
    max_nu: u32,
}

impl Server {
    /// Bind the listener and start the worker pool. The accept loop does
    /// not run until [`Server::run`].
    pub fn bind(config: ServerConfig) -> io::Result<Server> {
        let listener = TcpListener::bind(&config.addr)?;
        let local_addr = listener.local_addr()?;
        let (job_tx, job_rx) = mpsc::channel();
        let scheduler = Arc::new(Scheduler::new(
            config.coalesce_window,
            config.cache_capacity,
            job_tx,
        ));
        let job_rx = Arc::new(Mutex::new(job_rx));
        let fault_plan = config.fault_plan.map(Arc::new);
        let mut workers = Vec::new();
        for i in 0..config.workers.max(1) {
            let scheduler = scheduler.clone();
            let job_rx = job_rx.clone();
            let fault_plan = fault_plan.clone();
            workers.push(
                thread::Builder::new()
                    .name(format!("qs-solve-{i}"))
                    .spawn(move || scheduler::worker_loop(scheduler, job_rx, fault_plan))?,
            );
        }
        Ok(Server {
            listener,
            local_addr,
            scheduler,
            workers,
            stop: Arc::new(AtomicBool::new(false)),
            max_nu: config.max_nu,
        })
    }

    /// The address the listener actually bound (resolves port 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// The serving counters, shareable for out-of-band assertions.
    pub fn counters(&self) -> Arc<ServeCounters> {
        self.scheduler.counters.clone()
    }

    /// Serve until a `POST /shutdown` arrives, then drain the worker
    /// pool and return. Each connection is handled on its own thread.
    pub fn run(self) {
        let Server {
            listener,
            local_addr,
            scheduler,
            workers,
            stop,
            max_nu,
        } = self;
        for stream in listener.incoming() {
            if stop.load(Ordering::SeqCst) {
                break;
            }
            let stream = match stream {
                Ok(s) => s,
                Err(_) => continue,
            };
            let scheduler = scheduler.clone();
            let stop = stop.clone();
            thread::spawn(move || {
                handle_connection(stream, &scheduler, &stop, local_addr, max_nu);
            });
        }
        // Close the job channel so idle workers see a hangup and exit.
        scheduler.close();
        for worker in workers {
            let _ = worker.join();
        }
    }
}

/// Serve exactly one request on `stream` (`Connection: close`).
fn handle_connection(
    mut stream: TcpStream,
    scheduler: &Scheduler,
    stop: &AtomicBool,
    local_addr: SocketAddr,
    max_nu: u32,
) {
    let request = match http::read_request(&mut stream) {
        Ok(Some(request)) => request,
        Ok(None) => return,
        Err(err) => {
            let body = wire::error_body("bad_request", &err.to_string());
            let _ = http::write_response(&mut stream, 400, "Bad Request", JSON, &[], &body);
            return;
        }
    };
    match (request.method.as_str(), request.path.as_str()) {
        ("POST", "/solve") => handle_solve(&mut stream, scheduler, max_nu, &request.body),
        ("GET", "/metrics") => {
            let body = render_metrics(scheduler);
            let _ = http::write_response(
                &mut stream,
                200,
                "OK",
                "text/plain; charset=utf-8",
                &[],
                body.as_bytes(),
            );
        }
        ("GET", "/healthz") => {
            let _ = http::write_response(&mut stream, 200, "OK", JSON, &[], b"{\"ok\":true}");
        }
        ("POST", "/shutdown") => {
            let _ = http::write_response(&mut stream, 200, "OK", JSON, &[], b"{\"shutdown\":true}");
            stop.store(true, Ordering::SeqCst);
            // The accept loop is blocked in accept(); poke it awake so it
            // observes the flag. The connection is dropped unhandled.
            let _ = TcpStream::connect(local_addr);
        }
        _ => {
            let body = wire::error_body("not_found", &request.path);
            let _ = http::write_response(&mut stream, 404, "Not Found", JSON, &[], &body);
        }
    }
}

const JSON: &str = "application/json";

fn handle_solve(stream: &mut TcpStream, scheduler: &Scheduler, max_nu: u32, body: &[u8]) {
    let counters = &scheduler.counters;
    let request = match wire::parse_solve_request(body) {
        Ok(request) => request,
        Err(detail) => {
            counters.record_error();
            let body = wire::error_body("bad_request", &detail);
            let _ = http::write_response(stream, 400, "Bad Request", JSON, &[], &body);
            return;
        }
    };
    counters.record_request(request.ps.len() as u64);
    if let Err(err) = request.validate() {
        counters.record_error();
        let body = wire::error_body("invalid_request", &err.to_string());
        let _ = http::write_response(stream, 400, "Bad Request", JSON, &[], &body);
        return;
    }
    let nu = request.landscape.nu();
    if nu > max_nu {
        counters.record_error();
        let detail = format!("chain length nu = {nu} exceeds the server cap of {max_nu}");
        let body = wire::error_body("too_large", &detail);
        let _ = http::write_response(stream, 400, "Bad Request", JSON, &[], &body);
        return;
    }
    match scheduler.serve_points(&request) {
        Ok(served) => {
            let mut body =
                format!("{{\"count\":{},\"results\":[", served.fragments.len()).into_bytes();
            for (i, fragment) in served.fragments.iter().enumerate() {
                if i > 0 {
                    body.push(b',');
                }
                body.extend_from_slice(fragment);
            }
            body.extend_from_slice(b"]}");
            // The cache header is advisory and deliberately NOT part of
            // the bit-identity contract, which covers the body only.
            let headers: &[(&str, &str)] = if served.all_cached {
                &[("x-cache", "hit")]
            } else {
                &[]
            };
            let _ = http::write_response(stream, 200, "OK", JSON, headers, &body);
        }
        Err(ServeError::Failed(detail)) => {
            counters.record_error();
            let body = wire::error_body("solve_failed", &detail);
            let _ = http::write_response(stream, 500, "Internal Server Error", JSON, &[], &body);
        }
        Err(ServeError::TimedOut) => {
            counters.record_error();
            let body = wire::error_body("timeout", "solve did not complete in time");
            let _ = http::write_response(stream, 504, "Gateway Timeout", JSON, &[], &body);
        }
    }
}

/// Render the `/metrics` body: one line per counter in the Prometheus
/// text idiom, a build-info gauge, then the most recent engine run's
/// [`TraceSummary`](qs_telemetry::TraceSummary) as comment lines.
fn render_metrics(scheduler: &Scheduler) -> String {
    let s = scheduler.counters.snapshot();
    let mut out = String::new();
    for (name, value) in [
        ("qs_requests_total", s.requests),
        ("qs_points_total", s.points),
        ("qs_engine_solves_total", s.engine_solves),
        ("qs_batched_columns_total", s.batched_columns),
        ("qs_max_batch", s.max_batch),
        ("qs_cache_hits_total", s.cache_hits),
        ("qs_cache_misses_total", s.cache_misses),
        ("qs_pool_miss_bytes_total", s.pool_miss_bytes),
        (
            "qs_last_solve_pool_miss_bytes",
            s.last_solve_pool_miss_bytes,
        ),
        ("qs_errors_total", s.errors),
    ] {
        out.push_str(name);
        out.push(' ');
        out.push_str(&value.to_string());
        out.push('\n');
    }
    out.push_str(&format!(
        "qs_build_info{{version=\"{}\",isa=\"{}\",checkpoint_format=\"{}\"}} 1\n",
        PKG_VERSION,
        qs_matvec::simd::active().name(),
        FORMAT_VERSION,
    ));
    let summary = scheduler.last_summary.lock().unwrap();
    for line in summary.lines() {
        out.push_str("# ");
        out.push_str(line);
        out.push('\n');
    }
    out
}
