//! Quasispecies-as-a-service: an HTTP solve server with cross-request
//! batching and a content-addressed result cache.
//!
//! The server exposes the [`quasispecies::SolveRequest`] API boundary
//! over a small HTTP/1.1 surface:
//!
//! | route            | method | purpose                                    |
//! |------------------|--------|--------------------------------------------|
//! | `/solve`         | POST   | solve one request (one or many error rates)|
//! | `/metrics`       | GET    | serving counters + last engine trace digest|
//! | `/healthz`       | GET    | liveness probe                             |
//! | `/shutdown`      | POST   | graceful stop (drains workers)             |
//!
//! Five serving properties are load-bearing (and pinned by the
//! integration tests):
//!
//! - **persistent connections** — HTTP/1.1 keep-alive by default: one
//!   TCP connection serves a whole session of requests (bounded by an
//!   idle timeout and a per-connection request cap), and back-to-back
//!   pipelined requests are answered in order ([`http`] module docs);
//! - **coalescing** — concurrent `/solve` requests over the same
//!   (landscape, ν, method, tol) are merged into one batched block power
//!   iteration, their error rates becoming columns of a single engine
//!   run; a group that reaches the batch cap dispatches immediately
//!   instead of waiting out the coalescing window (`scheduler` module
//!   docs);
//! - **bit-identical repeats** — results are cached as encoded bytes
//!   under a content-addressed key with an LRU byte budget, so re-asking
//!   for a cached point re-serves the exact same bytes;
//! - **warm starts** — converged eigenvectors are kept in a separate
//!   byte-budgeted cache keyed by (landscape, method) and served as
//!   start-vector seeds to *nearby* error rates: warm solves meet the
//!   same tolerance with fewer iterations, and requests can opt out via
//!   `scheduling.warm_start` without forking the result-cache address
//!   space;
//! - **zero-alloc steady state** — workers keep their [`Workspace`]
//!   pools warm across solves, so after warm-up the per-solve pool-miss
//!   byte counter on `/metrics` reads zero.
//!
//! Everything is `std`-only: plain [`TcpListener`], threads, mutexes and
//! condvars — no async runtime, no HTTP dependency to gate on.
//!
//! [`Workspace`]: quasispecies::Workspace

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::io;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{mpsc, Arc, Mutex};
use std::thread;
use std::time::Duration;

use qs_fault::FaultPlan;
use qs_telemetry::ServeCounters;
use quasispecies::FORMAT_VERSION;

pub mod http;
mod scheduler;
pub mod wire;

use scheduler::{Scheduler, ServeError};

/// Crate version for build-info records. `option_env!` (not `env!`) so
/// builds outside cargo — e.g. bare-rustc validation harnesses — still
/// compile; the fallback matches the workspace version.
pub(crate) const PKG_VERSION: &str = match option_env!("CARGO_PKG_VERSION") {
    Some(v) => v,
    None => "0.1.0",
};

/// Everything configurable about a [`Server`].
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Bind address; use port 0 to let the OS pick (tests do).
    pub addr: String,
    /// Solve worker threads, each owning a persistent workspace.
    pub workers: usize,
    /// How long the first request of a group waits for concurrent
    /// requests to coalesce before dispatching.
    pub coalesce_window: Duration,
    /// Largest accepted chain length ν; a solve costs Θ(2^ν · ν) per
    /// iteration, so this caps per-request work.
    pub max_nu: u32,
    /// Result-cache capacity in points (LRU eviction).
    pub cache_capacity: usize,
    /// Result-cache byte budget: least-recently-used entries are evicted
    /// once the encoded fragments exceed it.
    pub cache_bytes: u64,
    /// Coalesced-column count at which an open group dispatches
    /// immediately instead of waiting out the coalescing window.
    /// `None` resolves to `workers × 8`.
    pub max_batch: Option<usize>,
    /// Byte budget for the eigenvector warm-start cache; `0` disables
    /// warm-start serving entirely.
    pub warm_cache_bytes: u64,
    /// How long a keep-alive connection may sit idle between requests
    /// before the server drops it.
    pub idle_timeout: Duration,
    /// Requests served on one connection before the server closes it
    /// (bounds per-connection thread lifetime).
    pub max_requests_per_connection: usize,
    /// Optional fault-injection plan: when set, every solve runs through
    /// the chaos harness's [`FaultyOp`](qs_fault::FaultyOp) wrapper.
    pub fault_plan: Option<FaultPlan>,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            addr: "127.0.0.1:0".to_string(),
            workers: 2,
            coalesce_window: Duration::from_millis(25),
            max_nu: 22,
            cache_capacity: 4096,
            cache_bytes: 64 << 20,
            max_batch: None,
            warm_cache_bytes: 32 << 20,
            idle_timeout: Duration::from_secs(5),
            max_requests_per_connection: 1024,
            fault_plan: None,
        }
    }
}

/// A bound (but not yet running) solve server.
pub struct Server {
    listener: TcpListener,
    local_addr: SocketAddr,
    scheduler: Arc<Scheduler>,
    workers: Vec<thread::JoinHandle<()>>,
    stop: Arc<AtomicBool>,
    max_nu: u32,
    idle_timeout: Duration,
    max_requests_per_connection: usize,
}

impl Server {
    /// Bind the listener and start the worker pool. The accept loop does
    /// not run until [`Server::run`].
    pub fn bind(config: ServerConfig) -> io::Result<Server> {
        let listener = TcpListener::bind(&config.addr)?;
        let local_addr = listener.local_addr()?;
        let (job_tx, job_rx) = mpsc::channel();
        let workers_n = config.workers.max(1);
        let scheduler = Arc::new(Scheduler::new(
            scheduler::SchedulerOptions {
                coalesce: config.coalesce_window,
                cache_capacity: config.cache_capacity,
                cache_bytes: config.cache_bytes,
                max_batch: config.max_batch.unwrap_or(workers_n * 8),
                warm_cache_bytes: config.warm_cache_bytes,
            },
            job_tx,
        ));
        let job_rx = Arc::new(Mutex::new(job_rx));
        let fault_plan = config.fault_plan.map(Arc::new);
        let mut workers = Vec::new();
        for i in 0..workers_n {
            let scheduler = scheduler.clone();
            let job_rx = job_rx.clone();
            let fault_plan = fault_plan.clone();
            workers.push(
                thread::Builder::new()
                    .name(format!("qs-solve-{i}"))
                    .spawn(move || scheduler::worker_loop(scheduler, job_rx, fault_plan))?,
            );
        }
        Ok(Server {
            listener,
            local_addr,
            scheduler,
            workers,
            stop: Arc::new(AtomicBool::new(false)),
            max_nu: config.max_nu,
            idle_timeout: config.idle_timeout,
            max_requests_per_connection: config.max_requests_per_connection.max(1),
        })
    }

    /// The address the listener actually bound (resolves port 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// The serving counters, shareable for out-of-band assertions.
    pub fn counters(&self) -> Arc<ServeCounters> {
        self.scheduler.counters.clone()
    }

    /// Threads available to the solve backend, for bench provenance.
    pub fn solver_threads() -> usize {
        qs_matvec::parallel::worker_threads()
    }

    /// Serve until a `POST /shutdown` arrives, then drain the worker
    /// pool and return. Each connection is handled on its own thread.
    pub fn run(self) {
        let Server {
            listener,
            local_addr,
            scheduler,
            workers,
            stop,
            max_nu,
            idle_timeout,
            max_requests_per_connection,
        } = self;
        for stream in listener.incoming() {
            if stop.load(Ordering::SeqCst) {
                break;
            }
            let stream = match stream {
                Ok(s) => s,
                Err(_) => continue,
            };
            // Responses are written whole; never let Nagle hold one back
            // waiting for an ACK on a keep-alive connection.
            let _ = stream.set_nodelay(true);
            let scheduler = scheduler.clone();
            let stop = stop.clone();
            thread::spawn(move || {
                handle_connection(
                    stream,
                    &scheduler,
                    &stop,
                    local_addr,
                    max_nu,
                    idle_timeout,
                    max_requests_per_connection,
                );
            });
        }
        // Close the job channel so idle workers see a hangup and exit.
        scheduler.close();
        for worker in workers {
            let _ = worker.join();
        }
    }
}

/// Serve a whole keep-alive session on `stream`: requests are read and
/// answered in order until the peer closes, asks to close, idles out,
/// or exhausts the per-connection request cap.
fn handle_connection(
    stream: TcpStream,
    scheduler: &Scheduler,
    stop: &AtomicBool,
    local_addr: SocketAddr,
    max_nu: u32,
    idle_timeout: Duration,
    max_requests: usize,
) {
    let mut conn = http::Conn::new(stream, idle_timeout);
    for served in 0..max_requests {
        let request = match conn.read_request() {
            Ok(Some(request)) => request,
            Ok(None) => return, // peer closed or idled out between requests
            Err(err) => {
                let body = wire::error_body("bad_request", &err.to_string());
                let _ = conn.write_response(400, "Bad Request", JSON, &[], &body, false);
                return;
            }
        };
        let started = std::time::Instant::now();
        // Honour the client's wish, the request cap, and shutdown: any
        // of them downgrades this response to `connection: close`.
        let keep_alive =
            request.keep_alive && served + 1 < max_requests && !stop.load(Ordering::SeqCst);
        match (request.method.as_str(), request.path.as_str()) {
            ("POST", "/solve") => {
                handle_solve(&mut conn, scheduler, max_nu, &request.body, keep_alive)
            }
            ("GET", "/metrics") => {
                let body = render_metrics(scheduler);
                let _ = conn.write_response(
                    200,
                    "OK",
                    "text/plain; charset=utf-8",
                    &[],
                    body.as_bytes(),
                    keep_alive,
                );
            }
            ("GET", "/healthz") => {
                let _ = conn.write_response(200, "OK", JSON, &[], b"{\"ok\":true}", keep_alive);
            }
            ("POST", "/shutdown") => {
                let _ = conn.write_response(200, "OK", JSON, &[], b"{\"shutdown\":true}", false);
                stop.store(true, Ordering::SeqCst);
                // The accept loop is blocked in accept(); poke it awake so it
                // observes the flag. The connection is dropped unhandled.
                let _ = TcpStream::connect(local_addr);
                scheduler.counters.record_latency(started.elapsed());
                return;
            }
            _ => {
                let body = wire::error_body("not_found", &request.path);
                let _ = conn.write_response(404, "Not Found", JSON, &[], &body, keep_alive);
            }
        }
        scheduler.counters.record_latency(started.elapsed());
        if !keep_alive {
            return;
        }
    }
}

const JSON: &str = "application/json";

fn handle_solve(
    conn: &mut http::Conn,
    scheduler: &Scheduler,
    max_nu: u32,
    body: &[u8],
    keep_alive: bool,
) {
    let counters = &scheduler.counters;
    let request = match wire::parse_solve_request(body) {
        Ok(request) => request,
        Err(detail) => {
            counters.record_error();
            let body = wire::error_body("bad_request", &detail);
            let _ = conn.write_response(400, "Bad Request", JSON, &[], &body, keep_alive);
            return;
        }
    };
    counters.record_request(request.ps.len() as u64);
    if let Err(err) = request.validate() {
        counters.record_error();
        let body = wire::error_body("invalid_request", &err.to_string());
        let _ = conn.write_response(400, "Bad Request", JSON, &[], &body, keep_alive);
        return;
    }
    let nu = request.landscape.nu();
    if nu > max_nu {
        counters.record_error();
        let detail = format!("chain length nu = {nu} exceeds the server cap of {max_nu}");
        let body = wire::error_body("too_large", &detail);
        let _ = conn.write_response(400, "Bad Request", JSON, &[], &body, keep_alive);
        return;
    }
    match scheduler.serve_points(&request) {
        Ok(served) => {
            let mut body =
                format!("{{\"count\":{},\"results\":[", served.fragments.len()).into_bytes();
            for (i, fragment) in served.fragments.iter().enumerate() {
                if i > 0 {
                    body.push(b',');
                }
                body.extend_from_slice(fragment);
            }
            body.extend_from_slice(b"]}");
            // The cache header is advisory and deliberately NOT part of
            // the bit-identity contract, which covers the body only.
            let headers: &[(&str, &str)] = if served.all_cached {
                &[("x-cache", "hit")]
            } else {
                &[]
            };
            let _ = conn.write_response(200, "OK", JSON, headers, &body, keep_alive);
        }
        Err(ServeError::Failed(detail)) => {
            counters.record_error();
            let body = wire::error_body("solve_failed", &detail);
            let _ = conn.write_response(500, "Internal Server Error", JSON, &[], &body, keep_alive);
        }
        Err(ServeError::TimedOut) => {
            counters.record_error();
            let body = wire::error_body("timeout", "solve did not complete in time");
            let _ = conn.write_response(504, "Gateway Timeout", JSON, &[], &body, keep_alive);
        }
    }
}

/// Render the `/metrics` body: one line per counter in the Prometheus
/// text idiom, a build-info gauge, then the most recent engine run's
/// [`TraceSummary`](qs_telemetry::TraceSummary) as comment lines.
fn render_metrics(scheduler: &Scheduler) -> String {
    let s = scheduler.counters.snapshot();
    let mut out = String::new();
    for (name, value) in [
        ("qs_requests_total", s.requests),
        ("qs_points_total", s.points),
        ("qs_engine_solves_total", s.engine_solves),
        ("qs_batched_columns_total", s.batched_columns),
        ("qs_max_batch", s.max_batch),
        ("qs_cache_hits_total", s.cache_hits),
        ("qs_cache_misses_total", s.cache_misses),
        ("qs_pool_miss_bytes_total", s.pool_miss_bytes),
        (
            "qs_last_solve_pool_miss_bytes",
            s.last_solve_pool_miss_bytes,
        ),
        ("qs_errors_total", s.errors),
        ("qs_cache_bytes", s.cache_bytes),
        ("qs_warm_cache_bytes", s.warm_cache_bytes),
        ("qs_warm_hits_total", s.warm_hits),
        ("qs_warm_seeded_columns_total", s.warm_seeded_columns),
        ("qs_warm_iterations_saved_total", s.warm_iterations_saved),
        ("qs_block_compactions_total", s.block_compactions),
        ("qs_block_matvec_columns_total", s.block_matvec_columns),
        (
            "qs_block_matvec_columns_saved_total",
            s.block_matvec_columns_saved,
        ),
        ("qs_request_latency_count", s.latency_count),
    ] {
        out.push_str(name);
        out.push(' ');
        out.push_str(&value.to_string());
        out.push('\n');
    }
    out.push_str(&format!(
        "qs_request_latency_us{{quantile=\"0.5\"}} {}\n",
        s.latency_p50_us
    ));
    out.push_str(&format!(
        "qs_request_latency_us{{quantile=\"0.99\"}} {}\n",
        s.latency_p99_us
    ));
    out.push_str(&format!(
        "qs_build_info{{version=\"{}\",isa=\"{}\",checkpoint_format=\"{}\"}} 1\n",
        PKG_VERSION,
        qs_matvec::simd::active().name(),
        FORMAT_VERSION,
    ));
    let summary = scheduler.last_summary.lock().unwrap();
    for line in summary.lines() {
        out.push_str("# ");
        out.push_str(line);
        out.push('\n');
    }
    out
}
