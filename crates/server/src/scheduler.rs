//! The request scheduler: cross-request batching, the content-addressed
//! result cache, and the worker pool that owns the solver workspaces.
//!
//! # Coalescing contract
//!
//! Every requested point is content-addressed by
//! [`SolveRequest::cache_key`] and every request belongs to a *group*
//! ([`SolveRequest::group_key`]) — requests that differ at most in their
//! error rates. A point is answered one of three ways:
//!
//! 1. **cache hit** — the key is present; the stored encoded bytes are
//!    re-served verbatim (bit-identical repeats by construction);
//! 2. **join** — the key is already pending (in an open group or in
//!    flight on a worker); the connection just waits for it;
//! 3. **open** — the first connection to miss on a group opens it,
//!    waits one coalescing window for concurrent requests to pile their
//!    rates in, then dispatches the whole group as **one** job. On a
//!    worker, the group's rates become columns of a single batched block
//!    power iteration, so `k` coalesced requests cost one engine solve.
//!
//! Workers are long-lived and each owns a [`Workspace`]: after the first
//! (pool-warming) solve of a given shape, steady-state serving draws
//! every solver buffer from the pool — the per-solve pool-miss byte
//! count on `/metrics` drops to zero.

use std::collections::{HashMap, HashSet, VecDeque};
use std::sync::mpsc::{Receiver, Sender};
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

use qs_fault::{FaultPlan, FaultyOp};
use qs_matvec::{Fmmp, LinearOperator};
use qs_telemetry::{ServeCounters, SolverEvent, TraceSummary};
use quasispecies::{
    solve_with_q_operator, PointResult, SolveRequest, SolveResult, SolverConfig, Workspace,
    FORMAT_VERSION,
};

use crate::wire;

/// How long a connection waits for its points before giving up. Far
/// above any smoke-scale solve; a stuck worker must not pin connections
/// forever.
const WAIT_TIMEOUT: Duration = Duration::from_secs(120);

/// One dispatched unit of work: a coalesced group's request (rates
/// accumulated) plus the cache key of each rate.
pub(crate) struct Job {
    request: SolveRequest,
    keys: Vec<u64>,
}

#[derive(Default)]
struct State {
    /// Content-addressed results: key → encoded point fragment.
    cache: HashMap<u64, Arc<Vec<u8>>>,
    /// Insertion order for FIFO eviction.
    cache_order: VecDeque<u64>,
    /// Keys currently being computed on a worker.
    in_flight: HashSet<u64>,
    /// Keys whose last computation failed, with the error detail.
    /// Entries are cleared when a new request retries the key.
    failed: HashMap<u64, Arc<String>>,
    /// Open coalescing groups, by group key.
    groups: HashMap<u64, Group>,
}

struct Group {
    request: SolveRequest,
    keys: Vec<u64>,
}

/// What [`Scheduler::serve_points`] hands back for a fully answered
/// request.
pub(crate) struct ServedPoints {
    /// Encoded fragment per requested rate, in request order.
    pub fragments: Vec<Arc<Vec<u8>>>,
    /// Whether every point came straight from the cache.
    pub all_cached: bool,
}

/// Why a request could not be answered.
pub(crate) enum ServeError {
    /// The solve failed with this detail.
    Failed(Arc<String>),
    /// The wait timed out (worker wedged or result evicted mid-wait).
    TimedOut,
}

pub(crate) struct Scheduler {
    state: Mutex<State>,
    done: Condvar,
    job_tx: Mutex<Option<Sender<Job>>>,
    pub(crate) counters: Arc<ServeCounters>,
    coalesce: Duration,
    cache_capacity: usize,
    /// Rendered [`TraceSummary`] of the most recent engine run, for
    /// `/metrics`.
    pub(crate) last_summary: Mutex<String>,
}

impl Scheduler {
    pub(crate) fn new(coalesce: Duration, cache_capacity: usize, job_tx: Sender<Job>) -> Scheduler {
        Scheduler {
            state: Mutex::new(State::default()),
            done: Condvar::new(),
            job_tx: Mutex::new(Some(job_tx)),
            counters: Arc::new(ServeCounters::new()),
            coalesce,
            cache_capacity: cache_capacity.max(1),
            last_summary: Mutex::new(String::new()),
        }
    }

    /// Drop the job sender so workers drain and exit.
    pub(crate) fn close(&self) {
        self.job_tx.lock().unwrap().take();
    }

    /// Answer every point of an (already validated) request, coalescing
    /// with concurrent requests and the cache as described in the module
    /// docs. Blocks until all points are served or failed.
    pub(crate) fn serve_points(&self, request: &SolveRequest) -> Result<ServedPoints, ServeError> {
        let keys: Vec<u64> = request.ps.iter().map(|&p| request.cache_key(p)).collect();
        let group_key = request.group_key();

        let mut hits = 0u64;
        let mut misses = 0u64;
        let mut opened = false;
        {
            let mut st = self.state.lock().unwrap();
            for (&p, &key) in request.ps.iter().zip(&keys) {
                if st.cache.contains_key(&key) || st.in_flight.contains(&key) {
                    if st.cache.contains_key(&key) {
                        hits += 1;
                    }
                    continue;
                }
                // A stale failure is retried, not re-served.
                st.failed.remove(&key);
                let group = st.groups.entry(group_key).or_insert_with(|| {
                    opened = true;
                    Group {
                        request: SolveRequest {
                            ps: Vec::new(),
                            ..request.clone()
                        },
                        keys: Vec::new(),
                    }
                });
                if !group.keys.contains(&key) {
                    group.request.ps.push(p);
                    group.keys.push(key);
                    misses += 1;
                }
            }
        }
        self.counters.record_cache_hits(hits);
        self.counters.record_cache_misses(misses);

        if opened {
            // This connection opened the group: give concurrent requests
            // one window to pile in, then dispatch the whole group as a
            // single job.
            std::thread::sleep(self.coalesce);
            let job = {
                let mut st = self.state.lock().unwrap();
                st.groups.remove(&group_key).map(|group| {
                    for &key in &group.keys {
                        st.in_flight.insert(key);
                    }
                    Job {
                        request: group.request,
                        keys: group.keys,
                    }
                })
            };
            if let Some(job) = job {
                let sent = match &*self.job_tx.lock().unwrap() {
                    Some(tx) => tx.send(job).is_ok(),
                    None => false,
                };
                if !sent {
                    // Shutting down: un-mark so waiters fail fast.
                    let mut st = self.state.lock().unwrap();
                    let detail = Arc::new("server shutting down".to_string());
                    for &key in &keys {
                        if st.in_flight.remove(&key) {
                            st.failed.insert(key, detail.clone());
                        }
                    }
                    drop(st);
                    self.done.notify_all();
                }
            }
        }

        // Wait until every key is answered one way or the other.
        let deadline = Instant::now() + WAIT_TIMEOUT;
        let mut st = self.state.lock().unwrap();
        loop {
            let pending = keys
                .iter()
                .any(|k| !st.cache.contains_key(k) && !st.failed.contains_key(k));
            if !pending {
                break;
            }
            let now = Instant::now();
            if now >= deadline {
                return Err(ServeError::TimedOut);
            }
            let (guard, _) = self.done.wait_timeout(st, deadline - now).unwrap();
            st = guard;
        }
        let mut fragments = Vec::with_capacity(keys.len());
        for key in &keys {
            if let Some(detail) = st.failed.get(key) {
                return Err(ServeError::Failed(detail.clone()));
            }
            fragments.push(st.cache[key].clone());
        }
        Ok(ServedPoints {
            fragments,
            all_cached: misses == 0 && !opened,
        })
    }

    fn insert_cached(&self, st: &mut State, key: u64, fragment: Arc<Vec<u8>>) {
        if st.cache.insert(key, fragment).is_none() {
            st.cache_order.push_back(key);
            while st.cache_order.len() > self.cache_capacity {
                if let Some(old) = st.cache_order.pop_front() {
                    st.cache.remove(&old);
                }
            }
        }
    }

    fn complete_ok(&self, job: &Job, result: SolveResult, ws: &mut Workspace) {
        let fragments: Vec<(u64, Arc<Vec<u8>>)> = result
            .points
            .iter()
            .map(|point| {
                (
                    point.cache_key,
                    Arc::new(wire::encode_point(point, result.nu, result.batched).into_bytes()),
                )
            })
            .collect();
        {
            let mut st = self.state.lock().unwrap();
            // Clear the job's claims first: point keys and job keys are
            // the same set, but the loop below would miss any key the
            // engine (impossibly) failed to echo back.
            for key in &job.keys {
                st.in_flight.remove(key);
            }
            for (key, fragment) in fragments {
                self.insert_cached(&mut st, key, fragment);
            }
        }
        self.done.notify_all();
        result.recycle(ws);
    }

    fn complete_err(&self, job: &Job, detail: String) {
        let detail = Arc::new(detail);
        {
            let mut st = self.state.lock().unwrap();
            // Bound the failure map: it only needs to outlive its
            // waiters, and a clear degrades to a retry.
            if st.failed.len() >= 4096 {
                st.failed.clear();
            }
            for key in &job.keys {
                st.in_flight.remove(key);
                st.failed.insert(*key, detail.clone());
            }
        }
        self.done.notify_all();
    }
}

/// Build the synthesized event stream summarising one engine run, so
/// `/metrics` can expose the standard [`TraceSummary`] digest without
/// probing (and perturbing) the batched hot loop.
fn run_summary(result: &SolveResult, pool_miss: u64) -> String {
    let mut events = vec![SolverEvent::BuildInfo {
        version: crate::PKG_VERSION,
        isa: qs_matvec::simd::active().name(),
        threads: std::thread::available_parallelism().map_or(1, |n| n.get()),
        checkpoint_format: FORMAT_VERSION,
    }];
    for point in &result.points {
        events.push(SolverEvent::Converged {
            iterations: point.solution.stats.iterations,
            matvecs: point.solution.stats.matvecs,
            residual: point.solution.stats.residual,
            lambda: point.solution.lambda,
        });
    }
    events.push(SolverEvent::SolveAllocation { bytes: pool_miss });
    TraceSummary::from_events(&events).to_string()
}

/// Answer a job through the fault-injection harness: one faulted solve
/// per rate (faults are per-operator, so chaos runs trade coalescing for
/// coverage — exactly what the fault smoke wants).
fn run_faulted(request: &SolveRequest, plan: &FaultPlan) -> Result<SolveResult, String> {
    let landscape = request.landscape.build().map_err(|e| e.to_string())?;
    let nu = landscape.nu();
    let config = SolverConfig {
        method: request.method,
        tol: request.tol,
        max_iter: request.max_iter,
        ..Default::default()
    };
    let mut points = Vec::with_capacity(request.ps.len());
    for &p in &request.ps {
        let op: Box<dyn LinearOperator> = Box::new(FaultyOp::new(Fmmp::new(nu, p), plan));
        let solution =
            solve_with_q_operator(op, landscape.as_ref(), &config).map_err(|e| e.to_string())?;
        points.push(PointResult {
            p,
            cache_key: request.cache_key(p),
            solution,
        });
    }
    Ok(SolveResult {
        nu,
        batched: false,
        points,
    })
}

/// The worker loop: each worker owns one long-lived [`Workspace`] and
/// drains jobs until the scheduler closes the channel.
pub(crate) fn worker_loop(
    scheduler: Arc<Scheduler>,
    jobs: Arc<Mutex<Receiver<Job>>>,
    fault_plan: Option<Arc<FaultPlan>>,
) {
    let mut ws = Workspace::new();
    loop {
        let job = match jobs.lock().unwrap().recv() {
            Ok(job) => job,
            Err(_) => return, // channel closed: shutdown
        };
        let columns = job.request.ps.len() as u64;
        ws.mark();
        let outcome = match &fault_plan {
            None => job.request.run_in(&mut ws).map_err(|e| e.to_string()),
            Some(plan) => run_faulted(&job.request, plan),
        };
        let pool_miss = ws.bytes_since_mark();
        scheduler.counters.record_engine_solve(columns, pool_miss);
        match outcome {
            Ok(result) => {
                *scheduler.last_summary.lock().unwrap() = run_summary(&result, pool_miss);
                scheduler.complete_ok(&job, result, &mut ws);
            }
            Err(detail) => scheduler.complete_err(&job, detail),
        }
    }
}
