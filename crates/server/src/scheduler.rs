//! The request scheduler: cross-request batching, the content-addressed
//! result cache, the eigenvector warm-start cache, and the worker pool
//! that owns the solver workspaces.
//!
//! # Coalescing contract
//!
//! Every requested point is content-addressed by
//! [`SolveRequest::cache_key`] and every request belongs to a *group*
//! ([`SolveRequest::group_key`]) — requests that differ at most in their
//! error rates. A point is answered one of three ways:
//!
//! 1. **cache hit** — the key is present; the stored encoded bytes are
//!    re-served verbatim (bit-identical repeats by construction);
//! 2. **join** — the key is already pending (in an open group or in
//!    flight on a worker); the connection just waits for it;
//! 3. **open** — the first connection to miss on a group opens it,
//!    waits *at most* one coalescing window for concurrent requests to
//!    pile their rates in, then dispatches the whole group as **one**
//!    job. The wait is a condition-variable deadline wait, not a sleep:
//!    the moment the group reaches the batch cap the opener is woken and
//!    dispatches immediately, so a full batch never pays the window. On
//!    a worker, the group's rates become columns of a single batched
//!    block power iteration, so `k` coalesced requests cost one engine
//!    solve.
//!
//! # Two caches, two contracts
//!
//! The **result cache** maps exact cache keys to encoded response bytes
//! under an LRU byte budget: repeats are bit-identical by construction.
//! The **warm-start cache** is deliberately looser: it keeps converged
//! eigenvectors keyed by `(landscape, method)` — *no tolerance, no error
//! rate* — and serves the nearest ones as start-vector seeds for new
//! solves (see `SolveRequest::run_seeded_in`). A warm-started solve
//! converges to the same residual tolerance but is **not** bit-identical
//! to a cold one, which is why the two caches are separate and why
//! `scheduling.warm_start` (excluded from the cache key) opts a request
//! out of the warm path without forking the result-cache address space.
//!
//! Workers are long-lived and each owns a [`Workspace`]: after the first
//! (pool-warming) solve of a given shape, steady-state serving draws
//! every solver buffer from the pool — the per-solve pool-miss byte
//! count on `/metrics` drops to zero.

use std::collections::{BTreeMap, HashMap, HashSet};
use std::sync::mpsc::{Receiver, Sender};
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

use qs_fault::{FaultPlan, FaultyOp};
use qs_matvec::{Fmmp, LinearOperator};
use qs_telemetry::{ServeCounters, SolverEvent, TraceSummary};
use quasispecies::{
    solve_with_q_operator, BlockSolveStats, PointResult, SolveRequest, SolveResult, SolverConfig,
    StartSeed, Workspace, FORMAT_VERSION,
};

use crate::wire;

/// How long a connection waits for its points before giving up. Far
/// above any smoke-scale solve; a stuck worker must not pin connections
/// forever.
const WAIT_TIMEOUT: Duration = Duration::from_secs(120);

/// Most warm-start seeds handed to a single job: the continuation ladder
/// interpolates over at most 3 anchors per column, so a handful of
/// well-spread cached vectors saturates the benefit while keeping the
/// per-job clone cost bounded.
const MAX_SEEDS_PER_JOB: usize = 16;

/// One dispatched unit of work: a coalesced group's request (rates
/// accumulated) plus the cache key of each rate.
pub(crate) struct Job {
    request: SolveRequest,
    keys: Vec<u64>,
}

/// One result-cache slot: the encoded fragment plus its LRU bookkeeping.
struct CacheEntry {
    fragment: Arc<Vec<u8>>,
    bytes: u64,
    /// Recency stamp; also the entry's key in `State::lru`.
    tick: u64,
}

/// One cached converged eigenvector, reusable as a warm-start seed for
/// nearby error rates under the same `(landscape, method)` key.
struct WarmEntry {
    p: f64,
    vector: Arc<Vec<f64>>,
    bytes: u64,
    /// Recency stamp; also the entry's key in `State::warm_lru`.
    tick: u64,
}

#[derive(Default)]
struct State {
    /// Content-addressed results: key → encoded point fragment.
    cache: HashMap<u64, CacheEntry>,
    /// Recency order for LRU eviction: tick → cache key.
    lru: BTreeMap<u64, u64>,
    /// Bytes currently held by `cache` (fragment payloads).
    cache_bytes: u64,
    /// Monotone recency clock shared by both caches.
    tick: u64,
    /// Keys currently being computed on a worker.
    in_flight: HashSet<u64>,
    /// Keys whose last computation failed, with the error detail.
    /// Entries are cleared when a new request retries the key.
    failed: HashMap<u64, Arc<String>>,
    /// Open coalescing groups, by group key.
    groups: HashMap<u64, Group>,
    /// Warm-start cache: `SolveRequest::warm_key` → converged vectors.
    warm: HashMap<u64, Vec<WarmEntry>>,
    /// Recency order for warm eviction: tick → (warm key, p bits).
    warm_lru: BTreeMap<u64, (u64, u64)>,
    /// Bytes currently held by `warm` (vector payloads).
    warm_bytes: u64,
}

impl State {
    /// Refresh a result-cache entry's recency.
    fn touch(&mut self, key: u64) {
        if let Some(entry) = self.cache.get_mut(&key) {
            self.lru.remove(&entry.tick);
            self.tick += 1;
            entry.tick = self.tick;
            self.lru.insert(entry.tick, key);
        }
    }

    /// Refresh a warm-cache entry's recency.
    fn touch_warm(&mut self, warm_key: u64, p_bits: u64) {
        let Some(entries) = self.warm.get_mut(&warm_key) else {
            return;
        };
        let Some(entry) = entries.iter_mut().find(|e| e.p.to_bits() == p_bits) else {
            return;
        };
        self.warm_lru.remove(&entry.tick);
        self.tick += 1;
        entry.tick = self.tick;
        self.warm_lru.insert(entry.tick, (warm_key, p_bits));
    }
}

struct Group {
    request: SolveRequest,
    keys: Vec<u64>,
}

/// What [`Scheduler::serve_points`] hands back for a fully answered
/// request.
pub(crate) struct ServedPoints {
    /// Encoded fragment per requested rate, in request order.
    pub fragments: Vec<Arc<Vec<u8>>>,
    /// Whether every point came straight from the cache.
    pub all_cached: bool,
}

/// Why a request could not be answered.
pub(crate) enum ServeError {
    /// The solve failed with this detail.
    Failed(Arc<String>),
    /// The wait timed out (worker wedged or result evicted mid-wait).
    TimedOut,
}

/// Sizing and timing knobs the scheduler is built with (resolved from
/// `ServerConfig` by the listener).
pub(crate) struct SchedulerOptions {
    /// Maximum coalescing window an opener waits before dispatch.
    pub coalesce: Duration,
    /// Result-cache entry-count cap (belt to the byte-budget braces).
    pub cache_capacity: usize,
    /// Result-cache byte budget; LRU entries are evicted past it.
    pub cache_bytes: u64,
    /// Coalesced-column count at which an open group dispatches
    /// immediately instead of waiting out the window.
    pub max_batch: usize,
    /// Warm-start cache byte budget; `0` disables warm serving.
    pub warm_cache_bytes: u64,
}

pub(crate) struct Scheduler {
    state: Mutex<State>,
    done: Condvar,
    /// Signalled when an open group reaches `max_batch` columns, so the
    /// opener dispatches without waiting out the coalescing window.
    batch_full: Condvar,
    job_tx: Mutex<Option<Sender<Job>>>,
    pub(crate) counters: Arc<ServeCounters>,
    coalesce: Duration,
    cache_capacity: usize,
    cache_budget: u64,
    max_batch: usize,
    warm_budget: u64,
    /// Rendered [`TraceSummary`] of the most recent engine run, for
    /// `/metrics`.
    pub(crate) last_summary: Mutex<String>,
}

impl Scheduler {
    pub(crate) fn new(options: SchedulerOptions, job_tx: Sender<Job>) -> Scheduler {
        Scheduler {
            state: Mutex::new(State::default()),
            done: Condvar::new(),
            batch_full: Condvar::new(),
            job_tx: Mutex::new(Some(job_tx)),
            counters: Arc::new(ServeCounters::new()),
            coalesce: options.coalesce,
            cache_capacity: options.cache_capacity.max(1),
            cache_budget: options.cache_bytes.max(1),
            max_batch: options.max_batch.max(1),
            warm_budget: options.warm_cache_bytes,
            last_summary: Mutex::new(String::new()),
        }
    }

    /// Drop the job sender so workers drain and exit.
    pub(crate) fn close(&self) {
        self.job_tx.lock().unwrap().take();
    }

    /// Answer every point of an (already validated) request, coalescing
    /// with concurrent requests and the cache as described in the module
    /// docs. Blocks until all points are served or failed.
    pub(crate) fn serve_points(&self, request: &SolveRequest) -> Result<ServedPoints, ServeError> {
        let keys: Vec<u64> = request.ps.iter().map(|&p| request.cache_key(p)).collect();
        let group_key = request.group_key();

        let mut hits = 0u64;
        let mut misses = 0u64;
        let mut opened = false;
        let mut filled = false;
        {
            let mut st = self.state.lock().unwrap();
            for (&p, &key) in request.ps.iter().zip(&keys) {
                if st.cache.contains_key(&key) {
                    hits += 1;
                    st.touch(key);
                    continue;
                }
                if st.in_flight.contains(&key) {
                    continue;
                }
                // A stale failure is retried, not re-served.
                st.failed.remove(&key);
                let group = st.groups.entry(group_key).or_insert_with(|| {
                    opened = true;
                    Group {
                        request: SolveRequest {
                            ps: Vec::new(),
                            ..request.clone()
                        },
                        keys: Vec::new(),
                    }
                });
                if !group.keys.contains(&key) {
                    group.request.ps.push(p);
                    group.keys.push(key);
                    if group.keys.len() >= self.max_batch {
                        filled = true;
                    }
                    misses += 1;
                }
            }
        }
        self.counters.record_cache_hits(hits);
        self.counters.record_cache_misses(misses);
        if filled && !opened {
            // This joiner topped the group up to the batch cap: wake the
            // opener so the full batch dispatches immediately.
            self.batch_full.notify_all();
        }

        if opened {
            // This connection opened the group: give concurrent requests
            // at most one window to pile in — but dispatch the moment
            // the group fills — then send the whole group as one job.
            let job = {
                let deadline = Instant::now() + self.coalesce;
                let mut st = self.state.lock().unwrap();
                loop {
                    let full = st
                        .groups
                        .get(&group_key)
                        .is_none_or(|g| g.keys.len() >= self.max_batch);
                    if full {
                        break;
                    }
                    let now = Instant::now();
                    if now >= deadline {
                        break;
                    }
                    let (guard, _) = self.batch_full.wait_timeout(st, deadline - now).unwrap();
                    st = guard;
                }
                st.groups.remove(&group_key).map(|group| {
                    for &key in &group.keys {
                        st.in_flight.insert(key);
                    }
                    Job {
                        request: group.request,
                        keys: group.keys,
                    }
                })
            };
            if let Some(job) = job {
                let sent = match &*self.job_tx.lock().unwrap() {
                    Some(tx) => tx.send(job).is_ok(),
                    None => false,
                };
                if !sent {
                    // Shutting down: un-mark so waiters fail fast.
                    let mut st = self.state.lock().unwrap();
                    let detail = Arc::new("server shutting down".to_string());
                    for &key in &keys {
                        if st.in_flight.remove(&key) {
                            st.failed.insert(key, detail.clone());
                        }
                    }
                    drop(st);
                    self.done.notify_all();
                }
            }
        }

        // Wait until every key is answered one way or the other.
        let deadline = Instant::now() + WAIT_TIMEOUT;
        let mut st = self.state.lock().unwrap();
        loop {
            let pending = keys
                .iter()
                .any(|k| !st.cache.contains_key(k) && !st.failed.contains_key(k));
            if !pending {
                break;
            }
            let now = Instant::now();
            if now >= deadline {
                return Err(ServeError::TimedOut);
            }
            let (guard, _) = self.done.wait_timeout(st, deadline - now).unwrap();
            st = guard;
        }
        let mut fragments = Vec::with_capacity(keys.len());
        for key in &keys {
            if let Some(detail) = st.failed.get(key) {
                return Err(ServeError::Failed(detail.clone()));
            }
            fragments.push(st.cache[key].fragment.clone());
        }
        Ok(ServedPoints {
            fragments,
            all_cached: misses == 0 && !opened,
        })
    }

    /// Insert one encoded fragment under LRU eviction: the cache honours
    /// both the entry-count cap and the byte budget, always evicting the
    /// least-recently-used entry first and never the one just inserted.
    fn insert_cached(&self, st: &mut State, key: u64, fragment: Arc<Vec<u8>>) {
        let bytes = fragment.len() as u64;
        if let Some(old) = st.cache.remove(&key) {
            st.lru.remove(&old.tick);
            st.cache_bytes -= old.bytes;
        }
        st.tick += 1;
        let tick = st.tick;
        st.cache.insert(
            key,
            CacheEntry {
                fragment,
                bytes,
                tick,
            },
        );
        st.lru.insert(tick, key);
        st.cache_bytes += bytes;
        while (st.cache.len() > self.cache_capacity || st.cache_bytes > self.cache_budget)
            && st.cache.len() > 1
        {
            let Some((_, old_key)) = st.lru.pop_first() else {
                break;
            };
            if let Some(old) = st.cache.remove(&old_key) {
                st.cache_bytes -= old.bytes;
            }
        }
        self.counters.set_cache_bytes(st.cache_bytes);
    }

    /// Collect warm-start seeds for a job from the eigenvector cache:
    /// the cached vectors nearest to the job's error rates, under the
    /// job's `(landscape, method)` key. Returns nothing when the warm
    /// cache is disabled or the request opted out.
    pub(crate) fn warm_seeds(&self, request: &SolveRequest) -> Vec<StartSeed> {
        if self.warm_budget == 0 || !request.scheduling.warm_start || request.ps.is_empty() {
            return Vec::new();
        }
        let warm_key = request.warm_key();
        let mut st = self.state.lock().unwrap();
        let Some(entries) = st.warm.get(&warm_key) else {
            return Vec::new();
        };
        // Rank each cached vector by its distance to the nearest
        // requested rate, keep the closest few.
        let mut ranked: Vec<(f64, u64)> = entries
            .iter()
            .map(|e| {
                let dist = request
                    .ps
                    .iter()
                    .map(|&p| (p - e.p).abs())
                    .fold(f64::INFINITY, f64::min);
                (dist, e.p.to_bits())
            })
            .collect();
        ranked.sort_by(|a, b| a.0.total_cmp(&b.0));
        ranked.truncate(MAX_SEEDS_PER_JOB);
        let mut seeds = Vec::with_capacity(ranked.len());
        for &(_, p_bits) in &ranked {
            if let Some(entry) = st
                .warm
                .get(&warm_key)
                .and_then(|es| es.iter().find(|e| e.p.to_bits() == p_bits))
            {
                seeds.push(StartSeed {
                    p: entry.p,
                    vector: entry.vector.clone(),
                });
            }
            st.touch_warm(warm_key, p_bits);
        }
        if !seeds.is_empty() {
            self.counters.record_warm_hit();
        }
        seeds
    }

    /// Store a finished job's converged eigenvectors in the warm-start
    /// cache (byte-budgeted, LRU-evicted). Only called for clean,
    /// warm-eligible runs — faulted solves and opted-out requests never
    /// populate the cache.
    pub(crate) fn store_warm(&self, request: &SolveRequest, result: &SolveResult) {
        if self.warm_budget == 0 || !request.scheduling.warm_start {
            return;
        }
        let warm_key = request.warm_key();
        let mut st = self.state.lock().unwrap();
        for point in &result.points {
            if !point.solution.stats.converged {
                continue;
            }
            let p_bits = point.p.to_bits();
            let bytes = (point.solution.concentrations.len() * size_of::<f64>()) as u64;
            if bytes > self.warm_budget {
                continue;
            }
            if let Some(entries) = st.warm.get_mut(&warm_key) {
                if let Some(pos) = entries.iter().position(|e| e.p.to_bits() == p_bits) {
                    let old = entries.remove(pos);
                    st.warm_lru.remove(&old.tick);
                    st.warm_bytes -= old.bytes;
                }
            }
            let vector = Arc::new(point.solution.concentrations.clone());
            st.tick += 1;
            let tick = st.tick;
            st.warm.entry(warm_key).or_default().push(WarmEntry {
                p: point.p,
                vector,
                bytes,
                tick,
            });
            st.warm_lru.insert(tick, (warm_key, p_bits));
            st.warm_bytes += bytes;
            while st.warm_bytes > self.warm_budget {
                let Some((_, (old_key, old_bits))) = st.warm_lru.pop_first() else {
                    break;
                };
                let mut freed = 0;
                let mut emptied = false;
                if let Some(entries) = st.warm.get_mut(&old_key) {
                    if let Some(pos) = entries.iter().position(|e| e.p.to_bits() == old_bits) {
                        freed = entries.remove(pos).bytes;
                    }
                    emptied = entries.is_empty();
                }
                st.warm_bytes -= freed;
                if emptied {
                    st.warm.remove(&old_key);
                }
            }
        }
        self.counters.set_warm_cache_bytes(st.warm_bytes);
    }

    fn complete_ok(&self, job: &Job, result: SolveResult, ws: &mut Workspace) {
        let fragments: Vec<(u64, Arc<Vec<u8>>)> = result
            .points
            .iter()
            .map(|point| {
                (
                    point.cache_key,
                    Arc::new(wire::encode_point(point, result.nu, result.batched).into_bytes()),
                )
            })
            .collect();
        {
            let mut st = self.state.lock().unwrap();
            // Clear the job's claims first: point keys and job keys are
            // the same set, but the loop below would miss any key the
            // engine (impossibly) failed to echo back.
            for key in &job.keys {
                st.in_flight.remove(key);
            }
            for (key, fragment) in fragments {
                self.insert_cached(&mut st, key, fragment);
            }
        }
        self.done.notify_all();
        result.recycle(ws);
    }

    fn complete_err(&self, job: &Job, detail: String) {
        let detail = Arc::new(detail);
        {
            let mut st = self.state.lock().unwrap();
            // Bound the failure map: it only needs to outlive its
            // waiters, and a clear degrades to a retry.
            if st.failed.len() >= 4096 {
                st.failed.clear();
            }
            for key in &job.keys {
                st.in_flight.remove(key);
                st.failed.insert(*key, detail.clone());
            }
        }
        self.done.notify_all();
    }
}

/// Build the synthesized event stream summarising one engine run, so
/// `/metrics` can expose the standard [`TraceSummary`] digest without
/// probing (and perturbing) the batched hot loop.
fn run_summary(result: &SolveResult, pool_miss: u64) -> String {
    let mut events = vec![SolverEvent::BuildInfo {
        version: crate::PKG_VERSION,
        isa: qs_matvec::simd::active().name(),
        threads: std::thread::available_parallelism().map_or(1, |n| n.get()),
        checkpoint_format: FORMAT_VERSION,
    }];
    for point in &result.points {
        events.push(SolverEvent::Converged {
            iterations: point.solution.stats.iterations,
            matvecs: point.solution.stats.matvecs,
            residual: point.solution.stats.residual,
            lambda: point.solution.lambda,
        });
        if let Some(warm) = &point.solution.stats.warm_start {
            events.push(SolverEvent::WarmStart {
                source: if warm.source == "cache" {
                    "cache"
                } else {
                    "continuation"
                },
                from_p: warm.from_p,
                iterations_saved: warm.iterations_saved,
            });
        }
    }
    if result.block.columns > 0 {
        // Block runs end with every column frozen, so live is 0 here.
        events.push(SolverEvent::BlockProgress {
            columns: result.block.columns as usize,
            live: 0,
            compactions: result.block.compactions,
            matvec_columns: result.block.matvec_columns,
            matvec_columns_saved: result.block.matvec_columns_saved,
        });
    }
    events.push(SolverEvent::SolveAllocation { bytes: pool_miss });
    TraceSummary::from_events(&events).to_string()
}

/// Answer a job through the fault-injection harness: one faulted solve
/// per rate (faults are per-operator, so chaos runs trade coalescing for
/// coverage — exactly what the fault smoke wants). Warm-start seeds are
/// deliberately ignored here: a faulted run must exercise the cold
/// recovery ladder, not a shortcut past it.
fn run_faulted(request: &SolveRequest, plan: &FaultPlan) -> Result<SolveResult, String> {
    let landscape = request.landscape.build().map_err(|e| e.to_string())?;
    let nu = landscape.nu();
    let config = SolverConfig {
        method: request.method,
        tol: request.tol,
        max_iter: request.max_iter,
        ..Default::default()
    };
    let mut points = Vec::with_capacity(request.ps.len());
    for &p in &request.ps {
        let op: Box<dyn LinearOperator> = Box::new(FaultyOp::new(Fmmp::new(nu, p), plan));
        let solution =
            solve_with_q_operator(op, landscape.as_ref(), &config).map_err(|e| e.to_string())?;
        points.push(PointResult {
            p,
            cache_key: request.cache_key(p),
            solution,
        });
    }
    Ok(SolveResult {
        nu,
        batched: false,
        block: BlockSolveStats::default(),
        points,
    })
}

/// The worker loop: each worker owns one long-lived [`Workspace`] and
/// drains jobs until the scheduler closes the channel.
pub(crate) fn worker_loop(
    scheduler: Arc<Scheduler>,
    jobs: Arc<Mutex<Receiver<Job>>>,
    fault_plan: Option<Arc<FaultPlan>>,
) {
    let mut ws = Workspace::new();
    loop {
        let job = match jobs.lock().unwrap().recv() {
            Ok(job) => job,
            Err(_) => return, // channel closed: shutdown
        };
        let columns = job.request.ps.len() as u64;
        let seeds = match &fault_plan {
            None => scheduler.warm_seeds(&job.request),
            Some(_) => Vec::new(),
        };
        ws.mark();
        let outcome = match &fault_plan {
            None => job
                .request
                .run_seeded_in(&seeds, &mut ws)
                .map_err(|e| e.to_string()),
            Some(plan) => run_faulted(&job.request, plan),
        };
        let pool_miss = ws.bytes_since_mark();
        scheduler.counters.record_engine_solve(columns, pool_miss);
        match outcome {
            Ok(result) => {
                let (warm_cols, warm_saved) = result
                    .points
                    .iter()
                    .filter_map(|p| p.solution.stats.warm_start.as_ref())
                    .fold((0u64, 0u64), |(c, s), w| {
                        (c + 1, s + w.iterations_saved as u64)
                    });
                if warm_cols > 0 {
                    scheduler
                        .counters
                        .record_warm_columns(warm_cols, warm_saved);
                }
                if result.block.columns > 0 {
                    scheduler.counters.record_block(
                        result.block.compactions,
                        result.block.matvec_columns,
                        result.block.matvec_columns_saved,
                    );
                }
                if fault_plan.is_none() {
                    scheduler.store_warm(&job.request, &result);
                }
                *scheduler.last_summary.lock().unwrap() = run_summary(&result, pool_miss);
                scheduler.complete_ok(&job, result, &mut ws);
            }
            Err(detail) => scheduler.complete_err(&job, detail),
        }
    }
}
