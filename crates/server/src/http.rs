//! A deliberately minimal HTTP/1.1 layer over [`std::net::TcpStream`]:
//! enough protocol to serve solve requests, metrics scrapes and a `curl`
//! session, and not a line more. One request per connection
//! (`Connection: close` semantics), bounded header and body sizes, and
//! explicit read timeouts — a malformed or stalled client costs one
//! connection thread for at most the timeout, never the process.

use std::io::{self, BufRead, BufReader, Read, Write};
use std::net::TcpStream;
use std::time::Duration;

/// Largest accepted request body. A ν = 20 tabulated landscape is
/// ~25 MiB of JSON; anything bigger should ship as a seeded spec.
pub const MAX_BODY_BYTES: usize = 64 << 20;

/// Largest accepted request head (request line + headers).
const MAX_HEAD_BYTES: usize = 16 << 10;

/// Per-connection socket read timeout.
pub const READ_TIMEOUT: Duration = Duration::from_secs(30);

/// One parsed HTTP request.
#[derive(Debug)]
pub struct Request {
    /// Uppercased method token, e.g. `"POST"`.
    pub method: String,
    /// Request target as sent, e.g. `"/solve"`.
    pub path: String,
    /// Raw body bytes (empty when no `Content-Length`).
    pub body: Vec<u8>,
}

/// Read one request from `stream`, or `None` when the peer closed the
/// connection before sending a request line.
pub fn read_request(stream: &mut TcpStream) -> io::Result<Option<Request>> {
    stream.set_read_timeout(Some(READ_TIMEOUT))?;
    let mut reader = BufReader::new(stream);

    let mut line = String::new();
    if reader.read_line(&mut line)? == 0 {
        return Ok(None);
    }
    let mut parts = line.split_whitespace();
    let (method, path) = match (parts.next(), parts.next()) {
        (Some(m), Some(p)) => (m.to_ascii_uppercase(), p.to_string()),
        _ => {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                "malformed request line",
            ))
        }
    };

    let mut content_length = 0usize;
    let mut head_bytes = line.len();
    loop {
        let mut header = String::new();
        if reader.read_line(&mut header)? == 0 {
            return Err(io::Error::new(
                io::ErrorKind::UnexpectedEof,
                "connection closed mid-headers",
            ));
        }
        head_bytes += header.len();
        if head_bytes > MAX_HEAD_BYTES {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                "request head too large",
            ));
        }
        let header = header.trim_end();
        if header.is_empty() {
            break;
        }
        if let Some((name, value)) = header.split_once(':') {
            if name.eq_ignore_ascii_case("content-length") {
                content_length = value.trim().parse().map_err(|_| {
                    io::Error::new(io::ErrorKind::InvalidData, "bad content-length")
                })?;
            }
        }
    }
    if content_length > MAX_BODY_BYTES {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            "request body too large",
        ));
    }

    let mut body = vec![0u8; content_length];
    reader.read_exact(&mut body)?;
    Ok(Some(Request { method, path, body }))
}

/// Write a complete response and flush. `extra_headers` are emitted
/// verbatim after the standard ones.
pub fn write_response(
    stream: &mut TcpStream,
    status: u16,
    reason: &str,
    content_type: &str,
    extra_headers: &[(&str, &str)],
    body: &[u8],
) -> io::Result<()> {
    let mut head = format!(
        "HTTP/1.1 {status} {reason}\r\ncontent-type: {content_type}\r\n\
         content-length: {}\r\nconnection: close\r\n",
        body.len()
    );
    for (name, value) in extra_headers {
        head.push_str(name);
        head.push_str(": ");
        head.push_str(value);
        head.push_str("\r\n");
    }
    head.push_str("\r\n");
    stream.write_all(head.as_bytes())?;
    stream.write_all(body)?;
    stream.flush()
}
