//! A deliberately minimal HTTP/1.1 layer over [`std::net::TcpStream`]:
//! enough protocol to serve solve requests, metrics scrapes and a `curl`
//! session, and not a line more. Connections are **persistent** by
//! default (HTTP/1.1 keep-alive): a [`Conn`] owns one buffered stream
//! and yields a sequence of requests, so a client can pipeline or
//! serially reuse one TCP connection instead of paying a handshake per
//! request. Bounded header and body sizes, explicit read timeouts, and
//! an idle timeout between requests — a malformed or stalled client
//! costs one connection thread for at most a timeout, never the
//! process.
//!
//! Pipelining note: requests are read and answered strictly in order on
//! the connection thread (depth-1 service). A client may still write
//! several requests back-to-back — they queue in the stream buffer and
//! are answered in sequence, which is what cuts per-request latency; the
//! server just never reorders or interleaves responses.

use std::io::{self, BufRead, BufReader, Read, Write};
use std::net::TcpStream;
use std::time::Duration;

/// Largest accepted request body. A ν = 20 tabulated landscape is
/// ~25 MiB of JSON; anything bigger should ship as a seeded spec.
pub const MAX_BODY_BYTES: usize = 64 << 20;

/// Largest accepted request head (request line + headers).
const MAX_HEAD_BYTES: usize = 16 << 10;

/// Per-connection socket read timeout while inside a request (headers
/// and body must keep arriving at least this often).
pub const READ_TIMEOUT: Duration = Duration::from_secs(30);

/// One parsed HTTP request.
#[derive(Debug)]
pub struct Request {
    /// Uppercased method token, e.g. `"POST"`.
    pub method: String,
    /// Request target as sent, e.g. `"/solve"`.
    pub path: String,
    /// Raw body bytes (empty when no `Content-Length`).
    pub body: Vec<u8>,
    /// Whether the connection should stay open after this request:
    /// HTTP/1.1 defaults to `true`, HTTP/1.0 to `false`, and an explicit
    /// `Connection: close` / `Connection: keep-alive` header overrides
    /// either way.
    pub keep_alive: bool,
}

/// One persistent client connection: a buffered stream that yields
/// requests until the peer closes, idles out, or asks to close.
///
/// The buffer lives across requests — with a throwaway per-request
/// `BufReader`, bytes of a pipelined follow-up request already pulled
/// into the buffer would be lost with it.
pub struct Conn {
    reader: BufReader<TcpStream>,
    idle_timeout: Duration,
}

impl Conn {
    /// Wrap an accepted stream. `idle_timeout` bounds how long the
    /// connection may sit between requests before being dropped.
    pub fn new(stream: TcpStream, idle_timeout: Duration) -> Conn {
        Conn {
            reader: BufReader::new(stream),
            idle_timeout,
        }
    }

    /// Read the next request, or `None` when the peer closed the
    /// connection or sat idle past the idle timeout before sending a
    /// request line. Errors mid-request (stalled body, oversized head)
    /// are real errors, not idleness.
    pub fn read_request(&mut self) -> io::Result<Option<Request>> {
        // Between requests the generous idle timeout applies; once the
        // first byte of a request line lands, the stricter in-request
        // timeout takes over.
        self.reader
            .get_ref()
            .set_read_timeout(Some(self.idle_timeout.max(Duration::from_millis(1))))?;
        let mut line = String::new();
        match self.reader.read_line(&mut line) {
            Ok(0) => return Ok(None),
            Ok(_) => {}
            Err(e)
                if line.is_empty()
                    && matches!(
                        e.kind(),
                        io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut
                    ) =>
            {
                // Idle past the keep-alive window with no request
                // started: a clean end of the connection's life.
                return Ok(None);
            }
            Err(e) => return Err(e),
        }
        self.reader.get_ref().set_read_timeout(Some(READ_TIMEOUT))?;

        let mut parts = line.split_whitespace();
        let (method, path, version) = match (parts.next(), parts.next(), parts.next()) {
            (Some(m), Some(p), v) => (
                m.to_ascii_uppercase(),
                p.to_string(),
                v.unwrap_or("HTTP/1.1").to_ascii_uppercase(),
            ),
            _ => {
                return Err(io::Error::new(
                    io::ErrorKind::InvalidData,
                    "malformed request line",
                ))
            }
        };
        let mut keep_alive = version != "HTTP/1.0";

        let mut content_length = 0usize;
        let mut head_bytes = line.len();
        loop {
            let mut header = String::new();
            if self.reader.read_line(&mut header)? == 0 {
                return Err(io::Error::new(
                    io::ErrorKind::UnexpectedEof,
                    "connection closed mid-headers",
                ));
            }
            head_bytes += header.len();
            if head_bytes > MAX_HEAD_BYTES {
                return Err(io::Error::new(
                    io::ErrorKind::InvalidData,
                    "request head too large",
                ));
            }
            let header = header.trim_end();
            if header.is_empty() {
                break;
            }
            if let Some((name, value)) = header.split_once(':') {
                if name.eq_ignore_ascii_case("content-length") {
                    content_length = value.trim().parse().map_err(|_| {
                        io::Error::new(io::ErrorKind::InvalidData, "bad content-length")
                    })?;
                } else if name.eq_ignore_ascii_case("connection") {
                    let value = value.trim();
                    if value.eq_ignore_ascii_case("close") {
                        keep_alive = false;
                    } else if value.eq_ignore_ascii_case("keep-alive") {
                        keep_alive = true;
                    }
                }
            }
        }
        if content_length > MAX_BODY_BYTES {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                "request body too large",
            ));
        }

        let mut body = vec![0u8; content_length];
        self.reader.read_exact(&mut body)?;
        Ok(Some(Request {
            method,
            path,
            body,
            keep_alive,
        }))
    }

    /// Write a complete response and flush. `extra_headers` are emitted
    /// verbatim after the standard ones; `keep_alive` selects the
    /// advertised connection disposition.
    pub fn write_response(
        &mut self,
        status: u16,
        reason: &str,
        content_type: &str,
        extra_headers: &[(&str, &str)],
        body: &[u8],
        keep_alive: bool,
    ) -> io::Result<()> {
        let connection = if keep_alive { "keep-alive" } else { "close" };
        let mut response = format!(
            "HTTP/1.1 {status} {reason}\r\ncontent-type: {content_type}\r\n\
             content-length: {}\r\nconnection: {connection}\r\n",
            body.len()
        )
        .into_bytes();
        for (name, value) in extra_headers {
            response.extend_from_slice(name.as_bytes());
            response.extend_from_slice(b": ");
            response.extend_from_slice(value.as_bytes());
            response.extend_from_slice(b"\r\n");
        }
        response.extend_from_slice(b"\r\n");
        // One write per response: head and body split across two
        // segments interacts with Nagle + delayed ACK on a keep-alive
        // connection and turns sub-millisecond responses into ~40 ms.
        response.extend_from_slice(body);
        let stream = self.reader.get_mut();
        stream.write_all(&response)?;
        stream.flush()
    }
}
