//! Binomial coefficients, exact and floating point.
//!
//! Error class `Γ_k` of the quasispecies model contains `C(ν, k)` sequences;
//! the reduced mutation matrix `QΓ` (paper Eq. 14) and the rescaling of the
//! reduced eigenvector back to cumulative concentrations
//! (`[Γ_k] = C(ν,k)·vΓ_k / Σ_j C(ν,j)·vΓ_j`) are built from these
//! coefficients. Chain lengths of interest reach `ν ≈ 100` (Section 5.2), so
//! both an exact `u128` path and a log-domain floating-point path are
//! provided.

/// Exact binomial coefficient `C(n, k)` in `u128`.
///
/// Returns 0 for `k > n`. Uses the multiplicative formula with interleaved
/// division, which is exact because each prefix product `C(n, j)` is an
/// integer.
///
/// # Panics
///
/// Panics on internal overflow of `u128` (first possible around
/// `C(132, 66)`); use [`binomial_f64`] or [`ln_binomial`] beyond that.
///
/// ```
/// assert_eq!(qs_bitseq::binomial(20, 10), 184_756);
/// assert_eq!(qs_bitseq::binomial(5, 7), 0);
/// ```
pub fn binomial(n: u32, k: u32) -> u128 {
    if k > n {
        return 0;
    }
    let k = k.min(n - k);
    let mut acc: u128 = 1;
    for j in 0..k as u128 {
        acc = acc
            .checked_mul(n as u128 - j)
            .expect("binomial coefficient overflows u128")
            / (j + 1);
    }
    acc
}

/// The full row `[C(n,0), …, C(n,n)]` of Pascal's triangle.
///
/// ```
/// assert_eq!(qs_bitseq::binomial_row(4), vec![1, 4, 6, 4, 1]);
/// ```
pub fn binomial_row(n: u32) -> Vec<u128> {
    let mut row = Vec::with_capacity(n as usize + 1);
    let mut c: u128 = 1;
    row.push(c);
    for k in 0..n {
        // C(n, k+1) = C(n, k) * (n-k) / (k+1), exact at every step.
        c = c
            .checked_mul((n - k) as u128)
            .expect("binomial row overflows u128")
            / (k as u128 + 1);
        row.push(c);
    }
    row
}

/// `ln C(n, k)`, accurate for arbitrary `n` via `ln Γ`.
///
/// Returns `-inf` for `k > n` (the coefficient is 0).
pub fn ln_binomial(n: u32, k: u32) -> f64 {
    if k > n {
        return f64::NEG_INFINITY;
    }
    ln_factorial(n) - ln_factorial(k) - ln_factorial(n - k)
}

/// `C(n, k)` as `f64`; exact for small `n`, `exp(ln C)` for large `n`.
///
/// ```
/// let x = qs_bitseq::binomial_f64(100, 50);
/// let rel = (x - 1.0089134454556417e29) / 1.0089134454556417e29;
/// assert!(rel.abs() < 1e-12);
/// ```
pub fn binomial_f64(n: u32, k: u32) -> f64 {
    if k > n {
        return 0.0;
    }
    if n <= 120 {
        binomial(n, k) as f64
    } else {
        ln_binomial(n, k).exp()
    }
}

/// `ln n!` via a table for small `n` and the Stirling series beyond.
pub fn ln_factorial(n: u32) -> f64 {
    // Table up to 255 built once; covers every call with n < 256 exactly
    // (to f64 rounding), which includes all chain lengths of interest.
    const TABLE_LEN: usize = 256;
    static TABLE: std::sync::OnceLock<[f64; TABLE_LEN]> = std::sync::OnceLock::new();
    let table = TABLE.get_or_init(|| {
        let mut t = [0.0; TABLE_LEN];
        let mut acc = 0.0f64;
        for (i, slot) in t.iter_mut().enumerate().skip(1) {
            acc += (i as f64).ln();
            *slot = acc;
        }
        t
    });
    if (n as usize) < TABLE_LEN {
        return table[n as usize];
    }
    // Stirling series with three correction terms: error < 1e-19 for n ≥ 256.
    let x = n as f64;
    let inv = 1.0 / x;
    x * x.ln() - x
        + 0.5 * (2.0 * std::f64::consts::PI * x).ln()
        + inv * (1.0 / 12.0 - inv * inv * (1.0 / 360.0 - inv * inv / 1260.0))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_values_match_pascal() {
        let mut prev = vec![1u128];
        for n in 1..40u32 {
            let mut row = vec![1u128];
            for k in 1..n {
                row.push(prev[k as usize - 1] + prev[k as usize]);
            }
            row.push(1);
            for (k, &expect) in row.iter().enumerate() {
                assert_eq!(binomial(n, k as u32), expect, "C({n},{k})");
            }
            assert_eq!(binomial_row(n), row);
            prev = row;
        }
    }

    #[test]
    fn symmetry() {
        for n in 0..60u32 {
            for k in 0..=n {
                assert_eq!(binomial(n, k), binomial(n, n - k));
            }
        }
    }

    #[test]
    fn row_sums_to_power_of_two() {
        for n in 0..100u32 {
            let sum: u128 = binomial_row(n).iter().sum();
            assert_eq!(sum, 1u128 << n);
        }
    }

    #[test]
    fn out_of_range_is_zero() {
        assert_eq!(binomial(3, 4), 0);
        assert_eq!(binomial_f64(3, 4), 0.0);
        assert_eq!(ln_binomial(3, 4), f64::NEG_INFINITY);
    }

    #[test]
    fn ln_binomial_matches_exact() {
        for n in [10u32, 50, 100, 120] {
            for k in 0..=n {
                let exact = (binomial(n, k) as f64).ln();
                let approx = ln_binomial(n, k);
                assert!(
                    (exact - approx).abs() <= 1e-10 * exact.abs().max(1.0),
                    "ln C({n},{k}): {exact} vs {approx}"
                );
            }
        }
    }

    #[test]
    fn f64_path_continuous_across_switchover() {
        // n = 120 uses the exact path, n = 121+ the log path; the Stirling
        // tail only kicks in past the table, but check consistency anyway.
        for n in [119u32, 120, 121, 130, 200, 300] {
            let k = n / 2;
            let via_ln = ln_binomial(n, k).exp();
            let direct = binomial_f64(n, k);
            let rel = ((via_ln - direct) / direct).abs();
            assert!(rel < 1e-12, "n={n}: rel={rel}");
        }
    }

    #[test]
    fn stirling_tail_accuracy() {
        // Compare the Stirling branch against direct accumulation.
        let mut acc = 0.0f64;
        for i in 1..=400u32 {
            acc += (i as f64).ln();
        }
        let rel = ((ln_factorial(400) - acc) / acc).abs();
        assert!(rel < 1e-14, "rel={rel}");
    }
}
