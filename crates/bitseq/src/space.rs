//! The binary sequence space `{0,1}^ν` and neighbourhood enumeration.
//!
//! The XOR-based sparse product `Xmvp(d_max)` of the paper's prior work
//! \[10\] evaluates `(Wv)_i = Σ_{j : d_H(i,j) ≤ d_max} Q_{i,j} f_j v_j` by
//! XOR-ing `i` with every mask of popcount `≤ d_max`; [`SeqSpace`] provides
//! those mask tables (grouped by weight, so the per-weight factor
//! `QΓ_k = p^k (1-p)^{ν-k}` can be hoisted out of the inner loop).

use crate::binom::binomial;
use crate::error_class::ErrorClassIter;

/// The sequence space `{0,1}^ν` for a fixed chain length `ν`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SeqSpace {
    nu: u32,
}

impl SeqSpace {
    /// Create the sequence space for chain length `nu`.
    ///
    /// # Panics
    ///
    /// Panics if `nu` exceeds [`crate::MAX_CHAIN_LENGTH`] or is 0.
    pub fn new(nu: u32) -> Self {
        assert!(nu >= 1, "chain length must be at least 1");
        assert!(
            nu <= crate::MAX_CHAIN_LENGTH,
            "chain length {nu} exceeds supported maximum"
        );
        SeqSpace { nu }
    }

    /// Chain length `ν`.
    #[inline]
    pub fn nu(&self) -> u32 {
        self.nu
    }

    /// Dimension `N = 2^ν`.
    #[inline]
    pub fn len(&self) -> usize {
        1usize << self.nu
    }

    /// Sequence spaces are never empty (`N ≥ 2`).
    #[inline]
    pub fn is_empty(&self) -> bool {
        false
    }

    /// All XOR masks of popcount exactly `k`, in increasing order.
    pub fn masks_of_weight(&self, k: u32) -> Vec<u64> {
        ErrorClassIter::new(self.nu, k).collect()
    }

    /// Mask table for `Xmvp(d_max)`: for each weight `k = 0..=d_max`, the
    /// masks of that weight. `Σ_k |masks[k]| = Σ_k C(ν,k)` entries total.
    ///
    /// # Panics
    ///
    /// Panics if `d_max > ν` or if the table would not fit in memory
    /// (`Σ C(ν,k)` must fit `usize`).
    pub fn mask_table(&self, d_max: u32) -> Vec<Vec<u64>> {
        assert!(
            d_max <= self.nu,
            "d_max {d_max} exceeds chain length {}",
            self.nu
        );
        (0..=d_max).map(|k| self.masks_of_weight(k)).collect()
    }

    /// Number of sequences within Hamming distance `d_max` of any fixed
    /// sequence: `Σ_{k=0}^{d_max} C(ν, k)` (the cost factor per component of
    /// `Xmvp(d_max)`).
    pub fn ball_size(&self, d_max: u32) -> u128 {
        (0..=d_max.min(self.nu)).map(|k| binomial(self.nu, k)).sum()
    }

    /// Iterate over the Hamming ball of radius `d_max` around `i`
    /// (including `i` itself), grouped by increasing distance.
    pub fn ball(&self, i: u64, d_max: u32) -> impl Iterator<Item = u64> + '_ {
        (0..=d_max.min(self.nu))
            .flat_map(move |k| ErrorClassIter::new(self.nu, k).map(move |m| i ^ m))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hamming::hamming;

    #[test]
    fn mask_table_counts() {
        let sp = SeqSpace::new(10);
        let table = sp.mask_table(4);
        assert_eq!(table.len(), 5);
        for (k, masks) in table.iter().enumerate() {
            assert_eq!(masks.len() as u128, binomial(10, k as u32));
            assert!(masks.iter().all(|m| m.count_ones() == k as u32));
        }
    }

    #[test]
    fn ball_size_full_radius_is_n() {
        for nu in 1..=16u32 {
            let sp = SeqSpace::new(nu);
            assert_eq!(sp.ball_size(nu), 1u128 << nu);
        }
    }

    #[test]
    fn ball_members_are_within_distance() {
        let sp = SeqSpace::new(8);
        let center = 0b1011_0010u64;
        let members: Vec<u64> = sp.ball(center, 3).collect();
        assert_eq!(members.len() as u128, sp.ball_size(3));
        for &m in &members {
            assert!(hamming(center, m) <= 3);
        }
        // Distinct members.
        let mut sorted = members.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), members.len());
    }

    #[test]
    fn ball_radius_zero_is_center() {
        let sp = SeqSpace::new(5);
        let members: Vec<u64> = sp.ball(17, 0).collect();
        assert_eq!(members, vec![17]);
    }

    #[test]
    #[should_panic(expected = "exceeds chain length")]
    fn mask_table_rejects_large_dmax() {
        let _ = SeqSpace::new(4).mask_table(5);
    }

    #[test]
    #[should_panic(expected = "at least 1")]
    fn rejects_zero_chain_length() {
        let _ = SeqSpace::new(0);
    }
}
