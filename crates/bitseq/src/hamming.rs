//! Hamming distances and weights on integer-encoded binary sequences.
//!
//! The Hamming distance `d_H(X_i, X_j)` is the minimal number of point
//! mutations transforming sequence `X_i` into `X_j`; on integer encodings it
//! is the popcount of the XOR (the core trick behind the `Xmvp` product of
//! the paper's prior work \[10\]).

/// Hamming weight `d_H(X_i, X_0)` of sequence `i`, i.e. its popcount.
///
/// ```
/// assert_eq!(qs_bitseq::weight(0b1011), 3);
/// ```
#[inline(always)]
pub fn weight(i: u64) -> u32 {
    i.count_ones()
}

/// Hamming distance `d_H(X_a, X_b)` between two sequences.
///
/// ```
/// assert_eq!(qs_bitseq::hamming(0b1100, 0b1010), 2);
/// ```
#[inline(always)]
pub fn hamming(a: u64, b: u64) -> u32 {
    (a ^ b).count_ones()
}

/// The permutation `σ_{i,i'}` of paper Section 5.1: maps the set bits of `i`
/// onto the set bits of `i'` (and vice versa), as a bit-transposition
/// product. Requires `weight(i) == weight(i')`.
///
/// Applying it to `j` preserves Hamming weights and error classes
/// (properties (I)–(IV) in the paper), which is the engine of Lemma 2.
///
/// # Panics
///
/// Panics if `weight(i) != weight(i_prime)`.
pub fn sigma(i: u64, i_prime: u64, j: u64) -> u64 {
    assert_eq!(
        weight(i),
        weight(i_prime),
        "σ_{{i,i'}} requires d_H(i,0) == d_H(i',0)"
    );
    // The bits where i and i' agree are fixed points; pair up the bits set
    // only in i with the bits set only in i' (in ascending order) and swap
    // each pair, exactly the cycle product (β⁰_i β⁰_i')(β¹_i β¹_i')….
    let mut only_i = i & !i_prime;
    let mut only_ip = i_prime & !i;
    let mut out = j;
    while only_i != 0 {
        let a = only_i.trailing_zeros();
        let b = only_ip.trailing_zeros();
        only_i &= only_i - 1;
        only_ip &= only_ip - 1;
        // Swap bits a and b of `out`.
        let bit_a = out >> a & 1;
        let bit_b = out >> b & 1;
        if bit_a != bit_b {
            out ^= (1 << a) | (1 << b);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn weight_matches_naive() {
        for i in 0..256u64 {
            let naive = (0..8).filter(|s| i >> s & 1 == 1).count() as u32;
            assert_eq!(weight(i), naive);
        }
    }

    #[test]
    fn hamming_is_metric_on_small_space() {
        let n = 32u64;
        for a in 0..n {
            assert_eq!(hamming(a, a), 0);
            for b in 0..n {
                assert_eq!(hamming(a, b), hamming(b, a));
                for c in 0..n {
                    assert!(hamming(a, c) <= hamming(a, b) + hamming(b, c));
                }
            }
        }
    }

    #[test]
    fn sigma_maps_i_to_i_prime() {
        // Property (III): σ_{i,i'}(i) = i'.
        for i in 0..64u64 {
            for ip in 0..64u64 {
                if weight(i) == weight(ip) {
                    assert_eq!(sigma(i, ip, i), ip);
                    assert_eq!(sigma(i, ip, ip), i);
                }
            }
        }
    }

    #[test]
    fn sigma_preserves_weight_and_distance() {
        // Properties (I) and (IV) over an exhaustive small space.
        let (i, ip) = (0b001011u64, 0b110001u64);
        for j in 0..64u64 {
            let sj = sigma(i, ip, j);
            assert_eq!(weight(j), weight(sj), "property (I) failed at j={j}");
            assert_eq!(
                hamming(i, j),
                hamming(ip, sj),
                "property (IV) failed at j={j}"
            );
        }
    }

    #[test]
    fn sigma_is_involution() {
        let (i, ip) = (0b0111u64, 0b1110u64);
        for j in 0..16u64 {
            assert_eq!(sigma(i, ip, sigma(i, ip, j)), j);
        }
    }

    #[test]
    #[should_panic(expected = "requires d_H")]
    fn sigma_rejects_mismatched_weights() {
        let _ = sigma(0b1, 0b11, 0);
    }
}
