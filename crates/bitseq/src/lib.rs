//! Binary-sequence utilities underlying the quasispecies model.
//!
//! In Eigen's quasispecies model every RNA molecule of chain length `ν` is
//! encoded over a binary alphabet, so the species `X_i` for `0 ≤ i < N = 2^ν`
//! is identified with the `ν`-bit binary representation of the integer `i`.
//! This crate provides the combinatorial substrate every other crate builds
//! on:
//!
//! * [`hamming`](mod@hamming) — Hamming distances and weights on integer-encoded
//!   sequences,
//! * [`gray`](mod@gray) — Gray-code permutations (paper footnote 2: reordering by the
//!   Gray code makes the first off-diagonals of `Q` constant),
//! * [`binom`] — exact and floating-point binomial coefficients,
//! * [`error_class`] — iteration over the error classes
//!   `Γ_k = { j : d_H(X_j, X_0) = k }` and the generalised classes `Γ_{k,i}`,
//! * [`space`] — the sequence space `{0,1}^ν` itself, with neighbourhood
//!   enumeration used by the XOR-based sparse product `Xmvp(d_max)`.
//!
//! All sequences are plain `u64` integers; no allocation is required for any
//! of the per-sequence operations.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod binom;
pub mod error_class;
pub mod gray;
pub mod hamming;
pub mod space;

pub use binom::{binomial, binomial_f64, binomial_row, ln_binomial};
pub use error_class::{accumulate_classes, class_of, class_size, representative, ErrorClassIter};
pub use gray::{gray, gray_inverse, GrayIter};
pub use hamming::{hamming, weight};
pub use space::SeqSpace;

/// Maximum chain length for which `N = 2^ν` fits the address space assumed
/// throughout the workspace (indices are `usize`, vectors are materialised).
pub const MAX_CHAIN_LENGTH: u32 = 48;

/// The dimension `N = 2^ν` of the sequence space for chain length `ν`.
///
/// # Panics
///
/// Panics if `nu > MAX_CHAIN_LENGTH`.
///
/// ```
/// assert_eq!(qs_bitseq::dimension(10), 1024);
/// ```
#[inline]
pub fn dimension(nu: u32) -> usize {
    assert!(
        nu <= MAX_CHAIN_LENGTH,
        "chain length {nu} exceeds supported maximum {MAX_CHAIN_LENGTH}"
    );
    1usize << nu
}

/// Render sequence `i` as its `ν`-bit binary string, most significant bit
/// first (site `ν-1` first).
///
/// ```
/// assert_eq!(qs_bitseq::to_bit_string(5, 4), "0101");
/// ```
pub fn to_bit_string(i: u64, nu: u32) -> String {
    (0..nu)
        .rev()
        .map(|s| if i >> s & 1 == 1 { '1' } else { '0' })
        .collect()
}

/// Parse a binary string (MSB first) back into the integer encoding.
///
/// Returns `None` on any character other than `'0'`/`'1'` or on strings
/// longer than 64 bits.
///
/// ```
/// assert_eq!(qs_bitseq::from_bit_string("0101"), Some(5));
/// assert_eq!(qs_bitseq::from_bit_string("012"), None);
/// ```
pub fn from_bit_string(s: &str) -> Option<u64> {
    if s.len() > 64 {
        return None;
    }
    let mut v = 0u64;
    for c in s.chars() {
        v = (v << 1)
            | match c {
                '0' => 0,
                '1' => 1,
                _ => return None,
            };
    }
    Some(v)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dimension_small_values() {
        assert_eq!(dimension(0), 1);
        assert_eq!(dimension(1), 2);
        assert_eq!(dimension(20), 1 << 20);
    }

    #[test]
    #[should_panic(expected = "exceeds supported maximum")]
    fn dimension_rejects_huge_nu() {
        let _ = dimension(MAX_CHAIN_LENGTH + 1);
    }

    #[test]
    fn bit_string_round_trip() {
        for i in 0..64u64 {
            let s = to_bit_string(i, 6);
            assert_eq!(s.len(), 6);
            assert_eq!(from_bit_string(&s), Some(i));
        }
    }

    #[test]
    fn bit_string_rejects_garbage() {
        assert_eq!(from_bit_string("01x"), None);
        let too_long = "0".repeat(65);
        assert_eq!(from_bit_string(&too_long), None);
    }

    #[test]
    fn bit_string_zero_length() {
        assert_eq!(to_bit_string(0, 0), "");
        assert_eq!(from_bit_string(""), Some(0));
    }
}
