//! Gray-code permutations of the sequence space.
//!
//! Paper footnote 2 observes that permuting the sequences by the Gray code
//! yields a mutation matrix `Q` whose first off-diagonals are constant,
//! because consecutive Gray codewords differ in exactly one bit
//! (`d_H(X_{g(i)}, X_{g(i+1)}) = 1`). The permutation is occasionally useful
//! for bandwidth-oriented orderings and is provided here together with its
//! inverse.

/// The `i`-th binary-reflected Gray codeword.
///
/// ```
/// assert_eq!(qs_bitseq::gray(0), 0);
/// assert_eq!(qs_bitseq::gray(1), 1);
/// assert_eq!(qs_bitseq::gray(2), 3);
/// assert_eq!(qs_bitseq::gray(3), 2);
/// ```
#[inline(always)]
pub fn gray(i: u64) -> u64 {
    i ^ (i >> 1)
}

/// Inverse of [`gray`]: the rank of codeword `g` in the Gray sequence.
///
/// ```
/// for i in 0..1000u64 {
///     assert_eq!(qs_bitseq::gray_inverse(qs_bitseq::gray(i)), i);
/// }
/// ```
#[inline]
pub fn gray_inverse(g: u64) -> u64 {
    let mut i = g;
    let mut shift = 1u32;
    while shift < 64 {
        i ^= i >> shift;
        shift <<= 1;
    }
    i
}

/// Iterator over the Gray sequence of all `2^ν` codewords, in rank order.
#[derive(Debug, Clone)]
pub struct GrayIter {
    next: u64,
    end: u64,
}

impl GrayIter {
    /// Gray sequence for chain length `nu` (yields `2^nu` codewords).
    ///
    /// # Panics
    ///
    /// Panics if `nu > 63`.
    pub fn new(nu: u32) -> Self {
        assert!(nu <= 63, "GrayIter supports at most 63-bit spaces");
        GrayIter {
            next: 0,
            end: 1u64 << nu,
        }
    }
}

impl Iterator for GrayIter {
    type Item = u64;

    #[inline]
    fn next(&mut self) -> Option<u64> {
        if self.next == self.end {
            return None;
        }
        let g = gray(self.next);
        self.next += 1;
        Some(g)
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let rem = (self.end - self.next) as usize;
        (rem, Some(rem))
    }
}

impl ExactSizeIterator for GrayIter {}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hamming::hamming;

    #[test]
    fn gray_round_trip() {
        for i in 0..(1u64 << 12) {
            assert_eq!(gray_inverse(gray(i)), i);
        }
    }

    #[test]
    fn consecutive_codewords_differ_in_one_bit() {
        let codes: Vec<u64> = GrayIter::new(10).collect();
        assert_eq!(codes.len(), 1024);
        for w in codes.windows(2) {
            assert_eq!(hamming(w[0], w[1]), 1);
        }
    }

    #[test]
    fn gray_is_a_permutation() {
        let mut seen = vec![false; 1 << 10];
        for g in GrayIter::new(10) {
            assert!(!seen[g as usize], "duplicate codeword {g}");
            seen[g as usize] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn gray_iter_len() {
        let it = GrayIter::new(8);
        assert_eq!(it.len(), 256);
    }

    #[test]
    fn gray_wraps_cyclically() {
        // The last codeword also differs from the first in exactly one bit.
        let nu = 9;
        let last = gray((1u64 << nu) - 1);
        assert_eq!(hamming(last, gray(0)), 1);
    }
}
