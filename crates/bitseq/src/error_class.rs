//! Error classes `Γ_{k,i}` of the quasispecies model.
//!
//! The error class `Γ_{k,i}` (paper Eq. 6) contains all sequences at Hamming
//! distance `k` from the fixed sequence `i`; `Γ_k := Γ_{k,0}` are the classes
//! with respect to the master sequence. `Γ_k` contains `C(ν, k)` sequences.
//! Cumulative concentrations `[Γ_k] = Σ_{j∈Γ_k} x_j` of the stationary
//! distribution are the quantities plotted in the paper's Figure 1.
//!
//! Iteration over a class uses Gosper's hack to enumerate all `ν`-bit
//! integers of popcount `k` in increasing order without allocation.

use crate::binom::binomial;

/// The error class index of sequence `j` relative to the master sequence:
/// `class_of(j) = d_H(X_j, X_0) = popcount(j)`.
#[inline(always)]
pub fn class_of(j: u64) -> u32 {
    j.count_ones()
}

/// Number of sequences in `Γ_k` for chain length `nu`: `C(ν, k)`.
///
/// ```
/// assert_eq!(qs_bitseq::class_size(20, 10), 184_756);
/// ```
#[inline]
pub fn class_size(nu: u32, k: u32) -> u128 {
    binomial(nu, k)
}

/// The canonical representative `2^k − 1` of `Γ_k` (the paper's "natural and
/// most obvious" choice `{2^k − 1 | 0 ≤ k ≤ ν}`).
///
/// ```
/// assert_eq!(qs_bitseq::representative(3), 0b111);
/// ```
#[inline(always)]
pub fn representative(k: u32) -> u64 {
    if k == 0 {
        0
    } else {
        (1u64 << k) - 1
    }
}

/// Iterator over all sequences of `Γ_{k}` (popcount `k` within `ν` bits), in
/// increasing integer order, via Gosper's hack.
#[derive(Debug, Clone)]
pub struct ErrorClassIter {
    next: Option<u64>,
    limit: u64,
}

impl ErrorClassIter {
    /// Iterate over `Γ_k` in the `ν`-bit sequence space.
    ///
    /// # Panics
    ///
    /// Panics if `nu > 63`.
    pub fn new(nu: u32, k: u32) -> Self {
        assert!(nu <= 63, "ErrorClassIter supports at most 63-bit spaces");
        let limit = 1u64 << nu;
        let next = if k > nu {
            None
        } else {
            Some(representative(k))
        };
        ErrorClassIter { next, limit }
    }
}

impl Iterator for ErrorClassIter {
    type Item = u64;

    fn next(&mut self) -> Option<u64> {
        let cur = self.next?;
        debug_assert!(cur < self.limit);
        self.next = if cur == 0 {
            None // Γ_0 = {0} only.
        } else {
            // Gosper's hack: next larger integer with the same popcount.
            let c = cur & cur.wrapping_neg();
            let r = cur + c;
            let succ = (((r ^ cur) >> 2) / c) | r;
            (succ < self.limit).then_some(succ)
        };
        Some(cur)
    }
}

/// Accumulate a concentration vector `x` (length `2^ν`) into cumulative
/// error-class concentrations `[Γ_0], …, [Γ_ν]`.
///
/// # Panics
///
/// Panics if `x.len()` is not a power of two.
pub fn accumulate_classes(x: &[f64]) -> Vec<f64> {
    assert!(
        x.len().is_power_of_two(),
        "length must be a power of two (2^ν)"
    );
    let nu = x.len().trailing_zeros();
    let mut gamma = vec![0.0f64; nu as usize + 1];
    // Neumaier-compensated accumulation per class keeps the Figure 1 curves
    // accurate for large ν where classes contain millions of terms.
    let mut comp = vec![0.0f64; nu as usize + 1];
    for (j, &xj) in x.iter().enumerate() {
        let k = (j as u64).count_ones() as usize;
        let s = gamma[k] + xj;
        comp[k] += if gamma[k].abs() >= xj.abs() {
            (gamma[k] - s) + xj
        } else {
            (xj - s) + gamma[k]
        };
        gamma[k] = s;
    }
    for (g, c) in gamma.iter_mut().zip(comp) {
        *g += c;
    }
    gamma
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn iterates_exactly_the_class() {
        for nu in 1..=10u32 {
            for k in 0..=nu {
                let members: Vec<u64> = ErrorClassIter::new(nu, k).collect();
                assert_eq!(members.len() as u128, class_size(nu, k));
                for &m in &members {
                    assert_eq!(class_of(m), k);
                    assert!(m < 1 << nu);
                }
                // Strictly increasing, hence distinct.
                for w in members.windows(2) {
                    assert!(w[0] < w[1]);
                }
            }
        }
    }

    #[test]
    fn classes_partition_the_space() {
        let nu = 8u32;
        let mut seen = vec![false; 1 << nu];
        for k in 0..=nu {
            for m in ErrorClassIter::new(nu, k) {
                assert!(!seen[m as usize]);
                seen[m as usize] = true;
            }
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn k_greater_than_nu_is_empty() {
        assert_eq!(ErrorClassIter::new(4, 5).count(), 0);
    }

    #[test]
    fn gamma_zero_is_master_only() {
        let members: Vec<u64> = ErrorClassIter::new(6, 0).collect();
        assert_eq!(members, vec![0]);
    }

    #[test]
    fn representative_is_member() {
        for nu in 1..=12u32 {
            for k in 0..=nu {
                let r = representative(k);
                assert_eq!(class_of(r), k);
                assert!(r < 1 << nu);
            }
        }
    }

    #[test]
    fn accumulate_uniform_gives_binomial_fractions() {
        let nu = 10u32;
        let n = 1usize << nu;
        let x = vec![1.0 / n as f64; n];
        let gamma = accumulate_classes(&x);
        for (k, &g) in gamma.iter().enumerate() {
            let expect = class_size(nu, k as u32) as f64 / n as f64;
            assert!((g - expect).abs() < 1e-14, "k={k}: {g} vs {expect}");
        }
        let total: f64 = gamma.iter().sum();
        assert!((total - 1.0).abs() < 1e-12);
    }

    #[test]
    fn accumulate_delta_at_master() {
        let mut x = vec![0.0; 16];
        x[0] = 1.0;
        let gamma = accumulate_classes(&x);
        assert_eq!(gamma[0], 1.0);
        assert!(gamma[1..].iter().all(|&g| g == 0.0));
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn accumulate_rejects_non_power_of_two() {
        let _ = accumulate_classes(&[0.0; 3]);
    }
}
