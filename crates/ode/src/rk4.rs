//! Classic fixed-step fourth-order Runge–Kutta.

use crate::flow::Flow;

/// Options for [`integrate_rk4`].
#[derive(Debug, Clone, Copy)]
pub struct Rk4Options {
    /// Step size `h`.
    pub step: f64,
    /// Integration horizon (number of steps = `⌈t_end/h⌉`).
    pub t_end: f64,
}

impl Default for Rk4Options {
    fn default() -> Self {
        Rk4Options {
            step: 0.01,
            t_end: 1.0,
        }
    }
}

/// A step observer: called after every accepted step with `(t, x)`.
pub type Observer<'a> = &'a mut dyn FnMut(f64, &[f64]);

/// Integrate `dx/dt = F(x)` from `x0` over `[0, t_end]` with fixed-step
/// RK4; returns the final state. An optional `observer` is called after
/// every step with `(t, x)`.
///
/// # Panics
///
/// Panics on non-positive `step`/`t_end` or a dimension mismatch.
pub fn integrate_rk4<F: Flow + ?Sized>(
    flow: &F,
    x0: &[f64],
    opts: &Rk4Options,
    mut observer: Option<Observer<'_>>,
) -> Vec<f64> {
    assert!(opts.step > 0.0, "step must be positive");
    assert!(opts.t_end > 0.0, "t_end must be positive");
    assert_eq!(x0.len(), flow.len(), "integrate_rk4: state length mismatch");
    let n = flow.len();
    let mut x = x0.to_vec();
    let mut k1 = vec![0.0; n];
    let mut k2 = vec![0.0; n];
    let mut k3 = vec![0.0; n];
    let mut k4 = vec![0.0; n];
    let mut tmp = vec![0.0; n];

    let steps = (opts.t_end / opts.step).ceil() as usize;
    let mut t = 0.0;
    for s in 0..steps {
        // Shrink the last step to land exactly on t_end.
        let h = (opts.t_end - t).min(opts.step);
        flow.deriv(&x, &mut k1);
        stage(&x, &k1, 0.5 * h, &mut tmp);
        flow.deriv(&tmp, &mut k2);
        stage(&x, &k2, 0.5 * h, &mut tmp);
        flow.deriv(&tmp, &mut k3);
        stage(&x, &k3, h, &mut tmp);
        flow.deriv(&tmp, &mut k4);
        for i in 0..n {
            x[i] += h / 6.0 * (k1[i] + 2.0 * k2[i] + 2.0 * k3[i] + k4[i]);
        }
        t += h;
        let _ = s;
        if let Some(obs) = observer.as_deref_mut() {
            obs(t, &x);
        }
    }
    x
}

#[inline]
fn stage(x: &[f64], k: &[f64], h: f64, out: &mut [f64]) {
    for ((o, &xi), &ki) in out.iter_mut().zip(x).zip(k) {
        *o = xi + h * ki;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// dx/dt = −x on each component: analytic solution x₀·e^{−t}.
    struct Decay(usize);
    impl Flow for Decay {
        fn len(&self) -> usize {
            self.0
        }
        fn deriv(&self, x: &[f64], out: &mut [f64]) {
            for (o, &xi) in out.iter_mut().zip(x) {
                *o = -xi;
            }
        }
    }

    /// Harmonic oscillator (x, v): energy-conserving reference.
    struct Oscillator;
    impl Flow for Oscillator {
        fn len(&self) -> usize {
            2
        }
        fn deriv(&self, x: &[f64], out: &mut [f64]) {
            out[0] = x[1];
            out[1] = -x[0];
        }
    }

    #[test]
    fn exponential_decay_accuracy() {
        let x = integrate_rk4(
            &Decay(3),
            &[1.0, 2.0, -0.5],
            &Rk4Options {
                step: 0.01,
                t_end: 1.0,
            },
            None,
        );
        let e = (-1.0f64).exp();
        assert!((x[0] - e).abs() < 1e-9);
        assert!((x[1] - 2.0 * e).abs() < 1e-9);
        assert!((x[2] + 0.5 * e).abs() < 1e-9);
    }

    #[test]
    fn fourth_order_convergence() {
        // Halving h must shrink the error by ~2⁴.
        let exact = (-1.0f64).exp();
        let err = |h: f64| {
            let x = integrate_rk4(
                &Decay(1),
                &[1.0],
                &Rk4Options {
                    step: h,
                    t_end: 1.0,
                },
                None,
            );
            (x[0] - exact).abs()
        };
        let e1 = err(0.1);
        let e2 = err(0.05);
        let rate = (e1 / e2).log2();
        assert!((3.5..4.5).contains(&rate), "observed order {rate}");
    }

    #[test]
    fn oscillator_phase_accuracy() {
        // One full period: x returns to the start.
        let t = 2.0 * std::f64::consts::PI;
        let x = integrate_rk4(
            &Oscillator,
            &[1.0, 0.0],
            &Rk4Options {
                step: 1e-3,
                t_end: t,
            },
            None,
        );
        assert!((x[0] - 1.0).abs() < 1e-9);
        assert!(x[1].abs() < 1e-9);
    }

    #[test]
    fn observer_sees_every_step() {
        let mut count = 0usize;
        let mut last_t = 0.0;
        integrate_rk4(
            &Decay(1),
            &[1.0],
            &Rk4Options {
                step: 0.25,
                t_end: 1.0,
            },
            Some(&mut |t, _x| {
                count += 1;
                last_t = t;
            }),
        );
        assert_eq!(count, 4);
        assert!((last_t - 1.0).abs() < 1e-12);
    }

    #[test]
    fn partial_final_step_lands_on_t_end() {
        let mut last_t = 0.0;
        integrate_rk4(
            &Decay(1),
            &[1.0],
            &Rk4Options {
                step: 0.3,
                t_end: 1.0,
            },
            Some(&mut |t, _x| last_t = t),
        );
        assert!((last_t - 1.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "step must be positive")]
    fn rejects_bad_step() {
        let _ = integrate_rk4(
            &Decay(1),
            &[1.0],
            &Rk4Options {
                step: 0.0,
                t_end: 1.0,
            },
            None,
        );
    }
}
