//! The replicator–mutator vector field (paper Eq. 1).

use qs_matvec::LinearOperator;

/// An autonomous vector field `dx/dt = F(x)` on `R^N`.
pub trait Flow: Send + Sync {
    /// State dimension.
    fn len(&self) -> usize;

    /// Flows are never 0-dimensional.
    fn is_empty(&self) -> bool {
        false
    }

    /// Evaluate `out ← F(x)`.
    ///
    /// # Panics
    ///
    /// Implementations panic on length mismatches.
    fn deriv(&self, x: &[f64], out: &mut [f64]);
}

impl<F: Flow + ?Sized> Flow for &F {
    fn len(&self) -> usize {
        (**self).len()
    }
    fn deriv(&self, x: &[f64], out: &mut [f64]) {
        (**self).deriv(x, out)
    }
}

/// The quasispecies replicator–mutator field
/// `dx/dt = Q·F·x − (fᵀx)·x`, built from any `Q` engine and a fitness
/// diagonal.
///
/// The nonlinear dilution term `Φ(t)·x = (fᵀx)·x` keeps the simplex
/// `Σ x_i = 1` invariant; the flow's equilibria on the simplex are exactly
/// the eigenvectors of `W = Q·F`, with the quasispecies (Perron vector) the
/// only stable one.
#[derive(Debug, Clone)]
pub struct ReplicatorFlow<Q> {
    q: Q,
    fitness: Vec<f64>,
}

impl<Q: LinearOperator> ReplicatorFlow<Q> {
    /// Create the flow.
    ///
    /// # Panics
    ///
    /// Panics on dimension mismatch or non-positive fitness values.
    pub fn new(q: Q, fitness: Vec<f64>) -> Self {
        assert_eq!(fitness.len(), q.len(), "fitness length mismatch");
        assert!(
            fitness.iter().all(|f| f.is_finite() && *f > 0.0),
            "fitness values must be positive"
        );
        ReplicatorFlow { q, fitness }
    }

    /// Mean population fitness `Φ(x) = fᵀx` (the dilution flux; at the
    /// stationary distribution it equals the dominant eigenvalue `λ₀`).
    pub fn mean_fitness(&self, x: &[f64]) -> f64 {
        qs_linalg::dot(&self.fitness, x)
    }

    /// Borrow the fitness diagonal.
    pub fn fitness(&self) -> &[f64] {
        &self.fitness
    }
}

impl<Q: LinearOperator> Flow for ReplicatorFlow<Q> {
    fn len(&self) -> usize {
        self.q.len()
    }

    fn deriv(&self, x: &[f64], out: &mut [f64]) {
        assert_eq!(x.len(), self.len(), "deriv: x length mismatch");
        assert_eq!(out.len(), self.len(), "deriv: out length mismatch");
        // out = Q·(f∘x)
        for ((o, &xi), &fi) in out.iter_mut().zip(x).zip(&self.fitness) {
            *o = fi * xi;
        }
        self.q.apply_in_place(out);
        // − Φ·x
        let phi = self.mean_fitness(x);
        for (o, &xi) in out.iter_mut().zip(x) {
            *o -= phi * xi;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qs_matvec::Fmmp;

    fn simple_flow() -> ReplicatorFlow<Fmmp> {
        let f: Vec<f64> = (0..16).map(|i| 1.0 + (i % 3) as f64 / 2.0).collect();
        ReplicatorFlow::new(Fmmp::new(4, 0.05), f)
    }

    #[test]
    fn conserves_total_concentration() {
        // 1ᵀ(dx/dt) = Φ − Φ = 0 on the simplex: Q is column stochastic.
        let flow = simple_flow();
        let mut x = vec![0.0; 16];
        x[0] = 0.7;
        x[5] = 0.3;
        let mut d = vec![0.0; 16];
        flow.deriv(&x, &mut d);
        assert!(qs_linalg::sum(&d).abs() < 1e-14);
    }

    #[test]
    fn eigenvector_is_equilibrium() {
        // At the Perron vector, dx/dt = λx − λx = 0.
        let flow = simple_flow();
        let w = qs_matvec::WOperator::new(
            Fmmp::new(4, 0.05),
            flow.fitness().to_vec(),
            qs_matvec::Formulation::Right,
        );
        let mut x = flow.fitness().to_vec();
        // Converge x to the Perron vector by brute-force iteration.
        for _ in 0..3000 {
            qs_matvec::LinearOperator::apply_in_place(&w, &mut x);
            let s = qs_linalg::sum(&x);
            for v in &mut x {
                *v /= s;
            }
        }
        let mut d = vec![0.0; 16];
        flow.deriv(&x, &mut d);
        assert!(
            qs_linalg::norm_linf(&d) < 1e-12,
            "‖dx/dt‖∞ = {}",
            qs_linalg::norm_linf(&d)
        );
        // And Φ at equilibrium equals λ₀.
        let lambda = flow.mean_fitness(&x);
        let wx = qs_matvec::LinearOperator::apply(&w, &x);
        for (a, b) in wx.iter().zip(&x) {
            assert!((a - lambda * b).abs() < 1e-11);
        }
    }

    #[test]
    fn master_only_population_grows_toward_mutants() {
        let flow = simple_flow();
        let mut x = vec![0.0; 16];
        x[0] = 1.0;
        let mut d = vec![0.0; 16];
        flow.deriv(&x, &mut d);
        // Mutation leaks concentration out of the master...
        assert!(d[0] < 0.0);
        // ...into its neighbours.
        assert!(d[1] > 0.0 && d[2] > 0.0 && d[4] > 0.0 && d[8] > 0.0);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn rejects_bad_dimensions() {
        let _ = ReplicatorFlow::new(Fmmp::new(3, 0.1), vec![1.0; 4]);
    }
}
