//! Integration to the stationary distribution.
//!
//! Integrates the replicator–mutator dynamics in renormalised chunks until
//! `‖dx/dt‖` falls below tolerance — i.e. until the population has settled
//! into the quasispecies. Used to cross-validate the eigenvector solvers:
//! dynamics and spectral solution are independent code paths that must
//! agree.

use crate::flow::{Flow, ReplicatorFlow};
use crate::rk4::{integrate_rk4, Rk4Options};
use qs_matvec::LinearOperator;

/// Options for [`integrate_to_steady_state`].
#[derive(Debug, Clone, Copy)]
pub struct SteadyStateOptions {
    /// Convergence tolerance on `‖dx/dt‖∞`.
    pub tol: f64,
    /// RK4 step size.
    pub step: f64,
    /// Chunk length between convergence checks and renormalisations.
    pub chunk: f64,
    /// Give up after this much model time.
    pub t_max: f64,
}

impl Default for SteadyStateOptions {
    fn default() -> Self {
        SteadyStateOptions {
            tol: 1e-12,
            step: 0.05,
            chunk: 5.0,
            t_max: 10_000.0,
        }
    }
}

/// Result of a steady-state integration.
#[derive(Debug, Clone)]
pub struct SteadyStateResult {
    /// The stationary distribution (sums to 1).
    pub x: Vec<f64>,
    /// Mean fitness `Φ` at the end — equals the dominant eigenvalue `λ₀`
    /// of `W = Q·F` at stationarity.
    pub mean_fitness: f64,
    /// Model time integrated.
    pub t: f64,
    /// Final `‖dx/dt‖∞`.
    pub residual: f64,
    /// Whether `tol` was reached within `t_max`.
    pub converged: bool,
}

/// Integrate the replicator–mutator flow from `x0` until stationarity.
///
/// `x0` is L1-renormalised after every chunk to counter the slow drift of
/// `Σ x` under discretisation error (the exact flow preserves it).
///
/// # Panics
///
/// Panics on invalid options or dimension mismatch.
pub fn integrate_to_steady_state<Q: LinearOperator>(
    flow: &ReplicatorFlow<Q>,
    x0: &[f64],
    opts: &SteadyStateOptions,
) -> SteadyStateResult {
    assert!(opts.tol > 0.0 && opts.step > 0.0 && opts.chunk > 0.0 && opts.t_max > 0.0);
    assert_eq!(x0.len(), flow.len(), "state length mismatch");
    let mut x = x0.to_vec();
    let s = qs_linalg::sum(&x);
    assert!(s > 0.0, "start vector must have positive mass");
    for v in &mut x {
        *v /= s;
    }

    let mut t = 0.0;
    let mut d = vec![0.0; x.len()];
    let (residual, converged) = loop {
        flow.deriv(&x, &mut d);
        let res = qs_linalg::norm_linf(&d);
        if res <= opts.tol {
            break (res, true);
        }
        if t >= opts.t_max {
            break (res, false);
        }
        let dt = opts.chunk.min(opts.t_max - t);
        x = integrate_rk4(
            flow,
            &x,
            &Rk4Options {
                step: opts.step,
                t_end: dt,
            },
            None,
        );
        t += dt;
        // Renormalise (and clamp discretisation-induced negatives).
        for v in &mut x {
            if *v < 0.0 {
                *v = 0.0;
            }
        }
        let s = qs_linalg::sum(&x);
        assert!(s > 0.0, "population mass vanished during integration");
        for v in &mut x {
            *v /= s;
        }
    };

    let mean_fitness = flow.mean_fitness(&x);
    SteadyStateResult {
        x,
        mean_fitness,
        t,
        residual,
        converged,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qs_matvec::Fmmp;

    #[test]
    fn reaches_the_quasispecies_from_master_start() {
        // Paper initial condition: x₀ = 1 (all mass on the master).
        let nu = 6u32;
        let p = 0.02;
        let fitness: Vec<f64> = (0..1u64 << nu)
            .map(|i| if i == 0 { 2.0 } else { 1.0 })
            .collect();
        let flow = ReplicatorFlow::new(Fmmp::new(nu, p), fitness.clone());
        let mut x0 = vec![0.0; 1 << nu];
        x0[0] = 1.0;
        let res = integrate_to_steady_state(&flow, &x0, &SteadyStateOptions::default());
        assert!(res.converged, "residual {}", res.residual);
        // The steady state is the Perron vector of W = Q·F: verify
        // W·x = Φ·x.
        let w = qs_matvec::WOperator::new(Fmmp::new(nu, p), fitness, qs_matvec::Formulation::Right);
        let wx = qs_matvec::LinearOperator::apply(&w, &res.x);
        for (a, b) in wx.iter().zip(&res.x) {
            assert!((a - res.mean_fitness * b).abs() < 1e-9);
        }
        assert!(res.mean_fitness > 1.0 && res.mean_fitness < 2.0);
    }

    #[test]
    fn steady_state_independent_of_start() {
        let nu = 5u32;
        let p = 0.03;
        let fitness: Vec<f64> = (0..32u64)
            .map(|i| 1.0 + ((i * 11) % 7) as f64 / 4.0)
            .collect();
        let flow = ReplicatorFlow::new(Fmmp::new(nu, p), fitness);
        let mut from_master = vec![0.0; 32];
        from_master[0] = 1.0;
        let uniform = vec![1.0 / 32.0; 32];
        let a = integrate_to_steady_state(&flow, &from_master, &SteadyStateOptions::default());
        let b = integrate_to_steady_state(&flow, &uniform, &SteadyStateOptions::default());
        assert!(a.converged && b.converged);
        for (x, y) in a.x.iter().zip(&b.x) {
            assert!((x - y).abs() < 1e-9, "{x} vs {y}");
        }
    }

    #[test]
    fn time_budget_respected() {
        let nu = 4u32;
        let flow = ReplicatorFlow::new(
            Fmmp::new(nu, 0.01),
            (0..16u64).map(|i| if i == 0 { 2.0 } else { 1.0 }).collect(),
        );
        let mut x0 = vec![0.0; 16];
        x0[0] = 1.0;
        let res = integrate_to_steady_state(
            &flow,
            &x0,
            &SteadyStateOptions {
                tol: 1e-30,
                t_max: 10.0,
                ..Default::default()
            },
        );
        assert!(!res.converged);
        assert!(res.t >= 10.0 - 1e-9);
    }
}
