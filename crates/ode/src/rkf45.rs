//! Adaptive Runge–Kutta–Fehlberg 4(5) with proportional step control.

use crate::flow::Flow;

/// Options for [`integrate_rkf45`].
#[derive(Debug, Clone, Copy)]
pub struct Rkf45Options {
    /// Integration horizon.
    pub t_end: f64,
    /// Absolute local-error tolerance per step.
    pub abs_tol: f64,
    /// Relative local-error tolerance per step.
    pub rel_tol: f64,
    /// Initial step size.
    pub initial_step: f64,
    /// Smallest step before the integrator gives up.
    pub min_step: f64,
}

impl Default for Rkf45Options {
    fn default() -> Self {
        Rkf45Options {
            t_end: 1.0,
            abs_tol: 1e-10,
            rel_tol: 1e-10,
            initial_step: 1e-2,
            min_step: 1e-12,
        }
    }
}

// Fehlberg coefficients (the classical 4(5) pair).
const A: [[f64; 5]; 5] = [
    [1.0 / 4.0, 0.0, 0.0, 0.0, 0.0],
    [3.0 / 32.0, 9.0 / 32.0, 0.0, 0.0, 0.0],
    [1932.0 / 2197.0, -7200.0 / 2197.0, 7296.0 / 2197.0, 0.0, 0.0],
    [439.0 / 216.0, -8.0, 3680.0 / 513.0, -845.0 / 4104.0, 0.0],
    [
        -8.0 / 27.0,
        2.0,
        -3544.0 / 2565.0,
        1859.0 / 4104.0,
        -11.0 / 40.0,
    ],
];
const B4: [f64; 6] = [
    25.0 / 216.0,
    0.0,
    1408.0 / 2565.0,
    2197.0 / 4104.0,
    -1.0 / 5.0,
    0.0,
];
const B5: [f64; 6] = [
    16.0 / 135.0,
    0.0,
    6656.0 / 12825.0,
    28561.0 / 56430.0,
    -9.0 / 50.0,
    2.0 / 55.0,
];

/// Integrate `dx/dt = F(x)` from `x0` over `[0, t_end]` adaptively;
/// returns `(final_state, accepted_steps, rejected_steps)`.
///
/// # Panics
///
/// Panics on invalid options, dimension mismatch, or if step control
/// drives the step below `min_step` (stiffness beyond the tolerance).
pub fn integrate_rkf45<F: Flow + ?Sized>(
    flow: &F,
    x0: &[f64],
    opts: &Rkf45Options,
) -> (Vec<f64>, usize, usize) {
    assert!(opts.t_end > 0.0, "t_end must be positive");
    assert!(opts.initial_step > 0.0, "initial step must be positive");
    assert!(
        opts.abs_tol > 0.0 && opts.rel_tol >= 0.0,
        "tolerances invalid"
    );
    assert_eq!(
        x0.len(),
        flow.len(),
        "integrate_rkf45: state length mismatch"
    );

    let n = flow.len();
    let mut x = x0.to_vec();
    let mut k: Vec<Vec<f64>> = (0..6).map(|_| vec![0.0; n]).collect();
    let mut tmp = vec![0.0; n];

    let mut t = 0.0;
    let mut h = opts.initial_step.min(opts.t_end);
    let mut accepted = 0usize;
    let mut rejected = 0usize;

    while t < opts.t_end {
        h = h.min(opts.t_end - t);
        // Six stages.
        flow.deriv(&x, &mut k[0]);
        for (s, row) in A.iter().enumerate() {
            for i in 0..n {
                let mut acc = x[i];
                for (j, kj) in k.iter().enumerate().take(s + 1) {
                    acc += h * row[j] * kj[i];
                }
                tmp[i] = acc;
            }
            let (_, tail) = k.split_at_mut(s + 1);
            flow.deriv(&tmp, &mut tail[0]);
        }
        // Embedded solutions and error estimate.
        let mut err = 0.0f64;
        for i in 0..n {
            let mut x4 = x[i];
            let mut x5 = x[i];
            for (j, kj) in k.iter().enumerate() {
                x4 += h * B4[j] * kj[i];
                x5 += h * B5[j] * kj[i];
            }
            let scale = opts.abs_tol + opts.rel_tol * x[i].abs().max(x5.abs());
            err = err.max(((x5 - x4) / scale).abs());
            tmp[i] = x5; // keep the 5th-order solution
        }
        if err <= 1.0 {
            x.copy_from_slice(&tmp);
            t += h;
            accepted += 1;
        } else {
            rejected += 1;
        }
        // Proportional controller with the usual safety clamp.
        let factor = if err > 0.0 {
            (0.9 * err.powf(-0.2)).clamp(0.2, 5.0)
        } else {
            5.0
        };
        h *= factor;
        assert!(
            h >= opts.min_step,
            "step size underflow at t = {t} (err = {err:.3e}): problem too stiff for tolerance"
        );
    }
    (x, accepted, rejected)
}

#[cfg(test)]
mod tests {
    use super::*;

    struct Decay;
    impl Flow for Decay {
        fn len(&self) -> usize {
            1
        }
        fn deriv(&self, x: &[f64], out: &mut [f64]) {
            out[0] = -x[0];
        }
    }

    /// dx/dt = λ(cos t − x): forced problem with a known solution envelope.
    struct Forced;
    impl Flow for Forced {
        fn len(&self) -> usize {
            2
        }
        // Autonomised: state = (x, t).
        fn deriv(&self, x: &[f64], out: &mut [f64]) {
            out[0] = 5.0 * (x[1].cos() - x[0]);
            out[1] = 1.0;
        }
    }

    #[test]
    fn decay_to_tolerance() {
        let (x, accepted, _) = integrate_rkf45(&Decay, &[1.0], &Rkf45Options::default());
        assert!((x[0] - (-1.0f64).exp()).abs() < 1e-8);
        assert!(accepted > 0);
    }

    #[test]
    fn tight_tolerance_takes_more_steps() {
        let loose = Rkf45Options {
            abs_tol: 1e-5,
            rel_tol: 1e-5,
            ..Default::default()
        };
        let tight = Rkf45Options {
            abs_tol: 1e-12,
            rel_tol: 1e-12,
            ..Default::default()
        };
        let (_, a_loose, _) = integrate_rkf45(&Decay, &[1.0], &loose);
        let (_, a_tight, _) = integrate_rkf45(&Decay, &[1.0], &tight);
        assert!(a_tight > a_loose, "{a_tight} !> {a_loose}");
    }

    #[test]
    fn agrees_with_rk4_on_smooth_problem() {
        let opts = Rkf45Options {
            t_end: 2.0,
            ..Default::default()
        };
        let (adaptive, _, _) = integrate_rkf45(&Forced, &[0.0, 0.0], &opts);
        let fixed = crate::rk4::integrate_rk4(
            &Forced,
            &[0.0, 0.0],
            &crate::rk4::Rk4Options {
                step: 1e-4,
                t_end: 2.0,
            },
            None,
        );
        assert!((adaptive[0] - fixed[0]).abs() < 1e-7);
    }

    #[test]
    fn step_rejection_happens_on_transients() {
        // Large initial step forces at least one rejection on the stiff-ish
        // forced problem.
        let opts = Rkf45Options {
            t_end: 2.0,
            initial_step: 1.0,
            abs_tol: 1e-10,
            rel_tol: 1e-10,
            ..Default::default()
        };
        let (_, _, rejected) = integrate_rkf45(&Forced, &[0.0, 0.0], &opts);
        assert!(rejected > 0);
    }

    #[test]
    #[should_panic(expected = "t_end must be positive")]
    fn rejects_bad_horizon() {
        let _ = integrate_rkf45(
            &Decay,
            &[1.0],
            &Rkf45Options {
                t_end: 0.0,
                ..Default::default()
            },
        );
    }
}
