//! Replicator–mutator ODE integrators for Eigen's quasispecies dynamics.
//!
//! The quasispecies model is, at bottom, the ODE system of paper Eq. 1:
//!
//! ```text
//! dx_i/dt = Σ_j f_j·Q_{i,j}·x_j(t) − x_i(t)·Φ(t),
//! Φ(t) = Σ_j f_j·x_j(t),          Σ_j x_j(t) = 1,
//! ```
//!
//! whose stationary distribution is the dominant eigenvector of `W = Q·F`
//! (the Bernoulli change of variables in paper Section 1.1). This crate
//! integrates the *dynamics* directly — with the same fast `Fmmp`-based
//! matvec, so one flow evaluation costs `Θ(N log₂ N)` — which serves two
//! purposes:
//!
//! 1. **Cross-validation**: the eigenvector solvers and the ODE integrator
//!    are entirely independent code paths that must agree on the steady
//!    state; the integration tests exploit this.
//! 2. **Transients**: the eigenvector only describes `t → ∞`; the
//!    integrator exposes the approach to the quasispecies (relaxation
//!    times, response to parameter changes).
//!
//! Two steppers are provided: classic fixed-step RK4 ([`rk4`]) and the
//! adaptive Runge–Kutta–Fehlberg 4(5) pair ([`rkf45`]) with PI step
//! control.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod flow;
pub mod rk4;
pub mod rkf45;
pub mod steady;

pub use flow::{Flow, ReplicatorFlow};
pub use rk4::{integrate_rk4, Rk4Options};
pub use rkf45::{integrate_rkf45, Rkf45Options};
pub use steady::{integrate_to_steady_state, SteadyStateOptions, SteadyStateResult};
