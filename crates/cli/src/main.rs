//! `quasispecies` — command-line driver for the fast quasispecies solver.
//!
//! Subcommands:
//!
//! * `solve` — compute the stationary distribution for one `(ν, p)` pair,
//! * `scan` — sweep the error rate and emit the `[Γ_k]` curves of paper
//!   Figure 1,
//! * `threshold` — locate the error threshold `p_max` by bisection,
//! * `help` — usage.
//!
//! Output is human-readable by default; pass `--json` for machine-readable
//! records.

mod args;

use args::{ArgError, Args};
use qs_landscape::{ErrorClass, Landscape, Random, Tabulated};
use qs_telemetry::{JsonLinesProbe, RecordingProbe, Tee, TraceSummary};
use quasispecies::{
    detect_pmax, scan_error_classes, solve, solve_probed, Engine, Method, SolverConfig,
};
use serde::Serialize;

fn main() {
    let args = match Args::parse(std::env::args().skip(1)) {
        Ok(a) => a,
        Err(e) => {
            eprintln!("error: {e}");
            eprintln!("{USAGE}");
            std::process::exit(2);
        }
    };
    let result = match args.command.as_str() {
        "solve" => cmd_solve(&args),
        "scan" => cmd_scan(&args),
        "threshold" => cmd_threshold(&args),
        "kron" => cmd_kron(&args),
        "ode" => cmd_ode(&args),
        "trace-check" => cmd_trace_check(&args),
        "help" => {
            println!("{USAGE}");
            Ok(())
        }
        other => {
            eprintln!("error: unknown subcommand '{other}'");
            eprintln!("{USAGE}");
            std::process::exit(2);
        }
    };
    if let Err(e) = result {
        eprintln!("error: {e}");
        std::process::exit(1);
    }
}

const USAGE: &str = "\
quasispecies — fast solver for Eigen's quasispecies model (SC'11 reproduction)

USAGE:
  quasispecies solve --nu N --p P [--landscape KIND] [options]
  quasispecies scan --nu N --p-min A --p-max B [--points K] [--landscape KIND]
  quasispecies threshold --nu N [--landscape KIND] [--lo A --hi B]
  quasispecies kron --p P --factor-bits G --factors COUNT [--seed S]
  quasispecies ode --nu N --p P [--landscape KIND] [--t-max T]
  quasispecies trace-check --file TRACE.jsonl

LANDSCAPES (error-class kinds also drive scan/threshold exactly via §5.1):
  single-peak (default)   --f0 2.0 --frest 1.0
  linear                  --f0 2.0 --fnu 1.0
  random                  --c 5.0 --sigma 1.0 --seed 42   (solve/ode only)
  nk                      --k 2 --seed 42                 (solve/ode only)

SOLVE OPTIONS:
  --engine fmmp|fmmp-par|xmvp|smvp   (xmvp takes --dmax, default ν)
  --parallel                         shorthand for --engine fmmp-par
  --method power|lanczos|rqi         (lanczos takes --subspace, default 60)
  --tol 1e-13   --max-iter 200000    --top 8 (sequences shown)
  --json                             machine-readable output
  --trace FILE.jsonl                 dump the solver event stream (JSON Lines)
  --trace-summary                    per-stage timing/residual digest on stderr

trace-check validates a --trace dump: every line parses, at least one
residual event, terminal event 'converged' (nonzero exit otherwise).

EXAMPLES:
  quasispecies solve --nu 12 --p 0.01
  quasispecies solve --nu 10 --p 0.01 --trace run.jsonl --trace-summary
  quasispecies trace-check --file run.jsonl
  quasispecies solve --nu 10 --p 0.01 --landscape nk --k 3
  quasispecies scan --nu 20 --p-min 0.001 --p-max 0.09 --points 60 --json
  quasispecies threshold --nu 20 --f0 2.0
  quasispecies kron --p 0.002 --factor-bits 10 --factors 10   (ν = 100!)
  quasispecies ode --nu 10 --p 0.01 --t-max 50";

#[derive(Debug)]
enum CliError {
    Arg(ArgError),
    Solve(quasispecies::SolveError),
    Bad(String),
}

impl std::fmt::Display for CliError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CliError::Arg(e) => write!(f, "{e}"),
            CliError::Solve(e) => write!(f, "{e}"),
            CliError::Bad(m) => write!(f, "{m}"),
        }
    }
}

impl From<ArgError> for CliError {
    fn from(e: ArgError) -> Self {
        CliError::Arg(e)
    }
}

impl From<quasispecies::SolveError> for CliError {
    fn from(e: quasispecies::SolveError) -> Self {
        CliError::Solve(e)
    }
}

/// Build the error-class ϕ profile for scan/threshold subcommands.
fn class_profile(args: &Args, nu: u32) -> Result<Vec<f64>, CliError> {
    let kind = args.get("landscape").unwrap_or("single-peak");
    let f0: f64 = args.or_default("f0", 2.0)?;
    match kind {
        "single-peak" => {
            let frest: f64 = args.or_default("frest", 1.0)?;
            Ok(ErrorClass::single_peak(nu, f0, frest).phi().to_vec())
        }
        "linear" => {
            let fnu: f64 = args.or_default("fnu", 1.0)?;
            Ok(ErrorClass::linear(nu, f0, fnu).phi().to_vec())
        }
        other => Err(CliError::Bad(format!(
            "landscape '{other}' is not an error-class kind (scan/threshold need one)"
        ))),
    }
}

fn build_config(args: &Args, nu: u32) -> Result<SolverConfig, CliError> {
    // `--parallel` is shorthand for the thread-pool engine.
    let default_engine = if args.flag("parallel") {
        "fmmp-par"
    } else {
        "fmmp"
    };
    let engine = match args.get("engine").unwrap_or(default_engine) {
        "fmmp" => Engine::Fmmp,
        "fmmp-par" => Engine::FmmpParallel,
        "xmvp" => Engine::Xmvp {
            d_max: args.or_default("dmax", nu)?,
        },
        "smvp" => Engine::Smvp,
        other => return Err(CliError::Bad(format!("unknown engine '{other}'"))),
    };
    let method = match args.get("method").unwrap_or("power") {
        "power" => Method::Power,
        "lanczos" => Method::Lanczos {
            subspace: args.or_default("subspace", 60usize)?,
        },
        "rqi" => Method::Rqi {
            warmup: args.or_default("warmup", 10usize)?,
        },
        other => return Err(CliError::Bad(format!("unknown method '{other}'"))),
    };
    Ok(SolverConfig {
        engine,
        method,
        tol: args.or_default("tol", 1e-13)?,
        max_iter: args.or_default("max-iter", 200_000usize)?,
        ..Default::default()
    })
}

#[derive(Serialize)]
struct SolveRecord {
    nu: u32,
    p: f64,
    lambda: f64,
    iterations: usize,
    residual: f64,
    engine: String,
    method: String,
    entropy: f64,
    classes: Vec<f64>,
    top_sequences: Vec<(String, f64)>,
    /// Per-iteration residuals; present only when the solve was traced.
    #[serde(skip_serializing_if = "Option::is_none")]
    residual_history: Option<Vec<f64>>,
}

/// Build a materialisable landscape for solve/ode subcommands.
fn build_landscape(args: &Args, nu: u32) -> Result<Box<dyn Landscape>, CliError> {
    let kind = args.get("landscape").unwrap_or("single-peak");
    Ok(match kind {
        "random" => Box::new(Random::new(
            nu,
            args.or_default("c", 5.0)?,
            args.or_default("sigma", 1.0)?,
            args.or_default("seed", 42u64)?,
        )),
        "nk" => Box::new(qs_landscape::Nk::new(
            nu,
            args.or_default("k", 2u32)?,
            args.or_default("seed", 42u64)?,
        )),
        _ => Box::new(Tabulated::new({
            let phi = class_profile(args, nu)?;
            (0..1u64 << nu)
                .map(|i| phi[i.count_ones() as usize])
                .collect()
        })),
    })
}

fn cmd_solve(args: &Args) -> Result<(), CliError> {
    let nu: u32 = args.required("nu")?;
    let p: f64 = args.required("p")?;
    let kind = args.get("landscape").unwrap_or("single-peak");
    let landscape = build_landscape(args, nu)?;
    let config = build_config(args, nu)?;

    // Tracing: record the event stream (and tee it to a JSONL file when
    // `--trace` names one). Without either flag the plain un-probed solve
    // runs — zero telemetry overhead.
    let trace_path = args.get("trace");
    let want_summary = args.flag("trace-summary");
    let (qs, recording) = if let Some(path) = trace_path {
        let jsonl = JsonLinesProbe::create(path)
            .map_err(|e| CliError::Bad(format!("cannot create trace file '{path}': {e}")))?;
        let mut tee = Tee(RecordingProbe::new(), jsonl);
        let outcome = solve_probed(p, landscape.as_ref(), &config, &mut tee);
        let Tee(rec, jsonl) = tee;
        // Flush even when the solve failed: a budget-exhausted trace is
        // still a complete, analysable trace.
        jsonl
            .finish()
            .map_err(|e| CliError::Bad(format!("writing trace file '{path}': {e}")))?;
        (outcome, Some(rec))
    } else if want_summary {
        let mut rec = RecordingProbe::new();
        let outcome = solve_probed(p, landscape.as_ref(), &config, &mut rec);
        (outcome, Some(rec))
    } else {
        (solve(p, landscape.as_ref(), &config), None)
    };
    if want_summary {
        if let Some(rec) = &recording {
            eprintln!("{}", TraceSummary::from_events(rec.events()));
        }
    }
    let qs = qs?;

    let top: usize = args.or_default("top", 8usize)?;
    let mut ranked: Vec<(u64, f64)> = qs
        .concentrations
        .iter()
        .enumerate()
        .map(|(i, &c)| (i as u64, c))
        .collect();
    ranked.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap());
    let top_sequences: Vec<(String, f64)> = ranked
        .iter()
        .take(top)
        .map(|&(i, c)| (qs_bitseq::to_bit_string(i, nu), c))
        .collect();

    let record = SolveRecord {
        nu,
        p,
        lambda: qs.lambda,
        iterations: qs.stats.iterations,
        residual: qs.stats.residual,
        engine: qs.stats.engine.clone(),
        method: qs.stats.method.clone(),
        entropy: qs.entropy(),
        classes: qs.error_class_concentrations(),
        top_sequences,
        residual_history: qs.stats.residual_history.clone(),
    };
    if args.flag("json") {
        println!(
            "{}",
            serde_json::to_string_pretty(&record).expect("serialize")
        );
    } else {
        println!("quasispecies solve  ν={nu}  p={p}  landscape={kind}");
        println!(
            "  λ₀ = {:.12}   ({} iterations, residual {:.2e}, {}/{})",
            record.lambda, record.iterations, record.residual, record.engine, record.method
        );
        println!(
            "  entropy = {:.6} nats (uniform would be {:.6})",
            record.entropy,
            nu as f64 * std::f64::consts::LN_2
        );
        println!("  cumulative error-class concentrations [Γ_k]:");
        for (k, c) in record.classes.iter().enumerate() {
            println!("    Γ_{k:<3} {c:.6e}");
        }
        println!("  top sequences:");
        for (s, c) in &record.top_sequences {
            println!("    {s}  {c:.6e}");
        }
    }
    Ok(())
}

#[derive(Serialize)]
struct ScanRecord {
    nu: u32,
    ps: Vec<f64>,
    classes: Vec<Vec<f64>>,
    order: Vec<f64>,
}

fn cmd_scan(args: &Args) -> Result<(), CliError> {
    let nu: u32 = args.required("nu")?;
    let p_min: f64 = args.required("p-min")?;
    let p_max: f64 = args.required("p-max")?;
    let points: usize = args.or_default("points", 40usize)?;
    if !(0.0 < p_min && p_min < p_max && p_max <= 0.5) {
        return Err(CliError::Bad("need 0 < p-min < p-max ≤ 0.5".into()));
    }
    let phi = class_profile(args, nu)?;
    let ps: Vec<f64> = (0..points)
        .map(|i| p_min + (p_max - p_min) * i as f64 / (points.max(2) - 1) as f64)
        .collect();
    let scan = scan_error_classes(nu, &phi, &ps);
    if args.flag("json") {
        let rec = ScanRecord {
            nu,
            ps: scan.ps.clone(),
            classes: scan.classes.clone(),
            order: scan.order.clone(),
        };
        println!("{}", serde_json::to_string_pretty(&rec).expect("serialize"));
    } else {
        print!("{:>10}", "p");
        for k in 0..=nu {
            print!(" {:>12}", format!("[Γ_{k}]"));
        }
        println!(" {:>12}", "order");
        for (i, &p) in scan.ps.iter().enumerate() {
            print!("{p:>10.5}");
            for c in &scan.classes[i] {
                print!(" {c:>12.5e}");
            }
            println!(" {:>12.5e}", scan.order[i]);
        }
    }
    Ok(())
}

fn cmd_kron(args: &Args) -> Result<(), CliError> {
    let p: f64 = args.required("p")?;
    let bits: u32 = args.or_default("factor-bits", 10u32)?;
    let count: usize = args.or_default("factors", 4usize)?;
    let seed: u64 = args.or_default("seed", 42u64)?;
    if bits == 0 || bits > 20 || count == 0 {
        return Err(CliError::Bad(
            "need 1 ≤ factor-bits ≤ 20 and factors ≥ 1".into(),
        ));
    }
    // Per-factor landscape: a sub-master plus seeded ruggedness.
    let dim = 1usize << bits;
    let factor: Vec<f64> = (0..dim as u64)
        .map(|d| {
            if d == 0 {
                2.0
            } else {
                1.0 + ((d.wrapping_mul(seed | 1).wrapping_mul(2654435761)) % 97) as f64 / 500.0
            }
        })
        .collect();
    let landscape = qs_landscape::Kronecker::uniform(count, factor);
    let nu = count as u32 * bits;
    let t0 = std::time::Instant::now();
    let qs = quasispecies::solve_kronecker(p, &landscape, &SolverConfig::default())?;
    let elapsed = t0.elapsed().as_secs_f64();
    let gamma = qs.class_concentrations();
    if args.flag("json") {
        #[derive(Serialize)]
        struct KronRecord {
            nu: u32,
            p: f64,
            lambda: f64,
            stored_values: usize,
            classes: Vec<f64>,
            seconds: f64,
        }
        let rec = KronRecord {
            nu,
            p,
            lambda: qs.lambda,
            stored_values: qs.stored_values(),
            classes: gamma,
            seconds: elapsed,
        };
        println!("{}", serde_json::to_string_pretty(&rec).expect("serialize"));
    } else {
        println!("Kronecker quasispecies  ν={nu} (N = 2^{nu}), {count} factors × {bits} bits");
        println!("  solved in {elapsed:.3} s: λ₀ = {:.10}", qs.lambda);
        println!(
            "  implicit eigenvector: {} stored values",
            qs.stored_values()
        );
        println!("  leading error classes:");
        for (k, g) in gamma.iter().take(8).enumerate() {
            println!("    [Γ_{k:<3}] {g:.6e}");
        }
        let total: f64 = gamma.iter().sum();
        println!("  Σ[Γ_k] = {total:.12}");
    }
    Ok(())
}

fn cmd_ode(args: &Args) -> Result<(), CliError> {
    let nu: u32 = args.required("nu")?;
    let p: f64 = args.required("p")?;
    let t_max: f64 = args.or_default("t-max", 1000.0)?;
    let landscape = build_landscape(args, nu)?;
    let flow = qs_ode::ReplicatorFlow::new(qs_matvec::Fmmp::new(nu, p), landscape.materialize());
    let mut x0 = vec![0.0; 1 << nu];
    x0[0] = 1.0; // the paper's initial condition: pure master population
    let res = qs_ode::integrate_to_steady_state(
        &flow,
        &x0,
        &qs_ode::SteadyStateOptions {
            t_max,
            ..Default::default()
        },
    );
    let gamma = qs_bitseq::accumulate_classes(&res.x);
    if args.flag("json") {
        #[derive(Serialize)]
        struct OdeRecord {
            nu: u32,
            p: f64,
            mean_fitness: f64,
            t: f64,
            residual: f64,
            converged: bool,
            classes: Vec<f64>,
        }
        let rec = OdeRecord {
            nu,
            p,
            mean_fitness: res.mean_fitness,
            t: res.t,
            residual: res.residual,
            converged: res.converged,
            classes: gamma,
        };
        println!("{}", serde_json::to_string_pretty(&rec).expect("serialize"));
    } else {
        println!("replicator–mutator dynamics  ν={nu}  p={p}  from x₀ = 1:");
        println!(
            "  steady state at t = {:.1} (converged: {}), ‖dx/dt‖∞ = {:.2e}",
            res.t, res.converged, res.residual
        );
        println!(
            "  mean fitness Φ∞ = {:.10} (= λ₀ of W = Q·F)",
            res.mean_fitness
        );
        println!("  stationary error classes:");
        for (k, g) in gamma.iter().take(8).enumerate() {
            println!("    [Γ_{k:<3}] {g:.6e}");
        }
    }
    Ok(())
}

/// Validate a `--trace` JSONL dump: every line parses as a JSON object
/// with an `"event"` tag, at least one `residual` event is present, and
/// the stream ends with `converged`. Used by CI as a telemetry smoke test.
fn cmd_trace_check(args: &Args) -> Result<(), CliError> {
    let path: String = args.required("file")?;
    let text = std::fs::read_to_string(&path)
        .map_err(|e| CliError::Bad(format!("cannot read '{path}': {e}")))?;
    let mut tags: Vec<String> = Vec::new();
    for (idx, line) in text.lines().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        let value: serde_json::Value = serde_json::from_str(line)
            .map_err(|e| CliError::Bad(format!("{path}:{}: invalid JSON: {e}", idx + 1)))?;
        let tag = value
            .get("event")
            .and_then(serde_json::Value::as_str)
            .ok_or_else(|| CliError::Bad(format!("{path}:{}: missing \"event\" tag", idx + 1)))?;
        tags.push(tag.to_string());
    }
    if tags.is_empty() {
        return Err(CliError::Bad(format!("'{path}' contains no events")));
    }
    let residuals = tags.iter().filter(|t| t.as_str() == "residual").count();
    if residuals == 0 {
        return Err(CliError::Bad(format!(
            "'{path}' has no residual events ({} events total)",
            tags.len()
        )));
    }
    match tags.last().map(String::as_str) {
        Some("converged") => {
            if !args.flag("quiet") {
                println!(
                    "ok: {} events, {} residuals, terminal event 'converged'",
                    tags.len(),
                    residuals
                );
            }
            Ok(())
        }
        Some(other) => Err(CliError::Bad(format!(
            "'{path}' ends with '{other}', expected 'converged'"
        ))),
        None => unreachable!("tags checked non-empty above"),
    }
}

fn cmd_threshold(args: &Args) -> Result<(), CliError> {
    let nu: u32 = args.required("nu")?;
    let lo: f64 = args.or_default("lo", 0.001)?;
    let hi: f64 = args.or_default("hi", 0.2)?;
    let eps: f64 = args.or_default("eps", 1e-3)?;
    let phi = class_profile(args, nu)?;
    match detect_pmax(nu, &phi, lo, hi, eps, 50) {
        Some(pmax) => {
            if args.flag("json") {
                println!("{{\"nu\": {nu}, \"p_max\": {pmax}}}");
            } else {
                println!("error threshold for ν={nu}: p_max ≈ {pmax:.6}");
            }
            Ok(())
        }
        None => Err(CliError::Bad(format!(
            "no threshold crossing found in [{lo}, {hi}] (distribution ordered/disordered across the whole bracket)"
        ))),
    }
}
