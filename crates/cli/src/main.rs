//! `quasispecies` — command-line driver for the fast quasispecies solver.
//!
//! Subcommands:
//!
//! * `solve` — compute the stationary distribution for one `(ν, p)` pair,
//! * `resume` — continue an interrupted `solve` from its checkpoint
//!   directory (same arguments as `solve` plus `--checkpoint-dir`),
//! * `scan` — sweep the error rate and emit the `[Γ_k]` curves of paper
//!   Figure 1,
//! * `threshold` — locate the error threshold `p_max` by bisection,
//! * `help` — usage.
//!
//! Output is human-readable by default; pass `--json` for machine-readable
//! records.

mod args;

use args::{ArgError, Args};
use qs_fault::{FaultPlan, FaultyOp};
use qs_landscape::{ErrorClass, Landscape};
use qs_matvec::LinearOperator;
use qs_telemetry::{JsonLinesProbe, Probe, RecordingProbe, SolverEvent, Tee, TraceSummary};
use quasispecies::{
    detect_pmax, resume_durable_probed, scan_error_classes, solve_durable_probed, solve_probed,
    solve_with_q_operator_durable_probed, solve_with_q_operator_probed, CheckpointConfig, Engine,
    LandscapeSpec, Method, NullProbe, Quasispecies, ShiftStrategy, SolveError, SolverConfig,
    FORMAT_VERSION,
};
use serde::Serialize;

/// Crate version for provenance records. `option_env!` (not `env!`) so
/// builds outside cargo — e.g. bare-rustc validation harnesses — still
/// compile; the fallback matches the workspace version.
const PKG_VERSION: &str = match option_env!("CARGO_PKG_VERSION") {
    Some(v) => v,
    None => "0.1.0",
};

fn main() {
    let args = match Args::parse(std::env::args().skip(1)) {
        Ok(a) => a,
        Err(e) => {
            eprintln!("error: {e}");
            eprintln!("{USAGE}");
            std::process::exit(2);
        }
    };
    if let Err(e) = apply_isa_override(&args) {
        eprintln!("error: {e}");
        std::process::exit(2);
    }
    let result = match args.command.as_str() {
        "solve" | "resume" => cmd_solve(&args),
        "scan" => cmd_scan(&args),
        "threshold" => cmd_threshold(&args),
        "kron" => cmd_kron(&args),
        "ode" => cmd_ode(&args),
        "serve" => cmd_serve(&args),
        "trace-check" => cmd_trace_check(&args),
        "help" => {
            println!("{USAGE}");
            Ok(())
        }
        other => {
            eprintln!("error: unknown subcommand '{other}'");
            eprintln!("{USAGE}");
            std::process::exit(2);
        }
    };
    if let Err(e) = result {
        eprintln!("error: {e}");
        std::process::exit(1);
    }
}

const USAGE: &str = "\
quasispecies — fast solver for Eigen's quasispecies model (SC'11 reproduction)

USAGE:
  quasispecies solve --nu N --p P [--landscape KIND] [options]
  quasispecies resume --nu N --p P --checkpoint-dir DIR [options]
                                     continue an interrupted solve from its
                                     newest valid snapshot (power method:
                                     bit-identical; lanczos/rqi: warm restart)
  quasispecies scan --nu N --p-min A --p-max B [--points K] [--landscape KIND]
                    [--full-sweep]     batched full-resolution solve of every
                                       grid point at once (QSweep block power)
                    [--trace FILE.jsonl]  with --full-sweep: run the sweep
                                       warmed and dump per-point residuals,
                                       block compaction accounting and the
                                       pool-miss byte count for trace-check
  quasispecies threshold --nu N [--landscape KIND] [--lo A --hi B]
  quasispecies kron --p P --factor-bits G --factors COUNT [--seed S]
  quasispecies ode --nu N --p P [--landscape KIND] [--t-max T]
  quasispecies serve [--addr HOST:PORT] [--workers N] [--coalesce-ms MS]
                     [--max-nu N] [--cache-capacity K] [--cache-bytes B]
                     [--max-batch K] [--warm-cache-bytes B] [--idle-timeout-ms MS]
                     [--fault-plan PLAN.json]
                                     HTTP solve service (POST /solve, GET
                                     /metrics, GET /healthz, POST /shutdown);
                                     keep-alive connections, concurrent solves
                                     over one landscape coalesce into a single
                                     batched engine run (dispatching early once
                                     --max-batch columns pile up, default
                                     workers*8), repeats re-serve cached bytes
                                     (LRU under --cache-bytes), nearby solves
                                     warm-start from cached eigenvectors
                                     (--warm-cache-bytes 0 disables)
  quasispecies trace-check --file TRACE.jsonl [--expect-recovery] [--allow-degraded]
                           [--expect-zero-alloc]

LANDSCAPES (error-class kinds also drive scan/threshold exactly via §5.1):
  single-peak (default)   --f0 2.0 --frest 1.0
  linear                  --f0 2.0 --fnu 1.0
  random                  --c 5.0 --sigma 1.0 --seed 42   (solve/ode only)
  nk                      --k 2 --seed 42                 (solve/ode only)

SOLVE OPTIONS:
  --engine fmmp|fmmp-fused|fmmp-par|fmmp-par-fused|xmvp|smvp
                                     (xmvp takes --dmax, default ν; the
                                     -fused engines run the cache-blocked
                                     multi-stage butterfly kernels)
  --parallel                         shorthand for --engine fmmp-par
  --isa scalar|avx2|avx512|auto      pin the butterfly kernels' SIMD path
                                     for reproducible runs (default auto:
                                     QS_ISA env, then CPU detection);
                                     accepted by every subcommand
  --method power|lanczos|rqi         (lanczos takes --subspace, default 60)
  --tol 1e-13   --max-iter 200000    --top 8 (sequences shown)
  --json                             machine-readable output
  --trace FILE.jsonl                 dump the solver event stream (JSON Lines)
  --trace-summary                    per-stage timing/residual digest on stderr
  --fault-plan PLAN.json             inject deterministic faults into the Q
                                     operator (qs-fault plan format)
  --recover / --no-recover           toggle the breakdown recovery ladder
                                     (default: on; off surfaces breakdowns as
                                     immediate typed errors)
  --checkpoint-dir DIR               write durable, checksummed snapshots of
                                     the solver state to DIR (double-buffered,
                                     atomic tmp+rename); enables `resume`
  --checkpoint-every K               snapshot cadence in outer iterations
                                     (default 256; 0 = wall-clock cadence only)
  --checkpoint-wall SECS             also snapshot when SECS of wall time
                                     passed since the last write
  --deadline SECS                    wall-clock budget for the solve; on expiry
                                     the best-so-far iterate is returned as a
                                     flagged degraded result (exit 0, JSON
                                     field \"deadline_expired\": true) instead
                                     of running to convergence

trace-check validates a --trace dump: every line parses, at least one
residual event, terminal event 'converged' (nonzero exit otherwise).
--allow-degraded also accepts 'budget'/'recovery_action' terminals;
--expect-recovery demands fault-detection and recovery events;
--expect-zero-alloc demands a solve_allocation event reporting 0 bytes
(the solve hot path never outgrew its warmed workspace).

EXAMPLES:
  quasispecies solve --nu 12 --p 0.01
  quasispecies solve --nu 10 --p 0.01 --trace run.jsonl --trace-summary
  quasispecies solve --nu 8 --p 0.01 --fault-plan plan.json --trace run.jsonl
  quasispecies trace-check --file run.jsonl
  quasispecies solve --nu 10 --p 0.01 --landscape nk --k 3
  quasispecies scan --nu 20 --p-min 0.001 --p-max 0.09 --points 60 --json
  quasispecies threshold --nu 20 --f0 2.0
  quasispecies kron --p 0.002 --factor-bits 10 --factors 10   (ν = 100!)
  quasispecies ode --nu 10 --p 0.01 --t-max 50";

#[derive(Debug)]
enum CliError {
    Arg(ArgError),
    Solve(quasispecies::SolveError),
    Bad(String),
}

impl std::fmt::Display for CliError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CliError::Arg(e) => write!(f, "{e}"),
            CliError::Solve(e) => write!(f, "{e}"),
            CliError::Bad(m) => write!(f, "{m}"),
        }
    }
}

impl From<ArgError> for CliError {
    fn from(e: ArgError) -> Self {
        CliError::Arg(e)
    }
}

impl From<quasispecies::SolveError> for CliError {
    fn from(e: quasispecies::SolveError) -> Self {
        CliError::Solve(e)
    }
}

/// Build the error-class ϕ profile for scan/threshold subcommands.
fn class_profile(args: &Args, nu: u32) -> Result<Vec<f64>, CliError> {
    let kind = args.get("landscape").unwrap_or("single-peak");
    let f0: f64 = args.or_default("f0", 2.0)?;
    match kind {
        "single-peak" => {
            let frest: f64 = args.or_default("frest", 1.0)?;
            Ok(ErrorClass::single_peak(nu, f0, frest).phi().to_vec())
        }
        "linear" => {
            let fnu: f64 = args.or_default("fnu", 1.0)?;
            Ok(ErrorClass::linear(nu, f0, fnu).phi().to_vec())
        }
        other => Err(CliError::Bad(format!(
            "landscape '{other}' is not an error-class kind (scan/threshold need one)"
        ))),
    }
}

/// Apply `--isa scalar|avx2|avx512|auto` before any kernel runs: pins the
/// runtime SIMD dispatch of the butterfly fibre kernels for reproducible
/// benchmarking and the per-ISA CI matrix. `auto` drops any pin and
/// re-resolves from the `QS_ISA` environment variable, then CPUID.
fn apply_isa_override(args: &Args) -> Result<(), CliError> {
    let Some(name) = args.get("isa") else {
        return Ok(());
    };
    match name {
        "auto" => qs_matvec::simd::reset_auto(),
        other => {
            let isa = qs_matvec::Isa::from_name(other).ok_or_else(|| {
                CliError::Bad(format!(
                    "unknown ISA '{other}' (expected scalar|avx2|avx512|auto)"
                ))
            })?;
            qs_matvec::simd::force(isa).map_err(|e| CliError::Bad(e.to_string()))?;
        }
    }
    Ok(())
}

fn build_config(args: &Args, nu: u32) -> Result<SolverConfig, CliError> {
    // `--parallel` is shorthand for the thread-pool engine.
    let default_engine = if args.flag("parallel") {
        "fmmp-par"
    } else {
        "fmmp"
    };
    let engine = match args.get("engine").unwrap_or(default_engine) {
        "fmmp" => Engine::Fmmp,
        "fmmp-fused" => Engine::FmmpFused,
        "fmmp-par" => Engine::FmmpParallel,
        "fmmp-par-fused" => Engine::FmmpParallelFused,
        "xmvp" => Engine::Xmvp {
            d_max: args.or_default("dmax", nu)?,
        },
        "smvp" => Engine::Smvp,
        other => return Err(CliError::Bad(format!("unknown engine '{other}'"))),
    };
    let method = match args.get("method").unwrap_or("power") {
        "power" => Method::Power,
        "lanczos" => Method::Lanczos {
            subspace: args.or_default("subspace", 60usize)?,
        },
        "rqi" => Method::Rqi {
            warmup: args.or_default("warmup", 10usize)?,
        },
        other => return Err(CliError::Bad(format!("unknown method '{other}'"))),
    };
    // `--deadline SECS` arms a wall-clock budget; the deadline is fixed
    // here, before any solve work, so engine setup counts against it.
    let deadline = match args.get("deadline") {
        None => None,
        Some(raw) => {
            let secs: f64 = raw
                .parse()
                .ok()
                .filter(|s: &f64| s.is_finite() && *s >= 0.0)
                .ok_or_else(|| ArgError::Invalid("deadline".into(), raw.into()))?;
            Some(std::time::Instant::now() + std::time::Duration::from_secs_f64(secs))
        }
    };
    Ok(SolverConfig {
        engine,
        method,
        tol: args.or_default("tol", 1e-13)?,
        max_iter: args.or_default("max-iter", 200_000usize)?,
        // Recovery defaults to on; `--no-recover` surfaces breakdowns as
        // immediate typed errors instead (`--recover` spells the default).
        recover: !args.flag("no-recover"),
        deadline,
        ..Default::default()
    })
}

/// Build the `--checkpoint-dir` configuration, if requested. The fault
/// plan's `torn-write-at` crash rule (if any) is routed into the writer
/// here — torn writes are a checkpoint-layer fault, not an operator one.
fn build_checkpoint_config(
    args: &Args,
    plan: Option<&FaultPlan>,
) -> Result<Option<CheckpointConfig>, CliError> {
    let Some(dir) = args.get("checkpoint-dir") else {
        for orphan in ["checkpoint-every", "checkpoint-wall"] {
            if args.get(orphan).is_some() {
                return Err(CliError::Bad(format!(
                    "--{orphan} requires --checkpoint-dir"
                )));
            }
        }
        return Ok(None);
    };
    let mut cfg = CheckpointConfig::new(dir);
    cfg.every_iterations = args.or_default("checkpoint-every", cfg.every_iterations)?;
    if let Some(raw) = args.get("checkpoint-wall") {
        let secs: f64 = raw
            .parse()
            .ok()
            .filter(|s: &f64| s.is_finite() && *s >= 0.0)
            .ok_or_else(|| ArgError::Invalid("checkpoint-wall".into(), raw.into()))?;
        cfg.every_wall = Some(std::time::Duration::from_secs_f64(secs));
    }
    cfg.torn_write_at = plan.and_then(FaultPlan::torn_write_at);
    Ok(Some(cfg))
}

/// Load the `--fault-plan` file, if the option is present.
fn load_fault_plan(args: &Args) -> Result<Option<FaultPlan>, CliError> {
    let Some(path) = args.get("fault-plan") else {
        return Ok(None);
    };
    let text = std::fs::read_to_string(path)
        .map_err(|e| CliError::Bad(format!("cannot read fault plan '{path}': {e}")))?;
    FaultPlan::from_json(&text)
        .map(Some)
        .map_err(|e| CliError::Bad(format!("fault plan '{path}': {e}")))
}

/// Run the solve, wrapping the engine's `Q` operator in a [`FaultyOp`]
/// when a fault plan is given. The fault path goes through
/// `solve_with_q_operator_probed`, so the conservative shift (which that
/// entry point does not compute) is materialised into a custom shift
/// first — a planned fault changes the operator, never the problem.
/// With `ckpt` the durable entry points run instead (the problem hash is
/// identical across the plain and fault paths, so a crashed faulty run
/// resumes cleanly without its plan).
fn solve_dispatch<P: Probe>(
    p: f64,
    landscape: &dyn Landscape,
    config: &SolverConfig,
    plan: Option<&FaultPlan>,
    ckpt: Option<&CheckpointConfig>,
    resume: bool,
    probe: &mut P,
) -> Result<Quasispecies, SolveError> {
    let Some(plan) = plan else {
        return match ckpt {
            Some(ckpt) if resume => resume_durable_probed(p, landscape, config, ckpt, probe),
            Some(ckpt) => solve_durable_probed(p, landscape, config, ckpt, probe),
            None => solve_probed(p, landscape, config, probe),
        };
    };
    if !(p.is_finite() && p > 0.0 && p <= 0.5) {
        return Err(SolveError::InvalidConfig {
            parameter: "p",
            detail: format!("error rate must lie in (0, 1/2], got {p}"),
        });
    }
    let nu = landscape.nu();
    let q_op: Box<dyn LinearOperator> = match config.engine {
        Engine::Fmmp => Box::new(FaultyOp::new(qs_matvec::Fmmp::new(nu, p), plan)),
        Engine::FmmpFused => Box::new(FaultyOp::new(qs_matvec::Fmmp::fused(nu, p), plan)),
        Engine::FmmpParallel => Box::new(FaultyOp::new(qs_matvec::ParFmmp::new(nu, p), plan)),
        Engine::FmmpParallelFused => {
            Box::new(FaultyOp::new(qs_matvec::ParFmmp::fused(nu, p), plan))
        }
        Engine::Xmvp { d_max } => Box::new(FaultyOp::new(qs_matvec::Xmvp::new(nu, p, d_max), plan)),
        Engine::Smvp => Box::new(FaultyOp::new(
            qs_matvec::Smvp::from_model(&qs_mutation::Uniform::new(nu, p)),
            plan,
        )),
        Engine::Kronecker => Box::new(FaultyOp::new(
            qs_matvec::KroneckerOp::from_model(&qs_mutation::Uniform::new(nu, p)),
            plan,
        )),
    };
    let mut config = *config;
    if config.shift == ShiftStrategy::Conservative {
        let f_min = landscape.f_min();
        if !(f_min.is_finite() && f_min > 0.0) {
            return Err(SolveError::InvalidConfig {
                parameter: "fitness",
                detail: format!(
                    "fitness values must be finite and strictly positive, found minimum {f_min}"
                ),
            });
        }
        config.shift = ShiftStrategy::Custom(qs_matvec::conservative_shift(nu, p, f_min));
    }
    match ckpt {
        Some(ckpt) => solve_with_q_operator_durable_probed(
            q_op,
            landscape,
            &config,
            ckpt,
            resume,
            p.to_bits(),
            probe,
        ),
        None => solve_with_q_operator_probed(q_op, landscape, &config, probe),
    }
}

#[derive(Serialize)]
struct SolveRecord {
    nu: u32,
    p: f64,
    lambda: f64,
    iterations: usize,
    residual: f64,
    engine: String,
    method: String,
    converged: bool,
    /// The solve survived a breakdown only as a best-so-far iterate: the
    /// distribution is valid (non-negative, Σ = 1) but above tolerance.
    degraded: bool,
    /// `snake_case` breakdown class the recovery ladder healed (or
    /// degraded through); absent for clean solves.
    #[serde(skip_serializing_if = "Option::is_none")]
    recovered_from: Option<String>,
    /// The `--deadline` budget expired and this is the flagged
    /// best-so-far iterate (implies `degraded`).
    deadline_expired: bool,
    /// Crate version of the emitting binary (build provenance).
    version: String,
    /// Resolved SIMD instruction set the butterfly kernels dispatched to.
    isa: String,
    /// Worker threads available to the run.
    threads: usize,
    /// Checkpoint snapshot format version understood by this build.
    checkpoint_format: u32,
    entropy: f64,
    classes: Vec<f64>,
    top_sequences: Vec<(String, f64)>,
    /// Per-iteration residuals; present only when the solve was traced.
    #[serde(skip_serializing_if = "Option::is_none")]
    residual_history: Option<Vec<f64>>,
}

/// Build a materialisable landscape for solve/ode subcommands.
/// Resolve `--landscape` plus its per-kind knobs into the typed
/// [`LandscapeSpec`] the core request API is keyed on — the same specs
/// (and therefore the same content-addressed cache keys) the solve
/// server accepts over HTTP.
fn landscape_spec(args: &Args, nu: u32) -> Result<LandscapeSpec, CliError> {
    let kind = args.get("landscape").unwrap_or("single-peak");
    Ok(match kind {
        "random" => LandscapeSpec::Random {
            nu,
            c: args.or_default("c", 5.0)?,
            sigma: args.or_default("sigma", 1.0)?,
            seed: args.or_default("seed", 42u64)?,
        },
        "nk" => LandscapeSpec::Nk {
            nu,
            k: args.or_default("k", 2u32)?,
            seed: args.or_default("seed", 42u64)?,
        },
        _ => LandscapeSpec::ErrorClass {
            nu,
            phi: class_profile(args, nu)?,
        },
    })
}

fn build_landscape(args: &Args, nu: u32) -> Result<Box<dyn Landscape>, CliError> {
    landscape_spec(args, nu)?
        .build()
        .map_err(|e| CliError::Bad(e.to_string()))
}

/// The `build_info` provenance event for the current process.
fn build_info_event() -> SolverEvent {
    SolverEvent::BuildInfo {
        version: PKG_VERSION,
        isa: qs_matvec::simd::active().name(),
        threads: std::thread::available_parallelism().map_or(1, |n| n.get()),
        checkpoint_format: FORMAT_VERSION,
    }
}

fn cmd_solve(args: &Args) -> Result<(), CliError> {
    let nu: u32 = args.required("nu")?;
    let p: f64 = args.required("p")?;
    let kind = args.get("landscape").unwrap_or("single-peak");
    let resume = args.command == "resume";
    let landscape = build_landscape(args, nu)?;
    let config = build_config(args, nu)?;
    let plan = load_fault_plan(args)?;
    let plan = plan.as_ref();
    let ckpt = build_checkpoint_config(args, plan)?;
    let ckpt = ckpt.as_ref();
    if resume && ckpt.is_none() {
        return Err(CliError::Bad("resume requires --checkpoint-dir".into()));
    }

    // Tracing: record the event stream (and tee it to a JSONL file when
    // `--trace` names one). Without either flag the plain un-probed solve
    // runs — zero telemetry overhead. Traced runs open with a
    // `build_info` provenance event so resumed runs are auditable.
    let trace_path = args.get("trace");
    let want_summary = args.flag("trace-summary");
    let (qs, recording) = if let Some(path) = trace_path {
        let jsonl = JsonLinesProbe::create(path)
            .map_err(|e| CliError::Bad(format!("cannot create trace file '{path}': {e}")))?;
        let mut tee = Tee(RecordingProbe::new(), jsonl);
        tee.record(&build_info_event());
        let outcome = solve_dispatch(p, landscape.as_ref(), &config, plan, ckpt, resume, &mut tee);
        let Tee(rec, jsonl) = tee;
        // Flush even when the solve failed: a budget-exhausted trace is
        // still a complete, analysable trace.
        jsonl
            .finish()
            .map_err(|e| CliError::Bad(format!("writing trace file '{path}': {e}")))?;
        (outcome, Some(rec))
    } else if want_summary {
        let mut rec = RecordingProbe::new();
        rec.record(&build_info_event());
        let outcome = solve_dispatch(p, landscape.as_ref(), &config, plan, ckpt, resume, &mut rec);
        (outcome, Some(rec))
    } else {
        (
            solve_dispatch(
                p,
                landscape.as_ref(),
                &config,
                plan,
                ckpt,
                resume,
                &mut NullProbe,
            ),
            None,
        )
    };
    if want_summary {
        if let Some(rec) = &recording {
            eprintln!("{}", TraceSummary::from_events(rec.events()));
        }
    }
    let qs = qs?;

    let top: usize = args.or_default("top", 8usize)?;
    let mut ranked: Vec<(u64, f64)> = qs
        .concentrations
        .iter()
        .enumerate()
        .map(|(i, &c)| (i as u64, c))
        .collect();
    ranked.sort_by(|a, b| b.1.total_cmp(&a.1));
    let top_sequences: Vec<(String, f64)> = ranked
        .iter()
        .take(top)
        .map(|&(i, c)| (qs_bitseq::to_bit_string(i, nu), c))
        .collect();

    let record = SolveRecord {
        nu,
        p,
        lambda: qs.lambda,
        iterations: qs.stats.iterations,
        residual: qs.stats.residual,
        engine: qs.stats.engine.clone(),
        method: qs.stats.method.clone(),
        converged: qs.stats.converged,
        degraded: qs.stats.degraded,
        recovered_from: qs.stats.recovered_from.clone(),
        deadline_expired: qs.stats.deadline_expired,
        version: PKG_VERSION.to_string(),
        isa: qs_matvec::simd::active().name().to_string(),
        threads: std::thread::available_parallelism().map_or(1, |n| n.get()),
        checkpoint_format: FORMAT_VERSION,
        entropy: qs.entropy(),
        classes: qs.error_class_concentrations(),
        top_sequences,
        residual_history: qs.stats.residual_history.clone(),
    };
    if args.flag("json") {
        println!(
            "{}",
            serde_json::to_string_pretty(&record).expect("serialize")
        );
    } else {
        println!("quasispecies solve  ν={nu}  p={p}  landscape={kind}");
        println!(
            "  λ₀ = {:.12}   ({} iterations, residual {:.2e}, {}/{})",
            record.lambda, record.iterations, record.residual, record.engine, record.method
        );
        if record.deadline_expired {
            println!(
                "  DEADLINE EXPIRED: wall-clock budget ran out; this is the best-so-far \
                 iterate (valid distribution, residual above tolerance)"
            );
        } else if let Some(kind) = &record.recovered_from {
            if record.degraded {
                println!(
                    "  DEGRADED: breakdown '{kind}' could not be healed; this is the \
                     best-so-far iterate (valid distribution, residual above tolerance)"
                );
            } else {
                println!("  recovered from breakdown '{kind}' (result meets tolerance)");
            }
        }
        println!(
            "  entropy = {:.6} nats (uniform would be {:.6})",
            record.entropy,
            nu as f64 * std::f64::consts::LN_2
        );
        println!("  cumulative error-class concentrations [Γ_k]:");
        for (k, c) in record.classes.iter().enumerate() {
            println!("    Γ_{k:<3} {c:.6e}");
        }
        println!("  top sequences:");
        for (s, c) in &record.top_sequences {
            println!("    {s}  {c:.6e}");
        }
    }
    Ok(())
}

#[derive(Serialize)]
struct ScanRecord {
    nu: u32,
    ps: Vec<f64>,
    classes: Vec<Vec<f64>>,
    order: Vec<f64>,
}

fn cmd_scan(args: &Args) -> Result<(), CliError> {
    let nu: u32 = args.required("nu")?;
    let p_min: f64 = args.required("p-min")?;
    let p_max: f64 = args.required("p-max")?;
    let points: usize = args.or_default("points", 40usize)?;
    if !(0.0 < p_min && p_min < p_max && p_max <= 0.5) {
        return Err(CliError::Bad("need 0 < p-min < p-max ≤ 0.5".into()));
    }
    let phi = class_profile(args, nu)?;
    let ps: Vec<f64> = (0..points)
        .map(|i| p_min + (p_max - p_min) * i as f64 / (points.max(2) - 1) as f64)
        .collect();
    // `--full-sweep` replaces the §5.1 per-point reduction with one
    // batched full-resolution block solve: every grid point advances
    // together through a shared QSweep application per power step.
    let scan = if args.flag("full-sweep") {
        let tol = args.or_default("tol", 1e-12)?;
        let max_iter = args.or_default("max-iter", 200_000usize)?;
        if let Some(path) = args.get("trace") {
            full_sweep_traced(nu, &phi, &ps, tol, max_iter, path)?
        } else {
            let landscape = ErrorClass::new(nu, phi.clone());
            quasispecies::scan_full_sweep(&landscape, &ps, tol, max_iter)?
        }
    } else {
        scan_error_classes(nu, &phi, &ps)
    };
    if args.flag("json") {
        let rec = ScanRecord {
            nu,
            ps: scan.ps.clone(),
            classes: scan.classes.clone(),
            order: scan.order.clone(),
        };
        println!("{}", serde_json::to_string_pretty(&rec).expect("serialize"));
    } else {
        print!("{:>10}", "p");
        for k in 0..=nu {
            print!(" {:>12}", format!("[Γ_{k}]"));
        }
        println!(" {:>12}", "order");
        for (i, &p) in scan.ps.iter().enumerate() {
            print!("{p:>10.5}");
            for c in &scan.classes[i] {
                print!(" {c:>12.5e}");
            }
            println!(" {:>12.5e}", scan.order[i]);
        }
    }
    Ok(())
}

/// `scan --full-sweep --trace FILE`: answer the grid through the warmed
/// batched block path and dump a genuine event stream for `trace-check`.
///
/// The sweep runs twice against one workspace: the first pass warms the
/// pool, the second runs against a marked pool, so the emitted
/// `solve_allocation` event reports **measured** pool-miss bytes — zero
/// exactly when the block path (compaction included) honours the
/// zero-alloc contract. Per-point residuals, the block matvec-column
/// accounting and the terminal convergence marker likewise come straight
/// from solver state, so `trace-check --expect-zero-alloc` gates the
/// sweep hot path end to end.
fn full_sweep_traced(
    nu: u32,
    phi: &[f64],
    ps: &[f64],
    tol: f64,
    max_iter: usize,
    path: &str,
) -> Result<quasispecies::ThresholdScan, CliError> {
    use quasispecies::{order_parameter, Scheduling, SolveRequest, ThresholdScan, Workspace};

    let request = SolveRequest {
        landscape: LandscapeSpec::ErrorClass {
            nu,
            phi: phi.to_vec(),
        },
        ps: ps.to_vec(),
        method: Method::Power,
        tol,
        max_iter,
        scheduling: Scheduling {
            parallel: false,
            warm_start: true,
            compact: true,
        },
    };
    let mut ws = Workspace::new();
    let warmup = request.run_in(&mut ws)?;
    warmup.recycle(&mut ws);
    ws.mark();
    let result = request.run_in(&mut ws)?;

    let mut jsonl = JsonLinesProbe::create(path)
        .map_err(|e| CliError::Bad(format!("cannot create trace file '{path}': {e}")))?;
    jsonl.record(&build_info_event());
    let mut iterations_max = 0usize;
    let mut residual_max = 0.0f64;
    let mut lambda_last = 0.0f64;
    for point in &result.points {
        let stats = &point.solution.stats;
        jsonl.record(&SolverEvent::Residual {
            iter: stats.iterations,
            value: stats.residual,
            lambda: point.solution.lambda,
        });
        iterations_max = iterations_max.max(stats.iterations);
        residual_max = residual_max.max(stats.residual);
        lambda_last = point.solution.lambda;
    }
    if result.block.columns > 0 {
        jsonl.record(&SolverEvent::BlockProgress {
            columns: result.block.columns as usize,
            live: 0,
            compactions: result.block.compactions,
            matvec_columns: result.block.matvec_columns,
            matvec_columns_saved: result.block.matvec_columns_saved,
        });
    }
    jsonl.record(&SolverEvent::Converged {
        iterations: iterations_max,
        matvecs: result.block.matvec_columns as usize,
        residual: residual_max,
        lambda: lambda_last,
    });
    jsonl.record(&SolverEvent::SolveAllocation {
        bytes: ws.bytes_since_mark(),
    });
    jsonl
        .finish()
        .map_err(|e| CliError::Bad(format!("writing trace file '{path}': {e}")))?;

    let mut classes = Vec::with_capacity(result.points.len());
    let mut order = Vec::with_capacity(result.points.len());
    for point in &result.points {
        let profile = point.solution.error_class_concentrations();
        order.push(order_parameter(nu, &profile));
        classes.push(profile);
    }
    Ok(ThresholdScan {
        nu,
        ps: ps.to_vec(),
        classes,
        order,
    })
}

fn cmd_kron(args: &Args) -> Result<(), CliError> {
    let p: f64 = args.required("p")?;
    let bits: u32 = args.or_default("factor-bits", 10u32)?;
    let count: usize = args.or_default("factors", 4usize)?;
    let seed: u64 = args.or_default("seed", 42u64)?;
    if bits == 0 || bits > 20 || count == 0 {
        return Err(CliError::Bad(
            "need 1 ≤ factor-bits ≤ 20 and factors ≥ 1".into(),
        ));
    }
    // Per-factor landscape: a sub-master plus seeded ruggedness.
    let dim = 1usize << bits;
    let factor: Vec<f64> = (0..dim as u64)
        .map(|d| {
            if d == 0 {
                2.0
            } else {
                1.0 + ((d.wrapping_mul(seed | 1).wrapping_mul(2654435761)) % 97) as f64 / 500.0
            }
        })
        .collect();
    let landscape = qs_landscape::Kronecker::uniform(count, factor);
    let nu = count as u32 * bits;
    let t0 = std::time::Instant::now();
    let qs = quasispecies::solve_kronecker(p, &landscape, &SolverConfig::default())?;
    let elapsed = t0.elapsed().as_secs_f64();
    let gamma = qs.class_concentrations();
    if args.flag("json") {
        #[derive(Serialize)]
        struct KronRecord {
            nu: u32,
            p: f64,
            lambda: f64,
            stored_values: usize,
            classes: Vec<f64>,
            seconds: f64,
        }
        let rec = KronRecord {
            nu,
            p,
            lambda: qs.lambda,
            stored_values: qs.stored_values(),
            classes: gamma,
            seconds: elapsed,
        };
        println!("{}", serde_json::to_string_pretty(&rec).expect("serialize"));
    } else {
        println!("Kronecker quasispecies  ν={nu} (N = 2^{nu}), {count} factors × {bits} bits");
        println!("  solved in {elapsed:.3} s: λ₀ = {:.10}", qs.lambda);
        println!(
            "  implicit eigenvector: {} stored values",
            qs.stored_values()
        );
        println!("  leading error classes:");
        for (k, g) in gamma.iter().take(8).enumerate() {
            println!("    [Γ_{k:<3}] {g:.6e}");
        }
        let total: f64 = gamma.iter().sum();
        println!("  Σ[Γ_k] = {total:.12}");
    }
    Ok(())
}

fn cmd_ode(args: &Args) -> Result<(), CliError> {
    let nu: u32 = args.required("nu")?;
    let p: f64 = args.required("p")?;
    let t_max: f64 = args.or_default("t-max", 1000.0)?;
    let landscape = build_landscape(args, nu)?;
    let flow = qs_ode::ReplicatorFlow::new(qs_matvec::Fmmp::new(nu, p), landscape.materialize());
    let mut x0 = vec![0.0; 1 << nu];
    x0[0] = 1.0; // the paper's initial condition: pure master population
    let res = qs_ode::integrate_to_steady_state(
        &flow,
        &x0,
        &qs_ode::SteadyStateOptions {
            t_max,
            ..Default::default()
        },
    );
    let gamma = qs_bitseq::accumulate_classes(&res.x);
    if args.flag("json") {
        #[derive(Serialize)]
        struct OdeRecord {
            nu: u32,
            p: f64,
            mean_fitness: f64,
            t: f64,
            residual: f64,
            converged: bool,
            classes: Vec<f64>,
        }
        let rec = OdeRecord {
            nu,
            p,
            mean_fitness: res.mean_fitness,
            t: res.t,
            residual: res.residual,
            converged: res.converged,
            classes: gamma,
        };
        println!("{}", serde_json::to_string_pretty(&rec).expect("serialize"));
    } else {
        println!("replicator–mutator dynamics  ν={nu}  p={p}  from x₀ = 1:");
        println!(
            "  steady state at t = {:.1} (converged: {}), ‖dx/dt‖∞ = {:.2e}",
            res.t, res.converged, res.residual
        );
        println!(
            "  mean fitness Φ∞ = {:.10} (= λ₀ of W = Q·F)",
            res.mean_fitness
        );
        println!("  stationary error classes:");
        for (k, g) in gamma.iter().take(8).enumerate() {
            println!("    [Γ_{k:<3}] {g:.6e}");
        }
    }
    Ok(())
}

/// The pure core of `trace-check`: validate an event-tag stream.
///
/// Base contract: at least one `residual` event, terminal event
/// `converged`. With `allow_degraded` the stream may instead end in
/// `budget` or `recovery_action` (a degraded run's trace is still a
/// complete, analysable trace). With `expect_recovery` the stream must
/// additionally show the self-healing machinery firing: at least one
/// detection event (`fault_detected` / `guardrail_tripped`) and at least
/// one reaction (`retry` / `recovery_action`).
fn check_tags(
    tags: &[String],
    expect_recovery: bool,
    allow_degraded: bool,
) -> Result<String, String> {
    if tags.is_empty() {
        return Err("trace contains no events".into());
    }
    let count = |wanted: &[&str]| tags.iter().filter(|t| wanted.contains(&t.as_str())).count();
    let residuals = count(&["residual"]);
    if residuals == 0 {
        return Err(format!(
            "trace has no residual events ({} events total)",
            tags.len()
        ));
    }
    // Allocation accounting rides after the terminal marker; skip such
    // bookkeeping events when locating it.
    let terminal = tags
        .iter()
        .rev()
        .map(String::as_str)
        .find(|t| *t != "solve_allocation")
        .unwrap_or("solve_allocation");
    let terminal_ok = match terminal {
        "converged" => true,
        "budget" | "recovery_action" => allow_degraded,
        _ => false,
    };
    if !terminal_ok {
        let expected = if allow_degraded {
            "'converged', 'budget' or 'recovery_action'"
        } else {
            "'converged'"
        };
        return Err(format!("trace ends with '{terminal}', expected {expected}"));
    }
    if expect_recovery {
        let detections = count(&["fault_detected", "guardrail_tripped"]);
        let reactions = count(&["retry", "recovery_action"]);
        if detections == 0 {
            return Err("trace shows no fault_detected/guardrail_tripped events \
                        (--expect-recovery)"
                .into());
        }
        if reactions == 0 {
            return Err("trace shows no retry/recovery_action events (--expect-recovery)".into());
        }
        return Ok(format!(
            "ok: {} events, {} residuals, {} detections, {} recovery reactions, \
             terminal event '{terminal}'",
            tags.len(),
            residuals,
            detections,
            reactions
        ));
    }
    Ok(format!(
        "ok: {} events, {} residuals, terminal event '{terminal}'",
        tags.len(),
        residuals
    ))
}

/// The pure core of `--expect-zero-alloc`: the trace must report
/// allocation accounting, and every reported `solve_allocation` value
/// must be zero bytes (the solve hot path never outgrew its warmed
/// workspace).
fn check_zero_alloc(alloc_bytes: &[u64]) -> Result<String, String> {
    if alloc_bytes.is_empty() {
        return Err("trace has no solve_allocation events (--expect-zero-alloc)".into());
    }
    match alloc_bytes.iter().find(|&&b| b != 0) {
        Some(b) => Err(format!(
            "solve allocated {b} bytes past warm-up (--expect-zero-alloc)"
        )),
        None => Ok(format!("zero-alloc ok over {} solve(s)", alloc_bytes.len())),
    }
}

/// Run the HTTP solve service until a `POST /shutdown` arrives. The
/// listening address is printed (and flushed) before the accept loop
/// starts so scripted callers can wait on the line, then `curl` it.
fn cmd_serve(args: &Args) -> Result<(), CliError> {
    use std::io::Write as _;
    let config = qs_server::ServerConfig {
        addr: args.get("addr").unwrap_or("127.0.0.1:8787").to_string(),
        workers: args.or_default("workers", 2usize)?,
        coalesce_window: std::time::Duration::from_millis(args.or_default("coalesce-ms", 25u64)?),
        max_nu: args.or_default("max-nu", 22u32)?,
        cache_capacity: args.or_default("cache-capacity", 4096usize)?,
        cache_bytes: args.or_default("cache-bytes", 64u64 << 20)?,
        max_batch: match args.get("max-batch") {
            Some(_) => Some(args.or_default("max-batch", 0usize)?),
            None => None,
        },
        warm_cache_bytes: args.or_default("warm-cache-bytes", 32u64 << 20)?,
        idle_timeout: std::time::Duration::from_millis(
            args.or_default("idle-timeout-ms", 5000u64)?,
        ),
        max_requests_per_connection: args.or_default("max-requests-per-connection", 1024usize)?,
        fault_plan: load_fault_plan(args)?,
    };
    let server = qs_server::Server::bind(config)
        .map_err(|e| CliError::Bad(format!("cannot bind server: {e}")))?;
    println!("listening on http://{}", server.local_addr());
    std::io::stdout()
        .flush()
        .map_err(|e| CliError::Bad(format!("stdout: {e}")))?;
    server.run();
    println!("server stopped");
    Ok(())
}

/// Validate a `--trace` JSONL dump: every line parses as a JSON object
/// with an `"event"` tag, then the stream passes [`check_tags`] (and
/// [`check_zero_alloc`] with `--expect-zero-alloc`). Used by CI as a
/// telemetry and fault-recovery smoke test.
fn cmd_trace_check(args: &Args) -> Result<(), CliError> {
    let path: String = args.required("file")?;
    let text = std::fs::read_to_string(&path)
        .map_err(|e| CliError::Bad(format!("cannot read '{path}': {e}")))?;
    let mut tags: Vec<String> = Vec::new();
    let mut alloc_bytes: Vec<u64> = Vec::new();
    for (idx, line) in text.lines().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        let value: serde_json::Value = serde_json::from_str(line)
            .map_err(|e| CliError::Bad(format!("{path}:{}: invalid JSON: {e}", idx + 1)))?;
        let tag = value
            .get("event")
            .and_then(serde_json::Value::as_str)
            .ok_or_else(|| CliError::Bad(format!("{path}:{}: missing \"event\" tag", idx + 1)))?;
        if tag == "solve_allocation" {
            let bytes = value
                .get("bytes")
                .and_then(serde_json::Value::as_u64)
                .ok_or_else(|| {
                    CliError::Bad(format!(
                        "{path}:{}: solve_allocation event missing \"bytes\"",
                        idx + 1
                    ))
                })?;
            alloc_bytes.push(bytes);
        }
        tags.push(tag.to_string());
    }
    let mut verdict = check_tags(
        &tags,
        args.flag("expect-recovery"),
        args.flag("allow-degraded"),
    )
    .map_err(|m| CliError::Bad(format!("'{path}': {m}")))?;
    if args.flag("expect-zero-alloc") {
        let alloc_verdict =
            check_zero_alloc(&alloc_bytes).map_err(|m| CliError::Bad(format!("'{path}': {m}")))?;
        verdict = format!("{verdict}; {alloc_verdict}");
    }
    if !args.flag("quiet") {
        println!("{verdict}");
    }
    Ok(())
}

fn cmd_threshold(args: &Args) -> Result<(), CliError> {
    let nu: u32 = args.required("nu")?;
    let lo: f64 = args.or_default("lo", 0.001)?;
    let hi: f64 = args.or_default("hi", 0.2)?;
    let eps: f64 = args.or_default("eps", 1e-3)?;
    let phi = class_profile(args, nu)?;
    match detect_pmax(nu, &phi, lo, hi, eps, 50) {
        Some(pmax) => {
            if args.flag("json") {
                println!("{{\"nu\": {nu}, \"p_max\": {pmax}}}");
            } else {
                println!("error threshold for ν={nu}: p_max ≈ {pmax:.6}");
            }
            Ok(())
        }
        None => Err(CliError::Bad(format!(
            "no threshold crossing found in [{lo}, {hi}] (distribution ordered/disordered across the whole bracket)"
        ))),
    }
}

#[cfg(test)]
mod tests {
    use super::{check_tags, check_zero_alloc};

    fn tags(names: &[&str]) -> Vec<String> {
        names.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn clean_converged_trace_passes() {
        let t = tags(&["iteration", "residual", "converged"]);
        assert!(check_tags(&t, false, false).is_ok());
        // And still passes under the stricter terminal set.
        assert!(check_tags(&t, false, true).is_ok());
    }

    #[test]
    fn missing_residuals_or_bad_terminal_fail() {
        assert!(check_tags(&tags(&[]), false, false).is_err());
        assert!(check_tags(&tags(&["iteration", "converged"]), false, false).is_err());
        assert!(check_tags(&tags(&["residual", "budget"]), false, false).is_err());
        assert!(check_tags(&tags(&["residual", "iteration"]), false, true).is_err());
    }

    #[test]
    fn allow_degraded_accepts_budget_and_recovery_terminals() {
        assert!(check_tags(&tags(&["residual", "budget"]), false, true).is_ok());
        assert!(check_tags(&tags(&["residual", "recovery_action"]), false, true).is_ok());
    }

    #[test]
    fn expect_recovery_demands_detection_and_reaction() {
        let healed = tags(&[
            "residual",
            "guardrail_tripped",
            "recovery_action",
            "residual",
            "converged",
        ]);
        assert!(check_tags(&healed, true, false).is_ok());
        // Detection without reaction, and vice versa, both fail.
        let detect_only = tags(&["residual", "fault_detected", "converged"]);
        assert!(check_tags(&detect_only, true, false).is_err());
        let react_only = tags(&["residual", "retry", "converged"]);
        assert!(check_tags(&react_only, true, false).is_err());
        // A clean trace fails --expect-recovery: nothing was injected.
        let clean = tags(&["residual", "converged"]);
        assert!(check_tags(&clean, true, false).is_err());
    }

    #[test]
    fn trailing_allocation_event_does_not_hide_the_terminal() {
        let t = tags(&["residual", "converged", "solve_allocation"]);
        assert!(check_tags(&t, false, false).is_ok());
        // But bookkeeping alone is not a terminal.
        let t = tags(&["residual", "solve_allocation"]);
        assert!(check_tags(&t, false, false).is_err());
    }

    #[test]
    fn zero_alloc_check_demands_presence_and_zero() {
        assert!(check_zero_alloc(&[]).is_err());
        assert!(check_zero_alloc(&[0]).is_ok());
        assert!(check_zero_alloc(&[0, 0, 0]).is_ok());
        let err = check_zero_alloc(&[0, 4096]).unwrap_err();
        assert!(err.contains("4096 bytes"));
    }
}
