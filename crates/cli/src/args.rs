//! Minimal dependency-free argument parsing for the `quasispecies` CLI.

use std::collections::HashMap;

/// Parsed command line: a subcommand plus `--key value` / `--flag` options.
#[derive(Debug, Clone)]
pub struct Args {
    /// The subcommand (first positional argument).
    pub command: String,
    options: HashMap<String, String>,
    flags: Vec<String>,
}

/// Errors produced while parsing or querying arguments.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ArgError {
    /// No subcommand given.
    MissingCommand,
    /// An option was given without a value.
    MissingValue(String),
    /// A required option is absent.
    Required(String),
    /// A value failed to parse.
    Invalid(String, String),
    /// A positional argument appeared where none is accepted.
    UnexpectedPositional(String),
}

impl std::fmt::Display for ArgError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ArgError::MissingCommand => write!(f, "missing subcommand (try --help)"),
            ArgError::MissingValue(k) => write!(f, "option --{k} requires a value"),
            ArgError::Required(k) => write!(f, "missing required option --{k}"),
            ArgError::Invalid(k, v) => write!(f, "invalid value '{v}' for --{k}"),
            ArgError::UnexpectedPositional(v) => write!(f, "unexpected argument '{v}'"),
        }
    }
}

impl std::error::Error for ArgError {}

/// Option keys that are boolean flags (take no value).
const FLAG_KEYS: &[&str] = &[
    "json",
    "help",
    "quiet",
    "parallel",
    "trace-summary",
    "recover",
    "no-recover",
    "expect-recovery",
    "expect-zero-alloc",
    "allow-degraded",
    "full-sweep",
];

impl Args {
    /// Parse from an iterator of raw arguments (excluding the program
    /// name).
    ///
    /// # Errors
    ///
    /// Returns [`ArgError`] on malformed input.
    pub fn parse(raw: impl IntoIterator<Item = String>) -> Result<Args, ArgError> {
        let mut iter = raw.into_iter().peekable();
        let command = match iter.next() {
            Some(c) if !c.starts_with("--") => c,
            Some(c) => {
                // Allow `--help` with no subcommand.
                if c == "--help" {
                    return Ok(Args {
                        command: "help".into(),
                        options: HashMap::new(),
                        flags: vec!["help".into()],
                    });
                }
                return Err(ArgError::UnexpectedPositional(c));
            }
            None => return Err(ArgError::MissingCommand),
        };
        let mut options = HashMap::new();
        let mut flags = Vec::new();
        while let Some(tok) = iter.next() {
            let Some(key) = tok.strip_prefix("--") else {
                return Err(ArgError::UnexpectedPositional(tok));
            };
            if FLAG_KEYS.contains(&key) {
                flags.push(key.to_string());
            } else {
                let value = iter
                    .next()
                    .ok_or_else(|| ArgError::MissingValue(key.into()))?;
                options.insert(key.to_string(), value);
            }
        }
        Ok(Args {
            command,
            options,
            flags,
        })
    }

    /// Is a boolean flag present?
    pub fn flag(&self, key: &str) -> bool {
        self.flags.iter().any(|f| f == key)
    }

    /// A required typed option.
    ///
    /// # Errors
    ///
    /// [`ArgError::Required`] if absent, [`ArgError::Invalid`] on parse
    /// failure.
    pub fn required<T: std::str::FromStr>(&self, key: &str) -> Result<T, ArgError> {
        let raw = self
            .options
            .get(key)
            .ok_or_else(|| ArgError::Required(key.into()))?;
        raw.parse()
            .map_err(|_| ArgError::Invalid(key.into(), raw.clone()))
    }

    /// An optional typed option with a default.
    ///
    /// # Errors
    ///
    /// [`ArgError::Invalid`] on parse failure.
    pub fn or_default<T: std::str::FromStr>(&self, key: &str, default: T) -> Result<T, ArgError> {
        match self.options.get(key) {
            None => Ok(default),
            Some(raw) => raw
                .parse()
                .map_err(|_| ArgError::Invalid(key.into(), raw.clone())),
        }
    }

    /// An optional string option.
    pub fn get(&self, key: &str) -> Option<&str> {
        self.options.get(key).map(String::as_str)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(words: &[&str]) -> Result<Args, ArgError> {
        Args::parse(words.iter().map(|s| s.to_string()))
    }

    #[test]
    fn basic_parse() {
        let a = parse(&["solve", "--nu", "10", "--p", "0.01", "--json"]).unwrap();
        assert_eq!(a.command, "solve");
        assert_eq!(a.required::<u32>("nu").unwrap(), 10);
        assert_eq!(a.required::<f64>("p").unwrap(), 0.01);
        assert!(a.flag("json"));
        assert!(!a.flag("quiet"));
    }

    #[test]
    fn defaults_apply() {
        let a = parse(&["solve", "--nu", "8"]).unwrap();
        assert_eq!(a.or_default("tol", 1e-13).unwrap(), 1e-13);
        assert_eq!(a.or_default("seed", 42u64).unwrap(), 42);
    }

    #[test]
    fn missing_required_reported() {
        let a = parse(&["solve"]).unwrap();
        assert_eq!(
            a.required::<u32>("nu").unwrap_err(),
            ArgError::Required("nu".into())
        );
    }

    #[test]
    fn invalid_value_reported() {
        let a = parse(&["solve", "--nu", "ten"]).unwrap();
        assert!(matches!(
            a.required::<u32>("nu").unwrap_err(),
            ArgError::Invalid(_, _)
        ));
    }

    #[test]
    fn missing_value_reported() {
        assert_eq!(
            parse(&["solve", "--nu"]).unwrap_err(),
            ArgError::MissingValue("nu".into())
        );
    }

    #[test]
    fn trace_flags_parse() {
        // `--trace` takes a value, `--trace-summary` is a bare flag.
        let a = parse(&["solve", "--trace", "out.jsonl", "--trace-summary"]).unwrap();
        assert_eq!(a.get("trace"), Some("out.jsonl"));
        assert!(a.flag("trace-summary"));
    }

    #[test]
    fn recovery_flags_parse() {
        let a = parse(&["solve", "--no-recover", "--fault-plan", "plan.json"]).unwrap();
        assert!(a.flag("no-recover"));
        assert!(!a.flag("recover"));
        assert_eq!(a.get("fault-plan"), Some("plan.json"));
        let a = parse(&["trace-check", "--expect-recovery", "--allow-degraded"]).unwrap();
        assert!(a.flag("expect-recovery") && a.flag("allow-degraded"));
        let a = parse(&["trace-check", "--expect-zero-alloc"]).unwrap();
        assert!(a.flag("expect-zero-alloc"));
    }

    #[test]
    fn bare_help_allowed() {
        let a = parse(&["--help"]).unwrap();
        assert_eq!(a.command, "help");
    }

    #[test]
    fn empty_is_missing_command() {
        assert_eq!(parse(&[]).unwrap_err(), ArgError::MissingCommand);
    }
}
