//! End-to-end tests of the `quasispecies` binary: real process spawns,
//! real argument parsing, machine-readable output checked for the same
//! physics the library tests pin down.

use std::process::{Command, Output};

fn run(args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_quasispecies"))
        .args(args)
        .output()
        .expect("binary runs")
}

fn stdout_json(args: &[&str]) -> serde_json::Value {
    let out = run(args);
    assert!(
        out.status.success(),
        "command failed: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    serde_json::from_slice(&out.stdout).expect("valid JSON output")
}

#[test]
fn solve_json_has_the_expected_physics() {
    let v = stdout_json(&["solve", "--nu", "8", "--p", "0.01", "--json"]);
    let lambda = v["lambda"].as_f64().unwrap();
    assert!(lambda > 1.8 && lambda < 2.0, "λ = {lambda}");
    let classes = v["classes"].as_array().unwrap();
    assert_eq!(classes.len(), 9);
    let total: f64 = classes.iter().map(|c| c.as_f64().unwrap()).sum();
    assert!((total - 1.0).abs() < 1e-9);
    // Master sequence tops the ranking at small p.
    assert_eq!(v["top_sequences"][0][0].as_str().unwrap(), "00000000");
}

#[test]
fn engines_agree_through_the_cli() {
    let a = stdout_json(&["solve", "--nu", "7", "--p", "0.02", "--json"]);
    let b = stdout_json(&[
        "solve", "--nu", "7", "--p", "0.02", "--engine", "xmvp", "--json",
    ]);
    let (la, lb) = (a["lambda"].as_f64().unwrap(), b["lambda"].as_f64().unwrap());
    assert!((la - lb).abs() < 1e-9, "{la} vs {lb}");
}

#[test]
fn threshold_detects_the_paper_value() {
    let v = stdout_json(&["threshold", "--nu", "20", "--json"]);
    let pmax = v["p_max"].as_f64().unwrap();
    assert!((pmax - 0.035).abs() < 0.005, "p_max = {pmax}");
}

#[test]
fn scan_emits_a_grid() {
    let v = stdout_json(&[
        "scan", "--nu", "10", "--p-min", "0.005", "--p-max", "0.05", "--points", "5", "--json",
    ]);
    assert_eq!(v["ps"].as_array().unwrap().len(), 5);
    assert_eq!(v["classes"].as_array().unwrap().len(), 5);
    assert_eq!(v["classes"][0].as_array().unwrap().len(), 11);
    // Order parameter decreases along the grid for the single peak.
    let order: Vec<f64> = v["order"]
        .as_array()
        .unwrap()
        .iter()
        .map(|x| x.as_f64().unwrap())
        .collect();
    assert!(order.first() > order.last());
}

#[test]
fn kron_solves_nu_100() {
    let v = stdout_json(&[
        "kron",
        "--p",
        "0.002",
        "--factor-bits",
        "8",
        "--factors",
        "4",
        "--json",
    ]);
    assert_eq!(v["nu"].as_u64().unwrap(), 32);
    let classes = v["classes"].as_array().unwrap();
    assert_eq!(classes.len(), 33);
    let total: f64 = classes.iter().map(|c| c.as_f64().unwrap()).sum();
    assert!((total - 1.0).abs() < 1e-8);
}

#[test]
fn ode_steady_state_matches_solve() {
    let ode = stdout_json(&["ode", "--nu", "6", "--p", "0.02", "--json"]);
    let solve = stdout_json(&["solve", "--nu", "6", "--p", "0.02", "--json"]);
    let phi = ode["mean_fitness"].as_f64().unwrap();
    let lambda = solve["lambda"].as_f64().unwrap();
    assert!((phi - lambda).abs() < 1e-6, "Φ∞ = {phi} vs λ₀ = {lambda}");
    assert!(ode["converged"].as_bool().unwrap());
}

#[test]
fn trace_dump_matches_json_stats_and_passes_trace_check() {
    let dir = std::env::temp_dir().join(format!("qs-cli-trace-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let trace = dir.join("solve.trace.jsonl");
    let trace_str = trace.to_str().unwrap();

    // The acceptance scenario: ν = 10 solve with --trace.
    let v = stdout_json(&[
        "solve", "--nu", "10", "--p", "0.01", "--trace", trace_str, "--json",
    ]);

    // Every line parses as JSON with an "event" tag.
    let text = std::fs::read_to_string(&trace).unwrap();
    let events: Vec<serde_json::Value> = text
        .lines()
        .map(|l| serde_json::from_str(l).expect("trace line parses"))
        .collect();
    assert!(!events.is_empty());
    for e in &events {
        assert!(e["event"].is_string(), "tagged event: {e}");
    }
    // The stream's terminal marker is a converged event whose fields match
    // the record. Post-terminal bookkeeping (the solve_allocation report)
    // may legitimately trail it.
    let last = events
        .iter()
        .rev()
        .find(|e| e["event"] == "converged")
        .expect("stream contains a converged event");
    for e in events.iter().rev() {
        if e["event"] == "converged" {
            break;
        }
        assert_eq!(
            e["event"].as_str().unwrap(),
            "solve_allocation",
            "only allocation bookkeeping may trail the terminal marker"
        );
    }
    assert_eq!(
        last["iterations"].as_u64().unwrap(),
        v["iterations"].as_u64().unwrap()
    );
    assert_eq!(
        last["residual"].as_f64().unwrap(),
        v["residual"].as_f64().unwrap()
    );
    assert_eq!(
        last["lambda"].as_f64().unwrap(),
        v["lambda"].as_f64().unwrap()
    );

    // The residual events reproduce the record's residual_history exactly.
    let traced: Vec<f64> = events
        .iter()
        .filter(|e| e["event"] == "residual")
        .map(|e| e["value"].as_f64().unwrap())
        .collect();
    let history: Vec<f64> = v["residual_history"]
        .as_array()
        .expect("traced solve reports residual_history")
        .iter()
        .map(|x| x.as_f64().unwrap())
        .collect();
    assert_eq!(traced, history);
    assert_eq!(history.last().copied(), v["residual"].as_f64());
    assert_eq!(history.len() as u64, v["iterations"].as_u64().unwrap());

    // The binary's own validator accepts the dump…
    let ok = run(&["trace-check", "--file", trace_str]);
    assert!(
        ok.status.success(),
        "{}",
        String::from_utf8_lossy(&ok.stderr)
    );
    assert!(String::from_utf8_lossy(&ok.stdout).contains("ok:"));

    // …and rejects a truncated one (no terminal converged event). Cut at
    // the converged marker itself: only dropping the trailing allocation
    // bookkeeping would leave a stream that still legitimately verifies.
    let converged_at = events
        .iter()
        .position(|e| e["event"] == "converged")
        .unwrap();
    let truncated = dir.join("truncated.trace.jsonl");
    let keep: Vec<&str> = text.lines().take(converged_at).collect();
    std::fs::write(&truncated, keep.join("\n")).unwrap();
    let bad = run(&["trace-check", "--file", truncated.to_str().unwrap()]);
    assert!(!bad.status.success());
    assert!(String::from_utf8_lossy(&bad.stderr).contains("expected 'converged'"));

    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn traced_solve_matches_untraced_bit_for_bit() {
    let dir = std::env::temp_dir().join(format!("qs-cli-trace-eq-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let trace = dir.join("eq.trace.jsonl");

    let plain = stdout_json(&["solve", "--nu", "8", "--p", "0.02", "--json"]);
    let traced = stdout_json(&[
        "solve",
        "--nu",
        "8",
        "--p",
        "0.02",
        "--trace",
        trace.to_str().unwrap(),
        "--json",
    ]);
    // Identical to the last bit: probes must not perturb the arithmetic.
    assert_eq!(plain["lambda"], traced["lambda"]);
    assert_eq!(plain["residual"], traced["residual"]);
    assert_eq!(plain["iterations"], traced["iterations"]);
    assert_eq!(plain["classes"], traced["classes"]);
    // Only the traced run carries a history.
    assert!(plain.get("residual_history").is_none());
    assert!(traced["residual_history"].is_array());

    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn trace_summary_prints_stage_digest() {
    let out = run(&["solve", "--nu", "8", "--p", "0.01", "--trace-summary"]);
    assert!(out.status.success());
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("iterations"), "summary on stderr: {err}");
    assert!(err.contains("fmmp-stage"), "per-stage timings: {err}");
}

#[test]
fn unknown_subcommand_fails_with_usage() {
    let out = run(&["frobnicate"]);
    assert!(!out.status.success());
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("unknown subcommand"));
    assert!(err.contains("USAGE"));
}

#[test]
fn missing_required_option_fails_cleanly() {
    let out = run(&["solve", "--p", "0.01"]);
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("--nu"));
}

#[test]
fn help_prints_usage_successfully() {
    let out = run(&["help"]);
    assert!(out.status.success());
    assert!(String::from_utf8_lossy(&out.stdout).contains("USAGE"));
}
