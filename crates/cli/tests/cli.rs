//! End-to-end tests of the `quasispecies` binary: real process spawns,
//! real argument parsing, machine-readable output checked for the same
//! physics the library tests pin down.

use std::process::{Command, Output};

fn run(args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_quasispecies"))
        .args(args)
        .output()
        .expect("binary runs")
}

fn stdout_json(args: &[&str]) -> serde_json::Value {
    let out = run(args);
    assert!(
        out.status.success(),
        "command failed: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    serde_json::from_slice(&out.stdout).expect("valid JSON output")
}

#[test]
fn solve_json_has_the_expected_physics() {
    let v = stdout_json(&["solve", "--nu", "8", "--p", "0.01", "--json"]);
    let lambda = v["lambda"].as_f64().unwrap();
    assert!(lambda > 1.8 && lambda < 2.0, "λ = {lambda}");
    let classes = v["classes"].as_array().unwrap();
    assert_eq!(classes.len(), 9);
    let total: f64 = classes.iter().map(|c| c.as_f64().unwrap()).sum();
    assert!((total - 1.0).abs() < 1e-9);
    // Master sequence tops the ranking at small p.
    assert_eq!(v["top_sequences"][0][0].as_str().unwrap(), "00000000");
}

#[test]
fn engines_agree_through_the_cli() {
    let a = stdout_json(&["solve", "--nu", "7", "--p", "0.02", "--json"]);
    let b = stdout_json(&[
        "solve", "--nu", "7", "--p", "0.02", "--engine", "xmvp", "--json",
    ]);
    let (la, lb) = (a["lambda"].as_f64().unwrap(), b["lambda"].as_f64().unwrap());
    assert!((la - lb).abs() < 1e-9, "{la} vs {lb}");
}

#[test]
fn threshold_detects_the_paper_value() {
    let v = stdout_json(&["threshold", "--nu", "20", "--json"]);
    let pmax = v["p_max"].as_f64().unwrap();
    assert!((pmax - 0.035).abs() < 0.005, "p_max = {pmax}");
}

#[test]
fn scan_emits_a_grid() {
    let v = stdout_json(&[
        "scan", "--nu", "10", "--p-min", "0.005", "--p-max", "0.05", "--points", "5", "--json",
    ]);
    assert_eq!(v["ps"].as_array().unwrap().len(), 5);
    assert_eq!(v["classes"].as_array().unwrap().len(), 5);
    assert_eq!(v["classes"][0].as_array().unwrap().len(), 11);
    // Order parameter decreases along the grid for the single peak.
    let order: Vec<f64> = v["order"]
        .as_array()
        .unwrap()
        .iter()
        .map(|x| x.as_f64().unwrap())
        .collect();
    assert!(order.first() > order.last());
}

#[test]
fn kron_solves_nu_100() {
    let v = stdout_json(&[
        "kron",
        "--p",
        "0.002",
        "--factor-bits",
        "8",
        "--factors",
        "4",
        "--json",
    ]);
    assert_eq!(v["nu"].as_u64().unwrap(), 32);
    let classes = v["classes"].as_array().unwrap();
    assert_eq!(classes.len(), 33);
    let total: f64 = classes.iter().map(|c| c.as_f64().unwrap()).sum();
    assert!((total - 1.0).abs() < 1e-8);
}

#[test]
fn ode_steady_state_matches_solve() {
    let ode = stdout_json(&["ode", "--nu", "6", "--p", "0.02", "--json"]);
    let solve = stdout_json(&["solve", "--nu", "6", "--p", "0.02", "--json"]);
    let phi = ode["mean_fitness"].as_f64().unwrap();
    let lambda = solve["lambda"].as_f64().unwrap();
    assert!((phi - lambda).abs() < 1e-6, "Φ∞ = {phi} vs λ₀ = {lambda}");
    assert!(ode["converged"].as_bool().unwrap());
}

#[test]
fn unknown_subcommand_fails_with_usage() {
    let out = run(&["frobnicate"]);
    assert!(!out.status.success());
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("unknown subcommand"));
    assert!(err.contains("USAGE"));
}

#[test]
fn missing_required_option_fails_cleanly() {
    let out = run(&["solve", "--p", "0.01"]);
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("--nu"));
}

#[test]
fn help_prints_usage_successfully() {
    let out = run(&["help"]);
    assert!(out.status.success());
    assert!(String::from_utf8_lossy(&out.stdout).contains("USAGE"));
}
