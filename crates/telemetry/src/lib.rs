//! Solver telemetry: typed per-iteration events, a zero-cost-when-disabled
//! [`Probe`] trait, and built-in sinks.
//!
//! Every eigensolver loop in the workspace (power, Lanczos, RQI, MINRES)
//! and every instrumentable operator (`Fmmp`, the parallel backend, the
//! rank-simulated distributed product) reports its progress through a
//! [`Probe`]: the residual trajectory, per-stage matvec wall time and
//! communication volume arrive as a stream of [`SolverEvent`]s. This is the
//! audit trail the paper's Figure 3/4 comparisons (Pi vs Pi+shift vs
//! Lanczos, serial vs parallel backend) need to be diagnosable when they
//! regress.
//!
//! ## Zero cost when disabled
//!
//! Solver loops are **generic** over `P: Probe` — there is no `dyn` call
//! and no allocation in the hot path. With the default [`NullProbe`],
//! [`Probe::enabled`] is a constant `false` and [`Probe::record`] is an
//! empty inline function, so the optimiser removes every probe site and
//! every `Instant::now()` guard; the compiled loop is bit-for-bit the
//! uninstrumented one. Virtual dispatch appears only at *stage*
//! granularity (once per butterfly stage, `log₂ N` times per product) when
//! an operator receives a probe as `&mut dyn Probe` — never per element.
//!
//! ## Sinks
//!
//! * [`NullProbe`] — the disabled probe (default everywhere),
//! * [`RecordingProbe`] — in-memory event history with accessors for the
//!   residual trajectory and stage timing totals,
//! * [`JsonLinesProbe`] — one JSON object per event (the CLI's
//!   `--trace file.jsonl` format),
//! * [`Tee`] — fan an event stream out to two sinks.
//!
//! ```
//! use qs_telemetry::{Probe, RecordingProbe, SolverEvent};
//!
//! let mut probe = RecordingProbe::new();
//! probe.record(&SolverEvent::IterationStart { iter: 1 });
//! probe.record(&SolverEvent::Residual { iter: 1, value: 1e-3, lambda: 2.0 });
//! assert_eq!(probe.residual_history(), vec![1e-3]);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod counters;
pub mod event;
pub mod sinks;
pub mod summary;

pub use counters::{ServeCounters, ServeCountersSnapshot};
pub use event::SolverEvent;
pub use sinks::{JsonLinesProbe, NullProbe, RecordingProbe, Tee};
pub use summary::{BlockTotals, TraceSummary};

/// A sink for [`SolverEvent`]s.
///
/// The trait is object safe (`&mut dyn Probe` is how operators receive it
/// at stage granularity) but solver loops take it as a generic `P: Probe`
/// so that the [`NullProbe`] specialises to nothing.
pub trait Probe: Send {
    /// Whether this probe wants events at all. Instrumentation that costs
    /// something to *produce* (wall-clock timing, per-stage bookkeeping)
    /// is skipped entirely when this returns `false`; plain `record` calls
    /// are made unconditionally and rely on the sink being a no-op.
    #[inline]
    fn enabled(&self) -> bool {
        true
    }

    /// Consume one event.
    fn record(&mut self, event: &SolverEvent);
}

/// Probes compose through mutable references (used by [`Tee`] and the CLI
/// to keep a [`RecordingProbe`] while also streaming to disk).
impl<P: Probe + ?Sized> Probe for &mut P {
    #[inline]
    fn enabled(&self) -> bool {
        (**self).enabled()
    }

    #[inline]
    fn record(&mut self, event: &SolverEvent) {
        (**self).record(event)
    }
}

/// Run `f` and record its wall time as a [`SolverEvent::MatvecTimed`] with
/// the given stage label — or just run `f` when the probe is disabled (no
/// clock is read).
#[inline]
pub fn time_stage<P: Probe + ?Sized, R>(
    probe: &mut P,
    stage: &'static str,
    f: impl FnOnce() -> R,
) -> R {
    if probe.enabled() {
        let t0 = std::time::Instant::now();
        let out = f();
        let ns = t0.elapsed().as_nanos().min(u128::from(u64::MAX)) as u64;
        probe.record(&SolverEvent::MatvecTimed { stage, ns });
        out
    } else {
        f()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn time_stage_records_only_when_enabled() {
        let mut rec = RecordingProbe::new();
        let out = time_stage(&mut rec, "unit", || 7);
        assert_eq!(out, 7);
        assert_eq!(rec.events().len(), 1);
        assert!(matches!(
            rec.events()[0],
            SolverEvent::MatvecTimed { stage: "unit", .. }
        ));

        let mut null = NullProbe;
        let out = time_stage(&mut null, "unit", || 7);
        assert_eq!(out, 7);
    }

    #[test]
    fn probe_usable_through_mut_reference() {
        let mut rec = RecordingProbe::new();
        {
            let via: &mut RecordingProbe = &mut rec;
            assert!(via.enabled());
            via.record(&SolverEvent::IterationStart { iter: 3 });
        }
        assert_eq!(rec.events().len(), 1);
    }

    #[test]
    fn dyn_probe_is_object_safe() {
        let mut rec = RecordingProbe::new();
        let dyn_probe: &mut dyn Probe = &mut rec;
        dyn_probe.record(&SolverEvent::IterationStart { iter: 1 });
        assert!(dyn_probe.enabled());
        assert_eq!(rec.events().len(), 1);
    }
}
