//! The typed event vocabulary emitted by instrumented solver loops and
//! operators, plus its line-oriented JSON encoding.

use std::fmt::Write as _;

/// One observation from an instrumented solver run.
///
/// Events are `Copy` and carry only scalars and `&'static str` stage
/// labels, so constructing and recording one never allocates — a hard
/// requirement for probing the Θ(N log₂ N) product without perturbing it.
///
/// The JSON encoding (see [`SolverEvent::to_json_line`]) is internally
/// tagged: every object carries an `"event"` discriminant in
/// `snake_case`, e.g. `{"event":"residual","iter":3,"value":1e-9,...}`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum SolverEvent {
    /// An outer solver iteration is beginning (1-based).
    IterationStart {
        /// 1-based iteration number.
        iter: usize,
    },
    /// A residual norm was measured at the end of an iteration.
    Residual {
        /// 1-based iteration number this residual belongs to.
        iter: usize,
        /// The residual norm `‖W·x − λ·x‖₂` (or the MINRES relative
        /// residual estimate for inner solves).
        value: f64,
        /// Current eigenvalue estimate. Inner linear solves that have no
        /// eigenvalue notion (MINRES) report `0.0` here.
        lambda: f64,
    },
    /// A matvec (or one stage of one) completed; wall time in nanoseconds.
    MatvecTimed {
        /// Stage label, e.g. `"apply"`, `"fmmp-stage"`, `"diag"`.
        stage: &'static str,
        /// Elapsed wall time in nanoseconds.
        ns: u64,
    },
    /// A communication exchange round completed (distributed backend).
    CommExchange {
        /// Stage label, e.g. `"hypercube-exchange"`.
        stage: &'static str,
        /// Number of `f64` words moved in this round.
        words: u64,
    },
    /// The solver converged; terminal event of a successful run.
    Converged {
        /// Total outer iterations performed.
        iterations: usize,
        /// Total operator applications.
        matvecs: usize,
        /// Final residual norm.
        residual: f64,
        /// Final eigenvalue estimate.
        lambda: f64,
    },
    /// The solver exhausted its iteration budget without converging;
    /// terminal event of an unsuccessful run.
    Budget {
        /// Total outer iterations performed.
        iterations: usize,
        /// Total operator applications.
        matvecs: usize,
        /// Last residual norm.
        residual: f64,
    },
    /// Corruption was detected in transit (checksum mismatch or dropped
    /// exchange buffer) before any recovery was attempted.
    FaultDetected {
        /// Stage label, e.g. `"hypercube-exchange"`.
        stage: &'static str,
        /// Global exchange round index the fault was detected in.
        round: u64,
    },
    /// A retransmission attempt after a detected fault (distributed
    /// backend, bounded-backoff retry path).
    Retry {
        /// Stage label, e.g. `"hypercube-exchange"`.
        stage: &'static str,
        /// 1-based retry attempt number.
        attempt: u32,
    },
    /// A solver guardrail tripped and classified a numerical breakdown.
    GuardrailTripped {
        /// Breakdown kind label, e.g. `"non_finite_iterate"`,
        /// `"residual_stagnation"`, `"lanczos_breakdown"`.
        kind: &'static str,
        /// 1-based outer iteration the guardrail tripped at.
        iter: usize,
    },
    /// The recovery ladder in `solve` took an action, e.g.
    /// `"restart_renormalised"`, `"fallback_lanczos"`,
    /// `"fallback_shifted_power"`, `"best_so_far_degraded"`.
    RecoveryAction {
        /// Action label (snake_case, `&'static str`).
        action: &'static str,
    },
    /// The kernel-dispatch decision an instrumented operator made for one
    /// apply: which SIMD path its fibre kernels run and how the span
    /// schedule was sized. Emitted once per probed apply by the parallel
    /// matvec backend and by the serial `Fmmp` operator (with
    /// `threads = spans = 1`).
    KernelDispatch {
        /// Dispatched instruction-set name: `"scalar"`, `"avx2"` or
        /// `"avx512"`.
        isa: &'static str,
        /// Cooperating worker threads the schedule was built for (1 means
        /// the apply ran serial).
        threads: usize,
        /// Total claimable span units across all passes (1 for a serial
        /// apply).
        spans: usize,
    },
    /// Bytes the solve's reusable workspace allocated after its warm-up
    /// phase (pool misses only — see `quasispecies::Workspace`). Zero
    /// means the iteration loop's working set never grew past the warmed
    /// pool: the hot path ran allocation-free.
    SolveAllocation {
        /// Pool-miss bytes allocated after warm-up.
        bytes: u64,
    },
    /// A durable solver-state snapshot was written atomically to the
    /// checkpoint directory.
    CheckpointWritten {
        /// 1-based outer iteration the snapshot captures.
        iter: usize,
        /// Encoded snapshot size in bytes (including header + checksum).
        bytes: u64,
    },
    /// A resumed solve accepted a snapshot and continued from it.
    CheckpointLoaded {
        /// 1-based outer iteration the accepted snapshot captures.
        iter: usize,
    },
    /// A snapshot (or a snapshot write) was rejected or discarded.
    CheckpointRejected {
        /// Stable `snake_case` reason label, e.g. `"checksum_mismatch"`,
        /// `"problem_mismatch"`, `"mid_recovery"`, `"write_failed"`.
        reason: &'static str,
    },
    /// A sweep column was warm-started from an already-converged
    /// neighbour (continuation ladder) or a serving-layer eigenvector
    /// cache, instead of the generic cold start.
    WarmStart {
        /// Seed provenance: `"continuation"` or `"cache"`.
        source: &'static str,
        /// Error rate of the nearest converged anchor the seed drew on.
        from_p: f64,
        /// Estimated iterations avoided versus the nearest cold-started
        /// column of the same run.
        iterations_saved: usize,
    },
    /// Terminal digest of one block (batched multi-start) power run:
    /// how far adaptive compaction shrank the slab and how many
    /// matvec-columns it avoided relative to a fixed-width run. Emitted
    /// once per block solve, after the last column froze.
    BlockProgress {
        /// Columns the block started with (slab width `k`).
        columns: usize,
        /// Columns still live when the run ended (0 when every column
        /// froze — converged, broke down, or exhausted its budget).
        live: usize,
        /// Number of compaction passes that shrank the active slab.
        compactions: u64,
        /// Matvec-columns actually applied (Σ live width per step).
        matvec_columns: u64,
        /// Matvec-columns avoided versus a fixed-width run of the same
        /// length (`iterations·k − matvec_columns`).
        matvec_columns_saved: u64,
    },
    /// Build/reproducibility provenance for the run: emitted once at the
    /// start of a traced solve so resumed runs are auditable.
    BuildInfo {
        /// Crate version (`CARGO_PKG_VERSION` of the emitting binary).
        version: &'static str,
        /// Resolved SIMD instruction set the fibre kernels dispatch to.
        isa: &'static str,
        /// Worker threads available to the span schedule.
        threads: usize,
        /// Checkpoint snapshot format version understood by this build.
        checkpoint_format: u32,
    },
}

impl SolverEvent {
    /// The `snake_case` discriminant used in the JSON encoding.
    pub fn tag(&self) -> &'static str {
        match self {
            SolverEvent::IterationStart { .. } => "iteration_start",
            SolverEvent::Residual { .. } => "residual",
            SolverEvent::MatvecTimed { .. } => "matvec_timed",
            SolverEvent::CommExchange { .. } => "comm_exchange",
            SolverEvent::Converged { .. } => "converged",
            SolverEvent::Budget { .. } => "budget",
            SolverEvent::FaultDetected { .. } => "fault_detected",
            SolverEvent::Retry { .. } => "retry",
            SolverEvent::GuardrailTripped { .. } => "guardrail_tripped",
            SolverEvent::RecoveryAction { .. } => "recovery_action",
            SolverEvent::KernelDispatch { .. } => "kernel_dispatch",
            SolverEvent::SolveAllocation { .. } => "solve_allocation",
            SolverEvent::CheckpointWritten { .. } => "checkpoint_written",
            SolverEvent::CheckpointLoaded { .. } => "checkpoint_loaded",
            SolverEvent::CheckpointRejected { .. } => "checkpoint_rejected",
            SolverEvent::WarmStart { .. } => "warm_start",
            SolverEvent::BlockProgress { .. } => "block_progress",
            SolverEvent::BuildInfo { .. } => "build_info",
        }
    }

    /// Encode as a single JSON object (no trailing newline).
    ///
    /// Floats use Rust's shortest round-trip decimal form; non-finite
    /// values (which no healthy solver emits) become `null` so the line
    /// stays valid JSON. Stage labels are `&'static str` chosen by this
    /// workspace and contain no characters needing escapes.
    pub fn to_json_line(&self) -> String {
        let mut s = String::with_capacity(96);
        s.push_str("{\"event\":\"");
        s.push_str(self.tag());
        s.push('"');
        match *self {
            SolverEvent::IterationStart { iter } => {
                let _ = write!(s, ",\"iter\":{iter}");
            }
            SolverEvent::Residual {
                iter,
                value,
                lambda,
            } => {
                let _ = write!(s, ",\"iter\":{iter},\"value\":");
                push_f64(&mut s, value);
                s.push_str(",\"lambda\":");
                push_f64(&mut s, lambda);
            }
            SolverEvent::MatvecTimed { stage, ns } => {
                let _ = write!(s, ",\"stage\":\"{stage}\",\"ns\":{ns}");
            }
            SolverEvent::CommExchange { stage, words } => {
                let _ = write!(s, ",\"stage\":\"{stage}\",\"words\":{words}");
            }
            SolverEvent::Converged {
                iterations,
                matvecs,
                residual,
                lambda,
            } => {
                let _ = write!(
                    s,
                    ",\"iterations\":{iterations},\"matvecs\":{matvecs},\"residual\":"
                );
                push_f64(&mut s, residual);
                s.push_str(",\"lambda\":");
                push_f64(&mut s, lambda);
            }
            SolverEvent::Budget {
                iterations,
                matvecs,
                residual,
            } => {
                let _ = write!(
                    s,
                    ",\"iterations\":{iterations},\"matvecs\":{matvecs},\"residual\":"
                );
                push_f64(&mut s, residual);
            }
            SolverEvent::FaultDetected { stage, round } => {
                let _ = write!(s, ",\"stage\":\"{stage}\",\"round\":{round}");
            }
            SolverEvent::Retry { stage, attempt } => {
                let _ = write!(s, ",\"stage\":\"{stage}\",\"attempt\":{attempt}");
            }
            SolverEvent::GuardrailTripped { kind, iter } => {
                let _ = write!(s, ",\"kind\":\"{kind}\",\"iter\":{iter}");
            }
            SolverEvent::RecoveryAction { action } => {
                let _ = write!(s, ",\"action\":\"{action}\"");
            }
            SolverEvent::KernelDispatch {
                isa,
                threads,
                spans,
            } => {
                let _ = write!(
                    s,
                    ",\"isa\":\"{isa}\",\"threads\":{threads},\"spans\":{spans}"
                );
            }
            SolverEvent::SolveAllocation { bytes } => {
                let _ = write!(s, ",\"bytes\":{bytes}");
            }
            SolverEvent::CheckpointWritten { iter, bytes } => {
                let _ = write!(s, ",\"iter\":{iter},\"bytes\":{bytes}");
            }
            SolverEvent::CheckpointLoaded { iter } => {
                let _ = write!(s, ",\"iter\":{iter}");
            }
            SolverEvent::CheckpointRejected { reason } => {
                let _ = write!(s, ",\"reason\":\"{reason}\"");
            }
            SolverEvent::WarmStart {
                source,
                from_p,
                iterations_saved,
            } => {
                let _ = write!(s, ",\"source\":\"{source}\",\"from_p\":");
                push_f64(&mut s, from_p);
                let _ = write!(s, ",\"iterations_saved\":{iterations_saved}");
            }
            SolverEvent::BlockProgress {
                columns,
                live,
                compactions,
                matvec_columns,
                matvec_columns_saved,
            } => {
                let _ = write!(
                    s,
                    ",\"columns\":{columns},\"live\":{live},\"compactions\":{compactions},\
                     \"matvec_columns\":{matvec_columns},\
                     \"matvec_columns_saved\":{matvec_columns_saved}"
                );
            }
            SolverEvent::BuildInfo {
                version,
                isa,
                threads,
                checkpoint_format,
            } => {
                let _ = write!(
                    s,
                    ",\"version\":\"{version}\",\"isa\":\"{isa}\",\"threads\":{threads},\
                     \"checkpoint_format\":{checkpoint_format}"
                );
            }
        }
        s.push('}');
        s
    }
}

/// Append a JSON number for `v`: Rust's shortest round-trip decimal, or
/// `null` for NaN/±∞ (JSON has no encoding for those).
fn push_f64(s: &mut String, v: f64) {
    if v.is_finite() {
        let _ = write!(s, "{v}");
        // `Display` for integral floats prints no decimal point ("5"); that
        // is still a valid JSON number and round-trips exactly.
    } else {
        s.push_str("null");
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tags_are_snake_case() {
        let e = SolverEvent::IterationStart { iter: 1 };
        assert_eq!(e.tag(), "iteration_start");
        let e = SolverEvent::CommExchange {
            stage: "x",
            words: 0,
        };
        assert_eq!(e.tag(), "comm_exchange");
    }

    #[test]
    fn json_lines_have_expected_shape() {
        let e = SolverEvent::Residual {
            iter: 3,
            value: 0.5,
            lambda: 2.0,
        };
        assert_eq!(
            e.to_json_line(),
            "{\"event\":\"residual\",\"iter\":3,\"value\":0.5,\"lambda\":2}"
        );

        let e = SolverEvent::MatvecTimed {
            stage: "fmmp-stage",
            ns: 1234,
        };
        assert_eq!(
            e.to_json_line(),
            "{\"event\":\"matvec_timed\",\"stage\":\"fmmp-stage\",\"ns\":1234}"
        );

        let e = SolverEvent::Converged {
            iterations: 10,
            matvecs: 12,
            residual: 1e-13,
            lambda: 4.75,
        };
        let line = e.to_json_line();
        assert!(line.starts_with("{\"event\":\"converged\""));
        assert!(line.contains("\"iterations\":10"));
        assert!(line.contains("\"matvecs\":12"));
        assert!(line.ends_with("\"lambda\":4.75}"));
    }

    #[test]
    fn residual_value_round_trips_through_display() {
        let v = 1.234567890123e-11_f64;
        let e = SolverEvent::Residual {
            iter: 1,
            value: v,
            lambda: 0.0,
        };
        let line = e.to_json_line();
        let needle = "\"value\":";
        let start = line.find(needle).unwrap() + needle.len();
        let rest = &line[start..];
        let end = rest.find(',').unwrap();
        let parsed: f64 = rest[..end].parse().unwrap();
        assert_eq!(parsed.to_bits(), v.to_bits());
    }

    #[test]
    fn fault_and_recovery_events_encode_with_snake_case_tags() {
        let e = SolverEvent::FaultDetected {
            stage: "hypercube-exchange",
            round: 7,
        };
        assert_eq!(e.tag(), "fault_detected");
        assert_eq!(
            e.to_json_line(),
            "{\"event\":\"fault_detected\",\"stage\":\"hypercube-exchange\",\"round\":7}"
        );

        let e = SolverEvent::Retry {
            stage: "hypercube-exchange",
            attempt: 2,
        };
        assert_eq!(e.tag(), "retry");
        assert_eq!(
            e.to_json_line(),
            "{\"event\":\"retry\",\"stage\":\"hypercube-exchange\",\"attempt\":2}"
        );

        let e = SolverEvent::GuardrailTripped {
            kind: "non_finite_iterate",
            iter: 5,
        };
        assert_eq!(e.tag(), "guardrail_tripped");
        assert_eq!(
            e.to_json_line(),
            "{\"event\":\"guardrail_tripped\",\"kind\":\"non_finite_iterate\",\"iter\":5}"
        );

        let e = SolverEvent::RecoveryAction {
            action: "fallback_lanczos",
        };
        assert_eq!(e.tag(), "recovery_action");
        assert_eq!(
            e.to_json_line(),
            "{\"event\":\"recovery_action\",\"action\":\"fallback_lanczos\"}"
        );
    }

    #[test]
    fn kernel_dispatch_event_encodes_isa_and_schedule() {
        let e = SolverEvent::KernelDispatch {
            isa: "avx2",
            threads: 4,
            spans: 96,
        };
        assert_eq!(e.tag(), "kernel_dispatch");
        assert_eq!(
            e.to_json_line(),
            "{\"event\":\"kernel_dispatch\",\"isa\":\"avx2\",\"threads\":4,\"spans\":96}"
        );
    }

    #[test]
    fn solve_allocation_event_encodes_bytes() {
        let e = SolverEvent::SolveAllocation { bytes: 0 };
        assert_eq!(e.tag(), "solve_allocation");
        assert_eq!(
            e.to_json_line(),
            "{\"event\":\"solve_allocation\",\"bytes\":0}"
        );
        let e = SolverEvent::SolveAllocation { bytes: 4096 };
        assert_eq!(
            e.to_json_line(),
            "{\"event\":\"solve_allocation\",\"bytes\":4096}"
        );
    }

    #[test]
    fn checkpoint_events_encode_with_snake_case_tags() {
        let e = SolverEvent::CheckpointWritten {
            iter: 512,
            bytes: 8216,
        };
        assert_eq!(e.tag(), "checkpoint_written");
        assert_eq!(
            e.to_json_line(),
            "{\"event\":\"checkpoint_written\",\"iter\":512,\"bytes\":8216}"
        );

        let e = SolverEvent::CheckpointLoaded { iter: 512 };
        assert_eq!(e.tag(), "checkpoint_loaded");
        assert_eq!(
            e.to_json_line(),
            "{\"event\":\"checkpoint_loaded\",\"iter\":512}"
        );

        let e = SolverEvent::CheckpointRejected {
            reason: "checksum_mismatch",
        };
        assert_eq!(e.tag(), "checkpoint_rejected");
        assert_eq!(
            e.to_json_line(),
            "{\"event\":\"checkpoint_rejected\",\"reason\":\"checksum_mismatch\"}"
        );
    }

    #[test]
    fn warm_start_event_encodes_provenance() {
        let e = SolverEvent::WarmStart {
            source: "continuation",
            from_p: 0.012,
            iterations_saved: 640,
        };
        assert_eq!(e.tag(), "warm_start");
        assert_eq!(
            e.to_json_line(),
            "{\"event\":\"warm_start\",\"source\":\"continuation\",\
             \"from_p\":0.012,\"iterations_saved\":640}"
        );
    }

    #[test]
    fn block_progress_event_encodes_compaction_accounting() {
        let e = SolverEvent::BlockProgress {
            columns: 16,
            live: 0,
            compactions: 3,
            matvec_columns: 5120,
            matvec_columns_saved: 2944,
        };
        assert_eq!(e.tag(), "block_progress");
        assert_eq!(
            e.to_json_line(),
            "{\"event\":\"block_progress\",\"columns\":16,\"live\":0,\"compactions\":3,\
             \"matvec_columns\":5120,\"matvec_columns_saved\":2944}"
        );
    }

    #[test]
    fn build_info_event_encodes_provenance() {
        let e = SolverEvent::BuildInfo {
            version: "0.1.0",
            isa: "avx2",
            threads: 4,
            checkpoint_format: 1,
        };
        assert_eq!(e.tag(), "build_info");
        assert_eq!(
            e.to_json_line(),
            "{\"event\":\"build_info\",\"version\":\"0.1.0\",\"isa\":\"avx2\",\
             \"threads\":4,\"checkpoint_format\":1}"
        );
    }

    #[test]
    fn non_finite_floats_become_null() {
        let e = SolverEvent::Residual {
            iter: 1,
            value: f64::NAN,
            lambda: f64::INFINITY,
        };
        assert_eq!(
            e.to_json_line(),
            "{\"event\":\"residual\",\"iter\":1,\"value\":null,\"lambda\":null}"
        );
    }
}
