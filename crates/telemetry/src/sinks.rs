//! Built-in [`Probe`] implementations.

use std::fs::File;
use std::io::{self, BufWriter, Write};
use std::path::Path;

use crate::event::SolverEvent;
use crate::Probe;

/// The disabled probe: `enabled()` is a constant `false` and `record` is
/// an empty inline function, so solver loops that are generic over
/// `P: Probe` compile down to the uninstrumented code with this sink.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct NullProbe;

impl Probe for NullProbe {
    #[inline(always)]
    fn enabled(&self) -> bool {
        false
    }

    #[inline(always)]
    fn record(&mut self, _event: &SolverEvent) {}
}

/// In-memory event history, the workhorse for tests, `--trace-summary`
/// and figure harnesses.
#[derive(Debug, Clone, Default)]
pub struct RecordingProbe {
    events: Vec<SolverEvent>,
}

impl RecordingProbe {
    /// An empty recording probe.
    pub fn new() -> Self {
        Self::default()
    }

    /// All events recorded so far, in emission order.
    pub fn events(&self) -> &[SolverEvent] {
        &self.events
    }

    /// Number of events recorded.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Whether nothing has been recorded yet.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Drop all recorded events, keeping the allocation.
    pub fn clear(&mut self) {
        self.events.clear();
    }

    /// The residual values of every [`SolverEvent::Residual`] event, in
    /// emission order.
    pub fn residual_history(&self) -> Vec<f64> {
        self.events
            .iter()
            .filter_map(|e| match e {
                SolverEvent::Residual { value, .. } => Some(*value),
                _ => None,
            })
            .collect()
    }

    /// The most recent residual value, if any was recorded.
    pub fn last_residual(&self) -> Option<f64> {
        self.events.iter().rev().find_map(|e| match e {
            SolverEvent::Residual { value, .. } => Some(*value),
            _ => None,
        })
    }

    /// Number of [`SolverEvent::IterationStart`] events.
    pub fn iterations(&self) -> usize {
        self.events
            .iter()
            .filter(|e| matches!(e, SolverEvent::IterationStart { .. }))
            .count()
    }

    /// Total nanoseconds attributed to `stage` across all
    /// [`SolverEvent::MatvecTimed`] events.
    pub fn stage_ns(&self, stage: &str) -> u64 {
        self.events
            .iter()
            .filter_map(|e| match e {
                SolverEvent::MatvecTimed { stage: s, ns } if *s == stage => Some(*ns),
                _ => None,
            })
            .sum()
    }

    /// Total words moved across all [`SolverEvent::CommExchange`] events.
    pub fn comm_words(&self) -> u64 {
        self.events
            .iter()
            .filter_map(|e| match e {
                SolverEvent::CommExchange { words, .. } => Some(*words),
                _ => None,
            })
            .sum()
    }

    /// The most recent terminal event ([`SolverEvent::Converged`] or
    /// [`SolverEvent::Budget`]), if any. Post-terminal bookkeeping events
    /// (e.g. [`SolverEvent::SolveAllocation`]) are skipped over.
    pub fn terminal(&self) -> Option<&SolverEvent> {
        self.events.iter().rev().find(|e| {
            matches!(
                e,
                SolverEvent::Converged { .. } | SolverEvent::Budget { .. }
            )
        })
    }

    /// Number of [`SolverEvent::FaultDetected`] events.
    pub fn faults_detected(&self) -> usize {
        self.events
            .iter()
            .filter(|e| matches!(e, SolverEvent::FaultDetected { .. }))
            .count()
    }

    /// Number of [`SolverEvent::Retry`] events.
    pub fn retries(&self) -> usize {
        self.events
            .iter()
            .filter(|e| matches!(e, SolverEvent::Retry { .. }))
            .count()
    }

    /// The kind labels of every [`SolverEvent::GuardrailTripped`] event,
    /// in emission order.
    pub fn guardrail_kinds(&self) -> Vec<&'static str> {
        self.events
            .iter()
            .filter_map(|e| match e {
                SolverEvent::GuardrailTripped { kind, .. } => Some(*kind),
                _ => None,
            })
            .collect()
    }

    /// The action labels of every [`SolverEvent::RecoveryAction`] event,
    /// in emission order.
    pub fn recovery_actions(&self) -> Vec<&'static str> {
        self.events
            .iter()
            .filter_map(|e| match e {
                SolverEvent::RecoveryAction { action } => Some(*action),
                _ => None,
            })
            .collect()
    }
}

impl Probe for RecordingProbe {
    #[inline]
    fn record(&mut self, event: &SolverEvent) {
        self.events.push(*event);
    }
}

/// Streams one JSON object per event to a writer — the CLI's
/// `--trace file.jsonl` format (schema: [`SolverEvent::to_json_line`]).
///
/// `record` is infallible per the [`Probe`] contract; the first I/O error
/// is stored and surfaced by [`JsonLinesProbe::finish`], and later events
/// are dropped.
#[derive(Debug)]
pub struct JsonLinesProbe<W: Write + Send> {
    writer: W,
    error: Option<io::Error>,
    lines: u64,
}

impl JsonLinesProbe<BufWriter<File>> {
    /// Create (truncating) `path` and stream events to it, buffered.
    pub fn create<P: AsRef<Path>>(path: P) -> io::Result<Self> {
        let file = File::create(path)?;
        Ok(Self::new(BufWriter::new(file)))
    }
}

impl<W: Write + Send> JsonLinesProbe<W> {
    /// Wrap an arbitrary writer.
    pub fn new(writer: W) -> Self {
        Self {
            writer,
            error: None,
            lines: 0,
        }
    }

    /// Number of lines successfully written so far.
    pub fn lines_written(&self) -> u64 {
        self.lines
    }

    /// The first I/O error encountered while recording, if any.
    pub fn io_error(&self) -> Option<&io::Error> {
        self.error.as_ref()
    }

    /// Flush and return the underlying writer, surfacing any error that
    /// occurred while recording.
    pub fn finish(mut self) -> io::Result<W> {
        if let Some(err) = self.error.take() {
            return Err(err);
        }
        self.writer.flush()?;
        Ok(self.writer)
    }
}

impl<W: Write + Send> Probe for JsonLinesProbe<W> {
    fn record(&mut self, event: &SolverEvent) {
        if self.error.is_some() {
            return;
        }
        let line = event.to_json_line();
        match self
            .writer
            .write_all(line.as_bytes())
            .and_then(|()| self.writer.write_all(b"\n"))
        {
            Ok(()) => self.lines += 1,
            Err(err) => self.error = Some(err),
        }
    }
}

/// Fan an event stream out to two sinks (e.g. a [`RecordingProbe`] for
/// in-process summaries plus a [`JsonLinesProbe`] streaming to disk).
#[derive(Debug, Default)]
pub struct Tee<A, B>(pub A, pub B);

impl<A: Probe, B: Probe> Probe for Tee<A, B> {
    #[inline]
    fn enabled(&self) -> bool {
        self.0.enabled() || self.1.enabled()
    }

    #[inline]
    fn record(&mut self, event: &SolverEvent) {
        self.0.record(event);
        self.1.record(event);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn null_probe_is_disabled_and_silent() {
        let mut p = NullProbe;
        assert!(!p.enabled());
        p.record(&SolverEvent::IterationStart { iter: 1 });
    }

    #[test]
    fn recording_probe_accumulates_and_summarises() {
        let mut p = RecordingProbe::new();
        p.record(&SolverEvent::IterationStart { iter: 1 });
        p.record(&SolverEvent::MatvecTimed {
            stage: "apply",
            ns: 10,
        });
        p.record(&SolverEvent::Residual {
            iter: 1,
            value: 0.5,
            lambda: 2.0,
        });
        p.record(&SolverEvent::IterationStart { iter: 2 });
        p.record(&SolverEvent::MatvecTimed {
            stage: "apply",
            ns: 30,
        });
        p.record(&SolverEvent::Residual {
            iter: 2,
            value: 0.25,
            lambda: 2.1,
        });
        p.record(&SolverEvent::CommExchange {
            stage: "hypercube-exchange",
            words: 64,
        });
        p.record(&SolverEvent::Converged {
            iterations: 2,
            matvecs: 2,
            residual: 0.25,
            lambda: 2.1,
        });

        assert_eq!(p.len(), 8);
        assert_eq!(p.iterations(), 2);
        assert_eq!(p.residual_history(), vec![0.5, 0.25]);
        assert_eq!(p.last_residual(), Some(0.25));
        assert_eq!(p.stage_ns("apply"), 40);
        assert_eq!(p.stage_ns("other"), 0);
        assert_eq!(p.comm_words(), 64);
        assert!(matches!(p.terminal(), Some(SolverEvent::Converged { .. })));

        p.clear();
        assert!(p.is_empty());
        assert_eq!(p.terminal(), None);
    }

    #[test]
    fn recording_probe_tracks_fault_and_recovery_events() {
        let mut p = RecordingProbe::new();
        p.record(&SolverEvent::FaultDetected {
            stage: "hypercube-exchange",
            round: 3,
        });
        p.record(&SolverEvent::Retry {
            stage: "hypercube-exchange",
            attempt: 1,
        });
        p.record(&SolverEvent::GuardrailTripped {
            kind: "lanczos_breakdown",
            iter: 9,
        });
        p.record(&SolverEvent::RecoveryAction {
            action: "fallback_shifted_power",
        });
        assert_eq!(p.faults_detected(), 1);
        assert_eq!(p.retries(), 1);
        assert_eq!(p.guardrail_kinds(), vec!["lanczos_breakdown"]);
        assert_eq!(p.recovery_actions(), vec!["fallback_shifted_power"]);
    }

    #[test]
    fn jsonl_probe_writes_one_line_per_event() {
        let mut p = JsonLinesProbe::new(Vec::new());
        p.record(&SolverEvent::IterationStart { iter: 1 });
        p.record(&SolverEvent::Residual {
            iter: 1,
            value: 0.5,
            lambda: 2.0,
        });
        assert_eq!(p.lines_written(), 2);
        let bytes = p.finish().unwrap();
        let text = String::from_utf8(bytes).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 2);
        assert!(lines[0].starts_with("{\"event\":\"iteration_start\""));
        assert!(lines[1].starts_with("{\"event\":\"residual\""));
        for line in lines {
            assert!(line.starts_with('{') && line.ends_with('}'));
        }
    }

    #[test]
    fn tee_fans_out_and_ors_enabled() {
        let mut tee = Tee(RecordingProbe::new(), RecordingProbe::new());
        assert!(tee.enabled());
        tee.record(&SolverEvent::IterationStart { iter: 1 });
        assert_eq!(tee.0.len(), 1);
        assert_eq!(tee.1.len(), 1);

        let tee = Tee(NullProbe, NullProbe);
        assert!(!tee.enabled());
        let tee = Tee(NullProbe, RecordingProbe::new());
        assert!(tee.enabled());
    }

    #[test]
    fn tee_composes_through_mut_references() {
        let mut rec = RecordingProbe::new();
        let mut json = JsonLinesProbe::new(Vec::new());
        {
            let mut tee = Tee(&mut json, &mut rec);
            tee.record(&SolverEvent::IterationStart { iter: 1 });
        }
        assert_eq!(rec.len(), 1);
        assert_eq!(json.lines_written(), 1);
    }
}
