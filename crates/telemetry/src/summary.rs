//! Aggregate a recorded event stream into a human-readable digest
//! (the CLI's `--trace-summary` output).

use std::fmt;

use crate::event::SolverEvent;

/// Per-stage timing totals for one stage label.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StageTotal {
    /// The stage label, e.g. `"fmmp-stage"`.
    pub stage: &'static str,
    /// Number of [`SolverEvent::MatvecTimed`] events for this stage.
    pub calls: u64,
    /// Summed wall time in nanoseconds.
    pub total_ns: u64,
}

/// Digest of one solver run's event stream.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct TraceSummary {
    /// Total events in the stream.
    pub events: usize,
    /// Number of outer iterations observed.
    pub iterations: usize,
    /// First recorded residual, if any.
    pub first_residual: Option<f64>,
    /// Last recorded residual, if any.
    pub last_residual: Option<f64>,
    /// Number of residual measurements.
    pub residuals: usize,
    /// Final eigenvalue estimate from the terminal event, if converged.
    pub lambda: Option<f64>,
    /// Whether the stream ends in [`SolverEvent::Converged`].
    pub converged: bool,
    /// Matvec count reported by the terminal event, if any.
    pub matvecs: Option<usize>,
    /// Per-stage timing totals, sorted by descending total time.
    pub stages: Vec<StageTotal>,
    /// Total words moved across all communication exchanges.
    pub comm_words: u64,
    /// Number of communication exchange rounds.
    pub comm_rounds: u64,
    /// Number of [`SolverEvent::FaultDetected`] events.
    pub faults_detected: u64,
    /// Number of [`SolverEvent::Retry`] events.
    pub retries: u64,
    /// Number of [`SolverEvent::GuardrailTripped`] events.
    pub guardrails: u64,
    /// Number of [`SolverEvent::RecoveryAction`] events.
    pub recovery_actions: u64,
    /// Pool-miss bytes reported by the last
    /// [`SolverEvent::SolveAllocation`] event, if any. Zero means the
    /// solve's hot path ran allocation-free after warm-up.
    pub solve_alloc_bytes: Option<u64>,
    /// `(isa, threads, spans)` from the last
    /// [`SolverEvent::KernelDispatch`] event, if any: the SIMD path and
    /// span-schedule sizing the matvec kernels ran with.
    pub kernel_dispatch: Option<(&'static str, usize, usize)>,
    /// Number of [`SolverEvent::CheckpointWritten`] events.
    pub checkpoints_written: u64,
    /// Total encoded bytes across all checkpoint writes.
    pub checkpoint_bytes: u64,
    /// Iteration of the last accepted-resume snapshot
    /// ([`SolverEvent::CheckpointLoaded`]), if any.
    pub checkpoint_loaded_iter: Option<usize>,
    /// Number of [`SolverEvent::CheckpointRejected`] events.
    pub checkpoints_rejected: u64,
    /// Number of [`SolverEvent::WarmStart`] events — sweep columns that
    /// started from a continuation or cache seed instead of cold.
    pub warm_started: u64,
    /// Summed `iterations_saved` across all warm-started columns.
    pub warm_iterations_saved: u64,
    /// `(columns, live, compactions, matvec_columns, matvec_columns_saved)`
    /// aggregated over all [`SolverEvent::BlockProgress`] events: columns
    /// and counters sum across block runs, `live` keeps the last value.
    pub block: Option<BlockTotals>,
    /// `(version, isa, threads, checkpoint_format)` from the last
    /// [`SolverEvent::BuildInfo`] event, if any.
    pub build_info: Option<(&'static str, &'static str, usize, u32)>,
}

/// Aggregated block-compaction accounting across a run's
/// [`SolverEvent::BlockProgress`] events.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct BlockTotals {
    /// Total columns summed across block runs.
    pub columns: u64,
    /// Live columns reported by the last block event (0 after a clean
    /// finish).
    pub live: u64,
    /// Compaction passes summed across block runs.
    pub compactions: u64,
    /// Matvec-columns actually applied, summed across block runs.
    pub matvec_columns: u64,
    /// Matvec-columns avoided versus fixed-width runs, summed.
    pub matvec_columns_saved: u64,
}

impl TraceSummary {
    /// Aggregate an event stream (typically
    /// [`RecordingProbe::events`](crate::RecordingProbe::events)).
    pub fn from_events(events: &[SolverEvent]) -> Self {
        let mut s = TraceSummary {
            events: events.len(),
            ..TraceSummary::default()
        };
        for event in events {
            match *event {
                SolverEvent::IterationStart { .. } => s.iterations += 1,
                SolverEvent::Residual { value, .. } => {
                    if s.first_residual.is_none() {
                        s.first_residual = Some(value);
                    }
                    s.last_residual = Some(value);
                    s.residuals += 1;
                }
                SolverEvent::MatvecTimed { stage, ns } => {
                    match s.stages.iter_mut().find(|t| t.stage == stage) {
                        Some(t) => {
                            t.calls += 1;
                            t.total_ns += ns;
                        }
                        None => s.stages.push(StageTotal {
                            stage,
                            calls: 1,
                            total_ns: ns,
                        }),
                    }
                }
                SolverEvent::CommExchange { words, .. } => {
                    s.comm_words += words;
                    s.comm_rounds += 1;
                }
                SolverEvent::Converged {
                    iterations,
                    matvecs,
                    residual,
                    lambda,
                } => {
                    s.converged = true;
                    s.iterations = s.iterations.max(iterations);
                    s.matvecs = Some(matvecs);
                    s.last_residual = Some(residual);
                    s.lambda = Some(lambda);
                }
                SolverEvent::Budget {
                    iterations,
                    matvecs,
                    residual,
                } => {
                    s.converged = false;
                    s.iterations = s.iterations.max(iterations);
                    s.matvecs = Some(matvecs);
                    s.last_residual = Some(residual);
                }
                SolverEvent::FaultDetected { .. } => s.faults_detected += 1,
                SolverEvent::Retry { .. } => s.retries += 1,
                SolverEvent::GuardrailTripped { .. } => s.guardrails += 1,
                SolverEvent::RecoveryAction { .. } => s.recovery_actions += 1,
                SolverEvent::KernelDispatch {
                    isa,
                    threads,
                    spans,
                } => s.kernel_dispatch = Some((isa, threads, spans)),
                SolverEvent::SolveAllocation { bytes } => s.solve_alloc_bytes = Some(bytes),
                SolverEvent::CheckpointWritten { bytes, .. } => {
                    s.checkpoints_written += 1;
                    s.checkpoint_bytes += bytes;
                }
                SolverEvent::CheckpointLoaded { iter } => {
                    s.checkpoint_loaded_iter = Some(iter);
                }
                SolverEvent::CheckpointRejected { .. } => s.checkpoints_rejected += 1,
                SolverEvent::WarmStart {
                    iterations_saved, ..
                } => {
                    s.warm_started += 1;
                    s.warm_iterations_saved += iterations_saved as u64;
                }
                SolverEvent::BlockProgress {
                    columns,
                    live,
                    compactions,
                    matvec_columns,
                    matvec_columns_saved,
                } => {
                    let totals = s.block.get_or_insert_with(BlockTotals::default);
                    totals.columns += columns as u64;
                    totals.live = live as u64;
                    totals.compactions += compactions;
                    totals.matvec_columns += matvec_columns;
                    totals.matvec_columns_saved += matvec_columns_saved;
                }
                SolverEvent::BuildInfo {
                    version,
                    isa,
                    threads,
                    checkpoint_format,
                } => s.build_info = Some((version, isa, threads, checkpoint_format)),
            }
        }
        s.stages
            .sort_by_key(|stage| std::cmp::Reverse(stage.total_ns));
        s
    }
}

impl fmt::Display for TraceSummary {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "trace: {} events, {} iterations, {}",
            self.events,
            self.iterations,
            if self.converged {
                "converged"
            } else {
                "not converged"
            }
        )?;
        if let (Some(first), Some(last)) = (self.first_residual, self.last_residual) {
            writeln!(
                f,
                "  residual: {first:.3e} -> {last:.3e} over {} measurements",
                self.residuals
            )?;
        }
        if let Some(lambda) = self.lambda {
            writeln!(f, "  lambda:   {lambda:.12}")?;
        }
        if let Some(matvecs) = self.matvecs {
            writeln!(f, "  matvecs:  {matvecs}")?;
        }
        if !self.stages.is_empty() {
            writeln!(f, "  stage timings:")?;
            for t in &self.stages {
                writeln!(
                    f,
                    "    {:<20} {:>10} calls {:>12.3} ms",
                    t.stage,
                    t.calls,
                    t.total_ns as f64 / 1e6
                )?;
            }
        }
        if self.comm_rounds > 0 {
            writeln!(
                f,
                "  comm:     {} words over {} exchange rounds",
                self.comm_words, self.comm_rounds
            )?;
        }
        if self.faults_detected > 0 || self.retries > 0 {
            writeln!(
                f,
                "  faults:   {} detected, {} retries",
                self.faults_detected, self.retries
            )?;
        }
        if self.guardrails > 0 || self.recovery_actions > 0 {
            writeln!(
                f,
                "  recovery: {} guardrail trips, {} recovery actions",
                self.guardrails, self.recovery_actions
            )?;
        }
        if let Some((isa, threads, spans)) = self.kernel_dispatch {
            writeln!(
                f,
                "  dispatch: {isa} kernels, {threads} worker(s), {spans} span unit(s)"
            )?;
        }
        if let Some(bytes) = self.solve_alloc_bytes {
            writeln!(f, "  alloc:    {bytes} bytes past warm-up")?;
        }
        if self.warm_started > 0 {
            writeln!(
                f,
                "  warm:     {} column(s) warm-started, ~{} iteration(s) saved",
                self.warm_started, self.warm_iterations_saved
            )?;
        }
        if self.checkpoints_written > 0
            || self.checkpoints_rejected > 0
            || self.checkpoint_loaded_iter.is_some()
        {
            write!(
                f,
                "  durable:  {} checkpoint(s) written ({} bytes), {} rejected",
                self.checkpoints_written, self.checkpoint_bytes, self.checkpoints_rejected
            )?;
            match self.checkpoint_loaded_iter {
                Some(iter) => writeln!(f, ", resumed from iteration {iter}")?,
                None => writeln!(f)?,
            }
        }
        if let Some(block) = self.block {
            writeln!(
                f,
                "  block:    {} column(s), {} compaction(s), \
                 {} matvec-column(s) applied, {} saved",
                block.columns, block.compactions, block.matvec_columns, block.matvec_columns_saved
            )?;
        }
        if let Some((version, isa, threads, format)) = self.build_info {
            writeln!(
                f,
                "  build:    v{version}, {isa} kernels, {threads} thread(s), \
                 checkpoint format {format}"
            )?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_stream() -> Vec<SolverEvent> {
        vec![
            SolverEvent::IterationStart { iter: 1 },
            SolverEvent::MatvecTimed {
                stage: "fmmp-stage",
                ns: 100,
            },
            SolverEvent::MatvecTimed {
                stage: "diag",
                ns: 20,
            },
            SolverEvent::Residual {
                iter: 1,
                value: 1e-2,
                lambda: 4.0,
            },
            SolverEvent::IterationStart { iter: 2 },
            SolverEvent::MatvecTimed {
                stage: "fmmp-stage",
                ns: 120,
            },
            SolverEvent::MatvecTimed {
                stage: "diag",
                ns: 25,
            },
            SolverEvent::CommExchange {
                stage: "hypercube-exchange",
                words: 128,
            },
            SolverEvent::Residual {
                iter: 2,
                value: 1e-9,
                lambda: 4.5,
            },
            SolverEvent::Converged {
                iterations: 2,
                matvecs: 2,
                residual: 1e-9,
                lambda: 4.5,
            },
            SolverEvent::SolveAllocation { bytes: 0 },
        ]
    }

    #[test]
    fn summary_aggregates_stream() {
        let s = TraceSummary::from_events(&sample_stream());
        assert_eq!(s.events, 11);
        assert_eq!(s.iterations, 2);
        assert_eq!(s.residuals, 2);
        assert_eq!(s.first_residual, Some(1e-2));
        assert_eq!(s.last_residual, Some(1e-9));
        assert!(s.converged);
        assert_eq!(s.lambda, Some(4.5));
        assert_eq!(s.matvecs, Some(2));
        assert_eq!(s.comm_words, 128);
        assert_eq!(s.comm_rounds, 1);
        // Sorted by descending total time: fmmp-stage (220) before diag (45).
        assert_eq!(s.stages.len(), 2);
        assert_eq!(s.stages[0].stage, "fmmp-stage");
        assert_eq!(s.stages[0].calls, 2);
        assert_eq!(s.stages[0].total_ns, 220);
        assert_eq!(s.stages[1].stage, "diag");
        assert_eq!(s.stages[1].total_ns, 45);
        assert_eq!(s.solve_alloc_bytes, Some(0));
    }

    #[test]
    fn budget_stream_is_not_converged() {
        let events = vec![
            SolverEvent::IterationStart { iter: 1 },
            SolverEvent::Residual {
                iter: 1,
                value: 0.5,
                lambda: 1.0,
            },
            SolverEvent::Budget {
                iterations: 1,
                matvecs: 1,
                residual: 0.5,
            },
        ];
        let s = TraceSummary::from_events(&events);
        assert!(!s.converged);
        assert_eq!(s.lambda, None);
        assert_eq!(s.matvecs, Some(1));
    }

    #[test]
    fn fault_and_recovery_events_are_counted() {
        let events = vec![
            SolverEvent::IterationStart { iter: 1 },
            SolverEvent::FaultDetected {
                stage: "hypercube-exchange",
                round: 0,
            },
            SolverEvent::Retry {
                stage: "hypercube-exchange",
                attempt: 1,
            },
            SolverEvent::Retry {
                stage: "hypercube-exchange",
                attempt: 2,
            },
            SolverEvent::GuardrailTripped {
                kind: "residual_stagnation",
                iter: 1,
            },
            SolverEvent::RecoveryAction {
                action: "restart_renormalised",
            },
            SolverEvent::Converged {
                iterations: 1,
                matvecs: 1,
                residual: 1e-14,
                lambda: 2.0,
            },
        ];
        let s = TraceSummary::from_events(&events);
        assert_eq!(s.faults_detected, 1);
        assert_eq!(s.retries, 2);
        assert_eq!(s.guardrails, 1);
        assert_eq!(s.recovery_actions, 1);
        assert!(s.converged);
        let text = s.to_string();
        assert!(text.contains("1 detected, 2 retries"));
        assert!(text.contains("1 guardrail trips, 1 recovery actions"));
    }

    #[test]
    fn kernel_dispatch_is_surfaced() {
        let events = vec![
            SolverEvent::KernelDispatch {
                isa: "avx2",
                threads: 2,
                spans: 48,
            },
            SolverEvent::Converged {
                iterations: 1,
                matvecs: 1,
                residual: 1e-14,
                lambda: 2.0,
            },
        ];
        let s = TraceSummary::from_events(&events);
        assert_eq!(s.kernel_dispatch, Some(("avx2", 2, 48)));
        let text = s.to_string();
        assert!(text.contains("avx2 kernels, 2 worker(s), 48 span unit(s)"));
    }

    #[test]
    fn checkpoint_and_build_events_are_surfaced() {
        let events = vec![
            SolverEvent::BuildInfo {
                version: "0.1.0",
                isa: "scalar",
                threads: 1,
                checkpoint_format: 1,
            },
            SolverEvent::CheckpointLoaded { iter: 128 },
            SolverEvent::CheckpointWritten {
                iter: 256,
                bytes: 4096,
            },
            SolverEvent::CheckpointWritten {
                iter: 512,
                bytes: 4096,
            },
            SolverEvent::CheckpointRejected {
                reason: "mid_recovery",
            },
            SolverEvent::Converged {
                iterations: 600,
                matvecs: 600,
                residual: 1e-14,
                lambda: 2.0,
            },
        ];
        let s = TraceSummary::from_events(&events);
        assert_eq!(s.checkpoints_written, 2);
        assert_eq!(s.checkpoint_bytes, 8192);
        assert_eq!(s.checkpoint_loaded_iter, Some(128));
        assert_eq!(s.checkpoints_rejected, 1);
        assert_eq!(s.build_info, Some(("0.1.0", "scalar", 1, 1)));
        let text = s.to_string();
        assert!(text.contains("2 checkpoint(s) written (8192 bytes), 1 rejected"));
        assert!(text.contains("resumed from iteration 128"));
        assert!(text.contains("v0.1.0, scalar kernels, 1 thread(s), checkpoint format 1"));
    }

    #[test]
    fn warm_start_events_are_aggregated_and_surfaced() {
        let events = vec![
            SolverEvent::WarmStart {
                source: "continuation",
                from_p: 0.01,
                iterations_saved: 500,
            },
            SolverEvent::WarmStart {
                source: "cache",
                from_p: 0.02,
                iterations_saved: 250,
            },
            SolverEvent::Converged {
                iterations: 100,
                matvecs: 100,
                residual: 1e-13,
                lambda: 2.0,
            },
        ];
        let s = TraceSummary::from_events(&events);
        assert_eq!(s.warm_started, 2);
        assert_eq!(s.warm_iterations_saved, 750);
        let text = s.to_string();
        assert!(text.contains("2 column(s) warm-started, ~750 iteration(s) saved"));
    }

    #[test]
    fn block_progress_events_are_aggregated_and_surfaced() {
        let events = vec![
            SolverEvent::BlockProgress {
                columns: 16,
                live: 0,
                compactions: 3,
                matvec_columns: 5120,
                matvec_columns_saved: 2944,
            },
            SolverEvent::BlockProgress {
                columns: 8,
                live: 0,
                compactions: 1,
                matvec_columns: 900,
                matvec_columns_saved: 100,
            },
            SolverEvent::Converged {
                iterations: 504,
                matvecs: 6020,
                residual: 1e-13,
                lambda: 2.0,
            },
        ];
        let s = TraceSummary::from_events(&events);
        let block = s.block.expect("block totals recorded");
        assert_eq!(block.columns, 24);
        assert_eq!(block.live, 0);
        assert_eq!(block.compactions, 4);
        assert_eq!(block.matvec_columns, 6020);
        assert_eq!(block.matvec_columns_saved, 3044);
        let text = s.to_string();
        assert!(text
            .contains("24 column(s), 4 compaction(s), 6020 matvec-column(s) applied, 3044 saved"));
        // A stream with no block events keeps the line out of the digest.
        let plain = TraceSummary::from_events(&[SolverEvent::IterationStart { iter: 1 }]);
        assert_eq!(plain.block, None);
        assert!(!plain.to_string().contains("block:"));
    }

    #[test]
    fn display_renders_without_panicking() {
        let s = TraceSummary::from_events(&sample_stream());
        let text = s.to_string();
        assert!(text.contains("converged"));
        assert!(text.contains("fmmp-stage"));
        assert!(text.contains("exchange rounds"));
        let empty = TraceSummary::from_events(&[]);
        assert!(empty.to_string().contains("0 events"));
    }
}
