//! Lock-free monotonic counters for long-running solve services.
//!
//! The per-solve story is covered by [`crate::Probe`] events and
//! [`crate::TraceSummary`]; a serving process additionally needs
//! *cross-solve* aggregates — how many requests arrived, how well the
//! batcher coalesced them, how often the result cache answered, and
//! whether the steady-state hot path is still allocation-free. Those
//! live here as relaxed atomics: every increment is wait-free and the
//! counters can be shared freely across connection and worker threads.
//!
//! Relaxed ordering is deliberate: each counter is an independent
//! monotone tally, and a [`ServeCounters::snapshot`] taken while solves
//! are in flight is a consistent-enough observation for metrics — no
//! reader ever derives control flow from cross-counter invariants.

use std::sync::atomic::{AtomicU64, Ordering::Relaxed};

/// Monotonic serving-side tallies, shared by reference between the
/// request scheduler, the solve workers and the metrics endpoint.
#[derive(Debug, Default)]
pub struct ServeCounters {
    /// Solve requests accepted (one per HTTP request, however many error
    /// rates it carries).
    pub requests: AtomicU64,
    /// Error-rate points requested across all requests.
    pub points: AtomicU64,
    /// Engine runs: each is one batched block iteration (or one faulted
    /// per-point solve), however many coalesced columns it advanced.
    pub engine_solves: AtomicU64,
    /// Columns advanced across all engine runs; with
    /// [`ServeCounters::engine_solves`] this gives the mean coalesced
    /// batch size.
    pub batched_columns: AtomicU64,
    /// Largest single coalesced batch observed.
    pub max_batch: AtomicU64,
    /// Points answered from the content-addressed result cache,
    /// bit-identically.
    pub cache_hits: AtomicU64,
    /// Points that had to be computed.
    pub cache_misses: AtomicU64,
    /// Workspace pool-miss bytes across all engine runs (warm-up
    /// included — the first solve on each worker necessarily allocates).
    pub pool_miss_bytes: AtomicU64,
    /// Pool-miss bytes of the most recent engine run only: zero here
    /// means steady-state serving is allocation-free on the hot path.
    pub last_solve_pool_miss_bytes: AtomicU64,
    /// Requests answered with an error status.
    pub errors: AtomicU64,
}

/// A plain-data copy of [`ServeCounters`] at one instant.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[allow(missing_docs)] // field meanings documented on ServeCounters
pub struct ServeCountersSnapshot {
    pub requests: u64,
    pub points: u64,
    pub engine_solves: u64,
    pub batched_columns: u64,
    pub max_batch: u64,
    pub cache_hits: u64,
    pub cache_misses: u64,
    pub pool_miss_bytes: u64,
    pub last_solve_pool_miss_bytes: u64,
    pub errors: u64,
}

impl ServeCounters {
    /// Fresh, all-zero counters.
    pub fn new() -> Self {
        Self::default()
    }

    /// One accepted request carrying `points` error rates.
    pub fn record_request(&self, points: u64) {
        self.requests.fetch_add(1, Relaxed);
        self.points.fetch_add(points, Relaxed);
    }

    /// One engine run that advanced `columns` coalesced columns and
    /// missed the workspace pool for `pool_miss` bytes.
    pub fn record_engine_solve(&self, columns: u64, pool_miss: u64) {
        self.engine_solves.fetch_add(1, Relaxed);
        self.batched_columns.fetch_add(columns, Relaxed);
        self.max_batch.fetch_max(columns, Relaxed);
        self.pool_miss_bytes.fetch_add(pool_miss, Relaxed);
        self.last_solve_pool_miss_bytes.store(pool_miss, Relaxed);
    }

    /// `hits` points served straight from the result cache.
    pub fn record_cache_hits(&self, hits: u64) {
        self.cache_hits.fetch_add(hits, Relaxed);
    }

    /// `misses` points that entered the compute path.
    pub fn record_cache_misses(&self, misses: u64) {
        self.cache_misses.fetch_add(misses, Relaxed);
    }

    /// One request answered with an error status.
    pub fn record_error(&self) {
        self.errors.fetch_add(1, Relaxed);
    }

    /// A plain-data copy of every counter.
    pub fn snapshot(&self) -> ServeCountersSnapshot {
        ServeCountersSnapshot {
            requests: self.requests.load(Relaxed),
            points: self.points.load(Relaxed),
            engine_solves: self.engine_solves.load(Relaxed),
            batched_columns: self.batched_columns.load(Relaxed),
            max_batch: self.max_batch.load(Relaxed),
            cache_hits: self.cache_hits.load(Relaxed),
            cache_misses: self.cache_misses.load(Relaxed),
            pool_miss_bytes: self.pool_miss_bytes.load(Relaxed),
            last_solve_pool_miss_bytes: self.last_solve_pool_miss_bytes.load(Relaxed),
            errors: self.errors.load(Relaxed),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_tally_and_snapshot() {
        let c = ServeCounters::new();
        c.record_request(3);
        c.record_request(1);
        c.record_cache_hits(1);
        c.record_cache_misses(3);
        c.record_engine_solve(3, 4096);
        c.record_engine_solve(1, 0);
        c.record_error();
        let s = c.snapshot();
        assert_eq!(s.requests, 2);
        assert_eq!(s.points, 4);
        assert_eq!(s.engine_solves, 2);
        assert_eq!(s.batched_columns, 4);
        assert_eq!(s.max_batch, 3, "max batch tracks the high-water mark");
        assert_eq!(s.cache_hits, 1);
        assert_eq!(s.cache_misses, 3);
        assert_eq!(s.pool_miss_bytes, 4096);
        assert_eq!(
            s.last_solve_pool_miss_bytes, 0,
            "the warmed second solve reports zero misses"
        );
        assert_eq!(s.errors, 1);
    }

    #[test]
    fn counters_are_shareable_across_threads() {
        let c = std::sync::Arc::new(ServeCounters::new());
        let handles: Vec<_> = (0..4)
            .map(|_| {
                let c = c.clone();
                std::thread::spawn(move || {
                    for _ in 0..100 {
                        c.record_request(2);
                        c.record_cache_hits(1);
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        let s = c.snapshot();
        assert_eq!(s.requests, 400);
        assert_eq!(s.points, 800);
        assert_eq!(s.cache_hits, 400);
    }
}
