//! Lock-free monotonic counters for long-running solve services.
//!
//! The per-solve story is covered by [`crate::Probe`] events and
//! [`crate::TraceSummary`]; a serving process additionally needs
//! *cross-solve* aggregates — how many requests arrived, how well the
//! batcher coalesced them, how often the result cache answered, and
//! whether the steady-state hot path is still allocation-free. Those
//! live here as relaxed atomics: every increment is wait-free and the
//! counters can be shared freely across connection and worker threads.
//!
//! Relaxed ordering is deliberate: each counter is an independent
//! monotone tally, and a [`ServeCounters::snapshot`] taken while solves
//! are in flight is a consistent-enough observation for metrics — no
//! reader ever derives control flow from cross-counter invariants.

use std::sync::atomic::{AtomicU64, Ordering::Relaxed};
use std::time::Duration;

/// Number of log₂ latency buckets: bucket `i` counts observations in
/// `[2^i, 2^(i+1))` microseconds, so the histogram spans 1 µs to ~17.6
/// minutes — far beyond any served request.
const LATENCY_BUCKETS: usize = 40;

/// A fixed, lock-free log₂-bucketed latency histogram (microseconds).
///
/// Recording is one relaxed `fetch_add`; quantiles are read by walking
/// the bucket counts and reporting the matched bucket's upper bound, so
/// a reported p99 is an upper estimate within a factor of two — plenty
/// for serving dashboards, with zero allocation and zero locking on the
/// hot path.
#[derive(Debug)]
pub struct LatencyHistogram {
    buckets: [AtomicU64; LATENCY_BUCKETS],
}

impl Default for LatencyHistogram {
    fn default() -> Self {
        Self {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
        }
    }
}

impl LatencyHistogram {
    /// Fresh, all-zero histogram.
    pub fn new() -> Self {
        Self::default()
    }

    /// Record one observed latency.
    pub fn record(&self, latency: Duration) {
        let micros = latency.as_micros().min(u128::from(u64::MAX)) as u64;
        let bucket = (64 - micros.leading_zeros() as usize).min(LATENCY_BUCKETS - 1);
        self.buckets[bucket].fetch_add(1, Relaxed);
    }

    /// Total recorded observations.
    pub fn count(&self) -> u64 {
        self.buckets.iter().map(|b| b.load(Relaxed)).sum()
    }

    /// The `q`-quantile (`0 < q ≤ 1`) in microseconds, as the upper
    /// bound of the bucket holding that rank; `0` when nothing was
    /// recorded.
    pub fn quantile_micros(&self, q: f64) -> u64 {
        let counts: Vec<u64> = self.buckets.iter().map(|b| b.load(Relaxed)).collect();
        let total: u64 = counts.iter().sum();
        if total == 0 {
            return 0;
        }
        let rank = ((q * total as f64).ceil() as u64).clamp(1, total);
        let mut seen = 0u64;
        for (i, &c) in counts.iter().enumerate() {
            seen += c;
            if seen >= rank {
                return 1u64 << i;
            }
        }
        1u64 << (LATENCY_BUCKETS - 1)
    }
}

/// Monotonic serving-side tallies, shared by reference between the
/// request scheduler, the solve workers and the metrics endpoint.
#[derive(Debug, Default)]
pub struct ServeCounters {
    /// Solve requests accepted (one per HTTP request, however many error
    /// rates it carries).
    pub requests: AtomicU64,
    /// Error-rate points requested across all requests.
    pub points: AtomicU64,
    /// Engine runs: each is one batched block iteration (or one faulted
    /// per-point solve), however many coalesced columns it advanced.
    pub engine_solves: AtomicU64,
    /// Columns advanced across all engine runs; with
    /// [`ServeCounters::engine_solves`] this gives the mean coalesced
    /// batch size.
    pub batched_columns: AtomicU64,
    /// Largest single coalesced batch observed.
    pub max_batch: AtomicU64,
    /// Points answered from the content-addressed result cache,
    /// bit-identically.
    pub cache_hits: AtomicU64,
    /// Points that had to be computed.
    pub cache_misses: AtomicU64,
    /// Workspace pool-miss bytes across all engine runs (warm-up
    /// included — the first solve on each worker necessarily allocates).
    pub pool_miss_bytes: AtomicU64,
    /// Pool-miss bytes of the most recent engine run only: zero here
    /// means steady-state serving is allocation-free on the hot path.
    pub last_solve_pool_miss_bytes: AtomicU64,
    /// Requests answered with an error status.
    pub errors: AtomicU64,
    /// Jobs that received at least one seed from the eigenvector
    /// warm-start cache (near-miss reuse across requests).
    pub warm_hits: AtomicU64,
    /// Columns that actually started from a warm vector, whether from the
    /// continuation ladder or the serving cache.
    pub warm_seeded_columns: AtomicU64,
    /// Estimated iterations avoided by warm starts, summed over all
    /// warm-started columns (see `WarmStartInfo::iterations_saved` in the
    /// core crate for the estimate's definition).
    pub warm_iterations_saved: AtomicU64,
    /// Compaction passes across all block solves: times the block power
    /// loop shrank its active slab after columns froze.
    pub block_compactions: AtomicU64,
    /// Matvec-columns actually applied across all block solves (Σ live
    /// width per step).
    pub block_matvec_columns: AtomicU64,
    /// Matvec-columns avoided by compaction versus fixed-width runs,
    /// summed across all block solves.
    pub block_matvec_columns_saved: AtomicU64,
    /// Gauge: bytes currently held by the content-addressed result cache.
    pub cache_bytes: AtomicU64,
    /// Gauge: bytes currently held by the eigenvector warm-start cache.
    pub warm_cache_bytes: AtomicU64,
    /// End-to-end request latency distribution (accept → response
    /// written).
    pub latency: LatencyHistogram,
}

/// A plain-data copy of [`ServeCounters`] at one instant.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[allow(missing_docs)] // field meanings documented on ServeCounters
pub struct ServeCountersSnapshot {
    pub requests: u64,
    pub points: u64,
    pub engine_solves: u64,
    pub batched_columns: u64,
    pub max_batch: u64,
    pub cache_hits: u64,
    pub cache_misses: u64,
    pub pool_miss_bytes: u64,
    pub last_solve_pool_miss_bytes: u64,
    pub errors: u64,
    pub warm_hits: u64,
    pub warm_seeded_columns: u64,
    pub warm_iterations_saved: u64,
    pub block_compactions: u64,
    pub block_matvec_columns: u64,
    pub block_matvec_columns_saved: u64,
    pub cache_bytes: u64,
    pub warm_cache_bytes: u64,
    pub latency_count: u64,
    pub latency_p50_us: u64,
    pub latency_p99_us: u64,
}

impl ServeCounters {
    /// Fresh, all-zero counters.
    pub fn new() -> Self {
        Self::default()
    }

    /// One accepted request carrying `points` error rates.
    pub fn record_request(&self, points: u64) {
        self.requests.fetch_add(1, Relaxed);
        self.points.fetch_add(points, Relaxed);
    }

    /// One engine run that advanced `columns` coalesced columns and
    /// missed the workspace pool for `pool_miss` bytes.
    pub fn record_engine_solve(&self, columns: u64, pool_miss: u64) {
        self.engine_solves.fetch_add(1, Relaxed);
        self.batched_columns.fetch_add(columns, Relaxed);
        self.max_batch.fetch_max(columns, Relaxed);
        self.pool_miss_bytes.fetch_add(pool_miss, Relaxed);
        self.last_solve_pool_miss_bytes.store(pool_miss, Relaxed);
    }

    /// `hits` points served straight from the result cache.
    pub fn record_cache_hits(&self, hits: u64) {
        self.cache_hits.fetch_add(hits, Relaxed);
    }

    /// `misses` points that entered the compute path.
    pub fn record_cache_misses(&self, misses: u64) {
        self.cache_misses.fetch_add(misses, Relaxed);
    }

    /// One request answered with an error status.
    pub fn record_error(&self) {
        self.errors.fetch_add(1, Relaxed);
    }

    /// One job that drew at least one seed from the warm-start cache.
    pub fn record_warm_hit(&self) {
        self.warm_hits.fetch_add(1, Relaxed);
    }

    /// `columns` columns warm-started, with `saved` estimated iterations
    /// avoided between them.
    pub fn record_warm_columns(&self, columns: u64, saved: u64) {
        self.warm_seeded_columns.fetch_add(columns, Relaxed);
        self.warm_iterations_saved.fetch_add(saved, Relaxed);
    }

    /// One block solve's compaction accounting: `compactions` slab
    /// shrinks, `matvec_columns` columns actually applied, `saved`
    /// columns avoided versus a fixed-width run.
    pub fn record_block(&self, compactions: u64, matvec_columns: u64, saved: u64) {
        self.block_compactions.fetch_add(compactions, Relaxed);
        self.block_matvec_columns.fetch_add(matvec_columns, Relaxed);
        self.block_matvec_columns_saved.fetch_add(saved, Relaxed);
    }

    /// Update the result-cache occupancy gauge.
    pub fn set_cache_bytes(&self, bytes: u64) {
        self.cache_bytes.store(bytes, Relaxed);
    }

    /// Update the warm-start-cache occupancy gauge.
    pub fn set_warm_cache_bytes(&self, bytes: u64) {
        self.warm_cache_bytes.store(bytes, Relaxed);
    }

    /// One request served end-to-end in `latency`.
    pub fn record_latency(&self, latency: Duration) {
        self.latency.record(latency);
    }

    /// A plain-data copy of every counter.
    pub fn snapshot(&self) -> ServeCountersSnapshot {
        ServeCountersSnapshot {
            requests: self.requests.load(Relaxed),
            points: self.points.load(Relaxed),
            engine_solves: self.engine_solves.load(Relaxed),
            batched_columns: self.batched_columns.load(Relaxed),
            max_batch: self.max_batch.load(Relaxed),
            cache_hits: self.cache_hits.load(Relaxed),
            cache_misses: self.cache_misses.load(Relaxed),
            pool_miss_bytes: self.pool_miss_bytes.load(Relaxed),
            last_solve_pool_miss_bytes: self.last_solve_pool_miss_bytes.load(Relaxed),
            errors: self.errors.load(Relaxed),
            warm_hits: self.warm_hits.load(Relaxed),
            warm_seeded_columns: self.warm_seeded_columns.load(Relaxed),
            warm_iterations_saved: self.warm_iterations_saved.load(Relaxed),
            block_compactions: self.block_compactions.load(Relaxed),
            block_matvec_columns: self.block_matvec_columns.load(Relaxed),
            block_matvec_columns_saved: self.block_matvec_columns_saved.load(Relaxed),
            cache_bytes: self.cache_bytes.load(Relaxed),
            warm_cache_bytes: self.warm_cache_bytes.load(Relaxed),
            latency_count: self.latency.count(),
            latency_p50_us: self.latency.quantile_micros(0.50),
            latency_p99_us: self.latency.quantile_micros(0.99),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_tally_and_snapshot() {
        let c = ServeCounters::new();
        c.record_request(3);
        c.record_request(1);
        c.record_cache_hits(1);
        c.record_cache_misses(3);
        c.record_engine_solve(3, 4096);
        c.record_engine_solve(1, 0);
        c.record_error();
        let s = c.snapshot();
        assert_eq!(s.requests, 2);
        assert_eq!(s.points, 4);
        assert_eq!(s.engine_solves, 2);
        assert_eq!(s.batched_columns, 4);
        assert_eq!(s.max_batch, 3, "max batch tracks the high-water mark");
        assert_eq!(s.cache_hits, 1);
        assert_eq!(s.cache_misses, 3);
        assert_eq!(s.pool_miss_bytes, 4096);
        assert_eq!(
            s.last_solve_pool_miss_bytes, 0,
            "the warmed second solve reports zero misses"
        );
        assert_eq!(s.errors, 1);
    }

    #[test]
    fn counters_are_shareable_across_threads() {
        let c = std::sync::Arc::new(ServeCounters::new());
        let handles: Vec<_> = (0..4)
            .map(|_| {
                let c = c.clone();
                std::thread::spawn(move || {
                    for _ in 0..100 {
                        c.record_request(2);
                        c.record_cache_hits(1);
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        let s = c.snapshot();
        assert_eq!(s.requests, 400);
        assert_eq!(s.points, 800);
        assert_eq!(s.cache_hits, 400);
    }

    #[test]
    fn block_counters_accumulate_across_solves() {
        let c = ServeCounters::new();
        c.record_block(3, 5120, 2944);
        c.record_block(0, 900, 0);
        let s = c.snapshot();
        assert_eq!(s.block_compactions, 3);
        assert_eq!(s.block_matvec_columns, 6020);
        assert_eq!(s.block_matvec_columns_saved, 2944);
    }

    #[test]
    fn warm_counters_and_gauges_tally() {
        let c = ServeCounters::new();
        c.record_warm_hit();
        c.record_warm_columns(5, 120);
        c.record_warm_columns(2, 30);
        c.set_cache_bytes(1 << 20);
        c.set_warm_cache_bytes(512);
        c.set_cache_bytes(2 << 20); // gauges overwrite, not accumulate
        let s = c.snapshot();
        assert_eq!(s.warm_hits, 1);
        assert_eq!(s.warm_seeded_columns, 7);
        assert_eq!(s.warm_iterations_saved, 150);
        assert_eq!(s.cache_bytes, 2 << 20);
        assert_eq!(s.warm_cache_bytes, 512);
    }

    #[test]
    fn latency_histogram_reports_log2_upper_bound_quantiles() {
        let h = LatencyHistogram::new();
        assert_eq!(h.quantile_micros(0.5), 0, "empty histogram reports 0");
        for _ in 0..99 {
            h.record(Duration::from_micros(100)); // bucket [64, 128)
        }
        h.record(Duration::from_millis(50)); // bucket [32768, 65536)
        assert_eq!(h.count(), 100);
        assert_eq!(h.quantile_micros(0.50), 128);
        assert_eq!(h.quantile_micros(0.99), 128);
        assert_eq!(h.quantile_micros(1.0), 65536, "the tail outlier is the max");
    }

    #[test]
    fn latency_histogram_saturates_instead_of_overflowing() {
        let h = LatencyHistogram::new();
        h.record(Duration::from_secs(1 << 40)); // absurd; lands in the last bucket
        assert_eq!(h.count(), 1);
        assert!(h.quantile_micros(0.5) > 0);
    }
}
