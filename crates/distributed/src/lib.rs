//! Rank-simulated distributed-memory `Fmmp` — the paper's first
//! future-work item ("in the future we will focus on distributed memory
//! approaches"), built as a faithful simulation per the substitution rules
//! of this reproduction (no cluster available; the *algorithm* and its
//! communication pattern are what we implement and verify).
//!
//! ## Decomposition
//!
//! Distribute the vector `v ∈ R^N` block-wise over `P = 2^q` ranks: rank
//! `r` owns the contiguous slice `v[r·N/P .. (r+1)·N/P]`. The Fmmp
//! butterfly at stride `i` pairs elements `j` and `j+i`:
//!
//! * **local stages** (`i < N/P`): both partners live on the same rank —
//!   no communication, each rank runs the ordinary serial stage on its
//!   block;
//! * **exchange stages** (`i ≥ N/P`): partners live on two ranks whose
//!   ids differ in exactly one bit — the classic **hypercube exchange**.
//!   Rank `r` swaps its entire block with rank `r ⊕ (i·P/N)`, combines,
//!   and keeps its half of the butterfly results. There are exactly
//!   `log₂ P` such stages, each moving `N/P` words per rank.
//!
//! Total communication: `q·N/P` words sent per rank per product — the
//! same volume as a distributed FFT/FWHT, which is why the paper's
//! conclusion that memory (not runtime) is the binding constraint points
//! here: the product parallelises with only `log₂ P` latency-bound
//! exchange rounds.
//!
//! [`DistributedFmmp`] executes the ranks deterministically in-process
//! (each rank's block is a separate allocation; "messages" are explicit
//! buffer copies counted by [`CommStats`]) and is verified bit-for-bit
//! against the serial `Fmmp`.
//!
//! ## Fault model
//!
//! [`DistributedFmmp::with_faults`] installs an [`ExchangeFault`] hook
//! that is consulted once per simulated message send and may corrupt the
//! payload in flight or drop it entirely (a failed sender rank). Every
//! message carries an FNV-1a checksum over its IEEE-754 bit patterns
//! ([`fnv1a_checksum`]); the receiver verifies it and re-requests the
//! message on mismatch (a dropped message is detected by timeout), with
//! a bounded exponential backoff governed by [`RetryPolicy`]. A message
//! that stays undeliverable after the retry budget poisons the missing
//! contribution with NaN, which downstream solver guardrails classify
//! as a numerical breakdown instead of silently producing garbage.
//! Detection and retries are booked in [`CommStats`] and surfaced as
//! [`SolverEvent::FaultDetected`] / [`SolverEvent::Retry`] telemetry.
//! Without a hook the exchange takes the original allocation-free path
//! and is bit-identical to the seed implementation.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use qs_matvec::LinearOperator;
use qs_telemetry::{time_stage, NullProbe, Probe, SolverEvent};
use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};

/// Communication accounting for one or more distributed products.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CommStats {
    /// Point-to-point messages sent (across all ranks), including
    /// retransmissions.
    pub messages: u64,
    /// Total `f64` words moved between ranks, including retransmissions.
    pub words: u64,
    /// Exchange rounds executed (per product: `log₂ P`).
    pub rounds: u64,
    /// Messages whose checksum failed verification (or that were lost
    /// and detected by timeout).
    pub faults_detected: u64,
    /// Retransmissions performed after a detected fault.
    pub retries: u64,
    /// Simulated exponential-backoff slots waited before retries
    /// (1, 2, 4, … per successive retry of the same message).
    pub backoff_slots: u64,
    /// Messages still undeliverable after the retry budget; their
    /// contribution is NaN-filled at the receiver.
    pub unrecovered: u64,
}

/// What an [`ExchangeFault`] hook did to one in-flight message.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Tamper {
    /// Delivered untouched.
    None,
    /// The hook mutated the payload in flight; the receiver's checksum
    /// verification is expected to catch it (if the mutation left the
    /// bits unchanged there is nothing to detect and the message is
    /// delivered).
    Corrupt,
    /// The message never arrives (sender rank failure); the receiver
    /// detects the loss by timeout.
    Drop,
}

/// A deterministic fault hook for the simulated hypercube exchange.
///
/// Implementations decide per message — identified by the global
/// exchange-round index, the `(sender, receiver)` rank pair and the
/// 0-based delivery `attempt` — whether to tamper with the payload.
/// Returning [`Tamper::Corrupt`] after mutating `payload` simulates
/// in-flight corruption; [`Tamper::Drop`] simulates a lost message.
pub trait ExchangeFault: Send + Sync {
    /// Consulted once per simulated message send (including retries).
    fn on_send(
        &self,
        round: u64,
        sender: usize,
        receiver: usize,
        attempt: u32,
        payload: &mut [f64],
    ) -> Tamper;
}

/// Bounded-backoff retry budget for detected exchange faults.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Retransmissions allowed per message after the initial send.
    pub max_retries: u32,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy { max_retries: 2 }
    }
}

/// FNV-1a (64-bit) over the IEEE-754 bit patterns of a message buffer.
///
/// Bit patterns rather than float values: the checksum must distinguish
/// `-0.0` from `0.0` and detect a NaN overwrite, both invisible to
/// value-level comparison.
pub fn fnv1a_checksum(payload: &[f64]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for v in payload {
        for b in v.to_bits().to_le_bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x100_0000_01b3);
        }
    }
    h
}

struct FaultHook {
    hook: Box<dyn ExchangeFault>,
    policy: RetryPolicy,
}

/// A rank-simulated distributed `Fmmp` operator for `Q(ν)` with uniform
/// error rate `p`, over `P = 2^q` simulated ranks.
///
/// Counters are atomic (relaxed — they are statistics, not
/// synchronisation), so the operator is `Sync` like every other engine.
#[derive(Debug, Default)]
struct AtomicComm {
    messages: AtomicU64,
    words: AtomicU64,
    rounds: AtomicU64,
    faults_detected: AtomicU64,
    retries: AtomicU64,
    backoff_slots: AtomicU64,
    unrecovered: AtomicU64,
}

/// See [`crate`] docs.
pub struct DistributedFmmp {
    nu: u32,
    p: f64,
    ranks: usize,
    stats: AtomicComm,
    faults: Option<FaultHook>,
}

impl fmt::Debug for DistributedFmmp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("DistributedFmmp")
            .field("nu", &self.nu)
            .field("p", &self.p)
            .field("ranks", &self.ranks)
            .field("faulty", &self.faults.is_some())
            .finish()
    }
}

impl DistributedFmmp {
    /// Create the simulated-distributed operator.
    ///
    /// # Panics
    ///
    /// Panics unless `ranks` is a power of two, `1 ≤ ranks ≤ N/2`
    /// (each rank must own at least two elements so local stages exist),
    /// and `0 < p ≤ 1/2`.
    pub fn new(nu: u32, p: f64, ranks: usize) -> Self {
        assert!(nu >= 1, "chain length must be at least 1");
        let n = qs_bitseq::dimension(nu);
        assert!(
            p.is_finite() && p > 0.0 && p <= 0.5,
            "error rate must satisfy 0 < p ≤ 1/2"
        );
        assert!(
            ranks.is_power_of_two() && ranks >= 1 && ranks <= n / 2,
            "ranks must be a power of two in [1, N/2]"
        );
        DistributedFmmp {
            nu,
            p,
            ranks,
            stats: AtomicComm::default(),
            faults: None,
        }
    }

    /// Like [`DistributedFmmp::new`], with an [`ExchangeFault`] hook
    /// injected into every exchange-stage message and a bounded retry
    /// budget for detected faults. See the crate-level fault model.
    pub fn with_faults(
        nu: u32,
        p: f64,
        ranks: usize,
        hook: Box<dyn ExchangeFault>,
        policy: RetryPolicy,
    ) -> Self {
        let mut op = Self::new(nu, p, ranks);
        op.faults = Some(FaultHook { hook, policy });
        op
    }

    /// Number of simulated ranks `P`.
    pub fn ranks(&self) -> usize {
        self.ranks
    }

    /// Words owned per rank (`N/P`).
    pub fn block_len(&self) -> usize {
        (1usize << self.nu) / self.ranks
    }

    /// Accumulated communication statistics.
    pub fn comm_stats(&self) -> CommStats {
        CommStats {
            messages: self.stats.messages.load(Ordering::Relaxed),
            words: self.stats.words.load(Ordering::Relaxed),
            rounds: self.stats.rounds.load(Ordering::Relaxed),
            faults_detected: self.stats.faults_detected.load(Ordering::Relaxed),
            retries: self.stats.retries.load(Ordering::Relaxed),
            backoff_slots: self.stats.backoff_slots.load(Ordering::Relaxed),
            unrecovered: self.stats.unrecovered.load(Ordering::Relaxed),
        }
    }

    /// Reset the communication counters.
    pub fn reset_comm_stats(&self) {
        self.stats.messages.store(0, Ordering::Relaxed);
        self.stats.words.store(0, Ordering::Relaxed);
        self.stats.rounds.store(0, Ordering::Relaxed);
        self.stats.faults_detected.store(0, Ordering::Relaxed);
        self.stats.retries.store(0, Ordering::Relaxed);
        self.stats.backoff_slots.store(0, Ordering::Relaxed);
        self.stats.unrecovered.store(0, Ordering::Relaxed);
    }

    /// Predicted communication per product: each of the `log₂ P` exchange
    /// stages moves one block per rank in each direction.
    pub fn predicted_words_per_product(&self) -> u64 {
        let q = self.ranks.trailing_zeros() as u64;
        q * self.ranks as u64 * self.block_len() as u64
    }

    /// The distributed product: scatter, local stages, hypercube exchange
    /// stages, gather. Returns the result and updates the counters.
    fn product(&self, v: &mut [f64]) {
        self.product_impl(v, &mut NullProbe);
    }

    /// [`Self::product`] with a telemetry probe: the local and exchange
    /// phases are timed as `"dist-local"` / `"dist-exchange"` stages, and
    /// every hypercube round emits a
    /// [`SolverEvent::CommExchange`]`{ stage: "hypercube-exchange", .. }`
    /// carrying the words moved that round (mirroring the [`CommStats`]
    /// counters exactly). `&mut dyn` costs `O(log₂ P)` indirect calls per
    /// product and zero floating-point changes.
    fn product_impl(&self, v: &mut [f64], probe: &mut dyn Probe) {
        let n = v.len();
        let p = self.p;
        let q = 1.0 - p;
        let pr = self.ranks;
        let block = n / pr;

        // Scatter: each rank owns its contiguous block.
        let mut blocks: Vec<Vec<f64>> = v.chunks_exact(block).map(|c| c.to_vec()).collect();

        // Local stages: strides 1 .. block/2 never cross rank boundaries.
        let mut i = 1;
        time_stage(&mut *probe, "dist-local", || {
            while i <= block / 2 {
                for b in &mut blocks {
                    let mut j = 0;
                    while j < block {
                        let (a, c) = b[j..j + 2 * i].split_at_mut(i);
                        for (x, y) in a.iter_mut().zip(c.iter_mut()) {
                            let (u, w) = (q * *x + p * *y, p * *x + q * *y);
                            *x = u;
                            *y = w;
                        }
                        j += 2 * i;
                    }
                }
                i *= 2;
            }
        });

        // Exchange stages: stride i = block·2^s pairs rank r with
        // r ⊕ 2^s. Every element of the two blocks participates in one
        // butterfly with its same-offset partner.
        let mut dim = 1usize; // rank-id bit for this stage
        while i <= n / 2 {
            let mut round_words = 0u64;
            let round_idx = self.stats.rounds.load(Ordering::Relaxed);
            // Fault telemetry is gathered here and emitted after the timed
            // closure releases the probe borrow; empty on the clean path.
            let mut pending: Vec<SolverEvent> = Vec::new();
            time_stage(&mut *probe, "dist-exchange", || {
                for r in 0..pr {
                    let partner = r ^ dim;
                    if partner < r {
                        continue; // the lower rank of the pair does the combine
                    }
                    // r holds the bit-0 side (lower address), partner bit-1.
                    let (lo, hi) = {
                        let (a, b) = blocks.split_at_mut(partner);
                        (&mut a[r], &mut b[0])
                    };
                    match &self.faults {
                        None => {
                            // Simulated message exchange: each side sends
                            // its block.
                            self.stats.messages.fetch_add(2, Ordering::Relaxed);
                            round_words += 2 * block as u64;
                            for (x, y) in lo.iter_mut().zip(hi.iter_mut()) {
                                let (u, w) = (q * *x + p * *y, p * *x + q * *y);
                                *x = u;
                                *y = w;
                            }
                        }
                        Some(f) => {
                            // Each side's block travels as a checksummed
                            // message the hook may corrupt or drop.
                            let from_lo = self.deliver(
                                f,
                                round_idx,
                                r,
                                partner,
                                lo,
                                &mut round_words,
                                &mut pending,
                            );
                            let from_hi = self.deliver(
                                f,
                                round_idx,
                                partner,
                                r,
                                hi,
                                &mut round_words,
                                &mut pending,
                            );
                            for k in 0..block {
                                let (x, y) = (lo[k], hi[k]);
                                // An undeliverable message NaN-fills the
                                // contribution it was carrying.
                                let y_in = from_hi.as_ref().map_or(f64::NAN, |m| m[k]);
                                let x_in = from_lo.as_ref().map_or(f64::NAN, |m| m[k]);
                                lo[k] = q * x + p * y_in;
                                hi[k] = p * x_in + q * y;
                            }
                        }
                    }
                }
            });
            for e in &pending {
                probe.record(e);
            }
            self.stats.words.fetch_add(round_words, Ordering::Relaxed);
            self.stats.rounds.fetch_add(1, Ordering::Relaxed);
            probe.record(&SolverEvent::CommExchange {
                stage: "hypercube-exchange",
                words: round_words,
            });
            dim <<= 1;
            i *= 2;
        }

        // Gather.
        for (chunk, b) in v.chunks_exact_mut(block).zip(&blocks) {
            chunk.copy_from_slice(b);
        }
    }

    /// Simulate delivering one checksummed message `sender → receiver`,
    /// retrying with bounded exponential backoff on detected faults.
    /// Returns the payload as received, or `None` if the retry budget is
    /// exhausted (the caller NaN-fills the lost contribution).
    #[allow(clippy::too_many_arguments)]
    fn deliver(
        &self,
        f: &FaultHook,
        round: u64,
        sender: usize,
        receiver: usize,
        source: &[f64],
        round_words: &mut u64,
        pending: &mut Vec<SolverEvent>,
    ) -> Option<Vec<f64>> {
        for attempt in 0..=f.policy.max_retries {
            // A fresh copy per attempt: retransmissions restart from the
            // sender's pristine block, not the corrupted payload.
            let mut payload = source.to_vec();
            let checksum = fnv1a_checksum(&payload);
            self.stats.messages.fetch_add(1, Ordering::Relaxed);
            *round_words += payload.len() as u64;
            let verdict = f
                .hook
                .on_send(round, sender, receiver, attempt, &mut payload);
            let detected = match verdict {
                // A lost message is detected by receive timeout.
                Tamper::Drop => true,
                // Otherwise the receiver verifies the checksum.
                Tamper::None | Tamper::Corrupt => fnv1a_checksum(&payload) != checksum,
            };
            if !detected {
                return Some(payload);
            }
            self.stats.faults_detected.fetch_add(1, Ordering::Relaxed);
            pending.push(SolverEvent::FaultDetected {
                stage: "hypercube-exchange",
                round,
            });
            if attempt < f.policy.max_retries {
                self.stats.retries.fetch_add(1, Ordering::Relaxed);
                self.stats
                    .backoff_slots
                    .fetch_add(1 << attempt, Ordering::Relaxed);
                pending.push(SolverEvent::Retry {
                    stage: "hypercube-exchange",
                    attempt: attempt + 1,
                });
            }
        }
        self.stats.unrecovered.fetch_add(1, Ordering::Relaxed);
        None
    }
}

impl LinearOperator for DistributedFmmp {
    fn len(&self) -> usize {
        1usize << self.nu
    }

    fn apply_into(&self, x: &[f64], y: &mut [f64]) {
        assert_eq!(x.len(), self.len(), "apply_into: x length mismatch");
        assert_eq!(y.len(), self.len(), "apply_into: y length mismatch");
        y.copy_from_slice(x);
        self.product(y);
    }

    fn apply_in_place(&self, v: &mut [f64]) {
        assert_eq!(v.len(), self.len(), "apply_in_place: length mismatch");
        self.product(v);
    }

    fn apply_into_probed(&self, x: &[f64], y: &mut [f64], probe: &mut dyn Probe) {
        assert_eq!(x.len(), self.len(), "apply_into: x length mismatch");
        assert_eq!(y.len(), self.len(), "apply_into: y length mismatch");
        y.copy_from_slice(x);
        self.apply_in_place_probed(y, probe);
    }

    fn apply_in_place_probed(&self, v: &mut [f64], probe: &mut dyn Probe) {
        assert_eq!(v.len(), self.len(), "apply_in_place: length mismatch");
        if probe.enabled() {
            self.product_impl(v, probe);
        } else {
            self.product(v);
        }
    }

    fn flops_estimate(&self) -> f64 {
        let n = self.len() as f64;
        3.0 * n * self.nu as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qs_matvec::fmmp::fmmp_in_place;
    use rand::{Rng, SeedableRng};

    fn random_vec(n: usize, seed: u64) -> Vec<f64> {
        let mut rng = rand_chacha::ChaCha12Rng::seed_from_u64(seed);
        (0..n).map(|_| rng.random::<f64>() * 2.0 - 1.0).collect()
    }

    fn max_diff(a: &[f64], b: &[f64]) -> f64 {
        a.iter()
            .zip(b)
            .fold(0.0f64, |m, (&x, &y)| m.max((x - y).abs()))
    }

    #[test]
    fn matches_serial_fmmp_for_all_rank_counts() {
        let nu = 10u32;
        let p = 0.03;
        let x = random_vec(1 << nu, 1);
        let mut serial = x.clone();
        fmmp_in_place(&mut serial, p);
        for ranks in [1usize, 2, 4, 16, 128, 512] {
            let op = DistributedFmmp::new(nu, p, ranks);
            let got = op.apply(&x);
            assert_eq!(
                max_diff(&serial, &got),
                0.0,
                "P = {ranks}: distributed result must be bit-identical \
                 (same butterflies in the same order)"
            );
        }
    }

    #[test]
    fn communication_volume_matches_the_model() {
        let nu = 12u32;
        for ranks in [2usize, 8, 64] {
            let op = DistributedFmmp::new(nu, 0.01, ranks);
            let x = random_vec(1 << nu, 2);
            let _ = op.apply(&x);
            let s = op.comm_stats();
            let q = ranks.trailing_zeros() as u64;
            assert_eq!(s.rounds, q, "P = {ranks}: log₂P exchange rounds");
            assert_eq!(
                s.words,
                op.predicted_words_per_product(),
                "P = {ranks}: q·P·(N/P) words total"
            );
            // Messages: one pair exchange per rank-pair per round.
            assert_eq!(s.messages, q * ranks as u64);
        }
    }

    #[test]
    fn single_rank_communicates_nothing() {
        let op = DistributedFmmp::new(8, 0.05, 1);
        let x = random_vec(256, 3);
        let _ = op.apply(&x);
        assert_eq!(op.comm_stats(), CommStats::default());
    }

    #[test]
    fn stats_accumulate_and_reset() {
        let op = DistributedFmmp::new(8, 0.05, 4);
        let x = random_vec(256, 4);
        let _ = op.apply(&x);
        let one = op.comm_stats().words;
        let _ = op.apply(&x);
        assert_eq!(op.comm_stats().words, 2 * one);
        op.reset_comm_stats();
        assert_eq!(op.comm_stats(), CommStats::default());
    }

    #[test]
    fn communication_per_rank_shrinks_with_p() {
        // Strong-scaling property: words per rank = q·N/P decreases as P
        // grows (more ranks ⇒ smaller blocks), while rounds grow as log P.
        let nu = 14u32;
        let per_rank = |ranks: usize| {
            let op = DistributedFmmp::new(nu, 0.01, ranks);
            op.predicted_words_per_product() / ranks as u64
        };
        assert!(per_rank(4) > per_rank(16));
        assert!(per_rank(16) > per_rank(256));
    }

    #[test]
    fn drives_a_full_quasispecies_solve() {
        // The distributed engine slots into the standard solver machinery
        // through LinearOperator, like every other engine.
        use qs_landscape::Landscape;
        let nu = 8u32;
        let p = 0.02;
        let landscape = qs_landscape::Random::new(nu, 5.0, 1.0, 5);
        let op = DistributedFmmp::new(nu, p, 16);
        let w =
            qs_matvec::WOperator::new(&op, landscape.materialize(), qs_matvec::Formulation::Right);
        let mut start = landscape.materialize();
        qs_linalg::vec_ops::normalize_l1(&mut start);
        let out = quasispecies::power_iteration(&w, &start, &quasispecies::PowerOptions::default());
        assert!(out.converged);
        let reference =
            quasispecies::solve(p, &landscape, &quasispecies::SolverConfig::default()).unwrap();
        assert!((out.lambda - reference.lambda).abs() < 1e-10);
        // Communication books: one exchange round set per matvec.
        let s = op.comm_stats();
        assert_eq!(s.rounds, 4 * out.matvecs as u64); // log₂16 = 4 rounds/product
    }

    #[test]
    fn probed_product_matches_plain_and_books_every_word() {
        use qs_telemetry::RecordingProbe;
        let nu = 10u32;
        let p = 0.02;
        let ranks = 16usize;
        let x = random_vec(1 << nu, 7);

        let op = DistributedFmmp::new(nu, p, ranks);
        let plain = op.apply(&x);
        let plain_stats = op.comm_stats();

        let op2 = DistributedFmmp::new(nu, p, ranks);
        let mut rec = RecordingProbe::new();
        let mut probed = x.clone();
        op2.apply_in_place_probed(&mut probed, &mut rec);

        // Bit-identical arithmetic (probes add no FP ops).
        assert_eq!(max_diff(&plain, &probed), 0.0);
        // Every CommExchange event mirrors the atomic counters exactly.
        assert_eq!(op2.comm_stats(), plain_stats);
        assert_eq!(rec.comm_words(), plain_stats.words);
        let exchange_rounds = rec
            .events()
            .iter()
            .filter(|e| matches!(e, SolverEvent::CommExchange { .. }))
            .count() as u64;
        assert_eq!(exchange_rounds, plain_stats.rounds);
        // Both phases were timed.
        assert!(rec.stage_ns("dist-local") > 0);
        assert!(rec.stage_ns("dist-exchange") > 0);

        // A disabled probe takes the plain path and records nothing.
        let mut null = NullProbe;
        let mut silent = x.clone();
        op2.apply_in_place_probed(&mut silent, &mut null);
        assert_eq!(max_diff(&plain, &silent), 0.0);
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn rejects_non_power_of_two_ranks() {
        let _ = DistributedFmmp::new(6, 0.1, 3);
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn rejects_too_many_ranks() {
        // Each rank must own ≥ 2 elements.
        let _ = DistributedFmmp::new(4, 0.1, 16);
    }

    /// Transient in-flight noise: sign-flips word 0 of the *first* send
    /// of the next `budget` messages; retransmissions go through clean.
    struct TransientFault {
        budget: AtomicU64,
    }

    impl TransientFault {
        fn new(budget: u64) -> Self {
            TransientFault {
                budget: AtomicU64::new(budget),
            }
        }
    }

    impl ExchangeFault for TransientFault {
        fn on_send(
            &self,
            _round: u64,
            _sender: usize,
            _receiver: usize,
            attempt: u32,
            payload: &mut [f64],
        ) -> Tamper {
            if attempt == 0
                && self
                    .budget
                    .fetch_update(Ordering::Relaxed, Ordering::Relaxed, |b| b.checked_sub(1))
                    .is_ok()
            {
                payload[0] = -payload[0];
                return Tamper::Corrupt;
            }
            Tamper::None
        }
    }

    /// Every message sent by `sender` is lost — a failed rank.
    struct DeadRank(usize);

    impl ExchangeFault for DeadRank {
        fn on_send(
            &self,
            _round: u64,
            sender: usize,
            _receiver: usize,
            _attempt: u32,
            _payload: &mut [f64],
        ) -> Tamper {
            if sender == self.0 {
                Tamper::Drop
            } else {
                Tamper::None
            }
        }
    }

    #[test]
    fn checksum_distinguishes_bit_level_tampering() {
        let x = [1.0, -2.5, 0.0];
        assert_eq!(fnv1a_checksum(&x), fnv1a_checksum(&x.to_vec()));
        let mut flipped = x;
        flipped[1] = -flipped[1];
        assert_ne!(fnv1a_checksum(&x), fnv1a_checksum(&flipped));
        // Value-level comparison misses both of these.
        assert_ne!(fnv1a_checksum(&[0.0]), fnv1a_checksum(&[-0.0]));
        let mut poisoned = x;
        poisoned[2] = f64::NAN;
        assert_ne!(fnv1a_checksum(&x), fnv1a_checksum(&poisoned));
    }

    #[test]
    fn benign_hook_takes_the_message_path_bit_identically() {
        let nu = 9u32;
        let p = 0.02;
        let x = random_vec(1 << nu, 11);
        let plain = DistributedFmmp::new(nu, p, 8);
        let want = plain.apply(&x);
        let hooked = DistributedFmmp::with_faults(
            nu,
            p,
            8,
            Box::new(TransientFault::new(0)),
            RetryPolicy::default(),
        );
        let got = hooked.apply(&x);
        assert_eq!(max_diff(&want, &got), 0.0);
        let s = hooked.comm_stats();
        assert_eq!((s.faults_detected, s.retries, s.unrecovered), (0, 0, 0));
        // Same message/word books as the direct path.
        assert_eq!(s.messages, plain.comm_stats().messages);
        assert_eq!(s.words, plain.comm_stats().words);
    }

    #[test]
    fn corrupted_exchange_is_detected_retried_and_healed() {
        use qs_telemetry::RecordingProbe;
        let nu = 9u32;
        let p = 0.02;
        let x = random_vec(1 << nu, 12);
        let mut want = x.clone();
        fmmp_in_place(&mut want, p);

        let op = DistributedFmmp::with_faults(
            nu,
            p,
            8,
            Box::new(TransientFault::new(3)),
            RetryPolicy::default(),
        );
        let mut rec = RecordingProbe::new();
        let mut got = x.clone();
        op.apply_in_place_probed(&mut got, &mut rec);

        // The checksum caught every corruption; retransmission healed the
        // product bit-for-bit.
        assert_eq!(max_diff(&want, &got), 0.0);
        let s = op.comm_stats();
        assert_eq!(s.faults_detected, 3);
        assert_eq!(s.retries, 3);
        assert_eq!(s.unrecovered, 0);
        // First retry of each of the 3 corrupted messages waits one slot.
        assert_eq!(s.backoff_slots, 3);
        // Fault telemetry mirrors the counters.
        assert_eq!(rec.faults_detected() as u64, s.faults_detected);
        assert_eq!(rec.retries() as u64, s.retries);
    }

    #[test]
    fn dead_rank_is_nan_filled_after_the_retry_budget() {
        let nu = 8u32;
        let p = 0.02;
        let ranks = 4usize;
        let policy = RetryPolicy { max_retries: 2 };
        let op = DistributedFmmp::with_faults(nu, p, ranks, Box::new(DeadRank(0)), policy);
        let got = op.apply(&random_vec(1 << nu, 13));

        // Rank 0 sends one message per round; every one exhausts the
        // budget and is NaN-filled at its receiver.
        let rounds = ranks.trailing_zeros() as u64;
        let s = op.comm_stats();
        assert_eq!(s.unrecovered, rounds);
        assert_eq!(
            s.faults_detected,
            rounds * u64::from(policy.max_retries + 1)
        );
        assert_eq!(s.retries, rounds * u64::from(policy.max_retries));
        assert!(got.iter().any(|v| v.is_nan()), "lost contribution → NaN");
        // Rank 0 itself keeps receiving fine: its own block stays finite.
        let block = op.block_len();
        assert!(got[..block].iter().all(|v| v.is_finite()));
    }

    #[test]
    fn transient_corruption_is_invisible_to_the_solve() {
        // End-to-end: a handful of corrupted exchanges are detected and
        // retransmitted below the solver's horizon — same eigenpair, no
        // degradation, only the comm books show the incident.
        use qs_landscape::Landscape;
        let nu = 8u32;
        let p = 0.02;
        let landscape = qs_landscape::Random::new(nu, 5.0, 1.0, 5);
        let op = DistributedFmmp::with_faults(
            nu,
            p,
            16,
            Box::new(TransientFault::new(5)),
            RetryPolicy::default(),
        );
        let w =
            qs_matvec::WOperator::new(&op, landscape.materialize(), qs_matvec::Formulation::Right);
        let mut start = landscape.materialize();
        qs_linalg::vec_ops::normalize_l1(&mut start);
        let out = quasispecies::power_iteration(&w, &start, &quasispecies::PowerOptions::default());
        assert!(out.converged);
        let reference =
            quasispecies::solve(p, &landscape, &quasispecies::SolverConfig::default()).unwrap();
        assert!((out.lambda - reference.lambda).abs() < 1e-10);
        let s = op.comm_stats();
        assert_eq!(s.faults_detected, 5);
        assert_eq!(s.unrecovered, 0);
    }

    #[test]
    fn dead_rank_drives_the_solver_to_a_typed_breakdown_not_a_panic() {
        use quasispecies::{solve_with_q_operator, SolveError, SolverConfig};
        let nu = 6u32;
        let p = 0.02;
        let landscape = qs_landscape::SinglePeak::new(nu, 2.0, 1.0);
        let op =
            DistributedFmmp::with_faults(nu, p, 4, Box::new(DeadRank(1)), RetryPolicy::default());
        // A permanently dead rank poisons every product; the recovery
        // ladder runs out and reports a typed breakdown.
        match solve_with_q_operator(Box::new(op), &landscape, &SolverConfig::default()) {
            Err(SolveError::NumericalBreakdown { kind, .. }) => {
                assert_eq!(kind, "non_finite_iterate");
            }
            other => panic!("expected NumericalBreakdown, got {other:?}"),
        }
    }
}
