//! Rank-simulated distributed-memory `Fmmp` — the paper's first
//! future-work item ("in the future we will focus on distributed memory
//! approaches"), built as a faithful simulation per the substitution rules
//! of this reproduction (no cluster available; the *algorithm* and its
//! communication pattern are what we implement and verify).
//!
//! ## Decomposition
//!
//! Distribute the vector `v ∈ R^N` block-wise over `P = 2^q` ranks: rank
//! `r` owns the contiguous slice `v[r·N/P .. (r+1)·N/P]`. The Fmmp
//! butterfly at stride `i` pairs elements `j` and `j+i`:
//!
//! * **local stages** (`i < N/P`): both partners live on the same rank —
//!   no communication, each rank runs the ordinary serial stage on its
//!   block;
//! * **exchange stages** (`i ≥ N/P`): partners live on two ranks whose
//!   ids differ in exactly one bit — the classic **hypercube exchange**.
//!   Rank `r` swaps its entire block with rank `r ⊕ (i·P/N)`, combines,
//!   and keeps its half of the butterfly results. There are exactly
//!   `log₂ P` such stages, each moving `N/P` words per rank.
//!
//! Total communication: `q·N/P` words sent per rank per product — the
//! same volume as a distributed FFT/FWHT, which is why the paper's
//! conclusion that memory (not runtime) is the binding constraint points
//! here: the product parallelises with only `log₂ P` latency-bound
//! exchange rounds.
//!
//! [`DistributedFmmp`] executes the ranks deterministically in-process
//! (each rank's block is a separate allocation; "messages" are explicit
//! buffer copies counted by [`CommStats`]) and is verified bit-for-bit
//! against the serial `Fmmp`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use qs_matvec::LinearOperator;
use qs_telemetry::{time_stage, NullProbe, Probe, SolverEvent};
use std::sync::atomic::{AtomicU64, Ordering};

/// Communication accounting for one or more distributed products.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CommStats {
    /// Point-to-point messages sent (across all ranks).
    pub messages: u64,
    /// Total `f64` words moved between ranks.
    pub words: u64,
    /// Exchange rounds executed (per product: `log₂ P`).
    pub rounds: u64,
}

/// A rank-simulated distributed `Fmmp` operator for `Q(ν)` with uniform
/// error rate `p`, over `P = 2^q` simulated ranks.
///
/// Counters are atomic (relaxed — they are statistics, not
/// synchronisation), so the operator is `Sync` like every other engine.
#[derive(Debug, Default)]
struct AtomicComm {
    messages: AtomicU64,
    words: AtomicU64,
    rounds: AtomicU64,
}

/// See [`crate`] docs.
#[derive(Debug)]
pub struct DistributedFmmp {
    nu: u32,
    p: f64,
    ranks: usize,
    stats: AtomicComm,
}

impl DistributedFmmp {
    /// Create the simulated-distributed operator.
    ///
    /// # Panics
    ///
    /// Panics unless `ranks` is a power of two, `1 ≤ ranks ≤ N/2`
    /// (each rank must own at least two elements so local stages exist),
    /// and `0 < p ≤ 1/2`.
    pub fn new(nu: u32, p: f64, ranks: usize) -> Self {
        assert!(nu >= 1, "chain length must be at least 1");
        let n = qs_bitseq::dimension(nu);
        assert!(
            p.is_finite() && p > 0.0 && p <= 0.5,
            "error rate must satisfy 0 < p ≤ 1/2"
        );
        assert!(
            ranks.is_power_of_two() && ranks >= 1 && ranks <= n / 2,
            "ranks must be a power of two in [1, N/2]"
        );
        DistributedFmmp {
            nu,
            p,
            ranks,
            stats: AtomicComm::default(),
        }
    }

    /// Number of simulated ranks `P`.
    pub fn ranks(&self) -> usize {
        self.ranks
    }

    /// Words owned per rank (`N/P`).
    pub fn block_len(&self) -> usize {
        (1usize << self.nu) / self.ranks
    }

    /// Accumulated communication statistics.
    pub fn comm_stats(&self) -> CommStats {
        CommStats {
            messages: self.stats.messages.load(Ordering::Relaxed),
            words: self.stats.words.load(Ordering::Relaxed),
            rounds: self.stats.rounds.load(Ordering::Relaxed),
        }
    }

    /// Reset the communication counters.
    pub fn reset_comm_stats(&self) {
        self.stats.messages.store(0, Ordering::Relaxed);
        self.stats.words.store(0, Ordering::Relaxed);
        self.stats.rounds.store(0, Ordering::Relaxed);
    }

    /// Predicted communication per product: each of the `log₂ P` exchange
    /// stages moves one block per rank in each direction.
    pub fn predicted_words_per_product(&self) -> u64 {
        let q = self.ranks.trailing_zeros() as u64;
        q * self.ranks as u64 * self.block_len() as u64
    }

    /// The distributed product: scatter, local stages, hypercube exchange
    /// stages, gather. Returns the result and updates the counters.
    fn product(&self, v: &mut [f64]) {
        self.product_impl(v, &mut NullProbe);
    }

    /// [`Self::product`] with a telemetry probe: the local and exchange
    /// phases are timed as `"dist-local"` / `"dist-exchange"` stages, and
    /// every hypercube round emits a
    /// [`SolverEvent::CommExchange`]`{ stage: "hypercube-exchange", .. }`
    /// carrying the words moved that round (mirroring the [`CommStats`]
    /// counters exactly). `&mut dyn` costs `O(log₂ P)` indirect calls per
    /// product and zero floating-point changes.
    fn product_impl(&self, v: &mut [f64], probe: &mut dyn Probe) {
        let n = v.len();
        let p = self.p;
        let q = 1.0 - p;
        let pr = self.ranks;
        let block = n / pr;

        // Scatter: each rank owns its contiguous block.
        let mut blocks: Vec<Vec<f64>> = v.chunks_exact(block).map(|c| c.to_vec()).collect();

        // Local stages: strides 1 .. block/2 never cross rank boundaries.
        let mut i = 1;
        time_stage(&mut *probe, "dist-local", || {
            while i <= block / 2 {
                for b in &mut blocks {
                    let mut j = 0;
                    while j < block {
                        let (a, c) = b[j..j + 2 * i].split_at_mut(i);
                        for (x, y) in a.iter_mut().zip(c.iter_mut()) {
                            let (u, w) = (q * *x + p * *y, p * *x + q * *y);
                            *x = u;
                            *y = w;
                        }
                        j += 2 * i;
                    }
                }
                i *= 2;
            }
        });

        // Exchange stages: stride i = block·2^s pairs rank r with
        // r ⊕ 2^s. Every element of the two blocks participates in one
        // butterfly with its same-offset partner.
        let mut dim = 1usize; // rank-id bit for this stage
        while i <= n / 2 {
            let mut round_words = 0u64;
            time_stage(&mut *probe, "dist-exchange", || {
                for r in 0..pr {
                    let partner = r ^ dim;
                    if partner < r {
                        continue; // the lower rank of the pair does the combine
                    }
                    // Simulated message exchange: each side sends its block.
                    self.stats.messages.fetch_add(2, Ordering::Relaxed);
                    round_words += 2 * block as u64;
                    // r holds the bit-0 side (lower address), partner bit-1.
                    let (lo, hi) = {
                        let (a, b) = blocks.split_at_mut(partner);
                        (&mut a[r], &mut b[0])
                    };
                    for (x, y) in lo.iter_mut().zip(hi.iter_mut()) {
                        let (u, w) = (q * *x + p * *y, p * *x + q * *y);
                        *x = u;
                        *y = w;
                    }
                }
            });
            self.stats.words.fetch_add(round_words, Ordering::Relaxed);
            self.stats.rounds.fetch_add(1, Ordering::Relaxed);
            probe.record(&SolverEvent::CommExchange {
                stage: "hypercube-exchange",
                words: round_words,
            });
            dim <<= 1;
            i *= 2;
        }

        // Gather.
        for (chunk, b) in v.chunks_exact_mut(block).zip(&blocks) {
            chunk.copy_from_slice(b);
        }
    }
}

impl LinearOperator for DistributedFmmp {
    fn len(&self) -> usize {
        1usize << self.nu
    }

    fn apply_into(&self, x: &[f64], y: &mut [f64]) {
        assert_eq!(x.len(), self.len(), "apply_into: x length mismatch");
        assert_eq!(y.len(), self.len(), "apply_into: y length mismatch");
        y.copy_from_slice(x);
        self.product(y);
    }

    fn apply_in_place(&self, v: &mut [f64]) {
        assert_eq!(v.len(), self.len(), "apply_in_place: length mismatch");
        self.product(v);
    }

    fn apply_into_probed(&self, x: &[f64], y: &mut [f64], probe: &mut dyn Probe) {
        assert_eq!(x.len(), self.len(), "apply_into: x length mismatch");
        assert_eq!(y.len(), self.len(), "apply_into: y length mismatch");
        y.copy_from_slice(x);
        self.apply_in_place_probed(y, probe);
    }

    fn apply_in_place_probed(&self, v: &mut [f64], probe: &mut dyn Probe) {
        assert_eq!(v.len(), self.len(), "apply_in_place: length mismatch");
        if probe.enabled() {
            self.product_impl(v, probe);
        } else {
            self.product(v);
        }
    }

    fn flops_estimate(&self) -> f64 {
        let n = self.len() as f64;
        3.0 * n * self.nu as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qs_matvec::fmmp::fmmp_in_place;
    use rand::{Rng, SeedableRng};

    fn random_vec(n: usize, seed: u64) -> Vec<f64> {
        let mut rng = rand_chacha::ChaCha12Rng::seed_from_u64(seed);
        (0..n).map(|_| rng.random::<f64>() * 2.0 - 1.0).collect()
    }

    fn max_diff(a: &[f64], b: &[f64]) -> f64 {
        a.iter()
            .zip(b)
            .fold(0.0f64, |m, (&x, &y)| m.max((x - y).abs()))
    }

    #[test]
    fn matches_serial_fmmp_for_all_rank_counts() {
        let nu = 10u32;
        let p = 0.03;
        let x = random_vec(1 << nu, 1);
        let mut serial = x.clone();
        fmmp_in_place(&mut serial, p);
        for ranks in [1usize, 2, 4, 16, 128, 512] {
            let op = DistributedFmmp::new(nu, p, ranks);
            let got = op.apply(&x);
            assert_eq!(
                max_diff(&serial, &got),
                0.0,
                "P = {ranks}: distributed result must be bit-identical \
                 (same butterflies in the same order)"
            );
        }
    }

    #[test]
    fn communication_volume_matches_the_model() {
        let nu = 12u32;
        for ranks in [2usize, 8, 64] {
            let op = DistributedFmmp::new(nu, 0.01, ranks);
            let x = random_vec(1 << nu, 2);
            let _ = op.apply(&x);
            let s = op.comm_stats();
            let q = ranks.trailing_zeros() as u64;
            assert_eq!(s.rounds, q, "P = {ranks}: log₂P exchange rounds");
            assert_eq!(
                s.words,
                op.predicted_words_per_product(),
                "P = {ranks}: q·P·(N/P) words total"
            );
            // Messages: one pair exchange per rank-pair per round.
            assert_eq!(s.messages, q * ranks as u64);
        }
    }

    #[test]
    fn single_rank_communicates_nothing() {
        let op = DistributedFmmp::new(8, 0.05, 1);
        let x = random_vec(256, 3);
        let _ = op.apply(&x);
        assert_eq!(op.comm_stats(), CommStats::default());
    }

    #[test]
    fn stats_accumulate_and_reset() {
        let op = DistributedFmmp::new(8, 0.05, 4);
        let x = random_vec(256, 4);
        let _ = op.apply(&x);
        let one = op.comm_stats().words;
        let _ = op.apply(&x);
        assert_eq!(op.comm_stats().words, 2 * one);
        op.reset_comm_stats();
        assert_eq!(op.comm_stats(), CommStats::default());
    }

    #[test]
    fn communication_per_rank_shrinks_with_p() {
        // Strong-scaling property: words per rank = q·N/P decreases as P
        // grows (more ranks ⇒ smaller blocks), while rounds grow as log P.
        let nu = 14u32;
        let per_rank = |ranks: usize| {
            let op = DistributedFmmp::new(nu, 0.01, ranks);
            op.predicted_words_per_product() / ranks as u64
        };
        assert!(per_rank(4) > per_rank(16));
        assert!(per_rank(16) > per_rank(256));
    }

    #[test]
    fn drives_a_full_quasispecies_solve() {
        // The distributed engine slots into the standard solver machinery
        // through LinearOperator, like every other engine.
        use qs_landscape::Landscape;
        let nu = 8u32;
        let p = 0.02;
        let landscape = qs_landscape::Random::new(nu, 5.0, 1.0, 5);
        let op = DistributedFmmp::new(nu, p, 16);
        let w =
            qs_matvec::WOperator::new(&op, landscape.materialize(), qs_matvec::Formulation::Right);
        let mut start = landscape.materialize();
        qs_linalg::vec_ops::normalize_l1(&mut start);
        let out = quasispecies::power_iteration(&w, &start, &quasispecies::PowerOptions::default());
        assert!(out.converged);
        let reference =
            quasispecies::solve(p, &landscape, &quasispecies::SolverConfig::default()).unwrap();
        assert!((out.lambda - reference.lambda).abs() < 1e-10);
        // Communication books: one exchange round set per matvec.
        let s = op.comm_stats();
        assert_eq!(s.rounds, 4 * out.matvecs as u64); // log₂16 = 4 rounds/product
    }

    #[test]
    fn probed_product_matches_plain_and_books_every_word() {
        use qs_telemetry::RecordingProbe;
        let nu = 10u32;
        let p = 0.02;
        let ranks = 16usize;
        let x = random_vec(1 << nu, 7);

        let op = DistributedFmmp::new(nu, p, ranks);
        let plain = op.apply(&x);
        let plain_stats = op.comm_stats();

        let op2 = DistributedFmmp::new(nu, p, ranks);
        let mut rec = RecordingProbe::new();
        let mut probed = x.clone();
        op2.apply_in_place_probed(&mut probed, &mut rec);

        // Bit-identical arithmetic (probes add no FP ops).
        assert_eq!(max_diff(&plain, &probed), 0.0);
        // Every CommExchange event mirrors the atomic counters exactly.
        assert_eq!(op2.comm_stats(), plain_stats);
        assert_eq!(rec.comm_words(), plain_stats.words);
        let exchange_rounds = rec
            .events()
            .iter()
            .filter(|e| matches!(e, SolverEvent::CommExchange { .. }))
            .count() as u64;
        assert_eq!(exchange_rounds, plain_stats.rounds);
        // Both phases were timed.
        assert!(rec.stage_ns("dist-local") > 0);
        assert!(rec.stage_ns("dist-exchange") > 0);

        // A disabled probe takes the plain path and records nothing.
        let mut null = NullProbe;
        let mut silent = x.clone();
        op2.apply_in_place_probed(&mut silent, &mut null);
        assert_eq!(max_diff(&plain, &silent), 0.0);
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn rejects_non_power_of_two_ranks() {
        let _ = DistributedFmmp::new(6, 0.1, 3);
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn rejects_too_many_ranks() {
        // Each rank must own ≥ 2 elements.
        let _ = DistributedFmmp::new(4, 0.1, 16);
    }
}
