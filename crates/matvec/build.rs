//! Gate the AVX-512 kernel paths on toolchain support.
//!
//! The `_mm512_*` double-precision intrinsics are stable only since Rust
//! 1.89, while the workspace MSRV is older (see the root `Cargo.toml`).
//! Emitting a custom `qs_avx512` cfg — only when the compiler is new
//! enough *and* the target is x86-64 — lets the SIMD layer offer the
//! 8-wide path opportunistically without raising the MSRV: on older
//! toolchains the AVX-512 code simply does not exist and runtime dispatch
//! tops out at AVX2.

use std::process::Command;

fn rustc_minor() -> Option<u32> {
    let rustc = std::env::var("RUSTC").unwrap_or_else(|_| "rustc".into());
    let out = Command::new(rustc).arg("--version").output().ok()?;
    let text = String::from_utf8(out.stdout).ok()?;
    // "rustc 1.95.0 (…)" — take the middle component of the version.
    let version = text.split_whitespace().nth(1)?;
    let mut parts = version.split('.');
    let major: u32 = parts.next()?.parse().ok()?;
    let minor: u32 = parts.next()?.parse().ok()?;
    if major == 1 {
        Some(minor)
    } else {
        // A hypothetical 2.x compiler is newer than every 1.x.
        Some(u32::MAX)
    }
}

fn main() {
    println!("cargo:rustc-check-cfg=cfg(qs_avx512)");
    let arch = std::env::var("CARGO_CFG_TARGET_ARCH").unwrap_or_default();
    if arch == "x86_64" && rustc_minor().is_some_and(|m| m >= 89) {
        println!("cargo:rustc-cfg=qs_avx512");
    }
    println!("cargo:rerun-if-changed=build.rs");
}
