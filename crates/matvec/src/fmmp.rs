//! The fast mutation matrix product `Fmmp` (paper Section 2, Algorithms 1–2).
//!
//! `Q(ν)·v` is evaluated through the Kronecker recursion (paper Eq. 8)
//!
//! ```text
//! Q(ν)·v = [ (1−p)·v̄₁ + p·v̄₂ ]     with v̄ᵢ = Q(ν−1)·vᵢ        (Eq. 9)
//!          [ p·v̄₁ + (1−p)·v̄₂ ]
//! ```
//!
//! or by first combining then recursing (Eq. 10). Either way the product
//! costs `Θ(N log₂ N)` (paper Lemma 1) and runs **in situ** like an
//! FFT/FWHT butterfly — no matrix element is ever stored.
//!
//! Three equivalent formulations are implemented and cross-checked:
//!
//! * [`fmmp_in_place`] — the iterative Algorithm 1 (strides `1,2,…,N/2`),
//! * [`fmmp_in_place_eq10`] — the reversed stage order corresponding to
//!   Eq. 10 (strides `N/2,…,2,1`); identical result because every stage
//!   commutes with the others,
//! * [`fmmp_recursive`] — the literal recursion, kept as an executable
//!   specification,
//! * [`fmmp_kernel_form`] — Algorithm 2's flat `ID`-loop with the bit-trick
//!   index map `j = 2·ID − (ID & (i−1))`, the form the GPU kernel (and our
//!   parallel backend) uses.

use crate::{time_stage, LinearOperator, Probe};

/// Which loop structure [`Fmmp`] uses; all variants compute the same
/// product, they differ only in constants (paper Section 4 benchmarks the
/// kernel form).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum FmmpVariant {
    /// Iterative Algorithm 1 (Eq. 9; strides ascending).
    #[default]
    Iterative,
    /// Iterative with descending strides (Eq. 10 ordering).
    Eq10,
    /// Literal recursion on halves (executable specification).
    Recursive,
    /// Algorithm 2's flat `ID`-indexed kernel form.
    Kernel,
    /// Cache-blocked radix-4/8 fused stages ([`crate::fused`]): identical
    /// arithmetic in `≈ log₂N/3` memory sweeps instead of `log₂N`.
    Fused,
}

/// One butterfly of the mutation transform:
/// `(t1, t2) ← ((1−p)·t1 + p·t2, p·t1 + (1−p)·t2)`.
#[inline(always)]
fn butterfly(p: f64, t1: f64, t2: f64) -> (f64, f64) {
    let q = 1.0 - p;
    (q * t1 + p * t2, p * t1 + q * t2)
}

/// Paper Algorithm 1: in-place `v ← Q(ν)·v` with ascending strides.
///
/// # Panics
///
/// Panics if `v.len()` is not a power of two ≥ 2.
pub fn fmmp_in_place(v: &mut [f64], p: f64) {
    let n = v.len();
    assert!(n.is_power_of_two() && n >= 2, "length must be 2^ν, ν ≥ 1");
    let mut i = 1;
    while i <= n / 2 {
        fmmp_stage(v, i, p);
        i *= 2;
    }
}

/// Eq. 10 ordering: identical product, descending strides.
///
/// # Panics
///
/// Panics if `v.len()` is not a power of two ≥ 2.
pub fn fmmp_in_place_eq10(v: &mut [f64], p: f64) {
    let n = v.len();
    assert!(n.is_power_of_two() && n >= 2, "length must be 2^ν, ν ≥ 1");
    let mut i = n / 2;
    while i >= 1 {
        fmmp_stage(v, i, p);
        i /= 2;
    }
}

/// One stage of the transform: butterflies at stride `i` (must be a power
/// of two dividing `v.len()/2`). Exposed so the parallel backend can reuse
/// the exact serial kernel per block.
#[inline]
pub(crate) fn fmmp_stage(v: &mut [f64], i: usize, p: f64) {
    let n = v.len();
    let mut j = 0;
    while j < n {
        let (a, b) = v[j..j + 2 * i].split_at_mut(i);
        for (x, y) in a.iter_mut().zip(b.iter_mut()) {
            let (u, w) = butterfly(p, *x, *y);
            *x = u;
            *y = w;
        }
        j += 2 * i;
    }
}

/// Single-precision Algorithm 1: in-place `v ← Q(ν)·v` on `f32` data.
///
/// The same butterfly at half the memory traffic — the natural
/// approximative-matvec strategy on bandwidth-bound hardware (the paper's
/// conclusions list "approximative strategies for a fast matrix vector
/// product" as future work; single precision was the standard such
/// strategy on the Tesla generation it benchmarks). Pair with an `f64`
/// refinement pass (see `quasispecies::mixed`) to recover full accuracy.
///
/// # Panics
///
/// Panics if `v.len()` is not a power of two ≥ 2.
pub fn fmmp_in_place_f32(v: &mut [f32], p: f32) {
    let n = v.len();
    assert!(n.is_power_of_two() && n >= 2, "length must be 2^ν, ν ≥ 1");
    let q = 1.0 - p;
    let mut i = 1;
    while i <= n / 2 {
        let mut j = 0;
        while j < n {
            let (a, b) = v[j..j + 2 * i].split_at_mut(i);
            for (x, y) in a.iter_mut().zip(b.iter_mut()) {
                let (u, w) = (q * *x + p * *y, p * *x + q * *y);
                *x = u;
                *y = w;
            }
            j += 2 * i;
        }
        i *= 2;
    }
}

/// Literal recursion on Eq. 9, kept as an executable specification of the
/// iterative forms.
///
/// # Panics
///
/// Panics if `v.len()` is not a power of two ≥ 2.
pub fn fmmp_recursive(v: &mut [f64], p: f64) {
    let n = v.len();
    assert!(n.is_power_of_two() && n >= 2, "length must be 2^ν, ν ≥ 1");
    fmmp_rec_inner(v, p);
}

fn fmmp_rec_inner(v: &mut [f64], p: f64) {
    let n = v.len();
    if n == 1 {
        return; // Q(0) = 1.
    }
    let (v1, v2) = v.split_at_mut(n / 2);
    fmmp_rec_inner(v1, p);
    fmmp_rec_inner(v2, p);
    for (x, y) in v1.iter_mut().zip(v2.iter_mut()) {
        let (u, w) = butterfly(p, *x, *y);
        *x = u;
        *y = w;
    }
}

/// Paper Algorithm 2: the flat kernel form. The outer stage loop is the
/// "host" loop; the inner loop enumerates the `N/2` independent butterflies
/// by thread id with the index map
/// `j = 2·ID − (ID & (i−1))` (the paper's AND trick replacing `mod`).
///
/// # Panics
///
/// Panics if `v.len()` is not a power of two ≥ 2.
pub fn fmmp_kernel_form(v: &mut [f64], p: f64) {
    let n = v.len();
    assert!(n.is_power_of_two() && n >= 2, "length must be 2^ν, ν ≥ 1");
    let mut i = 1;
    while i <= n / 2 {
        for id in 0..n / 2 {
            let j = 2 * id - (id & (i - 1));
            let (u, w) = butterfly(p, v[j], v[j + i]);
            v[j] = u;
            v[j + i] = w;
        }
        i *= 2;
    }
}

/// In-place `v ← Q·v` for **per-site** symmetric rates `p_s` (paper
/// Section 2.2). `rates[0]` is the rate of the most significant site;
/// stage at stride `2^s` applies site `ν−1−s`.
///
/// # Panics
///
/// Panics unless `v.len() == 2^{rates.len()}`.
pub fn fmmp_per_site(v: &mut [f64], rates: &[f64]) {
    let nu = rates.len();
    assert!(
        nu >= 1 && v.len() == 1usize << nu,
        "length must be 2^{{rates.len()}}"
    );
    let mut i = 1;
    for s in 0..nu {
        fmmp_stage(v, i, rates[nu - 1 - s]);
        i *= 2;
    }
}

/// The `Fmmp` engine as a [`LinearOperator`] for `Q(ν)` with uniform error
/// rate `p`.
#[derive(Debug, Clone, Copy)]
pub struct Fmmp {
    nu: u32,
    p: f64,
    variant: FmmpVariant,
}

impl Fmmp {
    /// Create the operator for chain length `nu` and error rate `p`, using
    /// the default (iterative Eq. 9) loop structure.
    ///
    /// # Panics
    ///
    /// Panics unless `ν ≥ 1` and `0 < p ≤ 1/2`.
    pub fn new(nu: u32, p: f64) -> Self {
        Self::with_variant(nu, p, FmmpVariant::default())
    }

    /// Create with an explicit loop-structure variant.
    ///
    /// # Panics
    ///
    /// Panics unless `ν ≥ 1` and `0 < p ≤ 1/2`.
    pub fn with_variant(nu: u32, p: f64, variant: FmmpVariant) -> Self {
        assert!(nu >= 1, "chain length must be at least 1");
        let _ = qs_bitseq::dimension(nu);
        assert!(
            p.is_finite() && p > 0.0 && p <= 0.5,
            "error rate must satisfy 0 < p ≤ 1/2"
        );
        Fmmp { nu, p, variant }
    }

    /// Create the fused cache-blocked operator ([`FmmpVariant::Fused`]):
    /// bit-identical product, fewer memory sweeps. This is the fast serial
    /// engine for large `ν`.
    ///
    /// # Panics
    ///
    /// Panics unless `ν ≥ 1` and `0 < p ≤ 1/2`.
    pub fn fused(nu: u32, p: f64) -> Self {
        Self::with_variant(nu, p, FmmpVariant::Fused)
    }

    /// Build from a [`qs_mutation::Uniform`] model.
    pub fn from_model(q: &qs_mutation::Uniform) -> Self {
        use qs_mutation::MutationModel;
        Self::new(q.nu(), q.p())
    }

    /// Chain length `ν`.
    pub fn nu(&self) -> u32 {
        self.nu
    }

    /// Error rate `p`.
    pub fn p(&self) -> f64 {
        self.p
    }
}

impl LinearOperator for Fmmp {
    fn len(&self) -> usize {
        1usize << self.nu
    }

    fn apply_into(&self, x: &[f64], y: &mut [f64]) {
        assert_eq!(x.len(), self.len(), "apply_into: x length mismatch");
        assert_eq!(y.len(), self.len(), "apply_into: y length mismatch");
        y.copy_from_slice(x);
        self.apply_in_place(y);
    }

    fn apply_in_place(&self, v: &mut [f64]) {
        assert_eq!(v.len(), self.len(), "apply_in_place: length mismatch");
        match self.variant {
            FmmpVariant::Iterative => fmmp_in_place(v, self.p),
            FmmpVariant::Eq10 => fmmp_in_place_eq10(v, self.p),
            FmmpVariant::Recursive => fmmp_recursive(v, self.p),
            FmmpVariant::Kernel => fmmp_kernel_form(v, self.p),
            FmmpVariant::Fused => crate::fused::fmmp_in_place_fused(v, self.p),
        }
    }

    fn flops_estimate(&self) -> f64 {
        // log₂N stages × N/2 butterflies × 6 flops. Identical for every
        // variant, including Fused: fusion regroups the stage loop into
        // fewer memory passes but performs the same arithmetic.
        let n = self.len() as f64;
        3.0 * n * self.nu as f64
    }

    fn apply_into_probed(&self, x: &[f64], y: &mut [f64], probe: &mut dyn Probe) {
        assert_eq!(x.len(), self.len(), "apply_into: x length mismatch");
        assert_eq!(y.len(), self.len(), "apply_into: y length mismatch");
        y.copy_from_slice(x);
        self.apply_in_place_probed(y, probe);
    }

    fn apply_in_place_probed(&self, v: &mut [f64], probe: &mut dyn Probe) {
        if !probe.enabled() {
            return self.apply_in_place(v);
        }
        assert_eq!(v.len(), self.len(), "apply_in_place: length mismatch");
        probe.record(&qs_telemetry::SolverEvent::KernelDispatch {
            isa: crate::simd::active().name(),
            threads: 1,
            spans: 1,
        });
        match self.variant {
            FmmpVariant::Iterative => {
                let n = v.len();
                let mut i = 1;
                while i <= n / 2 {
                    time_stage(probe, "fmmp-stage", || fmmp_stage(v, i, self.p));
                    i *= 2;
                }
            }
            // The fused variant reports one event per *memory pass* (the
            // unit of work that fusion changes), not per logical stage.
            FmmpVariant::Fused => crate::fused::span_in_place_probed(
                v,
                1,
                crate::fused::MixButterfly::new(self.p),
                probe,
                "fmmp-fused-pass",
            ),
            // The other loop structures have no exposed per-stage kernel;
            // time the whole product as one stage.
            _ => time_stage(probe, "fmmp", || self.apply_in_place(v)),
        }
    }

    fn apply_batch(&self, slab: &mut [f64]) {
        let n = self.len();
        assert!(
            !slab.is_empty() && slab.len() % n == 0,
            "apply_batch: slab must hold a whole number of vectors"
        );
        // Every variant computes the identical product, so the batch can
        // always take the column-blocked fused path.
        crate::fused::fmmp_batch_in_place(slab, slab.len() / n, self.p);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_util::{max_diff, random_vector};
    use qs_mutation::{MutationModel, PerSite, Uniform};

    #[test]
    fn matches_dense_q_small() {
        for nu in 1..=8u32 {
            for &p in &[0.01, 0.1, 0.37, 0.5] {
                let q = Uniform::new(nu, p).dense();
                let x = random_vector(1 << nu, 11 + nu as u64);
                let want = q.matvec(&x);
                let mut got = x.clone();
                fmmp_in_place(&mut got, p);
                assert!(
                    max_diff(&want, &got) < 1e-13,
                    "ν={nu} p={p}: Fmmp ≠ dense Q·v"
                );
            }
        }
    }

    #[test]
    fn all_variants_agree() {
        let nu = 9u32;
        let p = 0.07;
        let x = random_vector(1 << nu, 3);
        let reference = {
            let mut v = x.clone();
            fmmp_in_place(&mut v, p);
            v
        };
        for variant in [
            FmmpVariant::Eq10,
            FmmpVariant::Recursive,
            FmmpVariant::Kernel,
            FmmpVariant::Fused,
        ] {
            let op = Fmmp::with_variant(nu, p, variant);
            let got = op.apply(&x);
            assert!(
                max_diff(&reference, &got) < 1e-14,
                "variant {variant:?} diverges"
            );
        }
    }

    #[test]
    fn preserves_vector_sum() {
        // Q is column stochastic: 1ᵀQv = 1ᵀv.
        let x = random_vector(1 << 10, 5);
        let before: f64 = qs_linalg::sum(&x);
        let mut v = x;
        fmmp_in_place(&mut v, 0.23);
        let after: f64 = qs_linalg::sum(&v);
        assert!((before - after).abs() < 1e-12);
    }

    #[test]
    fn uniform_vector_is_fixed_point() {
        // Q·1 = 1 (rows also sum to one by symmetry).
        let mut v = vec![1.0; 1 << 8];
        fmmp_in_place(&mut v, 0.11);
        for &x in &v {
            assert!((x - 1.0).abs() < 1e-13);
        }
    }

    #[test]
    fn linearity() {
        let n = 1 << 7;
        let (a, b) = (2.5f64, -1.25f64);
        let x = random_vector(n, 1);
        let y = random_vector(n, 2);
        let combo: Vec<f64> = x.iter().zip(&y).map(|(&u, &v)| a * u + b * v).collect();
        let op = Fmmp::new(7, 0.09);
        let lhs = op.apply(&combo);
        let qx = op.apply(&x);
        let qy = op.apply(&y);
        let rhs: Vec<f64> = qx.iter().zip(&qy).map(|(&u, &v)| a * u + b * v).collect();
        assert!(max_diff(&lhs, &rhs) < 1e-13);
    }

    #[test]
    fn per_site_matches_dense() {
        let rates = [0.02, 0.3, 0.11, 0.5];
        let model = PerSite::symmetric(&rates);
        let dense = model.dense();
        let x = random_vector(16, 9);
        let want = dense.matvec(&x);
        let mut got = x.clone();
        fmmp_per_site(&mut got, &rates);
        assert!(max_diff(&want, &got) < 1e-14);
    }

    #[test]
    fn per_site_with_equal_rates_matches_uniform() {
        let p = 0.04;
        let x = random_vector(1 << 6, 13);
        let mut a = x.clone();
        fmmp_in_place(&mut a, p);
        let mut b = x;
        fmmp_per_site(&mut b, &[p; 6]);
        assert!(max_diff(&a, &b) < 1e-15);
    }

    #[test]
    fn apply_into_leaves_input_untouched() {
        let op = Fmmp::new(6, 0.2);
        let x = random_vector(64, 21);
        let x_copy = x.clone();
        let mut y = vec![0.0; 64];
        op.apply_into(&x, &mut y);
        assert_eq!(x, x_copy);
        let mut z = x;
        op.apply_in_place(&mut z);
        assert!(max_diff(&y, &z) < 1e-16);
    }

    #[test]
    fn kernel_index_map_is_the_classic_formula() {
        // j = 2·i·⌊ID/i⌋ + ID mod i == 2·ID − (ID & (i−1)) for power-of-two i.
        for log_i in 0..6u32 {
            let i = 1usize << log_i;
            for id in 0..256usize {
                let classic = 2 * i * (id / i) + id % i;
                let trick = 2 * id - (id & (i - 1));
                assert_eq!(classic, trick);
            }
        }
    }

    #[test]
    fn p_half_collapses_to_averages() {
        // At p = 1/2 every butterfly averages, so Q·v = mean(v)·1.
        let x = random_vector(1 << 5, 4);
        let mean = qs_linalg::sum(&x) / x.len() as f64;
        let mut v = x;
        fmmp_in_place(&mut v, 0.5);
        for &u in &v {
            assert!((u - mean).abs() < 1e-13);
        }
    }

    #[test]
    fn flops_estimate_scales_n_log_n() {
        let a = Fmmp::new(10, 0.1).flops_estimate();
        let b = Fmmp::new(11, 0.1).flops_estimate();
        assert!((b / a - 2.0 * 11.0 / 10.0).abs() < 1e-12);
    }

    #[test]
    fn fused_variant_reports_reference_flops() {
        // Fusion changes memory traffic, not arithmetic: telemetry and the
        // bench harness must see identical flop counts.
        for nu in [4u32, 10, 16] {
            assert_eq!(
                Fmmp::fused(nu, 0.1).flops_estimate(),
                Fmmp::new(nu, 0.1).flops_estimate()
            );
        }
    }

    #[test]
    fn fused_probed_counts_memory_passes_not_stages() {
        use qs_telemetry::{RecordingProbe, SolverEvent};
        let nu = 10u32;
        let op = Fmmp::fused(nu, 0.05);
        let x = random_vector(1 << nu, 8);
        let mut plain = vec![0.0; 1 << nu];
        op.apply_into(&x, &mut plain);
        let mut rec = RecordingProbe::new();
        let mut probed = vec![0.0; 1 << nu];
        op.apply_into_probed(&x, &mut probed, &mut rec);
        assert_eq!(plain, probed);
        let passes = rec
            .events()
            .iter()
            .filter(|e| {
                matches!(
                    e,
                    SolverEvent::MatvecTimed {
                        stage: "fmmp-fused-pass",
                        ..
                    }
                )
            })
            .count();
        assert_eq!(passes, crate::fused::plan_span(1 << nu, 1).len());
        assert!(passes < nu as usize, "fusion must cut the pass count");
    }

    #[test]
    fn apply_batch_equals_independent_applies() {
        let nu = 8u32;
        let k = 5usize;
        let op = Fmmp::new(nu, 0.21);
        let mut slab = random_vector((1 << nu) * k, 31);
        let mut want = slab.clone();
        for col in want.chunks_exact_mut(1 << nu) {
            op.apply_in_place(col);
        }
        op.apply_batch(&mut slab);
        assert!(max_diff(&want, &slab) <= 1e-12);
    }

    #[test]
    #[should_panic(expected = "length must be 2^ν")]
    fn rejects_non_power_of_two() {
        let mut v = vec![1.0; 3];
        fmmp_in_place(&mut v, 0.1);
    }

    #[test]
    fn probed_apply_matches_plain_and_times_each_stage() {
        use qs_telemetry::{NullProbe, RecordingProbe, SolverEvent};
        let nu = 7u32;
        let op = Fmmp::new(nu, 0.03);
        let x = random_vector(1 << nu, 42);

        let mut plain = vec![0.0; 1 << nu];
        op.apply_into(&x, &mut plain);

        let mut rec = RecordingProbe::new();
        let mut probed = vec![0.0; 1 << nu];
        op.apply_into_probed(&x, &mut probed, &mut rec);
        assert_eq!(plain, probed, "probed product diverges from plain");
        // One MatvecTimed per butterfly stage: ν stages.
        let timed = rec
            .events()
            .iter()
            .filter(|e| {
                matches!(
                    e,
                    SolverEvent::MatvecTimed {
                        stage: "fmmp-stage",
                        ..
                    }
                )
            })
            .count();
        assert_eq!(timed, nu as usize);

        // Disabled probe takes the uninstrumented path and records nothing.
        let mut null = NullProbe;
        let mut silent = vec![0.0; 1 << nu];
        op.apply_into_probed(&x, &mut silent, &mut null);
        assert_eq!(plain, silent);
    }
}
