//! Runtime-dispatched SIMD fibre kernels for the butterfly transforms.
//!
//! The radix-2/4/8 fibre loops in [`crate::fused`] are pure streaming
//! maps: every element of a fibre is combined with the matching element
//! of its partner fibres through the 2×2 butterfly
//! `(a, b) ← (c₀₀·a + c₀₁·b, c₁₀·a + c₁₁·b)`. LLVM already autovectorizes
//! the register-blocked scalar loops, but an explicit `std::arch` layer
//! wins the remaining headroom (wider loads, no re-vectorisation at every
//! inlining site) and — more importantly — makes the vector width a
//! *dispatched, testable* property instead of an optimiser accident.
//!
//! Three ISA paths exist:
//!
//! * [`Isa::Scalar`] — the portable register-blocked loops in
//!   [`crate::fused`] (this module only reports "no SIMD", the caller
//!   keeps its scalar path),
//! * [`Isa::Avx2`] — 4-wide `f64x4` via `_mm256_*` intrinsics,
//! * [`Isa::Avx512`] — 8-wide `f64x8` via `_mm512_*` intrinsics, compiled
//!   only when the toolchain stabilises them (`qs_avx512` cfg emitted by
//!   `build.rs` on rustc ≥ 1.89) and dispatched only when the CPU reports
//!   `avx512f`.
//!
//! **Bit-identity contract.** The SIMD kernels evaluate, per element, the
//! exact expression sequence of the scalar kernels — separate multiplies
//! and adds in the same order, never FMA (a fused multiply-add changes
//! the rounding and would break the `tests/kernel_properties.rs` pin).
//! Lanes never interact, so vectorisation regroups only the iteration
//! bookkeeping; tails shorter than one vector run a scalar remainder loop
//! with the same expressions. Every path is therefore bit-for-bit equal
//! to the staged reference.
//!
//! Dispatch is resolved once per process from CPUID (overridable with the
//! `QS_ISA` environment variable or [`force`], which the CLI's `--isa`
//! flag and the per-ISA CI test matrix use) and cached in an atomic, so
//! the hot path pays one relaxed load.

#![allow(unsafe_code)]

use std::sync::atomic::{AtomicU8, Ordering};

/// An instruction-set path the fibre kernels can dispatch to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Isa {
    /// Portable register-blocked scalar loops (always available).
    Scalar,
    /// 4-wide double-precision AVX2 kernels.
    Avx2,
    /// 8-wide double-precision AVX-512 kernels (needs both a new enough
    /// toolchain — see `build.rs` — and `avx512f` on the CPU).
    Avx512,
}

impl Isa {
    /// The `snake_case` name used by `--isa`, `QS_ISA` and telemetry.
    pub fn name(self) -> &'static str {
        match self {
            Isa::Scalar => "scalar",
            Isa::Avx2 => "avx2",
            Isa::Avx512 => "avx512",
        }
    }

    /// Parse an ISA name as accepted by `--isa` / `QS_ISA` (`"auto"` is
    /// handled by the callers, not here).
    pub fn from_name(name: &str) -> Option<Isa> {
        match name {
            "scalar" => Some(Isa::Scalar),
            "avx2" => Some(Isa::Avx2),
            "avx512" => Some(Isa::Avx512),
            _ => None,
        }
    }

    /// Can this path run on the current CPU with the current build?
    pub fn available(self) -> bool {
        match self {
            Isa::Scalar => true,
            Isa::Avx2 => {
                #[cfg(target_arch = "x86_64")]
                {
                    std::arch::is_x86_feature_detected!("avx2")
                }
                #[cfg(not(target_arch = "x86_64"))]
                {
                    false
                }
            }
            Isa::Avx512 => {
                #[cfg(all(target_arch = "x86_64", qs_avx512))]
                {
                    std::arch::is_x86_feature_detected!("avx512f")
                }
                #[cfg(not(all(target_arch = "x86_64", qs_avx512)))]
                {
                    false
                }
            }
        }
    }

    fn code(self) -> u8 {
        match self {
            Isa::Scalar => 1,
            Isa::Avx2 => 2,
            Isa::Avx512 => 3,
        }
    }

    fn from_code(code: u8) -> Option<Isa> {
        match code {
            1 => Some(Isa::Scalar),
            2 => Some(Isa::Avx2),
            3 => Some(Isa::Avx512),
            _ => None,
        }
    }
}

/// Requested ISA is not runnable on this CPU/build.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct IsaUnavailable(pub Isa);

impl std::fmt::Display for IsaUnavailable {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "ISA '{}' is not available on this CPU/build",
            self.0.name()
        )
    }
}

impl std::error::Error for IsaUnavailable {}

/// Cached dispatch decision: 0 = unresolved, otherwise `Isa::code`.
static ACTIVE: AtomicU8 = AtomicU8::new(0);

/// The widest ISA the current CPU and build support.
pub fn detect() -> Isa {
    if Isa::Avx512.available() {
        Isa::Avx512
    } else if Isa::Avx2.available() {
        Isa::Avx2
    } else {
        Isa::Scalar
    }
}

/// Resolve the initial dispatch: the `QS_ISA` environment variable when it
/// names an available path, CPU detection otherwise. `auto`, empty, and
/// unknown or unavailable names all fall through to detection.
fn resolve() -> Isa {
    if let Ok(name) = std::env::var("QS_ISA") {
        if let Some(isa) = Isa::from_name(name.trim()) {
            if isa.available() {
                return isa;
            }
        }
    }
    detect()
}

/// The ISA every fibre kernel currently dispatches to.
///
/// Resolved once (env override, then CPUID) and cached; afterwards this is
/// a single relaxed atomic load. [`force`] / [`reset_auto`] change it.
#[inline]
pub fn active() -> Isa {
    match Isa::from_code(ACTIVE.load(Ordering::Relaxed)) {
        Some(isa) => isa,
        None => {
            let isa = resolve();
            // A concurrent first call resolves to the same value, so a
            // plain store is fine.
            ACTIVE.store(isa.code(), Ordering::Relaxed);
            isa
        }
    }
}

/// Pin dispatch to `isa` for the rest of the process (or until the next
/// [`force`] / [`reset_auto`]). Used by `--isa` and the per-ISA test
/// matrix.
///
/// # Errors
///
/// [`IsaUnavailable`] if the CPU/build cannot run `isa`; dispatch is left
/// unchanged.
pub fn force(isa: Isa) -> Result<(), IsaUnavailable> {
    if !isa.available() {
        return Err(IsaUnavailable(isa));
    }
    ACTIVE.store(isa.code(), Ordering::Relaxed);
    Ok(())
}

/// Drop any pinned ISA: the next [`active`] call re-resolves from the
/// environment and CPUID.
pub fn reset_auto() {
    ACTIVE.store(0, Ordering::Relaxed);
}

/// Radix-2 SIMD pass over two equal-length fibres with butterfly
/// coefficients `c` (see [`crate::fused::Butterfly::coeffs`]). Returns
/// `false` when dispatch is [`Isa::Scalar`] — the caller then runs its
/// register-blocked scalar loop.
#[inline]
pub(crate) fn radix2_simd(f0: &mut [f64], f1: &mut [f64], c: [f64; 4]) -> bool {
    debug_assert_eq!(f0.len(), f1.len());
    let len = f0.len().min(f1.len());
    match active() {
        Isa::Scalar => false,
        #[cfg(target_arch = "x86_64")]
        Isa::Avx2 => {
            // SAFETY: `avx2` is verified by dispatch; pointers cover `len`
            // elements of two disjoint `&mut` slices.
            unsafe { avx2::radix2(f0.as_mut_ptr(), f1.as_mut_ptr(), len, c) };
            true
        }
        #[cfg(all(target_arch = "x86_64", qs_avx512))]
        Isa::Avx512 => {
            // SAFETY: as above with `avx512f` verified by dispatch.
            unsafe { avx512::radix2(f0.as_mut_ptr(), f1.as_mut_ptr(), len, c) };
            true
        }
        #[allow(unreachable_patterns)]
        _ => false,
    }
}

/// Radix-4 SIMD pass (two fused butterfly layers) over four equal-length
/// fibres; same dispatch contract as [`radix2_simd`].
#[inline]
pub(crate) fn radix4_simd(f: [&mut [f64]; 4], c: [f64; 4]) -> bool {
    let len = f.iter().map(|s| s.len()).min().unwrap_or(0);
    match active() {
        Isa::Scalar => false,
        #[cfg(target_arch = "x86_64")]
        Isa::Avx2 => {
            let [f0, f1, f2, f3] = f;
            // SAFETY: feature verified by dispatch; the four pointers come
            // from disjoint `&mut` slices each at least `len` long.
            unsafe {
                avx2::radix4(
                    [
                        f0.as_mut_ptr(),
                        f1.as_mut_ptr(),
                        f2.as_mut_ptr(),
                        f3.as_mut_ptr(),
                    ],
                    len,
                    c,
                )
            };
            true
        }
        #[cfg(all(target_arch = "x86_64", qs_avx512))]
        Isa::Avx512 => {
            let [f0, f1, f2, f3] = f;
            // SAFETY: as above with `avx512f` verified by dispatch.
            unsafe {
                avx512::radix4(
                    [
                        f0.as_mut_ptr(),
                        f1.as_mut_ptr(),
                        f2.as_mut_ptr(),
                        f3.as_mut_ptr(),
                    ],
                    len,
                    c,
                )
            };
            true
        }
        #[allow(unreachable_patterns)]
        _ => false,
    }
}

/// Radix-8 SIMD pass (three fused butterfly layers) over eight
/// equal-length fibres; same dispatch contract as [`radix2_simd`].
#[inline]
pub(crate) fn radix8_simd(f: [&mut [f64]; 8], c: [f64; 4]) -> bool {
    let len = f.iter().map(|s| s.len()).min().unwrap_or(0);
    match active() {
        Isa::Scalar => false,
        #[cfg(target_arch = "x86_64")]
        Isa::Avx2 => {
            let ptrs = f.map(|s| s.as_mut_ptr());
            // SAFETY: feature verified by dispatch; eight disjoint `&mut`
            // slices each at least `len` long.
            unsafe { avx2::radix8(ptrs, len, c) };
            true
        }
        #[cfg(all(target_arch = "x86_64", qs_avx512))]
        Isa::Avx512 => {
            let ptrs = f.map(|s| s.as_mut_ptr());
            // SAFETY: as above with `avx512f` verified by dispatch.
            unsafe { avx512::radix8(ptrs, len, c) };
            true
        }
        #[allow(unreachable_patterns)]
        _ => false,
    }
}

/// Accumulator lanes used by the fused block reductions: one AVX-512
/// vector, two AVX2 vectors, or eight scalar partial sums. Fixing the
/// count (rather than letting each ISA pick its own width) is what makes
/// the three paths bit-identical: every element lands in the same lane
/// (`index % 8`) and the horizontal sum runs in the same fixed order.
const REDUCE_LANES: usize = 8;

/// Horizontal sum of the eight reduction lanes in a fixed tree order,
/// shared by every ISA path.
#[inline(always)]
fn reduce_lanes_sum(acc: [f64; REDUCE_LANES]) -> f64 {
    ((acc[0] + acc[1]) + (acc[2] + acc[3])) + ((acc[4] + acc[5]) + (acc[6] + acc[7]))
}

/// Portable 8-lane dot product body; also the reference the SIMD paths
/// must match bit for bit.
fn scalar_block_dot(x: &[f64], y: &[f64]) -> f64 {
    let len = x.len();
    let body = len - len % REDUCE_LANES;
    let mut acc = [0.0f64; REDUCE_LANES];
    let mut k = 0;
    while k < body {
        for (l, a) in acc.iter_mut().enumerate() {
            *a += x[k + l] * y[k + l];
        }
        k += REDUCE_LANES;
    }
    for j in body..len {
        acc[j - body] += x[j] * y[j];
    }
    reduce_lanes_sum(acc)
}

/// Portable 8-lane body for the fused residual/norm pass; reference for
/// the SIMD paths.
fn scalar_block_step_norms(x: &[f64], y: &[f64], lambda: f64) -> (f64, f64) {
    let len = x.len();
    let body = len - len % REDUCE_LANES;
    let mut rss = [0.0f64; REDUCE_LANES];
    let mut yss = [0.0f64; REDUCE_LANES];
    let mut k = 0;
    while k < body {
        for l in 0..REDUCE_LANES {
            let d = y[k + l] - lambda * x[k + l];
            rss[l] += d * d;
            yss[l] += y[k + l] * y[k + l];
        }
        k += REDUCE_LANES;
    }
    for j in body..len {
        let d = y[j] - lambda * x[j];
        rss[j - body] += d * d;
        yss[j - body] += y[j] * y[j];
    }
    (reduce_lanes_sum(rss), reduce_lanes_sum(yss))
}

/// Fused block-reduction dot product `Σ xᵢ·yᵢ`, dispatched like the fibre
/// kernels. Used by the block power iteration for the per-column Rayleigh
/// quotient so the reduction runs register-blocked at SIMD width.
///
/// **Bit-identity contract.** All ISA paths keep the same eight
/// accumulator lanes (element `i` always lands in lane `i % 8`, remainder
/// included) and reduce them in one fixed scalar order, with separate
/// multiplies and adds (never FMA) — so the result is bit-identical
/// across scalar, AVX2 and AVX-512, and depends only on this column's
/// data, never on where the column sits inside a slab.
///
/// # Panics
///
/// Panics if `x.len() != y.len()`.
pub fn block_dot(x: &[f64], y: &[f64]) -> f64 {
    assert_eq!(x.len(), y.len(), "block_dot: length mismatch");
    match active() {
        #[cfg(target_arch = "x86_64")]
        Isa::Avx2 => {
            // SAFETY: `avx2` is verified by dispatch.
            unsafe { avx2::block_dot(x, y) }
        }
        #[cfg(all(target_arch = "x86_64", qs_avx512))]
        Isa::Avx512 => {
            // SAFETY: `avx512f` is verified by dispatch.
            unsafe { avx512::block_dot(x, y) }
        }
        _ => scalar_block_dot(x, y),
    }
}

/// Fused block-reduction residual/norm pass: one traversal of a column
/// pair computing `(‖y − λx‖₂², ‖y‖₂²)` — the power step's convergence
/// residual and the normalisation factor — instead of materialising the
/// residual vector and scanning twice. Same dispatch and bit-identity
/// contract as [`block_dot`].
///
/// # Panics
///
/// Panics if `x.len() != y.len()`.
pub fn block_step_norms(x: &[f64], y: &[f64], lambda: f64) -> (f64, f64) {
    assert_eq!(x.len(), y.len(), "block_step_norms: length mismatch");
    match active() {
        #[cfg(target_arch = "x86_64")]
        Isa::Avx2 => {
            // SAFETY: `avx2` is verified by dispatch.
            unsafe { avx2::block_step_norms(x, y, lambda) }
        }
        #[cfg(all(target_arch = "x86_64", qs_avx512))]
        Isa::Avx512 => {
            // SAFETY: `avx512f` is verified by dispatch.
            unsafe { avx512::block_step_norms(x, y, lambda) }
        }
        _ => scalar_block_step_norms(x, y, lambda),
    }
}

/// Scalar butterfly on raw pointers — the remainder loop the SIMD kernels
/// share. Identical expressions to the vector lanes and to
/// `Butterfly::bf` via the `coeffs` contract.
///
/// # Safety
///
/// `f0 + k` and `f1 + k` must be valid, disjoint `f64` locations for
/// every `k` in `start..len`.
#[cfg(target_arch = "x86_64")]
#[inline(always)]
unsafe fn scalar_tail2(f0: *mut f64, f1: *mut f64, start: usize, len: usize, c: [f64; 4]) {
    for k in start..len {
        let a = *f0.add(k);
        let b = *f1.add(k);
        *f0.add(k) = c[0] * a + c[1] * b;
        *f1.add(k) = c[2] * a + c[3] * b;
    }
}

#[cfg(target_arch = "x86_64")]
mod avx2 {
    //! 4-wide `f64x4` kernels. All loads/stores are unaligned (`loadu` /
    //! `storeu`): the fibres are arbitrary offsets into the transform
    //! vector, and on current cores unaligned AVX2 moves are free when
    //! the data happens to be aligned (the workspace hands out 64-byte
    //! aligned buffers precisely to make that the common case).

    use std::arch::x86_64::*;

    /// One vector butterfly: `(c₀₀·a + c₀₁·b, c₁₀·a + c₁₁·b)` with
    /// separate mul/add (never FMA — bit-identity with the scalar path).
    #[inline(always)]
    unsafe fn bf4(
        a: __m256d,
        b: __m256d,
        c00: __m256d,
        c01: __m256d,
        c10: __m256d,
        c11: __m256d,
    ) -> (__m256d, __m256d) {
        let u = _mm256_add_pd(_mm256_mul_pd(c00, a), _mm256_mul_pd(c01, b));
        let w = _mm256_add_pd(_mm256_mul_pd(c10, a), _mm256_mul_pd(c11, b));
        (u, w)
    }

    /// # Safety
    ///
    /// Caller verifies `avx2` and passes pointers to two disjoint buffers
    /// of at least `len` `f64`s.
    #[target_feature(enable = "avx2")]
    pub(super) unsafe fn radix2(f0: *mut f64, f1: *mut f64, len: usize, c: [f64; 4]) {
        let (c00, c01) = (_mm256_set1_pd(c[0]), _mm256_set1_pd(c[1]));
        let (c10, c11) = (_mm256_set1_pd(c[2]), _mm256_set1_pd(c[3]));
        let mut k = 0;
        while k + 4 <= len {
            let a = _mm256_loadu_pd(f0.add(k));
            let b = _mm256_loadu_pd(f1.add(k));
            let (u, w) = bf4(a, b, c00, c01, c10, c11);
            _mm256_storeu_pd(f0.add(k), u);
            _mm256_storeu_pd(f1.add(k), w);
            k += 4;
        }
        super::scalar_tail2(f0, f1, k, len, c);
    }

    /// Two fused layers over four fibres; expression order mirrors the
    /// scalar radix-4 kernel exactly.
    ///
    /// # Safety
    ///
    /// Caller verifies `avx2`; four disjoint buffers of ≥ `len` `f64`s.
    #[target_feature(enable = "avx2")]
    pub(super) unsafe fn radix4(f: [*mut f64; 4], len: usize, c: [f64; 4]) {
        let (c00, c01) = (_mm256_set1_pd(c[0]), _mm256_set1_pd(c[1]));
        let (c10, c11) = (_mm256_set1_pd(c[2]), _mm256_set1_pd(c[3]));
        let [f0, f1, f2, f3] = f;
        let mut k = 0;
        while k + 4 <= len {
            let x0 = _mm256_loadu_pd(f0.add(k));
            let x1 = _mm256_loadu_pd(f1.add(k));
            let x2 = _mm256_loadu_pd(f2.add(k));
            let x3 = _mm256_loadu_pd(f3.add(k));
            // Stage i: pairs (x0,x1), (x2,x3).
            let (a0, a1) = bf4(x0, x1, c00, c01, c10, c11);
            let (a2, a3) = bf4(x2, x3, c00, c01, c10, c11);
            // Stage 2i: pairs (a0,a2), (a1,a3).
            let (b0, b2) = bf4(a0, a2, c00, c01, c10, c11);
            let (b1, b3) = bf4(a1, a3, c00, c01, c10, c11);
            _mm256_storeu_pd(f0.add(k), b0);
            _mm256_storeu_pd(f1.add(k), b1);
            _mm256_storeu_pd(f2.add(k), b2);
            _mm256_storeu_pd(f3.add(k), b3);
            k += 4;
        }
        for j in k..len {
            let x0 = *f0.add(j);
            let x1 = *f1.add(j);
            let x2 = *f2.add(j);
            let x3 = *f3.add(j);
            let (a0, a1) = (c[0] * x0 + c[1] * x1, c[2] * x0 + c[3] * x1);
            let (a2, a3) = (c[0] * x2 + c[1] * x3, c[2] * x2 + c[3] * x3);
            let (b0, b2) = (c[0] * a0 + c[1] * a2, c[2] * a0 + c[3] * a2);
            let (b1, b3) = (c[0] * a1 + c[1] * a3, c[2] * a1 + c[3] * a3);
            *f0.add(j) = b0;
            *f1.add(j) = b1;
            *f2.add(j) = b2;
            *f3.add(j) = b3;
        }
    }

    /// 8-lane dot product: two `f64x4` accumulators are exactly lanes
    /// 0–3 / 4–7 of the scalar reference, so the per-lane add order (and
    /// therefore every bit of the result) matches `scalar_block_dot`.
    ///
    /// # Safety
    ///
    /// Caller verifies `avx2`; `x` and `y` have equal length.
    #[target_feature(enable = "avx2")]
    pub(super) unsafe fn block_dot(x: &[f64], y: &[f64]) -> f64 {
        let len = x.len();
        let body = len - len % super::REDUCE_LANES;
        let (xp, yp) = (x.as_ptr(), y.as_ptr());
        let mut acc_lo = _mm256_setzero_pd();
        let mut acc_hi = _mm256_setzero_pd();
        let mut k = 0;
        while k < body {
            let x_lo = _mm256_loadu_pd(xp.add(k));
            let y_lo = _mm256_loadu_pd(yp.add(k));
            let x_hi = _mm256_loadu_pd(xp.add(k + 4));
            let y_hi = _mm256_loadu_pd(yp.add(k + 4));
            acc_lo = _mm256_add_pd(acc_lo, _mm256_mul_pd(x_lo, y_lo));
            acc_hi = _mm256_add_pd(acc_hi, _mm256_mul_pd(x_hi, y_hi));
            k += super::REDUCE_LANES;
        }
        let mut acc = [0.0f64; super::REDUCE_LANES];
        _mm256_storeu_pd(acc.as_mut_ptr(), acc_lo);
        _mm256_storeu_pd(acc.as_mut_ptr().add(4), acc_hi);
        for j in body..len {
            acc[j - body] += x[j] * y[j];
        }
        super::reduce_lanes_sum(acc)
    }

    /// 8-lane fused residual/norm pass; lane layout and expression order
    /// match `scalar_block_step_norms` (separate mul/sub/add, no FMA).
    ///
    /// # Safety
    ///
    /// Caller verifies `avx2`; `x` and `y` have equal length.
    #[target_feature(enable = "avx2")]
    pub(super) unsafe fn block_step_norms(x: &[f64], y: &[f64], lambda: f64) -> (f64, f64) {
        let len = x.len();
        let body = len - len % super::REDUCE_LANES;
        let (xp, yp) = (x.as_ptr(), y.as_ptr());
        let lam = _mm256_set1_pd(lambda);
        let mut rss_lo = _mm256_setzero_pd();
        let mut rss_hi = _mm256_setzero_pd();
        let mut yss_lo = _mm256_setzero_pd();
        let mut yss_hi = _mm256_setzero_pd();
        let mut k = 0;
        while k < body {
            let x_lo = _mm256_loadu_pd(xp.add(k));
            let y_lo = _mm256_loadu_pd(yp.add(k));
            let x_hi = _mm256_loadu_pd(xp.add(k + 4));
            let y_hi = _mm256_loadu_pd(yp.add(k + 4));
            let d_lo = _mm256_sub_pd(y_lo, _mm256_mul_pd(lam, x_lo));
            let d_hi = _mm256_sub_pd(y_hi, _mm256_mul_pd(lam, x_hi));
            rss_lo = _mm256_add_pd(rss_lo, _mm256_mul_pd(d_lo, d_lo));
            rss_hi = _mm256_add_pd(rss_hi, _mm256_mul_pd(d_hi, d_hi));
            yss_lo = _mm256_add_pd(yss_lo, _mm256_mul_pd(y_lo, y_lo));
            yss_hi = _mm256_add_pd(yss_hi, _mm256_mul_pd(y_hi, y_hi));
            k += super::REDUCE_LANES;
        }
        let mut rss = [0.0f64; super::REDUCE_LANES];
        let mut yss = [0.0f64; super::REDUCE_LANES];
        _mm256_storeu_pd(rss.as_mut_ptr(), rss_lo);
        _mm256_storeu_pd(rss.as_mut_ptr().add(4), rss_hi);
        _mm256_storeu_pd(yss.as_mut_ptr(), yss_lo);
        _mm256_storeu_pd(yss.as_mut_ptr().add(4), yss_hi);
        for j in body..len {
            let d = y[j] - lambda * x[j];
            rss[j - body] += d * d;
            yss[j - body] += y[j] * y[j];
        }
        (super::reduce_lanes_sum(rss), super::reduce_lanes_sum(yss))
    }

    /// Three fused layers over eight fibres; expression order mirrors the
    /// scalar radix-8 kernel exactly.
    ///
    /// # Safety
    ///
    /// Caller verifies `avx2`; eight disjoint buffers of ≥ `len` `f64`s.
    #[target_feature(enable = "avx2")]
    pub(super) unsafe fn radix8(f: [*mut f64; 8], len: usize, c: [f64; 4]) {
        let (c00, c01) = (_mm256_set1_pd(c[0]), _mm256_set1_pd(c[1]));
        let (c10, c11) = (_mm256_set1_pd(c[2]), _mm256_set1_pd(c[3]));
        let mut k = 0;
        while k + 4 <= len {
            let x: [__m256d; 8] = [
                _mm256_loadu_pd(f[0].add(k)),
                _mm256_loadu_pd(f[1].add(k)),
                _mm256_loadu_pd(f[2].add(k)),
                _mm256_loadu_pd(f[3].add(k)),
                _mm256_loadu_pd(f[4].add(k)),
                _mm256_loadu_pd(f[5].add(k)),
                _mm256_loadu_pd(f[6].add(k)),
                _mm256_loadu_pd(f[7].add(k)),
            ];
            // Stage i.
            let (a0, a1) = bf4(x[0], x[1], c00, c01, c10, c11);
            let (a2, a3) = bf4(x[2], x[3], c00, c01, c10, c11);
            let (a4, a5) = bf4(x[4], x[5], c00, c01, c10, c11);
            let (a6, a7) = bf4(x[6], x[7], c00, c01, c10, c11);
            // Stage 2i.
            let (b0, b2) = bf4(a0, a2, c00, c01, c10, c11);
            let (b1, b3) = bf4(a1, a3, c00, c01, c10, c11);
            let (b4, b6) = bf4(a4, a6, c00, c01, c10, c11);
            let (b5, b7) = bf4(a5, a7, c00, c01, c10, c11);
            // Stage 4i.
            let (y0, y4) = bf4(b0, b4, c00, c01, c10, c11);
            let (y1, y5) = bf4(b1, b5, c00, c01, c10, c11);
            let (y2, y6) = bf4(b2, b6, c00, c01, c10, c11);
            let (y3, y7) = bf4(b3, b7, c00, c01, c10, c11);
            _mm256_storeu_pd(f[0].add(k), y0);
            _mm256_storeu_pd(f[1].add(k), y1);
            _mm256_storeu_pd(f[2].add(k), y2);
            _mm256_storeu_pd(f[3].add(k), y3);
            _mm256_storeu_pd(f[4].add(k), y4);
            _mm256_storeu_pd(f[5].add(k), y5);
            _mm256_storeu_pd(f[6].add(k), y6);
            _mm256_storeu_pd(f[7].add(k), y7);
            k += 4;
        }
        for j in k..len {
            let x: [f64; 8] = [
                *f[0].add(j),
                *f[1].add(j),
                *f[2].add(j),
                *f[3].add(j),
                *f[4].add(j),
                *f[5].add(j),
                *f[6].add(j),
                *f[7].add(j),
            ];
            let (a0, a1) = (c[0] * x[0] + c[1] * x[1], c[2] * x[0] + c[3] * x[1]);
            let (a2, a3) = (c[0] * x[2] + c[1] * x[3], c[2] * x[2] + c[3] * x[3]);
            let (a4, a5) = (c[0] * x[4] + c[1] * x[5], c[2] * x[4] + c[3] * x[5]);
            let (a6, a7) = (c[0] * x[6] + c[1] * x[7], c[2] * x[6] + c[3] * x[7]);
            let (b0, b2) = (c[0] * a0 + c[1] * a2, c[2] * a0 + c[3] * a2);
            let (b1, b3) = (c[0] * a1 + c[1] * a3, c[2] * a1 + c[3] * a3);
            let (b4, b6) = (c[0] * a4 + c[1] * a6, c[2] * a4 + c[3] * a6);
            let (b5, b7) = (c[0] * a5 + c[1] * a7, c[2] * a5 + c[3] * a7);
            let (y0, y4) = (c[0] * b0 + c[1] * b4, c[2] * b0 + c[3] * b4);
            let (y1, y5) = (c[0] * b1 + c[1] * b5, c[2] * b1 + c[3] * b5);
            let (y2, y6) = (c[0] * b2 + c[1] * b6, c[2] * b2 + c[3] * b6);
            let (y3, y7) = (c[0] * b3 + c[1] * b7, c[2] * b3 + c[3] * b7);
            *f[0].add(j) = y0;
            *f[1].add(j) = y1;
            *f[2].add(j) = y2;
            *f[3].add(j) = y3;
            *f[4].add(j) = y4;
            *f[5].add(j) = y5;
            *f[6].add(j) = y6;
            *f[7].add(j) = y7;
        }
    }
}

#[cfg(all(target_arch = "x86_64", qs_avx512))]
mod avx512 {
    //! 8-wide `f64x8` kernels; structure mirrors the AVX2 module with a
    //! scalar remainder of at most 7 elements.

    use std::arch::x86_64::*;

    #[inline(always)]
    unsafe fn bf8(
        a: __m512d,
        b: __m512d,
        c00: __m512d,
        c01: __m512d,
        c10: __m512d,
        c11: __m512d,
    ) -> (__m512d, __m512d) {
        let u = _mm512_add_pd(_mm512_mul_pd(c00, a), _mm512_mul_pd(c01, b));
        let w = _mm512_add_pd(_mm512_mul_pd(c10, a), _mm512_mul_pd(c11, b));
        (u, w)
    }

    /// # Safety
    ///
    /// Caller verifies `avx512f`; two disjoint buffers of ≥ `len` `f64`s.
    #[target_feature(enable = "avx512f")]
    pub(super) unsafe fn radix2(f0: *mut f64, f1: *mut f64, len: usize, c: [f64; 4]) {
        let (c00, c01) = (_mm512_set1_pd(c[0]), _mm512_set1_pd(c[1]));
        let (c10, c11) = (_mm512_set1_pd(c[2]), _mm512_set1_pd(c[3]));
        let mut k = 0;
        while k + 8 <= len {
            let a = _mm512_loadu_pd(f0.add(k));
            let b = _mm512_loadu_pd(f1.add(k));
            let (u, w) = bf8(a, b, c00, c01, c10, c11);
            _mm512_storeu_pd(f0.add(k), u);
            _mm512_storeu_pd(f1.add(k), w);
            k += 8;
        }
        super::scalar_tail2(f0, f1, k, len, c);
    }

    /// # Safety
    ///
    /// Caller verifies `avx512f`; four disjoint buffers of ≥ `len` `f64`s.
    #[target_feature(enable = "avx512f")]
    pub(super) unsafe fn radix4(f: [*mut f64; 4], len: usize, c: [f64; 4]) {
        let (c00, c01) = (_mm512_set1_pd(c[0]), _mm512_set1_pd(c[1]));
        let (c10, c11) = (_mm512_set1_pd(c[2]), _mm512_set1_pd(c[3]));
        let [f0, f1, f2, f3] = f;
        let mut k = 0;
        while k + 8 <= len {
            let x0 = _mm512_loadu_pd(f0.add(k));
            let x1 = _mm512_loadu_pd(f1.add(k));
            let x2 = _mm512_loadu_pd(f2.add(k));
            let x3 = _mm512_loadu_pd(f3.add(k));
            let (a0, a1) = bf8(x0, x1, c00, c01, c10, c11);
            let (a2, a3) = bf8(x2, x3, c00, c01, c10, c11);
            let (b0, b2) = bf8(a0, a2, c00, c01, c10, c11);
            let (b1, b3) = bf8(a1, a3, c00, c01, c10, c11);
            _mm512_storeu_pd(f0.add(k), b0);
            _mm512_storeu_pd(f1.add(k), b1);
            _mm512_storeu_pd(f2.add(k), b2);
            _mm512_storeu_pd(f3.add(k), b3);
            k += 8;
        }
        for j in k..len {
            let x0 = *f0.add(j);
            let x1 = *f1.add(j);
            let x2 = *f2.add(j);
            let x3 = *f3.add(j);
            let (a0, a1) = (c[0] * x0 + c[1] * x1, c[2] * x0 + c[3] * x1);
            let (a2, a3) = (c[0] * x2 + c[1] * x3, c[2] * x2 + c[3] * x3);
            let (b0, b2) = (c[0] * a0 + c[1] * a2, c[2] * a0 + c[3] * a2);
            let (b1, b3) = (c[0] * a1 + c[1] * a3, c[2] * a1 + c[3] * a3);
            *f0.add(j) = b0;
            *f1.add(j) = b1;
            *f2.add(j) = b2;
            *f3.add(j) = b3;
        }
    }

    /// 8-lane dot product: one `f64x8` accumulator holds exactly the
    /// eight scalar reference lanes, so every bit matches
    /// `scalar_block_dot`.
    ///
    /// # Safety
    ///
    /// Caller verifies `avx512f`; `x` and `y` have equal length.
    #[target_feature(enable = "avx512f")]
    pub(super) unsafe fn block_dot(x: &[f64], y: &[f64]) -> f64 {
        let len = x.len();
        let body = len - len % super::REDUCE_LANES;
        let (xp, yp) = (x.as_ptr(), y.as_ptr());
        let mut acc_v = _mm512_setzero_pd();
        let mut k = 0;
        while k < body {
            let xv = _mm512_loadu_pd(xp.add(k));
            let yv = _mm512_loadu_pd(yp.add(k));
            acc_v = _mm512_add_pd(acc_v, _mm512_mul_pd(xv, yv));
            k += super::REDUCE_LANES;
        }
        let mut acc = [0.0f64; super::REDUCE_LANES];
        _mm512_storeu_pd(acc.as_mut_ptr(), acc_v);
        for j in body..len {
            acc[j - body] += x[j] * y[j];
        }
        super::reduce_lanes_sum(acc)
    }

    /// 8-lane fused residual/norm pass; lane layout and expression order
    /// match `scalar_block_step_norms` (separate mul/sub/add, no FMA).
    ///
    /// # Safety
    ///
    /// Caller verifies `avx512f`; `x` and `y` have equal length.
    #[target_feature(enable = "avx512f")]
    pub(super) unsafe fn block_step_norms(x: &[f64], y: &[f64], lambda: f64) -> (f64, f64) {
        let len = x.len();
        let body = len - len % super::REDUCE_LANES;
        let (xp, yp) = (x.as_ptr(), y.as_ptr());
        let lam = _mm512_set1_pd(lambda);
        let mut rss_v = _mm512_setzero_pd();
        let mut yss_v = _mm512_setzero_pd();
        let mut k = 0;
        while k < body {
            let xv = _mm512_loadu_pd(xp.add(k));
            let yv = _mm512_loadu_pd(yp.add(k));
            let d = _mm512_sub_pd(yv, _mm512_mul_pd(lam, xv));
            rss_v = _mm512_add_pd(rss_v, _mm512_mul_pd(d, d));
            yss_v = _mm512_add_pd(yss_v, _mm512_mul_pd(yv, yv));
            k += super::REDUCE_LANES;
        }
        let mut rss = [0.0f64; super::REDUCE_LANES];
        let mut yss = [0.0f64; super::REDUCE_LANES];
        _mm512_storeu_pd(rss.as_mut_ptr(), rss_v);
        _mm512_storeu_pd(yss.as_mut_ptr(), yss_v);
        for j in body..len {
            let d = y[j] - lambda * x[j];
            rss[j - body] += d * d;
            yss[j - body] += y[j] * y[j];
        }
        (super::reduce_lanes_sum(rss), super::reduce_lanes_sum(yss))
    }

    /// # Safety
    ///
    /// Caller verifies `avx512f`; eight disjoint buffers of ≥ `len` `f64`s.
    #[target_feature(enable = "avx512f")]
    pub(super) unsafe fn radix8(f: [*mut f64; 8], len: usize, c: [f64; 4]) {
        let (c00, c01) = (_mm512_set1_pd(c[0]), _mm512_set1_pd(c[1]));
        let (c10, c11) = (_mm512_set1_pd(c[2]), _mm512_set1_pd(c[3]));
        let mut k = 0;
        while k + 8 <= len {
            let x: [__m512d; 8] = [
                _mm512_loadu_pd(f[0].add(k)),
                _mm512_loadu_pd(f[1].add(k)),
                _mm512_loadu_pd(f[2].add(k)),
                _mm512_loadu_pd(f[3].add(k)),
                _mm512_loadu_pd(f[4].add(k)),
                _mm512_loadu_pd(f[5].add(k)),
                _mm512_loadu_pd(f[6].add(k)),
                _mm512_loadu_pd(f[7].add(k)),
            ];
            let (a0, a1) = bf8(x[0], x[1], c00, c01, c10, c11);
            let (a2, a3) = bf8(x[2], x[3], c00, c01, c10, c11);
            let (a4, a5) = bf8(x[4], x[5], c00, c01, c10, c11);
            let (a6, a7) = bf8(x[6], x[7], c00, c01, c10, c11);
            let (b0, b2) = bf8(a0, a2, c00, c01, c10, c11);
            let (b1, b3) = bf8(a1, a3, c00, c01, c10, c11);
            let (b4, b6) = bf8(a4, a6, c00, c01, c10, c11);
            let (b5, b7) = bf8(a5, a7, c00, c01, c10, c11);
            let (y0, y4) = bf8(b0, b4, c00, c01, c10, c11);
            let (y1, y5) = bf8(b1, b5, c00, c01, c10, c11);
            let (y2, y6) = bf8(b2, b6, c00, c01, c10, c11);
            let (y3, y7) = bf8(b3, b7, c00, c01, c10, c11);
            _mm512_storeu_pd(f[0].add(k), y0);
            _mm512_storeu_pd(f[1].add(k), y1);
            _mm512_storeu_pd(f[2].add(k), y2);
            _mm512_storeu_pd(f[3].add(k), y3);
            _mm512_storeu_pd(f[4].add(k), y4);
            _mm512_storeu_pd(f[5].add(k), y5);
            _mm512_storeu_pd(f[6].add(k), y6);
            _mm512_storeu_pd(f[7].add(k), y7);
            k += 8;
        }
        for j in k..len {
            let x: [f64; 8] = [
                *f[0].add(j),
                *f[1].add(j),
                *f[2].add(j),
                *f[3].add(j),
                *f[4].add(j),
                *f[5].add(j),
                *f[6].add(j),
                *f[7].add(j),
            ];
            let (a0, a1) = (c[0] * x[0] + c[1] * x[1], c[2] * x[0] + c[3] * x[1]);
            let (a2, a3) = (c[0] * x[2] + c[1] * x[3], c[2] * x[2] + c[3] * x[3]);
            let (a4, a5) = (c[0] * x[4] + c[1] * x[5], c[2] * x[4] + c[3] * x[5]);
            let (a6, a7) = (c[0] * x[6] + c[1] * x[7], c[2] * x[6] + c[3] * x[7]);
            let (b0, b2) = (c[0] * a0 + c[1] * a2, c[2] * a0 + c[3] * a2);
            let (b1, b3) = (c[0] * a1 + c[1] * a3, c[2] * a1 + c[3] * a3);
            let (b4, b6) = (c[0] * a4 + c[1] * a6, c[2] * a4 + c[3] * a6);
            let (b5, b7) = (c[0] * a5 + c[1] * a7, c[2] * a5 + c[3] * a7);
            let (y0, y4) = (c[0] * b0 + c[1] * b4, c[2] * b0 + c[3] * b4);
            let (y1, y5) = (c[0] * b1 + c[1] * b5, c[2] * b1 + c[3] * b5);
            let (y2, y6) = (c[0] * b2 + c[1] * b6, c[2] * b2 + c[3] * b6);
            let (y3, y7) = (c[0] * b3 + c[1] * b7, c[2] * b3 + c[3] * b7);
            *f[0].add(j) = y0;
            *f[1].add(j) = y1;
            *f[2].add(j) = y2;
            *f[3].add(j) = y3;
            *f[4].add(j) = y4;
            *f[5].add(j) = y5;
            *f[6].add(j) = y6;
            *f[7].add(j) = y7;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::{Mutex, MutexGuard, OnceLock};

    /// Serialise tests that pin the global dispatch state.
    pub(crate) fn isa_lock() -> MutexGuard<'static, ()> {
        static LOCK: OnceLock<Mutex<()>> = OnceLock::new();
        let lock = LOCK.get_or_init(|| Mutex::new(()));
        lock.lock().unwrap_or_else(|e| e.into_inner())
    }

    fn probe(n: usize, seed: u64) -> Vec<f64> {
        let mut state = seed.wrapping_mul(0x9E3779B97F4A7C15).max(1);
        (0..n)
            .map(|_| {
                state = state.wrapping_add(0x9E3779B97F4A7C15);
                let mut z = state;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
                z ^= z >> 31;
                (z as f64 / u64::MAX as f64) * 4.0 - 2.0
            })
            .collect()
    }

    fn simd_isas() -> Vec<Isa> {
        [Isa::Avx2, Isa::Avx512]
            .into_iter()
            .filter(|isa| isa.available())
            .collect()
    }

    #[test]
    fn names_round_trip() {
        for isa in [Isa::Scalar, Isa::Avx2, Isa::Avx512] {
            assert_eq!(Isa::from_name(isa.name()), Some(isa));
        }
        assert_eq!(Isa::from_name("sse9"), None);
    }

    #[test]
    fn scalar_is_always_available_and_forceable() {
        let _guard = isa_lock();
        let before = active();
        assert!(Isa::Scalar.available());
        force(Isa::Scalar).unwrap();
        assert_eq!(active(), Isa::Scalar);
        force(before).unwrap();
    }

    #[test]
    fn forcing_an_unavailable_isa_is_an_error_and_keeps_dispatch() {
        let _guard = isa_lock();
        let before = active();
        let fake_missing = [Isa::Avx2, Isa::Avx512]
            .into_iter()
            .find(|isa| !isa.available());
        if let Some(isa) = fake_missing {
            assert_eq!(force(isa), Err(IsaUnavailable(isa)));
            assert_eq!(active(), before);
        }
        force(before).unwrap();
    }

    #[test]
    fn detect_is_an_available_isa() {
        assert!(detect().available());
    }

    /// Every SIMD radix-2 path matches the scalar expressions bit for bit,
    /// including odd lengths that exercise the scalar remainder loop.
    #[test]
    fn radix2_simd_is_bit_identical_with_odd_tails() {
        let _guard = isa_lock();
        let before = active();
        // Mix and Hadamard coefficient sets.
        let coeff_sets = [[0.99, 0.01, 0.01, 0.99], [1.0, 1.0, 1.0, -1.0]];
        for isa in simd_isas() {
            force(isa).unwrap();
            for &c in &coeff_sets {
                // 1..=67 covers empty vectors, sub-lane tails for both
                // widths, and multi-vector bodies with remainders.
                for len in (0..=67).chain([128, 1000]) {
                    let f0 = probe(len, 10 + len as u64);
                    let f1 = probe(len, 90 + len as u64);
                    let (mut s0, mut s1) = (f0.clone(), f1.clone());
                    for k in 0..len {
                        let (a, b) = (s0[k], s1[k]);
                        s0[k] = c[0] * a + c[1] * b;
                        s1[k] = c[2] * a + c[3] * b;
                    }
                    let (mut v0, mut v1) = (f0, f1);
                    assert!(radix2_simd(&mut v0, &mut v1, c), "{isa:?} must dispatch");
                    assert_eq!(
                        v0.iter().map(|x| x.to_bits()).collect::<Vec<_>>(),
                        s0.iter().map(|x| x.to_bits()).collect::<Vec<_>>(),
                        "{isa:?} len={len}"
                    );
                    assert_eq!(
                        v1.iter().map(|x| x.to_bits()).collect::<Vec<_>>(),
                        s1.iter().map(|x| x.to_bits()).collect::<Vec<_>>(),
                        "{isa:?} len={len}"
                    );
                }
            }
        }
        force(before).unwrap();
    }

    /// Every SIMD path of the fused block reductions matches the scalar
    /// 8-lane reference bit for bit, including remainder lengths.
    #[test]
    fn block_reductions_are_bit_identical_across_isas() {
        let _guard = isa_lock();
        let before = active();
        for len in (0..=67).chain([128, 1000, 4096]) {
            let x = probe(len, 3 + len as u64);
            let y = probe(len, 77 + len as u64);
            force(Isa::Scalar).unwrap();
            let dot_ref = block_dot(&x, &y);
            let lambda = if dot_ref.is_finite() { dot_ref } else { 0.5 };
            let norms_ref = block_step_norms(&x, &y, lambda);
            for isa in simd_isas() {
                force(isa).unwrap();
                let dot = block_dot(&x, &y);
                assert_eq!(dot.to_bits(), dot_ref.to_bits(), "{isa:?} len={len}");
                let norms = block_step_norms(&x, &y, lambda);
                assert_eq!(
                    norms.0.to_bits(),
                    norms_ref.0.to_bits(),
                    "{isa:?} len={len}"
                );
                assert_eq!(
                    norms.1.to_bits(),
                    norms_ref.1.to_bits(),
                    "{isa:?} len={len}"
                );
            }
        }
        force(before).unwrap();
    }

    /// The fused reductions compute the right quantities (up to summation
    /// reordering) — dot, residual norm², iterate norm².
    #[test]
    fn block_reductions_match_naive_sums() {
        let _guard = isa_lock();
        let before = active();
        force(Isa::Scalar).unwrap();
        let x = probe(257, 5);
        let y = probe(257, 6);
        let lambda = 0.75;
        let naive_dot: f64 = x.iter().zip(&y).map(|(a, b)| a * b).sum();
        let naive_rss: f64 = x
            .iter()
            .zip(&y)
            .map(|(a, b)| {
                let d = b - lambda * a;
                d * d
            })
            .sum();
        let naive_yss: f64 = y.iter().map(|b| b * b).sum();
        assert!((block_dot(&x, &y) - naive_dot).abs() < 1e-10);
        let (rss, yss) = block_step_norms(&x, &y, lambda);
        assert!((rss - naive_rss).abs() < 1e-10);
        assert!((yss - naive_yss).abs() < 1e-10);
        force(before).unwrap();
    }

    #[test]
    fn scalar_dispatch_declines_so_callers_keep_their_loop() {
        let _guard = isa_lock();
        let before = active();
        force(Isa::Scalar).unwrap();
        let mut a = vec![1.0, 2.0];
        let mut b = vec![3.0, 4.0];
        assert!(!radix2_simd(&mut a, &mut b, [1.0, 1.0, 1.0, -1.0]));
        assert_eq!(a, [1.0, 2.0], "declined dispatch must not touch data");
        force(before).unwrap();
    }
}
