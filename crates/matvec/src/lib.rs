//! Implicit matrix–vector products for the quasispecies model.
//!
//! This crate implements every matrix–vector engine of the paper:
//!
//! * [`fmmp`] — the **fast mutation matrix product** (paper Section 2,
//!   Algorithms 1 & 2): `Q(ν)·v` in `Θ(N log₂ N)` time, in place, without
//!   storing a single matrix element. Both recursion orderings (Eq. 9 and
//!   Eq. 10) and the GPU-kernel index form are provided.
//! * [`xmvp`] — the XOR-based implicit (optionally sparsified) product
//!   `Xmvp(d_max)` of the authors' prior work \[10\], the paper's main
//!   baseline. `Xmvp(ν)` is the exact `Θ(N²)` product; `Xmvp(d_max)`
//!   truncates mutations beyond Hamming distance `d_max`.
//! * [`smvp`] — the standard dense product `Smvp` on an explicitly
//!   materialised matrix.
//! * [`fwht`] — the fast Walsh–Hadamard transform, i.e. multiplication by
//!   the eigenvector matrix `V(ν)` of `Q`.
//! * [`shift_invert`] — the `Θ(N log₂ N)` implicit
//!   `(Q − µI)^{-1} v = V (Λ − µI)^{-1} V v` product (paper Section 3).
//! * [`kron`] — a general mixed-radix Kronecker-chain operator covering the
//!   per-site and grouped mutation models of paper Section 2.2 (and the
//!   4-letter alphabet of Section 5.2).
//! * [`ops`] — operator composition: the three eigenproblem formulations
//!   `Q·F`, `F^½·Q·F^½`, `F·Q` (paper Eqs. 3–5) and spectral shifts.
//! * [`parallel`] — the multi-threaded backend standing in for the paper's
//!   OpenCL/GPU implementation: the same `ID`-indexed butterfly
//!   decomposition (Algorithm 2), executed by the chunk-stealing span
//!   schedule of [`schedule`] on one scoped pool per apply.
//! * [`simd`] — runtime-dispatched AVX2/AVX-512 fibre kernels (with the
//!   portable scalar loops as fallback and reference) shared by the
//!   serial, parallel, fused and batched paths.
//!
//! All engines implement [`LinearOperator`] and are verified against each
//! other and against dense materialisations in the test suite.
//!
//! `unsafe` is denied crate-wide and allowed in exactly two leaf modules:
//! [`simd`] (`std::arch` intrinsics behind safe dispatch wrappers) and
//! [`schedule`] (disjoint-span `&mut` reconstruction behind a pass
//! barrier). Everything else remains safe Rust.

#![deny(unsafe_code)]
#![warn(missing_docs)]

pub mod fmmp;
pub mod fused;
pub mod fwht;
pub mod kron;
pub mod ops;
pub mod parallel;
pub mod permuted;
pub mod schedule;
pub mod shift_invert;
pub mod simd;
pub mod smvp;
pub mod xmvp;

pub use fmmp::{Fmmp, FmmpVariant};
pub use fused::{
    fmmp_batch_in_place, fmmp_in_place_fused, fwht_batch_in_place, fwht_in_place_fused, FusedPlan,
    FUSED_TILE,
};
pub use fwht::Fwht;
pub use kron::KroneckerOp;
pub use ops::{conservative_shift, convert_eigenvector, DiagOp, Formulation, ShiftedOp, WOperator};
pub use parallel::{Backend, ParFmmp};
pub use permuted::PermutedOp;
pub use shift_invert::{QShiftInvert, QSweep};
pub use simd::Isa;
pub use smvp::Smvp;
pub use xmvp::Xmvp;

pub use qs_telemetry::{time_stage, Probe};

/// A real linear operator `A : R^N → R^N` available only through its action
/// on vectors.
///
/// Every power-iteration step in the workspace goes through this trait, so
/// any of the paper's engines (and any composition of them) can drive the
/// solver interchangeably.
pub trait LinearOperator: Send + Sync {
    /// Dimension `N` of the operator.
    fn len(&self) -> usize;

    /// Operators are never 0-dimensional.
    fn is_empty(&self) -> bool {
        false
    }

    /// `y ← A·x`.
    ///
    /// # Panics
    ///
    /// Implementations panic if `x.len()` or `y.len()` differ from
    /// [`LinearOperator::len`].
    fn apply_into(&self, x: &[f64], y: &mut [f64]);

    /// `v ← A·v` in place. The default copies through a scratch allocation;
    /// transform-style operators (Fmmp, FWHT, Kronecker chains) override
    /// with a true in-situ butterfly.
    fn apply_in_place(&self, v: &mut [f64]) {
        let x = v.to_vec();
        self.apply_into(&x, v);
    }

    /// `y = A·x` into a fresh vector (convenience).
    fn apply(&self, x: &[f64]) -> Vec<f64> {
        let mut y = vec![0.0; self.len()];
        self.apply_into(x, &mut y);
        y
    }

    /// Rough floating-point operation count of one application, used by the
    /// benchmark harness to draw the paper's `O(N²)` / `O(N log₂ N)`
    /// reference slopes.
    fn flops_estimate(&self) -> f64 {
        let n = self.len() as f64;
        n * n
    }

    /// `y ← A·x`, reporting wall time to `probe`.
    ///
    /// The default times the whole application as one `"apply"` stage;
    /// staged engines (Fmmp, the parallel backend, `WOperator`) override
    /// to report per-stage breakdowns. When `probe` is disabled this must
    /// behave exactly like [`LinearOperator::apply_into`] — the default
    /// and all in-tree overrides delegate to the uninstrumented path, so
    /// the floating-point result is bit-for-bit identical.
    fn apply_into_probed(&self, x: &[f64], y: &mut [f64], probe: &mut dyn Probe) {
        if probe.enabled() {
            time_stage(probe, "apply", || self.apply_into(x, y));
        } else {
            self.apply_into(x, y);
        }
    }

    /// `v ← A·v` in place, reporting wall time to `probe`. Same contract
    /// as [`LinearOperator::apply_into_probed`].
    fn apply_in_place_probed(&self, v: &mut [f64], probe: &mut dyn Probe) {
        if probe.enabled() {
            time_stage(probe, "apply", || self.apply_in_place(v));
        } else {
            self.apply_in_place(v);
        }
    }

    /// Batched apply: `slab` holds `k = slab.len() / N` contiguous
    /// right-hand sides and each is replaced by `A·vⱼ`.
    ///
    /// Semantically identical to `k` independent
    /// [`LinearOperator::apply_in_place`] calls (the default is exactly
    /// that loop); transform-style engines override it to amortise stage
    /// traversal across the batch (interleaved fused butterflies, shared
    /// spectral tables, thread-pool fan-out). Parameter sweeps and block
    /// solver steps should prefer this entry point.
    ///
    /// # Panics
    ///
    /// Implementations panic unless `slab.len()` is a non-zero multiple
    /// of [`LinearOperator::len`].
    fn apply_batch(&self, slab: &mut [f64]) {
        let n = self.len();
        assert!(
            !slab.is_empty() && slab.len() % n == 0,
            "apply_batch: slab must hold a whole number of vectors"
        );
        for v in slab.chunks_exact_mut(n) {
            self.apply_in_place(v);
        }
    }

    /// Batched apply over a *selected* subset of an operator's columns:
    /// `slab` holds `cols.len()` contiguous right-hand sides, and
    /// `cols[c]` names the operator column (e.g. the sweep's p-grid
    /// index) the `c`-th slab lane belongs to. This is the entry point
    /// the block power iteration uses after compacting converged columns
    /// out of its slab: the transform then runs at the live width instead
    /// of the original batch width.
    ///
    /// For operators whose action does not depend on the column index
    /// (every single-column engine) the default ignores `cols` and
    /// applies per lane — bit-identical to [`LinearOperator::apply_batch`]
    /// on the same lanes. Column-indexed operators ([`QSweep`] and
    /// sweep-shaped compositions over it) override this to pick the
    /// matching per-column tables while still amortising stage traversal
    /// across the live lanes; the batch==columnwise bit-identity contract
    /// pinned in `tests/kernel_properties.rs` guarantees each lane's
    /// result is bit-identical to a full-width apply of that column.
    ///
    /// # Panics
    ///
    /// Implementations panic unless `slab.len() == cols.len() * N` with
    /// `cols` non-empty.
    fn apply_batch_selected(&self, slab: &mut [f64], cols: &[usize]) {
        let n = self.len();
        assert!(
            !cols.is_empty() && slab.len() == cols.len() * n,
            "apply_batch_selected: slab must hold one vector per selected column"
        );
        for v in slab.chunks_exact_mut(n) {
            self.apply_in_place(v);
        }
    }
}

impl<A: LinearOperator + ?Sized> LinearOperator for &A {
    fn len(&self) -> usize {
        (**self).len()
    }
    fn apply_into(&self, x: &[f64], y: &mut [f64]) {
        (**self).apply_into(x, y)
    }
    fn apply_in_place(&self, v: &mut [f64]) {
        (**self).apply_in_place(v)
    }
    fn flops_estimate(&self) -> f64 {
        (**self).flops_estimate()
    }
    fn apply_into_probed(&self, x: &[f64], y: &mut [f64], probe: &mut dyn Probe) {
        (**self).apply_into_probed(x, y, probe)
    }
    fn apply_in_place_probed(&self, v: &mut [f64], probe: &mut dyn Probe) {
        (**self).apply_in_place_probed(v, probe)
    }
    fn apply_batch(&self, slab: &mut [f64]) {
        (**self).apply_batch(slab)
    }
    fn apply_batch_selected(&self, slab: &mut [f64], cols: &[usize]) {
        (**self).apply_batch_selected(slab, cols)
    }
}

impl<A: LinearOperator + ?Sized> LinearOperator for Box<A> {
    fn len(&self) -> usize {
        (**self).len()
    }
    fn apply_into(&self, x: &[f64], y: &mut [f64]) {
        (**self).apply_into(x, y)
    }
    fn apply_in_place(&self, v: &mut [f64]) {
        (**self).apply_in_place(v)
    }
    fn flops_estimate(&self) -> f64 {
        (**self).flops_estimate()
    }
    fn apply_into_probed(&self, x: &[f64], y: &mut [f64], probe: &mut dyn Probe) {
        (**self).apply_into_probed(x, y, probe)
    }
    fn apply_in_place_probed(&self, v: &mut [f64], probe: &mut dyn Probe) {
        (**self).apply_in_place_probed(v, probe)
    }
    fn apply_batch(&self, slab: &mut [f64]) {
        (**self).apply_batch(slab)
    }
    fn apply_batch_selected(&self, slab: &mut [f64], cols: &[usize]) {
        (**self).apply_batch_selected(slab, cols)
    }
}

#[cfg(test)]
pub(crate) mod test_util {
    use rand::{Rng, SeedableRng};
    use rand_chacha::ChaCha12Rng;

    /// Deterministic pseudo-random test vector in `[-1, 1)`.
    pub fn random_vector(n: usize, seed: u64) -> Vec<f64> {
        let mut rng = ChaCha12Rng::seed_from_u64(seed);
        (0..n).map(|_| rng.random::<f64>() * 2.0 - 1.0).collect()
    }

    /// Max absolute difference of two vectors.
    pub fn max_diff(a: &[f64], b: &[f64]) -> f64 {
        assert_eq!(a.len(), b.len());
        a.iter()
            .zip(b)
            .fold(0.0f64, |m, (&x, &y)| m.max((x - y).abs()))
    }
}
