//! Sequence reorderings of implicit operators (paper footnote 2).
//!
//! The paper notes that the assignment "index `i` ↔ sequence `X_i`" is a
//! choice: any permutation `π` re-labels the sequences, conjugating the
//! operator (`A_π = P A Pᵀ`). The Gray-code ordering is singled out —
//! `d_H(X_{g(i)}, X_{g(i+1)}) = 1`, so the first off-diagonals of the
//! permuted `Q` are *constant* (`QΓ_1`) — which matters for banded /
//! locality-sensitive post-processing of the eigenvector.
//!
//! [`PermutedOp`] wraps any engine with an arbitrary permutation;
//! [`PermutedOp::gray`] provides the Gray-code conjugation specifically.

use crate::LinearOperator;

/// An operator conjugated by a permutation: `A_π = P·A·Pᵀ`, where
/// `(P·x)[i] = x[π(i)]`.
///
/// Applying `A_π` to a vector indexed in the *permuted* labelling gives
/// the result in the permuted labelling, so eigenvectors transform by the
/// same relabelling and eigenvalues are untouched.
#[derive(Debug, Clone)]
pub struct PermutedOp<A> {
    inner: A,
    /// `perm[i] = π(i)`: the original index stored at permuted position
    /// `i`.
    perm: Vec<usize>,
    /// Inverse permutation: `inv[π(i)] = i`.
    inv: Vec<usize>,
}

impl<A: LinearOperator> PermutedOp<A> {
    /// Conjugate `inner` by an explicit permutation `perm`
    /// (`perm[i]` = original index at permuted position `i`).
    ///
    /// # Panics
    ///
    /// Panics if `perm` is not a permutation of `0..inner.len()`.
    pub fn new(inner: A, perm: Vec<usize>) -> Self {
        let n = inner.len();
        assert_eq!(perm.len(), n, "permutation length mismatch");
        let mut inv = vec![usize::MAX; n];
        for (i, &pi) in perm.iter().enumerate() {
            assert!(pi < n, "permutation entry {pi} out of range");
            assert_eq!(inv[pi], usize::MAX, "duplicate permutation entry {pi}");
            inv[pi] = i;
        }
        PermutedOp { inner, perm, inv }
    }

    /// Conjugate by the binary-reflected Gray code: permuted position `i`
    /// holds the sequence `gray(i)`, so neighbouring positions differ by
    /// exactly one mutation.
    ///
    /// # Panics
    ///
    /// Panics if `inner.len()` is not a power of two.
    pub fn gray(inner: A) -> Self {
        let n = inner.len();
        assert!(n.is_power_of_two(), "Gray ordering requires a 2^ν space");
        let perm: Vec<usize> = (0..n).map(|i| qs_bitseq::gray(i as u64) as usize).collect();
        Self::new(inner, perm)
    }

    /// Relabel a vector from original into permuted order.
    pub fn to_permuted(&self, x: &[f64]) -> Vec<f64> {
        assert_eq!(x.len(), self.perm.len(), "length mismatch");
        self.perm.iter().map(|&pi| x[pi]).collect()
    }

    /// Relabel a vector from permuted back into original order.
    pub fn to_original(&self, x: &[f64]) -> Vec<f64> {
        assert_eq!(x.len(), self.inv.len(), "length mismatch");
        self.inv.iter().map(|&ii| x[ii]).collect()
    }

    /// Borrow the wrapped operator.
    pub fn inner(&self) -> &A {
        &self.inner
    }
}

impl<A: LinearOperator> LinearOperator for PermutedOp<A> {
    fn len(&self) -> usize {
        self.inner.len()
    }

    fn apply_into(&self, x: &[f64], y: &mut [f64]) {
        assert_eq!(x.len(), self.len(), "apply_into: x length mismatch");
        assert_eq!(y.len(), self.len(), "apply_into: y length mismatch");
        // y = P A Pᵀ x: un-permute, apply, re-permute.
        let orig = self.to_original(x);
        let a_orig = self.inner.apply(&orig);
        for (yi, &pi) in y.iter_mut().zip(&self.perm) {
            *yi = a_orig[pi];
        }
    }

    fn flops_estimate(&self) -> f64 {
        self.inner.flops_estimate() + 2.0 * self.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fmmp::Fmmp;
    use crate::test_util::{max_diff, random_vector};
    use qs_mutation::{MutationModel, Uniform};

    #[test]
    fn conjugation_preserves_the_product() {
        let nu = 6u32;
        let p = 0.07;
        let op = PermutedOp::gray(Fmmp::new(nu, p));
        let x = random_vector(1 << nu, 3);
        // (P A Pᵀ)(P x) == P (A x).
        let px = op.to_permuted(&x);
        let lhs = op.apply(&px);
        let ax = Fmmp::new(nu, p).apply(&x);
        let rhs = op.to_permuted(&ax);
        assert!(max_diff(&lhs, &rhs) < 1e-14);
    }

    #[test]
    fn relabelling_round_trip() {
        let op = PermutedOp::gray(Fmmp::new(5, 0.1));
        let x = random_vector(32, 9);
        let there = op.to_permuted(&x);
        let back = op.to_original(&there);
        assert_eq!(x, back);
    }

    #[test]
    fn gray_ordered_q_has_constant_first_off_diagonal() {
        // Paper footnote 2: under the Gray permutation the first
        // off-diagonals of Q are constant (= QΓ_1).
        let nu = 6u32;
        let p = 0.04;
        let q = Uniform::new(nu, p);
        let expected = q.class_value(1);
        for i in 0..(1u64 << nu) - 1 {
            let a = qs_bitseq::gray(i);
            let b = qs_bitseq::gray(i + 1);
            assert!(
                (q.entry(a, b) - expected).abs() < 1e-16,
                "off-diagonal at {i} is not QΓ_1"
            );
        }
    }

    #[test]
    fn eigenvalues_are_invariant_under_permutation() {
        // Power-iterate the permuted operator: same λ₀, permuted vector.
        let nu = 5u32;
        let p = 0.2; // wide spectral gap (λ₁ = 1−2p) so 100 steps converge fully
        let op = PermutedOp::gray(Fmmp::new(nu, p));
        let mut v = vec![1.0; 1 << nu];
        v[3] = 2.0; // break exact symmetry
        for _ in 0..100 {
            op.apply_in_place(&mut v);
            let norm = qs_linalg::norm_l2(&v);
            for x in &mut v {
                *x /= norm;
            }
        }
        // Q's dominant eigenvalue is 1 with the uniform eigenvector —
        // in any ordering.
        let qv = op.apply(&v);
        for (a, b) in qv.iter().zip(&v) {
            assert!((a - b).abs() < 1e-10);
        }
    }

    #[test]
    #[should_panic(expected = "duplicate permutation entry")]
    fn rejects_non_permutation() {
        let _ = PermutedOp::new(Fmmp::new(2, 0.1), vec![0, 1, 1, 3]);
    }
}
