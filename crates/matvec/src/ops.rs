//! Operator composition: the three eigenproblem formulations of paper
//! Eqs. 3–5 and spectral shifts.
//!
//! With `F = diag(f)` positive, the quasispecies eigenproblem can be posed
//! as any of
//!
//! ```text
//! (R)  Q·F·x_R = λ·x_R          (concentrations live in x_R)
//! (S)  F^½·Q·F^½·x_S = λ·x_S    (symmetric — Lanczos-friendly)
//! (L)  F·Q·x_L = λ·x_L
//! ```
//!
//! whose solutions convert by diagonal scalings
//! `x_R = F^{-½}·x_S`, `x_S = F^{-½}·x_L`, `x_R = F^{-1}·x_L`.
//! [`WOperator`] wraps any `Q` engine into any formulation by sandwiching
//! diagonal passes around it; [`ShiftedOp`] subtracts `µ·I` (paper
//! Section 3's convergence acceleration); [`conservative_shift`] computes
//! the paper's provably safe shift `µ = (1−2p)^ν·f_min`.

use crate::{time_stage, LinearOperator, Probe};
use qs_landscape::Landscape;

/// Which of the three equivalent eigenproblem formulations (paper
/// Eqs. 3–5) an operator or eigenvector refers to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Formulation {
    /// `W = Q·F` (Eq. 3). The eigenvector holds relative concentrations.
    #[default]
    Right,
    /// `W = F^½·Q·F^½` (Eq. 4). Symmetric whenever `Q` is.
    Symmetric,
    /// `W = F·Q` (Eq. 5).
    Left,
}

impl Formulation {
    /// Exponent `e` such that `x_this = F^{e}·x_S` relative to the
    /// symmetric formulation.
    fn exponent(self) -> f64 {
        match self {
            Formulation::Right => -0.5,
            Formulation::Symmetric => 0.0,
            Formulation::Left => 0.5,
        }
    }
}

/// Convert an eigenvector between formulations:
/// `x_to = F^{e_to − e_from}·x_from` (elementwise powers of the fitness
/// diagonal).
///
/// # Panics
///
/// Panics if the lengths differ.
pub fn convert_eigenvector(
    from: Formulation,
    to: Formulation,
    x: &[f64],
    fitness: &[f64],
) -> Vec<f64> {
    assert_eq!(
        x.len(),
        fitness.len(),
        "convert_eigenvector: length mismatch"
    );
    let e = to.exponent() - from.exponent();
    if e == 0.0 {
        return x.to_vec();
    }
    x.iter()
        .zip(fitness)
        .map(|(&xi, &fi)| xi * fi.powf(e))
        .collect()
}

/// A diagonal operator `diag(d)`.
#[derive(Debug, Clone)]
pub struct DiagOp {
    d: Vec<f64>,
}

impl DiagOp {
    /// Wrap a diagonal.
    ///
    /// # Panics
    ///
    /// Panics on an empty diagonal.
    pub fn new(d: Vec<f64>) -> Self {
        assert!(!d.is_empty(), "diagonal must be non-empty");
        DiagOp { d }
    }

    /// Borrow the diagonal values.
    pub fn diagonal(&self) -> &[f64] {
        &self.d
    }
}

impl LinearOperator for DiagOp {
    fn len(&self) -> usize {
        self.d.len()
    }

    fn apply_into(&self, x: &[f64], y: &mut [f64]) {
        assert_eq!(x.len(), self.len(), "apply_into: x length mismatch");
        assert_eq!(y.len(), self.len(), "apply_into: y length mismatch");
        for ((yi, &xi), &di) in y.iter_mut().zip(x).zip(&self.d) {
            *yi = di * xi;
        }
    }

    fn apply_in_place(&self, v: &mut [f64]) {
        qs_linalg::vec_ops::apply_diagonal(&self.d, v);
    }

    fn flops_estimate(&self) -> f64 {
        self.len() as f64
    }

    fn apply_batch(&self, slab: &mut [f64]) {
        let n = self.len();
        assert!(
            !slab.is_empty() && slab.len() % n == 0,
            "apply_batch: slab must hold a whole number of vectors"
        );
        for v in slab.chunks_exact_mut(n) {
            qs_linalg::vec_ops::apply_diagonal(&self.d, v);
        }
    }
}

/// The quasispecies operator `W` in a chosen formulation, built from any
/// `Q` engine and a fitness landscape.
#[derive(Debug, Clone)]
pub struct WOperator<Q> {
    q: Q,
    fitness: Vec<f64>,
    sqrt_fitness: Vec<f64>,
    form: Formulation,
}

impl<Q: LinearOperator> WOperator<Q> {
    /// Compose `W` from a `Q` engine and a materialised fitness diagonal.
    ///
    /// # Panics
    ///
    /// Panics if the fitness length differs from the operator dimension or
    /// any fitness value is not positive finite.
    pub fn new(q: Q, fitness: Vec<f64>, form: Formulation) -> Self {
        assert_eq!(fitness.len(), q.len(), "fitness length mismatch");
        assert!(
            fitness.iter().all(|f| f.is_finite() && *f > 0.0),
            "fitness values must be positive"
        );
        let sqrt_fitness = fitness.iter().map(|f| f.sqrt()).collect();
        WOperator {
            q,
            fitness,
            sqrt_fitness,
            form,
        }
    }

    /// Compose from a [`Landscape`] (materialises its diagonal).
    ///
    /// # Panics
    ///
    /// Panics if the landscape dimension differs from the `Q` engine's.
    pub fn from_landscape<L: Landscape + ?Sized>(q: Q, landscape: &L, form: Formulation) -> Self {
        Self::new(q, landscape.materialize(), form)
    }

    /// The formulation this operator realises.
    pub fn formulation(&self) -> Formulation {
        self.form
    }

    /// Borrow the fitness diagonal.
    pub fn fitness(&self) -> &[f64] {
        &self.fitness
    }

    /// Borrow the wrapped `Q` engine.
    pub fn q(&self) -> &Q {
        &self.q
    }
}

impl<Q: LinearOperator> LinearOperator for WOperator<Q> {
    fn len(&self) -> usize {
        self.q.len()
    }

    fn apply_into(&self, x: &[f64], y: &mut [f64]) {
        assert_eq!(x.len(), self.len(), "apply_into: x length mismatch");
        assert_eq!(y.len(), self.len(), "apply_into: y length mismatch");
        y.copy_from_slice(x);
        self.apply_in_place(y);
    }

    fn apply_in_place(&self, v: &mut [f64]) {
        assert_eq!(v.len(), self.len(), "apply_in_place: length mismatch");
        match self.form {
            Formulation::Right => {
                qs_linalg::vec_ops::apply_diagonal(&self.fitness, v);
                self.q.apply_in_place(v);
            }
            Formulation::Symmetric => {
                qs_linalg::vec_ops::apply_diagonal(&self.sqrt_fitness, v);
                self.q.apply_in_place(v);
                qs_linalg::vec_ops::apply_diagonal(&self.sqrt_fitness, v);
            }
            Formulation::Left => {
                self.q.apply_in_place(v);
                qs_linalg::vec_ops::apply_diagonal(&self.fitness, v);
            }
        }
    }

    fn flops_estimate(&self) -> f64 {
        self.q.flops_estimate() + 2.0 * self.len() as f64
    }

    fn apply_batch(&self, slab: &mut [f64]) {
        let n = self.len();
        assert!(
            !slab.is_empty() && slab.len() % n == 0,
            "apply_batch: slab must hold a whole number of vectors"
        );
        // Diagonal passes are embarrassingly per-column; the inner `Q`
        // engine's batched path does the stage-traversal amortisation.
        match self.form {
            Formulation::Right => {
                for v in slab.chunks_exact_mut(n) {
                    qs_linalg::vec_ops::apply_diagonal(&self.fitness, v);
                }
                self.q.apply_batch(slab);
            }
            Formulation::Symmetric => {
                for v in slab.chunks_exact_mut(n) {
                    qs_linalg::vec_ops::apply_diagonal(&self.sqrt_fitness, v);
                }
                self.q.apply_batch(slab);
                for v in slab.chunks_exact_mut(n) {
                    qs_linalg::vec_ops::apply_diagonal(&self.sqrt_fitness, v);
                }
            }
            Formulation::Left => {
                self.q.apply_batch(slab);
                for v in slab.chunks_exact_mut(n) {
                    qs_linalg::vec_ops::apply_diagonal(&self.fitness, v);
                }
            }
        }
    }

    fn apply_into_probed(&self, x: &[f64], y: &mut [f64], probe: &mut dyn Probe) {
        assert_eq!(x.len(), self.len(), "apply_into: x length mismatch");
        assert_eq!(y.len(), self.len(), "apply_into: y length mismatch");
        y.copy_from_slice(x);
        self.apply_in_place_probed(y, probe);
    }

    fn apply_in_place_probed(&self, v: &mut [f64], probe: &mut dyn Probe) {
        if !probe.enabled() {
            return self.apply_in_place(v);
        }
        assert_eq!(v.len(), self.len(), "apply_in_place: length mismatch");
        match self.form {
            Formulation::Right => {
                time_stage(probe, "diag", || {
                    qs_linalg::vec_ops::apply_diagonal(&self.fitness, v)
                });
                self.q.apply_in_place_probed(v, probe);
            }
            Formulation::Symmetric => {
                time_stage(probe, "diag", || {
                    qs_linalg::vec_ops::apply_diagonal(&self.sqrt_fitness, v)
                });
                self.q.apply_in_place_probed(v, probe);
                time_stage(probe, "diag", || {
                    qs_linalg::vec_ops::apply_diagonal(&self.sqrt_fitness, v)
                });
            }
            Formulation::Left => {
                self.q.apply_in_place_probed(v, probe);
                time_stage(probe, "diag", || {
                    qs_linalg::vec_ops::apply_diagonal(&self.fitness, v)
                });
            }
        }
    }
}

/// A spectrally shifted operator `A − µI`.
#[derive(Debug, Clone)]
pub struct ShiftedOp<A> {
    inner: A,
    mu: f64,
}

impl<A: LinearOperator> ShiftedOp<A> {
    /// Shift `inner` by `µ`.
    ///
    /// # Panics
    ///
    /// Panics if `µ` is not finite.
    pub fn new(inner: A, mu: f64) -> Self {
        assert!(mu.is_finite(), "shift must be finite");
        ShiftedOp { inner, mu }
    }

    /// The shift `µ`.
    pub fn mu(&self) -> f64 {
        self.mu
    }

    /// Borrow the unshifted operator.
    pub fn inner(&self) -> &A {
        &self.inner
    }
}

impl<A: LinearOperator> LinearOperator for ShiftedOp<A> {
    fn len(&self) -> usize {
        self.inner.len()
    }

    fn apply_into(&self, x: &[f64], y: &mut [f64]) {
        self.inner.apply_into(x, y);
        for (yi, &xi) in y.iter_mut().zip(x) {
            *yi -= self.mu * xi;
        }
    }

    fn flops_estimate(&self) -> f64 {
        self.inner.flops_estimate() + 2.0 * self.len() as f64
    }

    fn apply_batch(&self, slab: &mut [f64]) {
        let n = self.len();
        assert!(
            !slab.is_empty() && slab.len() % n == 0,
            "apply_batch: slab must hold a whole number of vectors"
        );
        let snapshot = slab.to_vec();
        self.inner.apply_batch(slab);
        for (yi, &xi) in slab.iter_mut().zip(&snapshot) {
            *yi -= self.mu * xi;
        }
    }

    fn apply_into_probed(&self, x: &[f64], y: &mut [f64], probe: &mut dyn Probe) {
        self.inner.apply_into_probed(x, y, probe);
        for (yi, &xi) in y.iter_mut().zip(x) {
            *yi -= self.mu * xi;
        }
    }
}

/// The paper's conservative, always-safe spectral shift
/// `µ = (1−2p)^ν · f_min` (Section 3): a lower bound on `λ_{N−1}(W)`
/// derived from `‖W^{-1}‖₁ ≤ f_min^{-1}·(1−2p)^{-ν}`, so `λ₀ − µ` remains
/// the dominant eigenvalue of `W − µI` and the shifted power iteration
/// still converges to the quasispecies.
///
/// # Panics
///
/// Panics unless `0 < p ≤ 1/2` and `f_min > 0`.
pub fn conservative_shift(nu: u32, p: f64, f_min: f64) -> f64 {
    assert!(p > 0.0 && p <= 0.5, "error rate must satisfy 0 < p ≤ 1/2");
    assert!(f_min > 0.0, "f_min must be positive");
    (1.0 - 2.0 * p).powi(nu as i32) * f_min
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fmmp::Fmmp;
    use crate::smvp::Smvp;
    use crate::test_util::{max_diff, random_vector};
    use qs_landscape::{Landscape, Random};
    use qs_linalg::DenseMatrix;
    use qs_mutation::{MutationModel, Uniform};

    fn dense_w(nu: u32, p: f64, f: &[f64], form: Formulation) -> DenseMatrix {
        let q = Uniform::new(nu, p).dense();
        let fd = DenseMatrix::diagonal(f);
        match form {
            Formulation::Right => q.matmul(&fd),
            Formulation::Left => fd.matmul(&q),
            Formulation::Symmetric => {
                let sq: Vec<f64> = f.iter().map(|x| x.sqrt()).collect();
                let sd = DenseMatrix::diagonal(&sq);
                sd.matmul(&q).matmul(&sd)
            }
        }
    }

    #[test]
    fn all_formulations_match_dense() {
        let (nu, p) = (6u32, 0.04);
        let landscape = Random::new(nu, 5.0, 1.0, 3);
        let f = landscape.materialize();
        let x = random_vector(1 << nu, 12);
        for form in [
            Formulation::Right,
            Formulation::Symmetric,
            Formulation::Left,
        ] {
            let w = WOperator::new(Fmmp::new(nu, p), f.clone(), form);
            let want = dense_w(nu, p, &f, form).matvec(&x);
            assert!(max_diff(&want, &w.apply(&x)) < 1e-12, "{form:?}");
        }
    }

    #[test]
    fn formulations_share_their_spectrum() {
        // All three W's have the same dominant eigenvalue.
        let (nu, p) = (5u32, 0.06);
        let f: Vec<f64> = (0..32).map(|i| 1.0 + (i % 7) as f64 / 3.0).collect();
        let mut lambdas = Vec::new();
        for form in [
            Formulation::Right,
            Formulation::Symmetric,
            Formulation::Left,
        ] {
            let dense = dense_w(nu, p, &f, form);
            let eig =
                qs_linalg::dominant_eigenpair(Smvp::new(dense).matrix(), None, 1e-13, 200_000);
            lambdas.push(eig.value);
        }
        assert!((lambdas[0] - lambdas[1]).abs() < 1e-9);
        assert!((lambdas[1] - lambdas[2]).abs() < 1e-9);
    }

    #[test]
    fn eigenvector_conversion_round_trip() {
        let f: Vec<f64> = (0..16).map(|i| 1.0 + i as f64 / 5.0).collect();
        let x = random_vector(16, 9);
        for from in [
            Formulation::Right,
            Formulation::Symmetric,
            Formulation::Left,
        ] {
            for to in [
                Formulation::Right,
                Formulation::Symmetric,
                Formulation::Left,
            ] {
                let there = convert_eigenvector(from, to, &x, &f);
                let back = convert_eigenvector(to, from, &there, &f);
                assert!(max_diff(&x, &back) < 1e-12, "{from:?} → {to:?}");
            }
        }
    }

    #[test]
    fn conversion_maps_eigenvectors_between_formulations() {
        // Solve S-form densely, convert to R-form, check it is an
        // eigenvector of Q·F.
        let (nu, p) = (4u32, 0.09);
        let f: Vec<f64> = (0..16).map(|i| 1.5 + ((i * 13) % 5) as f64 / 2.0).collect();
        let ws = dense_w(nu, p, &f, Formulation::Symmetric);
        let eig = qs_linalg::jacobi_eigen(&ws);
        let xs: Vec<f64> = (0..16).map(|i| eig.vectors[(i, 0)]).collect();
        let xr = convert_eigenvector(Formulation::Symmetric, Formulation::Right, &xs, &f);
        let wr = dense_w(nu, p, &f, Formulation::Right);
        let wx = wr.matvec(&xr);
        for (a, b) in wx.iter().zip(&xr) {
            assert!((a - eig.values[0] * b).abs() < 1e-10);
        }
    }

    #[test]
    fn shifted_operator_subtracts_mu() {
        let (nu, p, mu) = (5u32, 0.03, 0.7);
        let base = Fmmp::new(nu, p);
        let shifted = ShiftedOp::new(base, mu);
        let x = random_vector(32, 2);
        let qx = base.apply(&x);
        let sx = shifted.apply(&x);
        for ((s, q), xi) in sx.iter().zip(&qx).zip(&x) {
            assert!((s - (q - mu * xi)).abs() < 1e-14);
        }
        assert_eq!(shifted.mu(), mu);
    }

    #[test]
    fn conservative_shift_is_below_lambda_min() {
        // µ = (1−2p)^ν f_min must not exceed the true smallest eigenvalue
        // of W (checked densely on the symmetric form).
        let (nu, p) = (5u32, 0.07);
        let landscape = Random::new(nu, 5.0, 1.0, 77);
        let f = landscape.materialize();
        let mu = conservative_shift(nu, p, landscape.f_min());
        let eig = qs_linalg::jacobi_eigen(&dense_w(nu, p, &f, Formulation::Symmetric));
        let lam_min = *eig.values.last().unwrap();
        assert!(mu <= lam_min + 1e-12, "shift {mu} exceeds λ_min {lam_min}");
        assert!(mu > 0.0);
    }

    #[test]
    fn diag_op_behaviour() {
        let d = DiagOp::new(vec![2.0, 3.0]);
        assert_eq!(d.apply(&[1.0, 1.0]), vec![2.0, 3.0]);
        let mut v = vec![4.0, 5.0];
        d.apply_in_place(&mut v);
        assert_eq!(v, vec![8.0, 15.0]);
    }

    #[test]
    fn probed_w_operator_matches_plain_and_times_diag_passes() {
        use qs_telemetry::{NullProbe, RecordingProbe, SolverEvent};
        let (nu, p) = (8u32, 0.02);
        let landscape = Random::new(nu, 5.0, 1.0, 9);
        let f = landscape.materialize();
        for (form, diag_passes) in [
            (Formulation::Right, 1usize),
            (Formulation::Symmetric, 2),
            (Formulation::Left, 1),
        ] {
            let w = WOperator::new(Fmmp::new(nu, p), f.clone(), form);
            let x = random_vector(1 << nu, 31);
            let plain = w.apply(&x);

            let mut rec = RecordingProbe::new();
            let mut probed = vec![0.0; 1 << nu];
            w.apply_into_probed(&x, &mut probed, &mut rec);
            assert_eq!(plain, probed, "{form:?}: probed diverges");
            let diags = rec
                .events()
                .iter()
                .filter(|e| matches!(e, SolverEvent::MatvecTimed { stage: "diag", .. }))
                .count();
            assert_eq!(diags, diag_passes, "{form:?}");
            // The inner Fmmp reports its butterfly stages too.
            let fmmp_stages = rec
                .events()
                .iter()
                .filter(|e| {
                    matches!(
                        e,
                        SolverEvent::MatvecTimed {
                            stage: "fmmp-stage",
                            ..
                        }
                    )
                })
                .count();
            assert_eq!(fmmp_stages, nu as usize, "{form:?}");

            let mut silent = vec![0.0; 1 << nu];
            w.apply_into_probed(&x, &mut silent, &mut NullProbe);
            assert_eq!(plain, silent, "{form:?}: disabled probe perturbs result");
        }
    }

    #[test]
    fn composed_apply_batch_equals_independent_applies() {
        // ShiftedOp(WOperator(Fmmp)) batched over k columns must equal k
        // independent in-place applies, in every formulation.
        let (nu, p, mu, k) = (7u32, 0.05, 0.3, 4usize);
        let n = 1usize << nu;
        let landscape = Random::new(nu, 5.0, 1.0, 41);
        let f = landscape.materialize();
        for form in [
            Formulation::Right,
            Formulation::Symmetric,
            Formulation::Left,
        ] {
            let op = ShiftedOp::new(WOperator::new(Fmmp::fused(nu, p), f.clone(), form), mu);
            let mut slab = random_vector(n * k, 77);
            let mut want = slab.clone();
            for (l, col) in want.chunks_exact_mut(n).enumerate() {
                op.apply_in_place(col);
                let _ = l;
            }
            op.apply_batch(&mut slab);
            assert!(max_diff(&want, &slab) < 1e-12, "{form:?}");
        }
    }

    #[test]
    fn diag_op_apply_batch_scales_every_column() {
        let d = DiagOp::new(vec![2.0, -1.0]);
        let mut slab = vec![1.0, 1.0, 3.0, 4.0, 0.5, -2.0];
        d.apply_batch(&mut slab);
        assert_eq!(slab, vec![2.0, -1.0, 6.0, -4.0, 1.0, 2.0]);
    }

    #[test]
    #[should_panic(expected = "fitness values must be positive")]
    fn rejects_nonpositive_fitness() {
        let _ = WOperator::new(
            Fmmp::new(2, 0.1),
            vec![1.0, -1.0, 1.0, 1.0],
            Formulation::Right,
        );
    }
}
