//! The XOR-based implicit (sparsified) product `Xmvp(d_max)` — the paper's
//! baseline, reproduced from its prior work \[10\].
//!
//! For the uniform model every entry of `Q` depends only on the Hamming
//! distance: `Q_{i,j} = QΓ_{d_H(i,j)}`, and `j = i ⊕ m` ranges over the
//! Hamming ball of radius `d_max` as `m` ranges over all masks of popcount
//! `≤ d_max`. Hence
//!
//! ```text
//! (Q·v)_i ≈ Σ_{k=0}^{d_max} QΓ_k · Σ_{w(m)=k} v[i ⊕ m],
//! ```
//!
//! costing `Θ(N · Σ_{k≤d_max} C(ν,k))` time and `Θ(N)` space. With
//! `d_max = ν` the product is **exact** and corresponds to `Smvp` up to a
//! small constant factor (paper Section 1.2); with `d_max < ν` it is the
//! approximative scheme whose accuracy/cost trade-off Figure 3 benchmarks
//! (`d_max = 5` ≈ 10⁻¹⁰ error, `d_max = 1` the coarsest possible).

use crate::LinearOperator;
use qs_bitseq::SeqSpace;
use qs_mutation::Uniform;

/// The `Xmvp(d_max)` engine as a [`LinearOperator`] for (an approximation
/// of) `Q(ν)`.
#[derive(Debug, Clone)]
pub struct Xmvp {
    nu: u32,
    d_max: u32,
    /// `QΓ_k` for `k = 0..=d_max`.
    class_values: Vec<f64>,
    /// Masks grouped by popcount `k = 0..=d_max`.
    masks: Vec<Vec<u64>>,
}

impl Xmvp {
    /// Create `Xmvp(d_max)` for the uniform model with error rate `p`.
    ///
    /// # Panics
    ///
    /// Panics if `d_max > ν`, if `ν` is out of range, or if the mask table
    /// would exceed memory (`Σ C(ν,k)` entries are materialised — for
    /// `d_max = ν` that is `N` masks, the `Θ(N)` space cost of \[10\]).
    pub fn new(nu: u32, p: f64, d_max: u32) -> Self {
        let q = Uniform::new(nu, p);
        assert!(d_max <= nu, "d_max must not exceed the chain length");
        let space = SeqSpace::new(nu);
        let class_values = (0..=d_max).map(|k| q.class_value(k)).collect();
        let masks = space.mask_table(d_max);
        Xmvp {
            nu,
            d_max,
            class_values,
            masks,
        }
    }

    /// The exact variant `Xmvp(ν)` (the paper's stand-in for `Smvp`).
    pub fn exact(nu: u32, p: f64) -> Self {
        Self::new(nu, p, nu)
    }

    /// Sparsification radius `d_max`.
    pub fn d_max(&self) -> u32 {
        self.d_max
    }

    /// Is this instance exact (`d_max = ν`)?
    pub fn is_exact(&self) -> bool {
        self.d_max == self.nu
    }

    /// Number of neighbours visited per component:
    /// `Σ_{k=0}^{d_max} C(ν,k)`.
    pub fn neighbours_per_row(&self) -> usize {
        self.masks.iter().map(Vec::len).sum()
    }
}

impl LinearOperator for Xmvp {
    fn len(&self) -> usize {
        1usize << self.nu
    }

    fn apply_into(&self, x: &[f64], y: &mut [f64]) {
        assert_eq!(x.len(), self.len(), "apply_into: x length mismatch");
        assert_eq!(y.len(), self.len(), "apply_into: y length mismatch");
        for (i, yi) in y.iter_mut().enumerate() {
            let i = i as u64;
            let mut total = 0.0;
            // Hoist the per-class factor out of the neighbour loop, as in
            // [10]: inner sums are plain adds, one multiply per class.
            for (qk, masks) in self.class_values.iter().zip(&self.masks) {
                let mut class_sum = 0.0;
                for &m in masks {
                    class_sum += x[(i ^ m) as usize];
                }
                total += qk * class_sum;
            }
            *yi = total;
        }
    }

    fn flops_estimate(&self) -> f64 {
        self.len() as f64 * self.neighbours_per_row() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fmmp::fmmp_in_place;
    use crate::test_util::{max_diff, random_vector};
    use qs_mutation::MutationModel;

    #[test]
    fn exact_variant_matches_dense() {
        for nu in 2..=7u32 {
            let p = 0.08;
            let q = Uniform::new(nu, p).dense();
            let x = random_vector(1 << nu, nu as u64);
            let want = q.matvec(&x);
            let got = Xmvp::exact(nu, p).apply(&x);
            assert!(max_diff(&want, &got) < 1e-13, "ν={nu}");
        }
    }

    #[test]
    fn exact_variant_matches_fmmp() {
        let (nu, p) = (10u32, 0.01);
        let x = random_vector(1 << nu, 42);
        let xm = Xmvp::exact(nu, p).apply(&x);
        let mut fm = x;
        fmmp_in_place(&mut fm, p);
        assert!(max_diff(&xm, &fm) < 1e-12);
    }

    #[test]
    fn truncation_error_decreases_with_d_max() {
        let (nu, p) = (10u32, 0.01);
        let x = random_vector(1 << nu, 4);
        let exact = Xmvp::exact(nu, p).apply(&x);
        let mut prev_err = f64::INFINITY;
        for d_max in [1u32, 3, 5, 7] {
            let approx = Xmvp::new(nu, p, d_max).apply(&x);
            let err = max_diff(&exact, &approx);
            assert!(err < prev_err, "error must shrink with d_max");
            prev_err = err;
        }
        // The paper quotes ~1e-10 accuracy for d_max = 5 at small p.
        let approx5 = Xmvp::new(nu, p, 5).apply(&x);
        assert!(max_diff(&exact, &approx5) < 1e-8);
    }

    #[test]
    fn d_max_one_visits_nu_plus_one_neighbours() {
        let xm = Xmvp::new(12, 0.02, 1);
        assert_eq!(xm.neighbours_per_row(), 13);
        assert!(!xm.is_exact());
    }

    #[test]
    fn exact_visits_all_n() {
        let xm = Xmvp::exact(8, 0.1);
        assert_eq!(xm.neighbours_per_row(), 256);
        assert!(xm.is_exact());
    }

    #[test]
    fn flops_reflect_quadratic_cost_when_exact() {
        let xm = Xmvp::exact(8, 0.1);
        assert_eq!(xm.flops_estimate(), (256 * 256) as f64);
    }

    #[test]
    fn truncated_product_loses_mass() {
        // Truncation drops probability mass: 1ᵀ(Q̃v) < 1ᵀv for positive v.
        let (nu, p) = (8u32, 0.2);
        let v = vec![1.0; 1 << nu];
        let approx = Xmvp::new(nu, p, 2).apply(&v);
        let kept: f64 = qs_linalg::sum(&approx) / (1 << nu) as f64;
        assert!(kept < 1.0);
        assert!(kept > 0.0);
    }

    #[test]
    #[should_panic(expected = "d_max must not exceed")]
    fn rejects_d_max_above_nu() {
        let _ = Xmvp::new(4, 0.1, 5);
    }
}
