//! Persistent-pool, chunk-stealing span schedule for the parallel
//! butterfly transforms.
//!
//! The previous parallel backend issued one `rayon` fork–join per radix
//! pass. At small ν that join overhead dominates — BENCH_matvec.json
//! showed the 2-thread staged path regressing 4.5 → 20.5 ns/element at
//! ν = 14 — and even at large ν every pass pays a full pool wake-up and
//! barrier. This module replaces that with a single scoped pool per apply
//! and a claim-counter stealing schedule inside it:
//!
//! 1. **One scope, all passes.** The caller enters `rayon::in_place_scope`
//!    once; `workers − 1` helper tasks are spawned and the calling thread
//!    works inline as worker 0. Every pass of the plan runs inside that
//!    one scope — no per-pass join.
//! 2. **Thread-affine spans with stealing.** Each pass is cut into
//!    equal-size independent *units* (see [`LayoutKind`]). Worker `w` owns
//!    the contiguous unit range `[w·U/W, (w+1)·U/W)` and drains it through
//!    a per-worker atomic claim cursor, so on every pass the same worker
//!    touches the same region of the vector first (cache- and
//!    first-touch-affine). Only after its own range is empty does it
//!    advance round-robin through the other workers' cursors and steal
//!    their leftover units — imbalance from preemption never idles a
//!    worker, and the common balanced case costs one uncontended
//!    `fetch_add` per unit.
//! 3. **Pass barrier by completion count.** A unit's executor bumps the
//!    pass's completion counter with `Release`; workers spin (then yield)
//!    on an `Acquire` load until the counter reaches the unit count
//!    before entering the next pass. The inline worker can always finish
//!    a pass alone, so the schedule is deadlock-free even if no helper
//!    ever runs.
//! 4. **Serial below threshold.** [`span_workers`] returns ≤ 1 unless
//!    every worker would get at least [`MIN_WORKER_SPAN`] elements;
//!    callers then take the plain serial path. This is the measured fix
//!    for the ν ≤ 14 regression: a transform that fits in L2 cannot
//!    amortise any cross-thread coordination.
//!
//! **Safety.** Units within a pass address pairwise-disjoint element
//! ranges (contiguous chunks, or disjoint segments of disjoint fibres),
//! so handing each claimed unit a `&mut [f64]` reconstructed from a raw
//! base pointer is sound; the `Release`/`Acquire` completion counter
//! orders all of a pass's writes before any next-pass read. Unit
//! execution calls the same `radix*_stage` / `radix*_lanes` kernels as
//! the serial path on the same element groupings, so bit-identity with
//! the staged reference is preserved structurally.

#![allow(unsafe_code)]

use std::sync::atomic::{AtomicUsize, Ordering};

use crate::fused::{
    radix2_lanes, radix2_stage, radix4_lanes, radix4_stage, radix8_lanes, radix8_stage,
    radix_ladder, Butterfly, FusedPass,
};

/// Hard cap on cooperating workers; bounds the stack-resident claim
/// matrix.
pub const MAX_WORKERS: usize = 16;

/// Hard cap on passes per schedule: ν ≤ 64 staged passes on 64-bit
/// lengths, and fused plans are far shorter.
pub const MAX_PASSES: usize = 64;

/// Target elements per claimable unit (2¹⁴ doubles = 128 KiB): big enough
/// that one claim `fetch_add` is noise against the memory traffic, small
/// enough to leave several units per worker for stealing.
pub const SPAN_UNIT: usize = 1 << 14;

/// Minimum elements of span per worker for the pool to pay for itself
/// (measured: below this the fork/claim overhead exceeds the kernel
/// time). `n >> 15` therefore also sets the serial/parallel threshold:
/// parallel execution engages from ν = 16 with 2 threads.
pub const MIN_WORKER_SPAN: usize = 1 << 15;

/// Hardware threads actually available to this process (cgroup-aware),
/// cached once. A span schedule's per-pass barriers make oversubscription
/// strictly lossy: two workers time-slicing one core serialise the same
/// memory traffic *plus* a context switch per barrier, so the worker
/// count must never exceed what the machine can run simultaneously.
fn hardware_parallelism() -> usize {
    use std::sync::OnceLock;
    static HW: OnceLock<usize> = OnceLock::new();
    *HW.get_or_init(|| std::thread::available_parallelism().map_or(1, |n| n.get()))
}

/// How many workers a span of `n` elements can productively use: capped
/// by the rayon pool width, the machine's hardware parallelism,
/// [`MAX_WORKERS`], and one worker per [`MIN_WORKER_SPAN`] elements.
/// `0` or `1` means "run serial".
pub fn span_workers(n: usize) -> usize {
    (n / MIN_WORKER_SPAN)
        .min(MAX_WORKERS)
        .min(rayon::current_num_threads())
        .min(hardware_parallelism())
}

/// One memory pass of a span schedule.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SpanPass {
    /// A cache-tiled pass: every aligned `tile`-element chunk absorbs all
    /// stage strides `base .. tile/2` locally (see
    /// [`FusedPass::Tile`]).
    Tile {
        /// Tile size in elements.
        tile: usize,
        /// Smallest stage stride.
        base: usize,
    },
    /// A radix-fused global pass over blocks of `radix · stride`
    /// elements (`radix` ∈ {2, 4, 8} covering 1–3 stages).
    Radix {
        /// Smallest stride of the fused stage group.
        stride: usize,
        /// Block radix: 2, 4 or 8.
        radix: usize,
    },
}

/// How a pass's independent work units map onto the vector.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LayoutKind {
    /// Unit `u` is the contiguous chunk
    /// `[u · unit_elems, (u+1) · unit_elems)`; `unit_elems` is a multiple
    /// of the pass's block (or tile) size, so chunks never split a block.
    Contig {
        /// Elements per unit.
        unit_elems: usize,
    },
    /// For radix passes with too few blocks to feed every worker: each
    /// block's fibres are cut into `segs` equal segments and unit `u`
    /// covers segment `u % segs` of every fibre of block `u / segs`.
    /// Fibre kernels are elementwise, so segmenting is exact.
    FibreSeg {
        /// Segments per fibre.
        segs: usize,
    },
}

/// One planned pass plus its unit decomposition.
#[derive(Debug, Clone, Copy)]
struct PassLayout {
    pass: SpanPass,
    kind: LayoutKind,
    units: usize,
}

const NO_PASS: PassLayout = PassLayout {
    pass: SpanPass::Radix {
        stride: 0,
        radix: 2,
    },
    kind: LayoutKind::Contig { unit_elems: 0 },
    units: 0,
};

/// A complete multi-pass schedule: `Copy`, fixed-size, heap-free — built
/// per apply on the stack like [`crate::fused::FusedPlan`].
#[derive(Debug, Clone, Copy)]
pub struct SpanSchedule {
    passes: [PassLayout; MAX_PASSES],
    count: usize,
    n: usize,
    workers: usize,
}

impl SpanSchedule {
    /// Schedule the fused pass list `passes` (from a
    /// [`crate::fused::FusedPlan`] over a length-`n` vector with base
    /// stride 1) across `workers` cooperating threads.
    pub fn for_fused(n: usize, workers: usize, passes: &[FusedPass]) -> Self {
        Self::for_fused_with(n, workers, passes, SPAN_UNIT)
    }

    /// As [`SpanSchedule::for_fused`] with an explicit unit-size target —
    /// exercised by tests (and Miri) at small `n` where the production
    /// [`SPAN_UNIT`] would collapse everything into one unit.
    pub(crate) fn for_fused_with(
        n: usize,
        workers: usize,
        passes: &[FusedPass],
        unit_target: usize,
    ) -> Self {
        assert!(n.is_power_of_two() && unit_target.is_power_of_two());
        assert!(passes.len() <= MAX_PASSES);
        let workers = workers.clamp(1, MAX_WORKERS);
        let mut out = [NO_PASS; MAX_PASSES];
        let mut count = 0;
        for &pass in passes {
            let sp = match pass {
                FusedPass::Tile { tile, base } => SpanPass::Tile { tile, base },
                FusedPass::Radix8 { stride } => SpanPass::Radix { stride, radix: 8 },
                FusedPass::Radix4 { stride } => SpanPass::Radix { stride, radix: 4 },
                FusedPass::Radix2 { stride } => SpanPass::Radix { stride, radix: 2 },
            };
            out[count] = layout_pass(n, workers, sp, unit_target);
            count += 1;
        }
        SpanSchedule {
            passes: out,
            count,
            n,
            workers,
        }
    }

    /// Schedule the plain staged ladder (one radix-2 pass per stage,
    /// strides `1, 2, …, n/2`) — the parallel twin of
    /// [`crate::fmmp::fmmp_in_place`]'s stage loop, kept un-fused so the
    /// `fmmp_parallel_ref` bench series stays an honest baseline.
    pub fn for_staged(n: usize, workers: usize) -> Self {
        Self::for_staged_with(n, workers, SPAN_UNIT)
    }

    /// As [`SpanSchedule::for_staged`] with an explicit unit-size target
    /// for tests.
    pub(crate) fn for_staged_with(n: usize, workers: usize, unit_target: usize) -> Self {
        assert!(n.is_power_of_two() && n >= 2 && unit_target.is_power_of_two());
        let nu = n.trailing_zeros() as usize;
        assert!(nu <= MAX_PASSES);
        let workers = workers.clamp(1, MAX_WORKERS);
        let mut out = [NO_PASS; MAX_PASSES];
        for (s, slot) in out.iter_mut().take(nu).enumerate() {
            *slot = layout_pass(
                n,
                workers,
                SpanPass::Radix {
                    stride: 1 << s,
                    radix: 2,
                },
                unit_target,
            );
        }
        SpanSchedule {
            passes: out,
            count: nu,
            n,
            workers,
        }
    }

    /// One-pass schedule for a single radix-2 stage at `stride` — used by
    /// the probed staged path, which times every stage individually and so
    /// cannot batch all passes into one scope.
    pub fn for_stage(n: usize, workers: usize, stride: usize) -> Self {
        assert!(n.is_power_of_two() && stride.is_power_of_two() && 2 * stride <= n);
        let workers = workers.clamp(1, MAX_WORKERS);
        let mut out = [NO_PASS; MAX_PASSES];
        out[0] = layout_pass(n, workers, SpanPass::Radix { stride, radix: 2 }, SPAN_UNIT);
        SpanSchedule {
            passes: out,
            count: 1,
            n,
            workers,
        }
    }

    /// Cooperating worker count this schedule was built for.
    pub fn workers(&self) -> usize {
        self.workers
    }

    /// Number of planned passes.
    pub fn passes_len(&self) -> usize {
        self.count
    }

    /// Total claimable units across all passes — the grain count the
    /// stealing scheduler distributes (reported in the `kernel_dispatch`
    /// telemetry event).
    pub fn total_units(&self) -> usize {
        self.passes[..self.count].iter().map(|p| p.units).sum()
    }
}

/// Decompose one pass into equal independent units (see [`LayoutKind`]).
fn layout_pass(n: usize, workers: usize, pass: SpanPass, unit_target: usize) -> PassLayout {
    // The smallest contiguous chunk that never splits a block.
    let grain = match pass {
        SpanPass::Tile { tile, .. } => tile,
        SpanPass::Radix { stride, radix } => radix * stride,
    };
    debug_assert!(grain.is_power_of_two() && grain <= n && n % grain == 0);
    // Contiguous units: start from the target size, shrink (never below
    // one block) until there are at least two units per worker to steal.
    let mut unit = grain.max(unit_target).min(n);
    while unit > grain && n / unit < 2 * workers {
        unit /= 2;
    }
    if n / unit >= 2 * workers || matches!(pass, SpanPass::Tile { .. }) {
        return PassLayout {
            pass,
            kind: LayoutKind::Contig { unit_elems: unit },
            units: n / unit,
        };
    }
    // Too few blocks (late big-stride radix passes). Split fibres into
    // segments instead; segment kernels are the same elementwise fibre
    // kernels, so this stays exact.
    if let SpanPass::Radix { stride, radix } = pass {
        let block = radix * stride;
        let nblocks = n / block;
        // Halt once a further split would push the per-unit *work*
        // (`radix` fibres × `stride / segs` elements) below half the unit
        // target — that is the steal-granularity floor, not the raw
        // stride, which a big-radix pass can exceed even when each fibre
        // segment is still long enough to keep the lane kernels busy.
        let mut segs = 1;
        while nblocks * segs < 2 * workers
            && 2 * segs <= stride
            && block / (2 * segs) >= unit_target.max(2) / 2
        {
            segs *= 2;
        }
        if segs > 1 {
            return PassLayout {
                pass,
                kind: LayoutKind::FibreSeg { segs },
                units: nblocks * segs,
            };
        }
    }
    PassLayout {
        pass,
        kind: LayoutKind::Contig { unit_elems: grain },
        units: n / grain,
    }
}

/// The vector shared across workers. Units are pairwise disjoint per pass
/// and passes are separated by the completion barrier, so concurrent
/// mutable access through the raw pointer never aliases.
struct SharedSpan {
    ptr: *mut f64,
    len: usize,
}

// SAFETY: see `SharedSpan` — disjoint units + pass barrier.
unsafe impl Send for SharedSpan {}
unsafe impl Sync for SharedSpan {}

/// Execute one claimed unit.
///
/// # Safety
///
/// `u` must be `< layout.units` for a schedule built over the vector
/// `shared` points at, and no other thread may hold the same unit.
unsafe fn run_unit<B: Butterfly>(shared: &SharedSpan, layout: &PassLayout, u: usize, bf: B) {
    match layout.kind {
        LayoutKind::Contig { unit_elems } => {
            debug_assert!((u + 1) * unit_elems <= shared.len);
            let v = std::slice::from_raw_parts_mut(shared.ptr.add(u * unit_elems), unit_elems);
            match layout.pass {
                SpanPass::Tile { tile, base } => {
                    for chunk in v.chunks_exact_mut(tile) {
                        radix_ladder(chunk, base, tile / 2, bf);
                    }
                }
                SpanPass::Radix { stride, radix } => match radix {
                    8 => radix8_stage(v, stride, bf),
                    4 => radix4_stage(v, stride, bf),
                    _ => radix2_stage(v, stride, bf),
                },
            }
        }
        LayoutKind::FibreSeg { segs } => {
            let (stride, radix) = match layout.pass {
                SpanPass::Radix { stride, radix } => (stride, radix),
                SpanPass::Tile { .. } => unreachable!("tiled passes are always Contig"),
            };
            let seg_len = stride / segs;
            let block_start = (u / segs) * (radix * stride);
            let seg_off = (u % segs) * seg_len;
            debug_assert!(block_start + (radix - 1) * stride + seg_off + seg_len <= shared.len);
            // SAFETY: fibre j of block b spans
            // [b·radix·stride + j·stride, …+stride); distinct (b, j,
            // segment) triples are disjoint.
            let fibre = |j: usize| {
                std::slice::from_raw_parts_mut(
                    shared.ptr.add(block_start + j * stride + seg_off),
                    seg_len,
                )
            };
            match radix {
                8 => radix8_lanes(
                    fibre(0),
                    fibre(1),
                    fibre(2),
                    fibre(3),
                    fibre(4),
                    fibre(5),
                    fibre(6),
                    fibre(7),
                    bf,
                ),
                4 => radix4_lanes(fibre(0), fibre(1), fibre(2), fibre(3), bf),
                _ => radix2_lanes(fibre(0), fibre(1), bf),
            }
        }
    }
}

/// Claim matrix + completion counters for one apply. Stack-resident
/// (`MAX_PASSES × (MAX_WORKERS + 1)` words) so the hot path allocates
/// nothing.
struct ClaimState {
    claims: [[AtomicUsize; MAX_WORKERS]; MAX_PASSES],
    done: [AtomicUsize; MAX_PASSES],
}

impl ClaimState {
    fn new() -> Self {
        #[allow(clippy::declare_interior_mutable_const)]
        const Z: AtomicUsize = AtomicUsize::new(0);
        const ROW: [AtomicUsize; MAX_WORKERS] = [Z; MAX_WORKERS];
        ClaimState {
            claims: [ROW; MAX_PASSES],
            done: [Z; MAX_PASSES],
        }
    }
}

/// The contiguous unit range worker `w` owns (first-touch affinity: the
/// same worker claims the same vector region on every pass).
fn worker_range(units: usize, workers: usize, w: usize) -> (usize, usize) {
    let start = units * w / workers;
    let end = units * (w + 1) / workers;
    (start, end - start)
}

/// One worker's traversal of every pass: drain the own range, steal
/// round-robin, then spin-wait on the pass completion barrier.
fn worker_loop<B: Butterfly>(
    shared: &SharedSpan,
    sched: &SpanSchedule,
    state: &ClaimState,
    w: usize,
    bf: B,
) {
    let workers = sched.workers;
    for k in 0..sched.count {
        let layout = &sched.passes[k];
        for off in 0..workers {
            let victim = (w + off) % workers;
            let (start, len) = worker_range(layout.units, workers, victim);
            loop {
                let idx = state.claims[k][victim].fetch_add(1, Ordering::Relaxed);
                if idx >= len {
                    break;
                }
                // SAFETY: the fetch_add hands out each unit index exactly
                // once; units within a pass are disjoint (see `run_unit`).
                unsafe { run_unit(shared, layout, start + idx, bf) };
                state.done[k].fetch_add(1, Ordering::Release);
            }
        }
        // Barrier: every unit's writes must be visible before any worker
        // reads them in pass k+1. The inline worker can complete the pass
        // alone, so this wait always terminates.
        // Brief spin for the common case (peers are mid-unit and finish in
        // nanoseconds), then yield every iteration: a waiting worker must
        // hand its core to whoever still owns units, or an oversubscribed
        // pool (more workers than cores) serialises the pass behind the
        // scheduler quantum.
        let mut spins = 0u32;
        while state.done[k].load(Ordering::Acquire) < layout.units {
            if spins < 64 {
                spins += 1;
                std::hint::spin_loop();
            } else {
                std::thread::yield_now();
            }
        }
    }
}

/// Run every pass of `sched` over `v` with one scoped pool: the calling
/// thread works inline as worker 0 and `workers − 1` helpers are spawned
/// into the ambient rayon pool. With `workers ≤ 1` this degrades to the
/// plain serial pass loop (no atomics, no scope).
pub fn run_schedule<B: Butterfly>(v: &mut [f64], sched: &SpanSchedule, bf: B) {
    assert_eq!(
        v.len(),
        sched.n,
        "schedule was built for a different length"
    );
    if sched.workers <= 1 {
        run_serial(v, sched, bf);
        return;
    }
    let state = ClaimState::new();
    let shared = SharedSpan {
        ptr: v.as_mut_ptr(),
        len: v.len(),
    };
    rayon::in_place_scope(|scope| {
        for w in 1..sched.workers {
            let shared = &shared;
            let state = &state;
            scope.spawn(move |_| worker_loop(shared, sched, state, w, bf));
        }
        worker_loop(&shared, sched, &state, 0, bf);
    });
}

/// Serial execution of a schedule: the same passes on the whole vector,
/// no unit decomposition needed (bit-identical — units only partition the
/// element groups the kernels already use).
fn run_serial<B: Butterfly>(v: &mut [f64], sched: &SpanSchedule, bf: B) {
    for layout in &sched.passes[..sched.count] {
        match layout.pass {
            SpanPass::Tile { tile, base } => {
                for chunk in v.chunks_exact_mut(tile) {
                    radix_ladder(chunk, base, tile / 2, bf);
                }
            }
            SpanPass::Radix { stride, radix } => match radix {
                8 => radix8_stage(v, stride, bf),
                4 => radix4_stage(v, stride, bf),
                _ => radix2_stage(v, stride, bf),
            },
        }
    }
}

/// As [`run_schedule`] but with helpers on plain `std` scoped threads —
/// used by tests (and the Miri CI job) to drive the claim/steal/barrier
/// machinery deterministically without a rayon pool in the loop.
#[cfg(test)]
fn run_schedule_std_threads<B: Butterfly>(v: &mut [f64], sched: &SpanSchedule, bf: B) {
    if sched.workers <= 1 {
        run_serial(v, sched, bf);
        return;
    }
    let state = ClaimState::new();
    let shared = SharedSpan {
        ptr: v.as_mut_ptr(),
        len: v.len(),
    };
    std::thread::scope(|scope| {
        for w in 1..sched.workers {
            let shared = &shared;
            let state = &state;
            let sched = &*sched;
            scope.spawn(move || worker_loop(shared, sched, state, w, bf));
        }
        worker_loop(&shared, sched, &state, 0, bf);
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fmmp::fmmp_in_place;
    use crate::fused::{FusedPlan, HadamardButterfly, MixButterfly};

    /// Small sizes under Miri, full sweep natively.
    fn test_nus() -> std::ops::RangeInclusive<u32> {
        if cfg!(miri) {
            1..=9
        } else {
            1..=16
        }
    }

    fn probe(n: usize, seed: u64) -> Vec<f64> {
        let mut state = seed.wrapping_mul(0x9E3779B97F4A7C15).max(1);
        (0..n)
            .map(|_| {
                state = state.wrapping_add(0x9E3779B97F4A7C15);
                let mut z = state;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
                z ^= z >> 31;
                (z as f64 / u64::MAX as f64) * 4.0 - 2.0
            })
            .collect()
    }

    #[test]
    fn span_workers_is_serial_below_the_threshold() {
        assert_eq!(span_workers(1 << 14), 0);
        assert_eq!(span_workers((1 << 15) - 1), 0);
        assert!(span_workers(1 << 15) <= 1);
        assert!(span_workers(1 << 24) <= MAX_WORKERS);
    }

    #[test]
    fn every_pass_decomposes_the_whole_vector() {
        for nu in 4..=20u32 {
            let n = 1usize << nu;
            for workers in [1usize, 2, 3, 4, 8] {
                let plan = FusedPlan::new(n, 1);
                let sched = SpanSchedule::for_fused(n, workers, plan.passes());
                for layout in &sched.passes[..sched.count] {
                    match layout.kind {
                        LayoutKind::Contig { unit_elems } => {
                            assert_eq!(layout.units * unit_elems, n, "ν={nu} w={workers}");
                        }
                        LayoutKind::FibreSeg { segs } => {
                            let (stride, radix) = match layout.pass {
                                SpanPass::Radix { stride, radix } => (stride, radix),
                                _ => panic!("tile pass with fibre layout"),
                            };
                            assert_eq!(stride % segs, 0);
                            assert_eq!(layout.units * radix * (stride / segs), n);
                        }
                    }
                }
            }
        }
    }

    #[test]
    fn multi_worker_schedules_have_stealable_grain() {
        // At production sizes every multi-worker pass should expose at
        // least `workers` units (big radix passes via fibre segmentation).
        for nu in [16u32, 18, 20] {
            let n = 1usize << nu;
            let workers = 4;
            let plan = FusedPlan::new(n, 1);
            let sched = SpanSchedule::for_fused(n, workers, plan.passes());
            for layout in &sched.passes[..sched.count] {
                assert!(
                    layout.units >= workers,
                    "ν={nu}: pass {:?} has only {} units",
                    layout.pass,
                    layout.units
                );
            }
        }
    }

    #[test]
    fn stolen_schedule_is_bit_identical_to_reference_fused() {
        let p = 0.017;
        for nu in test_nus() {
            let n = 1usize << nu;
            let v = probe(n, 40 + u64::from(nu));
            let mut want = v.clone();
            fmmp_in_place(&mut want, p);
            // A tiny unit target forces real multi-unit stealing even at
            // Miri-sized vectors.
            for workers in [1usize, 2, 3, 4] {
                let plan = FusedPlan::new(n, 1);
                let sched = SpanSchedule::for_fused_with(n, workers, plan.passes(), 64);
                let mut got = v.clone();
                run_schedule_std_threads(&mut got, &sched, MixButterfly::new(p));
                let bits = |s: &[f64]| s.iter().map(|x| x.to_bits()).collect::<Vec<_>>();
                assert_eq!(bits(&want), bits(&got), "ν={nu} workers={workers}");
            }
        }
    }

    #[test]
    fn staged_schedule_matches_reference_per_stage_path() {
        for nu in test_nus() {
            let n = 1usize << nu;
            let v = probe(n, 900 + u64::from(nu));
            let mut want = v.clone();
            crate::fwht::fwht_in_place(&mut want);
            for workers in [1usize, 2, 4] {
                let sched = SpanSchedule::for_staged_with(n, workers, 64);
                assert_eq!(sched.passes_len(), nu as usize);
                let mut got = v.clone();
                run_schedule_std_threads(&mut got, &sched, HadamardButterfly);
                let bits = |s: &[f64]| s.iter().map(|x| x.to_bits()).collect::<Vec<_>>();
                assert_eq!(bits(&want), bits(&got), "ν={nu} workers={workers}");
            }
        }
    }

    #[test]
    fn rayon_schedule_matches_reference() {
        // Not under Miri: rayon's pool machinery is out of scope there;
        // the std-thread twin above covers the unsafe core.
        if cfg!(miri) {
            return;
        }
        let p = 0.031;
        for nu in [10u32, 14, 16] {
            let n = 1usize << nu;
            let v = probe(n, 7 + u64::from(nu));
            let mut want = v.clone();
            fmmp_in_place(&mut want, p);
            let plan = FusedPlan::new(n, 1);
            let sched = SpanSchedule::for_fused_with(n, 4, plan.passes(), 256);
            let mut got = v.clone();
            run_schedule(&mut got, &sched, MixButterfly::new(p));
            let bits = |s: &[f64]| s.iter().map(|x| x.to_bits()).collect::<Vec<_>>();
            assert_eq!(bits(&want), bits(&got), "ν={nu}");
        }
    }

    #[test]
    fn worker_ranges_partition_units() {
        for units in [0usize, 1, 3, 7, 16, 33] {
            for workers in 1..=8usize {
                let mut covered = 0;
                for w in 0..workers {
                    let (start, len) = worker_range(units, workers, w);
                    assert_eq!(start, covered);
                    covered += len;
                }
                assert_eq!(covered, units);
            }
        }
    }
}
