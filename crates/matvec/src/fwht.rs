//! The fast Walsh–Hadamard transform.
//!
//! `V(ν) = 2^{-ν/2}·H_ν` is the eigenvector matrix of the uniform mutation
//! matrix (paper Section 2): `Q = V Λ V`. The FWHT evaluates `H_ν·v` with
//! `Θ(N log₂ N)` additions/subtractions in place; it is structurally the
//! `p → "±1"` limit of the Fmmp butterfly, and the building block of the
//! shift-and-invert product of paper Section 3.

use crate::LinearOperator;

/// In-place unnormalised FWHT: `v ← H_ν·v` (natural / Hadamard ordering,
/// matching the Kronecker convention `H_ν = ⊗ [[1,1],[1,−1]]`).
///
/// Applying it twice scales by `N`: `H·H = N·I`.
///
/// # Panics
///
/// Panics if `v.len()` is not a power of two ≥ 2.
pub fn fwht_in_place(v: &mut [f64]) {
    let n = v.len();
    assert!(n.is_power_of_two() && n >= 2, "length must be 2^ν, ν ≥ 1");
    let mut i = 1;
    while i <= n / 2 {
        let mut j = 0;
        while j < n {
            let (a, b) = v[j..j + 2 * i].split_at_mut(i);
            for (x, y) in a.iter_mut().zip(b.iter_mut()) {
                let (u, w) = (*x + *y, *x - *y);
                *x = u;
                *y = w;
            }
            j += 2 * i;
        }
        i *= 2;
    }
}

/// In-place normalised transform `v ← V(ν)·v = 2^{-ν/2}·H_ν·v`.
/// `V` is orthogonal and symmetric, so applying it twice is the identity.
///
/// # Panics
///
/// Panics if `v.len()` is not a power of two ≥ 2.
pub fn fwht_normalized_in_place(v: &mut [f64]) {
    let n = v.len();
    fwht_in_place(v);
    let scale = 1.0 / (n as f64).sqrt();
    for x in v {
        *x *= scale;
    }
}

/// The normalised FWHT (`V(ν)`) as a [`LinearOperator`].
#[derive(Debug, Clone, Copy)]
pub struct Fwht {
    nu: u32,
}

impl Fwht {
    /// The operator `V(ν)`.
    ///
    /// # Panics
    ///
    /// Panics if `nu` is 0 or exceeds the supported chain length.
    pub fn new(nu: u32) -> Self {
        assert!(nu >= 1, "chain length must be at least 1");
        let _ = qs_bitseq::dimension(nu);
        Fwht { nu }
    }
}

impl LinearOperator for Fwht {
    fn len(&self) -> usize {
        1usize << self.nu
    }

    fn apply_into(&self, x: &[f64], y: &mut [f64]) {
        assert_eq!(x.len(), self.len(), "apply_into: x length mismatch");
        assert_eq!(y.len(), self.len(), "apply_into: y length mismatch");
        y.copy_from_slice(x);
        fwht_normalized_in_place(y);
    }

    fn apply_in_place(&self, v: &mut [f64]) {
        assert_eq!(v.len(), self.len(), "apply_in_place: length mismatch");
        fwht_normalized_in_place(v);
    }

    fn flops_estimate(&self) -> f64 {
        let n = self.len() as f64;
        n * self.nu as f64 + n
    }

    fn apply_batch(&self, slab: &mut [f64]) {
        let n = self.len();
        assert!(
            !slab.is_empty() && slab.len() % n == 0,
            "apply_batch: slab must hold a whole number of vectors"
        );
        crate::fused::fwht_batch_in_place(slab, slab.len() / n);
        let scale = 1.0 / (n as f64).sqrt();
        for x in slab.iter_mut() {
            *x *= scale;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_util::{max_diff, random_vector};
    use qs_mutation::spectrum::eigenvector_matrix;

    #[test]
    fn matches_dense_hadamard() {
        for nu in 1..=7u32 {
            let n = 1usize << nu;
            let x = random_vector(n, nu as u64);
            let v = eigenvector_matrix(nu); // 2^{-ν/2} H
            let want = v.matvec(&x);
            let mut got = x.clone();
            fwht_normalized_in_place(&mut got);
            assert!(max_diff(&want, &got) < 1e-12, "ν={nu}");
        }
    }

    #[test]
    fn involution_of_normalized_transform() {
        let x = random_vector(1 << 10, 77);
        let mut v = x.clone();
        fwht_normalized_in_place(&mut v);
        fwht_normalized_in_place(&mut v);
        assert!(max_diff(&x, &v) < 1e-12);
    }

    #[test]
    fn unnormalised_double_application_scales_by_n() {
        let n = 1usize << 6;
        let x = random_vector(n, 5);
        let mut v = x.clone();
        fwht_in_place(&mut v);
        fwht_in_place(&mut v);
        for (a, b) in v.iter().zip(&x) {
            assert!((a - n as f64 * b).abs() < 1e-11);
        }
    }

    #[test]
    fn parseval() {
        // Orthogonality: ‖Vx‖₂ = ‖x‖₂.
        let x = random_vector(1 << 9, 8);
        let before = qs_linalg::norm_l2(&x);
        let mut v = x;
        fwht_normalized_in_place(&mut v);
        let after = qs_linalg::norm_l2(&v);
        assert!((before - after).abs() < 1e-12);
    }

    #[test]
    fn delta_transforms_to_constant_row() {
        // H·e₀ = all-ones.
        let mut v = vec![0.0; 16];
        v[0] = 1.0;
        fwht_in_place(&mut v);
        assert!(v.iter().all(|&x| (x - 1.0).abs() < 1e-15));
    }

    #[test]
    fn walsh_spectrum_of_single_bit_function() {
        // H·e_k yields ±1 pattern (−1)^{popcount(k & j)}.
        let k = 0b101usize;
        let mut v = vec![0.0; 8];
        v[k] = 1.0;
        fwht_in_place(&mut v);
        for (j, &x) in v.iter().enumerate() {
            // `% 2 == 0` rather than `is_multiple_of` — the latter needs
            // Rust 1.87 and the workspace MSRV is 1.85.
            let sign = if (k & j).count_ones() % 2 == 0 {
                1.0
            } else {
                -1.0
            };
            assert!((x - sign).abs() < 1e-15);
        }
    }

    #[test]
    fn operator_wrapper_consistency() {
        let op = Fwht::new(5);
        let x = random_vector(32, 3);
        let y = op.apply(&x);
        let mut z = x;
        op.apply_in_place(&mut z);
        assert!(max_diff(&y, &z) < 1e-16);
    }

    #[test]
    fn apply_batch_equals_independent_applies() {
        let op = Fwht::new(6);
        let k = 7usize;
        let mut slab = random_vector(64 * k, 17);
        let mut want = slab.clone();
        for col in want.chunks_exact_mut(64) {
            op.apply_in_place(col);
        }
        op.apply_batch(&mut slab);
        assert!(max_diff(&want, &slab) <= 1e-12);
    }
}
