//! Fused multi-stage butterfly kernels and batched (multi-vector) apply.
//!
//! The reference transforms ([`crate::fmmp::fmmp_in_place`],
//! [`crate::fwht::fwht_in_place`]) sweep the whole vector once per stage:
//! `log₂ N` full passes of `N` doubles each. On anything larger than the
//! last-level cache the product is memory-bandwidth bound (paper Section 4),
//! so the stage loop — not the arithmetic — is the cost. This module cuts
//! the number of full-vector sweeps two ways:
//!
//! 1. **Radix-4 / radix-8 fusion.** Two (three) consecutive stages at
//!    strides `i` and `2i` (`and 4i`) touch exactly the same blocks of
//!    `4i` (`8i`) elements, so they can be executed in one pass: load four
//!    (eight) strided fibres, apply both (all three) butterfly layers in
//!    registers, store once. The arithmetic per element is *identical* to
//!    the reference — same expressions, same order — so the result is
//!    bit-for-bit equal and `flops_estimate` is unchanged; only the memory
//!    traffic drops.
//! 2. **Cache tiling.** Every stage with stride `< T/2` is local to
//!    aligned tiles of `T` elements (blocks of `2i ≤ T` never straddle a
//!    tile boundary when `T` is a power of two). All those stages run
//!    back-to-back on each tile while it is cache-resident — one sweep for
//!    the first `log₂ T` stages — and only the remaining
//!    `log₂ N − log₂ T` large-stride stages need (radix-fused) global
//!    passes.
//!
//! Together a ν = 20 product needs 3–4 sweeps instead of 20.
//!
//! Both the mutation butterfly `(q·a + p·b, p·a + q·b)` and the Hadamard
//! butterfly `(a + b, a − b)` share the stage structure, so the kernels are
//! generic over a [`Butterfly`]. The same machinery serves the **batched**
//! product: the slab keeps its natural column-major layout (`k` contiguous
//! vectors) and the planned passes run **column-blocked** — every column's
//! copy of a cache tile is transformed before the schedule advances to the
//! next tile — so the per-column cost matches the single-vector fused path
//! and no interleaved scratch slab (or its two transposition sweeps) is
//! ever materialised.
//!
//! All inner butterflies are **register-blocked**: the fibre loops walk
//! `chunks_exact` lanes of fixed width (8 for radix-2, 4 for radix-4/8),
//! which LLVM fully unrolls and autovectorizes without any `unsafe`.
//! Butterflies that expose their 2×2 coefficient matrix via
//! [`Butterfly::coeffs`] additionally dispatch to the explicit SIMD fibre
//! kernels in [`crate::simd`] (AVX2/AVX-512, resolved once at runtime);
//! the scalar `chunks_exact` path remains the portable fallback and the
//! reference. Neither the lane grouping nor the SIMD kernels change the
//! per-element expressions or their evaluation order, so bit-identity
//! with the staged reference holds throughout.

use crate::{time_stage, Probe};

/// Tile size (in `f64` elements) for the cache-blocked phase: 2¹³ doubles
/// = 64 KiB, small enough to sit in L1/L2 on current hardware while each
/// tile absorbs 13 butterfly stages in one sweep.
pub const FUSED_TILE: usize = 1 << 13;

/// A 2-point butterfly kernel shared by the mutation and Hadamard
/// transforms.
pub trait Butterfly: Copy + Send + Sync {
    /// Apply the butterfly to one pair.
    fn bf(self, a: f64, b: f64) -> (f64, f64);

    /// The butterfly as a 2×2 coefficient matrix `[c₀₀, c₀₁, c₁₀, c₁₁]`
    /// such that `bf(a, b)` equals **bit for bit** the expression pair
    /// `(c₀₀·a + c₀₁·b, c₁₀·a + c₁₁·b)` — separate multiplies and adds in
    /// that order, no FMA. Butterflies that return `Some` opt in to the
    /// runtime-dispatched SIMD fibre kernels in [`crate::simd`]; the
    /// default `None` keeps the portable register-blocked scalar path.
    #[inline]
    fn coeffs(self) -> Option<[f64; 4]> {
        None
    }
}

/// The mutation butterfly `(a, b) ← (q·a + p·b, p·a + q·b)` with
/// `q = 1 − p` — identical arithmetic to the reference
/// [`crate::fmmp::fmmp_in_place`] stage kernel.
#[derive(Debug, Clone, Copy)]
pub struct MixButterfly {
    p: f64,
    q: f64,
}

impl MixButterfly {
    /// Butterfly for error rate `p`.
    pub fn new(p: f64) -> Self {
        MixButterfly { p, q: 1.0 - p }
    }
}

impl Butterfly for MixButterfly {
    #[inline(always)]
    fn bf(self, a: f64, b: f64) -> (f64, f64) {
        (self.q * a + self.p * b, self.p * a + self.q * b)
    }

    #[inline(always)]
    fn coeffs(self) -> Option<[f64; 4]> {
        Some([self.q, self.p, self.p, self.q])
    }
}

/// The (unnormalised) Hadamard butterfly `(a, b) ← (a + b, a − b)` —
/// identical arithmetic to [`crate::fwht::fwht_in_place`].
#[derive(Debug, Clone, Copy)]
pub struct HadamardButterfly;

impl Butterfly for HadamardButterfly {
    #[inline(always)]
    fn bf(self, a: f64, b: f64) -> (f64, f64) {
        (a + b, a - b)
    }

    #[inline(always)]
    fn coeffs(self) -> Option<[f64; 4]> {
        // 1·a + 1·b and 1·a + (−1)·b are bit-identical to a + b and a − b:
        // multiplying by ±1.0 only (possibly) flips the sign bit, and IEEE
        // subtraction is addition of the negation.
        Some([1.0, 1.0, 1.0, -1.0])
    }
}

/// Lane width for the radix-2 fibre loop: 8 doubles = one 64-byte cache
/// line, a trip count LLVM fully unrolls into vector registers.
const LANES_R2: usize = 8;

/// Lane width for the radix-4/8 fibre loops: 4 doubles per fibre keeps the
/// live values (16/32 doubles across fibres) within the register file.
const LANES_R48: usize = 4;

/// Radix-2 butterflies across two equal-length fibres. Coefficient-form
/// butterflies ([`Butterfly::coeffs`]) dispatch to the runtime-selected
/// SIMD kernel in [`crate::simd`]; otherwise the bulk runs register-blocked
/// in `chunks_exact` lanes of `LANES_R2` elements (a fixed trip count
/// LLVM unrolls and autovectorizes), the tail falls back to scalars. Per
/// element the expression is exactly the reference kernel's on every path.
#[inline]
pub fn radix2_lanes<B: Butterfly>(f0: &mut [f64], f1: &mut [f64], bf: B) {
    debug_assert_eq!(f0.len(), f1.len());
    if let Some(c) = bf.coeffs() {
        if crate::simd::radix2_simd(f0, f1, c) {
            return;
        }
    }
    let mut c0 = f0.chunks_exact_mut(LANES_R2);
    let mut c1 = f1.chunks_exact_mut(LANES_R2);
    for (l0, l1) in c0.by_ref().zip(c1.by_ref()) {
        for (x, y) in l0.iter_mut().zip(l1.iter_mut()) {
            let (u, w) = bf.bf(*x, *y);
            *x = u;
            *y = w;
        }
    }
    for (x, y) in c0
        .into_remainder()
        .iter_mut()
        .zip(c1.into_remainder().iter_mut())
    {
        let (u, w) = bf.bf(*x, *y);
        *x = u;
        *y = w;
    }
}

/// Two fused butterfly layers (strides `i`, `2i`) across four equal-length
/// fibres: SIMD-dispatched for coefficient-form butterflies, otherwise
/// register-blocked in `LANES_R48`-wide lanes. Bit-for-bit identical to
/// two [`radix2_lanes`] layers.
#[inline]
pub fn radix4_lanes<B: Butterfly>(
    f0: &mut [f64],
    f1: &mut [f64],
    f2: &mut [f64],
    f3: &mut [f64],
    bf: B,
) {
    if let Some(c) = bf.coeffs() {
        if crate::simd::radix4_simd([&mut *f0, &mut *f1, &mut *f2, &mut *f3], c) {
            return;
        }
    }
    #[inline(always)]
    fn kernel<B: Butterfly>(x0: &mut f64, x1: &mut f64, x2: &mut f64, x3: &mut f64, bf: B) {
        // Stage i: pairs (x0,x1), (x2,x3).
        let (a0, a1) = bf.bf(*x0, *x1);
        let (a2, a3) = bf.bf(*x2, *x3);
        // Stage 2i: pairs (a0,a2), (a1,a3).
        let (b0, b2) = bf.bf(a0, a2);
        let (b1, b3) = bf.bf(a1, a3);
        *x0 = b0;
        *x1 = b1;
        *x2 = b2;
        *x3 = b3;
    }
    debug_assert!(f0.len() == f1.len() && f1.len() == f2.len() && f2.len() == f3.len());
    let mut c0 = f0.chunks_exact_mut(LANES_R48);
    let mut c1 = f1.chunks_exact_mut(LANES_R48);
    let mut c2 = f2.chunks_exact_mut(LANES_R48);
    let mut c3 = f3.chunks_exact_mut(LANES_R48);
    for (((l0, l1), l2), l3) in c0
        .by_ref()
        .zip(c1.by_ref())
        .zip(c2.by_ref())
        .zip(c3.by_ref())
    {
        for (((x0, x1), x2), x3) in l0
            .iter_mut()
            .zip(l1.iter_mut())
            .zip(l2.iter_mut())
            .zip(l3.iter_mut())
        {
            kernel(x0, x1, x2, x3, bf);
        }
    }
    for (((x0, x1), x2), x3) in c0
        .into_remainder()
        .iter_mut()
        .zip(c1.into_remainder().iter_mut())
        .zip(c2.into_remainder().iter_mut())
        .zip(c3.into_remainder().iter_mut())
    {
        kernel(x0, x1, x2, x3, bf);
    }
}

/// Three fused butterfly layers (strides `i`, `2i`, `4i`) across eight
/// equal-length fibres: SIMD-dispatched for coefficient-form butterflies,
/// otherwise register-blocked in `LANES_R48`-wide lanes. Bit-for-bit
/// identical to three [`radix2_lanes`] layers.
#[inline]
#[allow(clippy::too_many_arguments)]
pub fn radix8_lanes<B: Butterfly>(
    f0: &mut [f64],
    f1: &mut [f64],
    f2: &mut [f64],
    f3: &mut [f64],
    f4: &mut [f64],
    f5: &mut [f64],
    f6: &mut [f64],
    f7: &mut [f64],
    bf: B,
) {
    if let Some(c) = bf.coeffs() {
        if crate::simd::radix8_simd(
            [
                &mut *f0, &mut *f1, &mut *f2, &mut *f3, &mut *f4, &mut *f5, &mut *f6, &mut *f7,
            ],
            c,
        ) {
            return;
        }
    }
    #[inline(always)]
    #[allow(clippy::too_many_arguments)]
    fn kernel<B: Butterfly>(
        x0: &mut f64,
        x1: &mut f64,
        x2: &mut f64,
        x3: &mut f64,
        x4: &mut f64,
        x5: &mut f64,
        x6: &mut f64,
        x7: &mut f64,
        bf: B,
    ) {
        // Stage i.
        let (a0, a1) = bf.bf(*x0, *x1);
        let (a2, a3) = bf.bf(*x2, *x3);
        let (a4, a5) = bf.bf(*x4, *x5);
        let (a6, a7) = bf.bf(*x6, *x7);
        // Stage 2i.
        let (b0, b2) = bf.bf(a0, a2);
        let (b1, b3) = bf.bf(a1, a3);
        let (b4, b6) = bf.bf(a4, a6);
        let (b5, b7) = bf.bf(a5, a7);
        // Stage 4i.
        let (c0, c4) = bf.bf(b0, b4);
        let (c1, c5) = bf.bf(b1, b5);
        let (c2, c6) = bf.bf(b2, b6);
        let (c3, c7) = bf.bf(b3, b7);
        *x0 = c0;
        *x1 = c1;
        *x2 = c2;
        *x3 = c3;
        *x4 = c4;
        *x5 = c5;
        *x6 = c6;
        *x7 = c7;
    }
    debug_assert!(f0.len() == f7.len() && f0.len() == f3.len());
    let mut c0 = f0.chunks_exact_mut(LANES_R48);
    let mut c1 = f1.chunks_exact_mut(LANES_R48);
    let mut c2 = f2.chunks_exact_mut(LANES_R48);
    let mut c3 = f3.chunks_exact_mut(LANES_R48);
    let mut c4 = f4.chunks_exact_mut(LANES_R48);
    let mut c5 = f5.chunks_exact_mut(LANES_R48);
    let mut c6 = f6.chunks_exact_mut(LANES_R48);
    let mut c7 = f7.chunks_exact_mut(LANES_R48);
    for (((((((l0, l1), l2), l3), l4), l5), l6), l7) in c0
        .by_ref()
        .zip(c1.by_ref())
        .zip(c2.by_ref())
        .zip(c3.by_ref())
        .zip(c4.by_ref())
        .zip(c5.by_ref())
        .zip(c6.by_ref())
        .zip(c7.by_ref())
    {
        for (((((((x0, x1), x2), x3), x4), x5), x6), x7) in l0
            .iter_mut()
            .zip(l1.iter_mut())
            .zip(l2.iter_mut())
            .zip(l3.iter_mut())
            .zip(l4.iter_mut())
            .zip(l5.iter_mut())
            .zip(l6.iter_mut())
            .zip(l7.iter_mut())
        {
            kernel(x0, x1, x2, x3, x4, x5, x6, x7, bf);
        }
    }
    for (((((((x0, x1), x2), x3), x4), x5), x6), x7) in c0
        .into_remainder()
        .iter_mut()
        .zip(c1.into_remainder().iter_mut())
        .zip(c2.into_remainder().iter_mut())
        .zip(c3.into_remainder().iter_mut())
        .zip(c4.into_remainder().iter_mut())
        .zip(c5.into_remainder().iter_mut())
        .zip(c6.into_remainder().iter_mut())
        .zip(c7.into_remainder().iter_mut())
    {
        kernel(x0, x1, x2, x3, x4, x5, x6, x7, bf);
    }
}

/// One stage at stride `i`: the reference kernel (register-blocked),
/// generic over the butterfly.
#[inline]
pub(crate) fn radix2_stage<B: Butterfly>(v: &mut [f64], i: usize, bf: B) {
    for block in v.chunks_exact_mut(2 * i) {
        let (a, b) = block.split_at_mut(i);
        radix2_lanes(a, b, bf);
    }
}

/// Two fused stages (strides `i`, `2i`) in one pass over blocks of `4i`.
///
/// Per element the arithmetic is exactly "stage `i` then stage `2i`", so
/// the result is bit-for-bit identical to running [`radix2_stage`] twice.
#[inline]
pub(crate) fn radix4_stage<B: Butterfly>(v: &mut [f64], i: usize, bf: B) {
    for block in v.chunks_exact_mut(4 * i) {
        let (f0, rest) = block.split_at_mut(i);
        let (f1, rest) = rest.split_at_mut(i);
        let (f2, f3) = rest.split_at_mut(i);
        radix4_lanes(f0, f1, f2, f3, bf);
    }
}

/// Three fused stages (strides `i`, `2i`, `4i`) in one pass over blocks of
/// `8i`. Bit-for-bit identical to three [`radix2_stage`] calls.
#[inline]
pub(crate) fn radix8_stage<B: Butterfly>(v: &mut [f64], i: usize, bf: B) {
    for block in v.chunks_exact_mut(8 * i) {
        let (f0, rest) = block.split_at_mut(i);
        let (f1, rest) = rest.split_at_mut(i);
        let (f2, rest) = rest.split_at_mut(i);
        let (f3, rest) = rest.split_at_mut(i);
        let (f4, rest) = rest.split_at_mut(i);
        let (f5, rest) = rest.split_at_mut(i);
        let (f6, f7) = rest.split_at_mut(i);
        radix8_lanes(f0, f1, f2, f3, f4, f5, f6, f7, bf);
    }
}

/// One memory pass of a fused span, as planned by [`plan_span`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FusedPass {
    /// All stages with stride in `base..tile/2` executed tile-locally: one
    /// sweep of the vector in aligned chunks of `tile` elements.
    Tile {
        /// Tile size in elements.
        tile: usize,
        /// Smallest stage stride (1 for a single vector, `k` for a
        /// `k`-way interleaved batch).
        base: usize,
    },
    /// Three stages (`stride`, `2·stride`, `4·stride`) fused in one pass.
    Radix8 {
        /// Smallest of the three strides.
        stride: usize,
    },
    /// Two stages (`stride`, `2·stride`) fused in one pass.
    Radix4 {
        /// Smaller of the two strides.
        stride: usize,
    },
    /// A single remaining stage.
    Radix2 {
        /// Stage stride.
        stride: usize,
    },
}

impl FusedPass {
    /// How many butterfly stages this pass absorbs.
    pub fn stages(&self) -> u32 {
        match self {
            FusedPass::Tile { tile, base } => (tile / (2 * base)).trailing_zeros() + 1,
            FusedPass::Radix8 { .. } => 3,
            FusedPass::Radix4 { .. } => 2,
            FusedPass::Radix2 { .. } => 1,
        }
    }
}

/// Ladder of radix-fused stages from stride `i` up to `top` inclusive,
/// without tiling. `top / i` must be a power of two (or `top < i`, a
/// no-op).
pub(crate) fn radix_ladder<B: Butterfly>(v: &mut [f64], mut i: usize, top: usize, bf: B) {
    while i <= top {
        if 4 * i <= top {
            radix8_stage(v, i, bf);
            i *= 8;
        } else if 2 * i <= top {
            radix4_stage(v, i, bf);
            i *= 4;
        } else {
            radix2_stage(v, i, bf);
            i *= 2;
        }
    }
}

/// Upper bound on passes any plan can need: one tiled pass plus a radix
/// ladder over at most 63 remaining stages grouped ≥ 1 stage per pass
/// never exceeds this on 64-bit lengths.
const MAX_FUSED_PASSES: usize = 24;

/// A complete pass schedule held inline — `Copy`, fixed-size, and built
/// without touching the heap, so planning can sit inside the per-apply
/// hot path of a solver iteration without allocating.
///
/// [`plan_span`] is the `Vec`-returning convenience wrapper around this.
#[derive(Debug, Clone, Copy)]
pub struct FusedPlan {
    passes: [FusedPass; MAX_FUSED_PASSES],
    count: usize,
}

impl FusedPlan {
    /// Plan stage strides `base, 2·base, …, len/2` with the default
    /// [`FUSED_TILE`] cache tile. See [`plan_span`] for the contract.
    pub fn new(len: usize, base: usize) -> Self {
        Self::with_tile(len, base, FUSED_TILE)
    }

    /// As [`FusedPlan::new`] with an explicit tile size (the parallel
    /// backend shrinks the tile so one tiled pass yields at least one
    /// tile per worker). Any power-of-two tile produces the same
    /// bit-identical result — tiling only regroups stages into passes,
    /// never changes the per-element arithmetic.
    pub fn with_tile(len: usize, base: usize, tile: usize) -> Self {
        assert!(base >= 1 && len >= 2 * base && len % (2 * base) == 0);
        assert!(
            (len / (2 * base)).is_power_of_two(),
            "len / (2·base) must be a power of two"
        );
        let top = len / 2;
        let mut passes = [FusedPass::Radix2 { stride: 0 }; MAX_FUSED_PASSES];
        let mut count = 0;
        let mut i = base;
        if len > tile
            && 2 * base <= tile
            && tile % (2 * base) == 0
            && (tile / (2 * base)).is_power_of_two()
            && len % tile == 0
        {
            passes[count] = FusedPass::Tile { tile, base };
            count += 1;
            i = tile;
        }
        while i <= top {
            if 4 * i <= top {
                passes[count] = FusedPass::Radix8 { stride: i };
                i *= 8;
            } else if 2 * i <= top {
                passes[count] = FusedPass::Radix4 { stride: i };
                i *= 4;
            } else {
                passes[count] = FusedPass::Radix2 { stride: i };
                i *= 2;
            }
            count += 1;
        }
        FusedPlan { passes, count }
    }

    /// The planned passes, in execution order.
    pub fn passes(&self) -> &[FusedPass] {
        &self.passes[..self.count]
    }
}

/// Plan the memory passes covering stage strides `base, 2·base, …, len/2`.
///
/// Equivalent stage-for-stage to the reference ascending loop; the plan
/// only groups stages into passes. `len / (2·base)` must be a power of
/// two. Tiling is used when the vector exceeds [`FUSED_TILE`] and the tile
/// aligns with both the block size `2·base` and the vector length (always
/// true for a single power-of-two vector; for a `k`-way interleaved span
/// this requires `k` to be a power of two, otherwise the plan falls back
/// to untiled radix-fused passes).
pub fn plan_span(len: usize, base: usize) -> Vec<FusedPass> {
    FusedPlan::new(len, base).passes().to_vec()
}

/// Execute one planned pass.
pub fn run_pass<B: Butterfly>(v: &mut [f64], pass: FusedPass, bf: B) {
    match pass {
        FusedPass::Tile { tile, base } => {
            for chunk in v.chunks_exact_mut(tile) {
                radix_ladder(chunk, base, tile / 2, bf);
            }
        }
        FusedPass::Radix8 { stride } => radix8_stage(v, stride, bf),
        FusedPass::Radix4 { stride } => radix4_stage(v, stride, bf),
        FusedPass::Radix2 { stride } => radix2_stage(v, stride, bf),
    }
}

/// Full fused span: all stages with strides `base, 2·base, …, v.len()/2`.
/// Plans inline ([`FusedPlan`]) — no heap allocation per apply.
pub(crate) fn span_in_place<B: Butterfly>(v: &mut [f64], base: usize, bf: B) {
    let plan = FusedPlan::new(v.len(), base);
    for &pass in plan.passes() {
        run_pass(v, pass, bf);
    }
}

/// As [`span_in_place`], timing each memory pass as one `label` stage on
/// `probe`. With the probe disabled this is exactly `span_in_place`.
pub(crate) fn span_in_place_probed<B: Butterfly>(
    v: &mut [f64],
    base: usize,
    bf: B,
    probe: &mut dyn Probe,
    label: &'static str,
) {
    if !probe.enabled() {
        return span_in_place(v, base, bf);
    }
    let plan = FusedPlan::new(v.len(), base);
    for &pass in plan.passes() {
        time_stage(probe, label, || run_pass(v, pass, bf));
    }
}

/// Fused-kernel `v ← Q(ν)·v`: same arithmetic as
/// [`crate::fmmp::fmmp_in_place`] in `≈ log₂N/3` memory sweeps instead of
/// `log₂N`.
///
/// # Panics
///
/// Panics if `v.len()` is not a power of two ≥ 2.
pub fn fmmp_in_place_fused(v: &mut [f64], p: f64) {
    let n = v.len();
    assert!(n.is_power_of_two() && n >= 2, "length must be 2^ν, ν ≥ 1");
    span_in_place(v, 1, MixButterfly::new(p));
}

/// Fused-kernel unnormalised FWHT: same arithmetic as
/// [`crate::fwht::fwht_in_place`] in fewer memory sweeps.
///
/// # Panics
///
/// Panics if `v.len()` is not a power of two ≥ 2.
pub fn fwht_in_place_fused(v: &mut [f64]) {
    let n = v.len();
    assert!(n.is_power_of_two() && n >= 2, "length must be 2^ν, ν ≥ 1");
    span_in_place(v, 1, HadamardButterfly);
}

/// Transpose a column-major slab (`k` contiguous vectors of `n` elements)
/// into element-interleaved order: `dst[i·k + l] = src[l·n + i]`.
pub fn interleave(src: &[f64], k: usize, dst: &mut [f64]) {
    assert!(k >= 1 && src.len() % k == 0 && src.len() == dst.len());
    let n = src.len() / k;
    for (l, col) in src.chunks_exact(n).enumerate() {
        for (i, &x) in col.iter().enumerate() {
            dst[i * k + l] = x;
        }
    }
}

/// Inverse of [`interleave`]: `dst[l·n + i] = src[i·k + l]`.
pub fn deinterleave(src: &[f64], k: usize, dst: &mut [f64]) {
    assert!(k >= 1 && src.len() % k == 0 && src.len() == dst.len());
    let n = src.len() / k;
    for (l, col) in dst.chunks_exact_mut(n).enumerate() {
        for (i, x) in col.iter_mut().enumerate() {
            *x = src[i * k + l];
        }
    }
}

/// Batched `Q(ν)` product: `slab` holds `k` contiguous vectors of equal
/// power-of-two length and each is replaced by `Q·vⱼ`. The slab keeps its
/// column-major layout and the fused pass schedule is executed
/// column-blocked: every column's copy of a cache tile is transformed
/// before the schedule moves to the next tile, and each global radix pass
/// sweeps the columns back-to-back. The per-column work is therefore
/// exactly the single-vector fused kernel — no interleaved scratch slab,
/// no transposition sweeps, no allocation.
/// Bit-for-bit identical to `k` independent [`fmmp_in_place_fused`] calls.
///
/// # Panics
///
/// Panics unless `slab.len() = k·2^ν` with `ν ≥ 1, k ≥ 1`.
pub fn fmmp_batch_in_place(slab: &mut [f64], k: usize, p: f64) {
    batch_span(slab, k, MixButterfly::new(p));
}

/// Batched unnormalised FWHT over `k` contiguous vectors; see
/// [`fmmp_batch_in_place`] for the layout contract.
///
/// # Panics
///
/// Panics unless `slab.len() = k·2^ν` with `ν ≥ 1, k ≥ 1`.
pub fn fwht_batch_in_place(slab: &mut [f64], k: usize) {
    batch_span(slab, k, HadamardButterfly);
}

fn batch_span<B: Butterfly>(slab: &mut [f64], k: usize, bf: B) {
    assert!(k >= 1 && slab.len() % k == 0, "slab must hold k vectors");
    let n = slab.len() / k;
    assert!(n.is_power_of_two() && n >= 2, "length must be 2^ν, ν ≥ 1");
    if k == 1 {
        return span_in_place(slab, 1, bf);
    }
    // Column-blocked schedule: one per-column plan, tile loop outermost.
    // Each column runs the identical pass sequence as the single-vector
    // span, so bit-identity per column is structural.
    let plan = FusedPlan::new(n, 1);
    for &pass in plan.passes() {
        match pass {
            FusedPass::Tile { tile, base } => {
                for t in 0..n / tile {
                    for col in slab.chunks_exact_mut(n) {
                        radix_ladder(&mut col[t * tile..(t + 1) * tile], base, tile / 2, bf);
                    }
                }
            }
            pass => {
                for col in slab.chunks_exact_mut(n) {
                    run_pass(col, pass, bf);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fmmp::fmmp_in_place;
    use crate::fwht::fwht_in_place;
    use crate::test_util::{max_diff, random_vector};

    #[test]
    fn fused_fmmp_is_bit_identical_to_reference() {
        // Fusion regroups stages into passes but performs the exact same
        // scalar expressions per element, so equality is exact, not just
        // within tolerance.
        for nu in 1..=14u32 {
            for &p in &[0.01, 0.25, 0.5] {
                let x = random_vector(1 << nu, 100 + nu as u64);
                let mut want = x.clone();
                fmmp_in_place(&mut want, p);
                let mut got = x;
                fmmp_in_place_fused(&mut got, p);
                assert_eq!(want, got, "ν={nu} p={p}");
            }
        }
    }

    #[test]
    fn fused_fwht_is_bit_identical_to_reference() {
        for nu in 1..=14u32 {
            let x = random_vector(1 << nu, 300 + nu as u64);
            let mut want = x.clone();
            fwht_in_place(&mut want);
            let mut got = x;
            fwht_in_place_fused(&mut got);
            assert_eq!(want, got, "ν={nu}");
        }
    }

    #[test]
    fn fused_crosses_the_tile_boundary_correctly() {
        // ν = 15 exercises tile-local stages (strides 1..2¹²) plus global
        // fused passes (strides 2¹³, 2¹⁴).
        let nu = 15u32;
        let x = random_vector(1 << nu, 7);
        let mut want = x.clone();
        fmmp_in_place(&mut want, 0.013);
        let mut got = x;
        fmmp_in_place_fused(&mut got, 0.013);
        assert_eq!(want, got);
    }

    #[test]
    fn plan_covers_every_stage_exactly_once() {
        for nu in 1..=22u32 {
            let n = 1usize << nu;
            let total: u32 = plan_span(n, 1).iter().map(|p| p.stages()).sum();
            assert_eq!(total, nu, "ν={nu}: plan must absorb all ν stages");
        }
    }

    #[test]
    fn plan_cuts_sweeps_to_a_third() {
        // ν = 20: one tiled sweep (13 stages) + ceil(7/3) global passes.
        let passes = plan_span(1 << 20, 1);
        assert!(
            passes.len() <= 4,
            "ν=20 should need ≤ 4 sweeps, planned {passes:?}"
        );
        assert!(matches!(passes[0], FusedPass::Tile { .. }));
    }

    #[test]
    fn plan_skips_tiling_when_base_does_not_divide_the_tile() {
        // k = 3 interleaved lanes: tile alignment impossible, fall back to
        // untiled radix passes over the whole slab.
        let passes = plan_span(3 << 14, 3);
        assert!(passes.iter().all(|p| !matches!(p, FusedPass::Tile { .. })));
        let total: u32 = passes.iter().map(|p| p.stages()).sum();
        assert_eq!(total, 14);
    }

    #[test]
    fn interleave_roundtrip() {
        let slab = random_vector(5 * 16, 9);
        let mut ilv = vec![0.0; slab.len()];
        interleave(&slab, 5, &mut ilv);
        let mut back = vec![0.0; slab.len()];
        deinterleave(&ilv, 5, &mut back);
        assert_eq!(slab, back);
        // Spot-check the layout: element i of vector l sits at i·k + l.
        assert_eq!(ilv[3 * 5 + 2], slab[2 * 16 + 3]);
    }

    #[test]
    fn custom_tile_plans_stay_bit_identical() {
        // Tiling only regroups stages into passes; any power-of-two tile
        // must reproduce the reference bit-for-bit.
        let x = random_vector(1 << 15, 42);
        let mut want = x.clone();
        fmmp_in_place(&mut want, 0.03);
        for tile_log in [10u32, 11, 12, 14] {
            let mut got = x.clone();
            let plan = FusedPlan::with_tile(got.len(), 1, 1 << tile_log);
            let total: u32 = plan.passes().iter().map(|p| p.stages()).sum();
            assert_eq!(total, 15, "tile=2^{tile_log}: plan must absorb all stages");
            for &pass in plan.passes() {
                run_pass(&mut got, pass, MixButterfly::new(0.03));
            }
            assert_eq!(want, got, "tile=2^{tile_log}");
        }
    }

    #[test]
    fn inline_plan_matches_vec_plan() {
        for nu in 1..=22u32 {
            let n = 1usize << nu;
            assert_eq!(FusedPlan::new(n, 1).passes(), plan_span(n, 1).as_slice());
        }
        assert_eq!(
            FusedPlan::new(3 << 14, 3).passes(),
            plan_span(3 << 14, 3).as_slice()
        );
    }

    #[test]
    fn batch_matches_independent_applies() {
        for &(nu, k) in &[
            (1u32, 1usize),
            (4, 2),
            (6, 3),
            (9, 4),
            (11, 7),
            (13, 8),
            (15, 3),
        ] {
            let n = 1usize << nu;
            let p = 0.043;
            let mut slab = random_vector(n * k, 1000 + nu as u64 + k as u64);
            let mut want = slab.clone();
            for col in want.chunks_exact_mut(n) {
                fmmp_in_place(col, p);
            }
            fmmp_batch_in_place(&mut slab, k, p);
            assert_eq!(want, slab, "ν={nu} k={k}");

            let mut slab = random_vector(n * k, 2000 + nu as u64 + k as u64);
            let mut want = slab.clone();
            for col in want.chunks_exact_mut(n) {
                fwht_in_place(col);
            }
            fwht_batch_in_place(&mut slab, k);
            assert_eq!(want, slab, "fwht ν={nu} k={k}");
        }
    }

    #[test]
    fn probed_span_reports_one_event_per_pass() {
        use qs_telemetry::{RecordingProbe, SolverEvent};
        let n = 1usize << 10;
        let x = random_vector(n, 77);
        let mut plain = x.clone();
        span_in_place(&mut plain, 1, MixButterfly::new(0.2));
        let mut rec = RecordingProbe::new();
        let mut probed = x;
        span_in_place_probed(
            &mut probed,
            1,
            MixButterfly::new(0.2),
            &mut rec,
            "fused-pass",
        );
        assert_eq!(plain, probed);
        let timed = rec
            .events()
            .iter()
            .filter(|e| {
                matches!(
                    e,
                    SolverEvent::MatvecTimed {
                        stage: "fused-pass",
                        ..
                    }
                )
            })
            .count();
        assert_eq!(timed, plan_span(n, 1).len());
    }

    #[test]
    fn max_diff_tolerance_contract() {
        // The public contract promises ≤ 1e-12 agreement; bit-identity is
        // stronger but keep the tolerance-based check as the stated bound.
        let x = random_vector(1 << 12, 55);
        let mut a = x.clone();
        fmmp_in_place(&mut a, 0.31);
        let mut b = x;
        fmmp_in_place_fused(&mut b, 0.31);
        assert!(max_diff(&a, &b) <= 1e-12);
    }
}
