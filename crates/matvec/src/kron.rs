//! Fast matrix–vector products with mixed-radix Kronecker chains
//! `M = ⊗_{t=1}^{g} M_t` (paper Eq. 11 and Section 2.2).
//!
//! The product `(⊗ M_t)·v` is evaluated one factor at a time: with the
//! vector reshaped as a `(left, r_t, right)` tensor, factor `t` acts along
//! the middle axis. Total cost `Θ(N · Σ_t r_t)` — for the binary chain
//! (`r_t = 2` for all `ν` factors) this is exactly the `Θ(N log₂ N)` of
//! `Fmmp`, and for grouped factors it reproduces the paper's claim that
//! "as long as the `g_i` are not too large we still get efficient methods".
//!
//! Factors of any dimension ≥ 2 are supported, which directly yields the
//! 4-letter RNA alphabet mentioned in Section 5.2 (`r_t = 4` per position).

use crate::LinearOperator;
use qs_linalg::DenseMatrix;
use qs_mutation::MutationModel;

/// A Kronecker-chain operator `⊗_t M_t` with a fast in-place product.
#[derive(Debug, Clone)]
pub struct KroneckerOp {
    factors: Vec<DenseMatrix>,
    len: usize,
}

impl KroneckerOp {
    /// Create from explicit square factors (factor 0 = most significant
    /// digit group, matching the workspace convention).
    ///
    /// # Panics
    ///
    /// Panics if `factors` is empty, any factor is non-square or smaller
    /// than 2×2, or the total dimension overflows.
    pub fn new(factors: Vec<DenseMatrix>) -> Self {
        assert!(!factors.is_empty(), "at least one factor required");
        let mut len = 1usize;
        for (t, f) in factors.iter().enumerate() {
            assert_eq!(f.rows(), f.cols(), "factor {t} must be square");
            assert!(f.rows() >= 2, "factor {t} must be at least 2×2");
            len = len
                .checked_mul(f.rows())
                .expect("total dimension overflows");
        }
        KroneckerOp { factors, len }
    }

    /// Build from any [`MutationModel`]'s factor chain.
    pub fn from_model<M: MutationModel + ?Sized>(model: &M) -> Self {
        Self::new(model.factors())
    }

    /// Factor dimensions `r_1, …, r_g`.
    pub fn dims(&self) -> Vec<usize> {
        self.factors.iter().map(DenseMatrix::rows).collect()
    }

    /// Number of factors `g`.
    pub fn num_factors(&self) -> usize {
        self.factors.len()
    }

    /// Borrow the factor chain (most significant group first).
    pub fn factors_ref(&self) -> &[DenseMatrix] {
        &self.factors
    }

    /// In-place product `v ← (⊗ M_t)·v`.
    ///
    /// # Panics
    ///
    /// Panics if `v.len()` differs from the operator dimension.
    pub fn apply_in_place_impl(&self, v: &mut [f64]) {
        assert_eq!(v.len(), self.len, "apply_in_place: length mismatch");
        let n = self.len;
        // Process factors from the innermost (least significant) outwards;
        // `right` is the combined dimension of already-processed factors.
        let mut right = 1usize;
        // Scratch sized to the largest factor, reused across all strides.
        let r_max = self.factors.iter().map(DenseMatrix::rows).max().unwrap();
        let mut scratch = vec![0.0f64; r_max];
        for m in self.factors.iter().rev() {
            let r = m.rows();
            let block = r * right;
            let mut base = 0;
            while base < n {
                for q in 0..right {
                    // Gather the strided fibre v[base + q + s·right].
                    for (s, slot) in scratch[..r].iter_mut().enumerate() {
                        *slot = v[base + q + s * right];
                    }
                    // Dense r×r matvec back into the fibre.
                    for (i, row) in (0..r).map(|i| (i, m.row(i))) {
                        let mut acc = 0.0;
                        for (a, &x) in row.iter().zip(&scratch[..r]) {
                            acc += a * x;
                        }
                        v[base + q + i * right] = acc;
                    }
                }
                base += block;
            }
            right = block;
        }
    }
}

impl LinearOperator for KroneckerOp {
    fn len(&self) -> usize {
        self.len
    }

    fn apply_into(&self, x: &[f64], y: &mut [f64]) {
        assert_eq!(x.len(), self.len, "apply_into: x length mismatch");
        assert_eq!(y.len(), self.len, "apply_into: y length mismatch");
        y.copy_from_slice(x);
        self.apply_in_place_impl(y);
    }

    fn apply_in_place(&self, v: &mut [f64]) {
        self.apply_in_place_impl(v);
    }

    fn flops_estimate(&self) -> f64 {
        // Each factor pass is N fibre-elements × 2r flops.
        let n = self.len as f64;
        2.0 * n * self.dims().iter().map(|&r| r as f64).sum::<f64>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fmmp::fmmp_in_place;
    use crate::test_util::{max_diff, random_vector};
    use qs_mutation::{Grouped, PerSite, SiteProcess, Uniform};

    #[test]
    fn binary_chain_matches_fmmp() {
        let (nu, p) = (8u32, 0.06);
        let op = KroneckerOp::from_model(&Uniform::new(nu, p));
        let x = random_vector(1 << nu, 31);
        let mut want = x.clone();
        fmmp_in_place(&mut want, p);
        assert!(max_diff(&want, &op.apply(&x)) < 1e-13);
    }

    #[test]
    fn matches_dense_kron_for_mixed_radix() {
        // 3 ⊗ 2 ⊗ 4 chain, arbitrary (non-stochastic) factors: the fast
        // product must equal the dense Kronecker product for *any* chain.
        let f3 = DenseMatrix::from_fn(3, 3, |i, j| (i * 3 + j) as f64 / 10.0 - 0.3);
        let f2 = DenseMatrix::from_vec(2, 2, vec![1.0, -2.0, 0.5, 0.25]);
        let f4 = DenseMatrix::from_fn(4, 4, |i, j| ((i + 2 * j) % 5) as f64 - 1.0);
        let op = KroneckerOp::new(vec![f3.clone(), f2.clone(), f4.clone()]);
        assert_eq!(op.len(), 24);
        let dense = f3.kron(&f2).kron(&f4);
        let x = random_vector(24, 7);
        assert!(max_diff(&dense.matvec(&x), &op.apply(&x)) < 1e-12);
    }

    #[test]
    fn asymmetric_per_site_chain() {
        let model = PerSite::new(vec![
            SiteProcess::new(0.1, 0.3),
            SiteProcess::new(0.05, 0.0),
            SiteProcess::new(0.2, 0.2),
        ]);
        let op = KroneckerOp::from_model(&model);
        let dense = model.dense();
        let x = random_vector(8, 2);
        assert!(max_diff(&dense.matvec(&x), &op.apply(&x)) < 1e-14);
    }

    #[test]
    fn grouped_factors_match_dense() {
        // One 4×4 group + two 2×2 sites (paper Eq. 11 with g = (2,1,1)).
        let mut q4 = DenseMatrix::zeros(4, 4);
        for j in 0..4 {
            q4[(j, j)] = 0.85;
            for d in 1..4 {
                q4[(j ^ d, j)] = 0.05;
            }
        }
        let s = DenseMatrix::from_vec(2, 2, vec![0.9, 0.1, 0.1, 0.9]);
        let model = Grouped::new(vec![q4, s.clone(), s]);
        let op = KroneckerOp::from_model(&model);
        assert_eq!(op.len(), 16);
        let dense = model.dense();
        let x = random_vector(16, 3);
        assert!(max_diff(&dense.matvec(&x), &op.apply(&x)) < 1e-13);
    }

    #[test]
    fn four_letter_alphabet_chain() {
        // Three RNA positions over {A,C,G,U}: dimension 4³ = 64.
        let e = 0.03;
        let jc = DenseMatrix::from_fn(4, 4, |i, j| if i == j { 1.0 - 3.0 * e } else { e });
        let op = KroneckerOp::new(vec![jc.clone(); 3]);
        assert_eq!(op.len(), 64);
        let dense = jc.kron(&jc).kron(&jc);
        let x = random_vector(64, 9);
        assert!(max_diff(&dense.matvec(&x), &op.apply(&x)) < 1e-13);
        // Column stochasticity is preserved through the fast product.
        let ones = vec![1.0; 64];
        let y = op.apply(&ones);
        assert!(y.iter().all(|&v| (v - 1.0).abs() < 1e-13));
    }

    #[test]
    fn in_place_equals_into() {
        let f2 = DenseMatrix::from_vec(2, 2, vec![0.7, 0.3, 0.3, 0.7]);
        let op = KroneckerOp::new(vec![f2; 5]);
        let x = random_vector(32, 11);
        let y = op.apply(&x);
        let mut z = x;
        op.apply_in_place(&mut z);
        assert!(max_diff(&y, &z) < 1e-16);
    }

    #[test]
    fn flops_reflect_sum_of_dims() {
        let f2 = DenseMatrix::identity(2);
        let f8 = DenseMatrix::identity(8);
        let op = KroneckerOp::new(vec![f8, f2]);
        assert_eq!(op.flops_estimate(), 2.0 * 16.0 * 10.0);
    }

    #[test]
    #[should_panic(expected = "must be square")]
    fn rejects_rectangular_factor() {
        let _ = KroneckerOp::new(vec![DenseMatrix::zeros(2, 3)]);
    }
}
