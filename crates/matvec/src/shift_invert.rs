//! The implicit shift-and-invert product for `Q` (paper Section 3,
//! "Towards a Shift-and-Invert Method").
//!
//! Because `Q = V Λ V` with `V` the (fast) normalised Hadamard transform,
//!
//! ```text
//! (Q − µI)^{-1}·v = V · (Λ − µI)^{-1} · V·v,
//! ```
//!
//! two FWHTs plus a diagonal scaling — still `Θ(N log₂ N)`, no storage.
//! This enables inverse iteration on `Q` itself, i.e. computing interior
//! eigenvectors of the mutation matrix (the extension the paper flags as
//! the entry point towards Rayleigh-quotient methods for `Q·F`).

use crate::fused::{fwht_batch_in_place, fwht_in_place_fused};
use crate::LinearOperator;

/// How the eigenvalues `Λ_ii` of the diagonalised model are evaluated.
#[derive(Debug, Clone)]
enum Spectrum {
    /// Uniform rate: `Λ_ii = (1−2p)^{w(i)}`; table of `1/(λ_k − µ)` by
    /// Hamming weight.
    Uniform(Vec<f64>),
    /// Per-site symmetric rates: `Λ_ii = Π_{bit s of i} (1−2p_s)`;
    /// per-*bit* scale factors (bit `s` ↔ site `ν−1−s`).
    PerSite(Vec<f64>),
}

/// The operator `(Q(ν) − µI)^{-1}` for symmetric (uniform or per-site)
/// mutation models — every such `Q` is diagonalised by the same Hadamard
/// transform, since each 2×2 factor `[[1−p_s, p_s], [p_s, 1−p_s]]` has
/// eigenvectors `(1, ±1)`.
#[derive(Debug, Clone)]
pub struct QShiftInvert {
    nu: u32,
    p: f64,
    mu: f64,
    spectrum: Spectrum,
}

impl QShiftInvert {
    /// Create the operator for chain length `nu`, error rate `p`, and shift
    /// `mu`.
    ///
    /// # Panics
    ///
    /// Panics unless `0 < p ≤ 1/2` and `µ` is separated from every
    /// eigenvalue `(1−2p)^k` by at least `1e-14` in relative terms (the
    /// operator is otherwise numerically singular). The paper admits the
    /// endpoint `p = 1/2`: the spectrum degenerates to `λ_0 = 1`,
    /// `λ_k = 0` for `k ≥ 1`, which is fine for any shift `µ ∉ {0, 1}` —
    /// and `µ = 0` is rejected by the separation check like any other
    /// eigenvalue hit.
    pub fn new(nu: u32, p: f64, mu: f64) -> Self {
        assert!(nu >= 1, "chain length must be at least 1");
        let _ = qs_bitseq::dimension(nu);
        assert!(
            p.is_finite() && p > 0.0 && p <= 0.5,
            "error rate must satisfy 0 < p ≤ 1/2"
        );
        assert!(mu.is_finite(), "shift must be finite");
        let inv_shifted: Vec<f64> = (0..=nu)
            .map(|k| {
                let lambda = (1.0 - 2.0 * p).powi(k as i32);
                let gap = lambda - mu;
                assert!(
                    gap.abs() > 1e-14 * lambda.abs().max(mu.abs()).max(1e-300),
                    "shift µ = {mu} coincides with eigenvalue (1−2p)^{k} = {lambda}"
                );
                1.0 / gap
            })
            .collect();
        QShiftInvert {
            nu,
            p,
            mu,
            spectrum: Spectrum::Uniform(inv_shifted),
        }
    }

    /// Create the operator for **per-site** symmetric rates (paper
    /// Section 2.2's first generalisation): `rates[0]` is the most
    /// significant site, matching [`qs_mutation::PerSite`].
    ///
    /// # Panics
    ///
    /// Panics unless every rate satisfies `0 < p_s ≤ 1/2` (the `p = 1/2`
    /// endpoint zeroes that site's factor, collapsing part of the
    /// spectrum to 0 — legal for any `µ` the separation check accepts)
    /// and `µ` stays clear of every eigenvalue `Π (1−2p_s)^{bit_s}`.
    pub fn per_site(rates: &[f64], mu: f64) -> Self {
        let nu = rates.len() as u32;
        assert!(nu >= 1, "at least one site required");
        let _ = qs_bitseq::dimension(nu);
        assert!(
            rates.iter().all(|p| p.is_finite() && *p > 0.0 && *p <= 0.5),
            "all rates must satisfy 0 < p ≤ 1/2"
        );
        assert!(mu.is_finite(), "shift must be finite");
        // bit s (value 2^s) corresponds to site ν−1−s.
        let bit_scale: Vec<f64> = (0..nu)
            .map(|s| 1.0 - 2.0 * rates[(nu - 1 - s) as usize])
            .collect();
        // Eigenvalue extremes bound the spectrum; cheap global separation
        // check (exact per-eigenvalue checks happen implicitly through the
        // division — we reject only exact/near-exact coincidences of the
        // two closed-form extremes and of 1 itself, the common choices).
        let lam_min: f64 = bit_scale.iter().product();
        for lam in [1.0, lam_min] {
            assert!(
                (lam - mu).abs() > 1e-14 * lam.abs().max(mu.abs()),
                "shift µ = {mu} coincides with eigenvalue {lam}"
            );
        }
        QShiftInvert {
            nu,
            p: f64::NAN, // not meaningful for per-site models
            mu,
            spectrum: Spectrum::PerSite(bit_scale),
        }
    }

    /// The eigenvalue `Λ_ii` of `Q` at index `i`.
    #[inline]
    pub fn eigenvalue(&self, i: u64) -> f64 {
        match &self.spectrum {
            Spectrum::Uniform(_) => (1.0 - 2.0 * self.p).powi(i.count_ones() as i32),
            Spectrum::PerSite(bit_scale) => {
                let mut lam = 1.0;
                let mut bits = i;
                while bits != 0 {
                    lam *= bit_scale[bits.trailing_zeros() as usize];
                    bits &= bits - 1;
                }
                lam
            }
        }
    }

    /// The shift `µ`.
    pub fn mu(&self) -> f64 {
        self.mu
    }

    /// The error rate `p`.
    pub fn p(&self) -> f64 {
        self.p
    }
}

impl LinearOperator for QShiftInvert {
    fn len(&self) -> usize {
        1usize << self.nu
    }

    fn apply_into(&self, x: &[f64], y: &mut [f64]) {
        assert_eq!(x.len(), self.len(), "apply_into: x length mismatch");
        assert_eq!(y.len(), self.len(), "apply_into: y length mismatch");
        y.copy_from_slice(x);
        self.apply_in_place(y);
    }

    fn apply_in_place(&self, v: &mut [f64]) {
        assert_eq!(v.len(), self.len(), "apply_in_place: length mismatch");
        // V (Λ−µI)^{-1} V = 2^{-ν} · H (Λ−µI)^{-1} H; fold the 2^{-ν}
        // into the diagonal pass so only one scaling sweep is needed.
        // The fused FWHT is bit-identical to the reference stage loop.
        fwht_in_place_fused(v);
        let scale = 0.5f64.powi(self.nu as i32);
        match &self.spectrum {
            Spectrum::Uniform(inv_shifted) => {
                for (i, vi) in v.iter_mut().enumerate() {
                    let k = (i as u64).count_ones() as usize;
                    *vi *= scale * inv_shifted[k];
                }
            }
            Spectrum::PerSite(_) => {
                for (i, vi) in v.iter_mut().enumerate() {
                    *vi *= scale / (self.eigenvalue(i as u64) - self.mu);
                }
            }
        }
        fwht_in_place_fused(v);
    }

    fn flops_estimate(&self) -> f64 {
        let n = self.len() as f64;
        2.0 * n * self.nu as f64 + 2.0 * n
    }

    fn apply_batch(&self, slab: &mut [f64]) {
        let n = self.len();
        assert!(
            !slab.is_empty() && slab.len() % n == 0,
            "apply_batch: slab must hold a whole number of vectors"
        );
        let k = slab.len() / n;
        if k == 1 {
            return self.apply_in_place(slab);
        }
        // Column-blocked batch: both Hadamard transforms run through the
        // tile-resident batch kernel and the diagonal is swept column by
        // column as a sequential stream. The recomputed per-index spectrum
        // work (popcount / per-site product) is cheap next to the two
        // full-slab transposition sweeps and the scratch slab the old
        // interleaved layout paid for sharing it — see DESIGN.md.
        fwht_batch_in_place(slab, k);
        let scale = 0.5f64.powi(self.nu as i32);
        match &self.spectrum {
            Spectrum::Uniform(inv_shifted) => {
                for col in slab.chunks_exact_mut(n) {
                    for (i, x) in col.iter_mut().enumerate() {
                        *x *= scale * inv_shifted[(i as u64).count_ones() as usize];
                    }
                }
            }
            Spectrum::PerSite(_) => {
                for col in slab.chunks_exact_mut(n) {
                    for (i, x) in col.iter_mut().enumerate() {
                        *x *= scale / (self.eigenvalue(i as u64) - self.mu);
                    }
                }
            }
        }
        fwht_batch_in_place(slab, k);
    }
}

/// Batched multi-`p` mutation product for parameter sweeps: column `j` of
/// the slab is multiplied by `Q(p_j)`.
///
/// The sweep exploits the paper's diagonalisation `Q(p) = V Λ(p) V` one
/// step further: `V` (the Hadamard transform) does not depend on `p`, so
/// `k` products at `k` different error rates share the same pair of
/// column-blocked batched FWHTs over the slab; only the diagonal differs
/// per column, indexing that column's precomputed eigenvalue table by
/// Hamming weight. Error-threshold `p`-sweeps thus traverse each cache
/// tile once per pass for the whole batch, with no scratch allocation.
#[derive(Debug, Clone)]
pub struct QSweep {
    nu: u32,
    /// `class_scale[w][j] = 2^{-ν} · (1 − 2 p_j)^w`.
    class_scale: Vec<Vec<f64>>,
    k: usize,
}

impl QSweep {
    /// Build the sweep operator for chain length `nu` and one error rate
    /// per column.
    ///
    /// # Panics
    ///
    /// Panics unless `ν ≥ 1`, `ps` is non-empty, and every rate satisfies
    /// `0 < p ≤ 1/2`.
    pub fn new(nu: u32, ps: &[f64]) -> Self {
        assert!(nu >= 1, "chain length must be at least 1");
        let _ = qs_bitseq::dimension(nu);
        assert!(!ps.is_empty(), "at least one error rate required");
        assert!(
            ps.iter().all(|p| p.is_finite() && *p > 0.0 && *p <= 0.5),
            "all rates must satisfy 0 < p ≤ 1/2"
        );
        let scale = 0.5f64.powi(nu as i32);
        let class_scale = (0..=nu)
            .map(|w| {
                ps.iter()
                    .map(|&p| scale * (1.0 - 2.0 * p).powi(w as i32))
                    .collect()
            })
            .collect();
        QSweep {
            nu,
            class_scale,
            k: ps.len(),
        }
    }

    /// Dimension `N = 2^ν` of each column.
    pub fn len(&self) -> usize {
        1usize << self.nu
    }

    /// Never zero-dimensional.
    pub fn is_empty(&self) -> bool {
        false
    }

    /// Number of columns (error rates) in the sweep.
    pub fn columns(&self) -> usize {
        self.k
    }

    /// Apply `Q(p_j)` to column `j` of the slab (`k` contiguous vectors of
    /// length `N`).
    ///
    /// # Panics
    ///
    /// Panics unless `slab.len() == k·N`.
    pub fn apply_batch(&self, slab: &mut [f64]) {
        let (n, k) = (self.len(), self.k);
        assert_eq!(slab.len(), n * k, "apply_batch: slab length mismatch");
        fwht_batch_in_place(slab, k);
        for (j, col) in slab.chunks_exact_mut(n).enumerate() {
            for (i, x) in col.iter_mut().enumerate() {
                let w = (i as u64).count_ones() as usize;
                *x *= self.class_scale[w][j];
            }
        }
        fwht_batch_in_place(slab, k);
    }

    /// Apply `Q(p_{cols[c]})` to lane `c` of a compacted slab holding
    /// `cols.len()` contiguous vectors — the selected-column counterpart
    /// of [`QSweep::apply_batch`], used by the block power iteration once
    /// converged columns have been compacted out. The two batched FWHTs
    /// run at the live width, and each lane's diagonal indexes the
    /// original column's eigenvalue table, so per-lane results are
    /// bit-identical to a full-width apply of that column (the FWHT batch
    /// kernels are columnwise-exact at any batch width).
    ///
    /// # Panics
    ///
    /// Panics unless `slab.len() == cols.len()·N`, `cols` is non-empty,
    /// and every entry of `cols` names a sweep column (`< k`).
    pub fn apply_batch_selected(&self, slab: &mut [f64], cols: &[usize]) {
        let n = self.len();
        let m = cols.len();
        assert!(
            !cols.is_empty() && slab.len() == m * n,
            "apply_batch_selected: slab length mismatch"
        );
        assert!(
            cols.iter().all(|&j| j < self.k),
            "apply_batch_selected: column index out of range"
        );
        fwht_batch_in_place(slab, m);
        for (col, &j) in slab.chunks_exact_mut(n).zip(cols) {
            for (i, x) in col.iter_mut().enumerate() {
                let w = (i as u64).count_ones() as usize;
                *x *= self.class_scale[w][j];
            }
        }
        fwht_batch_in_place(slab, m);
    }

    /// Arithmetic cost of one batched application (all `k` columns).
    pub fn flops_estimate(&self) -> f64 {
        let n = self.len() as f64;
        self.k as f64 * (2.0 * n * self.nu as f64 + 2.0 * n)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_util::{max_diff, random_vector};
    use qs_linalg::{DenseMatrix, Lu};
    use qs_mutation::{MutationModel, Uniform};

    fn dense_shifted(nu: u32, p: f64, mu: f64) -> DenseMatrix {
        let mut m = Uniform::new(nu, p).dense();
        for i in 0..m.rows() {
            m[(i, i)] -= mu;
        }
        m
    }

    #[test]
    fn matches_lu_solve() {
        for nu in 2..=6u32 {
            let (p, mu) = (0.08, -0.3);
            let op = QShiftInvert::new(nu, p, mu);
            let b = random_vector(1 << nu, nu as u64 + 50);
            let direct = Lu::new(&dense_shifted(nu, p, mu)).unwrap().solve(&b);
            let fast = op.apply(&b);
            assert!(max_diff(&direct, &fast) < 1e-11, "ν={nu}");
        }
    }

    #[test]
    fn inverts_the_shifted_operator() {
        // (Q − µI)·((Q − µI)^{-1} v) == v via Fmmp.
        let (nu, p, mu) = (9u32, 0.03, 0.2);
        let op = QShiftInvert::new(nu, p, mu);
        let v = random_vector(1 << nu, 8);
        let mut w = op.apply(&v);
        // Apply (Q − µI): Fmmp then subtract µ·w.
        let w_copy = w.clone();
        crate::fmmp::fmmp_in_place(&mut w, p);
        for (wi, &ci) in w.iter_mut().zip(&w_copy) {
            *wi -= mu * ci;
        }
        assert!(max_diff(&w, &v) < 1e-10);
    }

    #[test]
    fn zero_shift_is_q_inverse() {
        // µ = 0: the product must equal Q^{-1}v; verify through the
        // Kronecker inverse factor representation (paper Eq. 12).
        let (nu, p) = (5u32, 0.1);
        let op = QShiftInvert::new(nu, p, 0.0);
        let q = Uniform::new(nu, p);
        let inv_factor = q.inverse_site_factor();
        let inv_dense = (0..nu).fold(DenseMatrix::identity(1), |acc, _| acc.kron(&inv_factor));
        let v = random_vector(1 << nu, 15);
        assert!(max_diff(&inv_dense.matvec(&v), &op.apply(&v)) < 1e-11);
    }

    #[test]
    fn inverse_iteration_finds_smallest_eigenvector() {
        // Inverse iteration with µ slightly below λ_min = (1−2p)^ν converges
        // to the alternating-sign eigenvector ⊗[1,−1].
        let (nu, p) = (6u32, 0.12f64);
        let lam_min = (1.0 - 2.0 * p).powi(nu as i32);
        let op = QShiftInvert::new(nu, p, lam_min * 0.9);
        let mut v = random_vector(1 << nu, 33);
        for _ in 0..40 {
            op.apply_in_place(&mut v);
            let norm = qs_linalg::norm_l2(&v);
            for x in &mut v {
                *x /= norm;
            }
        }
        // The eigenvector for (1−2p)^ν is proportional to (−1)^{w(i)}:
        // after normalisation every entry is ±1/√N with that sign pattern.
        let amp = 1.0 / ((1usize << nu) as f64).sqrt();
        let sign0 = v[0].signum();
        for (i, &x) in v.iter().enumerate() {
            // `% 2 == 0` rather than `is_multiple_of` — the latter needs
            // Rust 1.87 and the workspace MSRV is 1.85.
            let parity = if (i as u64).count_ones() % 2 == 0 {
                1.0
            } else {
                -1.0
            };
            let expect = sign0 * parity * amp;
            assert!(
                (x - expect).abs() < 1e-8,
                "component {i}: {x} vs expected {expect}"
            );
        }
    }

    #[test]
    #[should_panic(expected = "coincides with eigenvalue")]
    fn rejects_shift_on_eigenvalue() {
        let _ = QShiftInvert::new(4, 0.1, 1.0);
    }

    #[test]
    fn per_site_matches_lu_solve() {
        use qs_mutation::PerSite;
        let rates = [0.05, 0.12, 0.02, 0.2];
        let mu = -0.4;
        let op = QShiftInvert::per_site(&rates, mu);
        let model = PerSite::symmetric(&rates);
        let mut dense = model.dense();
        for i in 0..dense.rows() {
            dense[(i, i)] -= mu;
        }
        let b = random_vector(16, 3);
        let direct = Lu::new(&dense).unwrap().solve(&b);
        let fast = op.apply(&b);
        assert!(max_diff(&direct, &fast) < 1e-11);
    }

    #[test]
    fn per_site_with_equal_rates_matches_uniform_path() {
        let p = 0.07;
        let mu = 0.3;
        let uni = QShiftInvert::new(5, p, mu);
        let per = QShiftInvert::per_site(&[p; 5], mu);
        let b = random_vector(32, 6);
        assert!(max_diff(&uni.apply(&b), &per.apply(&b)) < 1e-12);
        // Eigenvalue accessor agrees too.
        for i in 0..32u64 {
            assert!((uni.eigenvalue(i) - per.eigenvalue(i)).abs() < 1e-15);
        }
    }

    #[test]
    fn per_site_eigenvalue_uses_site_order() {
        // rates MSB-first: flipping the MSB (bit ν−1) scales by 1−2·rates[0].
        let rates = [0.1, 0.25, 0.4];
        let op = QShiftInvert::per_site(&rates, -1.0);
        let msb = 1u64 << 2;
        assert!((op.eigenvalue(msb) - 0.8).abs() < 1e-15);
        let lsb = 1u64;
        assert!((op.eigenvalue(lsb) - 0.2).abs() < 1e-15);
    }

    #[test]
    #[should_panic(expected = "0 < p ≤ 1/2")]
    fn per_site_rejects_bad_rates() {
        let _ = QShiftInvert::per_site(&[0.1, 0.7], -0.4);
    }

    #[test]
    fn p_half_endpoint_is_accepted_and_matches_lu() {
        // Paper admits p ∈ (0, 1/2]. At p = 1/2 the spectrum is λ_0 = 1,
        // λ_k = 0 for k ≥ 1 — fine for any shift off {0, 1}.
        for nu in 2..=5u32 {
            let (p, mu) = (0.5, -0.35);
            let op = QShiftInvert::new(nu, p, mu);
            let b = random_vector(1 << nu, 60 + nu as u64);
            let direct = Lu::new(&dense_shifted(nu, p, mu)).unwrap().solve(&b);
            assert!(max_diff(&direct, &op.apply(&b)) < 1e-11, "ν={nu}");
        }
        // Per-site endpoint likewise.
        let op = QShiftInvert::per_site(&[0.1, 0.5, 0.3], 0.7);
        assert_eq!(op.eigenvalue(0), 1.0);
        assert_eq!(op.eigenvalue(0b010), 0.0);
    }

    #[test]
    #[should_panic(expected = "coincides with eigenvalue")]
    fn p_half_with_zero_shift_is_singular() {
        // µ = 0 hits the collapsed eigenvalue λ_k = 0 (k ≥ 1).
        let _ = QShiftInvert::new(4, 0.5, 0.0);
    }

    #[test]
    fn apply_batch_equals_independent_applies() {
        for op in [
            QShiftInvert::new(7, 0.06, -0.2),
            QShiftInvert::per_site(&[0.05, 0.12, 0.02, 0.2, 0.31, 0.07, 0.44], 1.4),
        ] {
            let n = op.len();
            let k = 5usize;
            let mut slab = random_vector(n * k, 91);
            let mut want = slab.clone();
            for col in want.chunks_exact_mut(n) {
                op.apply_in_place(col);
            }
            op.apply_batch(&mut slab);
            assert_eq!(want, slab);
        }
    }

    #[test]
    fn qsweep_matches_per_column_fmmp() {
        // Spectral sweep vs the butterfly product: different algorithms,
        // same operator — agreement to solver tolerance, including the
        // p = 1/2 endpoint column.
        let nu = 9u32;
        let n = 1usize << nu;
        let ps = [0.001, 0.05, 0.17, 0.33, 0.5];
        let sweep = QSweep::new(nu, &ps);
        assert_eq!(sweep.columns(), ps.len());
        assert_eq!(sweep.len(), n);
        let mut slab = random_vector(n * ps.len(), 14);
        let want: Vec<f64> = slab
            .chunks_exact(n)
            .zip(&ps)
            .flat_map(|(col, &p)| {
                let mut c = col.to_vec();
                crate::fmmp::fmmp_in_place(&mut c, p);
                c
            })
            .collect();
        sweep.apply_batch(&mut slab);
        assert!(max_diff(&want, &slab) < 1e-12);
    }

    #[test]
    fn qsweep_flops_scale_with_columns() {
        let one = QSweep::new(8, &[0.1]).flops_estimate();
        let five = QSweep::new(8, &[0.1; 5]).flops_estimate();
        assert!((five / one - 5.0).abs() < 1e-12);
    }

    #[test]
    fn qsweep_selected_lanes_are_bit_identical_to_full_width() {
        // A compacted slab holding an arbitrary subset of the sweep's
        // columns (in arbitrary order) must reproduce the exact bits the
        // full-width batch computes for those columns.
        let nu = 8u32;
        let n = 1usize << nu;
        let ps = [0.003, 0.02, 0.09, 0.21, 0.37, 0.49];
        let sweep = QSweep::new(nu, &ps);
        let full_input = random_vector(n * ps.len(), 99);
        let mut full = full_input.clone();
        sweep.apply_batch(&mut full);
        for cols in [vec![0, 1, 2, 3, 4, 5], vec![4, 1, 5], vec![2], vec![5, 0]] {
            let mut compact: Vec<f64> = cols
                .iter()
                .flat_map(|&j| full_input[j * n..(j + 1) * n].to_vec())
                .collect();
            sweep.apply_batch_selected(&mut compact, &cols);
            for (lane, &j) in cols.iter().enumerate() {
                let got = &compact[lane * n..(lane + 1) * n];
                let want = &full[j * n..(j + 1) * n];
                for (g, w) in got.iter().zip(want) {
                    assert_eq!(g.to_bits(), w.to_bits(), "cols {cols:?} lane {lane}");
                }
            }
        }
    }

    #[test]
    #[should_panic(expected = "column index out of range")]
    fn qsweep_selected_rejects_out_of_range_columns() {
        let sweep = QSweep::new(4, &[0.1, 0.2]);
        let mut slab = vec![1.0; 16];
        sweep.apply_batch_selected(&mut slab, &[2]);
    }
}
