//! The standard dense matrix–vector product `Smvp`.
//!
//! `Smvp` materialises the full matrix (`Θ(N²)` storage!) and multiplies
//! row by row — the paper's baseline whose cost everything else is measured
//! against. Only feasible for small chain lengths (ν ≲ 13 fits a few
//! hundred MB); `Xmvp(ν)` plays the same role at `Θ(N)` storage for larger
//! ν (paper Section 1.2).

use crate::LinearOperator;
use qs_linalg::DenseMatrix;
use qs_mutation::MutationModel;

/// The dense product engine.
#[derive(Debug, Clone)]
pub struct Smvp {
    matrix: DenseMatrix,
}

impl Smvp {
    /// Wrap an explicit square matrix.
    ///
    /// # Panics
    ///
    /// Panics if the matrix is not square.
    pub fn new(matrix: DenseMatrix) -> Self {
        assert_eq!(
            matrix.rows(),
            matrix.cols(),
            "Smvp requires a square matrix"
        );
        Smvp { matrix }
    }

    /// Materialise a mutation model's `Q` (refuses chain lengths whose dense
    /// matrix would exceed ~2 GiB).
    ///
    /// # Panics
    ///
    /// Panics if `N² · 8` bytes would exceed the 2 GiB guard.
    pub fn from_model<M: MutationModel + ?Sized>(model: &M) -> Self {
        let n = model.len();
        assert!(
            n.checked_mul(n)
                .map(|e| e * 8)
                .is_some_and(|b| b <= 2 << 30),
            "dense Q for N = {n} exceeds the 2 GiB materialisation guard"
        );
        Smvp::new(model.dense())
    }

    /// Materialise `W = Q·F` for a mutation model and fitness diagonal.
    ///
    /// # Panics
    ///
    /// Panics on dimension mismatch or if the matrix would exceed the guard.
    pub fn w_from_model<M: MutationModel + ?Sized>(model: &M, fitness: &[f64]) -> Self {
        assert_eq!(fitness.len(), model.len(), "fitness length mismatch");
        let mut smvp = Self::from_model(model);
        // Right-multiplying by diag(f) scales column j by f_j.
        let n = smvp.matrix.rows();
        for i in 0..n {
            for (j, &fj) in fitness.iter().enumerate() {
                smvp.matrix[(i, j)] *= fj;
            }
        }
        smvp
    }

    /// Borrow the materialised matrix.
    pub fn matrix(&self) -> &DenseMatrix {
        &self.matrix
    }
}

impl LinearOperator for Smvp {
    fn len(&self) -> usize {
        self.matrix.rows()
    }

    fn apply_into(&self, x: &[f64], y: &mut [f64]) {
        self.matrix.matvec_into(x, y);
    }

    fn flops_estimate(&self) -> f64 {
        let n = self.len() as f64;
        2.0 * n * n
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fmmp::Fmmp;
    use crate::test_util::{max_diff, random_vector};
    use qs_mutation::Uniform;

    #[test]
    fn q_materialisation_matches_fmmp() {
        let (nu, p) = (6u32, 0.12);
        let smvp = Smvp::from_model(&Uniform::new(nu, p));
        let x = random_vector(1 << nu, 17);
        let fast = Fmmp::new(nu, p).apply(&x);
        let slow = smvp.apply(&x);
        assert!(max_diff(&fast, &slow) < 1e-13);
    }

    #[test]
    fn w_materialisation_applies_fitness_first() {
        let (nu, p) = (4u32, 0.05);
        let f: Vec<f64> = (0..16).map(|i| 1.0 + i as f64 / 7.0).collect();
        let w = Smvp::w_from_model(&Uniform::new(nu, p), &f);
        let x = random_vector(16, 23);
        // W·x = Q·(f∘x).
        let fx: Vec<f64> = f.iter().zip(&x).map(|(&a, &b)| a * b).collect();
        let want = Fmmp::new(nu, p).apply(&fx);
        assert!(max_diff(&want, &w.apply(&x)) < 1e-12);
    }

    #[test]
    #[should_panic(expected = "materialisation guard")]
    fn refuses_huge_models() {
        let _ = Smvp::from_model(&Uniform::new(20, 0.01));
    }

    #[test]
    #[should_panic(expected = "square")]
    fn rejects_rectangular() {
        let _ = Smvp::new(DenseMatrix::zeros(2, 3));
    }
}
