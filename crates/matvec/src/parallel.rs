//! Multi-threaded backend — the CPU stand-in for the paper's OpenCL/GPU
//! implementation (paper Section 4).
//!
//! The paper's Algorithm 2 reorganises each Fmmp stage into `N/2` entirely
//! independent butterflies indexed by a thread id
//! (`j = 2·ID − (ID & (i−1))`); the host loops over the `log₂ N` stages and
//! launches an `N/2`-thread kernel per stage. This module executes exactly
//! that decomposition on a work-stealing thread pool:
//!
//! * the whole multi-pass plan runs inside **one** scoped pool per apply
//!   (`workers − 1` helpers plus the calling thread working inline) with
//!   a chunk-stealing claim schedule — see [`crate::schedule`] — instead
//!   of a rayon fork–join per radix pass,
//! * each worker owns a contiguous, thread-affine span of every pass and
//!   steals leftovers round-robin only after draining its own range,
//! * transforms too small to give every worker
//!   [`schedule::MIN_WORKER_SPAN`] elements skip the pool entirely and
//!   run the serial kernels (identical arithmetic) — the fix for the
//!   small-ν join-storm regression the old per-pass joins exhibited,
//!
//! which preserves the paper's observation that the kernel is
//! memory-bandwidth bound and embarrassingly parallel within a stage.
//! The fused entry points plan their passes with a thread-count-aware
//! tile size ([`FusedPlan::with_tile`](fused::FusedPlan::with_tile)) so
//! the tiled pass always exposes at least one tile per worker. The staged
//! (non-fused) path runs the same schedule over one radix-2 pass per
//! stage, keeping it an honest baseline with the same threshold rules.
//! The fibre kernels themselves dispatch through [`crate::simd`], so the
//! serial and parallel paths share one ISA decision.
//!
//! [`Backend`] selects serial vs parallel execution so every solver and
//! benchmark can swap "CPU" and "GPU" implementations the way Figure 3/4 do.

use crate::fmmp::fmmp_stage;
use crate::fused::{self, HadamardButterfly, MixButterfly};
use crate::schedule::{self, run_schedule, SpanSchedule};
use crate::{time_stage, LinearOperator, Probe};
use qs_linalg::NeumaierSum;
use qs_telemetry::SolverEvent;
use rayon::prelude::*;

/// Execution backend: the paper benchmarks the same algorithms on a CPU
/// (serial reference) and a GPU (massively parallel); we substitute the GPU
/// with a work-stealing CPU pool exercising the identical per-stage
/// decomposition.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Backend {
    /// Single-threaded execution (the paper's "CPU" rows).
    Serial,
    /// Thread-pool execution of Algorithm 2's kernel decomposition (the
    /// paper's "GPU" rows).
    #[default]
    Parallel,
}

impl Backend {
    /// Human-readable label matching the paper's figure legends.
    pub fn label(&self) -> &'static str {
        match self {
            Backend::Serial => "CPU",
            Backend::Parallel => "GPU*", // substituted: thread pool
        }
    }
}

/// Minimum problem size (in butterflies) before the parallel *reduction*
/// helpers (`par_sum`, `par_dot`, `par_norm_l2`, `par_kron_in_place`)
/// engage; below this the fork/join overhead dominates the O(N) work.
/// The butterfly transforms use the stricter per-worker span threshold in
/// [`schedule::span_workers`] instead.
const PAR_THRESHOLD: usize = 1 << 12;

/// One parallel Fmmp stage at stride `i` — kept as a separate entry point
/// because the probed staged path times every stage individually. Serial
/// below the span threshold (the measured fix for the small-ν join
/// storm); otherwise a one-pass span schedule.
fn par_fmmp_stage(v: &mut [f64], i: usize, p: f64) {
    let workers = schedule::span_workers(v.len());
    if workers <= 1 {
        fmmp_stage(v, i, p);
        return;
    }
    let sched = SpanSchedule::for_stage(v.len(), workers, i);
    run_schedule(v, &sched, MixButterfly::new(p));
}

/// Smallest tile the thread-aware planner will shrink to; below this the
/// tile no longer covers enough stages to amortise its traversal.
const MIN_PAR_TILE: usize = 1 << 10;

/// Thread-count-aware fused pass plan for `workers` cooperating threads
/// (as chosen by [`schedule::span_workers`]).
///
/// The tiled pass parallelises over tiles, so the default 64 KiB tile
/// ([`fused::FUSED_TILE`]) starves wide pools on mid-sized vectors
/// (`n / tile < workers` leaves workers idle). Halve the tile until every
/// worker gets at least one, never below [`MIN_PAR_TILE`]. Any power-of-two
/// tile yields bit-identical results: regrouping stages into tiles never
/// changes the per-element arithmetic or its order.
pub(crate) fn par_plan(n: usize, workers: usize) -> fused::FusedPlan {
    let mut tile = fused::FUSED_TILE;
    while tile > MIN_PAR_TILE && n > tile && n / tile < workers {
        tile /= 2;
    }
    fused::FusedPlan::with_tile(n, 1, tile)
}

/// In-place parallel fused `v ← Q(ν)·v`: the cache-blocked radix-4/8 plan
/// of [`crate::fused`] executed by the chunk-stealing span schedule — one
/// scoped pool for all passes. Bit-for-bit identical to
/// [`par_fmmp_in_place`] and the serial paths.
///
/// # Panics
///
/// Panics if `v.len()` is not a power of two ≥ 2.
pub fn par_fmmp_in_place_fused(v: &mut [f64], p: f64) {
    let n = v.len();
    assert!(n.is_power_of_two() && n >= 2, "length must be 2^ν, ν ≥ 1");
    let workers = schedule::span_workers(n);
    if workers <= 1 {
        return fused::fmmp_in_place_fused(v, p);
    }
    let plan = par_plan(n, workers);
    let sched = SpanSchedule::for_fused(n, workers, plan.passes());
    run_schedule(v, &sched, MixButterfly::new(p));
}

/// In-place parallel fused unnormalised FWHT; see
/// [`par_fmmp_in_place_fused`].
///
/// # Panics
///
/// Panics if `v.len()` is not a power of two ≥ 2.
pub fn par_fwht_in_place_fused(v: &mut [f64]) {
    let n = v.len();
    assert!(n.is_power_of_two() && n >= 2, "length must be 2^ν, ν ≥ 1");
    let workers = schedule::span_workers(n);
    if workers <= 1 {
        return fused::fwht_in_place_fused(v);
    }
    let plan = par_plan(n, workers);
    let sched = SpanSchedule::for_fused(n, workers, plan.passes());
    run_schedule(v, &sched, HadamardButterfly);
}

/// In-place parallel `v ← Q(ν)·v`: one radix-2 pass per stage (the
/// paper's Algorithm 2 decomposition, un-fused) run by the span schedule
/// in a single scoped pool — ν passes, one pool, no per-stage join.
/// Serial below the span threshold.
///
/// # Panics
///
/// Panics if `v.len()` is not a power of two ≥ 2.
pub fn par_fmmp_in_place(v: &mut [f64], p: f64) {
    let n = v.len();
    assert!(n.is_power_of_two() && n >= 2, "length must be 2^ν, ν ≥ 1");
    let workers = schedule::span_workers(n);
    if workers <= 1 {
        return crate::fmmp::fmmp_in_place(v, p);
    }
    let sched = SpanSchedule::for_staged(n, workers);
    run_schedule(v, &sched, MixButterfly::new(p));
}

/// In-place parallel unnormalised FWHT (same staged decomposition with
/// the Hadamard butterfly; same schedule and threshold as
/// [`par_fmmp_in_place`]).
///
/// # Panics
///
/// Panics if `v.len()` is not a power of two ≥ 2.
pub fn par_fwht_in_place(v: &mut [f64]) {
    let n = v.len();
    assert!(n.is_power_of_two() && n >= 2, "length must be 2^ν, ν ≥ 1");
    let workers = schedule::span_workers(n);
    if workers <= 1 {
        return crate::fwht::fwht_in_place(v);
    }
    let sched = SpanSchedule::for_staged(n, workers);
    run_schedule(v, &sched, HadamardButterfly);
}

/// In-place parallel product with a mixed-radix Kronecker chain
/// `v ← (⊗ M_t)·v` (the general engine of paper Section 2.2 on the pool).
///
/// Inner factors expose many independent blocks (block-parallel); the
/// outermost factors have few blocks, so their passes copy each block once
/// and compute the `r` output rows in parallel from the copy — trading one
/// block-sized scratch for row-level parallelism, the same reorganisation
/// a GPU kernel for the chain would use.
///
/// # Panics
///
/// Panics if `v.len()` differs from the chain's total dimension.
pub fn par_kron_in_place(op: &crate::kron::KroneckerOp, v: &mut [f64]) {
    let n = op.len();
    assert_eq!(v.len(), n, "par_kron_in_place: length mismatch");
    if n < PAR_THRESHOLD {
        op.apply_in_place_impl(v);
        return;
    }
    let factors = op.factors_ref();
    let mut right = 1usize;
    for m in factors.iter().rev() {
        let r = m.rows();
        let block = r * right;
        let blocks = n / block;
        if blocks >= rayon::current_num_threads().max(2) {
            // Many independent blocks: serial fibre loop inside each.
            v.par_chunks_mut(block).for_each(|chunk| {
                let mut scratch = vec![0.0f64; r];
                for q in 0..right {
                    for (s, slot) in scratch.iter_mut().enumerate() {
                        *slot = chunk[q + s * right];
                    }
                    for i in 0..r {
                        let mut acc = 0.0;
                        for (a, &x) in m.row(i).iter().zip(&scratch) {
                            acc += a * x;
                        }
                        chunk[q + i * right] = acc;
                    }
                }
            });
        } else {
            // Few big blocks: copy each block once, then the r output rows
            // (contiguous, disjoint) are computed in parallel from the copy.
            for chunk in v.chunks_mut(block) {
                let snapshot = chunk.to_vec();
                chunk
                    .par_chunks_mut(right)
                    .enumerate()
                    .for_each(|(i, out_row)| {
                        let row = m.row(i);
                        for (q, o) in out_row.iter_mut().enumerate() {
                            let mut acc = 0.0;
                            for (j, &a) in row.iter().enumerate() {
                                acc += a * snapshot[q + j * right];
                            }
                            *o = acc;
                        }
                    });
            }
        }
        right = block;
    }
}

/// Number of worker threads the parallel backend actually runs on.
///
/// Bench bins record this next to their timings: a run with one thread
/// measures serial execution, and its throughput numbers must not be
/// read as parallel performance.
pub fn worker_threads() -> usize {
    rayon::current_num_threads()
}

/// Parallel compensated sum (per-chunk Neumaier partials merged on join) —
/// the "fast procedure for the summation of the components of a vector"
/// the paper notes the power iteration needs besides the matvec.
pub fn par_sum(x: &[f64]) -> f64 {
    if x.len() < PAR_THRESHOLD {
        return qs_linalg::sum(x);
    }
    x.par_chunks(PAR_THRESHOLD)
        .map(|chunk| {
            let mut acc = NeumaierSum::new();
            for &v in chunk {
                acc.add(v);
            }
            acc
        })
        .reduce(NeumaierSum::new, |mut a, b| {
            a.merge(&b);
            a
        })
        .value()
}

/// Parallel compensated dot product.
///
/// # Panics
///
/// Panics if the lengths differ.
pub fn par_dot(x: &[f64], y: &[f64]) -> f64 {
    assert_eq!(x.len(), y.len(), "par_dot: length mismatch");
    if x.len() < PAR_THRESHOLD {
        return qs_linalg::dot(x, y);
    }
    x.par_chunks(PAR_THRESHOLD)
        .zip(y.par_chunks(PAR_THRESHOLD))
        .map(|(cx, cy)| {
            let mut acc = NeumaierSum::new();
            for (&a, &b) in cx.iter().zip(cy) {
                acc.add(a * b);
            }
            acc
        })
        .reduce(NeumaierSum::new, |mut a, b| {
            a.merge(&b);
            a
        })
        .value()
}

/// Parallel L2 norm (scaled, compensated).
pub fn par_norm_l2(x: &[f64]) -> f64 {
    if x.len() < PAR_THRESHOLD {
        return qs_linalg::norm_l2(x);
    }
    let m = x
        .par_chunks(PAR_THRESHOLD)
        .map(qs_linalg::norm_linf)
        .reduce(|| 0.0, f64::max);
    if m == 0.0 {
        // `f64::max` ignores NaN, so an all-NaN slice reduces to m == 0;
        // propagate the NaN instead of reporting a zero norm.
        return if x.iter().any(|v| v.is_nan()) {
            f64::NAN
        } else {
            0.0
        };
    }
    if !m.is_finite() {
        return m;
    }
    let inv = 1.0 / m;
    let ss = x
        .par_chunks(PAR_THRESHOLD)
        .map(|chunk| {
            let mut acc = NeumaierSum::new();
            for &v in chunk {
                let s = v * inv;
                acc.add(s * s);
            }
            acc
        })
        .reduce(NeumaierSum::new, |mut a, b| {
            a.merge(&b);
            a
        })
        .value();
    m * ss.sqrt()
}

/// The parallel Fmmp engine as a [`LinearOperator`] for `Q(ν)`.
#[derive(Debug, Clone, Copy)]
pub struct ParFmmp {
    nu: u32,
    p: f64,
    fused: bool,
}

impl ParFmmp {
    /// Create the parallel operator for chain length `nu`, error rate `p`.
    ///
    /// # Panics
    ///
    /// Panics unless `ν ≥ 1` and `0 < p ≤ 1/2`.
    pub fn new(nu: u32, p: f64) -> Self {
        assert!(nu >= 1, "chain length must be at least 1");
        let _ = qs_bitseq::dimension(nu);
        assert!(
            p.is_finite() && p > 0.0 && p <= 0.5,
            "error rate must satisfy 0 < p ≤ 1/2"
        );
        ParFmmp {
            nu,
            p,
            fused: false,
        }
    }

    /// Create the fused parallel operator: the cache-blocked radix-4/8
    /// pass plan distributed over the pool. Bit-identical product.
    ///
    /// # Panics
    ///
    /// Panics unless `ν ≥ 1` and `0 < p ≤ 1/2`.
    pub fn fused(nu: u32, p: f64) -> Self {
        let mut op = Self::new(nu, p);
        op.fused = true;
        op
    }

    /// Error rate `p`.
    pub fn p(&self) -> f64 {
        self.p
    }
}

impl LinearOperator for ParFmmp {
    fn len(&self) -> usize {
        1usize << self.nu
    }

    fn apply_into(&self, x: &[f64], y: &mut [f64]) {
        assert_eq!(x.len(), self.len(), "apply_into: x length mismatch");
        assert_eq!(y.len(), self.len(), "apply_into: y length mismatch");
        y.copy_from_slice(x);
        self.apply_in_place(y);
    }

    fn apply_in_place(&self, v: &mut [f64]) {
        assert_eq!(v.len(), self.len(), "apply_in_place: length mismatch");
        if self.fused {
            par_fmmp_in_place_fused(v, self.p);
        } else {
            par_fmmp_in_place(v, self.p);
        }
    }

    fn flops_estimate(&self) -> f64 {
        // Same count for the staged and fused paths: fusion regroups
        // passes, the butterfly arithmetic is unchanged.
        let n = self.len() as f64;
        3.0 * n * self.nu as f64
    }

    fn apply_into_probed(&self, x: &[f64], y: &mut [f64], probe: &mut dyn Probe) {
        assert_eq!(x.len(), self.len(), "apply_into: x length mismatch");
        assert_eq!(y.len(), self.len(), "apply_into: y length mismatch");
        y.copy_from_slice(x);
        self.apply_in_place_probed(y, probe);
    }

    fn apply_in_place_probed(&self, v: &mut [f64], probe: &mut dyn Probe) {
        if !probe.enabled() {
            return self.apply_in_place(v);
        }
        assert_eq!(v.len(), self.len(), "apply_in_place: length mismatch");
        let n = v.len();
        let workers = schedule::span_workers(n);
        if self.fused {
            if workers <= 1 {
                probe.record(&SolverEvent::KernelDispatch {
                    isa: crate::simd::active().name(),
                    threads: 1,
                    spans: 1,
                });
                return time_stage(probe, "par-fmmp-fused-pass", || self.apply_in_place(v));
            }
            let plan = par_plan(n, workers);
            let full = SpanSchedule::for_fused(n, workers, plan.passes());
            probe.record(&SolverEvent::KernelDispatch {
                isa: crate::simd::active().name(),
                threads: workers,
                spans: full.total_units(),
            });
            let bf = MixButterfly::new(self.p);
            // Per-pass timing needs a barrier after each pass, so the
            // probed path runs one single-pass schedule per planned pass
            // (the unprobed path batches them all into one scope).
            for &pass in plan.passes() {
                let sub = SpanSchedule::for_fused(n, workers, std::slice::from_ref(&pass));
                time_stage(probe, "par-fmmp-fused-pass", || run_schedule(v, &sub, bf));
            }
            return;
        }
        let nu = n.trailing_zeros() as usize;
        let spans = if workers <= 1 {
            nu
        } else {
            SpanSchedule::for_staged(n, workers).total_units()
        };
        probe.record(&SolverEvent::KernelDispatch {
            isa: crate::simd::active().name(),
            threads: workers.max(1),
            spans,
        });
        let mut i = 1;
        while i <= n / 2 {
            time_stage(probe, "par-fmmp-stage", || par_fmmp_stage(v, i, self.p));
            i *= 2;
        }
    }

    fn apply_batch(&self, slab: &mut [f64]) {
        let n = self.len();
        assert!(
            !slab.is_empty() && slab.len() % n == 0,
            "apply_batch: slab must hold a whole number of vectors"
        );
        if slab.len() == n {
            return self.apply_in_place(slab);
        }
        if rayon::current_num_threads() == 1 {
            // No pool to fan columns out to: the column-blocked serial
            // batch kernel shares tile traversal across the batch instead.
            return fused::fmmp_batch_in_place(slab, slab.len() / n, self.p);
        }
        // Right-hand sides are independent: the best parallel decomposition
        // is one task per column, each running the serial fused kernel
        // (cache-blocked, no cross-thread traffic within a column).
        slab.par_chunks_mut(n)
            .for_each(|col| fused::fmmp_in_place_fused(col, self.p));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fmmp::fmmp_in_place;
    use crate::fwht::fwht_in_place;
    use crate::test_util::{max_diff, random_vector};

    #[test]
    fn parallel_fmmp_matches_serial_small() {
        // Below the threshold the serial path runs; above it, real forks.
        for nu in [4u32, 8, 14] {
            let p = 0.015;
            let x = random_vector(1 << nu, nu as u64);
            let mut serial = x.clone();
            fmmp_in_place(&mut serial, p);
            let mut parallel = x;
            par_fmmp_in_place(&mut parallel, p);
            assert!(
                max_diff(&serial, &parallel) < 1e-14,
                "ν={nu}: parallel ≠ serial"
            );
        }
    }

    #[test]
    fn parallel_fmmp_matches_serial_large() {
        // ν = 18 exercises both the block-parallel and the fibre-parallel
        // branches (late stages have < num_threads blocks).
        let nu = 18u32;
        let p = 0.01;
        let x = random_vector(1 << nu, 5);
        let mut serial = x.clone();
        fmmp_in_place(&mut serial, p);
        let mut parallel = x;
        par_fmmp_in_place(&mut parallel, p);
        assert!(max_diff(&serial, &parallel) < 1e-13);
    }

    #[test]
    fn parallel_fwht_matches_serial() {
        for nu in [6u32, 16] {
            let x = random_vector(1 << nu, 21);
            let mut serial = x.clone();
            fwht_in_place(&mut serial);
            let mut parallel = x;
            par_fwht_in_place(&mut parallel);
            assert!(max_diff(&serial, &parallel) < 1e-10, "ν={nu}");
        }
    }

    #[test]
    fn parallel_reductions_match_serial() {
        let x = random_vector(1 << 16, 3);
        let y = random_vector(1 << 16, 4);
        assert!((par_sum(&x) - qs_linalg::sum(&x)).abs() < 1e-10);
        assert!((par_dot(&x, &y) - qs_linalg::dot(&x, &y)).abs() < 1e-10);
        assert!((par_norm_l2(&x) - qs_linalg::norm_l2(&x)).abs() < 1e-10);
    }

    #[test]
    fn small_reductions_use_serial_path() {
        let x = [1.0, 2.0, 3.0];
        assert_eq!(par_sum(&x), 6.0);
        assert_eq!(par_dot(&x, &x), 14.0);
        assert_eq!(par_norm_l2(&[3.0, 4.0]), 5.0);
    }

    #[test]
    fn operator_wrapper_equivalence() {
        let op = ParFmmp::new(15, 0.02);
        let ser = crate::fmmp::Fmmp::new(15, 0.02);
        let x = random_vector(1 << 15, 8);
        assert!(max_diff(&op.apply(&x), &ser.apply(&x)) < 1e-13);
    }

    #[test]
    fn parallel_kron_matches_serial_binary_chain() {
        use qs_mutation::{MutationModel, Uniform};
        let model = Uniform::new(16, 0.03);
        let op = crate::kron::KroneckerOp::from_model(&model);
        let x = random_vector(1 << 16, 44);
        let mut serial = x.clone();
        op.apply_in_place_impl(&mut serial);
        let mut parallel = x;
        par_kron_in_place(&op, &mut parallel);
        assert!(max_diff(&serial, &parallel) < 1e-13);
        let _ = model.len();
    }

    #[test]
    fn parallel_kron_matches_serial_mixed_radix() {
        use qs_linalg::DenseMatrix;
        // 4 ⊗ 4 ⊗ … chain big enough to engage both parallel branches.
        let e = 0.02;
        let jc = DenseMatrix::from_fn(4, 4, |i, j| if i == j { 1.0 - 3.0 * e } else { e });
        let op = crate::kron::KroneckerOp::new(vec![jc; 8]); // 4^8 = 65536
        let x = random_vector(op.len(), 5);
        let mut serial = x.clone();
        op.apply_in_place_impl(&mut serial);
        let mut parallel = x;
        par_kron_in_place(&op, &mut parallel);
        assert!(max_diff(&serial, &parallel) < 1e-13);
    }

    #[test]
    fn parallel_kron_small_uses_serial_path() {
        use qs_linalg::DenseMatrix;
        let f = DenseMatrix::from_vec(2, 2, vec![0.9, 0.1, 0.1, 0.9]);
        let op = crate::kron::KroneckerOp::new(vec![f; 4]);
        let x = random_vector(16, 1);
        let mut a = x.clone();
        op.apply_in_place_impl(&mut a);
        let mut b = x;
        par_kron_in_place(&op, &mut b);
        assert!(max_diff(&a, &b) < 1e-15);
    }

    #[test]
    fn probed_parallel_apply_matches_plain() {
        use qs_telemetry::{RecordingProbe, SolverEvent};
        let nu = 14u32;
        let op = ParFmmp::new(nu, 0.02);
        let x = random_vector(1 << nu, 77);
        let plain = op.apply(&x);
        let mut rec = RecordingProbe::new();
        let mut probed = vec![0.0; 1 << nu];
        op.apply_into_probed(&x, &mut probed, &mut rec);
        assert_eq!(plain, probed);
        let timed = rec
            .events()
            .iter()
            .filter(|e| {
                matches!(
                    e,
                    SolverEvent::MatvecTimed {
                        stage: "par-fmmp-stage",
                        ..
                    }
                )
            })
            .count();
        assert_eq!(timed, nu as usize);
        // The dispatch decision (ISA + worker count + span grain) is
        // reported exactly once per probed apply.
        let dispatches = rec
            .events()
            .iter()
            .filter(|e| matches!(e, SolverEvent::KernelDispatch { .. }))
            .count();
        assert_eq!(dispatches, 1);
    }

    #[test]
    fn parallel_fused_matches_serial_reference() {
        // ν = 18 exercises the tiled pass, block-parallel fused passes and
        // the scarce-blocks fibre fallback; equality is exact because the
        // fused arithmetic is per-element identical.
        for nu in [4u32, 13, 18] {
            let p = 0.021;
            let x = random_vector(1 << nu, 60 + nu as u64);
            let mut serial = x.clone();
            fmmp_in_place(&mut serial, p);
            let mut fusedv = x.clone();
            par_fmmp_in_place_fused(&mut fusedv, p);
            assert_eq!(serial, fusedv, "fmmp ν={nu}");

            let mut serial = x.clone();
            fwht_in_place(&mut serial);
            let mut fusedv = x;
            par_fwht_in_place_fused(&mut fusedv);
            assert_eq!(serial, fusedv, "fwht ν={nu}");
        }
    }

    #[test]
    fn fused_operator_probed_matches_and_counts_passes() {
        use qs_telemetry::{RecordingProbe, SolverEvent};
        let nu = 15u32;
        let op = ParFmmp::fused(nu, 0.02);
        let reference = ParFmmp::new(nu, 0.02);
        let x = random_vector(1 << nu, 19);
        assert_eq!(op.apply(&x), reference.apply(&x));
        assert_eq!(op.flops_estimate(), reference.flops_estimate());

        let mut rec = RecordingProbe::new();
        let mut probed = vec![0.0; 1 << nu];
        op.apply_into_probed(&x, &mut probed, &mut rec);
        assert_eq!(op.apply(&x), probed);
        let passes = rec
            .events()
            .iter()
            .filter(|e| {
                matches!(
                    e,
                    SolverEvent::MatvecTimed {
                        stage: "par-fmmp-fused-pass",
                        ..
                    }
                )
            })
            .count();
        // Below the span threshold the whole serial apply is one timed
        // pass; above it, one event per planned pass.
        let workers = schedule::span_workers(1 << nu);
        let expected = if workers <= 1 {
            1
        } else {
            par_plan(1 << nu, workers).passes().len()
        };
        assert_eq!(passes, expected);
        assert!(passes < nu as usize);
        let dispatch = rec
            .events()
            .iter()
            .find_map(|e| match e {
                SolverEvent::KernelDispatch { isa, threads, .. } => Some((*isa, *threads)),
                _ => None,
            })
            .expect("probed fused apply must report its dispatch");
        assert_eq!(dispatch.0, crate::simd::active().name());
        assert_eq!(dispatch.1, workers.max(1));
    }

    #[test]
    fn par_apply_batch_equals_independent_applies() {
        let nu = 12u32;
        let k = 6usize;
        let op = ParFmmp::new(nu, 0.07);
        let mut slab = random_vector((1 << nu) * k, 23);
        let mut want = slab.clone();
        for col in want.chunks_exact_mut(1 << nu) {
            op.apply_in_place(col);
        }
        op.apply_batch(&mut slab);
        assert_eq!(want, slab);
    }

    #[test]
    fn backend_labels() {
        assert_eq!(Backend::Serial.label(), "CPU");
        assert_eq!(Backend::Parallel.label(), "GPU*");
        assert_eq!(Backend::default(), Backend::Parallel);
    }
}
