//! Finite-population stochastic dynamics for the quasispecies model.
//!
//! The deterministic quasispecies (the dominant eigenvector of `W = Q·F`)
//! is the infinite-population limit. Real virus populations are finite,
//! and the error-threshold literature the paper builds on (Nowak &
//! Schuster \[11\]) studies exactly the finite-`M` corrections: sampling
//! noise lowers the effective threshold and can lose the master sequence
//! entirely.
//!
//! This crate implements the standard **Wright–Fisher** model with
//! selection and mutation: each generation, `M` offspring independently
//! (a) choose a parent with probability proportional to `f_i·n_i` and
//! (b) mutate every site independently with probability `p` — precisely
//! the stochastic process whose expectation dynamics is paper Eq. 1. As
//! `M → ∞` the genotype frequencies converge to the deterministic
//! quasispecies, which the integration tests verify against the spectral
//! solver.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod wright_fisher;

pub use wright_fisher::{WrightFisher, WrightFisherOptions};
