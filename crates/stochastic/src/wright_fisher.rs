//! The Wright–Fisher process with selection and mutation.

use qs_landscape::Landscape;
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha12Rng;

/// Options for a [`WrightFisher`] simulation.
#[derive(Debug, Clone, Copy)]
pub struct WrightFisherOptions {
    /// Population size `M` (number of individuals resampled each
    /// generation).
    pub population: usize,
    /// Per-site mutation probability `p ∈ [0, 1/2]`.
    pub p: f64,
    /// RNG seed; runs are fully reproducible.
    pub seed: u64,
    /// When `false`, mutation is one-way (`0 → 1` only: deleterious,
    /// irreversible). This is the Muller's-ratchet regime of the
    /// finite-population threshold literature the paper cites (\[11\],
    /// "…mutation frequencies and the onset of Muller's ratchet"): without
    /// back mutation, small populations stochastically lose their
    /// least-loaded class, one irreversible "click" at a time.
    pub back_mutation: bool,
}

impl Default for WrightFisherOptions {
    fn default() -> Self {
        WrightFisherOptions {
            population: 10_000,
            p: 0.01,
            seed: 42,
            back_mutation: true,
        }
    }
}

/// A Wright–Fisher population over the sequence space `{0,1}^ν`.
#[derive(Debug, Clone)]
pub struct WrightFisher {
    nu: u32,
    fitness: Vec<f64>,
    counts: Vec<u64>,
    opts: WrightFisherOptions,
    rng: ChaCha12Rng,
    generation: u64,
    // Reusable buffers.
    cumulative: Vec<f64>,
    next_counts: Vec<u64>,
}

impl WrightFisher {
    /// Create a population on the given landscape, initially monomorphic
    /// for the master sequence `X_0` (the paper's initial condition
    /// `x_0 = 1`).
    ///
    /// # Panics
    ///
    /// Panics on an empty population, `p ∉ [0, 1/2]`, or a landscape too
    /// large to materialise.
    pub fn new<L: Landscape + ?Sized>(landscape: &L, opts: WrightFisherOptions) -> Self {
        assert!(opts.population > 0, "population must be positive");
        assert!(
            (0.0..=0.5).contains(&opts.p),
            "mutation probability must lie in [0, 1/2]"
        );
        let fitness = landscape.materialize();
        let n = fitness.len();
        let mut counts = vec![0u64; n];
        counts[0] = opts.population as u64;
        let rng = ChaCha12Rng::seed_from_u64(opts.seed);
        WrightFisher {
            nu: landscape.nu(),
            fitness,
            counts,
            opts,
            rng,
            generation: 0,
            cumulative: vec![0.0; n],
            next_counts: vec![0u64; n],
        }
    }

    /// Chain length ν.
    pub fn nu(&self) -> u32 {
        self.nu
    }

    /// Generations simulated so far.
    pub fn generation(&self) -> u64 {
        self.generation
    }

    /// Current genotype counts (sums to the population size).
    pub fn counts(&self) -> &[u64] {
        &self.counts
    }

    /// Current genotype frequencies.
    pub fn frequencies(&self) -> Vec<f64> {
        let m = self.opts.population as f64;
        self.counts.iter().map(|&c| c as f64 / m).collect()
    }

    /// Population mean fitness `Σ f_i·n_i / M`.
    pub fn mean_fitness(&self) -> f64 {
        let mut acc = qs_linalg::NeumaierSum::new();
        for (&f, &c) in self.fitness.iter().zip(&self.counts) {
            if c > 0 {
                acc.add(f * c as f64);
            }
        }
        acc.value() / self.opts.population as f64
    }

    /// Cumulative error-class concentrations of the current population.
    pub fn class_concentrations(&self) -> Vec<f64> {
        qs_bitseq::accumulate_classes(&self.frequencies())
    }

    /// Seed the population from explicit counts.
    ///
    /// # Panics
    ///
    /// Panics if the counts do not sum to the population size or the
    /// length mismatches.
    pub fn set_counts(&mut self, counts: Vec<u64>) {
        assert_eq!(counts.len(), self.counts.len(), "counts length mismatch");
        let total: u64 = counts.iter().sum();
        assert_eq!(
            total, self.opts.population as u64,
            "counts must sum to the population size"
        );
        self.counts = counts;
    }

    /// Advance one Wright–Fisher generation: fitness-proportional parent
    /// sampling followed by independent per-site mutation.
    pub fn step(&mut self) {
        let n = self.counts.len();
        // Cumulative selection weights w_i = f_i·n_i.
        let mut acc = 0.0f64;
        for i in 0..n {
            acc += self.fitness[i] * self.counts[i] as f64;
            self.cumulative[i] = acc;
        }
        let total = acc;
        debug_assert!(total > 0.0, "population died out");

        self.next_counts.fill(0);
        let m = self.opts.population;
        let p = self.opts.p;
        for _ in 0..m {
            // Parent: inverse-CDF sampling by binary search.
            let u = self.rng.random::<f64>() * total;
            let parent = self.cumulative.partition_point(|&c| c <= u).min(n - 1);
            // Mutation: flip each site independently. For small p·ν skip
            // ahead geometrically instead of testing all ν sites.
            let mut child = parent as u64;
            if p > 0.0 {
                let mut site = 0u32;
                loop {
                    // Next mutating site at geometric distance.
                    let u: f64 = self.rng.random();
                    let skip = if p >= 1.0 {
                        0.0
                    } else {
                        (1.0 - u).ln() / (1.0 - p).ln()
                    };
                    site += skip as u32;
                    if site >= self.nu {
                        break;
                    }
                    if self.opts.back_mutation || child >> site & 1 == 0 {
                        child ^= 1u64 << site;
                    }
                    site += 1;
                }
            }
            self.next_counts[child as usize] += 1;
        }
        std::mem::swap(&mut self.counts, &mut self.next_counts);
        self.generation += 1;
    }

    /// Run `generations` steps.
    pub fn run(&mut self, generations: u64) {
        for _ in 0..generations {
            self.step();
        }
    }

    /// The least-loaded class currently present: the minimum Hamming
    /// weight over genotypes with non-zero count. Under one-way mutation
    /// this can only increase — each increase is a Muller's-ratchet
    /// "click".
    pub fn least_loaded_class(&self) -> u32 {
        self.counts
            .iter()
            .enumerate()
            .filter(|&(_, &c)| c > 0)
            .map(|(i, _)| (i as u64).count_ones())
            .min()
            .expect("population is never empty")
    }

    /// Run `burn_in` discard generations, then average frequencies over
    /// `samples` further generations — the stochastic estimate of the
    /// stationary distribution.
    pub fn stationary_estimate(&mut self, burn_in: u64, samples: u64) -> Vec<f64> {
        assert!(samples > 0, "at least one sample generation required");
        self.run(burn_in);
        let n = self.counts.len();
        let mut acc = vec![0.0f64; n];
        for _ in 0..samples {
            self.step();
            for (a, &c) in acc.iter_mut().zip(&self.counts) {
                *a += c as f64;
            }
        }
        let norm = samples as f64 * self.opts.population as f64;
        for a in &mut acc {
            *a /= norm;
        }
        acc
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qs_landscape::SinglePeak;

    fn options(p: f64, m: usize, seed: u64) -> WrightFisherOptions {
        WrightFisherOptions {
            population: m,
            p,
            seed,
            back_mutation: true,
        }
    }

    #[test]
    fn population_size_is_conserved() {
        let landscape = SinglePeak::new(6, 2.0, 1.0);
        let mut wf = WrightFisher::new(&landscape, options(0.02, 500, 1));
        for _ in 0..50 {
            wf.step();
            let total: u64 = wf.counts().iter().sum();
            assert_eq!(total, 500);
        }
        assert_eq!(wf.generation(), 50);
    }

    #[test]
    fn reproducible_from_seed() {
        let landscape = SinglePeak::new(5, 2.0, 1.0);
        let mut a = WrightFisher::new(&landscape, options(0.03, 300, 9));
        let mut b = WrightFisher::new(&landscape, options(0.03, 300, 9));
        a.run(20);
        b.run(20);
        assert_eq!(a.counts(), b.counts());
    }

    #[test]
    fn zero_mutation_preserves_monomorphic_master() {
        let landscape = SinglePeak::new(6, 2.0, 1.0);
        let mut wf = WrightFisher::new(&landscape, options(0.0, 200, 3));
        wf.run(30);
        assert_eq!(wf.counts()[0], 200);
        assert_eq!(wf.mean_fitness(), 2.0);
    }

    #[test]
    fn selection_fixes_the_fittest_without_mutation() {
        // Start 50/50 master vs a deleterious genotype; selection alone
        // must fix the master (in a finite time, overwhelmingly likely
        // with fitness ratio 2 and M = 400).
        let landscape = SinglePeak::new(5, 2.0, 1.0);
        let mut wf = WrightFisher::new(&landscape, options(0.0, 400, 5));
        let mut counts = vec![0u64; 32];
        counts[0] = 200;
        counts[7] = 200;
        wf.set_counts(counts);
        wf.run(200);
        assert_eq!(wf.counts()[0], 400, "master failed to fix");
    }

    #[test]
    fn mutation_spreads_the_cloud() {
        let landscape = SinglePeak::new(8, 2.0, 1.0);
        let mut wf = WrightFisher::new(&landscape, options(0.02, 2_000, 7));
        wf.run(100);
        let gamma = wf.class_concentrations();
        // Mutation–selection balance: master still common, cloud present.
        assert!(gamma[0] > 0.3, "[Γ₀] = {}", gamma[0]);
        assert!(gamma[1] > 0.05, "[Γ₁] = {}", gamma[1]);
        let total: f64 = gamma.iter().sum();
        assert!((total - 1.0).abs() < 1e-12);
    }

    #[test]
    fn large_population_matches_deterministic_quasispecies() {
        // The infinite-population limit is the spectral solution; with
        // M = 20 000 and time averaging the class profile should match to
        // a couple of percent.
        let nu = 6u32;
        let p = 0.02;
        let landscape = SinglePeak::new(nu, 2.0, 1.0);
        let mut wf = WrightFisher::new(&landscape, options(p, 20_000, 11));
        let est = wf.stationary_estimate(200, 300);
        let est_gamma = qs_bitseq::accumulate_classes(&est);

        let det =
            quasispecies::solve(p, &landscape, &quasispecies::SolverConfig::default()).unwrap();
        let det_gamma = det.error_class_concentrations();
        for (k, (&a, &b)) in est_gamma.iter().zip(&det_gamma).enumerate() {
            assert!(
                (a - b).abs() < 0.02,
                "[Γ_{k}]: stochastic {a:.4} vs deterministic {b:.4}"
            );
        }
    }

    #[test]
    fn small_population_loses_the_master_past_threshold() {
        // Far above the deterministic threshold the master class carries
        // no excess concentration; the finite population behaves randomly.
        let nu = 10u32;
        let landscape = SinglePeak::new(nu, 2.0, 1.0);
        let mut wf = WrightFisher::new(&landscape, options(0.2, 1_000, 13));
        wf.run(200);
        let freq = wf.frequencies();
        // Master frequency near the uniform level, not near dominance.
        assert!(freq[0] < 0.05, "x₀ = {} should have collapsed", freq[0]);
    }

    #[test]
    fn geometric_site_skipping_matches_expected_rate() {
        // Empirical per-site mutation rate over many offspring ≈ p.
        let nu = 16u32;
        let landscape = qs_landscape::Tabulated::new(vec![1.0; 1 << nu]);
        let p = 0.05;
        let mut wf = WrightFisher::new(&landscape, options(p, 20_000, 17));
        wf.step();
        // All parents are the master (counts started monomorphic), so the
        // offspring weight distribution is Binomial(ν, p) per individual.
        let mean_weight: f64 = wf
            .counts()
            .iter()
            .enumerate()
            .map(|(i, &c)| (i as u64).count_ones() as f64 * c as f64)
            .sum::<f64>()
            / 20_000.0;
        let expected = nu as f64 * p;
        assert!(
            (mean_weight - expected).abs() < 0.05 * expected.max(1.0),
            "mean mutations {mean_weight} vs expected {expected}"
        );
    }

    #[test]
    fn mullers_ratchet_clicks_in_small_populations() {
        // One-way deleterious mutation, multiplicative fitness, tiny
        // population: the least-loaded class is lost irreversibly — the
        // ratchet of the paper's reference [11].
        let nu = 16u32;
        let landscape = qs_landscape::Multiplicative::uniform_deleterious(nu, 1.0, 0.02);
        let mut wf = WrightFisher::new(
            &landscape,
            WrightFisherOptions {
                population: 50,
                p: 0.03,
                seed: 31,
                back_mutation: false,
            },
        );
        assert_eq!(wf.least_loaded_class(), 0);
        let mut history = Vec::new();
        for _ in 0..400 {
            wf.step();
            history.push(wf.least_loaded_class());
        }
        // Monotone non-decreasing (irreversibility of the ratchet)…
        for w in history.windows(2) {
            assert!(w[1] >= w[0], "ratchet ran backwards: {} → {}", w[0], w[1]);
        }
        // …and it actually clicked several times in 400 generations.
        let clicks = *history.last().unwrap();
        assert!(clicks >= 2, "only {clicks} clicks — parameters too gentle");
    }

    #[test]
    fn large_population_resists_the_ratchet() {
        // Same one-way regime, much larger population: selection maintains
        // the least-loaded class over the same horizon.
        let nu = 16u32;
        let landscape = qs_landscape::Multiplicative::uniform_deleterious(nu, 1.0, 0.2);
        let mut wf = WrightFisher::new(
            &landscape,
            WrightFisherOptions {
                population: 20_000,
                p: 0.002,
                seed: 31,
                back_mutation: false,
            },
        );
        wf.run(150);
        assert_eq!(
            wf.least_loaded_class(),
            0,
            "ratchet clicked despite strong selection and large M"
        );
    }

    #[test]
    fn one_way_mutation_never_decreases_weight_without_selection() {
        // Neutral fitness + one-way mutation: mean weight is monotone
        // non-decreasing in expectation; check the min-weight class never
        // drops (it cannot, structurally).
        let nu = 10u32;
        let landscape = qs_landscape::Tabulated::new(vec![1.0; 1 << nu]);
        let mut wf = WrightFisher::new(
            &landscape,
            WrightFisherOptions {
                population: 200,
                p: 0.05,
                seed: 8,
                back_mutation: false,
            },
        );
        let mut prev = wf.least_loaded_class();
        for _ in 0..100 {
            wf.step();
            let now = wf.least_loaded_class();
            assert!(now >= prev);
            prev = now;
        }
        assert!(prev > 0, "pure one-way mutation must accumulate load");
    }

    #[test]
    #[should_panic(expected = "must sum to the population size")]
    fn set_counts_validates_total() {
        let landscape = SinglePeak::new(4, 2.0, 1.0);
        let mut wf = WrightFisher::new(&landscape, options(0.01, 100, 1));
        wf.set_counts(vec![1; 16]);
    }
}
