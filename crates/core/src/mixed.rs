//! Mixed-precision solving: a single-precision power-iteration pass
//! followed by double-precision refinement.
//!
//! The paper's conclusions list "approximative strategies for a fast
//! matrix vector product" as future work; on the bandwidth-bound hardware
//! it benchmarks, the classic such strategy is precision reduction — an
//! `f32` butterfly moves half the bytes per stage. Single precision alone
//! cannot reach the paper's `τ = 10⁻¹⁵` accuracy regime, so this module
//! implements *iterative refinement*: iterate in `f32` until the residual
//! saturates near single-precision round-off (~1e-6), then hand the
//! iterate to the standard `f64` power iteration as a warm start. The
//! final accuracy is full `f64`; the `f64` iteration count shrinks by
//! roughly the iterations the `f32` pass absorbed.

use crate::power::{power_iteration, PowerOptions};
use crate::result::{Quasispecies, SolveStats};
use crate::solver::SolveError;
use qs_landscape::Landscape;
use qs_matvec::{conservative_shift, fmmp::fmmp_in_place_f32, Fmmp, Formulation, WOperator};

/// Options for [`solve_mixed_precision`].
#[derive(Debug, Clone, Copy)]
pub struct MixedOptions {
    /// Final (double-precision) residual tolerance.
    pub tol: f64,
    /// Residual level at which the `f32` pass stops (don't set much below
    /// ~1e-6: single precision cannot go further and the pass would stall).
    pub f32_tol: f32,
    /// Iteration caps for the two passes.
    pub max_iter_f32: usize,
    /// Iteration budget for the refinement pass.
    pub max_iter_f64: usize,
    /// Apply the paper's conservative shift in both passes.
    pub shifted: bool,
}

impl Default for MixedOptions {
    fn default() -> Self {
        MixedOptions {
            tol: 1e-13,
            f32_tol: 1e-5,
            max_iter_f32: 10_000,
            max_iter_f64: 100_000,
            shifted: true,
        }
    }
}

/// Diagnostics of a mixed-precision solve.
#[derive(Debug, Clone, Copy)]
pub struct MixedStats {
    /// Iterations spent in the single-precision pass.
    pub f32_iterations: usize,
    /// Iterations spent in the double-precision refinement.
    pub f64_iterations: usize,
}

/// Solve the quasispecies problem for the uniform model with a
/// single-precision pass plus double-precision refinement.
///
/// # Errors
///
/// [`SolveError::NotConverged`] if the refinement pass fails to reach
/// `tol`.
pub fn solve_mixed_precision<L: Landscape + ?Sized>(
    p: f64,
    landscape: &L,
    opts: &MixedOptions,
) -> Result<(Quasispecies, MixedStats), SolveError> {
    let nu = landscape.nu();
    let n = landscape.len();
    let fitness = landscape.materialize();
    let mu = if opts.shifted {
        conservative_shift(nu, p, landscape.f_min())
    } else {
        0.0
    };

    // --- f32 pass: power iteration on W = Q·F entirely in single precision.
    let f32_fitness: Vec<f32> = fitness.iter().map(|&f| f as f32).collect();
    let p32 = p as f32;
    let mu32 = mu as f32;
    let mut x: Vec<f32> = f32_fitness.clone();
    let norm: f32 = x.iter().map(|v| v * v).sum::<f32>().sqrt();
    for v in &mut x {
        *v /= norm;
    }
    let mut y = vec![0.0f32; n];
    let mut f32_iterations = 0usize;
    while f32_iterations < opts.max_iter_f32 {
        f32_iterations += 1;
        // y = (QF − µI)x in f32.
        for ((yi, &xi), &fi) in y.iter_mut().zip(&x).zip(&f32_fitness) {
            *yi = fi * xi;
        }
        fmmp_in_place_f32(&mut y, p32);
        if mu32 != 0.0 {
            for (yi, &xi) in y.iter_mut().zip(&x) {
                *yi -= mu32 * xi;
            }
        }
        let lambda: f32 = x.iter().zip(&y).map(|(&a, &b)| a * b).sum();
        let mut res2 = 0.0f32;
        for (&yi, &xi) in y.iter().zip(&x) {
            let r = yi - lambda * xi;
            res2 += r * r;
        }
        let ny: f32 = y.iter().map(|v| v * v).sum::<f32>().sqrt();
        assert!(ny > 0.0, "f32 iterate collapsed");
        for (xi, &yi) in x.iter_mut().zip(&y) {
            *xi = yi / ny;
        }
        if res2.sqrt() <= opts.f32_tol {
            break;
        }
    }

    // --- f64 refinement: warm-start the standard solver.
    let warm: Vec<f64> = x.iter().map(|&v| v as f64).collect();
    let w = WOperator::new(Fmmp::new(nu, p), fitness.clone(), Formulation::Right);
    let out = power_iteration(
        &w,
        &warm,
        &PowerOptions {
            tol: opts.tol,
            max_iter: opts.max_iter_f64,
            shift: mu,
            parallel_reductions: false,
            stall_window: None,
            deadline: None,
            compact_threshold: 0.0,
        },
    );
    if !out.converged {
        return Err(SolveError::NotConverged {
            iterations: out.iterations,
            residual: out.residual,
        });
    }
    let stats = SolveStats {
        iterations: f32_iterations + out.iterations,
        matvecs: f32_iterations + out.matvecs,
        residual: out.residual,
        converged: true,
        engine: "Fmmp-mixed(f32→f64)".into(),
        method: if mu != 0.0 { "Pi+shift" } else { "Pi" }.into(),
        shift: mu,
        degraded: false,
        recovered_from: None,
        deadline_expired: false,
        residual_history: None,
        warm_start: None,
    };
    Ok((
        Quasispecies::from_right_eigenvector(out.lambda, out.vector, stats),
        MixedStats {
            f32_iterations,
            f64_iterations: out.iterations,
        },
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::solver::{solve, SolverConfig};
    use qs_landscape::Random;

    #[test]
    fn matches_full_precision_solution() {
        let nu = 9u32;
        let p = 0.01;
        let landscape = Random::new(nu, 5.0, 1.0, 400);
        let (mixed, stats) =
            solve_mixed_precision(p, &landscape, &MixedOptions::default()).unwrap();
        let full = solve(p, &landscape, &SolverConfig::default()).unwrap();
        assert!(
            (mixed.lambda - full.lambda).abs() < 1e-10,
            "{} vs {}",
            mixed.lambda,
            full.lambda
        );
        for (a, b) in mixed.concentrations.iter().zip(&full.concentrations) {
            assert!((a - b).abs() < 1e-9);
        }
        assert!(stats.f32_iterations > 0);
    }

    #[test]
    fn refinement_needs_fewer_f64_iterations_than_cold_start() {
        let nu = 10u32;
        let p = 0.01;
        let landscape = Random::new(nu, 5.0, 1.0, 77);
        let (_, stats) = solve_mixed_precision(p, &landscape, &MixedOptions::default()).unwrap();
        let cold = solve(p, &landscape, &SolverConfig::default()).unwrap();
        assert!(
            stats.f64_iterations < cold.stats.iterations,
            "warm {} !< cold {}",
            stats.f64_iterations,
            cold.stats.iterations
        );
        // The f32 pass only delivers ~7 digits: refinement must still do
        // *some* double-precision work to reach 1e-13.
        assert!(stats.f64_iterations >= 1);
    }

    #[test]
    fn unshifted_variant_also_converges() {
        let landscape = Random::new(8, 5.0, 1.0, 3);
        let (qs, _) = solve_mixed_precision(
            0.02,
            &landscape,
            &MixedOptions {
                shifted: false,
                ..Default::default()
            },
        )
        .unwrap();
        assert!(qs.stats.converged);
        assert_eq!(qs.stats.shift, 0.0);
        let total: f64 = qs.concentrations.iter().sum();
        assert!((total - 1.0).abs() < 1e-12);
    }

    #[test]
    fn f32_pass_respects_its_cap() {
        let landscape = Random::new(8, 5.0, 1.0, 9);
        let (_, stats) = solve_mixed_precision(
            0.01,
            &landscape,
            &MixedOptions {
                max_iter_f32: 2,
                ..Default::default()
            },
        )
        .unwrap();
        assert_eq!(stats.f32_iterations, 2);
    }
}
