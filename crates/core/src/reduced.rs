//! The exact `(ν+1)×(ν+1)` reduction for error-class landscapes
//! (paper Section 5.1).
//!
//! For landscapes of the form `f_i = ϕ(d_H(i,0))`, Lemma 2 shows `W = Q·F`
//! maps error-class vectors to error-class vectors, so the dominant
//! eigenvector *is* an error-class vector and the `N×N` problem collapses
//! — exactly, not approximately — to the `(ν+1)×(ν+1)` problem
//!
//! ```text
//! v̄Γ_d = Σ_k QΓ_{d,k} · ϕ(k) · vΓ_k,
//! ```
//!
//! whose eigenvector `vΓ` holds the concentration of one *representative*
//! per class. Cumulative class concentrations follow by the paper's
//! rescaling
//!
//! ```text
//! [Γ_k] = C(ν,k)·vΓ_k / Σ_j C(ν,j)·vΓ_j.
//! ```
//!
//! Numerically the eigen**value** comes from a similarity transform that
//! makes the reduced operator symmetric (using the detailed-balance
//! relation `C(ν,d)·QΓ_{d,k} = C(ν,k)·QΓ_{k,d}` inherited from the symmetry
//! of `Q`) followed by the dense Jacobi eigensolver — "a standard solver
//! for a small matrix", exactly as the paper prescribes. The
//! eigen**vector**, however, is extracted in the *class-mass basis*
//! `u_k = C(ν,k)·vΓ_k` via inverse iteration: un-symmetrising the Jacobi
//! eigenvector would multiply its ~1 ulp noise floor by `√C(ν,k)` (≈ 2^{ν/2}
//! at the middle class), which silently destroys every digit of `[Γ_k]`
//! for ν ≳ 60. In the class-mass basis the operator
//! `B_{d,k} = QΓ_{k,d}·ϕ(k)` has entries bounded by `max ϕ` and the
//! computed `u` *is* the class-concentration profile, so the reduction
//! stays exact-to-rounding at ν = 200 and beyond.

use crate::result::{Quasispecies, SolveStats};
use qs_linalg::{jacobi_eigen, DenseMatrix, Lu};
use qs_mutation::reduced::reduced_matrix;

/// The solved reduced problem.
#[derive(Debug, Clone)]
pub struct ReducedQuasispecies {
    /// Chain length ν.
    pub nu: u32,
    /// Error rate p.
    pub p: f64,
    /// Dominant eigenvalue λ₀ (identical to the full problem's).
    pub lambda: f64,
    /// Representative concentrations `vΓ_k` (one molecule of class `Γ_k`),
    /// normalised so `Σ_k C(ν,k)·vΓ_k = 1` — i.e. the full eigenvector
    /// sums to 1.
    pub representative: Vec<f64>,
    /// Cumulative class concentrations `[Γ_k]`.
    pub classes: Vec<f64>,
}

impl ReducedQuasispecies {
    /// Concentration of an individual sequence `i` (every member of a class
    /// shares its representative's concentration).
    pub fn concentration(&self, i: u64) -> f64 {
        self.representative[i.count_ones() as usize]
    }

    /// Expand into a full [`Quasispecies`] solution of dimension `2^ν`
    /// (only sensible for moderate ν).
    ///
    /// # Panics
    ///
    /// Panics if `2^ν` overflows the supported dimension.
    pub fn expand(&self) -> Quasispecies {
        let n = qs_bitseq::dimension(self.nu);
        let x: Vec<f64> = (0..n as u64).map(|i| self.concentration(i)).collect();
        Quasispecies::from_right_eigenvector(
            self.lambda,
            x,
            SolveStats {
                iterations: 0,
                matvecs: 0,
                residual: 0.0,
                converged: true,
                engine: "reduced(5.1)".into(),
                method: "Jacobi".into(),
                shift: 0.0,
                degraded: false,
                recovered_from: None,
                deadline_expired: false,
                residual_history: None,
                warm_start: None,
            },
        )
    }
}

/// Solve the quasispecies problem **exactly** for an error-class landscape
/// given by its class-fitness profile `phi[k] = ϕ(k)`, `k = 0..=ν`.
///
/// Cost: `O(ν²)` to build the reduced matrix plus `O(ν³)` for the dense
/// eigensolve — independent of `N = 2^ν`, which is what lets Figure 1 be
/// produced at ν = 20 (or ν = 1000) instantly.
///
/// # Panics
///
/// Panics unless `phi.len() == ν+1` with positive entries and
/// `0 < p ≤ 1/2`.
pub fn solve_error_class(nu: u32, p: f64, phi: &[f64]) -> ReducedQuasispecies {
    assert_eq!(phi.len(), nu as usize + 1, "phi must have ν+1 entries");
    assert!(
        phi.iter().all(|f| f.is_finite() && *f > 0.0),
        "class fitness values must be positive"
    );
    assert!(p > 0.0 && p <= 0.5, "error rate must satisfy 0 < p ≤ 1/2");
    let m = nu as usize + 1;
    let qg = reduced_matrix(nu, p);

    // Eigenvalue: A = QΓ·diag(ϕ) is similar to the symmetric
    // S = D·A·D^{-1}, D = diag(√(C(ν,d)·ϕ_d)), because
    // C(ν,d)·QΓ_{d,k} = C(ν,k)·QΓ_{k,d}; Jacobi gives λ₀ to full accuracy.
    let weights: Vec<f64> = (0..m)
        .map(|d| (qs_bitseq::binomial_f64(nu, d as u32) * phi[d]).sqrt())
        .collect();
    let s = DenseMatrix::from_fn(m, m, |d, k| qg[(d, k)] * phi[k] * weights[d] / weights[k]);
    let lambda = jacobi_eigen(&s).values[0];

    // Eigenvector in the class-mass basis: B_{d,k} = QΓ_{k,d}·ϕ_k has the
    // same spectrum (B = T·A·T^{-1}, T = diag(C(ν,d))) and its dominant
    // eigenvector is [Γ_k] directly. Inverse iteration with the shift just
    // above λ₀ converges in a handful of steps.
    let b = DenseMatrix::from_fn(m, m, |d, k| qg[(k, d)] * phi[k]);
    let mut classes = inverse_iterate(&b, lambda);
    qs_linalg::vec_ops::orient_positive(&mut classes);
    for x in &mut classes {
        if *x < 0.0 {
            *x = 0.0;
        }
    }
    let total = qs_linalg::sum(&classes);
    assert!(total > 0.0, "degenerate reduced eigenvector");
    for x in &mut classes {
        *x /= total;
    }
    // Per-representative concentrations vΓ_k = [Γ_k]/C(ν,k); underflows to
    // 0 for astronomically large classes, which is the honest answer.
    let representative: Vec<f64> = classes
        .iter()
        .enumerate()
        .map(|(k, &u)| u / qs_bitseq::binomial_f64(nu, k as u32))
        .collect();

    ReducedQuasispecies {
        nu,
        p,
        lambda,
        representative,
        classes,
    }
}

/// Dominant eigenvector of `b` by inverse iteration with a shift slightly
/// above the (accurately known) dominant eigenvalue `lambda`. The shift is
/// nudged further if the shifted matrix happens to be numerically singular.
fn inverse_iterate(b: &DenseMatrix, lambda: f64) -> Vec<f64> {
    let m = b.rows();
    let scale = lambda.abs().max(1e-300);
    let mut eps = 1e-11;
    let lu = loop {
        let mu = lambda + eps * scale;
        let shifted = DenseMatrix::from_fn(m, m, |d, k| b[(d, k)] - if d == k { mu } else { 0.0 });
        match Lu::new(&shifted) {
            Ok(lu) => break lu,
            Err(_) => {
                eps *= 10.0;
                assert!(
                    eps < 1e-3,
                    "inverse iteration: could not find a usable shift"
                );
            }
        }
    };
    let mut u = vec![1.0 / m as f64; m];
    for _ in 0..60 {
        u = lu.solve(&u);
        let norm = qs_linalg::norm_l2(&u);
        assert!(norm.is_finite() && norm > 0.0, "inverse iteration diverged");
        for x in &mut u {
            *x /= norm;
        }
    }
    u
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::solver::{solve, SolverConfig};
    use qs_landscape::{ErrorClass, Landscape};

    #[test]
    fn matches_full_solver_on_single_peak() {
        let nu = 9u32;
        let p = 0.02;
        let ec = ErrorClass::single_peak(nu, 2.0, 1.0);
        let reduced = solve_error_class(nu, p, ec.phi());
        let full = solve(
            p,
            &ec,
            &SolverConfig {
                tol: 1e-14,
                ..Default::default()
            },
        )
        .unwrap();
        assert!(
            (reduced.lambda - full.lambda).abs() < 1e-10,
            "λ: {} vs {}",
            reduced.lambda,
            full.lambda
        );
        let gamma_full = full.error_class_concentrations();
        for (k, (&r, &f)) in reduced.classes.iter().zip(&gamma_full).enumerate() {
            assert!((r - f).abs() < 1e-9, "[Γ_{k}]: {r} vs {f}");
        }
    }

    #[test]
    fn matches_full_solver_on_arbitrary_profile() {
        let nu = 8u32;
        let p = 0.05;
        // Rugged class profile — no monotonicity.
        let phi: Vec<f64> = (0..=nu)
            .map(|k| 1.0 + ((k * 7 + 3) % 5) as f64 / 2.0)
            .collect();
        let ec = ErrorClass::new(nu, phi.clone());
        let reduced = solve_error_class(nu, p, &phi);
        let full = solve(
            p,
            &ec,
            &SolverConfig {
                tol: 1e-14,
                ..Default::default()
            },
        )
        .unwrap();
        assert!((reduced.lambda - full.lambda).abs() < 1e-10);
        let gamma_full = full.error_class_concentrations();
        for (&r, &f) in reduced.classes.iter().zip(&gamma_full) {
            assert!((r - f).abs() < 1e-9);
        }
    }

    #[test]
    fn expansion_is_a_true_eigenvector() {
        let nu = 7u32;
        let p = 0.03;
        let ec = ErrorClass::linear(nu, 2.0, 1.0);
        let reduced = solve_error_class(nu, p, ec.phi());
        let qs = reduced.expand();
        // Verify W·x = λ·x through Fmmp.
        let w = qs_matvec::WOperator::from_landscape(
            qs_matvec::Fmmp::new(nu, p),
            &ec,
            qs_matvec::Formulation::Right,
        );
        let wx = qs_matvec::LinearOperator::apply(&w, &qs.concentrations);
        for (a, b) in wx.iter().zip(&qs.concentrations) {
            assert!((a - reduced.lambda * b).abs() < 1e-11);
        }
    }

    #[test]
    fn classes_sum_to_one() {
        let reduced = solve_error_class(
            20,
            0.01,
            &[1.0; 21]
                .iter()
                .enumerate()
                .map(|(k, _)| if k == 0 { 2.0 } else { 1.0 })
                .collect::<Vec<_>>(),
        );
        let total: f64 = reduced.classes.iter().sum();
        assert!((total - 1.0).abs() < 1e-12);
        assert!(reduced.classes.iter().all(|&c| c >= 0.0));
    }

    #[test]
    fn large_nu_is_cheap_and_sane() {
        // ν = 200: the full problem has 2^200 dimensions; the reduction
        // solves it in microseconds.
        let nu = 200u32;
        let phi: Vec<f64> = (0..=nu).map(|k| if k == 0 { 2.0 } else { 1.0 }).collect();
        let reduced = solve_error_class(nu, 0.001, &phi);
        let total: f64 = reduced.classes.iter().sum();
        assert!((total - 1.0).abs() < 1e-10);
        // Well below threshold at p = 0.001 (p_max ≈ ln2/200 ≈ 0.0035):
        // the master class retains substantial concentration.
        assert!(reduced.classes[0] > 0.2, "[Γ₀] = {}", reduced.classes[0]);
        assert!(reduced.lambda > 1.0);
    }

    #[test]
    fn uniform_profile_gives_binomial_classes() {
        // ϕ ≡ c: the full eigenvector is uniform, so [Γ_k] ∝ C(ν,k).
        let nu = 10u32;
        let reduced = solve_error_class(nu, 0.04, &[3.0; 11]);
        let n = (1u64 << nu) as f64;
        for (k, &c) in reduced.classes.iter().enumerate() {
            let expect = qs_bitseq::binomial_f64(nu, k as u32) / n;
            assert!((c - expect).abs() < 1e-12, "k={k}");
        }
        assert!((reduced.lambda - 3.0).abs() < 1e-12);
    }

    #[test]
    fn representative_equals_classes_over_binomial() {
        let reduced = solve_error_class(12, 0.02, ErrorClass::single_peak(12, 2.0, 1.0).phi());
        for (k, (&rep, &cls)) in reduced
            .representative
            .iter()
            .zip(&reduced.classes)
            .enumerate()
        {
            let c = qs_bitseq::binomial_f64(12, k as u32);
            assert!((cls - c * rep).abs() < 1e-14);
        }
    }

    #[test]
    #[should_panic(expected = "ν+1 entries")]
    fn rejects_wrong_profile_length() {
        let _ = solve_error_class(4, 0.1, &[1.0, 1.0]);
    }

    #[test]
    fn lemma2_error_class_vectors_are_invariant() {
        // W maps error-class vectors to error-class vectors (Lemma 2):
        // apply the full W to a class vector and check class constancy.
        let nu = 6u32;
        let p = 0.07;
        let ec = ErrorClass::new(nu, (0..=nu).map(|k| 1.0 + k as f64 / 3.0).collect());
        let w = qs_matvec::WOperator::from_landscape(
            qs_matvec::Fmmp::new(nu, p),
            &ec,
            qs_matvec::Formulation::Right,
        );
        // Arbitrary error-class input vector.
        let class_values: Vec<f64> = (0..=nu).map(|k| (k as f64 + 1.0).sqrt()).collect();
        let v: Vec<f64> = (0..ec.len() as u64)
            .map(|i| class_values[i.count_ones() as usize])
            .collect();
        let wv = qs_matvec::LinearOperator::apply(&w, &v);
        for k in 0..=nu {
            let rep_val = wv[qs_bitseq::representative(k) as usize];
            for j in qs_bitseq::ErrorClassIter::new(nu, k) {
                assert!(
                    (wv[j as usize] - rep_val).abs() < 1e-12,
                    "class Γ_{k} not constant"
                );
            }
        }
    }
}
