//! Derived observables of a solved quasispecies, and spectral diagnostics
//! of the underlying operator.
//!
//! The paper motivates the whole computation with biology: the structure
//! of the stationary distribution (ordered vs random replication), the
//! mutational load carried by the cloud around the master sequence, and
//! the sharpness of the transition between the two phases. This module
//! provides those observables, plus an estimate of the spectral gap
//! `λ₁/λ₀` — the quantity that *is* the power iteration's convergence
//! rate (paper Section 3) — via power iteration with deflation on the
//! symmetric formulation.

use crate::result::Quasispecies;
use qs_linalg::vec_ops::{normalize_l2, sub_scaled_into};
use qs_linalg::{dot, norm_l2, NeumaierSum};
use qs_matvec::LinearOperator;

/// Population-level observables of a stationary distribution.
#[derive(Debug, Clone, PartialEq)]
pub struct PopulationSummary {
    /// The consensus sequence: bit `s` set iff the marginal frequency of
    /// `1` at site `s` exceeds 1/2.
    pub consensus: u64,
    /// Marginal frequency of a set bit at each site (site 0 = LSB).
    pub site_frequencies: Vec<f64>,
    /// Mutational load: the mean Hamming distance to the master sequence,
    /// `Σ_i x_i · d_H(i, 0)`.
    pub mutational_load: f64,
    /// Nucleotide diversity `π`: the expected Hamming distance between two
    /// individuals drawn independently from the population,
    /// `Σ_s 2·q_s·(1−q_s)` with `q_s` the site frequencies.
    pub diversity: f64,
    /// Shannon entropy of the distribution (nats).
    pub entropy: f64,
}

/// Compute population observables from a quasispecies solution.
pub fn summarize(qs: &Quasispecies) -> PopulationSummary {
    let nu = qs.nu();
    let mut site_sums = vec![NeumaierSum::new(); nu as usize];
    let mut load = NeumaierSum::new();
    for (i, &x) in qs.concentrations.iter().enumerate() {
        let i = i as u64;
        load.add(x * i.count_ones() as f64);
        let mut bits = i;
        while bits != 0 {
            let s = bits.trailing_zeros() as usize;
            site_sums[s].add(x);
            bits &= bits - 1;
        }
    }
    let site_frequencies: Vec<f64> = site_sums.iter().map(NeumaierSum::value).collect();
    let mut consensus = 0u64;
    for (s, &q) in site_frequencies.iter().enumerate() {
        if q > 0.5 {
            consensus |= 1 << s;
        }
    }
    let diversity = site_frequencies.iter().map(|&q| 2.0 * q * (1.0 - q)).sum();
    PopulationSummary {
        consensus,
        site_frequencies,
        mutational_load: load.value(),
        diversity,
        entropy: qs.entropy(),
    }
}

/// Options for [`spectral_gap`].
#[derive(Debug, Clone, Copy)]
pub struct SpectralGapOptions {
    /// Residual tolerance for both eigenpairs.
    pub tol: f64,
    /// Iteration budget per eigenpair.
    pub max_iter: usize,
}

impl Default for SpectralGapOptions {
    fn default() -> Self {
        SpectralGapOptions {
            tol: 1e-10,
            max_iter: 200_000,
        }
    }
}

/// The two leading eigenvalues of a symmetric operator and the derived
/// convergence diagnostics.
#[derive(Debug, Clone)]
pub struct SpectralGap {
    /// Dominant eigenvalue `λ₀`.
    pub lambda0: f64,
    /// Second eigenvalue `λ₁` (by magnitude, after deflating `λ₀`).
    pub lambda1: f64,
    /// The power-iteration contraction ratio `λ₁/λ₀`.
    pub ratio: f64,
}

impl SpectralGap {
    /// Predicted power-iteration count to reduce the error by `tol`
    /// (paper Section 3: the rate is `λ₁/λ₀`, improved to
    /// `(λ₁−µ)/(λ₀−µ)` by a shift `µ`).
    pub fn predicted_iterations(&self, tol: f64, shift: f64) -> usize {
        let rate = ((self.lambda1 - shift) / (self.lambda0 - shift)).abs();
        if rate >= 1.0 || rate <= 0.0 {
            return usize::MAX;
        }
        (tol.ln() / rate.ln()).ceil().max(1.0) as usize
    }
}

/// Estimate `λ₀` and `λ₁` of a **symmetric** operator by power iteration
/// with deflation: first converge the dominant pair, then iterate while
/// projecting out the converged eigenvector.
///
/// # Panics
///
/// Panics on a zero start vector or length mismatch.
pub fn spectral_gap<A: LinearOperator + ?Sized>(
    a: &A,
    start: &[f64],
    opts: &SpectralGapOptions,
) -> SpectralGap {
    assert_eq!(start.len(), a.len(), "spectral_gap: start length mismatch");
    let n = a.len();
    // Leading pair.
    let top = crate::power::power_iteration(
        a,
        start,
        &crate::power::PowerOptions {
            tol: opts.tol,
            max_iter: opts.max_iter,
            shift: 0.0,
            parallel_reductions: false,
            stall_window: None,
            deadline: None,
            compact_threshold: 0.0,
        },
    );
    let v0 = top.vector;

    // Deflated iteration for λ₁: start from a vector orthogonal to v0.
    let mut x: Vec<f64> = (0..n)
        .map(|i| ((i as u64).wrapping_mul(2654435761) % 97) as f64 / 97.0 - 0.5)
        .collect();
    let c = dot(&x, &v0);
    for (xi, &vi) in x.iter_mut().zip(&v0) {
        *xi -= c * vi;
    }
    assert!(
        normalize_l2(&mut x) > 0.0,
        "spectral_gap: deflated start vanished"
    );

    let mut y = vec![0.0; n];
    let mut r = vec![0.0; n];
    let mut lambda1 = 0.0;
    for _ in 0..opts.max_iter {
        a.apply_into(&x, &mut y);
        // Project out the converged dominant direction (guards against
        // round-off re-injecting it).
        let c = dot(&y, &v0);
        for (yi, &vi) in y.iter_mut().zip(&v0) {
            *yi -= c * vi;
        }
        lambda1 = dot(&x, &y);
        sub_scaled_into(&y, lambda1, &x, &mut r);
        if norm_l2(&r) <= opts.tol.max(1e-14 * lambda1.abs()) {
            break;
        }
        let ny = norm_l2(&y);
        assert!(ny > 0.0, "spectral_gap: deflated iterate collapsed");
        for (xi, &yi) in x.iter_mut().zip(&y) {
            *xi = yi / ny;
        }
    }

    SpectralGap {
        lambda0: top.lambda,
        lambda1,
        ratio: lambda1 / top.lambda,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::solver::{solve, SolverConfig};
    use qs_landscape::{Landscape, Random, SinglePeak};
    use qs_matvec::{Fmmp, Formulation, WOperator};

    #[test]
    fn summary_of_peaked_population() {
        let landscape = SinglePeak::new(8, 2.0, 1.0);
        let qs = solve(0.01, &landscape, &SolverConfig::default()).unwrap();
        let s = summarize(&qs);
        // Master dominates: consensus is the master, load is small.
        assert_eq!(s.consensus, 0);
        assert!(s.mutational_load < 0.5, "load {}", s.mutational_load);
        assert!(s.site_frequencies.iter().all(|&q| q < 0.1));
        assert!(s.diversity < 1.0);
        // Load = Σ site frequencies (linearity of expectation).
        let freq_sum: f64 = s.site_frequencies.iter().sum();
        assert!((s.mutational_load - freq_sum).abs() < 1e-12);
    }

    #[test]
    fn summary_of_uniform_population() {
        let landscape = qs_landscape::Tabulated::new(vec![1.0; 64]);
        let qs = solve(0.1, &landscape, &SolverConfig::default()).unwrap();
        let s = summarize(&qs);
        // Uniform: every site at frequency 1/2, load ν/2, diversity ν/2.
        for &q in &s.site_frequencies {
            assert!((q - 0.5).abs() < 1e-10);
        }
        assert!((s.mutational_load - 3.0).abs() < 1e-9);
        assert!((s.diversity - 3.0).abs() < 1e-9);
        assert!((s.entropy - 64f64.ln()).abs() < 1e-9);
    }

    #[test]
    fn consensus_follows_shifted_master() {
        // Put the peak on a non-zero sequence via a tabulated landscape.
        let master = 0b1010_0110u64;
        let landscape =
            qs_landscape::Tabulated::from_fn(8, |i| if i == master { 3.0 } else { 1.0 });
        let qs = solve(0.01, &landscape, &SolverConfig::default()).unwrap();
        let s = summarize(&qs);
        assert_eq!(s.consensus, master);
        assert_eq!(qs.dominant_sequence(), master);
    }

    #[test]
    fn gap_matches_dense_spectrum() {
        let nu = 6u32;
        let p = 0.04;
        let landscape = Random::new(nu, 5.0, 1.0, 12);
        let w = WOperator::from_landscape(Fmmp::new(nu, p), &landscape, Formulation::Symmetric);
        let start: Vec<f64> = landscape.materialize().iter().map(|f| f.sqrt()).collect();
        let gap = spectral_gap(&w, &start, &SpectralGapOptions::default());

        // Dense ground truth.
        let f = landscape.materialize();
        let sq: Vec<f64> = f.iter().map(|x| x.sqrt()).collect();
        let qd = {
            use qs_mutation::MutationModel;
            qs_mutation::Uniform::new(nu, p).dense()
        };
        let sd = qs_linalg::DenseMatrix::diagonal(&sq);
        let eig = qs_linalg::jacobi_eigen(&sd.matmul(&qd).matmul(&sd));
        assert!((gap.lambda0 - eig.values[0]).abs() < 1e-8);
        assert!(
            (gap.lambda1 - eig.values[1]).abs() < 1e-6,
            "{} vs {}",
            gap.lambda1,
            eig.values[1]
        );
    }

    #[test]
    fn predicted_iterations_track_reality() {
        let nu = 9u32;
        let p = 0.01;
        let landscape = Random::new(nu, 5.0, 1.0, 44);
        let w = WOperator::from_landscape(Fmmp::new(nu, p), &landscape, Formulation::Symmetric);
        let start: Vec<f64> = landscape.materialize().iter().map(|f| f.sqrt()).collect();
        let gap = spectral_gap(&w, &start, &SpectralGapOptions::default());
        let predicted = gap.predicted_iterations(1e-12, 0.0);
        let actual = crate::power::power_iteration(
            &w,
            &start,
            &crate::power::PowerOptions {
                tol: 1e-12,
                ..Default::default()
            },
        )
        .iterations;
        // Prediction is a rate-based bound; actual should be within ~3× of
        // it in either direction (start-vector quality shifts the constant).
        assert!(
            actual <= predicted.saturating_mul(3) && predicted <= actual.saturating_mul(3),
            "predicted {predicted}, actual {actual}"
        );
        // And the shift improves the predicted rate.
        let mu = qs_matvec::conservative_shift(nu, p, landscape.f_min());
        assert!(gap.predicted_iterations(1e-12, mu) <= predicted);
    }

    #[test]
    fn gap_ratio_in_unit_interval_for_pd_operator() {
        let landscape = Random::new(7, 5.0, 1.0, 1);
        let w = WOperator::from_landscape(Fmmp::new(7, 0.02), &landscape, Formulation::Symmetric);
        let start = vec![1.0; 1 << 7];
        let gap = spectral_gap(&w, &start, &SpectralGapOptions::default());
        assert!(gap.ratio > 0.0 && gap.ratio < 1.0, "ratio {}", gap.ratio);
    }
}
