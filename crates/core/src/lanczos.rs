//! Lanczos eigensolver with full reorthogonalisation — the storage-hungry
//! alternative the paper weighs against the power iteration (Section 3:
//! "Lanczos/Arnoldi iterations … require storing more intermediate vectors
//! … and are thus less attractive for very large scale instances").
//!
//! We implement it anyway as an ablation comparator: on the *symmetric*
//! formulation `F^½·Q·F^½` (paper Eq. 4) it typically converges in far
//! fewer operator applications than the power iteration, at the cost of
//! `m` stored basis vectors — exactly the trade-off the paper describes.

use std::time::Instant;

use qs_linalg::vec_ops::{normalize_l2, orient_positive};
use qs_linalg::{dot, norm_l2, tridiag_eigen};
use qs_matvec::LinearOperator;
use qs_telemetry::{NullProbe, Probe, SolverEvent};

use crate::checkpoint::CheckpointSession;
use crate::guard::Breakdown;

/// Options for [`lanczos`].
#[derive(Debug, Clone, Copy)]
pub struct LanczosOptions {
    /// Maximum Krylov subspace dimension `m` (= stored vectors; this is the
    /// memory cost the paper objects to).
    pub subspace: usize,
    /// Residual tolerance on the Ritz pair.
    pub tol: f64,
    /// Wall-clock deadline: expiry stops the run after the current step's
    /// Ritz extraction and returns the best-so-far pair with
    /// [`LanczosOutcome::timed_out`] set. `None` (the default) never
    /// consults the clock.
    pub deadline: Option<Instant>,
}

impl Default for LanczosOptions {
    fn default() -> Self {
        LanczosOptions {
            subspace: 60,
            tol: 1e-13,
            deadline: None,
        }
    }
}

/// Outcome of a Lanczos run.
#[derive(Debug, Clone)]
pub struct LanczosOutcome {
    /// Dominant Ritz value (≈ `λ₀`).
    pub lambda: f64,
    /// Dominant Ritz vector, unit L2, Perron-oriented.
    pub vector: Vec<f64>,
    /// Lanczos steps performed (= operator applications).
    pub matvecs: usize,
    /// Final residual bound `|β_j·s_j|` of the dominant Ritz pair.
    pub residual: f64,
    /// Did the residual reach `tol` within the subspace budget?
    pub converged: bool,
    /// Set when the recurrence produced a non-finite `α`/`β` and the run
    /// stopped with a best-effort Ritz pair from the clean prefix of the
    /// basis. `None` for convergence or subspace exhaustion. (The happy
    /// breakdown `β ≈ 0` counts as convergence, not a [`Breakdown`].)
    pub breakdown: Option<Breakdown>,
    /// `true` when the wall-clock deadline expired before convergence
    /// (see [`LanczosOptions::deadline`]).
    pub timed_out: bool,
}

/// Run Lanczos with full reorthogonalisation on a **symmetric** operator.
///
/// The caller is responsible for symmetry (use the `Symmetric` formulation
/// of [`qs_matvec::WOperator`]); on an asymmetric operator the tridiagonal
/// projection is meaningless.
///
/// # Panics
///
/// Panics on length mismatch, a zero start vector, or `subspace == 0`.
pub fn lanczos<A: LinearOperator + ?Sized>(
    a: &A,
    start: &[f64],
    opts: &LanczosOptions,
) -> LanczosOutcome {
    lanczos_probed(a, start, opts, &mut NullProbe)
}

/// [`lanczos`] with a telemetry [`Probe`].
///
/// Each Lanczos step emits [`SolverEvent::IterationStart`], the operator's
/// [`SolverEvent::MatvecTimed`] breakdown and a [`SolverEvent::Residual`]
/// carrying the current dominant Ritz value; the run ends with
/// [`SolverEvent::Converged`] or [`SolverEvent::Budget`]. With a disabled
/// probe the arithmetic is bit-for-bit that of [`lanczos`].
pub fn lanczos_probed<A: LinearOperator + ?Sized, P: Probe>(
    a: &A,
    start: &[f64],
    opts: &LanczosOptions,
    probe: &mut P,
) -> LanczosOutcome {
    lanczos_core(a, start, opts, probe, None)
}

/// [`lanczos_probed`] with a durable [`CheckpointSession`]: on the
/// session's cadence the current dominant Ritz vector is assembled and
/// snapshotted (method `"lanczos"`). Unlike the power loop, resuming a
/// Lanczos snapshot warm-restarts a fresh Krylov space from the saved
/// Ritz iterate — convergence-preserving, not replay-identical, because
/// the discarded basis cannot be reconstructed bit-exactly. The pending
/// resume snapshot is consumed by the *caller* (it replaces `start`
/// before this is invoked).
pub fn lanczos_durable<A: LinearOperator + ?Sized, P: Probe>(
    a: &A,
    start: &[f64],
    opts: &LanczosOptions,
    probe: &mut P,
    session: &mut CheckpointSession,
) -> LanczosOutcome {
    lanczos_core(a, start, opts, probe, Some(session))
}

fn lanczos_core<A: LinearOperator + ?Sized, P: Probe>(
    a: &A,
    start: &[f64],
    opts: &LanczosOptions,
    probe: &mut P,
    mut durable: Option<&mut CheckpointSession>,
) -> LanczosOutcome {
    assert_eq!(start.len(), a.len(), "lanczos: start length mismatch");
    assert!(opts.subspace >= 1, "subspace must be at least 1");
    let n = a.len();

    let mut basis: Vec<Vec<f64>> = Vec::with_capacity(opts.subspace);
    let mut alphas: Vec<f64> = Vec::with_capacity(opts.subspace);
    let mut betas: Vec<f64> = Vec::with_capacity(opts.subspace);

    let mut v = start.to_vec();
    assert!(normalize_l2(&mut v) > 0.0, "lanczos: zero start vector");
    basis.push(v);

    let mut w = vec![0.0; n];
    let mut matvecs = 0;

    loop {
        let j = basis.len() - 1;
        probe.record(&SolverEvent::IterationStart { iter: j + 1 });
        if probe.enabled() {
            a.apply_into_probed(&basis[j], &mut w, probe);
        } else {
            a.apply_into(&basis[j], &mut w);
        }
        matvecs += 1;
        if j > 0 {
            let beta_prev = betas[j - 1];
            for (wi, &vi) in w.iter_mut().zip(&basis[j - 1]) {
                *wi -= beta_prev * vi;
            }
        }
        let alpha = dot(&basis[j], &w);
        alphas.push(alpha);
        for (wi, &vi) in w.iter_mut().zip(&basis[j]) {
            *wi -= alpha * vi;
        }
        // Full reorthogonalisation (twice is enough): the price of keeping
        // the basis numerically orthogonal without restarts.
        for _ in 0..2 {
            for q in &basis {
                let c = dot(q, &w);
                if c != 0.0 {
                    for (wi, &qi) in w.iter_mut().zip(q) {
                        *wi -= c * qi;
                    }
                }
            }
        }
        let beta = norm_l2(&w);

        // Guardrail: a poisoned matvec makes α or β non-finite and the
        // tridiagonal projection meaningless. Stop before handing NaN to
        // the eigensolver and return the best Ritz pair of the clean
        // prefix T_{j} (dropping the poisoned step).
        if !alpha.is_finite() || !beta.is_finite() {
            probe.record(&SolverEvent::GuardrailTripped {
                kind: Breakdown::LanczosBreakdown.label(),
                iter: j + 1,
            });
            let (lambda, x) = if j == 0 {
                (f64::NAN, basis[0].clone())
            } else {
                let eig = tridiag_eigen(&alphas[..j], &betas[..j - 1]);
                let mut x = vec![0.0; n];
                for (i, q) in basis.iter().take(j).enumerate() {
                    let si = eig.vectors[(i, 0)];
                    for (xi, &qi) in x.iter_mut().zip(q) {
                        *xi += si * qi;
                    }
                }
                normalize_l2(&mut x);
                orient_positive(&mut x);
                (eig.values[0], x)
            };
            probe.record(&SolverEvent::Budget {
                iterations: j + 1,
                matvecs,
                residual: f64::NAN,
            });
            return LanczosOutcome {
                lambda,
                vector: x,
                matvecs,
                residual: f64::NAN,
                converged: false,
                breakdown: Some(Breakdown::LanczosBreakdown),
                timed_out: false,
            };
        }

        // Ritz extraction on the current tridiagonal T_j.
        let eig = tridiag_eigen(&alphas, &betas);
        let m = alphas.len();
        let s_last = eig.vectors[(m - 1, 0)];
        let residual = (beta * s_last).abs();
        probe.record(&SolverEvent::Residual {
            iter: m,
            value: residual,
            lambda: eig.values[0],
        });
        if let Some(session) = durable.as_deref_mut() {
            session.push_residual(residual);
        }
        let expired = opts
            .deadline
            .is_some_and(|deadline| Instant::now() >= deadline);
        if residual <= opts.tol || beta <= f64::EPSILON || basis.len() == opts.subspace || expired {
            let converged = residual <= opts.tol || beta <= f64::EPSILON;
            // Assemble the Ritz vector x = V_m · s₀.
            let mut x = vec![0.0; n];
            for (i, q) in basis.iter().enumerate() {
                let si = eig.vectors[(i, 0)];
                for (xi, &qi) in x.iter_mut().zip(q) {
                    *xi += si * qi;
                }
            }
            normalize_l2(&mut x);
            orient_positive(&mut x);
            if converged {
                probe.record(&SolverEvent::Converged {
                    iterations: m,
                    matvecs,
                    residual,
                    lambda: eig.values[0],
                });
            } else {
                probe.record(&SolverEvent::Budget {
                    iterations: m,
                    matvecs,
                    residual,
                });
            }
            return LanczosOutcome {
                lambda: eig.values[0],
                vector: x,
                matvecs,
                residual,
                converged,
                breakdown: None,
                timed_out: expired && !converged,
            };
        }
        // Durable cadence point: assemble the current dominant Ritz
        // vector (O(m·n), only on cadence steps) so a killed process can
        // warm-restart from the best iterate known so far.
        if let Some(session) = durable.as_deref_mut() {
            if session.due(m as u64) {
                let mut ritz = vec![0.0; n];
                for (i, q) in basis.iter().enumerate() {
                    let si = eig.vectors[(i, 0)];
                    for (ri, &qi) in ritz.iter_mut().zip(q) {
                        *ri += si * qi;
                    }
                }
                normalize_l2(&mut ritz);
                match session.write_snapshot(m as u64, matvecs as u64, (f64::INFINITY, 0), &ritz) {
                    Ok(bytes) => probe.record(&SolverEvent::CheckpointWritten { iter: m, bytes }),
                    Err(_) => probe.record(&SolverEvent::CheckpointRejected {
                        reason: "write_failed",
                    }),
                }
            }
        }

        betas.push(beta);
        let inv = 1.0 / beta;
        let next: Vec<f64> = w.iter().map(|&wi| wi * inv).collect();
        basis.push(next);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::power::{power_iteration, PowerOptions};
    use qs_landscape::{Landscape, Random};
    use qs_matvec::{convert_eigenvector, Fmmp, Formulation, WOperator};

    fn sym_op(nu: u32, p: f64, landscape: &impl Landscape) -> WOperator<Fmmp> {
        WOperator::from_landscape(Fmmp::new(nu, p), landscape, Formulation::Symmetric)
    }

    fn sym_start(landscape: &impl Landscape) -> Vec<f64> {
        // F^{1/2}-weighted version of the paper's start vector keeps the
        // comparison fair in the symmetric formulation.
        let mut s: Vec<f64> = landscape.materialize().iter().map(|f| f.sqrt()).collect();
        qs_linalg::vec_ops::normalize_l2(&mut s);
        s
    }

    #[test]
    fn agrees_with_power_iteration() {
        let (nu, p) = (9u32, 0.01);
        let landscape = Random::new(nu, 5.0, 1.0, 21);
        let w = sym_op(nu, p, &landscape);
        let start = sym_start(&landscape);
        let lz = lanczos(&w, &start, &LanczosOptions::default());
        let pi = power_iteration(
            &w,
            &start,
            &PowerOptions {
                tol: 1e-13,
                ..Default::default()
            },
        );
        assert!(lz.converged && pi.converged);
        assert!(
            (lz.lambda - pi.lambda).abs() < 1e-9,
            "Lanczos {} vs PI {}",
            lz.lambda,
            pi.lambda
        );
        // Same eigenvector up to sign/normalisation.
        let d: f64 = qs_linalg::dot(&lz.vector, &pi.vector).abs();
        assert!(d > 1.0 - 1e-8, "vectors differ: |cos| = {d}");
    }

    #[test]
    fn needs_fewer_matvecs_than_power_iteration() {
        // The storage-for-speed trade-off the paper describes.
        let (nu, p) = (10u32, 0.01);
        let landscape = Random::new(nu, 5.0, 1.0, 9);
        let w = sym_op(nu, p, &landscape);
        let start = sym_start(&landscape);
        let lz = lanczos(
            &w,
            &start,
            &LanczosOptions {
                subspace: 80,
                tol: 1e-12,
                ..Default::default()
            },
        );
        let pi = power_iteration(
            &w,
            &start,
            &PowerOptions {
                tol: 1e-12,
                ..Default::default()
            },
        );
        assert!(lz.converged && pi.converged);
        assert!(
            lz.matvecs < pi.matvecs,
            "Lanczos {} !< PI {}",
            lz.matvecs,
            pi.matvecs
        );
    }

    #[test]
    fn symmetric_solution_converts_to_concentrations() {
        // x_R = F^{-1/2}·x_S must be the Perron vector of Q·F.
        let (nu, p) = (7u32, 0.02);
        let landscape = Random::new(nu, 5.0, 1.0, 33);
        let w = sym_op(nu, p, &landscape);
        let lz = lanczos(&w, &sym_start(&landscape), &LanczosOptions::default());
        let f = landscape.materialize();
        let xr = convert_eigenvector(Formulation::Symmetric, Formulation::Right, &lz.vector, &f);
        // Check W_R x_R = λ x_R through the right-form operator.
        let wr = WOperator::from_landscape(Fmmp::new(nu, p), &landscape, Formulation::Right);
        let wx = wr.apply(&xr);
        for (a, b) in wx.iter().zip(&xr) {
            assert!((a - lz.lambda * b).abs() < 1e-8);
        }
        assert!(xr.iter().all(|&v| v > 0.0));
    }

    #[test]
    fn subspace_exhaustion_reports_not_converged() {
        let (nu, p) = (8u32, 0.01);
        let landscape = Random::new(nu, 5.0, 1.0, 2);
        let w = sym_op(nu, p, &landscape);
        let lz = lanczos(
            &w,
            &sym_start(&landscape),
            &LanczosOptions {
                subspace: 3,
                tol: 1e-15,
                ..Default::default()
            },
        );
        assert_eq!(lz.matvecs, 3);
        assert!(!lz.converged);
    }

    #[test]
    fn probed_run_matches_plain_bit_for_bit() {
        use qs_telemetry::{RecordingProbe, SolverEvent};
        let (nu, p) = (8u32, 0.01);
        let landscape = Random::new(nu, 5.0, 1.0, 4);
        let w = sym_op(nu, p, &landscape);
        let start = sym_start(&landscape);
        let opts = LanczosOptions::default();
        let plain = lanczos(&w, &start, &opts);
        let mut rec = RecordingProbe::new();
        let probed = lanczos_probed(&w, &start, &opts, &mut rec);
        assert_eq!(plain.lambda.to_bits(), probed.lambda.to_bits());
        assert_eq!(plain.residual.to_bits(), probed.residual.to_bits());
        assert_eq!(plain.matvecs, probed.matvecs);
        for (a, b) in plain.vector.iter().zip(&probed.vector) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
        assert_eq!(rec.iterations(), probed.matvecs);
        let history = rec.residual_history();
        assert_eq!(history.len(), probed.matvecs);
        assert_eq!(history.last().unwrap().to_bits(), probed.residual.to_bits());
        assert!(matches!(
            rec.terminal(),
            Some(SolverEvent::Converged { .. })
        ));
    }

    #[test]
    fn nan_matvec_classifies_lanczos_breakdown() {
        use qs_telemetry::RecordingProbe;
        struct NanAfter<A> {
            inner: A,
            from: usize,
            count: std::sync::atomic::AtomicUsize,
        }
        impl<A: LinearOperator> LinearOperator for NanAfter<A> {
            fn len(&self) -> usize {
                self.inner.len()
            }
            fn apply_into(&self, x: &[f64], y: &mut [f64]) {
                self.inner.apply_into(x, y);
                if self
                    .count
                    .fetch_add(1, std::sync::atomic::Ordering::Relaxed)
                    >= self.from
                {
                    y[0] = f64::NAN;
                }
            }
        }
        let (nu, p) = (7u32, 0.01);
        let landscape = Random::new(nu, 5.0, 1.0, 8);
        let w = NanAfter {
            inner: sym_op(nu, p, &landscape),
            from: 4,
            count: Default::default(),
        };
        let mut rec = RecordingProbe::new();
        let lz = lanczos_probed(
            &w,
            &sym_start(&landscape),
            &LanczosOptions::default(),
            &mut rec,
        );
        assert!(!lz.converged);
        assert_eq!(
            lz.breakdown,
            Some(crate::guard::Breakdown::LanczosBreakdown)
        );
        // Stopped at the poisoned step, not at subspace exhaustion.
        assert!(lz.matvecs <= 6, "ran {} matvecs", lz.matvecs);
        // Best-effort Ritz pair from the clean prefix is finite.
        assert!(lz.lambda.is_finite());
        assert!(lz.vector.iter().all(|v| v.is_finite()));
        assert_eq!(rec.guardrail_kinds(), vec!["lanczos_breakdown"]);
    }

    #[test]
    fn happy_breakdown_on_exact_eigenvector_start() {
        // Starting in an eigenvector: β₁ ≈ 0, one step, converged.
        let nu = 6u32;
        // Equal fitness: W = c·Q symmetric, dominant eigenvector uniform.
        let landscape = qs_landscape::Tabulated::new(vec![2.0; 1 << nu]);
        let w = sym_op(nu, 0.05, &landscape);
        let start = vec![1.0; 1 << nu];
        let lz = lanczos(&w, &start, &LanczosOptions::default());
        assert!(lz.converged);
        assert!(lz.matvecs <= 2);
        assert!((lz.lambda - 2.0).abs() < 1e-10, "λ = {}", lz.lambda);
    }
}
