//! Shifted power iteration on implicit operators (paper Section 3).
//!
//! The power iteration offers "the best balance between storage
//! requirements and accuracy" for this problem class: two working vectors,
//! one operator application per step. Convergence is governed by
//! `λ₁/λ₀ < 1` (guaranteed `< 1` by Perron–Frobenius since `W` is positive
//! and, for `p < 1/2`, positive definite); a spectral shift `µ` improves
//! the rate to `(λ₁−µ)/(λ₀−µ)`.
//!
//! The stopping criterion is the paper's residual `R(λ̃, x̃) = ‖Wx̃ − λ̃x̃‖₂`.

use std::time::Instant;

use qs_linalg::vec_ops::{normalize_l2, orient_positive, sub_scaled_into};
use qs_matvec::LinearOperator;
use qs_telemetry::{NullProbe, Probe, SolverEvent};

use crate::checkpoint::CheckpointSession;
use crate::guard::{Breakdown, StallDetector};
use crate::workspace::Workspace;

/// Options for [`power_iteration`].
#[derive(Debug, Clone, Copy)]
pub struct PowerOptions {
    /// Residual tolerance `τ` on `‖Wx̃ − λ̃x̃‖₂` (paper uses `10⁻¹⁵` for
    /// exact engines, `10⁻¹⁰` for `Xmvp(5)`).
    pub tol: f64,
    /// Iteration budget.
    pub max_iter: usize,
    /// Spectral shift `µ` (0 disables; the paper's conservative choice is
    /// `(1−2p)^ν·f_min`, see [`qs_matvec::conservative_shift`]).
    pub shift: f64,
    /// Use the parallel reduction kernels for norms/dots (pairs with a
    /// parallel matvec engine; the paper notes the summations parallelise
    /// well and have "almost no influence" on runtime).
    pub parallel_reductions: bool,
    /// Residual-stagnation window: trip the guardrail after this many
    /// consecutive iterations without a new best residual. `None`
    /// disables stagnation detection (the default; the recovery-enabled
    /// `solve` path turns it on).
    pub stall_window: Option<usize>,
    /// Wall-clock deadline: once `Instant::now()` passes it the loop
    /// stops after the current iteration's residual measurement and
    /// reports the best-so-far state with
    /// [`PowerOutcome::timed_out`] set. The check is a pure scalar
    /// comparison placed before the iterate update, so the returned
    /// `(λ, x, residual)` triple stays self-consistent; `Instant::now()`
    /// is only consulted when a deadline is set, leaving the default
    /// path's floating-point sequence and syscall profile untouched.
    pub deadline: Option<Instant>,
}

impl Default for PowerOptions {
    fn default() -> Self {
        PowerOptions {
            tol: 1e-13,
            max_iter: 100_000,
            shift: 0.0,
            parallel_reductions: false,
            stall_window: None,
            deadline: None,
        }
    }
}

/// Outcome of a power iteration run.
#[derive(Debug, Clone)]
pub struct PowerOutcome {
    /// Approximated dominant eigenvalue `λ̃₀` of the *unshifted* operator.
    pub lambda: f64,
    /// Unit-L2 eigenvector, oriented non-negative (Perron orientation).
    pub vector: Vec<f64>,
    /// Iterations performed.
    pub iterations: usize,
    /// Final residual `‖Wx̃ − λ̃x̃‖₂`.
    pub residual: f64,
    /// Did the residual reach `tol` within the budget?
    pub converged: bool,
    /// Operator applications performed (= iterations; kept separately so
    /// engines with inner iterations can report honestly).
    pub matvecs: usize,
    /// Set when a guardrail stopped the loop early: the iterate went
    /// non-finite, the residual stagnated for a full window, or the
    /// iterate collapsed to zero. `None` for convergence or honest
    /// budget exhaustion.
    pub breakdown: Option<Breakdown>,
    /// `true` when the wall-clock deadline expired before convergence
    /// (see [`PowerOptions::deadline`]); the outcome is the
    /// best-so-far state at expiry.
    pub timed_out: bool,
}

/// Run the (optionally shifted) power iteration `x ← (A − µI)x / ‖·‖` from
/// `start`, reporting the eigenpair of the **unshifted** `A`.
///
/// The residual of the shifted pair equals the residual of the unshifted
/// pair (`(A−µI)x − (λ−µ)x = Ax − λx`), so the stopping criterion is
/// shift-invariant and runs with shift can be compared directly to runs
/// without.
///
/// # Panics
///
/// Panics if `start.len() != a.len()`, the start vector is zero, or `tol`
/// is negative. Numerical trouble mid-run (non-finite iterate, stagnating
/// residual, iterate collapsing to zero because `µ` hit an eigenvalue) no
/// longer panics: the loop stops early and classifies the failure in
/// [`PowerOutcome::breakdown`].
pub fn power_iteration<A: LinearOperator + ?Sized>(
    a: &A,
    start: &[f64],
    opts: &PowerOptions,
) -> PowerOutcome {
    power_iteration_probed(a, start, opts, &mut NullProbe)
}

/// [`power_iteration`] with a telemetry [`Probe`].
///
/// Per iteration the probe receives [`SolverEvent::IterationStart`], the
/// operator's per-stage [`SolverEvent::MatvecTimed`] events, and one
/// [`SolverEvent::Residual`] carrying the unshifted eigenvalue estimate;
/// the run ends with [`SolverEvent::Converged`] or [`SolverEvent::Budget`].
/// With a disabled probe (e.g. [`NullProbe`]) every floating-point
/// operation is identical to [`power_iteration`]'s, so the output matches
/// bit for bit.
pub fn power_iteration_probed<A: LinearOperator + ?Sized, P: Probe>(
    a: &A,
    start: &[f64],
    opts: &PowerOptions,
    probe: &mut P,
) -> PowerOutcome {
    power_iteration_probed_in(a, start, opts, probe, &mut Workspace::new())
}

/// [`power_iteration_probed`] drawing its working vectors (iterate, image,
/// residual) from a caller-owned [`Workspace`] pool.
///
/// The image and residual buffers are returned to the pool on exit; the
/// iterate escapes as [`PowerOutcome::vector`]. A pool warmed with three
/// `N`-buffers therefore runs the whole loop without touching the
/// allocator — the property `solve` reports through
/// [`SolverEvent::SolveAllocation`] and the telemetry smoke test pins at
/// zero. The floating-point sequence is identical to
/// [`power_iteration_probed`] regardless of pool state.
pub fn power_iteration_probed_in<A: LinearOperator + ?Sized, P: Probe>(
    a: &A,
    start: &[f64],
    opts: &PowerOptions,
    probe: &mut P,
    ws: &mut Workspace,
) -> PowerOutcome {
    power_iteration_core(a, start, opts, probe, ws, None)
}

/// [`power_iteration_probed_in`] with a durable [`CheckpointSession`]:
/// snapshots are written on the session's cadence, and a pending resume
/// snapshot (if the session holds one) replaces the start vector
/// *bit-exactly* — the saved iterate is already unit-normalized, so it
/// re-enters the loop without renormalisation and the continued run
/// replays the exact floating-point sequence of the uninterrupted one.
pub fn power_iteration_durable_in<A: LinearOperator + ?Sized, P: Probe>(
    a: &A,
    start: &[f64],
    opts: &PowerOptions,
    probe: &mut P,
    ws: &mut Workspace,
    session: &mut CheckpointSession,
) -> PowerOutcome {
    power_iteration_core(a, start, opts, probe, ws, Some(session))
}

fn power_iteration_core<A: LinearOperator + ?Sized, P: Probe>(
    a: &A,
    start: &[f64],
    opts: &PowerOptions,
    probe: &mut P,
    ws: &mut Workspace,
    mut durable: Option<&mut CheckpointSession>,
) -> PowerOutcome {
    assert_eq!(
        start.len(),
        a.len(),
        "power_iteration: start length mismatch"
    );
    assert!(opts.tol >= 0.0, "tolerance must be non-negative");
    let n = a.len();
    let dot: fn(&[f64], &[f64]) -> f64 = if opts.parallel_reductions {
        qs_matvec::parallel::par_dot
    } else {
        qs_linalg::dot
    };
    let norm: fn(&[f64]) -> f64 = if opts.parallel_reductions {
        qs_matvec::parallel::par_norm_l2
    } else {
        qs_linalg::norm_l2
    };

    let mut iterations = 0;
    let mut stall = opts.stall_window.map(StallDetector::new);
    // Resume: a pending snapshot (validated against the problem hash by
    // the solver entry point) replaces the start state. Its iterate was
    // captured *after* the end-of-iteration normalisation, so it is used
    // bit-exactly — re-normalising an already-unit vector is not a
    // bitwise no-op and would break replay identity.
    let resume = durable
        .as_deref_mut()
        .and_then(|s| s.take_resume())
        .filter(|snap| snap.iterate.len() == n);
    let mut x = match &resume {
        Some(snap) => {
            iterations = snap.iteration as usize;
            if let Some(window) = opts.stall_window {
                stall = Some(StallDetector::restore(
                    window,
                    snap.stall_best,
                    snap.stall_count as usize,
                ));
            }
            probe.record(&SolverEvent::CheckpointLoaded { iter: iterations });
            ws.take_copy(&snap.iterate)
        }
        None => {
            let mut x = ws.take_copy(start);
            assert!(
                normalize_l2(&mut x) > 0.0,
                "power_iteration: zero start vector"
            );
            x
        }
    };

    // The image and residual live entirely inside the loop, so they can use
    // the 64-byte-aligned pool window: every span the matvec schedule hands
    // to the SIMD fibre kernels then starts on a cache-line boundary. The
    // iterate `x` escapes in the outcome and stays a plain `Vec`.
    let mut y = ws.take_aligned(n);
    let mut r = ws.take_aligned(n);
    let mu = opts.shift;
    let mut lambda_shifted = 0.0;
    let mut residual = f64::INFINITY;
    let mut converged = false;
    let mut breakdown = None;
    let mut timed_out = false;

    // Invariant: the returned (λ, x, residual) triple is self-consistent —
    // the residual is measured at exactly the x that is returned, so
    // recomputing ‖Wx − λx‖ on the output reproduces `residual`.
    while iterations < opts.max_iter {
        iterations += 1;
        probe.record(&SolverEvent::IterationStart { iter: iterations });
        if probe.enabled() {
            a.apply_into_probed(&x, &mut y, probe);
        } else {
            a.apply_into(&x, &mut y);
        }
        if mu != 0.0 {
            for (yi, &xi) in y.iter_mut().zip(&x) {
                *yi -= mu * xi;
            }
        }
        // Rayleigh quotient of the shifted operator (x has unit norm).
        lambda_shifted = dot(&x, &y);
        sub_scaled_into(&y, lambda_shifted, &x, &mut r);
        residual = norm(&r);
        probe.record(&SolverEvent::Residual {
            iter: iterations,
            value: residual,
            lambda: lambda_shifted + mu,
        });
        if let Some(session) = durable.as_deref_mut() {
            session.push_residual(residual);
        }
        // Guardrails. The checks are pure comparisons on already-computed
        // scalars, so the fault-free floating-point sequence is unchanged.
        // The non-finite check runs before the convergence test: a NaN λ
        // must never be reported as a converged eigenvalue.
        if !residual.is_finite() || !lambda_shifted.is_finite() {
            breakdown = Some(Breakdown::NonFiniteIterate);
            probe.record(&SolverEvent::GuardrailTripped {
                kind: Breakdown::NonFiniteIterate.label(),
                iter: iterations,
            });
            break;
        }
        if residual <= opts.tol {
            converged = true;
            break; // keep the x the residual was measured at
        }
        if let Some(stall) = stall.as_mut() {
            if stall.observe(residual) {
                breakdown = Some(Breakdown::ResidualStagnation);
                probe.record(&SolverEvent::GuardrailTripped {
                    kind: Breakdown::ResidualStagnation.label(),
                    iter: iterations,
                });
                break;
            }
        }
        // The deadline check sits with the budget check, *before* the
        // iterate update, so expiry hands back the exact x the residual
        // was measured at — a flagged best-so-far, never a torn state.
        if let Some(deadline) = opts.deadline {
            if Instant::now() >= deadline {
                timed_out = true;
                break;
            }
        }
        if iterations == opts.max_iter {
            break;
        }
        let ny = norm(&y);
        if !(ny.is_finite() && ny > 0.0) {
            breakdown = Some(Breakdown::IterateCollapse);
            probe.record(&SolverEvent::GuardrailTripped {
                kind: Breakdown::IterateCollapse.label(),
                iter: iterations,
            });
            break;
        }
        let inv = 1.0 / ny;
        for (xi, &yi) in x.iter_mut().zip(y.iter()) {
            *xi = yi * inv;
        }
        // Durable cadence point: x now holds the fully-updated iterate
        // entering iteration k+1, so a snapshot taken here resumes by
        // setting `iterations = k` and continuing — the replayed FP
        // sequence is identical to the uninterrupted run's.
        if let Some(session) = durable.as_deref_mut() {
            if session.due(iterations as u64) {
                let stall_state = stall
                    .as_ref()
                    .map(StallDetector::state)
                    .unwrap_or((f64::INFINITY, 0));
                match session.write_snapshot(iterations as u64, iterations as u64, stall_state, &x)
                {
                    Ok(bytes) => probe.record(&SolverEvent::CheckpointWritten {
                        iter: iterations,
                        bytes,
                    }),
                    // A failed checkpoint write must never kill a healthy
                    // solve: surface it in the trace and keep iterating.
                    Err(_) => probe.record(&SolverEvent::CheckpointRejected {
                        reason: "write_failed",
                    }),
                }
            }
        }
    }

    ws.put_aligned(y);
    ws.put_aligned(r);
    orient_positive(&mut x);
    if converged {
        probe.record(&SolverEvent::Converged {
            iterations,
            matvecs: iterations,
            residual,
            lambda: lambda_shifted + mu,
        });
    } else {
        probe.record(&SolverEvent::Budget {
            iterations,
            matvecs: iterations,
            residual,
        });
    }
    PowerOutcome {
        lambda: lambda_shifted + mu,
        vector: x,
        iterations,
        residual,
        converged,
        matvecs: iterations,
        breakdown,
        timed_out,
    }
}

/// Outcome of a [`block_power_iteration`] run: one per-column record plus
/// the index of the best column.
#[derive(Debug, Clone)]
pub struct BlockPowerOutcome {
    /// Per-column outcomes, in start-column order. Each is exactly what a
    /// standalone [`power_iteration`] would report for that column.
    pub columns: Vec<PowerOutcome>,
    /// Index of the best column: converged columns beat unconverged ones,
    /// ties broken by smaller residual.
    pub best: usize,
    /// Block iterations performed (= the max over column iteration
    /// counts; every iteration costs one batched operator application).
    pub iterations: usize,
}

impl BlockPowerOutcome {
    /// Borrow the best column's outcome.
    pub fn best_column(&self) -> &PowerOutcome {
        &self.columns[self.best]
    }
}

/// Block power iteration: advance `k` start columns simultaneously, one
/// [`LinearOperator::apply_batch`] per step instead of `k` separate
/// applications, so transform engines (Fmmp, FWHT, `QShiftInvert`)
/// amortise their stage traversal across the block.
///
/// `starts` holds the `k` columns contiguously (`k = starts.len() / N`).
/// Each column runs the same shifted iteration as [`power_iteration`] and
/// freezes as soon as it converges or trips a guardrail; the block stops
/// when every column is frozen or the iteration budget is spent. Columns
/// are *not* orthogonalised against each other — this is a batched
/// multi-start, not a subspace iteration, and each column converges to the
/// dominant eigenpair exactly as its standalone run would.
///
/// # Panics
///
/// Panics if `starts` is empty or not a multiple of `a.len()`, any start
/// column is zero, or `tol` is negative.
pub fn block_power_iteration<A: LinearOperator + ?Sized>(
    a: &A,
    starts: &[f64],
    opts: &PowerOptions,
) -> BlockPowerOutcome {
    block_power_iteration_core(a, starts, opts, None, &mut Workspace::new())
}

/// [`block_power_iteration`] drawing every working buffer — the column
/// slab, its image, the residual scratch vector and the per-column result
/// vectors — from a caller-owned [`Workspace`] pool. Result vectors
/// escape with the returned outcome; park them back via
/// [`Workspace::put`] once consumed and a warmed pool serves repeated
/// same-shape blocks without touching the allocator (the pool's
/// [`Workspace::bytes_since_mark`] stays zero). Bit-identical to
/// [`block_power_iteration`].
pub fn block_power_iteration_in<A: LinearOperator + ?Sized>(
    a: &A,
    starts: &[f64],
    opts: &PowerOptions,
    ws: &mut Workspace,
) -> BlockPowerOutcome {
    block_power_iteration_core(a, starts, opts, None, ws)
}

/// [`block_power_iteration`] with a durable [`CheckpointSession`]: the
/// whole column slab is snapshotted on the session's cadence, and a
/// pending resume snapshot (matching slab length) replaces the start
/// slab. Unlike the single-vector power loop, resume here is
/// *convergence-preserving* rather than replay-identical: per-column
/// freeze bookkeeping is not persisted, so already-converged columns
/// simply re-freeze on their first resumed step (their iterates are
/// already at tolerance).
pub fn block_power_iteration_durable<A: LinearOperator + ?Sized>(
    a: &A,
    starts: &[f64],
    opts: &PowerOptions,
    session: &mut CheckpointSession,
) -> BlockPowerOutcome {
    block_power_iteration_core(a, starts, opts, Some(session), &mut Workspace::new())
}

fn block_power_iteration_core<A: LinearOperator + ?Sized>(
    a: &A,
    starts: &[f64],
    opts: &PowerOptions,
    mut durable: Option<&mut CheckpointSession>,
    ws: &mut Workspace,
) -> BlockPowerOutcome {
    let n = a.len();
    assert!(
        !starts.is_empty() && starts.len() % n == 0,
        "block_power_iteration: starts must hold a whole number of columns"
    );
    assert!(opts.tol >= 0.0, "tolerance must be non-negative");
    let k = starts.len() / n;
    let dot: fn(&[f64], &[f64]) -> f64 = if opts.parallel_reductions {
        qs_matvec::parallel::par_dot
    } else {
        qs_linalg::dot
    };
    let norm: fn(&[f64]) -> f64 = if opts.parallel_reductions {
        qs_matvec::parallel::par_norm_l2
    } else {
        qs_linalg::norm_l2
    };

    let mu = opts.shift;
    // Resume: restore the whole slab and the iteration counter from a
    // pending snapshot (validated upstream). The saved columns are
    // already normalized, so they skip re-normalisation like the
    // single-vector resume path.
    let resume = durable
        .as_deref_mut()
        .and_then(|s| s.take_resume())
        .filter(|snap| snap.iterate.len() == starts.len());
    let mut iterations = 0;
    let mut x = match &resume {
        Some(snap) => {
            iterations = snap.iteration as usize;
            ws.take_copy(&snap.iterate)
        }
        None => {
            let mut x = ws.take_copy(starts);
            for col in x.chunks_exact_mut(n) {
                assert!(
                    normalize_l2(col) > 0.0,
                    "block_power_iteration: zero start column"
                );
            }
            x
        }
    };
    let mut y = ws.take(n * k);
    let mut r = ws.take(n);
    let mut done: Vec<Option<PowerOutcome>> = vec![None; k];

    while iterations < opts.max_iter && done.iter().any(|d| d.is_none()) {
        iterations += 1;
        // One wall-clock read per *block* step: when the deadline has
        // passed, every still-running column freezes this iteration with
        // its freshly-measured (λ, residual) and `timed_out` set.
        let expired = opts
            .deadline
            .is_some_and(|deadline| Instant::now() >= deadline);
        y.copy_from_slice(&x);
        a.apply_batch(&mut y);
        for (j, (xc, yc)) in x.chunks_exact_mut(n).zip(y.chunks_exact_mut(n)).enumerate() {
            if done[j].is_some() {
                continue; // frozen; its slab lane is dead weight
            }
            if mu != 0.0 {
                for (yi, &xi) in yc.iter_mut().zip(xc.iter()) {
                    *yi -= mu * xi;
                }
            }
            let lambda_shifted = dot(xc, yc);
            sub_scaled_into(yc, lambda_shifted, xc, &mut r);
            let residual = norm(&r);
            let finite = residual.is_finite() && lambda_shifted.is_finite();
            let converged = finite && residual <= opts.tol;
            let budget_spent = iterations == opts.max_iter || expired;
            if converged || !finite || budget_spent {
                let mut vector = ws.take_copy(xc);
                orient_positive(&mut vector);
                done[j] = Some(PowerOutcome {
                    lambda: lambda_shifted + mu,
                    vector,
                    iterations,
                    residual,
                    converged,
                    matvecs: iterations,
                    breakdown: if finite {
                        None
                    } else {
                        Some(Breakdown::NonFiniteIterate)
                    },
                    timed_out: expired && !converged && finite,
                });
                continue;
            }
            let ny = norm(yc);
            if !(ny.is_finite() && ny > 0.0) {
                let mut vector = ws.take_copy(xc);
                orient_positive(&mut vector);
                done[j] = Some(PowerOutcome {
                    lambda: lambda_shifted + mu,
                    vector,
                    iterations,
                    residual,
                    converged: false,
                    matvecs: iterations,
                    breakdown: Some(Breakdown::IterateCollapse),
                    timed_out: false,
                });
                continue;
            }
            let inv = 1.0 / ny;
            for (xi, &yi) in xc.iter_mut().zip(yc.iter()) {
                *xi = yi * inv;
            }
        }
        // Durable cadence point: the slab holds every live column's
        // fully-updated iterate (frozen lanes keep their final state).
        if let Some(session) = durable.as_deref_mut() {
            if session.due(iterations as u64) {
                let _ = session.write_snapshot(
                    iterations as u64,
                    (iterations * k) as u64,
                    (f64::INFINITY, 0),
                    &x,
                );
            }
        }
    }

    // max_iter == 0: nothing ran, report the (normalised) starts honestly.
    let mut columns: Vec<PowerOutcome> = Vec::with_capacity(k);
    for (d, xc) in done.into_iter().zip(x.chunks_exact(n)) {
        columns.push(match d {
            Some(out) => out,
            None => {
                let mut vector = ws.take_copy(xc);
                orient_positive(&mut vector);
                PowerOutcome {
                    lambda: 0.0,
                    vector,
                    iterations: 0,
                    residual: f64::INFINITY,
                    converged: false,
                    matvecs: 0,
                    breakdown: None,
                    timed_out: false,
                }
            }
        });
    }
    ws.put(y);
    ws.put(r);
    ws.put(x);
    let best = columns
        .iter()
        .enumerate()
        .min_by(|(_, a), (_, b)| {
            // total_cmp so a NaN residual ranks strictly worst instead of
            // comparing Equal and winning by position.
            (!a.converged)
                .cmp(&!b.converged)
                .then(a.residual.total_cmp(&b.residual))
        })
        .map(|(j, _)| j)
        .unwrap();
    BlockPowerOutcome {
        columns,
        best,
        iterations,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qs_landscape::{Landscape, Random, SinglePeak};
    use qs_matvec::{Fmmp, Formulation, WOperator};

    fn w_op(nu: u32, p: f64, landscape: &impl Landscape) -> WOperator<Fmmp> {
        WOperator::from_landscape(Fmmp::new(nu, p), landscape, Formulation::Right)
    }

    fn start_from(landscape: &impl Landscape) -> Vec<f64> {
        let mut s = landscape.materialize();
        qs_linalg::vec_ops::normalize_l1(&mut s);
        s
    }

    #[test]
    fn converges_on_single_peak() {
        let nu = 8u32;
        let landscape = SinglePeak::new(nu, 2.0, 1.0);
        let w = w_op(nu, 0.01, &landscape);
        let out = power_iteration(&w, &start_from(&landscape), &PowerOptions::default());
        assert!(out.converged, "residual stuck at {}", out.residual);
        assert!(out.lambda > 1.0 && out.lambda < 2.0);
        // Perron vector: strictly positive.
        assert!(out.vector.iter().all(|&v| v > 0.0));
        // Master sequence dominates at small p.
        let max = out.vector.iter().cloned().fold(f64::MIN, f64::max);
        assert_eq!(out.vector[0], max);
    }

    #[test]
    fn matches_dense_eigensolver() {
        let nu = 5u32;
        let landscape = Random::new(nu, 5.0, 1.0, 13);
        let w = w_op(nu, 0.02, &landscape);
        let out = power_iteration(&w, &start_from(&landscape), &PowerOptions::default());
        // Dense reference through the symmetric formulation.
        let f = landscape.materialize();
        let sq: Vec<f64> = f.iter().map(|x| x.sqrt()).collect();
        let qd = {
            use qs_mutation::MutationModel;
            qs_mutation::Uniform::new(nu, 0.02).dense()
        };
        let sd = qs_linalg::DenseMatrix::diagonal(&sq);
        let ws = sd.matmul(&qd).matmul(&sd);
        let eig = qs_linalg::jacobi_eigen(&ws);
        assert!(
            (out.lambda - eig.values[0]).abs() < 1e-9,
            "λ = {} vs dense {}",
            out.lambda,
            eig.values[0]
        );
    }

    #[test]
    fn shift_reduces_iteration_count() {
        // The paper reports ~10% fewer iterations with the conservative
        // shift on random landscapes.
        let nu = 10u32;
        let p = 0.01;
        let landscape = Random::new(nu, 5.0, 1.0, 7);
        let w = w_op(nu, p, &landscape);
        let start = start_from(&landscape);
        let plain = power_iteration(
            &w,
            &start,
            &PowerOptions {
                tol: 1e-12,
                ..Default::default()
            },
        );
        let mu = qs_matvec::conservative_shift(nu, p, landscape.f_min());
        let shifted = power_iteration(
            &w,
            &start,
            &PowerOptions {
                tol: 1e-12,
                shift: mu,
                ..Default::default()
            },
        );
        assert!(plain.converged && shifted.converged);
        assert!(
            shifted.iterations < plain.iterations,
            "shifted {} !< plain {}",
            shifted.iterations,
            plain.iterations
        );
        // Same eigenvalue either way.
        assert!((plain.lambda - shifted.lambda).abs() < 1e-9);
    }

    #[test]
    fn residual_is_shift_invariant() {
        let nu = 6u32;
        let landscape = SinglePeak::new(nu, 3.0, 1.0);
        let w = w_op(nu, 0.05, &landscape);
        let start = start_from(&landscape);
        let budget = PowerOptions {
            tol: 0.0,
            max_iter: 25,
            ..Default::default()
        };
        let plain = power_iteration(&w, &start, &budget);
        // Residual after k steps differs between shifted/unshifted runs
        // (different iterates), but the *reported* residual must always be
        // the true residual of the unshifted pair:
        let mut wx = vec![0.0; w.len()];
        w.apply_into(&plain.vector, &mut wx);
        let mut r = vec![0.0; w.len()];
        qs_linalg::vec_ops::sub_scaled_into(&wx, plain.lambda, &plain.vector, &mut r);
        assert!(
            (qs_linalg::norm_l2(&r) - plain.residual).abs() < 1e-16_f64.max(plain.residual * 1e-6)
        );
    }

    #[test]
    fn reports_non_convergence_honestly() {
        let nu = 6u32;
        let landscape = SinglePeak::new(nu, 2.0, 1.0);
        let w = w_op(nu, 0.03, &landscape);
        let out = power_iteration(
            &w,
            &start_from(&landscape),
            &PowerOptions {
                tol: 1e-15,
                max_iter: 3,
                ..Default::default()
            },
        );
        assert!(!out.converged);
        assert_eq!(out.iterations, 3);
        assert_eq!(out.matvecs, 3);
    }

    #[test]
    fn parallel_reductions_match_serial() {
        let nu = 10u32;
        let landscape = Random::new(nu, 5.0, 1.0, 5);
        let w = w_op(nu, 0.01, &landscape);
        let start = start_from(&landscape);
        let serial = power_iteration(&w, &start, &PowerOptions::default());
        let parallel = power_iteration(
            &w,
            &start,
            &PowerOptions {
                parallel_reductions: true,
                ..Default::default()
            },
        );
        assert!((serial.lambda - parallel.lambda).abs() < 1e-11);
        assert_eq!(serial.converged, parallel.converged);
    }

    #[test]
    fn probed_run_is_bit_identical_and_self_consistent() {
        use qs_telemetry::{RecordingProbe, SolverEvent};
        let nu = 8u32;
        let landscape = Random::new(nu, 5.0, 1.0, 19);
        let w = w_op(nu, 0.01, &landscape);
        let start = start_from(&landscape);
        let opts = PowerOptions::default();

        let plain = power_iteration(&w, &start, &opts);
        let mut rec = RecordingProbe::new();
        let probed = power_iteration_probed(&w, &start, &opts, &mut rec);

        // The probed run performs the identical floating-point sequence.
        assert_eq!(plain.lambda.to_bits(), probed.lambda.to_bits());
        assert_eq!(plain.residual.to_bits(), probed.residual.to_bits());
        assert_eq!(plain.iterations, probed.iterations);
        for (a, b) in plain.vector.iter().zip(&probed.vector) {
            assert_eq!(a.to_bits(), b.to_bits());
        }

        // The event stream is self-consistent with the outcome.
        assert_eq!(rec.iterations(), probed.iterations);
        let history = rec.residual_history();
        assert_eq!(history.len(), probed.iterations);
        assert_eq!(history.last().unwrap().to_bits(), probed.residual.to_bits());
        match rec.terminal() {
            Some(&SolverEvent::Converged {
                iterations,
                matvecs,
                residual,
                lambda,
            }) => {
                assert_eq!(iterations, probed.iterations);
                assert_eq!(matvecs, probed.matvecs);
                assert_eq!(residual.to_bits(), probed.residual.to_bits());
                assert_eq!(lambda.to_bits(), probed.lambda.to_bits());
            }
            other => panic!("expected Converged terminal event, got {other:?}"),
        }
        // Matvec stage timings arrived from the operator (ν fmmp stages +
        // 1 diagonal pass per iteration).
        let timed = rec
            .events()
            .iter()
            .filter(|e| matches!(e, SolverEvent::MatvecTimed { .. }))
            .count();
        assert_eq!(timed, probed.iterations * (nu as usize + 1));
    }

    #[test]
    fn probed_budget_run_ends_in_budget_event() {
        use qs_telemetry::{RecordingProbe, SolverEvent};
        let landscape = SinglePeak::new(6, 2.0, 1.0);
        let w = w_op(6, 0.03, &landscape);
        let mut rec = RecordingProbe::new();
        let out = power_iteration_probed(
            &w,
            &start_from(&landscape),
            &PowerOptions {
                tol: 1e-15,
                max_iter: 3,
                ..Default::default()
            },
            &mut rec,
        );
        assert!(!out.converged);
        assert!(matches!(
            rec.terminal(),
            Some(SolverEvent::Budget { iterations: 3, .. })
        ));
    }

    #[test]
    fn block_iteration_matches_standalone_runs() {
        // Three different starts advanced as one batched block must land on
        // the same eigenpair each standalone run finds.
        let nu = 7u32;
        let p = 0.02;
        let landscape = Random::new(nu, 5.0, 1.0, 23);
        let w = WOperator::from_landscape(Fmmp::fused(nu, p), &landscape, Formulation::Right);
        let n = 1usize << nu;
        let opts = PowerOptions {
            tol: 1e-12,
            ..Default::default()
        };
        let starts: Vec<Vec<f64>> = (0..3)
            .map(|s| {
                let mut v: Vec<f64> = (0..n)
                    .map(|i| 1.0 + (((i * 31 + s * 7) % 11) as f64) / 10.0)
                    .collect();
                normalize_l2(&mut v);
                v
            })
            .collect();
        let slab: Vec<f64> = starts.concat();
        let block = block_power_iteration(&w, &slab, &opts);
        assert_eq!(block.columns.len(), 3);
        for (j, start) in starts.iter().enumerate() {
            let solo = power_iteration(&w, start, &opts);
            let col = &block.columns[j];
            assert_eq!(solo.converged, col.converged, "column {j}");
            assert!(
                (solo.lambda - col.lambda).abs() < 1e-10,
                "column {j}: block λ {} vs solo {}",
                col.lambda,
                solo.lambda
            );
        }
        assert!(block.best_column().converged);
        assert!(block.iterations <= opts.max_iter);
    }

    #[test]
    fn block_iteration_respects_budget_per_column() {
        let landscape = SinglePeak::new(6, 2.0, 1.0);
        let w = w_op(6, 0.03, &landscape);
        let start = start_from(&landscape);
        let mut slab = start.clone();
        slab.extend_from_slice(&start);
        let out = block_power_iteration(
            &w,
            &slab,
            &PowerOptions {
                tol: 1e-15,
                max_iter: 3,
                ..Default::default()
            },
        );
        for col in &out.columns {
            assert!(!col.converged);
            assert_eq!(col.iterations, 3);
            assert_eq!(col.matvecs, 3);
        }
        assert_eq!(out.iterations, 3);
    }

    #[test]
    #[should_panic(expected = "zero start column")]
    fn block_rejects_zero_start_column() {
        let landscape = SinglePeak::new(4, 2.0, 1.0);
        let w = w_op(4, 0.01, &landscape);
        let mut slab = start_from(&landscape);
        slab.extend_from_slice(&[0.0; 16]);
        let _ = block_power_iteration(&w, &slab, &PowerOptions::default());
    }

    #[test]
    #[should_panic(expected = "zero start vector")]
    fn rejects_zero_start() {
        let landscape = SinglePeak::new(4, 2.0, 1.0);
        let w = w_op(4, 0.01, &landscape);
        let _ = power_iteration(&w, &[0.0; 16], &PowerOptions::default());
    }

    /// Wraps an operator and poisons element 0 of every application from
    /// the `from`-th matvec (0-based) onwards. With `alternate` the sign
    /// of the poison flips per application, so the corrupted map has no
    /// fixed point the iteration could (wrongly) converge to.
    struct PoisonOp<A> {
        inner: A,
        from: usize,
        value: f64,
        alternate: bool,
        count: std::sync::atomic::AtomicUsize,
    }

    impl<A: LinearOperator> LinearOperator for PoisonOp<A> {
        fn len(&self) -> usize {
            self.inner.len()
        }
        fn apply_into(&self, x: &[f64], y: &mut [f64]) {
            self.inner.apply_into(x, y);
            let k = self
                .count
                .fetch_add(1, std::sync::atomic::Ordering::Relaxed);
            if k >= self.from {
                let sign = if self.alternate && k % 2 == 1 {
                    -1.0
                } else {
                    1.0
                };
                y[0] = sign * self.value;
            }
        }
    }

    #[test]
    fn nan_matvec_trips_non_finite_guardrail_instead_of_spinning() {
        use qs_telemetry::RecordingProbe;
        let nu = 6u32;
        let landscape = SinglePeak::new(nu, 2.0, 1.0);
        let w = PoisonOp {
            inner: w_op(nu, 0.01, &landscape),
            from: 3,
            value: f64::NAN,
            alternate: false,
            count: Default::default(),
        };
        let mut rec = RecordingProbe::new();
        let out = power_iteration_probed(
            &w,
            &start_from(&landscape),
            &PowerOptions::default(),
            &mut rec,
        );
        assert!(!out.converged);
        assert_eq!(
            out.breakdown,
            Some(crate::guard::Breakdown::NonFiniteIterate)
        );
        // Stopped promptly, not at the 100k budget.
        assert!(out.iterations <= 5, "spun {} iterations", out.iterations);
        assert_eq!(rec.guardrail_kinds(), vec!["non_finite_iterate"]);
    }

    #[test]
    fn persistent_perturbation_trips_stagnation_guardrail() {
        // An alternating-sign perturbation injected into every matvec
        // keeps the residual bounded away from tol; with a stall window
        // the loop classifies the stagnation instead of burning the
        // whole budget.
        let nu = 6u32;
        let landscape = SinglePeak::new(nu, 2.0, 1.0);
        let w = PoisonOp {
            inner: w_op(nu, 0.01, &landscape),
            from: 0,
            value: 0.5,
            alternate: true,
            count: Default::default(),
        };
        let out = power_iteration(
            &w,
            &start_from(&landscape),
            &PowerOptions {
                stall_window: Some(50),
                ..Default::default()
            },
        );
        assert!(!out.converged);
        assert_eq!(
            out.breakdown,
            Some(crate::guard::Breakdown::ResidualStagnation)
        );
        assert!(
            out.iterations < 10_000,
            "spun {} iterations",
            out.iterations
        );
        // The iterate is still finite — usable as a best-so-far candidate.
        assert!(out.vector.iter().all(|v| v.is_finite()));
    }

    #[test]
    fn expired_deadline_returns_flagged_best_so_far() {
        let nu = 8u32;
        let landscape = SinglePeak::new(nu, 2.0, 1.0);
        let w = w_op(nu, 0.01, &landscape);
        let out = power_iteration(
            &w,
            &start_from(&landscape),
            &PowerOptions {
                tol: 0.0, // unreachable: only the deadline can stop it
                deadline: Some(std::time::Instant::now()),
                ..Default::default()
            },
        );
        assert!(out.timed_out);
        assert!(!out.converged);
        assert!(out.breakdown.is_none());
        // Exactly one iteration ran: the residual is measured at the
        // returned x, so the best-so-far contract holds.
        assert_eq!(out.iterations, 1);
        assert!(out.residual.is_finite());
        assert!(out.vector.iter().all(|v| v.is_finite()));
    }

    #[test]
    fn far_future_deadline_keeps_bit_identity() {
        let nu = 7u32;
        let landscape = Random::new(nu, 5.0, 1.0, 29);
        let w = w_op(nu, 0.01, &landscape);
        let start = start_from(&landscape);
        let plain = power_iteration(&w, &start, &PowerOptions::default());
        let dead = power_iteration(
            &w,
            &start,
            &PowerOptions {
                deadline: Some(std::time::Instant::now() + std::time::Duration::from_secs(3600)),
                ..Default::default()
            },
        );
        assert!(plain.converged && dead.converged && !dead.timed_out);
        assert_eq!(plain.lambda.to_bits(), dead.lambda.to_bits());
        assert_eq!(plain.iterations, dead.iterations);
        for (a, b) in plain.vector.iter().zip(&dead.vector) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
    }

    #[test]
    fn durable_power_resumes_bit_identically() {
        use crate::checkpoint::{CheckpointConfig, CheckpointSession, Checkpointer};
        let nu = 8u32;
        let landscape = Random::new(nu, 5.0, 1.0, 37);
        let w = w_op(nu, 0.01, &landscape);
        let start = start_from(&landscape);
        let opts = PowerOptions {
            tol: 1e-13,
            ..Default::default()
        };
        let reference = power_iteration(&w, &start, &opts);
        assert!(reference.converged);

        let dir = std::env::temp_dir().join(format!("qs-power-durable-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let mut cfg = CheckpointConfig::new(&dir);
        cfg.every_iterations = 5;

        // Phase 1: run with a small budget (simulating a crash), writing
        // checkpoints along the way.
        let writer = Checkpointer::create(cfg.clone()).unwrap();
        let mut session = CheckpointSession::new(writer, 1, opts.shift, opts.tol, 0, None);
        let cut = reference.iterations / 2;
        let partial = power_iteration_durable_in(
            &w,
            &start,
            &PowerOptions {
                max_iter: cut,
                ..opts
            },
            &mut qs_telemetry::NullProbe,
            &mut Workspace::new(),
            &mut session,
        );
        assert!(!partial.converged);

        // Phase 2: resume from the latest snapshot with the full budget.
        let snap = crate::checkpoint::load_latest(&dir, 1).unwrap().unwrap();
        assert!(snap.iteration > 0 && snap.iteration <= cut as u64);
        let writer = Checkpointer::create(cfg).unwrap();
        let mut session = CheckpointSession::new(writer, 1, opts.shift, opts.tol, 0, Some(snap));
        let resumed = power_iteration_durable_in(
            &w,
            &start,
            &opts,
            &mut qs_telemetry::NullProbe,
            &mut Workspace::new(),
            &mut session,
        );

        // Bit-identical to the uninterrupted run: same λ, same iterate,
        // same iteration count, same residual bits.
        assert!(resumed.converged);
        assert_eq!(resumed.iterations, reference.iterations);
        assert_eq!(resumed.lambda.to_bits(), reference.lambda.to_bits());
        assert_eq!(resumed.residual.to_bits(), reference.residual.to_bits());
        for (a, b) in reference.vector.iter().zip(&resumed.vector) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn guardrails_off_by_default_keep_bit_identity() {
        // Default options (no stall window) must not change the
        // floating-point sequence of a healthy run.
        let nu = 7u32;
        let landscape = Random::new(nu, 5.0, 1.0, 11);
        let w = w_op(nu, 0.01, &landscape);
        let start = start_from(&landscape);
        let plain = power_iteration(&w, &start, &PowerOptions::default());
        let guarded = power_iteration(
            &w,
            &start,
            &PowerOptions {
                stall_window: Some(10_000),
                ..Default::default()
            },
        );
        assert!(plain.converged && guarded.converged);
        assert_eq!(plain.lambda.to_bits(), guarded.lambda.to_bits());
        assert_eq!(plain.iterations, guarded.iterations);
        assert!(plain.breakdown.is_none() && guarded.breakdown.is_none());
    }
}
