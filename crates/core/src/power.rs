//! Shifted power iteration on implicit operators (paper Section 3).
//!
//! The power iteration offers "the best balance between storage
//! requirements and accuracy" for this problem class: two working vectors,
//! one operator application per step. Convergence is governed by
//! `λ₁/λ₀ < 1` (guaranteed `< 1` by Perron–Frobenius since `W` is positive
//! and, for `p < 1/2`, positive definite); a spectral shift `µ` improves
//! the rate to `(λ₁−µ)/(λ₀−µ)`.
//!
//! The stopping criterion is the paper's residual `R(λ̃, x̃) = ‖Wx̃ − λ̃x̃‖₂`.

use std::time::Instant;

use qs_linalg::vec_ops::{normalize_l2, orient_positive, sub_scaled_into};
use qs_matvec::LinearOperator;
use qs_telemetry::{NullProbe, Probe, SolverEvent};

use crate::checkpoint::CheckpointSession;
use crate::guard::{Breakdown, StallDetector};
use crate::workspace::Workspace;

/// Options for [`power_iteration`].
#[derive(Debug, Clone, Copy)]
pub struct PowerOptions {
    /// Residual tolerance `τ` on `‖Wx̃ − λ̃x̃‖₂` (paper uses `10⁻¹⁵` for
    /// exact engines, `10⁻¹⁰` for `Xmvp(5)`).
    pub tol: f64,
    /// Iteration budget.
    pub max_iter: usize,
    /// Spectral shift `µ` (0 disables; the paper's conservative choice is
    /// `(1−2p)^ν·f_min`, see [`qs_matvec::conservative_shift`]).
    pub shift: f64,
    /// Use the parallel reduction kernels for norms/dots (pairs with a
    /// parallel matvec engine; the paper notes the summations parallelise
    /// well and have "almost no influence" on runtime).
    pub parallel_reductions: bool,
    /// Residual-stagnation window: trip the guardrail after this many
    /// consecutive iterations without a new best residual. `None`
    /// disables stagnation detection (the default; the recovery-enabled
    /// `solve` path turns it on).
    pub stall_window: Option<usize>,
    /// Wall-clock deadline: once `Instant::now()` passes it the loop
    /// stops after the current iteration's residual measurement and
    /// reports the best-so-far state with
    /// [`PowerOutcome::timed_out`] set. The check is a pure scalar
    /// comparison placed before the iterate update, so the returned
    /// `(λ, x, residual)` triple stays self-consistent; `Instant::now()`
    /// is only consulted when a deadline is set, leaving the default
    /// path's floating-point sequence and syscall profile untouched.
    pub deadline: Option<Instant>,
    /// Block-path compaction trigger, as a fraction of the *current* slab
    /// width: when the number of live (unfrozen) columns drops to at most
    /// `compact_threshold × width`, the block iteration swaps the frozen
    /// columns to the slab tail and shrinks the batched apply, the shift
    /// subtraction and the convergence reductions to the live width. The
    /// default `0.75` amortises the `O(live · N)` column swaps against at
    /// least a 25 % per-step saving; `0.0` disables compaction (every
    /// frozen column rides the full batch as dead weight, the pre-existing
    /// behaviour). Per-column iterates are bit-identical either way — the
    /// batched kernels are columnwise bit-exact at any width, and the
    /// per-column reductions never mix lanes. Ignored by the single-vector
    /// paths.
    pub compact_threshold: f64,
}

impl Default for PowerOptions {
    fn default() -> Self {
        PowerOptions {
            tol: 1e-13,
            max_iter: 100_000,
            shift: 0.0,
            parallel_reductions: false,
            stall_window: None,
            deadline: None,
            compact_threshold: 0.75,
        }
    }
}

/// Outcome of a power iteration run.
#[derive(Debug, Clone)]
pub struct PowerOutcome {
    /// Approximated dominant eigenvalue `λ̃₀` of the *unshifted* operator.
    pub lambda: f64,
    /// Unit-L2 eigenvector, oriented non-negative (Perron orientation).
    pub vector: Vec<f64>,
    /// Iterations performed.
    pub iterations: usize,
    /// Final residual `‖Wx̃ − λ̃x̃‖₂`.
    pub residual: f64,
    /// Did the residual reach `tol` within the budget?
    pub converged: bool,
    /// Operator applications performed (= iterations; kept separately so
    /// engines with inner iterations can report honestly).
    pub matvecs: usize,
    /// Set when a guardrail stopped the loop early: the iterate went
    /// non-finite, the residual stagnated for a full window, or the
    /// iterate collapsed to zero. `None` for convergence or honest
    /// budget exhaustion.
    pub breakdown: Option<Breakdown>,
    /// `true` when the wall-clock deadline expired before convergence
    /// (see [`PowerOptions::deadline`]); the outcome is the
    /// best-so-far state at expiry.
    pub timed_out: bool,
}

/// Run the (optionally shifted) power iteration `x ← (A − µI)x / ‖·‖` from
/// `start`, reporting the eigenpair of the **unshifted** `A`.
///
/// The residual of the shifted pair equals the residual of the unshifted
/// pair (`(A−µI)x − (λ−µ)x = Ax − λx`), so the stopping criterion is
/// shift-invariant and runs with shift can be compared directly to runs
/// without.
///
/// # Panics
///
/// Panics if `start.len() != a.len()`, the start vector is zero, or `tol`
/// is negative. Numerical trouble mid-run (non-finite iterate, stagnating
/// residual, iterate collapsing to zero because `µ` hit an eigenvalue) no
/// longer panics: the loop stops early and classifies the failure in
/// [`PowerOutcome::breakdown`].
pub fn power_iteration<A: LinearOperator + ?Sized>(
    a: &A,
    start: &[f64],
    opts: &PowerOptions,
) -> PowerOutcome {
    power_iteration_probed(a, start, opts, &mut NullProbe)
}

/// [`power_iteration`] with a telemetry [`Probe`].
///
/// Per iteration the probe receives [`SolverEvent::IterationStart`], the
/// operator's per-stage [`SolverEvent::MatvecTimed`] events, and one
/// [`SolverEvent::Residual`] carrying the unshifted eigenvalue estimate;
/// the run ends with [`SolverEvent::Converged`] or [`SolverEvent::Budget`].
/// With a disabled probe (e.g. [`NullProbe`]) every floating-point
/// operation is identical to [`power_iteration`]'s, so the output matches
/// bit for bit.
pub fn power_iteration_probed<A: LinearOperator + ?Sized, P: Probe>(
    a: &A,
    start: &[f64],
    opts: &PowerOptions,
    probe: &mut P,
) -> PowerOutcome {
    power_iteration_probed_in(a, start, opts, probe, &mut Workspace::new())
}

/// [`power_iteration_probed`] drawing its working vectors (iterate, image,
/// residual) from a caller-owned [`Workspace`] pool.
///
/// The image and residual buffers are returned to the pool on exit; the
/// iterate escapes as [`PowerOutcome::vector`]. A pool warmed with three
/// `N`-buffers therefore runs the whole loop without touching the
/// allocator — the property `solve` reports through
/// [`SolverEvent::SolveAllocation`] and the telemetry smoke test pins at
/// zero. The floating-point sequence is identical to
/// [`power_iteration_probed`] regardless of pool state.
pub fn power_iteration_probed_in<A: LinearOperator + ?Sized, P: Probe>(
    a: &A,
    start: &[f64],
    opts: &PowerOptions,
    probe: &mut P,
    ws: &mut Workspace,
) -> PowerOutcome {
    power_iteration_core(a, start, opts, probe, ws, None)
}

/// [`power_iteration_probed_in`] with a durable [`CheckpointSession`]:
/// snapshots are written on the session's cadence, and a pending resume
/// snapshot (if the session holds one) replaces the start vector
/// *bit-exactly* — the saved iterate is already unit-normalized, so it
/// re-enters the loop without renormalisation and the continued run
/// replays the exact floating-point sequence of the uninterrupted one.
pub fn power_iteration_durable_in<A: LinearOperator + ?Sized, P: Probe>(
    a: &A,
    start: &[f64],
    opts: &PowerOptions,
    probe: &mut P,
    ws: &mut Workspace,
    session: &mut CheckpointSession,
) -> PowerOutcome {
    power_iteration_core(a, start, opts, probe, ws, Some(session))
}

fn power_iteration_core<A: LinearOperator + ?Sized, P: Probe>(
    a: &A,
    start: &[f64],
    opts: &PowerOptions,
    probe: &mut P,
    ws: &mut Workspace,
    mut durable: Option<&mut CheckpointSession>,
) -> PowerOutcome {
    assert_eq!(
        start.len(),
        a.len(),
        "power_iteration: start length mismatch"
    );
    assert!(opts.tol >= 0.0, "tolerance must be non-negative");
    let n = a.len();
    let dot: fn(&[f64], &[f64]) -> f64 = if opts.parallel_reductions {
        qs_matvec::parallel::par_dot
    } else {
        qs_linalg::dot
    };
    let norm: fn(&[f64]) -> f64 = if opts.parallel_reductions {
        qs_matvec::parallel::par_norm_l2
    } else {
        qs_linalg::norm_l2
    };

    let mut iterations = 0;
    let mut stall = opts.stall_window.map(StallDetector::new);
    // Resume: a pending snapshot (validated against the problem hash by
    // the solver entry point) replaces the start state. Its iterate was
    // captured *after* the end-of-iteration normalisation, so it is used
    // bit-exactly — re-normalising an already-unit vector is not a
    // bitwise no-op and would break replay identity.
    let resume = durable
        .as_deref_mut()
        .and_then(|s| s.take_resume())
        .filter(|snap| snap.iterate.len() == n);
    let mut x = match &resume {
        Some(snap) => {
            iterations = snap.iteration as usize;
            if let Some(window) = opts.stall_window {
                stall = Some(StallDetector::restore(
                    window,
                    snap.stall_best,
                    snap.stall_count as usize,
                ));
            }
            probe.record(&SolverEvent::CheckpointLoaded { iter: iterations });
            ws.take_copy(&snap.iterate)
        }
        None => {
            let mut x = ws.take_copy(start);
            assert!(
                normalize_l2(&mut x) > 0.0,
                "power_iteration: zero start vector"
            );
            x
        }
    };

    // The image and residual live entirely inside the loop, so they can use
    // the 64-byte-aligned pool window: every span the matvec schedule hands
    // to the SIMD fibre kernels then starts on a cache-line boundary. The
    // iterate `x` escapes in the outcome and stays a plain `Vec`.
    let mut y = ws.take_aligned(n);
    let mut r = ws.take_aligned(n);
    let mu = opts.shift;
    let mut lambda_shifted = 0.0;
    let mut residual = f64::INFINITY;
    let mut converged = false;
    let mut breakdown = None;
    let mut timed_out = false;

    // Invariant: the returned (λ, x, residual) triple is self-consistent —
    // the residual is measured at exactly the x that is returned, so
    // recomputing ‖Wx − λx‖ on the output reproduces `residual`.
    while iterations < opts.max_iter {
        iterations += 1;
        probe.record(&SolverEvent::IterationStart { iter: iterations });
        if probe.enabled() {
            a.apply_into_probed(&x, &mut y, probe);
        } else {
            a.apply_into(&x, &mut y);
        }
        if mu != 0.0 {
            for (yi, &xi) in y.iter_mut().zip(&x) {
                *yi -= mu * xi;
            }
        }
        // Rayleigh quotient of the shifted operator (x has unit norm).
        lambda_shifted = dot(&x, &y);
        sub_scaled_into(&y, lambda_shifted, &x, &mut r);
        residual = norm(&r);
        probe.record(&SolverEvent::Residual {
            iter: iterations,
            value: residual,
            lambda: lambda_shifted + mu,
        });
        if let Some(session) = durable.as_deref_mut() {
            session.push_residual(residual);
        }
        // Guardrails. The checks are pure comparisons on already-computed
        // scalars, so the fault-free floating-point sequence is unchanged.
        // The non-finite check runs before the convergence test: a NaN λ
        // must never be reported as a converged eigenvalue.
        if !residual.is_finite() || !lambda_shifted.is_finite() {
            breakdown = Some(Breakdown::NonFiniteIterate);
            probe.record(&SolverEvent::GuardrailTripped {
                kind: Breakdown::NonFiniteIterate.label(),
                iter: iterations,
            });
            break;
        }
        if residual <= opts.tol {
            converged = true;
            break; // keep the x the residual was measured at
        }
        if let Some(stall) = stall.as_mut() {
            if stall.observe(residual) {
                breakdown = Some(Breakdown::ResidualStagnation);
                probe.record(&SolverEvent::GuardrailTripped {
                    kind: Breakdown::ResidualStagnation.label(),
                    iter: iterations,
                });
                break;
            }
        }
        // The deadline check sits with the budget check, *before* the
        // iterate update, so expiry hands back the exact x the residual
        // was measured at — a flagged best-so-far, never a torn state.
        if let Some(deadline) = opts.deadline {
            if Instant::now() >= deadline {
                timed_out = true;
                break;
            }
        }
        if iterations == opts.max_iter {
            break;
        }
        let ny = norm(&y);
        if !(ny.is_finite() && ny > 0.0) {
            breakdown = Some(Breakdown::IterateCollapse);
            probe.record(&SolverEvent::GuardrailTripped {
                kind: Breakdown::IterateCollapse.label(),
                iter: iterations,
            });
            break;
        }
        let inv = 1.0 / ny;
        for (xi, &yi) in x.iter_mut().zip(y.iter()) {
            *xi = yi * inv;
        }
        // Durable cadence point: x now holds the fully-updated iterate
        // entering iteration k+1, so a snapshot taken here resumes by
        // setting `iterations = k` and continuing — the replayed FP
        // sequence is identical to the uninterrupted run's.
        if let Some(session) = durable.as_deref_mut() {
            if session.due(iterations as u64) {
                let stall_state = stall
                    .as_ref()
                    .map(StallDetector::state)
                    .unwrap_or((f64::INFINITY, 0));
                match session.write_snapshot(iterations as u64, iterations as u64, stall_state, &x)
                {
                    Ok(bytes) => probe.record(&SolverEvent::CheckpointWritten {
                        iter: iterations,
                        bytes,
                    }),
                    // A failed checkpoint write must never kill a healthy
                    // solve: surface it in the trace and keep iterating.
                    Err(_) => probe.record(&SolverEvent::CheckpointRejected {
                        reason: "write_failed",
                    }),
                }
            }
        }
    }

    ws.put_aligned(y);
    ws.put_aligned(r);
    orient_positive(&mut x);
    if converged {
        probe.record(&SolverEvent::Converged {
            iterations,
            matvecs: iterations,
            residual,
            lambda: lambda_shifted + mu,
        });
    } else {
        probe.record(&SolverEvent::Budget {
            iterations,
            matvecs: iterations,
            residual,
        });
    }
    PowerOutcome {
        lambda: lambda_shifted + mu,
        vector: x,
        iterations,
        residual,
        converged,
        matvecs: iterations,
        breakdown,
        timed_out,
    }
}

/// Outcome of a [`block_power_iteration`] run: one per-column record plus
/// the index of the best column.
#[derive(Debug, Clone)]
pub struct BlockPowerOutcome {
    /// Per-column outcomes, in start-column order. Each is exactly what a
    /// standalone [`power_iteration`] would report for that column.
    pub columns: Vec<PowerOutcome>,
    /// Index of the best column: converged columns beat unconverged ones,
    /// ties broken by smaller residual.
    pub best: usize,
    /// Block iterations performed (= the max over column iteration
    /// counts; every iteration costs one batched operator application).
    pub iterations: usize,
    /// Number of slab compactions performed (see
    /// [`PowerOptions::compact_threshold`]).
    pub compactions: usize,
    /// Matvec *columns* actually paid for: the sum over block steps of
    /// the slab width at that step. Without compaction this is
    /// `iterations × k`.
    pub matvec_columns: u64,
    /// Matvec columns avoided by compaction:
    /// `iterations × k − matvec_columns`. Zero when compaction is
    /// disabled or never triggered.
    pub matvec_columns_saved: u64,
}

impl BlockPowerOutcome {
    /// Borrow the best column's outcome.
    pub fn best_column(&self) -> &PowerOutcome {
        &self.columns[self.best]
    }
}

/// Block power iteration: advance `k` start columns simultaneously, one
/// [`LinearOperator::apply_batch`] per step instead of `k` separate
/// applications, so transform engines (Fmmp, FWHT, `QShiftInvert`)
/// amortise their stage traversal across the block.
///
/// `starts` holds the `k` columns contiguously (`k = starts.len() / N`).
/// Each column runs the same shifted iteration as [`power_iteration`] and
/// freezes as soon as it converges or trips a guardrail; the block stops
/// when every column is frozen or the iteration budget is spent. Columns
/// are *not* orthogonalised against each other — this is a batched
/// multi-start, not a subspace iteration, and each column converges to the
/// dominant eigenpair exactly as its standalone run would.
///
/// As columns freeze the slab *compacts*: once the live fraction drops to
/// [`PowerOptions::compact_threshold`], frozen columns are swapped to the
/// slab tail and the batched apply, shift subtraction and convergence
/// reductions all run at the live width — converged columns stop costing
/// matvec columns. Per-column results are bit-identical with compaction on
/// or off: the batch kernels are columnwise bit-exact at any width
/// (pinned in `tests/kernel_properties.rs`) and the fused per-column
/// reductions ([`qs_matvec::simd::block_dot`] /
/// [`qs_matvec::simd::block_step_norms`]) read only that column's `N`
/// elements with a fixed lane structure independent of slab position.
///
/// # Panics
///
/// Panics if `starts` is empty or not a multiple of `a.len()`, any start
/// column is zero, `tol` is negative, or `compact_threshold` is outside
/// `[0, 1]`.
pub fn block_power_iteration<A: LinearOperator + ?Sized>(
    a: &A,
    starts: &[f64],
    opts: &PowerOptions,
) -> BlockPowerOutcome {
    block_power_iteration_core(a, starts, opts, None, &mut Workspace::new())
}

/// [`block_power_iteration`] drawing every working buffer — the column
/// slab, its image, the per-column freeze bookkeeping (owner/position
/// index maps, status codes, per-column λ/residual/iteration records) and
/// the per-column result vectors — from a caller-owned [`Workspace`]
/// pool. Result vectors escape with the returned outcome; park them back
/// via [`Workspace::put`] once consumed and a warmed pool serves repeated
/// same-shape blocks — compaction included — without touching the
/// allocator (the pool's [`Workspace::bytes_since_mark`] stays zero, the
/// property `tests/alloc_free.rs` pins). Bit-identical to
/// [`block_power_iteration`].
pub fn block_power_iteration_in<A: LinearOperator + ?Sized>(
    a: &A,
    starts: &[f64],
    opts: &PowerOptions,
    ws: &mut Workspace,
) -> BlockPowerOutcome {
    block_power_iteration_core(a, starts, opts, None, ws)
}

/// [`block_power_iteration`] with a durable [`CheckpointSession`]: the
/// whole column slab (in slot order) plus the per-column freeze
/// bookkeeping — the slot→column owner map, each column's state code,
/// frozen λ/residual and freeze iteration — is snapshotted on the
/// session's cadence as a [`crate::checkpoint::BlockState`], and a
/// pending resume snapshot (matching slab length) replaces the start
/// slab. Resume is replay-identical like the single-vector path: frozen
/// columns are restored frozen (they are *not* re-run) and live columns
/// continue the exact floating-point sequence of the uninterrupted run,
/// compaction state included. Format-v1 snapshots carry no block state
/// and fall back to the old convergence-preserving behaviour: every
/// column resumes live and the already-converged ones re-freeze on their
/// first resumed step.
pub fn block_power_iteration_durable<A: LinearOperator + ?Sized>(
    a: &A,
    starts: &[f64],
    opts: &PowerOptions,
    session: &mut CheckpointSession,
) -> BlockPowerOutcome {
    block_power_iteration_core(a, starts, opts, Some(session), &mut Workspace::new())
}

fn block_power_iteration_core<A: LinearOperator + ?Sized>(
    a: &A,
    starts: &[f64],
    opts: &PowerOptions,
    mut durable: Option<&mut CheckpointSession>,
    ws: &mut Workspace,
) -> BlockPowerOutcome {
    use crate::checkpoint::{block_state_code, BlockColumnState, BlockState};
    const LIVE: usize = block_state_code::LIVE as usize;
    const CONVERGED: usize = block_state_code::CONVERGED as usize;
    const NON_FINITE: usize = block_state_code::NON_FINITE as usize;
    const COLLAPSE: usize = block_state_code::COLLAPSE as usize;
    const BUDGET: usize = block_state_code::BUDGET as usize;
    const TIMED_OUT: usize = block_state_code::TIMED_OUT as usize;

    let n = a.len();
    assert!(
        !starts.is_empty() && starts.len() % n == 0,
        "block_power_iteration: starts must hold a whole number of columns"
    );
    assert!(opts.tol >= 0.0, "tolerance must be non-negative");
    assert!(
        (0.0..=1.0).contains(&opts.compact_threshold),
        "compact_threshold must lie in [0, 1]"
    );
    let k = starts.len() / n;
    let mu = opts.shift;

    // Per-column freeze bookkeeping, all pooled. `owner[slot]` names the
    // original column occupying that slab slot, `pos[col]` its inverse;
    // compaction permutes both in lockstep. `status` holds
    // `checkpoint::block_state_code` values per *column*.
    let mut owner = ws.take_indices(k);
    let mut pos = ws.take_indices(k);
    let mut status = ws.take_indices(k);
    let mut col_iter = ws.take_indices(k);
    let mut col_lambda = ws.take(k);
    let mut col_residual = ws.take(k);
    for j in 0..k {
        owner[j] = j;
        pos[j] = j;
        status[j] = LIVE;
        col_iter[j] = 0;
        col_lambda[j] = 0.0;
        col_residual[j] = f64::INFINITY;
    }

    // Resume: restore the slot-ordered slab, the freeze bookkeeping and
    // the counters from a pending snapshot (validated upstream and by
    // `BlockState::validate` at decode). Saved columns are already
    // normalized, so they skip re-normalisation like the single-vector
    // resume path; frozen columns come back frozen and are never re-run.
    // A v1 snapshot (no block state) restores every column live — the old
    // convergence-preserving behaviour.
    let resume = durable
        .as_deref_mut()
        .and_then(|s| s.take_resume())
        .filter(|snap| snap.iterate.len() == starts.len());
    let mut iterations = 0;
    let mut matvec_columns: u64 = 0;
    let mut compactions = 0usize;
    let mut width = k;
    let mut x = match &resume {
        Some(snap) => {
            iterations = snap.iteration as usize;
            matvec_columns = snap.matvecs;
            if let Some(block) = snap.block.as_ref().filter(|b| b.owner.len() == k) {
                width = block.width as usize;
                for (slot, &col) in block.owner.iter().enumerate() {
                    owner[slot] = col as usize;
                    pos[col as usize] = slot;
                }
                for (col, st) in block.columns.iter().enumerate() {
                    status[col] = st.state as usize;
                    col_iter[col] = st.iteration as usize;
                    col_lambda[col] = st.lambda;
                    col_residual[col] = st.residual;
                }
            }
            ws.take_copy(&snap.iterate)
        }
        None => {
            let mut x = ws.take_copy(starts);
            for col in x.chunks_exact_mut(n) {
                assert!(
                    normalize_l2(col) > 0.0,
                    "block_power_iteration: zero start column"
                );
            }
            x
        }
    };
    let mut y = ws.take(n * k);
    let mut live = owner[..width]
        .iter()
        .filter(|&&c| status[c] == LIVE)
        .count();

    while iterations < opts.max_iter && live > 0 {
        iterations += 1;
        // One wall-clock read per *block* step: when the deadline has
        // passed, every still-running column freezes this iteration with
        // its freshly-measured (λ, residual) and `timed_out` set.
        let expired = opts
            .deadline
            .is_some_and(|deadline| Instant::now() >= deadline);
        // The batched apply, the shift subtraction and the reductions all
        // run at the current width; every column in the slab prefix costs
        // a matvec column this step, frozen-but-uncompacted ones included
        // (they are dead weight until the next compaction).
        let active = width * n;
        y[..active].copy_from_slice(&x[..active]);
        a.apply_batch_selected(&mut y[..active], &owner[..width]);
        matvec_columns += width as u64;
        for slot in 0..width {
            let col = owner[slot];
            if status[col] != LIVE {
                continue; // frozen since the last compaction
            }
            let xc = &mut x[slot * n..(slot + 1) * n];
            let yc = &mut y[slot * n..(slot + 1) * n];
            if mu != 0.0 {
                for (yi, &xi) in yc.iter_mut().zip(xc.iter()) {
                    *yi -= mu * xi;
                }
            }
            // Fused per-column reductions: one traversal yields λ, then a
            // second yields ‖y − λx‖² and ‖y‖² together. The fixed
            // 8-accumulator lane structure makes the result bit-identical
            // across scalar/AVX2/AVX-512 and independent of slab
            // position, so compaction cannot perturb any column.
            let lambda_shifted = qs_matvec::simd::block_dot(xc, yc);
            let (rss, yss) = qs_matvec::simd::block_step_norms(xc, yc, lambda_shifted);
            let residual = rss.sqrt();
            let finite = residual.is_finite() && lambda_shifted.is_finite();
            let converged = finite && residual <= opts.tol;
            let budget_spent = iterations == opts.max_iter || expired;
            if converged || !finite || budget_spent {
                status[col] = if converged {
                    CONVERGED
                } else if !finite {
                    NON_FINITE
                } else if expired {
                    TIMED_OUT
                } else {
                    BUDGET
                };
                col_lambda[col] = lambda_shifted + mu;
                col_residual[col] = residual;
                col_iter[col] = iterations;
                live -= 1;
                continue; // x lane keeps the iterate the residual was measured at
            }
            let ny = yss.sqrt();
            if !(ny.is_finite() && ny > 0.0) {
                status[col] = COLLAPSE;
                col_lambda[col] = lambda_shifted + mu;
                col_residual[col] = residual;
                col_iter[col] = iterations;
                live -= 1;
                continue;
            }
            let inv = 1.0 / ny;
            for (xi, &yi) in xc.iter_mut().zip(yc.iter()) {
                *xi = yi * inv;
            }
        }
        // Compaction: once the live fraction drops to the threshold, swap
        // frozen columns to the slab tail (two-pointer partition, stable
        // for the live columns) and shrink the working width. The swap
        // moves whole columns bit-exactly; frozen lanes park beyond
        // `width` untouched until final assembly.
        if live > 0
            && live < width
            && opts.compact_threshold > 0.0
            && live as f64 <= opts.compact_threshold * width as f64
        {
            let mut dst = 0usize;
            for slot in 0..width {
                if status[owner[slot]] != LIVE {
                    continue;
                }
                if slot != dst {
                    let (lo, hi) = x.split_at_mut(slot * n);
                    lo[dst * n..(dst + 1) * n].swap_with_slice(&mut hi[..n]);
                    owner.swap(dst, slot);
                    pos[owner[dst]] = dst;
                    pos[owner[slot]] = slot;
                }
                dst += 1;
            }
            width = live;
            compactions += 1;
        }
        // Durable cadence point: the slab holds every live column's
        // fully-updated iterate (frozen lanes keep their final state), in
        // slot order; the block state records the slot→column map and the
        // per-column freeze records, so resume replays bit-identically
        // without re-running frozen columns. Steps that froze columns for
        // budget or deadline reasons are never snapshotted — those states
        // belong to *this run's* budget, not the problem, and a resumed
        // run with a fresh budget must continue such columns from the
        // last non-terminal snapshot (mirroring the single-vector loop,
        // which breaks before its cadence point on budget exhaustion).
        let terminal = iterations == opts.max_iter || expired;
        if let Some(session) = durable.as_deref_mut().filter(|_| !terminal) {
            if session.due(iterations as u64) {
                let block = BlockState {
                    width: width as u64,
                    owner: owner.iter().map(|&c| c as u64).collect(),
                    columns: (0..k)
                        .map(|col| BlockColumnState {
                            state: status[col] as u8,
                            lambda: col_lambda[col],
                            residual: col_residual[col],
                            iteration: col_iter[col] as u64,
                        })
                        .collect(),
                };
                let _ = session.write_block_snapshot(iterations as u64, matvec_columns, &x, block);
            }
        }
    }

    // Final assembly, in original column order: each column's vector is
    // copied out of its slab slot (frozen lanes were left at the iterate
    // their residual was measured at). Columns still `LIVE` here mean the
    // loop never ran for them (`max_iter == 0`); report the normalised
    // starts honestly.
    let mut columns: Vec<PowerOutcome> = Vec::with_capacity(k);
    for col in 0..k {
        let slot = pos[col];
        let mut vector = ws.take_copy(&x[slot * n..(slot + 1) * n]);
        orient_positive(&mut vector);
        let state = status[col];
        columns.push(if state == LIVE {
            PowerOutcome {
                lambda: 0.0,
                vector,
                iterations: 0,
                residual: f64::INFINITY,
                converged: false,
                matvecs: 0,
                breakdown: None,
                timed_out: false,
            }
        } else {
            PowerOutcome {
                lambda: col_lambda[col],
                vector,
                iterations: col_iter[col],
                residual: col_residual[col],
                converged: state == CONVERGED,
                matvecs: col_iter[col],
                breakdown: match state {
                    NON_FINITE => Some(Breakdown::NonFiniteIterate),
                    COLLAPSE => Some(Breakdown::IterateCollapse),
                    _ => None,
                },
                timed_out: state == TIMED_OUT,
            }
        });
    }
    ws.put(y);
    ws.put(x);
    ws.put(col_lambda);
    ws.put(col_residual);
    ws.put_indices(owner);
    ws.put_indices(pos);
    ws.put_indices(status);
    ws.put_indices(col_iter);
    let best = columns
        .iter()
        .enumerate()
        .min_by(|(_, a), (_, b)| {
            // total_cmp so a NaN residual ranks strictly worst instead of
            // comparing Equal and winning by position.
            (!a.converged)
                .cmp(&!b.converged)
                .then(a.residual.total_cmp(&b.residual))
        })
        .map(|(j, _)| j)
        .unwrap();
    let matvec_columns_saved = (iterations as u64 * k as u64).saturating_sub(matvec_columns);
    BlockPowerOutcome {
        columns,
        best,
        iterations,
        compactions,
        matvec_columns,
        matvec_columns_saved,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qs_landscape::{Landscape, Random, SinglePeak};
    use qs_matvec::{Fmmp, Formulation, WOperator};

    fn w_op(nu: u32, p: f64, landscape: &impl Landscape) -> WOperator<Fmmp> {
        WOperator::from_landscape(Fmmp::new(nu, p), landscape, Formulation::Right)
    }

    fn start_from(landscape: &impl Landscape) -> Vec<f64> {
        let mut s = landscape.materialize();
        qs_linalg::vec_ops::normalize_l1(&mut s);
        s
    }

    #[test]
    fn converges_on_single_peak() {
        let nu = 8u32;
        let landscape = SinglePeak::new(nu, 2.0, 1.0);
        let w = w_op(nu, 0.01, &landscape);
        let out = power_iteration(&w, &start_from(&landscape), &PowerOptions::default());
        assert!(out.converged, "residual stuck at {}", out.residual);
        assert!(out.lambda > 1.0 && out.lambda < 2.0);
        // Perron vector: strictly positive.
        assert!(out.vector.iter().all(|&v| v > 0.0));
        // Master sequence dominates at small p.
        let max = out.vector.iter().cloned().fold(f64::MIN, f64::max);
        assert_eq!(out.vector[0], max);
    }

    #[test]
    fn matches_dense_eigensolver() {
        let nu = 5u32;
        let landscape = Random::new(nu, 5.0, 1.0, 13);
        let w = w_op(nu, 0.02, &landscape);
        let out = power_iteration(&w, &start_from(&landscape), &PowerOptions::default());
        // Dense reference through the symmetric formulation.
        let f = landscape.materialize();
        let sq: Vec<f64> = f.iter().map(|x| x.sqrt()).collect();
        let qd = {
            use qs_mutation::MutationModel;
            qs_mutation::Uniform::new(nu, 0.02).dense()
        };
        let sd = qs_linalg::DenseMatrix::diagonal(&sq);
        let ws = sd.matmul(&qd).matmul(&sd);
        let eig = qs_linalg::jacobi_eigen(&ws);
        assert!(
            (out.lambda - eig.values[0]).abs() < 1e-9,
            "λ = {} vs dense {}",
            out.lambda,
            eig.values[0]
        );
    }

    #[test]
    fn shift_reduces_iteration_count() {
        // The paper reports ~10% fewer iterations with the conservative
        // shift on random landscapes.
        let nu = 10u32;
        let p = 0.01;
        let landscape = Random::new(nu, 5.0, 1.0, 7);
        let w = w_op(nu, p, &landscape);
        let start = start_from(&landscape);
        let plain = power_iteration(
            &w,
            &start,
            &PowerOptions {
                tol: 1e-12,
                ..Default::default()
            },
        );
        let mu = qs_matvec::conservative_shift(nu, p, landscape.f_min());
        let shifted = power_iteration(
            &w,
            &start,
            &PowerOptions {
                tol: 1e-12,
                shift: mu,
                ..Default::default()
            },
        );
        assert!(plain.converged && shifted.converged);
        assert!(
            shifted.iterations < plain.iterations,
            "shifted {} !< plain {}",
            shifted.iterations,
            plain.iterations
        );
        // Same eigenvalue either way.
        assert!((plain.lambda - shifted.lambda).abs() < 1e-9);
    }

    #[test]
    fn residual_is_shift_invariant() {
        let nu = 6u32;
        let landscape = SinglePeak::new(nu, 3.0, 1.0);
        let w = w_op(nu, 0.05, &landscape);
        let start = start_from(&landscape);
        let budget = PowerOptions {
            tol: 0.0,
            max_iter: 25,
            ..Default::default()
        };
        let plain = power_iteration(&w, &start, &budget);
        // Residual after k steps differs between shifted/unshifted runs
        // (different iterates), but the *reported* residual must always be
        // the true residual of the unshifted pair:
        let mut wx = vec![0.0; w.len()];
        w.apply_into(&plain.vector, &mut wx);
        let mut r = vec![0.0; w.len()];
        qs_linalg::vec_ops::sub_scaled_into(&wx, plain.lambda, &plain.vector, &mut r);
        assert!(
            (qs_linalg::norm_l2(&r) - plain.residual).abs() < 1e-16_f64.max(plain.residual * 1e-6)
        );
    }

    #[test]
    fn reports_non_convergence_honestly() {
        let nu = 6u32;
        let landscape = SinglePeak::new(nu, 2.0, 1.0);
        let w = w_op(nu, 0.03, &landscape);
        let out = power_iteration(
            &w,
            &start_from(&landscape),
            &PowerOptions {
                tol: 1e-15,
                max_iter: 3,
                ..Default::default()
            },
        );
        assert!(!out.converged);
        assert_eq!(out.iterations, 3);
        assert_eq!(out.matvecs, 3);
    }

    #[test]
    fn parallel_reductions_match_serial() {
        let nu = 10u32;
        let landscape = Random::new(nu, 5.0, 1.0, 5);
        let w = w_op(nu, 0.01, &landscape);
        let start = start_from(&landscape);
        let serial = power_iteration(&w, &start, &PowerOptions::default());
        let parallel = power_iteration(
            &w,
            &start,
            &PowerOptions {
                parallel_reductions: true,
                ..Default::default()
            },
        );
        assert!((serial.lambda - parallel.lambda).abs() < 1e-11);
        assert_eq!(serial.converged, parallel.converged);
    }

    #[test]
    fn probed_run_is_bit_identical_and_self_consistent() {
        use qs_telemetry::{RecordingProbe, SolverEvent};
        let nu = 8u32;
        let landscape = Random::new(nu, 5.0, 1.0, 19);
        let w = w_op(nu, 0.01, &landscape);
        let start = start_from(&landscape);
        let opts = PowerOptions::default();

        let plain = power_iteration(&w, &start, &opts);
        let mut rec = RecordingProbe::new();
        let probed = power_iteration_probed(&w, &start, &opts, &mut rec);

        // The probed run performs the identical floating-point sequence.
        assert_eq!(plain.lambda.to_bits(), probed.lambda.to_bits());
        assert_eq!(plain.residual.to_bits(), probed.residual.to_bits());
        assert_eq!(plain.iterations, probed.iterations);
        for (a, b) in plain.vector.iter().zip(&probed.vector) {
            assert_eq!(a.to_bits(), b.to_bits());
        }

        // The event stream is self-consistent with the outcome.
        assert_eq!(rec.iterations(), probed.iterations);
        let history = rec.residual_history();
        assert_eq!(history.len(), probed.iterations);
        assert_eq!(history.last().unwrap().to_bits(), probed.residual.to_bits());
        match rec.terminal() {
            Some(&SolverEvent::Converged {
                iterations,
                matvecs,
                residual,
                lambda,
            }) => {
                assert_eq!(iterations, probed.iterations);
                assert_eq!(matvecs, probed.matvecs);
                assert_eq!(residual.to_bits(), probed.residual.to_bits());
                assert_eq!(lambda.to_bits(), probed.lambda.to_bits());
            }
            other => panic!("expected Converged terminal event, got {other:?}"),
        }
        // Matvec stage timings arrived from the operator (ν fmmp stages +
        // 1 diagonal pass per iteration).
        let timed = rec
            .events()
            .iter()
            .filter(|e| matches!(e, SolverEvent::MatvecTimed { .. }))
            .count();
        assert_eq!(timed, probed.iterations * (nu as usize + 1));
    }

    #[test]
    fn probed_budget_run_ends_in_budget_event() {
        use qs_telemetry::{RecordingProbe, SolverEvent};
        let landscape = SinglePeak::new(6, 2.0, 1.0);
        let w = w_op(6, 0.03, &landscape);
        let mut rec = RecordingProbe::new();
        let out = power_iteration_probed(
            &w,
            &start_from(&landscape),
            &PowerOptions {
                tol: 1e-15,
                max_iter: 3,
                ..Default::default()
            },
            &mut rec,
        );
        assert!(!out.converged);
        assert!(matches!(
            rec.terminal(),
            Some(SolverEvent::Budget { iterations: 3, .. })
        ));
    }

    #[test]
    fn block_iteration_matches_standalone_runs() {
        // Three different starts advanced as one batched block must land on
        // the same eigenpair each standalone run finds.
        let nu = 7u32;
        let p = 0.02;
        let landscape = Random::new(nu, 5.0, 1.0, 23);
        let w = WOperator::from_landscape(Fmmp::fused(nu, p), &landscape, Formulation::Right);
        let n = 1usize << nu;
        let opts = PowerOptions {
            tol: 1e-12,
            ..Default::default()
        };
        let starts: Vec<Vec<f64>> = (0..3)
            .map(|s| {
                let mut v: Vec<f64> = (0..n)
                    .map(|i| 1.0 + (((i * 31 + s * 7) % 11) as f64) / 10.0)
                    .collect();
                normalize_l2(&mut v);
                v
            })
            .collect();
        let slab: Vec<f64> = starts.concat();
        let block = block_power_iteration(&w, &slab, &opts);
        assert_eq!(block.columns.len(), 3);
        for (j, start) in starts.iter().enumerate() {
            let solo = power_iteration(&w, start, &opts);
            let col = &block.columns[j];
            assert_eq!(solo.converged, col.converged, "column {j}");
            assert!(
                (solo.lambda - col.lambda).abs() < 1e-10,
                "column {j}: block λ {} vs solo {}",
                col.lambda,
                solo.lambda
            );
        }
        assert!(block.best_column().converged);
        assert!(block.iterations <= opts.max_iter);
    }

    #[test]
    fn block_iteration_respects_budget_per_column() {
        let landscape = SinglePeak::new(6, 2.0, 1.0);
        let w = w_op(6, 0.03, &landscape);
        let start = start_from(&landscape);
        let mut slab = start.clone();
        slab.extend_from_slice(&start);
        let out = block_power_iteration(
            &w,
            &slab,
            &PowerOptions {
                tol: 1e-15,
                max_iter: 3,
                ..Default::default()
            },
        );
        for col in &out.columns {
            assert!(!col.converged);
            assert_eq!(col.iterations, 3);
            assert_eq!(col.matvecs, 3);
        }
        assert_eq!(out.iterations, 3);
    }

    /// Mixed-speed start columns for the compaction tests: each column is
    /// the converged eigenvector plus noise scaled by a different power of
    /// ten, so freeze iterations spread over many block steps and the
    /// slab compacts repeatedly.
    fn staggered_slab<A: LinearOperator + ?Sized>(
        a: &A,
        landscape: &impl Landscape,
        n: usize,
        k: usize,
    ) -> Vec<f64> {
        let solo = power_iteration(a, &start_from(landscape), &PowerOptions::default());
        assert!(solo.converged);
        let mut slab = Vec::with_capacity(n * k);
        for s in 0..k {
            let eps = 10f64.powi(-3 * (k - 1 - s) as i32);
            let mut col: Vec<f64> = solo
                .vector
                .iter()
                .enumerate()
                .map(|(i, &v)| v + eps * (1.0 + (((i * 31 + s * 7) % 11) as f64) / 10.0))
                .collect();
            normalize_l2(&mut col);
            slab.extend_from_slice(&col);
        }
        slab
    }

    #[test]
    fn compaction_is_bit_identical_to_forced_full_width() {
        let nu = 7u32;
        let landscape = Random::new(nu, 5.0, 1.0, 41);
        let w = WOperator::from_landscape(Fmmp::fused(nu, 0.02), &landscape, Formulation::Right);
        let n = 1usize << nu;
        let k = 5usize;
        let slab = staggered_slab(&w, &landscape, n, k);
        let opts = PowerOptions {
            tol: 1e-12,
            ..Default::default()
        };
        let compacted = block_power_iteration(&w, &slab, &opts);
        let full = block_power_iteration(
            &w,
            &slab,
            &PowerOptions {
                compact_threshold: 0.0,
                ..opts
            },
        );
        // The full-width run pays k columns every step and never compacts;
        // the compacting run must actually have saved something here.
        assert_eq!(full.compactions, 0);
        assert_eq!(full.matvec_columns, full.iterations as u64 * k as u64);
        assert_eq!(full.matvec_columns_saved, 0);
        assert!(compacted.compactions > 0, "no compaction ever triggered");
        assert!(
            compacted.matvec_columns_saved > 0,
            "compaction saved nothing"
        );
        assert_eq!(
            compacted.matvec_columns + compacted.matvec_columns_saved,
            compacted.iterations as u64 * k as u64
        );
        // Per-column outcomes are bit-identical: same λ/residual bits,
        // same iterate bits, same iteration counts and classifications.
        assert_eq!(compacted.iterations, full.iterations);
        assert_eq!(compacted.best, full.best);
        for (j, (c, f)) in compacted.columns.iter().zip(&full.columns).enumerate() {
            assert_eq!(c.converged, f.converged, "column {j}");
            assert_eq!(c.iterations, f.iterations, "column {j}");
            assert_eq!(c.lambda.to_bits(), f.lambda.to_bits(), "column {j}");
            assert_eq!(c.residual.to_bits(), f.residual.to_bits(), "column {j}");
            for (a, b) in c.vector.iter().zip(&f.vector) {
                assert_eq!(a.to_bits(), b.to_bits(), "column {j}");
            }
        }
    }

    #[test]
    fn durable_block_resumes_bit_identically_without_rerunning_frozen_columns() {
        use crate::checkpoint::{
            block_state_code, CheckpointConfig, CheckpointSession, Checkpointer,
        };
        let nu = 7u32;
        let landscape = Random::new(nu, 5.0, 1.0, 43);
        let w = WOperator::from_landscape(Fmmp::fused(nu, 0.02), &landscape, Formulation::Right);
        let n = 1usize << nu;
        let k = 4usize;
        let slab = staggered_slab(&w, &landscape, n, k);
        let opts = PowerOptions {
            tol: 1e-12,
            ..Default::default()
        };
        let reference = block_power_iteration(&w, &slab, &opts);
        assert!(reference.columns.iter().all(|c| c.converged));
        let freeze_iters: Vec<usize> = reference.columns.iter().map(|c| c.iterations).collect();
        let earliest = *freeze_iters.iter().min().unwrap();
        let latest = *freeze_iters.iter().max().unwrap();
        assert!(earliest < latest, "need staggered freezes for this test");

        let dir = std::env::temp_dir().join(format!("qs-block-durable-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let mut cfg = CheckpointConfig::new(&dir);
        cfg.every_iterations = 1;

        // Phase 1: cut the budget after the earliest column froze but
        // before the block finished, snapshotting every iteration.
        let cut = earliest + (latest - earliest) / 2;
        let writer = Checkpointer::create(cfg.clone()).unwrap();
        let mut session = CheckpointSession::new(writer, 1, opts.shift, opts.tol, 0, None);
        let partial = block_power_iteration_durable(
            &w,
            &slab,
            &PowerOptions {
                max_iter: cut,
                ..opts
            },
            &mut session,
        );
        assert!(partial.columns.iter().any(|c| !c.converged));

        // The latest snapshot is from a non-terminal step (budget freezes
        // are never persisted) and carries the frozen columns' records.
        let snap = crate::checkpoint::load_latest(&dir, 1).unwrap().unwrap();
        assert!(snap.iteration > 0 && snap.iteration < cut as u64);
        let block = snap.block.as_ref().expect("block snapshots carry state");
        assert!(
            block
                .columns
                .iter()
                .all(|c| c.state != block_state_code::BUDGET
                    && c.state != block_state_code::TIMED_OUT)
        );
        assert!(
            block
                .columns
                .iter()
                .any(|c| c.state == block_state_code::CONVERGED),
            "the earliest column must resume frozen"
        );

        // Phase 2: resume with the full budget.
        let writer = Checkpointer::create(cfg).unwrap();
        let mut session = CheckpointSession::new(writer, 1, opts.shift, opts.tol, 0, Some(snap));
        let resumed = block_power_iteration_durable(&w, &slab, &opts, &mut session);

        // Bit-identical to the uninterrupted run, per column — frozen
        // columns kept their original freeze iteration (they were not
        // re-run), live ones replayed the exact sequence.
        assert_eq!(resumed.iterations, reference.iterations);
        for (j, (r, f)) in resumed.columns.iter().zip(&reference.columns).enumerate() {
            assert!(r.converged, "column {j}");
            assert_eq!(r.iterations, f.iterations, "column {j}");
            assert_eq!(r.lambda.to_bits(), f.lambda.to_bits(), "column {j}");
            assert_eq!(r.residual.to_bits(), f.residual.to_bits(), "column {j}");
            for (a, b) in r.vector.iter().zip(&f.vector) {
                assert_eq!(a.to_bits(), b.to_bits(), "column {j}");
            }
        }
        // The cumulative cost accounting survives the resume: restored
        // counter plus post-resume steps equals the uninterrupted total.
        assert_eq!(resumed.matvec_columns, reference.matvec_columns);
        assert_eq!(resumed.matvec_columns_saved, reference.matvec_columns_saved);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    #[should_panic(expected = "zero start column")]
    fn block_rejects_zero_start_column() {
        let landscape = SinglePeak::new(4, 2.0, 1.0);
        let w = w_op(4, 0.01, &landscape);
        let mut slab = start_from(&landscape);
        slab.extend_from_slice(&[0.0; 16]);
        let _ = block_power_iteration(&w, &slab, &PowerOptions::default());
    }

    #[test]
    #[should_panic(expected = "zero start vector")]
    fn rejects_zero_start() {
        let landscape = SinglePeak::new(4, 2.0, 1.0);
        let w = w_op(4, 0.01, &landscape);
        let _ = power_iteration(&w, &[0.0; 16], &PowerOptions::default());
    }

    /// Wraps an operator and poisons element 0 of every application from
    /// the `from`-th matvec (0-based) onwards. With `alternate` the sign
    /// of the poison flips per application, so the corrupted map has no
    /// fixed point the iteration could (wrongly) converge to.
    struct PoisonOp<A> {
        inner: A,
        from: usize,
        value: f64,
        alternate: bool,
        count: std::sync::atomic::AtomicUsize,
    }

    impl<A: LinearOperator> LinearOperator for PoisonOp<A> {
        fn len(&self) -> usize {
            self.inner.len()
        }
        fn apply_into(&self, x: &[f64], y: &mut [f64]) {
            self.inner.apply_into(x, y);
            let k = self
                .count
                .fetch_add(1, std::sync::atomic::Ordering::Relaxed);
            if k >= self.from {
                let sign = if self.alternate && k % 2 == 1 {
                    -1.0
                } else {
                    1.0
                };
                y[0] = sign * self.value;
            }
        }
    }

    #[test]
    fn nan_matvec_trips_non_finite_guardrail_instead_of_spinning() {
        use qs_telemetry::RecordingProbe;
        let nu = 6u32;
        let landscape = SinglePeak::new(nu, 2.0, 1.0);
        let w = PoisonOp {
            inner: w_op(nu, 0.01, &landscape),
            from: 3,
            value: f64::NAN,
            alternate: false,
            count: Default::default(),
        };
        let mut rec = RecordingProbe::new();
        let out = power_iteration_probed(
            &w,
            &start_from(&landscape),
            &PowerOptions::default(),
            &mut rec,
        );
        assert!(!out.converged);
        assert_eq!(
            out.breakdown,
            Some(crate::guard::Breakdown::NonFiniteIterate)
        );
        // Stopped promptly, not at the 100k budget.
        assert!(out.iterations <= 5, "spun {} iterations", out.iterations);
        assert_eq!(rec.guardrail_kinds(), vec!["non_finite_iterate"]);
    }

    #[test]
    fn persistent_perturbation_trips_stagnation_guardrail() {
        // An alternating-sign perturbation injected into every matvec
        // keeps the residual bounded away from tol; with a stall window
        // the loop classifies the stagnation instead of burning the
        // whole budget.
        let nu = 6u32;
        let landscape = SinglePeak::new(nu, 2.0, 1.0);
        let w = PoisonOp {
            inner: w_op(nu, 0.01, &landscape),
            from: 0,
            value: 0.5,
            alternate: true,
            count: Default::default(),
        };
        let out = power_iteration(
            &w,
            &start_from(&landscape),
            &PowerOptions {
                stall_window: Some(50),
                ..Default::default()
            },
        );
        assert!(!out.converged);
        assert_eq!(
            out.breakdown,
            Some(crate::guard::Breakdown::ResidualStagnation)
        );
        assert!(
            out.iterations < 10_000,
            "spun {} iterations",
            out.iterations
        );
        // The iterate is still finite — usable as a best-so-far candidate.
        assert!(out.vector.iter().all(|v| v.is_finite()));
    }

    #[test]
    fn expired_deadline_returns_flagged_best_so_far() {
        let nu = 8u32;
        let landscape = SinglePeak::new(nu, 2.0, 1.0);
        let w = w_op(nu, 0.01, &landscape);
        let out = power_iteration(
            &w,
            &start_from(&landscape),
            &PowerOptions {
                tol: 0.0, // unreachable: only the deadline can stop it
                deadline: Some(std::time::Instant::now()),
                ..Default::default()
            },
        );
        assert!(out.timed_out);
        assert!(!out.converged);
        assert!(out.breakdown.is_none());
        // Exactly one iteration ran: the residual is measured at the
        // returned x, so the best-so-far contract holds.
        assert_eq!(out.iterations, 1);
        assert!(out.residual.is_finite());
        assert!(out.vector.iter().all(|v| v.is_finite()));
    }

    #[test]
    fn far_future_deadline_keeps_bit_identity() {
        let nu = 7u32;
        let landscape = Random::new(nu, 5.0, 1.0, 29);
        let w = w_op(nu, 0.01, &landscape);
        let start = start_from(&landscape);
        let plain = power_iteration(&w, &start, &PowerOptions::default());
        let dead = power_iteration(
            &w,
            &start,
            &PowerOptions {
                deadline: Some(std::time::Instant::now() + std::time::Duration::from_secs(3600)),
                ..Default::default()
            },
        );
        assert!(plain.converged && dead.converged && !dead.timed_out);
        assert_eq!(plain.lambda.to_bits(), dead.lambda.to_bits());
        assert_eq!(plain.iterations, dead.iterations);
        for (a, b) in plain.vector.iter().zip(&dead.vector) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
    }

    #[test]
    fn durable_power_resumes_bit_identically() {
        use crate::checkpoint::{CheckpointConfig, CheckpointSession, Checkpointer};
        let nu = 8u32;
        let landscape = Random::new(nu, 5.0, 1.0, 37);
        let w = w_op(nu, 0.01, &landscape);
        let start = start_from(&landscape);
        let opts = PowerOptions {
            tol: 1e-13,
            ..Default::default()
        };
        let reference = power_iteration(&w, &start, &opts);
        assert!(reference.converged);

        let dir = std::env::temp_dir().join(format!("qs-power-durable-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let mut cfg = CheckpointConfig::new(&dir);
        cfg.every_iterations = 5;

        // Phase 1: run with a small budget (simulating a crash), writing
        // checkpoints along the way.
        let writer = Checkpointer::create(cfg.clone()).unwrap();
        let mut session = CheckpointSession::new(writer, 1, opts.shift, opts.tol, 0, None);
        let cut = reference.iterations / 2;
        let partial = power_iteration_durable_in(
            &w,
            &start,
            &PowerOptions {
                max_iter: cut,
                ..opts
            },
            &mut qs_telemetry::NullProbe,
            &mut Workspace::new(),
            &mut session,
        );
        assert!(!partial.converged);

        // Phase 2: resume from the latest snapshot with the full budget.
        let snap = crate::checkpoint::load_latest(&dir, 1).unwrap().unwrap();
        assert!(snap.iteration > 0 && snap.iteration <= cut as u64);
        let writer = Checkpointer::create(cfg).unwrap();
        let mut session = CheckpointSession::new(writer, 1, opts.shift, opts.tol, 0, Some(snap));
        let resumed = power_iteration_durable_in(
            &w,
            &start,
            &opts,
            &mut qs_telemetry::NullProbe,
            &mut Workspace::new(),
            &mut session,
        );

        // Bit-identical to the uninterrupted run: same λ, same iterate,
        // same iteration count, same residual bits.
        assert!(resumed.converged);
        assert_eq!(resumed.iterations, reference.iterations);
        assert_eq!(resumed.lambda.to_bits(), reference.lambda.to_bits());
        assert_eq!(resumed.residual.to_bits(), reference.residual.to_bits());
        for (a, b) in reference.vector.iter().zip(&resumed.vector) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn guardrails_off_by_default_keep_bit_identity() {
        // Default options (no stall window) must not change the
        // floating-point sequence of a healthy run.
        let nu = 7u32;
        let landscape = Random::new(nu, 5.0, 1.0, 11);
        let w = w_op(nu, 0.01, &landscape);
        let start = start_from(&landscape);
        let plain = power_iteration(&w, &start, &PowerOptions::default());
        let guarded = power_iteration(
            &w,
            &start,
            &PowerOptions {
                stall_window: Some(10_000),
                ..Default::default()
            },
        );
        assert!(plain.converged && guarded.converged);
        assert_eq!(plain.lambda.to_bits(), guarded.lambda.to_bits());
        assert_eq!(plain.iterations, guarded.iterations);
        assert!(plain.breakdown.is_none() && guarded.breakdown.is_none());
    }
}
