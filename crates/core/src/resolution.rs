//! Quasispecies concentrations at various resolution levels — the
//! capability the paper's conclusions name as future work ("efficient
//! methods which allow for computing quasispecies concentrations at
//! various resolution levels").
//!
//! Three views of a solved distribution, coarser than single sequences but
//! finer than the global error classes:
//!
//! * [`marginal`] — the exact joint marginal over any subset of sites
//!   (all other sites summed out), `O(N)` regardless of subset size,
//! * [`site_marginals`] — all ν single-site marginals in one `O(N·ν)`
//!   pass,
//! * [`Pyramid`] — the full dyadic coarse-graining pyramid: level `ℓ`
//!   holds the `2^ℓ` concentrations of the sequence prefixes of length
//!   `ℓ` (most significant sites), built bottom-up in `O(N)` total —
//!   the natural "zoom" structure for inspecting a 2^ν-dimensional
//!   distribution at human scale.

use crate::result::Quasispecies;
use crate::solver::SolveError;

/// Exact marginal distribution over the sites selected by `site_mask`
/// (bit `s` of the mask selects site `s`): entry `m` of the result is the
/// total concentration of all sequences whose selected sites spell the
/// `m`-th pattern (patterns enumerated by compressing the selected bits
/// together, preserving their order).
///
/// # Errors
///
/// [`SolveError::InvalidConfig`] if `site_mask` is zero or has bits
/// outside the chain length.
pub fn marginal(qs: &Quasispecies, site_mask: u64) -> Result<Vec<f64>, SolveError> {
    let nu = qs.nu();
    if site_mask == 0 {
        return Err(SolveError::InvalidConfig {
            parameter: "site_mask",
            detail: "marginal over the empty site set is trivial".into(),
        });
    }
    if site_mask >= (1u64 << nu) {
        return Err(SolveError::InvalidConfig {
            parameter: "site_mask",
            detail: format!("site mask {site_mask:#b} has bits beyond the chain length ν = {nu}"),
        });
    }
    let k = site_mask.count_ones();
    let mut out = vec![qs_linalg::NeumaierSum::new(); 1usize << k];
    for (i, &x) in qs.concentrations.iter().enumerate() {
        let pattern = compress_bits(i as u64, site_mask);
        out[pattern as usize].add(x);
    }
    Ok(out.iter().map(qs_linalg::NeumaierSum::value).collect())
}

/// Extract the bits of `value` selected by `mask`, packed contiguously
/// (LSB-first) — the PEXT operation, in portable form.
#[inline]
fn compress_bits(value: u64, mut mask: u64) -> u64 {
    let mut out = 0u64;
    let mut out_pos = 0u32;
    while mask != 0 {
        let s = mask.trailing_zeros();
        out |= (value >> s & 1) << out_pos;
        out_pos += 1;
        mask &= mask - 1;
    }
    out
}

/// All single-site marginal frequencies `P(site s = 1)` in one pass.
pub fn site_marginals(qs: &Quasispecies) -> Vec<f64> {
    let nu = qs.nu();
    let mut acc = vec![qs_linalg::NeumaierSum::new(); nu as usize];
    for (i, &x) in qs.concentrations.iter().enumerate() {
        let mut bits = i as u64;
        while bits != 0 {
            acc[bits.trailing_zeros() as usize].add(x);
            bits &= bits - 1;
        }
    }
    acc.iter().map(qs_linalg::NeumaierSum::value).collect()
}

/// The dyadic resolution pyramid of a distribution: `levels[ℓ]` has
/// `2^ℓ` entries, entry `j` being the total concentration of all
/// sequences whose `ℓ` most significant sites spell `j`. Level `ν` is the
/// full distribution; level `0` is the single entry 1.
#[derive(Debug, Clone)]
pub struct Pyramid {
    levels: Vec<Vec<f64>>,
}

impl Pyramid {
    /// Build the pyramid bottom-up by pairwise summation: `O(N)` total
    /// work and memory.
    pub fn new(qs: &Quasispecies) -> Self {
        let nu = qs.nu() as usize;
        let mut levels = Vec::with_capacity(nu + 1);
        levels.push(qs.concentrations.clone());
        for _ in 0..nu {
            let prev = levels.last().expect("non-empty");
            let next: Vec<f64> = prev.chunks_exact(2).map(|pair| pair[0] + pair[1]).collect();
            levels.push(next);
        }
        levels.reverse();
        Pyramid { levels }
    }

    /// Number of levels (ν + 1).
    pub fn num_levels(&self) -> usize {
        self.levels.len()
    }

    /// The concentrations at resolution level `l` (`2^l` prefixes).
    ///
    /// # Panics
    ///
    /// Panics if `l` exceeds ν.
    pub fn level(&self, l: usize) -> &[f64] {
        &self.levels[l]
    }

    /// Concentration of the length-`l` prefix `j` (the coarse "bin" of all
    /// sequences starting with those most significant bits).
    ///
    /// # Panics
    ///
    /// Panics on out-of-range level or prefix.
    pub fn prefix_concentration(&self, l: usize, j: u64) -> f64 {
        self.levels[l][j as usize]
    }

    /// The most concentrated prefix at each level — the "zoom path" from
    /// the whole population down to the dominant sequence.
    pub fn zoom_path(&self) -> Vec<(u64, f64)> {
        self.levels
            .iter()
            .map(|lvl| {
                let (j, &c) = lvl
                    .iter()
                    .enumerate()
                    // `total_cmp` keeps the search well-defined even if a
                    // degraded solve left non-finite mass in a bin.
                    .max_by(|a, b| a.1.total_cmp(b.1))
                    .expect("non-empty level");
                (j as u64, c)
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::solver::{solve, SolverConfig};
    use qs_landscape::{Random, SinglePeak};

    fn solved(nu: u32, p: f64) -> Quasispecies {
        solve(p, &Random::new(nu, 5.0, 1.0, 66), &SolverConfig::default()).unwrap()
    }

    #[test]
    fn marginals_are_distributions() {
        let qs = solved(8, 0.02);
        for mask in [0b1u64, 0b11, 0b1010_0001, 0xFF] {
            let m = marginal(&qs, mask).unwrap();
            assert_eq!(m.len(), 1 << mask.count_ones());
            let s: f64 = m.iter().sum();
            assert!((s - 1.0).abs() < 1e-12, "mask {mask:#b}");
            assert!(m.iter().all(|&v| v >= 0.0));
        }
    }

    #[test]
    fn full_mask_marginal_is_the_distribution_itself() {
        let qs = solved(6, 0.03);
        let m = marginal(&qs, (1 << 6) - 1).unwrap();
        for (a, b) in m.iter().zip(&qs.concentrations) {
            assert!((a - b).abs() < 1e-15);
        }
    }

    #[test]
    fn single_site_marginal_matches_site_marginals() {
        let qs = solved(7, 0.05);
        let all = site_marginals(&qs);
        for s in 0..7u32 {
            let m = marginal(&qs, 1 << s).unwrap();
            assert!((m[1] - all[s as usize]).abs() < 1e-13, "site {s}");
            assert!((m[0] + m[1] - 1.0).abs() < 1e-13);
        }
    }

    #[test]
    fn marginal_brute_force_check() {
        // Marginal over sites {0, 2} of a ν = 4 distribution.
        let qs = solved(4, 0.04);
        let m = marginal(&qs, 0b0101).unwrap();
        for pat in 0..4u64 {
            let bit0 = pat & 1;
            let bit2 = (pat >> 1) & 1;
            let expect: f64 = (0..16u64)
                .filter(|i| (i & 1) == bit0 && ((i >> 2) & 1) == bit2)
                .map(|i| qs.concentration(i))
                .sum();
            assert!((m[pat as usize] - expect).abs() < 1e-14, "pattern {pat}");
        }
    }

    #[test]
    fn pyramid_levels_are_consistent() {
        let qs = solved(9, 0.02);
        let pyr = Pyramid::new(&qs);
        assert_eq!(pyr.num_levels(), 10);
        // Each level sums to 1 and refines to the next.
        for l in 0..10 {
            let lvl = pyr.level(l);
            assert_eq!(lvl.len(), 1 << l);
            let s: f64 = lvl.iter().sum();
            assert!((s - 1.0).abs() < 1e-12, "level {l}");
            if l < 9 {
                let finer = pyr.level(l + 1);
                for (j, &c) in lvl.iter().enumerate() {
                    assert!((c - (finer[2 * j] + finer[2 * j + 1])).abs() < 1e-13);
                }
            }
        }
        // Top level is everything, bottom is the raw distribution.
        assert!((pyr.prefix_concentration(0, 0) - 1.0).abs() < 1e-12);
        assert_eq!(pyr.level(9), &qs.concentrations[..]);
    }

    #[test]
    fn pyramid_matches_msb_marginals() {
        // Level ℓ == marginal over the ℓ most significant sites.
        let qs = solved(6, 0.03);
        let pyr = Pyramid::new(&qs);
        for l in 1..=6u32 {
            let mask = ((1u64 << l) - 1) << (6 - l);
            let m = marginal(&qs, mask).unwrap();
            let lvl = pyr.level(l as usize);
            for (j, &c) in lvl.iter().enumerate() {
                // compress_bits packs LSB-first; pyramid prefixes are the
                // same bits read as an integer — identical ordering here
                // because the masked bits are contiguous.
                assert!((c - m[j]).abs() < 1e-13, "level {l}, prefix {j}");
            }
        }
    }

    #[test]
    fn zoom_path_descends_to_the_master() {
        let landscape = SinglePeak::new(8, 2.0, 1.0);
        let qs = solve(0.01, &landscape, &SolverConfig::default()).unwrap();
        let pyr = Pyramid::new(&qs);
        let path = pyr.zoom_path();
        assert_eq!(path.len(), 9);
        // At every level the dominant prefix is the all-zeros one, and its
        // concentration decreases monotonically with resolution.
        for (l, &(j, c)) in path.iter().enumerate() {
            assert_eq!(j, 0, "level {l}");
            if l > 0 {
                assert!(c <= path[l - 1].1 + 1e-15);
            }
        }
        assert!((path[8].1 - qs.concentration(0)).abs() < 1e-15);
    }

    #[test]
    fn marginal_rejects_bad_masks_with_typed_errors() {
        use crate::solver::SolveError;
        let qs = solved(4, 0.02);
        for mask in [0u64, 1 << 10] {
            match marginal(&qs, mask) {
                Err(SolveError::InvalidConfig { parameter, .. }) => {
                    assert_eq!(parameter, "site_mask");
                }
                other => panic!("expected InvalidConfig, got {other:?}"),
            }
        }
    }
}
